package vqpy_test

// Acceptance crosschecks of the tiered result store (DESIGN.md §7): a
// cold re-run over a warm store and a store-backfilled mid-stream attach
// must both be bit-identical to fresh execution, while the ledger shows
// the model work disappearing.

import (
	"reflect"
	"sync"
	"testing"

	"vqpy"
)

// archivalQueries builds a small mixed workload: two queries sharing one
// scan group (same detector, property models behind the label store) and
// one with a video-level aggregation.
func archivalQueries() []*vqpy.Query {
	return []*vqpy.Query{
		vqpy.NewQuery("RedCar").
			Use("car", vqpy.Car()).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "color").Eq("red"),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate")),
		vqpy.NewQuery("Plates").
			Use("car", vqpy.Car()).
			Where(vqpy.P("car", vqpy.PropScore).Gt(0.7)).
			FrameOutput(vqpy.Sel("car", "plate")),
		vqpy.NewQuery("BlueCount").
			Use("car", vqpy.Car()).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "color").Eq("blue"),
			)).
			CountDistinct("car"),
	}
}

func archivalNodes() []vqpy.QueryNode {
	qs := archivalQueries()
	nodes := make([]vqpy.QueryNode, len(qs))
	for i, q := range qs {
		nodes[i] = q
	}
	return nodes
}

func archivalVideo(seed uint64) *vqpy.Video {
	return vqpy.GenerateVideo(vqpy.DatasetCityFlow(seed, 12))
}

// runStoredPass executes the workload through the shared-scan engine
// against the given store directory in a fresh session (a process
// restart stand-in) and returns the results plus the session.
func runStoredPass(t *testing.T, dir string, seed uint64) ([]*vqpy.RunResult, *vqpy.Session) {
	t.Helper()
	st, err := vqpy.OpenStore(dir, seed)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	results, err := s.ExecuteShared(archivalNodes(), archivalVideo(seed), vqpy.WithStore(st))
	if err != nil {
		t.Fatalf("ExecuteShared with store: %v", err)
	}
	return results, s
}

func sameRunResults(t *testing.T, label string, want, got []*vqpy.RunResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d results", label, len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i].Matched, got[i].Matched) {
			t.Errorf("%s: query %s: matched vectors differ", label, want[i].Name)
		}
		if !reflect.DeepEqual(want[i].Events, got[i].Events) {
			t.Errorf("%s: query %s: events differ", label, want[i].Name)
		}
		wb, gb := want[i].Basic, got[i].Basic
		if (wb == nil) != (gb == nil) {
			t.Fatalf("%s: query %s: basic presence differs", label, want[i].Name)
		}
		if wb != nil {
			if !reflect.DeepEqual(wb.Hits, gb.Hits) {
				t.Errorf("%s: query %s: hits differ", label, want[i].Name)
			}
			if wb.Count != gb.Count || !reflect.DeepEqual(wb.TrackIDs, gb.TrackIDs) {
				t.Errorf("%s: query %s: aggregation differs", label, want[i].Name)
			}
		}
	}
}

// TestRescanBitIdenticalAndCheaper is the acceptance crosscheck for
// cross-process reuse: a cold re-run over a warm store must answer
// bit-identically to fresh per-query execution while doing strictly
// fewer detector and tracker invocations than the first pass.
func TestRescanBitIdenticalAndCheaper(t *testing.T) {
	const seed = 91
	dir := t.TempDir()

	// Fresh per-query execution is the identity reference.
	ref := vqpy.NewSession(seed)
	ref.SetNoBurn(true)
	var refResults []*vqpy.RunResult
	for _, node := range archivalNodes() {
		r, err := ref.Execute(node, archivalVideo(seed))
		if err != nil {
			t.Fatal(err)
		}
		refResults = append(refResults, r)
	}

	first, firstSession := runStoredPass(t, dir, seed)
	second, secondSession := runStoredPass(t, dir, seed)

	sameRunResults(t, "first pass vs per-query", refResults, first)
	sameRunResults(t, "warm rescan vs per-query", refResults, second)

	firstDet, secondDet := sharedDetects(firstSession), sharedDetects(secondSession)
	firstTrk := firstSession.Clock().Invocations("tracker")
	secondTrk := secondSession.Clock().Invocations("tracker")
	if secondDet >= firstDet {
		t.Errorf("warm rescan detector invocations not below first pass: %d vs %d", secondDet, firstDet)
	}
	if secondTrk >= firstTrk {
		t.Errorf("warm rescan tracker invocations not below first pass: %d vs %d", secondTrk, firstTrk)
	}
}

// TestRescanSurvivesHotTierChurn reruns the rescan identity check with a
// hot tier far smaller than the clip, so most store reads promote from
// the disk tier after LRU eviction.
func TestRescanSurvivesHotTierChurn(t *testing.T) {
	const seed = 92
	dir := t.TempDir()
	open := func() *vqpy.Store {
		st, err := vqpy.OpenStoreOptions(dir, seed, 8)
		if err != nil {
			t.Fatalf("OpenStoreOptions: %v", err)
		}
		return st
	}
	run := func(st *vqpy.Store) []*vqpy.RunResult {
		defer st.Close()
		s := vqpy.NewSession(seed)
		s.SetNoBurn(true)
		results, err := s.ExecuteShared(archivalNodes(), archivalVideo(seed), vqpy.WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	first := run(open())
	st := open()
	second := run(st)
	sameRunResults(t, "tiny hot tier rescan", first, second)
}

// TestBackfillAttachIdenticalToFreshOpen is the acceptance crosscheck
// for late-attaching queries: a query attached halfway through a stored
// stream with AttachQueryBackfill must produce results bit-identical to
// a fresh OpenShared of the full query set fed from frame zero — and
// the resident query must be unperturbed.
func TestBackfillAttachIdenticalToFreshOpen(t *testing.T) {
	const seed = 93
	v := archivalVideo(seed)
	qs := archivalQueries()

	// Reference: all queries resident from frame zero, no store.
	refSession := vqpy.NewSession(seed)
	refSession.SetNoBurn(true)
	mRef, err := refSession.OpenShared(archivalQueries(), v, v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(v.Frames); i++ {
		if _, err := mRef.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	refResults := mRef.Close()

	// Live: the first query rides from frame zero over a store-bound
	// stream; the others join at the halfway mark with backfill.
	st, err := vqpy.OpenStore(t.TempDir(), seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	m, err := s.OpenShared(qs[:1], v, v.FPS, vqpy.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	half := len(v.Frames) / 2
	for i := 0; i < half; i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range qs[1:] {
		if _, _, err := s.AttachQueryBackfill(m, q, v); err != nil {
			t.Fatalf("AttachQueryBackfill(%s): %v", q.Name(), err)
		}
	}
	for i := half; i < len(v.Frames); i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	results := m.Close()

	if len(results) != len(refResults) {
		t.Fatalf("%d vs %d results", len(results), len(refResults))
	}
	for i, ref := range refResults {
		got := results[i]
		if got.FramesProcessed != len(v.Frames) {
			t.Errorf("query %s: processed %d frames, want %d (backfill incomplete)",
				got.Query, got.FramesProcessed, len(v.Frames))
		}
		if !reflect.DeepEqual(ref.Matched, got.Matched) {
			t.Errorf("query %s: matched vectors differ from fresh OpenShared", got.Query)
		}
		if !reflect.DeepEqual(ref.Hits, got.Hits) {
			t.Errorf("query %s: hits differ from fresh OpenShared", got.Query)
		}
		if ref.Count != got.Count || !reflect.DeepEqual(ref.TrackIDs, got.TrackIDs) {
			t.Errorf("query %s: aggregation differs from fresh OpenShared", got.Query)
		}
	}

	backfilled := 0
	for _, lane := range m.LaneStats() {
		if lane.Backfilled {
			backfilled++
		}
	}
	if backfilled != len(qs)-1 {
		t.Errorf("LaneStats reports %d backfilled lanes, want %d", backfilled, len(qs)-1)
	}
}

// TestBackfillAttachNewGroupFromWarmStore covers the warm-restart shape:
// a stream whose store was populated by a previous pass serves a
// backfill for a scan group that does not exist yet in this process.
func TestBackfillAttachNewGroupFromWarmStore(t *testing.T) {
	const seed = 94
	v := archivalVideo(seed)
	dir := t.TempDir()

	// Pass 1 archives the full clip for the car scan group.
	runStoredPass(t, dir, seed)

	// Reference result for the joining query, from-zero without a store.
	refSession := vqpy.NewSession(seed)
	refSession.SetNoBurn(true)
	refRes, err := refSession.Execute(archivalNodes()[0], archivalVideo(seed))
	if err != nil {
		t.Fatal(err)
	}

	// Pass 2: a fresh process feeds half the clip with NO queries
	// attached, then the query joins with backfill — its scan group is
	// created on the spot and its whole history comes from the store.
	st, err := vqpy.OpenStore(dir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	m, err := s.Serve(v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	m.BindStore(st, v)
	half := len(v.Frames) / 2
	for i := 0; i < half; i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	id, _, err := s.AttachQueryBackfill(m, archivalQueries()[0], v)
	if err != nil {
		t.Fatalf("AttachQueryBackfill onto fresh group: %v", err)
	}
	for i := half; i < len(v.Frames); i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Detach(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refRes.Basic.Matched, got.Matched) {
		t.Error("matched vector differs from from-zero execution")
	}
	if !reflect.DeepEqual(refRes.Basic.Hits, got.Hits) {
		t.Error("hits differ from from-zero execution")
	}
}

// TestBackfillRollbackOnUncoveredStore verifies a failed backfill leaves
// the stream untouched: attaching over an empty store errors, siblings
// keep running, and a plain attach still works.
func TestBackfillRollbackOnUncoveredStore(t *testing.T) {
	const seed = 95
	v := archivalVideo(seed)
	qs := archivalQueries()
	st, err := vqpy.OpenStore(t.TempDir(), seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	m, err := s.OpenShared(qs[:1], v, v.FPS, vqpy.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A second store knows nothing about these frames; swap it in to
	// simulate missing coverage for a differently keyed group.
	empty, err := vqpy.OpenStore(t.TempDir(), seed)
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	m.BindStore(empty, v)
	if _, _, err := s.AttachQueryBackfill(m, qs[1], v); err == nil {
		t.Fatal("backfill over an uncovered store should fail")
	}
	if lanes := m.Lanes(); lanes != 1 {
		t.Fatalf("failed backfill leaked a lane: %d lanes", lanes)
	}
	if _, err := m.Feed(v.FrameAt(5)); err != nil {
		t.Fatalf("stream unusable after failed backfill: %v", err)
	}
	if _, _, err := s.AttachQuery(m, qs[1], v); err != nil {
		t.Fatalf("plain attach after failed backfill: %v", err)
	}
}

// TestLoopWrapIdenticalWithStore pins the wrap rule: once a looping
// stream re-feeds earlier frame indices, the scan archive must neither
// serve lap-one track ids into a tracker carrying cross-wrap state nor
// archive cross-wrap ids — so a looped run over a store (cold or warm)
// answers bit-identically to a looped run without one.
func TestLoopWrapIdenticalWithStore(t *testing.T) {
	const seed = 97
	v := archivalVideo(seed)
	half := len(v.Frames) / 2

	loopRun := func(st *vqpy.Store) *vqpy.Result {
		s := vqpy.NewSession(seed)
		s.SetNoBurn(true)
		var opts []vqpy.Option
		if st != nil {
			opts = append(opts, vqpy.WithStore(st))
		}
		m, err := s.OpenShared(archivalQueries()[:1], v, v.FPS, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(v.Frames); i++ {
			if _, err := m.Feed(v.FrameAt(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < half; i++ { // the wrap: earlier indices again
			if _, err := m.Feed(v.FrameAt(i)); err != nil {
				t.Fatal(err)
			}
		}
		return m.Close()[0]
	}

	ref := loopRun(nil)

	coldStore, err := vqpy.OpenStore(t.TempDir(), seed)
	if err != nil {
		t.Fatal(err)
	}
	defer coldStore.Close()
	cold := loopRun(coldStore)

	warmDir := t.TempDir()
	runStoredPass(t, warmDir, seed) // archive the whole clip first
	warmStore, err := vqpy.OpenStore(warmDir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer warmStore.Close()
	warm := loopRun(warmStore)

	for _, tc := range []struct {
		name string
		got  *vqpy.Result
	}{{"cold store", cold}, {"warm store", warm}} {
		if !reflect.DeepEqual(ref.Matched, tc.got.Matched) {
			t.Errorf("%s: looped matched vector differs from store-less run", tc.name)
		}
		if !reflect.DeepEqual(ref.Hits, tc.got.Hits) {
			t.Errorf("%s: looped hits differ from store-less run", tc.name)
		}
	}
}

// TestColdStartTrackerIDsNotArchived pins the persist rule: a query
// attached mid-stream (plain Attach, cold tracker numbering) must not
// archive its ids, so a later from-zero pass re-tracks those frames and
// stays bit-identical to store-less execution.
func TestColdStartTrackerIDsNotArchived(t *testing.T) {
	const seed = 98
	v := archivalVideo(seed)
	qs := archivalQueries()

	// Stream with a store: nothing resident for the first half, then a
	// plain (non-backfill) attach — its scan group is born mid-stream.
	st, err := vqpy.OpenStore(t.TempDir(), seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	m, err := s.Serve(v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	m.BindStore(st, v)
	half := len(v.Frames) / 2
	for i := 0; i < half; i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.AttachQuery(m, qs[0], v); err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(v.Frames); i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()

	// A later from-zero pass over that store must match store-less
	// per-query execution exactly — the cold tracker's numbering must
	// not leak out of the archive.
	ref := vqpy.NewSession(seed)
	ref.SetNoBurn(true)
	want, err := ref.Execute(qs[0], archivalVideo(seed))
	if err != nil {
		t.Fatal(err)
	}
	s2 := vqpy.NewSession(seed)
	s2.SetNoBurn(true)
	got, err := s2.ExecuteShared([]vqpy.QueryNode{archivalQueries()[0]}, archivalVideo(seed), vqpy.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Basic.Matched, got[0].Basic.Matched) {
		t.Error("from-zero pass over a cold-start-polluted store: matched vectors differ")
	}
	if !reflect.DeepEqual(want.Basic.Hits, got[0].Basic.Hits) {
		t.Error("from-zero pass over a cold-start-polluted store: hits differ")
	}
}

// TestStoreConcurrentServeRace drives a store-bound stream with
// concurrent feeds, snapshots and backfill attaches — run under -race.
func TestStoreConcurrentServeRace(t *testing.T) {
	const seed = 96
	v := archivalVideo(seed)
	dir := t.TempDir()

	// Warm the store first so backfills have coverage.
	runStoredPass(t, dir, seed)

	st, err := vqpy.OpenStore(dir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	qs := archivalQueries()
	m, err := s.OpenShared(qs[:1], v, v.FPS, vqpy.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < len(v.Frames); i++ {
			if _, err := m.Feed(v.FrameAt(i)); err != nil {
				t.Errorf("Feed: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for j := 0; j < 6; j++ {
			id, _, err := s.AttachQueryBackfill(m, qs[1+(j%2)], v)
			if err != nil {
				t.Errorf("AttachQueryBackfill: %v", err)
				return
			}
			if _, err := m.Snapshot(id); err != nil {
				t.Errorf("Snapshot: %v", err)
				return
			}
			if _, err := m.Detach(id); err != nil {
				t.Errorf("Detach: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	m.Close()
}
