// Package-level benchmarks: one testing.B benchmark per table and figure
// of the paper's evaluation (§5). Each benchmark executes the matching
// harness runner with Burn enabled, so real CPU work is proportional to
// the virtual cost and wall-clock ns/op preserves the paper's relative
// shape. The key comparison figures are also exported as custom metrics
// (speedup ratios), so `go test -bench` output shows "who wins by how
// much" directly.
//
// Scale is kept small (benchmark workloads are minutes of video in the
// paper); shapes hold at this scale, absolute times do not matter.
package vqpy_test

import (
	"strconv"
	"strings"
	"testing"

	"vqpy"

	"vqpy/internal/bench"
	"vqpy/internal/metrics"
)

const benchScale = 0.1

func benchConfig() bench.Config {
	return bench.Config{Seed: 99, Scale: benchScale, Burn: true}
}

// reportRatio extracts a ratio cell ("4.2x") and reports it as a metric.
func reportRatio(b *testing.B, rep *metrics.Report, row, col int, name string) {
	b.Helper()
	if row >= len(rep.Rows) || col >= len(rep.Rows[row]) {
		return
	}
	s := strings.TrimSuffix(rep.Rows[row][col], "x")
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		b.ReportMetric(v, name)
	}
}

// BenchmarkFig13a regenerates Figure 13(a): CVIP vs VQPy vs
// VQPy+intrinsic on the five CityFlow queries.
func BenchmarkFig13a(b *testing.B) {
	var rep *metrics.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = bench.RunFig13a(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRatio(b, rep, 0, 4, "q1_vqpy_speedup")
	reportRatio(b, rep, 0, 6, "q1_memo_speedup")
}

// BenchmarkFig13b regenerates Figure 13(b): per-frame time curves.
func BenchmarkFig13b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig13b(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14 regenerates Figure 14: the red-car query vs EVA.
func BenchmarkFig14(b *testing.B) {
	var rep *metrics.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = bench.RunFig14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRatio(b, rep, 0, 4, "banff3_speedup")
	reportRatio(b, rep, 3, 4, "jackson10_speedup")
}

// BenchmarkFig15 regenerates Figure 15: the speeding-car query vs EVA.
func BenchmarkFig15(b *testing.B) {
	var rep *metrics.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = bench.RunFig15(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRatio(b, rep, 0, 4, "banff3_speedup")
}

// BenchmarkFig16 regenerates Figure 16: the red speeding car query vs
// naive and refined EVA.
func BenchmarkFig16(b *testing.B) {
	var rep *metrics.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = bench.RunFig16(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRatio(b, rep, 0, 4, "naive_speedup")
	reportRatio(b, rep, 0, 6, "refined_speedup")
}

// BenchmarkTable5 regenerates Table 5: per-frame execution time against
// VideoChat.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable5(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6 regenerates Table 6: boolean-query F1.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable6(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7 regenerates Table 7: aggregation-query responses.
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable7(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntrinsicMemo is the E13 ablation: object-level reuse vs
// dwell time.
func BenchmarkIntrinsicMemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunMemoAblation(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerAblation is the E12 ablation: canary profiling and
// plan selection.
func BenchmarkPlannerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunPlannerAblation(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLazyAblation isolates the lazy-evaluation mechanism of §5.1.
func BenchmarkLazyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunLazyAblation(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiQueryReuse is the E10 ablation: query-level computation
// reuse across Q1-Q5 (also reported inside Table 5).
func BenchmarkMultiQueryReuse(b *testing.B) {
	v := vqpy.GenerateVideo(vqpy.DatasetAuburn(99, 60))
	queries := func() []*vqpy.Query {
		var qs []*vqpy.Query
		for i, color := range []string{"red", "blue", "black"} {
			qs = append(qs, vqpy.NewQuery("Q"+strconv.Itoa(i)).
				Use("car", vqpy.Car()).
				Where(vqpy.P("car", "color").Eq(color)))
		}
		return qs
	}
	b.Run("individual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := vqpy.NewSession(99)
			for _, q := range queries() {
				if _, err := s.Execute(q, v, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := vqpy.NewSession(99)
			cache := vqpy.NewSharedCache()
			for _, q := range queries() {
				if _, err := s.Execute(q, v, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized(),
					vqpy.WithSharedCache(cache)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkQ6Specialized is the E11 ablation: the §5.3 Q6 optimization
// (cheap detector + action-proposal filter before UPT). The Table 5
// harness reports the same comparison with F1; this benchmark times it.
func BenchmarkQ6Specialized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable5(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiQuery measures the parallel multi-query scheduler: the
// 8-query serving workload executed sequentially vs. on a 4-worker
// pool, both in accelerator-offload latency mode against one shared
// cache. Compare ns/op between the two sub-benchmarks for the
// wall-clock speedup (expected ≥2x at 4 workers; the scheduler's
// results are asserted identical to sequential execution in
// TestExecuteAllParallelMatchesSequential).
func BenchmarkMultiQuery(b *testing.B) {
	cfg := bench.Config{Seed: 99, Scale: 0.5, Burn: true}
	nQueries := len(bench.MultiQueryWorkload())
	for _, arm := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel4", 4}} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.RunMultiQueryWith(cfg, arm.workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nQueries*b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkMuxStream compares the single-pass shared-scan engine
// against the per-query scheduler on the 8-query serving workload: same
// queries, same clip, same answers, but the shared scan performs
// detect/track work once per (model, frame) — the ledger's invocation
// counts are exported as metrics so the drop is visible next to the
// wall-clock numbers.
func BenchmarkMuxStream(b *testing.B) {
	cfg := bench.Config{Seed: 99, Scale: 0.5, Burn: true}
	nQueries := len(bench.MultiQueryWorkload())
	for _, arm := range []string{"runall-seq", "muxscan"} {
		b.Run(arm, func(b *testing.B) {
			b.ReportAllocs()
			var s *vqpy.Session
			for i := 0; i < b.N; i++ {
				var err error
				if _, _, s, err = bench.RunMuxScanWith(cfg, arm, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nQueries*b.N)/b.Elapsed().Seconds(), "queries/sec")
			b.ReportMetric(float64(s.Clock().Invocations("tracker")), "tracker_inv/run")
		})
	}
}

// BenchmarkEngineRedCarPerFrame measures raw engine throughput on the
// canonical red-car query (engine overhead per frame, excluding report
// assembly).
func BenchmarkEngineRedCarPerFrame(b *testing.B) {
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(99, 30))
	q := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := vqpy.NewSession(99)
		if _, err := s.Execute(q, v, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(v.Frames)), "frames/op")
}
