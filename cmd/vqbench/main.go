// Command vqbench regenerates the paper's tables and figures. Each
// experiment prints its report in the paper's row/series structure; see
// DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	vqbench [-exp all|fig13a|fig13b|fig14|fig15|fig16|table5|table6|table7|memo|planner|batch|lazy|dag|multi|muxscan|churn|rescan|fleet|chaos]
//	        [-seed N] [-scale F] [-parallel N] [-burn] [-csv] [-json FILE]
//	vqbench -check bench_baselines.json
//
// The multi experiment exercises the parallel multi-query scheduler
// (sequential vs. -parallel workers over the 8-query serving workload);
// muxscan compares the single-pass shared-scan engine (ExecuteShared)
// against isolated and scheduler-based per-query execution on the same
// workload, reporting detector/tracker invocation counts from the
// ledger; churn measures the dynamic serving layer under attach/detach
// arrival and departure against per-query streams; rescan runs the
// workload twice over one persistent result store — the warm pass must
// do strictly fewer detector/tracker invocations than the cold pass;
// fleet compares batched cross-source inference over a correlated
// three-camera clip set against N isolated daemons — identical
// per-source verdicts at equal detector invocation counts, with lower
// total virtual time and a cross-camera global-id join; chaos runs the
// fleet workload under deterministic fault injection (E19) — retries
// absorb recoverable faults at ≥99% verdict parity, breakers degrade
// gracefully, a disabled injector is bit-identical, and store faults
// downgrade tiers without changing answers.
// -json writes every selected report as a JSON array to FILE in
// addition to the normal output.
//
// -check runs the CI bench-regression gate instead of experiments: it
// loads the named baselines file, reads the BENCH_*.json artifacts it
// references, and exits non-zero when any gated metric regresses beyond
// tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"vqpy/internal/bench"
	"vqpy/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig13a, fig13b, fig14, fig15, fig16, table5, table6, table7, memo, planner, batch, lazy, dag, multi, muxscan, churn, rescan, fleet, chaos)")
	seed := flag.Uint64("seed", 20240501, "experiment seed")
	scale := flag.Float64("scale", 1.0, "workload duration scale (1.0 = paper-like)")
	parallel := flag.Int("parallel", 4, "worker pool size for the multi experiment")
	burn := flag.Bool("burn", false, "do real CPU work proportional to virtual cost")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonPath := flag.String("json", "", "also write selected reports as a JSON array to this file")
	check := flag.String("check", "", "check benchmark artifacts against this baselines file and exit (regression gate)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vqbench: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	if *check != "" {
		// The gate reads previously written artifacts; combining it with
		// experiment selection or output flags is a misconfigured CI
		// step, not a request.
		expSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" || f.Name == "json" || f.Name == "csv" {
				expSet = true
			}
		})
		if expSet {
			fmt.Fprintln(os.Stderr, "vqbench: -check cannot be combined with -exp/-json/-csv")
			os.Exit(2)
		}
		summary, err := bench.CheckBaselines(*check)
		if summary != "" {
			fmt.Println(summary)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baselines %s: all checks passed\n", *check)
		return
	}

	cfg := bench.Config{Seed: *seed, Scale: *scale, Burn: *burn, Workers: *parallel}
	runners := map[string]func(bench.Config) (*metrics.Report, error){
		"fig13a":  bench.RunFig13a,
		"fig13b":  bench.RunFig13b,
		"fig14":   bench.RunFig14,
		"fig15":   bench.RunFig15,
		"fig16":   bench.RunFig16,
		"table5":  bench.RunTable5,
		"table6":  bench.RunTable6,
		"table7":  bench.RunTable7,
		"memo":    bench.RunMemoAblation,
		"planner": bench.RunPlannerAblation,
		"batch":   bench.RunBatchAblation,
		"lazy":    bench.RunLazyAblation,
		"edge":    bench.RunEdgeAblation,
		"multi":   bench.RunMultiQuery,
		"muxscan": bench.RunMuxScan,
		"churn":   bench.RunChurn,
		"rescan":  bench.RunRescan,
		"fleet":   bench.RunFleet,
		"chaos":   bench.RunChaos,
	}
	order := []string{"fig13a", "fig13b", "fig14", "fig15", "fig16", "table5", "table6", "table7", "memo", "planner", "batch", "lazy", "edge", "multi", "muxscan", "churn", "rescan", "fleet", "chaos", "dag"}

	selected := []string{*exp}
	if *exp == "all" {
		selected = order
	}
	var reports []*metrics.Report
	for _, name := range selected {
		if name == "dag" {
			out, err := bench.ExplainSuspectDAG(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vqbench: dag: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(out)
			continue
		}
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "vqbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		reports = append(reports, rep)
		if *csv {
			fmt.Printf("# %s\n%s\n", rep.Title, rep.CSV())
		} else {
			fmt.Println(rep.String())
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}
	if *jsonPath != "" {
		if len(reports) == 0 {
			// A gate consuming this file would read "null" and pass
			// vacuously; refuse instead.
			fmt.Fprintf(os.Stderr, "vqbench: -json with no reports produced (exp %q)\n", *exp)
			os.Exit(1)
		}
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d report(s) to %s\n", len(reports), *jsonPath)
	}
}
