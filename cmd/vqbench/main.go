// Command vqbench regenerates the paper's tables and figures. Each
// experiment prints its report in the paper's row/series structure; see
// DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	vqbench [-exp all|fig13a|fig13b|fig14|fig15|fig16|table5|table6|table7|memo|planner|batch|lazy|edge|multi|muxscan|churn|rescan|fleet|chaos|search|fidelity|text|dag]
//	        [-seed N] [-scale F] [-parallel N] [-burn] [-csv] [-json FILE]
//	vqbench -check bench_baselines.json
//
// Every knob also loads from a -config JSON file and $VQBENCH_*
// environment variables (defaults < file < env < flags; DESIGN.md
// §11), so CI matrices can pin seeds and scales without editing
// command lines.
//
// The experiment vocabulary is the experiments table below — the -exp
// help text is derived from it, and the usage line above is pinned to
// it by a test, so the three cannot drift apart.
//
// The multi experiment exercises the parallel multi-query scheduler
// (sequential vs. -parallel workers over the 8-query serving workload);
// muxscan compares the single-pass shared-scan engine (ExecuteShared)
// against isolated and scheduler-based per-query execution on the same
// workload, reporting detector/tracker invocation counts from the
// ledger; churn measures the dynamic serving layer under attach/detach
// arrival and departure against per-query streams; rescan runs the
// workload twice over one persistent result store — the warm pass must
// do strictly fewer detector/tracker invocations than the cold pass;
// fleet compares batched cross-source inference over a correlated
// three-camera clip set against N isolated daemons — identical
// per-source verdicts at equal detector invocation counts, with lower
// total virtual time and a cross-camera global-id join; chaos runs the
// fleet workload under deterministic fault injection (E19) — retries
// absorb recoverable faults at ≥99% verdict parity, breakers degrade
// gracefully, a disabled injector is bit-identical, and store faults
// downgrade tiers without changing answers; search measures the
// appearance index's index-then-verify path against the full rescan on
// a 1x and a 3x archive (E20) — bit-identical answers with sub-linear
// verified-frame and virtual-cost growth; fidelity archives the clip at
// every reduced tier of the fidelity lattice and answers an accuracy-
// budgeted query from the cheapest satisfying tier (E22) — at least 5x
// cheaper than the live scan within the declared accuracy floor, with
// strict queries still answered live and bit-identically; text drives
// the language frontend and the lazy open-vocabulary verifier (E23) —
// every golden sentence compiles bit-identical to its hand-built plan,
// and the verifier runs on under 10% of frames with verdicts identical
// to the ask-on-every-frame baseline.
// -json writes every selected report as a JSON array to FILE in
// addition to the normal output.
//
// -check runs the CI bench-regression gate instead of experiments: it
// loads the named baselines file, reads the BENCH_*.json artifacts it
// references, and exits non-zero when any gated metric regresses beyond
// tolerance. Before reading any artifact it crosschecks the baselines'
// file references against the experiments table: a referenced artifact
// no experiment produces, or a produced artifact no baseline gates, is
// a hard failure — the gate must never pass vacuously.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"vqpy/internal/bench"
	"vqpy/internal/config"
	"vqpy/internal/metrics"
)

// experiment is one -exp dispatch entry: a report-producing runner, or
// a text-only explainer (run and text are mutually exclusive).
// artifact names the BENCH_*.json file CI writes for the experiment
// ("" for ungated experiments); the -check gate crosschecks it against
// the baselines file's references.
type experiment struct {
	name     string
	run      func(bench.Config) (*metrics.Report, error)
	text     func(bench.Config) (string, error)
	artifact string
}

// experiments is the single source of truth for the -exp vocabulary,
// in "all" execution order. The flag's help text is derived from it;
// main_test.go pins the doc comment's usage line and the baselines
// artifact pairing to it.
var experiments = []experiment{
	{name: "fig13a", run: bench.RunFig13a},
	{name: "fig13b", run: bench.RunFig13b},
	{name: "fig14", run: bench.RunFig14},
	{name: "fig15", run: bench.RunFig15},
	{name: "fig16", run: bench.RunFig16},
	{name: "table5", run: bench.RunTable5},
	{name: "table6", run: bench.RunTable6},
	{name: "table7", run: bench.RunTable7},
	{name: "memo", run: bench.RunMemoAblation},
	{name: "planner", run: bench.RunPlannerAblation},
	{name: "batch", run: bench.RunBatchAblation},
	{name: "lazy", run: bench.RunLazyAblation},
	{name: "edge", run: bench.RunEdgeAblation},
	{name: "multi", run: bench.RunMultiQuery, artifact: "BENCH_1.json"},
	{name: "muxscan", run: bench.RunMuxScan, artifact: "BENCH_2.json"},
	{name: "churn", run: bench.RunChurn, artifact: "BENCH_3.json"},
	{name: "rescan", run: bench.RunRescan, artifact: "BENCH_4.json"},
	{name: "fleet", run: bench.RunFleet, artifact: "BENCH_5.json"},
	{name: "chaos", run: bench.RunChaos, artifact: "BENCH_6.json"},
	{name: "search", run: bench.RunSearch, artifact: "BENCH_7.json"},
	{name: "fidelity", run: bench.RunFidelity, artifact: "BENCH_8.json"},
	{name: "text", run: bench.RunText, artifact: "BENCH_9.json"},
	{name: "dag", text: bench.ExplainSuspectDAG},
}

func experimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

func findExperiment(name string) (experiment, bool) {
	for _, e := range experiments {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

// crosscheckArtifacts verifies the baselines' artifact references and
// the experiments table agree both ways: every referenced file is
// produced by a registered experiment, and every experiment that
// produces an artifact is gated by at least one check. Either mismatch
// means the CI gate would pass while covering less than it claims.
func crosscheckArtifacts(referenced []string) error {
	produced := make(map[string]string, len(experiments))
	for _, e := range experiments {
		if e.artifact != "" {
			produced[e.artifact] = e.name
		}
	}
	gated := make(map[string]bool, len(referenced))
	var problems []string
	for _, f := range referenced {
		gated[f] = true
		if _, ok := produced[f]; !ok {
			problems = append(problems, fmt.Sprintf("baselines gate %s but no registered experiment produces it", f))
		}
	}
	for _, e := range experiments {
		if e.artifact != "" && !gated[e.artifact] {
			problems = append(problems, fmt.Sprintf("experiment %q produces %s but no baseline check gates it", e.name, e.artifact))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("artifact/baseline pairing broken:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// benchConfig is vqbench's typed configuration (internal/config): the
// flags, their $VQBENCH_* bindings and the -config file keys.
type benchConfig struct {
	Exp      string  `flag:"exp" json:"exp" usage:"experiment to run"`
	Seed     uint64  `flag:"seed" json:"seed" usage:"experiment seed"`
	Scale    float64 `flag:"scale" json:"scale" usage:"workload duration scale (1.0 = paper-like)"`
	Parallel int     `flag:"parallel" json:"parallel" usage:"worker pool size for the multi experiment"`
	Burn     bool    `flag:"burn" json:"burn" usage:"do real CPU work proportional to virtual cost"`
	CSV      bool    `flag:"csv" json:"csv" usage:"emit CSV instead of tables"`
	JSONPath string  `flag:"json" json:"json_path" usage:"also write selected reports as a JSON array to this file"`
	Check    string  `flag:"check" json:"check" usage:"check benchmark artifacts against this baselines file and exit (regression gate)"`
}

// Validate rejects unknown experiment selections with the full
// vocabulary in the message.
func (c *benchConfig) Validate() error {
	if c.Exp == "all" {
		return nil
	}
	if _, ok := findExperiment(c.Exp); !ok {
		return fmt.Errorf("unknown experiment %q (want all, %s)", c.Exp, strings.Join(experimentNames(), ", "))
	}
	return nil
}

func main() {
	cfg := benchConfig{Exp: "all", Seed: 20240501, Scale: 1.0, Parallel: 4}
	res, err := config.Load(&cfg, config.Options{
		Name: "vqbench", EnvPrefix: "VQBENCH", Args: os.Args[1:],
		// The -exp help text carries the run-time experiment vocabulary.
		Usage: map[string]string{
			"exp": "experiment to run (all, " + strings.Join(experimentNames(), ", ") + ")",
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqbench: %v\n", err)
		os.Exit(2)
	}

	if cfg.Check != "" {
		// The gate reads previously written artifacts; combining it with
		// experiment selection or output flags is a misconfigured CI
		// step, not a request.
		if res.Explicit("exp") || res.Explicit("json") || res.Explicit("csv") {
			fmt.Fprintln(os.Stderr, "vqbench: -check cannot be combined with -exp/-json/-csv")
			os.Exit(2)
		}
		files, err := bench.BaselineFiles(cfg.Check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: %v\n", err)
			os.Exit(1)
		}
		if err := crosscheckArtifacts(files); err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: %v\n", err)
			os.Exit(1)
		}
		summary, err := bench.CheckBaselines(cfg.Check)
		if summary != "" {
			fmt.Println(summary)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baselines %s: all checks passed\n", cfg.Check)
		return
	}

	bcfg := bench.Config{Seed: cfg.Seed, Scale: cfg.Scale, Burn: cfg.Burn, Workers: cfg.Parallel}
	selected := []string{cfg.Exp}
	if cfg.Exp == "all" {
		selected = experimentNames()
	}
	var reports []*metrics.Report
	for _, name := range selected {
		e, ok := findExperiment(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "vqbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if e.text != nil {
			out, err := e.text(bcfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vqbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println(out)
			continue
		}
		start := time.Now()
		rep, err := e.run(bcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		reports = append(reports, rep)
		if cfg.CSV {
			fmt.Printf("# %s\n%s\n", rep.Title, rep.CSV())
		} else {
			fmt.Println(rep.String())
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}
	if cfg.JSONPath != "" {
		if len(reports) == 0 {
			// A gate consuming this file would read "null" and pass
			// vacuously; refuse instead.
			fmt.Fprintf(os.Stderr, "vqbench: -json with no reports produced (exp %q)\n", cfg.Exp)
			os.Exit(1)
		}
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d report(s) to %s\n", len(reports), cfg.JSONPath)
	}
}
