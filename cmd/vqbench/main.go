// Command vqbench regenerates the paper's tables and figures. Each
// experiment prints its report in the paper's row/series structure; see
// DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	vqbench [-exp all|fig13a|fig13b|fig14|fig15|fig16|table5|table6|table7|memo|planner|batch|lazy|dag]
//	        [-seed N] [-scale F] [-burn] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vqpy/internal/bench"
	"vqpy/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig13a, fig13b, fig14, fig15, fig16, table5, table6, table7, memo, planner, batch, lazy, dag)")
	seed := flag.Uint64("seed", 20240501, "experiment seed")
	scale := flag.Float64("scale", 1.0, "workload duration scale (1.0 = paper-like)")
	burn := flag.Bool("burn", false, "do real CPU work proportional to virtual cost")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Parse()

	cfg := bench.Config{Seed: *seed, Scale: *scale, Burn: *burn}
	runners := map[string]func(bench.Config) (*metrics.Report, error){
		"fig13a":  bench.RunFig13a,
		"fig13b":  bench.RunFig13b,
		"fig14":   bench.RunFig14,
		"fig15":   bench.RunFig15,
		"fig16":   bench.RunFig16,
		"table5":  bench.RunTable5,
		"table6":  bench.RunTable6,
		"table7":  bench.RunTable7,
		"memo":    bench.RunMemoAblation,
		"planner": bench.RunPlannerAblation,
		"batch":   bench.RunBatchAblation,
		"lazy":    bench.RunLazyAblation,
		"edge":    bench.RunEdgeAblation,
	}
	order := []string{"fig13a", "fig13b", "fig14", "fig15", "fig16", "table5", "table6", "table7", "memo", "planner", "batch", "lazy", "edge", "dag"}

	selected := []string{*exp}
	if *exp == "all" {
		selected = order
	}
	for _, name := range selected {
		if name == "dag" {
			out, err := bench.ExplainSuspectDAG(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vqbench: dag: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(out)
			continue
		}
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "vqbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", rep.Title, rep.CSV())
		} else {
			fmt.Println(rep.String())
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}
}
