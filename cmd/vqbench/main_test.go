package main

// Pins the -exp vocabulary: the experiments table is the source of
// truth, and both the doc comment's usage line and the derived flag
// help must cover every dispatch key (the drift this guards against:
// an experiment wired into the table but invisible in the docs).

import (
	"os"
	"strings"
	"testing"

	"vqpy/internal/bench"
)

func TestExperimentTableIsWellFormed(t *testing.T) {
	seen := make(map[string]bool, len(experiments))
	for _, e := range experiments {
		if e.name == "" || e.name == "all" {
			t.Errorf("experiment name %q is reserved", e.name)
		}
		if seen[e.name] {
			t.Errorf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if (e.run == nil) == (e.text == nil) {
			t.Errorf("experiment %q must set exactly one of run/text", e.name)
		}
		if got, ok := findExperiment(e.name); !ok || got.name != e.name {
			t.Errorf("findExperiment(%q) did not resolve", e.name)
		}
	}
	if _, ok := findExperiment("no-such-experiment"); ok {
		t.Error("findExperiment resolved an unknown name")
	}
}

func TestUsageDocCoversEveryExperiment(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, _, ok := strings.Cut(string(src), "package main")
	if !ok {
		t.Fatal("main.go has no package clause")
	}
	usage := ""
	for _, line := range strings.Split(doc, "\n") {
		if strings.Contains(line, "-exp all|") {
			usage = line
			break
		}
	}
	if usage == "" {
		t.Fatal("doc comment has no '-exp all|...' usage line")
	}
	for _, name := range experimentNames() {
		if !strings.Contains(usage, "|"+name) {
			t.Errorf("usage line omits experiment %q: %s", name, strings.TrimSpace(usage))
		}
	}
}

// TestBaselineArtifactPairing pins the -check gate's crosscheck against
// the repo's real baselines file: every gated BENCH_*.json artifact is
// produced by a registered experiment and vice versa, and both failure
// directions are detected.
func TestBaselineArtifactPairing(t *testing.T) {
	files, err := bench.BaselineFiles("../../bench_baselines.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("baselines reference no artifacts")
	}
	if err := crosscheckArtifacts(files); err != nil {
		t.Fatalf("repo baselines and experiments table disagree: %v", err)
	}

	// A baseline file nothing produces fails loudly...
	err = crosscheckArtifacts(append(append([]string{}, files...), "BENCH_99.json"))
	if err == nil || !strings.Contains(err.Error(), "BENCH_99.json") {
		t.Errorf("unproduced baseline artifact not detected: %v", err)
	}
	// ...and so does a produced artifact nothing gates.
	var ungated []string
	for _, f := range files {
		if f != "BENCH_8.json" {
			ungated = append(ungated, f)
		}
	}
	err = crosscheckArtifacts(ungated)
	if err == nil || !strings.Contains(err.Error(), "BENCH_8.json") || !strings.Contains(err.Error(), "fidelity") {
		t.Errorf("ungated experiment artifact not detected: %v", err)
	}
}

func TestFlagHelpCoversEveryExperiment(t *testing.T) {
	help := "experiment to run (all, " + strings.Join(experimentNames(), ", ") + ")"
	for _, name := range experimentNames() {
		if !strings.Contains(help, name) {
			t.Errorf("-exp help omits experiment %q", name)
		}
	}
}
