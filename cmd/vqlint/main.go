// Command vqlint runs the repository's in-tree hygiene checks: the
// doc-comment lint over the public Go API (the revive `exported` rule,
// reimplemented on go/ast so CI needs no external tool) and the
// offline markdown link checker. Both also run inside `go test
// ./internal/lint`; this command is the explicit CI step and the local
// pre-commit entry point.
//
// Usage:
//
//	vqlint [-docs file-or-dir,...] [-md file-or-dir,...]
//
// Directories expand non-recursively (.go files for -docs, *.md for
// -md). Exits non-zero when any issue is found, printing one line per
// issue.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vqpy/internal/lint"
)

func main() {
	docs := flag.String("docs", "", "comma-separated Go files or package directories for the doc-comment lint")
	md := flag.String("md", "", "comma-separated markdown files or directories for the link checker")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vqlint: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *docs == "" && *md == "" {
		fmt.Fprintln(os.Stderr, "vqlint: nothing to do (pass -docs and/or -md)")
		os.Exit(2)
	}

	var issues []string
	if *docs != "" {
		found, err := lint.CheckDocs(splitList(*docs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
			os.Exit(1)
		}
		issues = append(issues, found...)
	}
	if *md != "" {
		found, err := lint.CheckMarkdownLinks(splitList(*md))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
			os.Exit(1)
		}
		issues = append(issues, found...)
	}
	for _, issue := range issues {
		fmt.Println(issue)
	}
	if len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "vqlint: %d issue(s)\n", len(issues))
		os.Exit(1)
	}
	fmt.Println("vqlint: clean")
}

// splitList parses a comma-separated path list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
