// Command vqplan explains query plans: it prints every candidate DAG the
// planner enumerates for a query, the canary profiling results (cost and
// F1 against the most general plan), and which plan was selected — the
// §4.3 machinery made visible. The default query is the Figure 9/10
// example (suspect getting into a red car).
//
// Usage:
//
//	vqplan [-query suspect|redcar] [-seed N] [-target F]
package main

import (
	"flag"
	"fmt"
	"os"

	"vqpy"

	"vqpy/internal/bench"
)

func main() {
	query := flag.String("query", "suspect", "query to explain (suspect, redcar)")
	seed := flag.Uint64("seed", 42, "seed")
	target := flag.Float64("target", 0.9, "planner accuracy target")
	flag.Parse()

	switch *query {
	case "suspect":
		out, err := bench.ExplainSuspectDAG(bench.Config{Seed: *seed, Scale: 0.5})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqplan: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(out)
	case "redcar":
		s := vqpy.NewSession(*seed)
		s.SetNoBurn(true)
		v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(*seed, 60))
		car := vqpy.RedCar()
		q := vqpy.NewQuery("RedCarPlanned").
			Use("car", car).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.5),
				vqpy.P("car", "color").Eq("red"),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropTrackID))
		best, all, err := s.Explain(q, v, vqpy.WithAccuracyTarget(*target))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqplan: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%d candidate plans (accuracy target %.2f):\n\n", len(all), *target)
		for _, p := range all {
			marker := "   "
			if p == best {
				marker = ">> "
			}
			fmt.Printf("%s%s  est_cost=%.1fms  est_f1=%.3f\n%s\n", marker, p.Label, p.EstCostMS, p.EstF1, p)
		}
	default:
		fmt.Fprintf(os.Stderr, "vqplan: unknown query %q\n", *query)
		os.Exit(2)
	}
}
