// Command vqrun executes one of the library's named queries against a
// named scenario and prints the matched frames, events and virtual-time
// ledger — a small end-to-end driver for exploring the system.
//
// Usage:
//
//	vqrun [-query redcar|speeding|redspeeding|loitering|hitandrun]
//	      [-dataset cityflow|banff|jackson|southampton|auburn|pickup|retail]
//	      [-seconds N] [-seed N] [-parallel N] [-shared] [-store DIR] [-v]
//
// Every knob also loads from a -config JSON file and $VQRUN_*
// environment variables (defaults < file < env < flags; DESIGN.md §11).
//
// -query accepts a comma-separated list; with -parallel N > 1 the
// queries run on the parallel multi-query scheduler sharing one
// cross-query cache (one worker per N; results are identical to
// sequential execution). -shared instead compiles every query to the
// operator IR and multiplexes them over a single shared scan of the
// video (one decode and one detect/track per (model, frame) for the
// whole workload), again with identical results.
//
// -store DIR persists model outputs to the tiered result store and
// consults it before running a model, so re-running vqrun with the same
// store directory (and seed) answers from the archive: detector and
// property-model work disappears in every mode, and with -shared the
// tracker work goes too (the scan group's track ids replay from the
// archive). The run reports the store's hit/miss counters so the reuse
// is visible; results are bit-identical with or without the store.
package main

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"

	"vqpy"

	"vqpy/internal/config"
)

func buildQuery(name string) (vqpy.QueryNode, error) {
	switch name {
	case "redcar":
		car := vqpy.Car()
		return vqpy.NewQuery("RedCar").
			Use("car", car).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "color").Eq("red"),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate")), nil
	case "speeding":
		return vqpy.SpeedQuery("SpeedingCar", "car", vqpy.Car(), 12), nil
	case "redspeeding":
		car := vqpy.Car()
		return vqpy.NewQuery("RedSpeedingCar").
			Use("car", car).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "color").Eq("red"),
				vqpy.P("car", "velocity").Gt(12),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", vqpy.PropBBox)), nil
	case "loitering":
		person := vqpy.Person()
		base := vqpy.NewQuery("PersonPresent").
			Use("p", person).
			Where(vqpy.P("p", vqpy.PropScore).Gt(0.5))
		return vqpy.NewDurationQuery("Loitering", base, 20)
	case "hitandrun":
		person, car := vqpy.Person(), vqpy.Car()
		collision, err := vqpy.CollisionQuery("CarHitPerson", car, person, 100)
		if err != nil {
			return nil, err
		}
		runAway := vqpy.SpeedQuery("CarRunAway", "car2", vqpy.Car(), 8)
		return vqpy.NewTemporalQuery("HitAndRun", collision, runAway, 15)
	}
	return nil, fmt.Errorf("unknown query %q", name)
}

// runConfig is vqrun's typed configuration (internal/config): the
// flags, their $VQRUN_* bindings and the -config file keys.
type runConfig struct {
	Query    string  `flag:"query" json:"query" usage:"comma-separated queries to run (redcar, speeding, redspeeding, loitering, hitandrun)"`
	Dataset  string  `flag:"dataset" json:"dataset" usage:"scenario (cityflow, banff, jackson, southampton, auburn, pickup, retail)"`
	Seconds  float64 `flag:"seconds" json:"seconds" usage:"video length in seconds"`
	Seed     uint64  `flag:"seed" json:"seed" usage:"scenario and model seed"`
	Parallel int     `flag:"parallel" json:"parallel" usage:"worker pool size for multi-query execution (<=1 sequential)"`
	Shared   bool    `flag:"shared" json:"shared" usage:"multiplex all queries over one shared scan (single-pass engine)"`
	StoreDir string  `flag:"store" json:"store" usage:"persistent result store directory (empty = no persistence)"`
	Verbose  bool    `flag:"v" json:"verbose" usage:"print per-hit detail"`
}

// Validate accumulates every bad knob, mirroring the old one-by-one
// flag guards.
func (c *runConfig) Validate() error {
	var errs []error
	if c.Shared && c.Parallel > 1 {
		// The shared scan is single-pass by construction; silently
		// ignoring -parallel would misreport what actually ran.
		errs = append(errs, errors.New("-shared and -parallel > 1 are mutually exclusive"))
	}
	if c.Seconds <= 0 {
		errs = append(errs, fmt.Errorf("-seconds must be > 0 (got %g)", c.Seconds))
	}
	return errors.Join(errs...)
}

func main() {
	cfg := runConfig{Query: "redcar", Dataset: "cityflow", Seconds: 60, Seed: 42, Parallel: 1}
	if _, err := config.Load(&cfg, config.Options{
		Name: "vqrun", EnvPrefix: "VQRUN", Args: os.Args[1:],
	}); err != nil {
		fmt.Fprintf(os.Stderr, "vqrun: %v\n", err)
		os.Exit(2)
	}

	gens := map[string]func(uint64, float64) vqpy.Scenario{
		"cityflow": vqpy.DatasetCityFlow, "banff": vqpy.DatasetBanff,
		"jackson": vqpy.DatasetJackson, "southampton": vqpy.DatasetSouthampton,
		"auburn": vqpy.DatasetAuburn, "pickup": vqpy.DatasetPickup,
		"retail": vqpy.DatasetRetail,
	}
	gen, ok := gens[cfg.Dataset]
	if !ok {
		fmt.Fprintf(os.Stderr, "vqrun: unknown dataset %q\n", cfg.Dataset)
		os.Exit(2)
	}
	var nodes []vqpy.QueryNode
	for _, name := range strings.Split(cfg.Query, ",") {
		node, err := buildQuery(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqrun: %v\n", err)
			os.Exit(2)
		}
		nodes = append(nodes, node)
	}

	v := vqpy.GenerateVideo(gen(cfg.Seed, cfg.Seconds))
	s := vqpy.NewSession(cfg.Seed)
	s.SetNoBurn(true)
	var opts []vqpy.Option
	var st *vqpy.Store
	if cfg.StoreDir != "" {
		var err error
		if st, err = vqpy.OpenStore(cfg.StoreDir, cfg.Seed); err != nil {
			fmt.Fprintf(os.Stderr, "vqrun: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		for _, w := range st.Warnings() {
			fmt.Fprintf(os.Stderr, "vqrun: warning: %s\n", w)
		}
		opts = append(opts, vqpy.WithStore(st))
	}
	var results []*vqpy.RunResult
	var err error
	if cfg.Shared {
		results, err = s.ExecuteShared(nodes, v, opts...)
	} else {
		results, err = s.ExecuteAll(nodes, v, cfg.Parallel, opts...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqrun: %v\n", err)
		os.Exit(1)
	}

	if cfg.Shared {
		fmt.Printf("%d quer%s on %s (%d frames @ %d fps, single shared scan)\n",
			len(results), pluralIes(len(results)), v.Name, len(v.Frames), v.FPS)
	} else {
		// Mirror the scheduler's effective pool size (plan.RunAll clamps).
		workers := cfg.Parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(nodes) {
			workers = len(nodes)
		}
		fmt.Printf("%d quer%s on %s (%d frames @ %d fps, %d worker%s)\n",
			len(results), pluralIes(len(results)), v.Name, len(v.Frames), v.FPS,
			workers, plural(workers))
	}
	for _, rr := range results {
		fmt.Printf("\nquery %s: matched %d/%d frames, %d events\n",
			rr.Name, rr.MatchedCount(), len(rr.Matched), len(rr.Events))
		for _, ev := range rr.Events {
			fmt.Printf("  event: frames %d-%d (%.1fs)\n", ev.Start, ev.End, float64(ev.Frames())/float64(v.FPS))
		}
		if rr.Basic != nil {
			if rr.Basic.Count > 0 {
				fmt.Printf("video aggregation count: %d\n", rr.Basic.Count)
			}
			if cfg.Verbose {
				for _, hit := range rr.Basic.Hits {
					fmt.Printf("  frame %5d t=%6.1fs:", hit.FrameIdx, hit.TimeSec)
					for _, o := range hit.Objects {
						fmt.Printf("  %s#%d %v", o.Instance, o.TrackID, o.Values)
					}
					fmt.Println()
				}
			}
		}
	}
	fmt.Printf("\n%s", s.Clock())
	if st != nil {
		stats := st.TierStats()
		c := st.Counters()
		fmt.Printf("\nresult store %s: %d scan / %d det / %d label records (%d hot, %d evicted)\n",
			cfg.StoreDir, stats.ScanRecords, stats.DetRecords, stats.LabelRecords,
			stats.MemRecords, stats.Evicted)
		fmt.Printf("  hits: scan %d+%d det %d+%d label %d+%d (mem+disk), misses: scan %d det %d label %d\n",
			c.Get("scan_mem_hits"), c.Get("scan_disk_hits"),
			c.Get("det_mem_hits"), c.Get("det_disk_hits"),
			c.Get("label_mem_hits"), c.Get("label_disk_hits"),
			c.Get("scan_misses"), c.Get("det_misses"), c.Get("label_misses"))
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

func pluralIes(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
