// Command vqserve is the live serving daemon: it registers scenario
// sources (the reproduction's stand-in for cameras), drives one dynamic
// shared-scan MuxStream per source on a frame-rate ticker, and lets
// queries attach and detach over HTTP while frames keep flowing.
//
// Configuration (DESIGN.md §11) is layered: built-in defaults, then a
// JSON config file (-config PATH or $VQSERVE_CONFIG), then $VQSERVE_*
// environment variables, then flags — each layer overriding the last,
// so the daemon runs with ZERO flags from a file or environment alone.
//
// Usage:
//
//	vqserve [-config FILE] [-addr :8791] [-sources cityflow,retail]
//	        [-seconds 60] [-seed 42] [-speed 1] [-budget-ms 0] [-loop]
//	        [-store DIR] [-index DIR] [-attach source:query,...]
//	        [-fleet N] [-chaos] [-chaos-seed N]
//	        [-tenants name:share[:rate[:burst]],...]
//
// API:
//
//	POST   /queries              {"source":"cityflow","query":"redcar"}
//	                             (+"backfill":true replays scanned history)
//	                             (+"mode":"search" answers an archive search
//	                             synchronously: probe-then-verify over the fed
//	                             frames, tuned by "track"/"threshold"/"topk";
//	                             requires -store and -index)
//	DELETE /queries/{id}         detach, returns the final result
//	GET    /queries/{id}/results live result snapshot (?since=F for deltas)
//	GET    /streamz              sources, scan groups, lanes, counters, store,
//	                             degradation state (breakers, quarantines)
//	GET    /metrics              Prometheus text exposition (DESIGN.md §11)
//	GET    /healthz              liveness + degradation summary (always 200)
//	GET    /readyz               readiness (503 while draining)
//
// Fleet mode (-fleet N, DESIGN.md §8) replaces -sources with N
// correlated camera clips sharing one entity population, driven in
// lockstep with batched cross-source detector inference and a global
// re-ID registry, and adds the fleet-wide query surface (-attach
// accepts the pseudo-source "fleet", e.g. -attach fleet:redcar, to
// register a standing fleet-wide query before frames start flowing):
//
//	POST   /fleet/queries              {"query":"redcar"} → all cameras at once
//	DELETE /fleet/queries/{id}         detach everywhere, per-source finals
//	GET    /fleet/queries/{id}/results merged per-global-id view with
//	                                   provenance (?min_sources=&window_sec=)
//
// -speed multiplies the frame rate (10 feeds a 30fps source at 300fps);
// -budget-ms rejects queries (HTTP 503) whose estimated per-frame
// virtual cost would push a source past the budget; -loop wraps each
// clip endlessly. -store DIR persists every source's scan output to the
// tiered result store: a daemon restarted over the same directory (and
// seed) serves frames it already scanned at zero model cost, and
// backfill attaches replay a joining query over the scanned history.
// -attach registers standing queries before the first frame is fed —
// with -store, that guarantees the archive covers the stream from
// frame zero, which is what later backfill attaches need. See
// DESIGN.md §6 for attach/detach semantics and §7 for the store.
//
// -index DIR opens the appearance-embedding index (DESIGN.md §10) over
// the store and enables the archive-search mode above: each search
// warms the archive up to the fed-frame watermark, extracts new tracks
// into the index (one embedding per track, ever), probes it for
// candidate tracks and verifies only their frames. /streamz gains an
// index block (probes, candidates, verified frames, pruned-frame
// ratio). Requires -store; incompatible with -fleet.
//
// -chaos enables the deterministic fault injector (DESIGN.md §9) with
// a canned schedule seeded by -chaos-seed: transient model errors the
// retry layer absorbs, occasional terminal failure windows that trip
// circuit breakers into fallback detectors, source stalls that
// quarantine a camera, and store write/read faults. Degradation state
// is visible on /streamz and /healthz.
//
// -tenants enables multi-tenant QoS (DESIGN.md §11): each tenant's
// share carves a slice of -budget-ms, over-slice attaches and
// rate-limited requests answer 429 with a Retry-After header, and
// requests name their tenant with the X-Tenant header. SIGHUP reloads
// the configuration in place: budget and tenant changes apply to the
// running daemon (logged as "config reloaded"); anything else —
// sources, store, fleet shape, listen address — logs a restart-needed
// notice and keeps its old value.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// admitting queries and frames (readyz flips to 503), detaches and
// finalizes every live query, flushes the store, then stops the HTTP
// listener.
package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vqpy"

	"vqpy/internal/config"
	"vqpy/internal/serve"
)

// chaosSchedule is the canned -chaos fault plan: enough of every
// failure domain to exercise retries, breakers, fallbacks, quarantine
// and store degradation on a long-running daemon without drowning it.
func chaosSchedule(seed uint64) vqpy.FaultSchedule {
	return vqpy.FaultSchedule{
		Seed: seed,
		Rules: []vqpy.FaultRule{
			// Transient model errors: absorbed by retry, zero verdict impact.
			{Kind: vqpy.FaultModelError, Rate: 0.05, Persist: 1},
			// Transient timeouts: absorbed by retry, charged on the clock.
			{Kind: vqpy.FaultModelTimeout, Rate: 0.02, Persist: 1, DeadlineMS: 40},
			// A recurring terminal window: trips breakers into fallback.
			{Kind: vqpy.FaultModelError, Rate: 0.01, Persist: 10},
			// Source stalls: a camera wedges and gets quarantined.
			{Kind: vqpy.FaultSourceStall, Rate: 0.01, Persist: 6},
			// Dropped frames.
			{Kind: vqpy.FaultSourceDrop, Rate: 0.005, Persist: 1},
			// Store faults: writes degrade a tier to memory-only, reads
			// become misses.
			{Kind: vqpy.FaultStoreRead, Rate: 0.02, Persist: 1},
		},
	}
}

func main() {
	cfg, res, err := config.LoadServe(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqserve: %v\n", err)
		os.Exit(2)
	}
	if res.File != "" {
		fmt.Printf("vqserve: config file %s\n", res.File)
	}

	var inj *vqpy.FaultInjector
	if cfg.Chaos {
		inj = vqpy.NewFaultInjector(chaosSchedule(cfg.ChaosSeed))
	}
	s, err := serve.NewServer(serve.Config{
		Seed: cfg.Seed, Seconds: cfg.Seconds, Speed: cfg.Speed, BudgetMS: cfg.BudgetMS,
		Loop: cfg.Loop, StoreDir: cfg.StoreDir, IndexDir: cfg.IndexDir,
		FleetCams: cfg.FleetCams, Tenants: cfg.Tenants, Faults: inj,
	}, cfg.SourceList())
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqserve: %v\n", err)
		os.Exit(1)
	}
	// Standing queries attach before Run starts the tickers, so they
	// (and the store archive) see the stream from frame zero. The
	// pseudo-source "fleet" attaches a fleet-wide query to every camera
	// at once (fleet mode only).
	if cfg.Attach != "" {
		for _, pair := range strings.Split(cfg.Attach, ",") {
			sourceName, queryName, ok := strings.Cut(strings.TrimSpace(pair), ":")
			if !ok {
				fmt.Fprintf(os.Stderr, "vqserve: -attach %q: want source:query (or fleet:query)\n", pair)
				os.Exit(2)
			}
			var id int
			var err error
			if sourceName == "fleet" {
				id, err = s.AttachFleet(queryName)
			} else {
				id, err = s.AttachNamed(sourceName, queryName)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "vqserve: -attach %s: %v\n", pair, err)
				os.Exit(1)
			}
			fmt.Printf("vqserve: attached standing query %s on %s (id %d)\n", queryName, sourceName, id)
		}
	}
	s.Run()
	defer s.Close()

	// SIGHUP hot reload: re-run the whole precedence chain (same args,
	// file and environment re-read) and apply the ops-tunable subset —
	// budget and tenants — to the running daemon. Changes to anything
	// else are logged as needing a restart and otherwise ignored.
	stopWatch := config.Watch(func() {
		next, _, err := config.LoadServe(os.Args[1:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqserve: reload rejected: %v\n", err)
			return
		}
		if restart := restartOnlyChanges(cfg, next); len(restart) > 0 {
			fmt.Printf("vqserve: reload: %s need a restart; keeping old values\n", strings.Join(restart, ", "))
		}
		s.ApplyOps(serve.OpsConfig{BudgetMS: next.BudgetMS, Tenants: next.Tenants})
		tl := config.TenantList(next.Tenants)
		text, _ := tl.MarshalText()
		fmt.Printf("vqserve: config reloaded (budget %.1f ms/frame, tenants: %s)\n", next.BudgetMS, orNone(string(text)))
	})
	defer stopWatch()

	persistence := "off"
	if cfg.StoreDir != "" {
		persistence = cfg.StoreDir
		if cfg.IndexDir != "" {
			persistence += " (index: " + cfg.IndexDir + ")"
		}
	}
	serving := strings.Join(cfg.SourceList(), ",")
	queries := strings.Join(serve.QueryNames(), ",")
	if cfg.FleetCams > 0 {
		serving = fmt.Sprintf("fleet of %d cameras (%s)", cfg.FleetCams, strings.Join(s.SourceNamesRegistered(), ","))
		queries = queries + "; fleet: " + strings.Join(serve.FleetQueryNames(), ",")
	}
	chaosNote := ""
	if cfg.Chaos {
		chaosNote = fmt.Sprintf(", chaos seed %d", cfg.ChaosSeed)
	}
	tenantNote := ""
	if len(cfg.Tenants) > 0 {
		text, _ := config.TenantList(cfg.Tenants).MarshalText()
		tenantNote = ", tenants: " + string(text)
	}
	fmt.Printf("vqserve: serving %s on %s (speed %gx, budget %.1f ms/frame, store: %s%s%s, queries: %s)\n",
		serving, cfg.Addr, cfg.Speed, cfg.BudgetMS, persistence, chaosNote, tenantNote, queries)

	// Graceful shutdown: SIGINT/SIGTERM drains before the listener goes
	// down — stop admitting (readyz → 503), detach and finalize every
	// live query, flush the store, then stop serving HTTP.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: cfg.Addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "vqserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("vqserve: signal received, draining")
		sum := s.Drain()
		fmt.Printf("vqserve: drained %d queries (%d fleet), store flushed: %v\n",
			sum.QueriesDetached, sum.FleetQueriesDetached, sum.StoreFlushed)
		if err := httpSrv.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "vqserve: shutdown: %v\n", err)
		}
		fmt.Println("vqserve: stopped")
	}
}

// restartOnlyChanges names the reloaded fields a SIGHUP cannot apply to
// a running daemon.
func restartOnlyChanges(cur, next config.Config) []string {
	var out []string
	if next.Addr != cur.Addr {
		out = append(out, "addr")
	}
	if next.Sources != cur.Sources {
		out = append(out, "sources")
	}
	if next.Seconds != cur.Seconds {
		out = append(out, "seconds")
	}
	if next.Seed != cur.Seed {
		out = append(out, "seed")
	}
	if next.Speed != cur.Speed {
		out = append(out, "speed")
	}
	if next.Loop != cur.Loop {
		out = append(out, "loop")
	}
	if next.StoreDir != cur.StoreDir {
		out = append(out, "store")
	}
	if next.IndexDir != cur.IndexDir {
		out = append(out, "index")
	}
	if next.Attach != cur.Attach {
		out = append(out, "attach")
	}
	if next.FleetCams != cur.FleetCams {
		out = append(out, "fleet")
	}
	if next.Chaos != cur.Chaos || next.ChaosSeed != cur.ChaosSeed {
		out = append(out, "chaos")
	}
	return out
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
