// Command vqserve is the live serving daemon: it registers scenario
// sources (the reproduction's stand-in for cameras), drives one dynamic
// shared-scan MuxStream per source on a frame-rate ticker, and lets
// queries attach and detach over HTTP while frames keep flowing.
//
// Usage:
//
//	vqserve [-addr :8791] [-sources cityflow,retail] [-seconds 60]
//	        [-seed 42] [-speed 1] [-budget-ms 0] [-loop] [-store DIR]
//	        [-index DIR] [-attach source:query,...] [-fleet N]
//	        [-chaos] [-chaos-seed N]
//
// API:
//
//	POST   /queries              {"source":"cityflow","query":"redcar"}
//	                             (+"backfill":true replays scanned history)
//	                             (+"mode":"search" answers an archive search
//	                             synchronously: probe-then-verify over the fed
//	                             frames, tuned by "track"/"threshold"/"topk";
//	                             requires -store and -index)
//	DELETE /queries/{id}         detach, returns the final result
//	GET    /queries/{id}/results live result snapshot (?since=F for deltas)
//	GET    /streamz              sources, scan groups, lanes, counters, store,
//	                             degradation state (breakers, quarantines)
//	GET    /healthz              liveness + degradation summary (always 200)
//	GET    /readyz               readiness (503 while draining)
//
// Fleet mode (-fleet N, DESIGN.md §8) replaces -sources with N
// correlated camera clips sharing one entity population, driven in
// lockstep with batched cross-source detector inference and a global
// re-ID registry, and adds the fleet-wide query surface (-attach
// accepts the pseudo-source "fleet", e.g. -attach fleet:redcar, to
// register a standing fleet-wide query before frames start flowing):
//
//	POST   /fleet/queries              {"query":"redcar"} → all cameras at once
//	DELETE /fleet/queries/{id}         detach everywhere, per-source finals
//	GET    /fleet/queries/{id}/results merged per-global-id view with
//	                                   provenance (?min_sources=&window_sec=)
//
// -speed multiplies the frame rate (10 feeds a 30fps source at 300fps);
// -budget-ms rejects queries (HTTP 503) whose estimated per-frame
// virtual cost would push a source past the budget; -loop wraps each
// clip endlessly. -store DIR persists every source's scan output to the
// tiered result store: a daemon restarted over the same directory (and
// seed) serves frames it already scanned at zero model cost, and
// backfill attaches replay a joining query over the scanned history.
// -attach registers standing queries before the first frame is fed —
// with -store, that guarantees the archive covers the stream from
// frame zero, which is what later backfill attaches need. See
// DESIGN.md §6 for attach/detach semantics and §7 for the store.
//
// -index DIR opens the appearance-embedding index (DESIGN.md §10) over
// the store and enables the archive-search mode above: each search
// warms the archive up to the fed-frame watermark, extracts new tracks
// into the index (one embedding per track, ever), probes it for
// candidate tracks and verifies only their frames. /streamz gains an
// index block (probes, candidates, verified frames, pruned-frame
// ratio). Requires -store; incompatible with -fleet.
//
// -chaos enables the deterministic fault injector (DESIGN.md §9) with
// a canned schedule seeded by -chaos-seed: transient model errors the
// retry layer absorbs, occasional terminal failure windows that trip
// circuit breakers into fallback detectors, source stalls that
// quarantine a camera, and store write/read faults. Degradation state
// is visible on /streamz and /healthz.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// admitting queries and frames (readyz flips to 503), detaches and
// finalizes every live query, flushes the store, then stops the HTTP
// listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vqpy"

	"vqpy/internal/serve"
)

// chaosSchedule is the canned -chaos fault plan: enough of every
// failure domain to exercise retries, breakers, fallbacks, quarantine
// and store degradation on a long-running daemon without drowning it.
func chaosSchedule(seed uint64) vqpy.FaultSchedule {
	return vqpy.FaultSchedule{
		Seed: seed,
		Rules: []vqpy.FaultRule{
			// Transient model errors: absorbed by retry, zero verdict impact.
			{Kind: vqpy.FaultModelError, Rate: 0.05, Persist: 1},
			// Transient timeouts: absorbed by retry, charged on the clock.
			{Kind: vqpy.FaultModelTimeout, Rate: 0.02, Persist: 1, DeadlineMS: 40},
			// A recurring terminal window: trips breakers into fallback.
			{Kind: vqpy.FaultModelError, Rate: 0.01, Persist: 10},
			// Source stalls: a camera wedges and gets quarantined.
			{Kind: vqpy.FaultSourceStall, Rate: 0.01, Persist: 6},
			// Dropped frames.
			{Kind: vqpy.FaultSourceDrop, Rate: 0.005, Persist: 1},
			// Store faults: writes degrade a tier to memory-only, reads
			// become misses.
			{Kind: vqpy.FaultStoreRead, Rate: 0.02, Persist: 1},
		},
	}
}

func main() {
	addr := flag.String("addr", ":8791", "HTTP listen address")
	sources := flag.String("sources", "cityflow", "comma-separated scenario sources to register")
	seconds := flag.Float64("seconds", 60, "clip length per source in seconds")
	seed := flag.Uint64("seed", 42, "scenario and model seed")
	speed := flag.Float64("speed", 1, "frame ticker speed multiplier (x capture rate)")
	budget := flag.Float64("budget-ms", 0, "per-frame virtual-time admission budget per source (0 = admit all)")
	loop := flag.Bool("loop", false, "wrap clips endlessly (live-camera stand-in)")
	storeDir := flag.String("store", "", "persistent result store directory (empty = no persistence)")
	indexDir := flag.String("index", "", "appearance index directory enabling archive search (requires -store)")
	attach := flag.String("attach", "", "comma-separated source:query pairs to attach before frames start flowing")
	fleetCams := flag.Int("fleet", 0, "fleet mode: drive N correlated cameras in lockstep with batched cross-source inference (replaces -sources)")
	chaos := flag.Bool("chaos", false, "enable the deterministic fault injector with a canned schedule (DESIGN.md §9)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault schedule seed (with -chaos)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vqserve: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *speed <= 0 {
		fmt.Fprintf(os.Stderr, "vqserve: -speed must be > 0 (got %g)\n", *speed)
		os.Exit(2)
	}

	var names []string
	for _, name := range strings.Split(*sources, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	var inj *vqpy.FaultInjector
	if *chaos {
		inj = vqpy.NewFaultInjector(chaosSchedule(*chaosSeed))
	}
	s, err := serve.NewServer(serve.Config{
		Seed: *seed, Seconds: *seconds, Speed: *speed, BudgetMS: *budget, Loop: *loop,
		StoreDir: *storeDir, IndexDir: *indexDir, FleetCams: *fleetCams, Faults: inj,
	}, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqserve: %v\n", err)
		os.Exit(1)
	}
	// Standing queries attach before Run starts the tickers, so they
	// (and the store archive) see the stream from frame zero. The
	// pseudo-source "fleet" attaches a fleet-wide query to every camera
	// at once (fleet mode only).
	if *attach != "" {
		for _, pair := range strings.Split(*attach, ",") {
			sourceName, queryName, ok := strings.Cut(strings.TrimSpace(pair), ":")
			if !ok {
				fmt.Fprintf(os.Stderr, "vqserve: -attach %q: want source:query (or fleet:query)\n", pair)
				os.Exit(2)
			}
			var id int
			var err error
			if sourceName == "fleet" {
				id, err = s.AttachFleet(queryName)
			} else {
				id, err = s.AttachNamed(sourceName, queryName)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "vqserve: -attach %s: %v\n", pair, err)
				os.Exit(1)
			}
			fmt.Printf("vqserve: attached standing query %s on %s (id %d)\n", queryName, sourceName, id)
		}
	}
	s.Run()
	defer s.Close()

	persistence := "off"
	if *storeDir != "" {
		persistence = *storeDir
		if *indexDir != "" {
			persistence += " (index: " + *indexDir + ")"
		}
	}
	serving := strings.Join(names, ",")
	queries := strings.Join(serve.QueryNames(), ",")
	if *fleetCams > 0 {
		serving = fmt.Sprintf("fleet of %d cameras (%s)", *fleetCams, strings.Join(s.SourceNamesRegistered(), ","))
		queries = queries + "; fleet: " + strings.Join(serve.FleetQueryNames(), ",")
	}
	chaosNote := ""
	if *chaos {
		chaosNote = fmt.Sprintf(", chaos seed %d", *chaosSeed)
	}
	fmt.Printf("vqserve: serving %s on %s (speed %gx, budget %.1f ms/frame, store: %s%s, queries: %s)\n",
		serving, *addr, *speed, *budget, persistence, chaosNote, queries)

	// Graceful shutdown: SIGINT/SIGTERM drains before the listener goes
	// down — stop admitting (readyz → 503), detach and finalize every
	// live query, flush the store, then stop serving HTTP.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "vqserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("vqserve: signal received, draining")
		sum := s.Drain()
		fmt.Printf("vqserve: drained %d queries (%d fleet), store flushed: %v\n",
			sum.QueriesDetached, sum.FleetQueriesDetached, sum.StoreFlushed)
		if err := httpSrv.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "vqserve: shutdown: %v\n", err)
		}
		fmt.Println("vqserve: stopped")
	}
}
