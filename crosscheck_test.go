package vqpy_test

import (
	"testing"

	"vqpy"

	"vqpy/internal/metrics"
	"vqpy/internal/sqlbase"
	"vqpy/internal/video"
)

// TestVQPyAgreesWithEVA is a cross-system oracle check: the VQPy engine
// and the SQL baseline answer the same red-car query over the same video
// with the same underlying models, so their matched-frame sets must
// agree closely (differences come only from tracker-memo propagation of
// per-frame classifier noise).
func TestVQPyAgreesWithEVA(t *testing.T) {
	sc := video.CityFlow(88, 30)
	v := sc.Generate()

	// VQPy side.
	s := vqpy.NewSession(88)
	s.SetNoBurn(true)
	q := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.5),
			vqpy.P("car", "color").Eq("red"),
		))
	rr, err := s.Execute(q, v, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized(), vqpy.WithoutMemo())
	if err != nil {
		t.Fatal(err)
	}
	vqpyFrames := map[int]bool{}
	for i, m := range rr.Matched {
		if m {
			vqpyFrames[i] = true
		}
	}

	// EVA side (same seed → same model noise). The baseline engine keeps
	// EVA's own row-at-a-time execution so this stays a cross-system
	// check; the planner-backed engine's agreement is covered in
	// internal/sqlbase/compile_test.go.
	s2 := vqpy.NewSession(88)
	s2.SetNoBurn(true)
	eng := sqlbase.NewEVABaseline(s2.Env(), s2.Registry())
	sqlbase.RegisterStandardUDFs(eng)
	eng.RegisterVideo("v.mp4", v)
	res, err := eng.ExecScript(sqlbase.RedCarScript("v.mp4"))
	if err != nil {
		t.Fatal(err)
	}
	evaFrames := res.FrameSet("id")

	conf := metrics.CompareFrameSets(vqpyFrames, evaFrames, len(v.Frames))
	if f1 := conf.F1(); f1 < 0.85 {
		t.Errorf("VQPy and EVA disagree: F1 = %.3f (vqpy %d frames, eva %d frames)",
			f1, len(vqpyFrames), len(evaFrames))
	}
}

// TestVQPyAgreesWithGroundTruth closes the loop against the synthetic
// oracle itself.
func TestVQPyAgreesWithGroundTruth(t *testing.T) {
	v := video.CityFlow(89, 60).Generate()
	s := vqpy.NewSession(89)
	s.SetNoBurn(true)
	q := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.5),
			vqpy.P("car", "color").Eq("red"),
		))
	rr, err := s.Execute(q, v, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
	if err != nil {
		t.Fatal(err)
	}
	truth := v.FramesMatching(func(o video.Object) bool {
		return o.Class == video.ClassCar && o.Color == video.ColorRed
	})
	conf := metrics.CompareMatched(rr.Matched, truth)
	if f1 := conf.F1(); f1 < 0.85 {
		t.Errorf("ground-truth F1 = %.3f (p=%.2f r=%.2f)", f1, conf.Precision(), conf.Recall())
	}
}
