package vqpy_test

import (
	"math"
	"testing"

	"vqpy"
)

// TestDevicePlacementAccounting verifies the §4.1 placement view: every
// charged millisecond is attributed to exactly one device, uplink is
// charged per surviving frame, and the device view never double-counts
// against the total.
func TestDevicePlacementAccounting(t *testing.T) {
	s := vqpy.NewSession(90)
	s.SetNoBurn(true)
	v := vqpy.GenerateVideo(vqpy.DatasetBanff(90, 60))
	q := vqpy.NewQuery("RedCarEdge").
		Use("car", vqpy.RedCar()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.5),
			vqpy.P("car", "color").Eq("red"),
		))
	if _, err := s.Execute(q, v, vqpy.WithoutSpecialized(), vqpy.WithEdgePlacement(2)); err != nil {
		t.Fatal(err)
	}
	total := s.Clock().TotalMS()
	edge := s.Clock().Account("device:edge")
	server := s.Clock().Account("device:server")
	uplink := s.Clock().Account("net:uplink")
	if edge <= 0 {
		t.Error("no edge time attributed")
	}
	if server <= 0 {
		t.Error("no server time attributed")
	}
	if uplink <= 0 {
		t.Error("no uplink charged")
	}
	// The device view re-slices the main-run charges. Canary profiling
	// runs on an isolated clock, so edge+server+uplink must equal the
	// session total.
	if got := edge + server + uplink; math.Abs(got-total) > total*0.01+1 {
		t.Errorf("device attribution %.1f != total %.1f (edge %.1f server %.1f uplink %.1f)",
			got, total, edge, server, uplink)
	}
}

// TestNoDeviceAccountsWithoutPlacement: placement accounting is strictly
// opt-in.
func TestNoDeviceAccountsWithoutPlacement(t *testing.T) {
	s := vqpy.NewSession(91)
	s.SetNoBurn(true)
	v := vqpy.GenerateVideo(vqpy.DatasetBanff(91, 20))
	q := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", "color").Eq("red"))
	if _, err := s.Execute(q, v, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized()); err != nil {
		t.Fatal(err)
	}
	if s.Clock().Account("device:server") != 0 || s.Clock().Account("net:uplink") != 0 {
		t.Error("device accounts appeared without WithEdgePlacement")
	}
}

// TestResultCacheFacade: repeated Execute with a result cache is free.
func TestResultCacheFacade(t *testing.T) {
	s := vqpy.NewSession(92)
	s.SetNoBurn(true)
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(92, 20))
	rc := vqpy.NewResultCache()
	q := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", "color").Eq("red"))
	r1, err := s.Execute(q, v, vqpy.WithResultCache(rc), vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
	if err != nil {
		t.Fatal(err)
	}
	costAfterFirst := s.Clock().TotalMS()
	r2, err := s.Execute(q, v, vqpy.WithResultCache(rc), vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
	if err != nil {
		t.Fatal(err)
	}
	if s.Clock().TotalMS() != costAfterFirst {
		t.Error("cached re-execution charged time")
	}
	if r1.MatchedCount() != r2.MatchedCount() {
		t.Error("cached result differs")
	}
}
