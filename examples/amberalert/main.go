// Amber alert: find a red car whose license plate ends in a known
// fragment — the §4.2 motivating example for intrinsic properties
// ("an amber alert query may search for a red car with a license plate
// ending at 45, where both the red color and the license plate are
// intrinsic properties").
//
// The example also demonstrates the §4.4 extension workflow: registering
// a user-provided specialized NN and binary classifier on the RedCar
// VObj (Figure 11) and letting the planner decide whether to use them.
//
//	go run ./examples/amberalert
package main

import (
	"fmt"
	"log"

	"vqpy"
)

func main() {
	s := vqpy.NewSession(7)
	s.SetNoBurn(true)
	video := vqpy.GenerateVideo(vqpy.DatasetCityFlow(7, 120))

	// RedCar extends Car and registers the specialized detector and the
	// no_red_on_road binary classifier (both already in the zoo; a user
	// model would be added with s.RegisterModel first).
	redCar := vqpy.RedCar()

	query := vqpy.NewQuery("AmberAlert").
		Use("car", redCar).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.5),
			vqpy.P("car", "color").Eq("red"),
			vqpy.P("car", "plate").Contains("4"),
		)).
		FrameOutput(
			vqpy.Sel("car", vqpy.PropTrackID),
			vqpy.Sel("car", "plate"),
			vqpy.Sel("car", vqpy.PropBBox),
		)

	// Explain first: show the plan alternatives the planner profiled.
	best, all, err := s.Explain(query, video)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner considered %d DAGs; selected %q (est %.0f ms, F1 %.2f):\n%s\n",
		len(all), best.Label, best.EstCostMS, best.EstF1, best)

	res, err := s.Execute(query, video)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alert frames: %d\n", res.MatchedCount())
	seen := map[int]string{}
	for _, hit := range res.Basic.Hits {
		for _, obj := range hit.Objects {
			if p, ok := obj.Values["plate"].(string); ok {
				seen[obj.TrackID] = p
			}
		}
	}
	for id, plate := range seen {
		fmt.Printf("  suspect vehicle track %d, plate %s\n", id, plate)
	}
}
