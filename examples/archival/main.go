// Command archival demonstrates the tiered persistent result store
// (DESIGN.md §7): query results over archival video are computed once
// and replayed forever after, across process restarts.
//
// The walkthrough runs the same query twice against one store
// directory, each pass in a fresh session — the in-process stand-in for
// "run the binary, kill it, run it again". Pass 1 archives every
// detector output, shared-scan track id and evaluated property value;
// pass 2 answers from the archive, and the printed invocation counts
// prove it: the detector and tracker never run.
//
// To see the reuse survive a real process restart, pin the directory
// and run the binary twice:
//
//	go run ./examples/archival -store /tmp/vqpy-archive
//	go run ./examples/archival -store /tmp/vqpy-archive
//
// Without -store a temporary directory is used (and removed), which is
// what the CI smoke run does.
package main

import (
	"fmt"
	"log"
	"os"

	"vqpy"
)

func buildQueries() []vqpy.QueryNode {
	redCar := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate"))
	plates := vqpy.NewQuery("Plates").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.7)).
		FrameOutput(vqpy.Sel("car", "plate"))
	return []vqpy.QueryNode{redCar, plates}
}

// modelInvocations sums detector and tracker invocation counts — the
// work the store eliminates on a warm pass.
func modelInvocations(s *vqpy.Session) (detect, tracker int64) {
	for name, n := range s.Clock().InvocationTotals() {
		switch name {
		case "yolox", "yolov8m", "yolov5s", "car_detector", "person_detector",
			"red_car_specialized", "ball_person_cheap":
			detect += n
		case "tracker":
			tracker = n
		}
	}
	return detect, tracker
}

// runPass executes the workload in a fresh session over the store
// directory — one simulated process lifetime.
func runPass(label, dir string, seed uint64) {
	st, err := vqpy.OpenStore(dir, seed)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(seed, 20))
	results, err := s.ExecuteShared(buildQueries(), v, vqpy.WithStore(st))
	if err != nil {
		log.Fatal(err)
	}

	detect, tracker := modelInvocations(s)
	fmt.Printf("%s pass over %s (%d frames):\n", label, v.Name, len(v.Frames))
	for _, r := range results {
		fmt.Printf("  %-8s matched %d/%d frames, %d events\n",
			r.Name, r.MatchedCount(), len(r.Matched), len(r.Events))
	}
	stats := st.TierStats()
	fmt.Printf("  detector invocations: %d, tracker invocations: %d, virtual time: %.0f ms\n",
		detect, tracker, s.Clock().TotalMS())
	fmt.Printf("  store: %d scan / %d det / %d label records archived\n\n",
		stats.ScanRecords, stats.DetRecords, stats.LabelRecords)
}

func main() {
	dir := ""
	if len(os.Args) > 2 && os.Args[1] == "-store" {
		dir = os.Args[2]
	} else {
		tmp, err := os.MkdirTemp("", "vqpy-archival-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	const seed = 42

	runPass("cold", dir, seed) // archives while it computes
	runPass("warm", dir, seed) // fresh session: answers from the archive
	fmt.Println("identical answers, zero detector/tracker invocations on the warm pass —")
	fmt.Println("archival queries pay model cost once per archive, not once per ask.")
}
