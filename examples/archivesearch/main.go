// Command archivesearch demonstrates archive-scale appearance search
// (DESIGN.md §10): "find every frame where this object appears" over an
// archived clip, answered through the persistent appearance index
// instead of a full rescan.
//
// The walkthrough ingests a clip into the result store once, extracts
// the appearance index from the archive (one embedding per track,
// ever), then answers the same search two ways in fresh sessions: the
// index-then-verify fast path — probe the index for candidate tracks,
// verify only the frames they span — and the full-rescan baseline. The
// printed counts prove the contract: bit-identical answers, a small
// fraction of the frames verified, a fraction of the virtual cost.
//
// To keep the archive and index across runs, pin the directory:
//
//	go run ./examples/archivesearch -dir /tmp/vqpy-search
//	go run ./examples/archivesearch -dir /tmp/vqpy-search
//
// Without -dir a temporary directory is used (and removed), which is
// what the CI smoke run does.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"vqpy"
)

// searchQuery is the index-verifiable search shape: confidently
// detected cars with track ids and plates. The appearance exemplar —
// not a symbolic predicate — narrows it to one object.
func searchQuery() *vqpy.Query {
	return vqpy.NewQuery("CarSearch").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.6)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate"))
}

func main() {
	dir := ""
	if len(os.Args) > 2 && os.Args[1] == "-dir" {
		dir = os.Args[2]
	} else {
		tmp, err := os.MkdirTemp("", "vqpy-archivesearch-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	const seed = 42
	sdir, xdir := filepath.Join(dir, "store"), filepath.Join(dir, "index")
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(seed, 30))
	q := searchQuery()

	// Ingest: archive the clip's scan records once (memo-free, matching
	// search compilation). Re-running over a warm store replays instead.
	st, err := vqpy.OpenStore(sdir, seed)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	ingest := vqpy.NewSession(seed)
	ingest.SetNoBurn(true)
	if _, err := ingest.ExecuteShared([]vqpy.QueryNode{q}, v, vqpy.WithStore(st), vqpy.WithoutMemo()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %s: %d frames archived\n", v.Name, len(v.Frames))

	// Extract: walk the archive into the appearance index. Incremental —
	// a second run resumes from the coverage watermark and embeds only
	// tracks it has never seen.
	x, err := vqpy.OpenIndex(xdir, seed)
	if err != nil {
		log.Fatal(err)
	}
	defer x.Close()
	extract := vqpy.NewSession(seed)
	extract.SetNoBurn(true)
	stats, err := extract.IndexArchive(x, q, v, 0, vqpy.WithStore(st))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted frames [%d, %d): %d new tracks embedded (%.0f ms virtual)\n",
		stats.From, stats.To, stats.NewTracks, extract.Clock().TotalMS())

	// The exemplar: "this object" is an indexed track; a real deployment
	// would pick it from a prior query hit.
	ex, ok := x.Exemplar()
	if !ok {
		log.Fatal("index holds no embeddable exemplar")
	}
	fmt.Printf("searching for track %d (class %d, frames %d..%d)\n\n", ex.Track, ex.Class, ex.First, ex.Last)

	// Fast path: probe the index for candidate tracks, verify only
	// their frames.
	probeSession := vqpy.NewSession(seed)
	probeSession.SetNoBurn(true)
	probe, err := probeSession.Search(v, vqpy.SearchSpec{Query: q, Track: ex.Track},
		vqpy.WithStore(st), vqpy.WithIndex(x))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index-then-verify: %d candidate tracks, verified %d of %d frames (%.0f ms virtual)\n",
		probe.CandidateTracks, probe.VerifiedFrames, len(v.Frames), probe.VirtualMS)

	// Baseline: the full rescan over the archive, same resolved feature.
	fullSession := vqpy.NewSession(seed)
	fullSession.SetNoBurn(true)
	full, err := fullSession.Search(v, vqpy.SearchSpec{Query: q, Feature: probe.IR.Probe.FeatureRef},
		vqpy.WithStore(st))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full rescan:       verified %d of %d frames (%.0f ms virtual)\n\n",
		full.VerifiedFrames, len(v.Frames), full.VirtualMS)

	identical := reflect.DeepEqual(full.Matched, probe.Matched) &&
		reflect.DeepEqual(full.Hits, probe.Hits) &&
		reflect.DeepEqual(full.MatchedTracks, probe.MatchedTracks)
	fmt.Printf("matched tracks: %v, matched frames: %d, identical to full rescan: %v\n",
		probe.MatchedTracks, len(probe.Hits), identical)
	if !identical {
		log.Fatal("probe search diverged from the full rescan")
	}
	fmt.Println("the probe path answers from the frames the candidates span — search cost")
	fmt.Println("tracks the object's on-screen time, not the archive length.")
}
