// Dynamic serving: queries come and go while the stream is live. A
// dynamic MuxStream starts empty; a red-car alert attaches first, a
// plate reader joins its scan group mid-stream (warm-starting from the
// group's shared tracker — it sees the track ids the group already
// assigned), a person query opens a second group, and each departs
// without perturbing the others. This is the engine under cmd/vqserve,
// driven directly through the Session API.
//
//	go run ./examples/dynamicserving
package main

import (
	"fmt"
	"log"

	"vqpy"
)

func main() {
	s := vqpy.NewSession(31)
	s.SetNoBurn(true)

	// The "camera": a generated scenario standing in for a live feed.
	camera := vqpy.GenerateVideo(vqpy.DatasetCityFlow(31, 60))
	n := len(camera.Frames)

	// A serving stream starts with no queries at all.
	mux, err := s.Serve(camera.FPS)
	if err != nil {
		log.Fatal(err)
	}

	redAlert := vqpy.NewQuery("RedCarAlert").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.5),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID))
	plates := vqpy.NewQuery("PlateReader").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.7)).
		FrameOutput(vqpy.Sel("car", "plate"))
	people := vqpy.NewQuery("PeopleWatch").
		Use("p", vqpy.Person()).
		Where(vqpy.P("p", vqpy.PropScore).Gt(0.5)).
		FrameOutput(vqpy.Sel("p", vqpy.PropTrackID))

	redID, _, err := s.AttachQuery(mux, redAlert, camera)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame %4d: attached RedCarAlert → groups %v\n", 0, mux.Groups())

	var plateID, peopleID int
	for i := 0; i < n; i++ {
		switch i {
		case n / 4:
			// Joins the car scan group mid-stream: no new detector or
			// tracker, just another lane riding the shared scan.
			if plateID, _, err = s.AttachQuery(mux, plates, camera); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("frame %4d: attached PlateReader → groups %v\n", i, mux.Groups())
		case n / 3:
			// A different detector: a second scan group spins up.
			if peopleID, _, err = s.AttachQuery(mux, people, camera); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("frame %4d: attached PeopleWatch → groups %v\n", i, mux.Groups())
		case 3 * n / 4:
			// Departures tear down exactly their own state.
			plateRes, err := mux.Detach(plateID)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := mux.Detach(peopleID); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("frame %4d: detached PlateReader (%d frames, %d plate hits) and PeopleWatch → groups %v\n",
				i, plateRes.FramesProcessed, len(plateRes.Hits), mux.Groups())
		}
		if _, err := mux.Feed(camera.FrameAt(i)); err != nil {
			log.Fatal(err)
		}
	}

	snap, err := mux.Snapshot(redID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRedCarAlert live snapshot: %d/%d frames matched\n", snap.MatchedCount(), snap.FramesProcessed)

	results := mux.Close()
	fmt.Printf("surviving queries at close: %d (RedCarAlert rode the whole stream)\n", len(results))
	fmt.Printf("tracker invocations: %d — one per live (group, class) per frame, not one per query\n",
		s.Clock().Invocations("tracker"))
}
