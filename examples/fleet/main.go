// Fleet amber alert: the multi-camera version of the flagship scenario.
// A fleet of correlated intersection cameras shares one entity
// population — including a planted red sedan that travels past every
// camera — and ONE fleet-wide query finds it on all of them at once:
// per-camera track ids are fused into global object ids by the
// appearance-matching re-ID registry, per-camera results merge per
// global id with provenance, and the cross-camera predicate answers
// "was the same car seen on at least two cameras within 30 seconds?".
// Same-tick detector invocations across the cameras are coalesced into
// batched device calls, so the fleet costs sub-linearly more than one
// camera — the ledger printed at the end shows the amortization.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"vqpy"
)

func main() {
	s := vqpy.NewSession(7)
	s.SetNoBurn(true)

	// Three correlated cameras, one shared population, batched
	// cross-source inference.
	fleet, err := s.NewFleet(vqpy.FleetIntersections(7, 30, 3), true)
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	fmt.Printf("fleet: %d cameras in lockstep: %v\n", len(fleet.Sources()), fleet.Sources())

	// One fleet-wide query: the amber-alert red car, with the global id
	// selected so per-camera results merge per entity. The builder runs
	// once per camera — each camera's VObj resolves against the fleet's
	// shared identity registry.
	id, err := s.AttachFleetQuery(fleet, "FleetAmberAlert", func(source string) *vqpy.Query {
		car := fleet.GlobalVObj(vqpy.Car(), source)
		return vqpy.NewQuery("FleetAmberAlert").
			Use("car", car).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "color").Eq("red"),
			)).
			FrameOutput(
				vqpy.Sel("car", vqpy.PropGlobalID),
				vqpy.Sel("car", "plate"),
			)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive every camera to the end of its clip (one frame per camera
	// per tick; detector work batched within each tick).
	if err := fleet.Run(); err != nil {
		log.Fatal(err)
	}

	// The merged view joins per-camera results per global id.
	merged, err := fleet.Merged(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged entities matching the alert: %d\n", len(merged.Entities))
	for _, e := range merged.Entities {
		fmt.Printf("  global id %d: %d sightings on %v (%.1fs – %.1fs)\n",
			e.GlobalID, len(e.Sightings), e.Sources, e.FirstSec, e.LastSec)
	}

	// The cross-camera predicate: same car on ≥2 cameras within 30s.
	cross := merged.CrossCamera(2, 30)
	fmt.Printf("\nentities on ≥2 cameras within 30s: %d\n", len(cross))
	for _, e := range cross {
		fmt.Printf("  ALERT: global id %d crossed %d cameras:\n", e.GlobalID, len(e.Sources))
		// Compress the sighting list to one span per camera.
		type span struct {
			first, last vqpy.FleetSighting
			n           int
		}
		spans := make(map[string]*span)
		for _, sg := range e.Sightings {
			sp := spans[sg.Source]
			if sp == nil {
				spans[sg.Source] = &span{first: sg, last: sg, n: 1}
				continue
			}
			sp.last = sg
			sp.n++
		}
		for _, source := range e.Sources {
			sp := spans[source]
			fmt.Printf("    %-16s t=%5.1fs – %5.1fs  %3d sightings  (local track %d)\n",
				source, sp.first.TimeSec, sp.last.TimeSec, sp.n, sp.first.TrackID)
		}
	}

	// Identity registry and batching accounting.
	reg := fleet.Registry().Stats()
	fmt.Printf("\nre-ID registry: %d entities, %d seen cross-camera\n", reg.Entities, reg.CrossCamera)
	if st, ok := fleet.BatchStats(); ok {
		fmt.Printf("batched inference: %d ticks, %d/%d detector invocations batched (max batch %d), %.0f virtual ms saved\n",
			st.Ticks, st.Batched, st.Invocations, st.MaxBatch, st.SavedMS)
	}
	fmt.Printf("total virtual time: %.0f ms\n", s.Clock().TotalMS())
}
