// Hit and run: the paper's Figure 8 — compose a spatial event (car close
// to a person) and a basic event (car moving away fast) into a temporal
// sequence using the higher-order query combinators.
//
//	go run ./examples/hitandrun
package main

import (
	"fmt"
	"log"

	"vqpy"
)

func main() {
	s := vqpy.NewSession(11)
	s.SetNoBurn(true)

	// The pickup scenario stages a person approaching a parked car
	// which then drives away — the event pattern we are after.
	video := vqpy.GenerateVideo(vqpy.DatasetPickup(11, 90))

	car := vqpy.Car()
	person := vqpy.Person()

	// Event 1 — CarHitPerson: a CollisionQuery (library sub-query of
	// the higher-order SpatialQuery) checks whether car and person come
	// closer than a threshold.
	collision, err := vqpy.CollisionQuery("CarHitPerson", car, person, 90)
	if err != nil {
		log.Fatal(err)
	}

	// Event 2 — CarRunAway: the library SpeedQuery on the Car VObj.
	runAway := vqpy.SpeedQuery("CarRunAway", "car2", vqpy.Car(), 8)

	// Compose sequentially: the getaway must start within 15 seconds
	// of the collision (composition rule 3).
	hitAndRun, err := vqpy.NewTemporalQuery("HitAndRun", collision, runAway, 15)
	if err != nil {
		log.Fatal(err)
	}

	res, err := s.Execute(hitAndRun, video)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hit-and-run occurrences: %d\n", len(res.Events))
	for _, ev := range res.Events {
		fmt.Printf("  frames %d-%d (%.1fs to %.1fs)\n",
			ev.Start, ev.End,
			float64(ev.Start)/float64(res.FPS), float64(ev.End)/float64(res.FPS))
	}
	if len(res.Events) == 0 {
		fmt.Println("  (none found — try a different seed)")
	}
}
