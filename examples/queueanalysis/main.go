// Queue analysis and loitering: the two Cisco DeepVision applications of
// §5.4, implemented with the public API over a synthetic retail
// scenario.
//
//   - Loitering alerting: a DurationQuery over a person staying in the
//     scene for more than a threshold (the smart-city safety use case).
//
//   - Queue analytics: per-frame counts of people standing in a queue
//     region, aggregated into a simple occupancy report (the retail
//     management use case).
//
//     go run ./examples/queueanalysis
package main

import (
	"fmt"
	"log"

	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/geom"
)

func main() {
	s := vqpy.NewSession(23)
	s.SetNoBurn(true)
	video := vqpy.GenerateVideo(vqpy.DatasetRetail(23, 180))

	// ---- Loitering: person present continuously for >= 40 seconds.
	person := vqpy.Person()
	present := vqpy.NewQuery("PersonPresent").
		Use("p", person).
		Where(vqpy.P("p", vqpy.PropScore).Gt(0.5))
	loitering, err := vqpy.NewDurationQuery("Loitering", present, 40)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Execute(loitering, video)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loitering alerts: %d\n", len(res.Events))
	for _, ev := range res.Events {
		fmt.Printf("  alert: presence from %.0fs to %.0fs\n",
			float64(ev.Start)/float64(res.FPS), float64(ev.End)/float64(res.FPS))
	}

	// ---- Queue analysis: people inside the queue region, per frame.
	queueRegion := geom.Rect(64, 72, 512, 360) // upper-left quadrant zone
	inQueue := &core.Property{
		Name: "in_queue", CostHintMS: 0.02,
		Compute: func(in vqpy.PropInput) (any, error) {
			return queueRegion.Contains(in.Box.Center()), nil
		},
	}
	queuePerson := vqpy.Person().Extend("QueuePerson").AddProperty(inQueue)
	queueQuery := vqpy.NewQuery("QueueOccupancy").
		Use("p", queuePerson).
		Where(vqpy.And(
			vqpy.P("p", vqpy.PropScore).Gt(0.5),
			vqpy.P("p", "in_queue").Eq(true),
		)).
		FrameOutput(vqpy.Sel("p", vqpy.PropTrackID))
	qres, err := s.Execute(queueQuery, video)
	if err != nil {
		log.Fatal(err)
	}
	// Build the occupancy series the DeepVision dashboard would chart.
	occupancy := make(map[int]int)
	peak, peakFrame := 0, 0
	total := 0
	for _, hit := range qres.Basic.Hits {
		n := len(hit.Objects)
		occupancy[hit.FrameIdx] = n
		total += n
		if n > peak {
			peak, peakFrame = n, hit.FrameIdx
		}
	}
	frames := len(qres.Matched)
	fmt.Printf("\nqueue analysis over %d frames:\n", frames)
	fmt.Printf("  mean occupancy: %.2f persons\n", float64(total)/float64(frames))
	fmt.Printf("  peak occupancy: %d persons at t=%.0fs\n", peak, float64(peakFrame)/float64(qres.FPS))
	busy := 0
	for _, n := range occupancy {
		if n >= 2 {
			busy++
		}
	}
	fmt.Printf("  frames with queue >= 2: %d (%.0f%%)\n", busy, 100*float64(busy)/float64(frames))
}
