// Quickstart: find red cars in a synthetic traffic stream.
//
// This is the smallest end-to-end VQPy-Go program: declare a VObj, write
// a query over its properties, execute it, and read the results. Run it
// with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vqpy"
)

func main() {
	// A session owns the model zoo and the virtual clock. Everything
	// is seeded, so this program always prints the same result.
	s := vqpy.NewSession(42)
	s.SetNoBurn(true)

	// Generate one minute of synthetic intersection footage (the
	// stand-in for a camera stream in this offline reproduction).
	video := vqpy.GenerateVideo(vqpy.DatasetCityFlow(42, 60))

	// The library Car VObj comes with intrinsic color/type/plate
	// properties backed by zoo models (Figure 2 of the paper).
	car := vqpy.Car()

	// "Retrieve the license plates of red cars" (Figure 5).
	query := vqpy.NewQuery("RedCarPlates").
		Use("car", car).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(
			vqpy.Sel("car", vqpy.PropTrackID),
			vqpy.Sel("car", "plate"),
		)

	res, err := s.Execute(query, video)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("red cars appear on %d of %d frames\n", res.MatchedCount(), len(res.Matched))
	plates := map[string]bool{}
	for _, hit := range res.Basic.Hits {
		for _, obj := range hit.Objects {
			if p, ok := obj.Values["plate"].(string); ok && p != "" {
				plates[p] = true
			}
		}
	}
	fmt.Printf("distinct plates read: %d\n", len(plates))
	for p := range plates {
		fmt.Printf("  plate %s\n", p)
	}
	fmt.Printf("\nvirtual compute spent:\n%s", s.Clock())
}
