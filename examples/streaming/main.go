// Streaming: the real-time mode of §4.1/§5.4 on the shared-scan engine
// — frames arrive one at a time (as from a live camera) and several
// standing queries are multiplexed over the single stream. The MuxStream
// decodes each frame once, runs each shared detector/tracker group once,
// and emits one verdict per query per frame; adding a query to the
// camera adds predicate work, not another scan.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"vqpy"
)

func main() {
	s := vqpy.NewSession(31)
	s.SetNoBurn(true)

	// The "camera": in this offline reproduction a generated scenario
	// stands in for the live stream; frames are fed one by one.
	camera := vqpy.GenerateVideo(vqpy.DatasetBanff(31, 180))

	// Two standing queries on the same feed. Both declare Car VObjs
	// backed by the same detector, so the compiled pipelines share one
	// scan group: one detect and one track per frame serve both.
	redAlert := vqpy.NewQuery("RedCarAlert").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.5),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID))
	carCensus := vqpy.NewQuery("CarCensus").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.5)).
		CountDistinct("car")

	// Plan both against a canary prefix, then open one multiplexed
	// stream over the camera.
	mux, err := s.OpenShared([]*vqpy.Query{redAlert, carCensus}, camera, camera.FPS,
		vqpy.WithoutSpecialized())
	if err != nil {
		log.Fatal(err)
	}

	alerts := 0
	for i := range camera.Frames {
		verdicts, err := mux.Feed(&camera.Frames[i])
		if err != nil {
			log.Fatal(err)
		}
		if verdicts[0].Matched {
			alerts++
			if alerts <= 3 && verdicts[0].Hit != nil {
				fmt.Printf("ALERT frame %d t=%.1fs: %d red car(s)\n",
					verdicts[0].FrameIdx, verdicts[0].Hit.TimeSec, len(verdicts[0].Hit.Objects))
			}
		}
	}
	results := mux.Close()

	fmt.Printf("\nstreamed %d frames through %d queries in one pass\n",
		results[0].FramesProcessed, len(results))
	fmt.Printf("red-car alert frames: %d\n", alerts)
	fmt.Printf("distinct cars seen: %d\n", results[1].Count)
	fmt.Printf("shared scan: %s\n", mux.Groups())
	fmt.Printf("detector invocations: %d (one per frame, shared by both queries)\n",
		s.Clock().Invocations("yolox"))
}
