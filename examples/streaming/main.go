// Streaming: the real-time mode of §4.1/§5.4 — frames arrive one at a
// time (as from a live camera), the engine emits a verdict per frame,
// and edge/server operator placement is accounted separately, the way
// DeepVision deploys filters on cameras and detectors on GPU servers.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"vqpy"
)

func main() {
	s := vqpy.NewSession(31)
	s.SetNoBurn(true)

	// The "camera": in this offline reproduction a generated scenario
	// stands in for the live stream; frames are fed one by one.
	camera := vqpy.GenerateVideo(vqpy.DatasetBanff(31, 180))

	query := vqpy.NewQuery("RedCarAlert").
		Use("car", vqpy.RedCar()). // carries the no_red_on_road edge filter
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.5),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID))

	// Plan against a canary prefix, place cheap filters on the edge
	// (2 ms uplink per surviving frame), then stream.
	stream, err := s.OpenStream(query, camera, camera.FPS,
		vqpy.WithEdgePlacement(2), vqpy.WithoutSpecialized())
	if err != nil {
		log.Fatal(err)
	}

	alerts := 0
	for i := range camera.Frames {
		verdict, err := stream.Feed(&camera.Frames[i])
		if err != nil {
			log.Fatal(err)
		}
		if verdict.Matched {
			alerts++
			if alerts <= 3 && verdict.Hit != nil {
				fmt.Printf("ALERT frame %d t=%.1fs: %d red car(s)\n",
					verdict.FrameIdx, verdict.Hit.TimeSec, len(verdict.Hit.Objects))
			}
		}
	}
	res := stream.Close()

	fmt.Printf("\nstreamed %d frames, %d alert frames\n", res.FramesProcessed, alerts)
	fmt.Printf("device split: edge %.1fs, server %.1fs, uplink %.1fs\n",
		s.Clock().Account("device:edge")/1000,
		s.Clock().Account("device:server")/1000,
		s.Clock().Account("net:uplink")/1000)
}
