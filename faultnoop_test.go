package vqpy_test

import (
	"reflect"
	"testing"

	"vqpy"
)

// faultServe runs the two standard serving queries over one CityFlow
// clip with an optional fault schedule installed, returning the final
// results and the session's virtual-clock total.
func faultServe(t *testing.T, seed uint64, sched *vqpy.FaultSchedule) ([]*vqpy.Result, float64, *vqpy.FaultInjector) {
	t.Helper()
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(seed, 12))
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	var inj *vqpy.FaultInjector
	if sched != nil {
		inj = vqpy.NewFaultInjector(*sched)
		s.SetFaults(inj)
	}
	m, err := s.Serve(v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AttachQuery(m, servingRedCar(), v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AttachQuery(m, servingPeople(), v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(v.Frames); i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	return m.Close(), s.Clock().TotalMS(), inj
}

// TestFaultInjectorNoop pins the no-op guarantee the fault layer's
// documentation promises: a session with an ENABLED injector carrying an
// empty schedule is bit-identical — results, degradation accounting and
// virtual-clock totals — to a session with no injector at all. This is
// what makes it safe to ship the chaos hooks compiled into every build.
func TestFaultInjectorNoop(t *testing.T) {
	const seed = 91
	base, baseMS, _ := faultServe(t, seed, nil)
	noop, noopMS, inj := faultServe(t, seed, &vqpy.FaultSchedule{Seed: seed})
	if !inj.Enabled() {
		t.Fatal("injector should be enabled (the guarantee is about the empty schedule, not a disabled switch)")
	}
	if !reflect.DeepEqual(base, noop) {
		t.Errorf("results with empty-schedule injector differ from fault-free run")
	}
	if baseMS != noopMS {
		t.Errorf("clock totals differ: %.4f vs %.4f virtual ms", baseMS, noopMS)
	}
	if trips := inj.Counters().Get("breaker_trips"); trips != 0 {
		t.Errorf("empty schedule tripped %d breakers", trips)
	}
}

// TestTransientFaultsAbsorbedByRetry: Persist=1 faults fail exactly one
// attempt, so per-attempt retry reproduces the healthy output — verdicts
// stay bit-identical while the virtual clock records the extra cost of
// the failed attempts.
func TestTransientFaultsAbsorbedByRetry(t *testing.T) {
	const seed = 92
	base, baseMS, _ := faultServe(t, seed, nil)
	sched := &vqpy.FaultSchedule{
		Seed: seed,
		Rules: []vqpy.FaultRule{
			{Kind: vqpy.FaultModelError, Rate: 0.2, Persist: 1},
			{Kind: vqpy.FaultModelTimeout, Rate: 0.1, Persist: 1, DeadlineMS: 40},
		},
	}
	chaos, chaosMS, inj := faultServe(t, seed, sched)
	if len(chaos) != len(base) {
		t.Fatalf("%d results, want %d", len(chaos), len(base))
	}
	for i := range base {
		if chaos[i].DegradedFrames != 0 || len(chaos[i].DegradedAt) != 0 {
			t.Errorf("%s: %d degraded frames under transient-only chaos", base[i].Query, chaos[i].DegradedFrames)
		}
		if !reflect.DeepEqual(chaos[i].Matched, base[i].Matched) ||
			!reflect.DeepEqual(chaos[i].Hits, base[i].Hits) ||
			chaos[i].Count != base[i].Count ||
			!reflect.DeepEqual(chaos[i].TrackIDs, base[i].TrackIDs) {
			t.Errorf("%s: verdicts diverged under recoverable faults", base[i].Query)
		}
	}
	if chaosMS <= baseMS {
		t.Errorf("chaos clock %.2f <= baseline %.2f: failed attempts were not charged", chaosMS, baseMS)
	}
	if trips := inj.Counters().Get("breaker_trips"); trips != 0 {
		t.Errorf("transient faults tripped %d breakers", trips)
	}
}

// TestTerminalFaultWindowDegradesThenRecovers: a window of faults that
// outlives the retry budget trips the breaker and forces degraded
// verdicts with provenance, while every frame OUTSIDE the degraded set
// still agrees with the fault-free run — blast-radius containment, the
// property the chaos bench gates at scale.
func TestTerminalFaultWindowDegradesThenRecovers(t *testing.T) {
	const seed = 93
	base, _, _ := faultServe(t, seed, nil)
	sched := &vqpy.FaultSchedule{
		Seed: seed,
		Rules: []vqpy.FaultRule{
			{Kind: vqpy.FaultModelError, Rate: 1, FromFrame: 30, ToFrame: 34, Persist: 99},
		},
	}
	chaos, _, inj := faultServe(t, seed, sched)
	totalDegraded := 0
	for i := range base {
		if len(chaos[i].DegradedAt) != chaos[i].DegradedFrames {
			t.Errorf("%s: DegradedAt lists %d positions, counter says %d",
				base[i].Query, len(chaos[i].DegradedAt), chaos[i].DegradedFrames)
		}
		totalDegraded += chaos[i].DegradedFrames
		if len(chaos[i].Matched) != len(base[i].Matched) {
			t.Fatalf("%s: %d verdicts, want %d", base[i].Query, len(chaos[i].Matched), len(base[i].Matched))
		}
		degraded := make(map[int]bool, len(chaos[i].DegradedAt))
		for _, pos := range chaos[i].DegradedAt {
			degraded[pos] = true
		}
		for pos := range base[i].Matched {
			if degraded[pos] {
				continue
			}
			if chaos[i].Matched[pos] != base[i].Matched[pos] {
				t.Errorf("%s: healthy frame %d diverged from baseline", base[i].Query, pos)
			}
		}
	}
	if totalDegraded == 0 {
		t.Error("terminal fault window produced no degraded frames")
	}
	if trips := inj.Counters().Get("breaker_trips"); trips == 0 {
		t.Error("terminal fault window tripped no breakers")
	}
}
