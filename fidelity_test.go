package vqpy_test

// Acceptance tests of multi-fidelity archival and fidelity-aware
// planning (DESIGN.md §12): a query with a declared accuracy floor is
// answered from the cheapest archived fidelity meeting it, a strict
// query always runs live, and faulted tiers degrade to money — the
// next-cheapest satisfying tier or a live scan — never to silently
// wrong answers. The fault suites run under -race in CI like the rest
// of the repo tests.

import (
	"reflect"
	"strings"
	"testing"

	"vqpy"
)

const fidelitySeed = 20240912

// fidelityQuery is the fidelity workload: confidently detected cars
// with their track ids. Its residual is per-frame pure (one builtin
// score filter), so it is fidelity-servable.
func fidelityQuery() *vqpy.Query {
	return vqpy.NewQuery("CarFidelity").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.6)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID))
}

func fidelityVideo(seed uint64) *vqpy.Video {
	return vqpy.GenerateVideo(vqpy.DatasetCityFlow(seed, 16))
}

// fidelityTestTiers is the reduced lattice the tests archive: one
// mid tier and one cheap tier.
func fidelityTestTiers() []vqpy.Fidelity {
	return []vqpy.Fidelity{
		{Stride: 2, Res: vqpy.ResHalf, Detector: "yolov8m@half"},
		{Stride: 4, Res: vqpy.ResQuarter, Detector: "yolov5s@quarter"},
	}
}

// archiveFidelityTiers archives the given fidelities of the test clip
// into the store at dir.
func archiveFidelityTiers(t *testing.T, dir string, seed uint64, fids ...vqpy.Fidelity) []vqpy.FidelityEntry {
	t.Helper()
	st, err := vqpy.OpenStore(dir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	var out []vqpy.FidelityEntry
	for _, fid := range fids {
		e, err := s.ArchiveFidelity(fidelityQuery(), fidelityVideo(seed), fid, 0, vqpy.WithStore(st))
		if err != nil {
			t.Fatalf("archive %s: %v", fid.Key(), err)
		}
		out = append(out, e)
	}
	return out
}

// runFidelity executes the fidelity query in a fresh session over the
// store at dir; minAcc 0 leaves the accuracy floor undeclared (strict)
// and inj, when non-nil, routes store I/O through the fault injector.
func runFidelity(t *testing.T, dir string, seed uint64, minAcc float64, inj *vqpy.FaultInjector) *vqpy.FidelityResult {
	t.Helper()
	var st *vqpy.Store
	var err error
	if inj != nil {
		st, err = vqpy.OpenStoreWithFaults(dir, seed, inj)
	} else {
		st, err = vqpy.OpenStore(dir, seed)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	opts := []vqpy.Option{vqpy.WithStore(st)}
	if minAcc > 0 {
		opts = append(opts, vqpy.WithMinAccuracy(minAcc))
	}
	res, err := s.ExecuteFidelity(fidelityQuery(), fidelityVideo(seed), 0, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// matchedAgreement is the per-frame verdict agreement between two runs.
func matchedAgreement(a, b []bool) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}

// TestFidelityServedFromArchiveTier pins the tentpole behaviour: with
// tiers archived and an 0.8 floor declared, the planner answers from a
// tier (no live residual on a fully covered clip), the verdicts agree
// with the live reference at least at the floor, and the virtual cost
// is at least 5x below the live run's.
func TestFidelityServedFromArchiveTier(t *testing.T) {
	dir := t.TempDir()
	archiveFidelityTiers(t, dir, fidelitySeed, fidelityTestTiers()...)

	res := runFidelity(t, dir, fidelitySeed, 0.8, nil)
	chosen := res.Decision.ChosenCandidate()
	if chosen.Live {
		t.Fatalf("expected an archived tier, got live (decision %+v)", res.Decision)
	}
	if res.ReplayedFrames == 0 || res.DegradedFrames != 0 || res.ResidualFrames != 0 {
		t.Fatalf("replay stats: replayed=%d degraded=%d residual=%d", res.ReplayedFrames, res.DegradedFrames, res.ResidualFrames)
	}
	if chosen.Accuracy < 0.8 {
		t.Fatalf("chosen tier %s effective accuracy %.3f below target", chosen.Key, chosen.Accuracy)
	}

	ref := runFidelity(t, t.TempDir(), fidelitySeed, 0.8, nil) // empty store: live
	if !ref.Decision.ChosenCandidate().Live {
		t.Fatalf("reference run on empty store should be live")
	}
	if agr := matchedAgreement(res.Matched, ref.Matched); agr < 0.8 {
		t.Fatalf("tier verdict agreement %.3f below declared floor 0.8", agr)
	}
	if res.VirtualMS*5 > ref.VirtualMS {
		t.Fatalf("tier cost %.1fms not 5x below live %.1fms", res.VirtualMS, ref.VirtualMS)
	}
}

// TestFidelityStrictAnswersLive pins the conservative top of the
// selection rule: an undeclared floor (and an explicit 1.0) always
// runs live, bit-identical to a run with no archive at all, even with
// cheap tiers available.
func TestFidelityStrictAnswersLive(t *testing.T) {
	dir := t.TempDir()
	archiveFidelityTiers(t, dir, fidelitySeed, fidelityTestTiers()...)

	ref := runFidelity(t, t.TempDir(), fidelitySeed, 0, nil)
	for _, minAcc := range []float64{0, 1} {
		res := runFidelity(t, dir, fidelitySeed, minAcc, nil)
		if !res.Decision.ChosenCandidate().Live {
			t.Fatalf("minAcc=%v: strict query served from tier %s", minAcc, res.Decision.ChosenCandidate().Key)
		}
		if !reflect.DeepEqual(res.Matched, ref.Matched) {
			t.Fatalf("minAcc=%v: strict verdicts differ from archive-free run", minAcc)
		}
	}
}

// TestFidelityPlanPicksCheapestSatisfying checks the decision itself:
// every candidate is priced, and the chosen one is cost-minimal among
// the accuracy-satisfying ones.
func TestFidelityPlanPicksCheapestSatisfying(t *testing.T) {
	dir := t.TempDir()
	tiers := fidelityTestTiers()
	archiveFidelityTiers(t, dir, fidelitySeed, tiers...)

	st, err := vqpy.OpenStore(dir, fidelitySeed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(fidelitySeed)
	s.SetNoBurn(true)
	d, err := s.PlanFidelity(fidelityQuery(), fidelityVideo(fidelitySeed), 0,
		vqpy.WithStore(st), vqpy.WithMinAccuracy(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + len(tiers); len(d.Candidates) != want {
		t.Fatalf("got %d candidates, want %d (%+v)", len(d.Candidates), want, d.Candidates)
	}
	chosen := d.ChosenCandidate()
	for _, c := range d.Candidates {
		if c.Live || c.Accuracy < d.Target {
			continue
		}
		if c.CostMS < chosen.CostMS {
			t.Fatalf("candidate %s (%.2fms) cheaper than chosen %s (%.2fms)", c.Key, c.CostMS, chosen.Key, chosen.CostMS)
		}
	}
}

// TestFidelityReadFaultsDegradeToLive injects terminal read faults on
// the scans tier: every tier probe fails, both tiers are skipped as
// unreadable, and the query falls back to a live scan whose verdicts
// match the fault-free reference exactly — faults cost money, never
// accuracy.
func TestFidelityReadFaultsDegradeToLive(t *testing.T) {
	dir := t.TempDir()
	archiveFidelityTiers(t, dir, fidelitySeed, fidelityTestTiers()...)

	inj := vqpy.NewFaultInjector(vqpy.FaultSchedule{Seed: 7, Rules: []vqpy.FaultRule{
		{Kind: vqpy.FaultStoreRead, Target: "scans", Rate: 1, Persist: 1 << 20},
	}})
	res := runFidelity(t, dir, fidelitySeed, 0.8, inj)
	if !res.Decision.ChosenCandidate().Live {
		t.Fatalf("expected live fallback, got %s", res.Decision.ChosenCandidate().Key)
	}
	if len(res.Decision.SkippedUnreadable) != len(fidelityTestTiers()) {
		t.Fatalf("skipped unreadable = %v, want both tiers", res.Decision.SkippedUnreadable)
	}
	ref := runFidelity(t, t.TempDir(), fidelitySeed, 0.8, nil)
	if !reflect.DeepEqual(res.Matched, ref.Matched) {
		t.Fatalf("fault-degraded live verdicts differ from fault-free reference")
	}
}

// TestFidelityBogusTierSkipped plants a manifest entry whose records
// were never archived (cheapest on paper): the readability probe skips
// it and the planner degrades to the next-cheapest real tier.
func TestFidelityBogusTierSkipped(t *testing.T) {
	dir := t.TempDir()
	entries := archiveFidelityTiers(t, dir, fidelitySeed, fidelityTestTiers()...)

	st, err := vqpy.OpenStore(dir, fidelitySeed)
	if err != nil {
		t.Fatal(err)
	}
	bogus := vqpy.FidelityEntry{
		Source: entries[0].Source, Key: "s8/quarter/ghost", ScanKey: "|ghost@s8/quarter/ghost",
		Detector: "ghost", Stride: 8, Res: "quarter",
		Covered: entries[0].Covered, Accuracy: 0.99, CostPerFrameMS: entries[0].CostPerFrameMS,
	}
	if err := st.PutFidelity(bogus); err != nil {
		t.Fatal(err)
	}
	st.Close()

	res := runFidelity(t, dir, fidelitySeed, 0.8, nil)
	chosen := res.Decision.ChosenCandidate()
	if chosen.Live || chosen.Key == bogus.Key {
		t.Fatalf("chose %s, want a real archived tier", chosen.Key)
	}
	found := false
	for _, k := range res.Decision.SkippedUnreadable {
		if k == bogus.Key {
			found = true
		}
	}
	if !found {
		t.Fatalf("bogus tier not reported unreadable: %v", res.Decision.SkippedUnreadable)
	}
}

// TestFidelityPartialDetFaultsDegradeFrames injects rate faults on the
// dets tier only: the tier stays chosen (its scans probe is healthy),
// unreadable frames degrade one by one to live full-fidelity detector
// invocations, and the verdicts still meet the declared floor.
func TestFidelityPartialDetFaultsDegradeFrames(t *testing.T) {
	dir := t.TempDir()
	archiveFidelityTiers(t, dir, fidelitySeed, fidelityTestTiers()...)

	inj := vqpy.NewFaultInjector(vqpy.FaultSchedule{Seed: 11, Rules: []vqpy.FaultRule{
		{Kind: vqpy.FaultStoreRead, Target: "dets", Rate: 0.3, Persist: 1 << 20},
	}})
	res := runFidelity(t, dir, fidelitySeed, 0.8, inj)
	if res.Decision.ChosenCandidate().Live {
		t.Fatalf("expected tier replay, got live")
	}
	if res.DegradedFrames == 0 {
		t.Fatalf("expected degraded frames under 30%% det read faults (replayed=%d)", res.ReplayedFrames)
	}
	ref := runFidelity(t, t.TempDir(), fidelitySeed, 0.8, nil)
	if agr := matchedAgreement(res.Matched, ref.Matched); agr < 0.8 {
		t.Fatalf("degraded-tier agreement %.3f below declared floor 0.8", agr)
	}
}

// TestFidelityManifestWriteFaultDegradesMemOnly fails the fidelity
// manifest write: archiving still succeeds for the session (the entry
// serves in memory) with a degradation warning, and a fresh open of
// the same directory sees no archived fidelities — so the next query
// plans live rather than trusting a manifest that was never persisted.
func TestFidelityManifestWriteFaultDegradesMemOnly(t *testing.T) {
	dir := t.TempDir()
	inj := vqpy.NewFaultInjector(vqpy.FaultSchedule{Seed: 3, Rules: []vqpy.FaultRule{
		{Kind: vqpy.FaultStoreWrite, Target: "fidelity", Rate: 1, Persist: 1 << 20},
	}})
	st, err := vqpy.OpenStoreWithFaults(dir, fidelitySeed, inj)
	if err != nil {
		t.Fatal(err)
	}
	s := vqpy.NewSession(fidelitySeed)
	s.SetNoBurn(true)
	fid := fidelityTestTiers()[0]
	entry, err := s.ArchiveFidelity(fidelityQuery(), fidelityVideo(fidelitySeed), fid, 0, vqpy.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Fidelities(entry.Source); len(got) != 1 {
		t.Fatalf("in-session manifest has %d entries, want 1", len(got))
	}
	warned := false
	for _, w := range st.Warnings() {
		if strings.Contains(w, "fidelity") && strings.Contains(w, "memory-only") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no memory-only degradation warning: %v", st.Warnings())
	}
	st.Close()

	res := runFidelity(t, dir, fidelitySeed, 0.8, nil)
	if !res.Decision.ChosenCandidate().Live {
		t.Fatalf("manifest should not have persisted; got tier %s", res.Decision.ChosenCandidate().Key)
	}
}
