package vqpy

// The fleet facade: cross-camera analytics over many correlated
// sources. A Fleet drives one dynamic MuxStream per camera in lockstep,
// fuses per-source track ids into global object ids through the
// appearance-matching registry (internal/fleet), and coalesces
// same-tick detector invocations from all sources into batched device
// calls with sub-linear amortized cost (exec.BatchScheduler). Queries
// attach fleet-wide — one lane per source — and read back results
// merged per global id with per-source provenance. See DESIGN.md §8.

import (
	"fmt"

	"vqpy/internal/exec"
	"vqpy/internal/fleet"
	"vqpy/internal/video"
)

// PropGlobalID is the cross-camera identity property a fleet-enabled
// VObj exposes (GlobalVObj): query it with vqpy.P(obj, PropGlobalID)
// and select it with vqpy.Sel to make results mergeable per entity.
const PropGlobalID = fleet.PropGlobalID

// Fleet-layer re-exports.
type (
	// FleetScenario generates correlated multi-camera clips from one
	// shared entity population.
	FleetScenario = video.FleetScenario
	// FleetClip is a generated camera set plus re-ID ground truth.
	FleetClip = video.FleetClip
	// GlobalRegistry is the fleet identity service fusing per-source
	// track ids into global object ids.
	GlobalRegistry = fleet.Registry
	// GlobalRegistryStats summarizes a registry (entities, cross-camera
	// count).
	GlobalRegistryStats = fleet.RegistryStats
	// FleetMerged is a fleet query's per-global-id merged result.
	FleetMerged = fleet.MergedResult
	// FleetEntity is one merged global object with provenance.
	FleetEntity = fleet.Entity
	// FleetSighting is one per-source appearance of a global object.
	FleetSighting = fleet.Sighting
	// BatchStats reports the batched-inference scheduler's accounting.
	BatchStats = exec.BatchStats
)

// FleetIntersections is the correlated multi-camera preset (CityFlow
// bases, shared population, planted cross-camera red sedan).
var FleetIntersections = video.FleetIntersections

// NewGlobalRegistry creates a standalone identity registry; threshold
// <= 0 uses the default cosine match threshold. A Fleet creates its own
// registry — this constructor serves isolated per-source runs (e.g. the
// crosscheck baselines) and custom serving layers.
func NewGlobalRegistry(threshold float64) *GlobalRegistry { return fleet.NewRegistry(threshold) }

// GlobalVObj extends a VObj type with the fleet identity pair: an
// intrinsic appearance feature from the fleet_reid zoo model and the
// global_id property resolving it against reg. source names the camera
// the resulting type observes — build one per source.
func GlobalVObj(t *VObjType, reg *GlobalRegistry, source string) *VObjType {
	return fleet.WithGlobalID(t, reg, source)
}

// Fleet is a cross-camera engine over one session: per-source dynamic
// MuxStreams fed in lockstep, a shared global identity registry, and
// (optionally) batched cross-source detector inference. Create one with
// Session.NewFleet, attach queries with Session.AttachFleetQuery, drive
// it with Step or Run, and read merged results with Merged.
type Fleet struct {
	s      *Session
	engine *fleet.Engine
	batch  *exec.BatchScheduler
	videos map[string]*Video
	order  []string
}

// NewFleet generates the fleet scenario's correlated clips and opens a
// cross-camera engine over them. With batched true, same-tick detector
// invocations across sources are coalesced into batched device calls
// (the scheduler installs itself as the session env's charge
// interceptor — one batched fleet per session); results are bit-
// identical either way, only costs change.
func (s *Session) NewFleet(fs FleetScenario, batched bool, opts ...Option) (*Fleet, error) {
	clip := fs.Generate()
	return s.NewFleetFromClips(clip.Videos, batched, opts...)
}

// NewFleetFromClips opens a cross-camera engine over pre-generated
// clips (one per camera, distinct names, fed in slice order). See
// NewFleet for the batched contract.
func (s *Session) NewFleetFromClips(videos []*Video, batched bool, opts ...Option) (*Fleet, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("vqpy: fleet needs at least one camera clip")
	}
	// Lockstep feeding and the cross-camera time-window predicate both
	// assume the clips advance in unison: same FPS, same length.
	for _, v := range videos[1:] {
		if v.FPS != videos[0].FPS || v.NumFrames() != videos[0].NumFrames() {
			return nil, fmt.Errorf("vqpy: fleet clips must share FPS and duration for lockstep feeding (%q: %d fps/%d frames vs %q: %d fps/%d frames)",
				v.Name, v.FPS, v.NumFrames(), videos[0].Name, videos[0].FPS, videos[0].NumFrames())
		}
	}
	// The SharedCache keys detections by (model, frame index) with no
	// source dimension: shared across cameras it would serve camera A's
	// detections for camera B's same-indexed frames. Each camera must
	// keep its stream-private cache.
	probe := &config{}
	for _, o := range opts {
		o(probe)
	}
	if probe.planOpts.Cache != nil {
		return nil, fmt.Errorf("vqpy: WithSharedCache cannot span a fleet (detection keys carry no source); drop the option")
	}
	var batch *exec.BatchScheduler
	var ticker fleet.Ticker
	if batched {
		if s.env.Interceptor != nil {
			// A second scheduler would silently steal the live fleet's
			// deferred charges; refuse rather than corrupt its batching.
			return nil, fmt.Errorf("vqpy: session already has a live batched fleet (close it first)")
		}
		batch = exec.NewBatchScheduler(0, exec.DetectorAccounts(s.registry))
		s.env.Interceptor = batch
		ticker = batch
	}
	f := &Fleet{
		s:      s,
		engine: fleet.NewEngine(fleet.NewRegistry(0), ticker),
		batch:  batch,
		videos: make(map[string]*Video, len(videos)),
	}
	// A construction failure must leave the session reusable: release
	// the interceptor hook and close every camera stream opened so far.
	fail := func(err error) (*Fleet, error) {
		f.Close()
		return nil, err
	}
	for _, v := range videos {
		mux, err := s.Serve(v.FPS, opts...)
		if err != nil {
			return fail(err)
		}
		if err := f.engine.AddSource(v.Name, mux, v); err != nil {
			mux.Close()
			return fail(err)
		}
		f.videos[v.Name] = v
		f.order = append(f.order, v.Name)
	}
	return f, nil
}

// AttachFleetQuery attaches one query to every source of the fleet at
// once: build is called once per source name (use f.GlobalVObj inside
// it so per-source instances resolve against the fleet's registry and
// select PropGlobalID for mergeable results), each per-source query is
// planned against its camera's clip as the canary, and the lanes attach
// atomically — all sources or none. The returned fleet query id feeds
// Merged, Snapshot and DetachFleetQuery.
func (s *Session) AttachFleetQuery(f *Fleet, name string, build func(source string) *Query, opts ...Option) (int, error) {
	if f == nil || f.s != s {
		return 0, fmt.Errorf("vqpy: AttachFleetQuery on a fleet of another session")
	}
	plans := make(map[string]*exec.Plan, len(f.order))
	for _, src := range f.order {
		q := build(src)
		if q == nil {
			return 0, fmt.Errorf("vqpy: fleet query builder returned nil for source %q", src)
		}
		p, err := s.PlanQuery(q, f.videos[src], opts...)
		if err != nil {
			return 0, fmt.Errorf("vqpy: plan fleet query on %s: %w", src, err)
		}
		plans[src] = p
	}
	return f.engine.Attach(name, plans)
}

// DetachFleetQuery removes a fleet query from every source, returning
// the final per-source results keyed by source name.
func (f *Fleet) DetachFleetQuery(id int) (map[string]*Result, error) {
	return f.engine.Detach(id)
}

// GlobalVObj builds the per-source fleet variant of a VObj type bound
// to this fleet's identity registry.
func (f *Fleet) GlobalVObj(t *VObjType, source string) *VObjType {
	return GlobalVObj(t, f.engine.Registry(), source)
}

// Sources lists the fleet's camera names in feed order.
func (f *Fleet) Sources() []string { return f.engine.SourceNames() }

// Video returns one camera's clip (nil for unknown names).
func (f *Fleet) Video(source string) *Video { return f.videos[source] }

// Registry exposes the fleet's global identity registry.
func (f *Fleet) Registry() *GlobalRegistry { return f.engine.Registry() }

// Step advances every camera by one lockstep frame (batching same-tick
// detector work when enabled); it reports false once all cameras are
// exhausted.
func (f *Fleet) Step() (bool, error) { return f.engine.Step() }

// Run drives the fleet until every camera's clip is exhausted.
func (f *Fleet) Run() error { return f.engine.Run() }

// FramesFed reports each camera's feed position.
func (f *Fleet) FramesFed() map[string]int { return f.engine.FramesFed() }

// Snapshot returns a fleet query's live per-source results.
func (f *Fleet) Snapshot(id int) (map[string]*Result, error) { return f.engine.Snapshot(id) }

// Merged returns a fleet query's cross-camera view: per-source results
// joined per global id with provenance; filter it with
// FleetMerged.CrossCamera for predicates like "seen on ≥2 cameras
// within 30s".
func (f *Fleet) Merged(id int) (*FleetMerged, error) { return f.engine.Merged(id) }

// BatchStats reports the batched-inference accounting; ok is false for
// an unbatched fleet.
func (f *Fleet) BatchStats() (BatchStats, bool) {
	if f.batch == nil {
		return BatchStats{}, false
	}
	return f.batch.Stats(), true
}

// Close closes every camera's stream, finalizing all lanes, and
// releases the session's batch-interceptor hook so a new batched fleet
// can be opened on the session afterwards.
func (f *Fleet) Close() {
	f.engine.Close()
	if f.batch != nil && f.s.env.Interceptor == f.batch {
		f.s.env.Interceptor = nil
	}
}
