package vqpy_test

import (
	"reflect"
	"sync"
	"testing"

	"vqpy"

	"vqpy/internal/models"
	"vqpy/internal/sim"
)

// fleetRedCarQuery builds the fleet red-car query for one source: the
// library Car with the global-id pair, matched on color and selected by
// global id so results merge per entity.
func fleetRedCarQuery(reg *vqpy.GlobalRegistry, source string) *vqpy.Query {
	car := vqpy.GlobalVObj(vqpy.Car(), reg, source)
	return vqpy.NewQuery("FleetRedCar").
		Use("car", car).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropGlobalID))
}

// fleetPeopleQuery is a plain per-source query (no global id) — its
// results must be byte-identical between fleet and isolated execution.
func fleetPeopleQuery() *vqpy.Query {
	return vqpy.NewQuery("People").
		Use("p", vqpy.Person()).
		Where(vqpy.P("p", vqpy.PropScore).Gt(0.5)).
		FrameOutput(vqpy.Sel("p", vqpy.PropTrackID))
}

// fleetDetInvocations sums detector-model invocation counts off a
// clock's ledger.
func fleetDetInvocations(c *sim.Clock) int64 {
	var total int64
	for name, n := range c.InvocationTotals() {
		if p, ok := models.ProfileOf(name); ok && p.Task == models.TaskDetect {
			total += n
		}
	}
	return total
}

// runFleetIsolated executes the two-query workload on each camera alone
// — N independent daemons: fresh session, private registry, no batching
// — returning per-source results (attach order: redcar, people), the
// summed virtual time and detector invocations.
func runFleetIsolated(t *testing.T, clip *vqpy.FleetClip, seed uint64) (map[string][]*vqpy.Result, float64, int64) {
	t.Helper()
	out := make(map[string][]*vqpy.Result, len(clip.Videos))
	var virtual float64
	var det int64
	for _, v := range clip.Videos {
		s := vqpy.NewSession(seed)
		s.SetNoBurn(true)
		reg := vqpy.NewGlobalRegistry(0)
		mux, err := s.Serve(v.FPS)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []*vqpy.Query{fleetRedCarQuery(reg, v.Name), fleetPeopleQuery()} {
			if _, _, err := s.AttachQuery(mux, q, v); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < v.NumFrames(); i++ {
			if _, err := mux.Feed(v.FrameAt(i)); err != nil {
				t.Fatal(err)
			}
		}
		out[v.Name] = mux.Close()
		virtual += s.Clock().TotalMS()
		det += fleetDetInvocations(s.Clock())
	}
	return out, virtual, det
}

// TestFleetCrosscheckBatchedVsIsolated is the batching soundness gate:
// per-source verdicts of a batched fleet run are bit-identical to
// running each camera alone; only the costs differ (batched virtual
// time strictly below the isolated sum at equal detector invocation
// counts).
func TestFleetCrosscheckBatchedVsIsolated(t *testing.T) {
	const seed = 20240501
	clip := vqpy.FleetIntersections(seed, 6, 2).Generate()
	isolated, isoVirtual, isoDet := runFleetIsolated(t, clip, seed)

	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	f, err := s.NewFleetFromClips(clip.Videos, true)
	if err != nil {
		t.Fatal(err)
	}
	redID, err := s.AttachFleetQuery(f, "FleetRedCar", func(source string) *vqpy.Query {
		return fleetRedCarQuery(f.Registry(), source)
	})
	if err != nil {
		t.Fatal(err)
	}
	peopleID, err := s.AttachFleetQuery(f, "People", func(string) *vqpy.Query { return fleetPeopleQuery() })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	red, err := f.Snapshot(redID)
	if err != nil {
		t.Fatal(err)
	}
	people, err := f.Snapshot(peopleID)
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range clip.Videos {
		iso := isolated[v.Name]
		// The plain query must be byte-identical, hits and all.
		if !reflect.DeepEqual(iso[1].Matched, people[v.Name].Matched) ||
			!reflect.DeepEqual(iso[1].Hits, people[v.Name].Hits) {
			t.Fatalf("%s: people results diverge between isolated and batched fleet", v.Name)
		}
		// The global-id query matches the same frames and objects;
		// only the global id VALUES may differ (assignment order is
		// fleet-wide vs per-daemon).
		if !reflect.DeepEqual(iso[0].Matched, red[v.Name].Matched) {
			t.Fatalf("%s: red-car matched vectors diverge", v.Name)
		}
		if len(iso[0].Hits) != len(red[v.Name].Hits) {
			t.Fatalf("%s: red-car hit counts diverge: %d vs %d", v.Name, len(iso[0].Hits), len(red[v.Name].Hits))
		}
		for i := range iso[0].Hits {
			a, b := iso[0].Hits[i], red[v.Name].Hits[i]
			if a.FrameIdx != b.FrameIdx || len(a.Objects) != len(b.Objects) {
				t.Fatalf("%s hit %d diverges: frame %d/%d, objects %d/%d",
					v.Name, i, a.FrameIdx, b.FrameIdx, len(a.Objects), len(b.Objects))
			}
			for j := range a.Objects {
				if a.Objects[j].TrackID != b.Objects[j].TrackID {
					t.Fatalf("%s hit %d object %d track diverges", v.Name, i, j)
				}
			}
		}
	}

	fleetVirtual := s.Clock().TotalMS()
	fleetDet := fleetDetInvocations(s.Clock())
	if fleetDet != isoDet {
		t.Fatalf("detector invocations diverge: fleet %d vs isolated %d (batching must change costs, not work)", fleetDet, isoDet)
	}
	if fleetVirtual >= isoVirtual {
		t.Fatalf("batched fleet virtual %.0f ms not below isolated sum %.0f ms", fleetVirtual, isoVirtual)
	}
	st, ok := f.BatchStats()
	if !ok || st.Batched == 0 || st.SavedMS <= 0 {
		t.Fatalf("batch scheduler idle: %+v", st)
	}
}

// TestFleetGlobalIDJoinFindsTraveler runs the preset's planted red
// sedan through a batched fleet and checks the cross-camera join: the
// merged result contains an entity sighted on at least two cameras
// within 30 seconds, with per-source provenance.
func TestFleetGlobalIDJoinFindsTraveler(t *testing.T) {
	s := vqpy.NewSession(7)
	s.SetNoBurn(true)
	f, err := s.NewFleet(vqpy.FleetIntersections(7, 10, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.AttachFleetQuery(f, "FleetRedCar", func(source string) *vqpy.Query {
		return fleetRedCarQuery(f.Registry(), source)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	m, err := f.Merged(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entities) == 0 {
		t.Fatal("no merged entities")
	}
	cross := m.CrossCamera(2, 30)
	if len(cross) == 0 {
		t.Fatal("no entity crosses two cameras within 30s (planted traveler missed)")
	}
	best := cross[0]
	for _, e := range cross {
		if len(e.Sources) > len(best.Sources) {
			best = e
		}
	}
	if len(best.Sources) < 2 {
		t.Fatalf("best cross-camera entity covers %v", best.Sources)
	}
	for _, sg := range best.Sightings {
		if sg.Source == "" || sg.TrackID < 0 {
			t.Fatalf("sighting lost provenance: %+v", sg)
		}
	}
	if st := f.Registry().Stats(); st.CrossCamera == 0 {
		t.Fatalf("registry fused no cross-camera identity: %+v", st)
	}
	f.Close()
}

// TestFleetAttachDetachChurn exercises fleet-wide attach/detach while
// the fleet runs and concurrent merged-result readers — the -race
// serving pattern. Lanes present for the whole run must end with full
// coverage regardless of sibling churn.
func TestFleetAttachDetachChurn(t *testing.T) {
	s := vqpy.NewSession(11)
	s.SetNoBurn(true)
	clip := vqpy.FleetIntersections(11, 6, 2).Generate()
	f, err := s.NewFleetFromClips(clip.Videos, true)
	if err != nil {
		t.Fatal(err)
	}
	standing, err := s.AttachFleetQuery(f, "FleetRedCar", func(source string) *vqpy.Query {
		return fleetRedCarQuery(f.Registry(), source)
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent reader: merged views while the fleet runs
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := f.Merged(standing); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	step := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := f.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(10)
	visitor, err := s.AttachFleetQuery(f, "People", func(string) *vqpy.Query { return fleetPeopleQuery() })
	if err != nil {
		t.Fatal(err)
	}
	step(10)
	if _, err := f.DetachFleetQuery(visitor); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	res, err := f.Snapshot(standing)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range clip.Videos {
		if res[v.Name].FramesProcessed != v.NumFrames() {
			t.Fatalf("%s standing lane covered %d/%d frames", v.Name, res[v.Name].FramesProcessed, v.NumFrames())
		}
	}
	if _, err := f.DetachFleetQuery(standing); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Registry().SourcesOf(1)); got == 0 {
		t.Fatal("registry issued no identities under churn")
	}
	f.Close()
}

// TestFleetDoubleBatchedRefused pins the one-LIVE-batched-fleet rule:
// a second scheduler would silently steal the first fleet's deferred
// charges, so NewFleet refuses while one is live; Close releases the
// interceptor hook and a new batched fleet opens cleanly.
func TestFleetDoubleBatchedRefused(t *testing.T) {
	s := vqpy.NewSession(3)
	s.SetNoBurn(true)
	clip := vqpy.FleetIntersections(3, 4, 2).Generate()
	first, err := s.NewFleetFromClips(clip.Videos, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewFleetFromClips(clip.Videos, true); err == nil {
		t.Fatal("second batched fleet on one session must be refused")
	}
	// An unbatched sibling fleet is fine — it installs no interceptor.
	unbatched, err := s.NewFleetFromClips(clip.Videos, false)
	if err != nil {
		t.Fatal(err)
	}
	unbatched.Close()
	// Closing the live batched fleet releases the hook.
	first.Close()
	next, err := s.NewFleetFromClips(clip.Videos, true)
	if err != nil {
		t.Fatalf("batched fleet after Close refused: %v", err)
	}
	next.Close()
	// A failed construction (duplicate camera names) must release the
	// hook too, leaving the session reusable.
	if _, err := s.NewFleetFromClips([]*vqpy.Video{clip.Videos[0], clip.Videos[0]}, true); err == nil {
		t.Fatal("duplicate camera names must fail")
	}
	again, err := s.NewFleetFromClips(clip.Videos, true)
	if err != nil {
		t.Fatalf("session unusable after failed construction: %v", err)
	}
	again.Close()
}

// TestFleetPlanningDoesNotTouchRegistry pins the profiling rule: a
// fleet query using global_id even in its WHERE clause must not
// resolve identities during attach-time canary profiling — profiling
// candidates can assign different track ids than the live scan, so
// their resolutions would poison the live identity map. Live feeding
// then resolves normally.
func TestFleetPlanningDoesNotTouchRegistry(t *testing.T) {
	s := vqpy.NewSession(5)
	s.SetNoBurn(true)
	f, err := s.NewFleetFromClips(vqpy.FleetIntersections(5, 6, 2).Generate().Videos, false)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.AttachFleetQuery(f, "GidWhere", func(source string) *vqpy.Query {
		car := f.GlobalVObj(vqpy.Car(), source)
		return vqpy.NewQuery("GidWhere").
			Use("car", car).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", vqpy.PropGlobalID).Gt(0),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropGlobalID))
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := f.Registry().Stats(); st.Entities != 0 || st.Resolves != 0 {
		t.Fatalf("attach-time planning polluted the registry: %+v", st)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if st := f.Registry().Stats(); st.Entities == 0 {
		t.Fatal("live run resolved no identities")
	}
	m, err := f.Merged(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entities) == 0 {
		t.Fatal("global-id predicate query matched no entities live")
	}
}

// TestFleetRefusesSharedCache pins the cache-poisoning guard: the
// shared cache keys detections by (model, frame) with no source, so
// spanning it across cameras would serve one camera's detections for
// another's same-indexed frames.
func TestFleetRefusesSharedCache(t *testing.T) {
	s := vqpy.NewSession(9)
	s.SetNoBurn(true)
	clip := vqpy.FleetIntersections(9, 4, 2).Generate()
	if _, err := s.NewFleetFromClips(clip.Videos, false, vqpy.WithSharedCache(vqpy.NewSharedCache())); err == nil {
		t.Fatal("WithSharedCache across a fleet must be refused")
	}
}
