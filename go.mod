module vqpy

go 1.24
