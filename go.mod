module vqpy

go 1.23
