package bench

import (
	"fmt"
	"strings"

	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/metrics"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// RunMemoAblation (E13) quantifies §4.2's object-level reuse against
// object dwell time: longer tracks amortize the intrinsic computation
// over more frames, so the memo speedup grows with track length.
func RunMemoAblation(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	rep := &metrics.Report{
		Title:  "Ablation E13: intrinsic memoization vs object dwell time",
		Header: []string{"scenario", "mean_track_frames", "memo_hit_rate", "vanilla_s", "memo_s", "speedup"},
	}
	type variant struct {
		name  string
		speed [2]float64
	}
	// Faster traffic -> shorter tracks -> less reuse.
	for _, vr := range []variant{
		{"slow_traffic_long_tracks", [2]float64{2, 4}},
		{"normal_traffic", [2]float64{4, 9}},
		{"fast_traffic_short_tracks", [2]float64{14, 20}},
	} {
		sc := video.CityFlow(cfg.Seed, 120*cfg.Scale)
		sc.SpeedRange = vr.speed
		v := sc.Generate()
		var trackFrames float64
		for _, pts := range v.Tracks {
			trackFrames += float64(len(pts))
		}
		if len(v.Tracks) > 0 {
			trackFrames /= float64(len(v.Tracks))
		}
		run := func(memo bool) (float64, float64) {
			s := cfg.session()
			opts := []vqpy.Option{vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized()}
			if !memo {
				opts = append(opts, vqpy.WithoutMemo())
			}
			before := s.Clock().TotalMS()
			rr, err := s.Execute(vqpyRedCarQuery(), v, opts...)
			if err != nil {
				panic(err)
			}
			hitRate := 0.0
			if h, m := rr.Basic.MemoHits, rr.Basic.MemoMisses; h+m > 0 {
				hitRate = float64(h) / float64(h+m)
			}
			return s.Clock().TotalMS() - before, hitRate
		}
		vanillaMS, _ := run(false)
		memoMS, hitRate := run(true)
		rep.AddRow(vr.name, fmt.Sprintf("%.0f", trackFrames),
			fmt.Sprintf("%.2f", hitRate), metrics.Sec(vanillaMS), metrics.Sec(memoMS),
			metrics.Ratio(vanillaMS, memoMS))
	}
	rep.AddNote("expected shape: hit rate and speedup grow with mean track length")
	return rep, nil
}

// RunPlannerAblation (E12) shows §4.3's alternative-path selection: for
// a red-car query with a registered specialized NN and binary filter,
// the planner profiles every candidate on a canary and picks the
// cheapest one meeting the accuracy target.
func RunPlannerAblation(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	v := video.CityFlow(cfg.Seed, 120*cfg.Scale).Generate()
	s := cfg.session()
	car := vqpy.RedCar()
	q := core.NewQuery("RedCarPlanned").
		Use("car", car).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "color").Eq("red"),
		)).
		FrameOutput(core.Sel("car", core.PropTrackID))
	best, all, err := s.Explain(q, v, vqpy.WithAccuracyTarget(0.8))
	if err != nil {
		return nil, err
	}
	rep := &metrics.Report{
		Title:  "Ablation E12: planner candidate profiling (canary cost vs accuracy)",
		Header: []string{"candidate", "est_cost_ms", "est_f1", "chosen"},
	}
	for _, p := range all {
		chosen := ""
		if p == best {
			chosen = "<== selected"
		}
		rep.AddRow(p.Label, metrics.Ms(p.EstCostMS), fmt.Sprintf("%.3f", p.EstF1), chosen)
	}
	rep.AddNote("expected shape: the specialized/filtered plan wins when it meets the accuracy target; the most general plan is the accuracy reference")
	return rep, nil
}

// RunBatchAblation (E14-adjacent) sweeps executor batch sizes; cost is
// invariant (work is per frame) but the sweep guards the batching path.
func RunBatchAblation(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	v := video.CityFlow(cfg.Seed, 60*cfg.Scale).Generate()
	rep := &metrics.Report{
		Title:  "Ablation: executor batch size",
		Header: []string{"batch", "virtual_s", "matched_frames"},
	}
	for _, b := range []int{1, 4, 8, 32} {
		s := cfg.session()
		before := s.Clock().TotalMS()
		rr, err := s.Execute(vqpyRedCarQuery(), v,
			vqpy.WithBatchSize(b), vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprint(b), metrics.Sec(s.Clock().TotalMS()-before), fmt.Sprint(rr.MatchedCount()))
	}
	rep.AddNote("expected shape: identical results and costs across batch sizes (batching is an iteration-granularity knob)")
	return rep, nil
}

// RunLazyAblation quantifies the lazy-evaluation contribution in
// isolation (§5.1's first mechanism) by disabling filter interleaving.
func RunLazyAblation(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	v := video.CityFlow(cfg.Seed, 120*cfg.Scale).Generate()
	q := fig13Queries()[0]
	rep := &metrics.Report{
		Title:  "Ablation: lazy property evaluation",
		Header: []string{"config", "virtual_s"},
	}
	run := func(label string, opts ...vqpy.Option) error {
		s := cfg.session()
		before := s.Clock().TotalMS()
		query := cvipStyleQuery(q.id, q.color, q.kind, q.dir)
		if _, err := s.Execute(query, v, opts...); err != nil {
			return err
		}
		rep.AddRow(label, metrics.Sec(s.Clock().TotalMS()-before))
		return nil
	}
	base := []vqpy.Option{vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized(), vqpy.WithoutMemo()}
	if err := run("eager (all properties first)", append(base, vqpy.WithoutLazy())...); err != nil {
		return nil, err
	}
	if err := run("lazy (filter between properties)", base...); err != nil {
		return nil, err
	}
	rep.AddNote("expected shape: lazy evaluation substantially cheaper on selective queries")
	return rep, nil
}

// RunEdgeAblation exercises §4.1's operator placement: with the binary
// classifier placed on the camera, frames without red cars never reach
// the GPU server, trading a small edge+uplink cost for a large server
// saving.
func RunEdgeAblation(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	// A sparse street: most frames have no red car, so the edge filter
	// has frames to drop (on a saturated intersection nearly every
	// frame contains a red car and filtering cannot help any placement).
	sc := video.Banff(cfg.Seed, 120*cfg.Scale)
	sc.VehiclesPerSec = 0.15
	v := sc.Generate()
	car := vqpy.RedCar() // carries the no_red_on_road filter registration
	q := core.NewQuery("RedCarEdge").
		Use("car", car).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "color").Eq("red"),
		))
	rep := &metrics.Report{
		Title:  "Ablation: edge/server operator placement (§4.1)",
		Header: []string{"config", "total_s", "server_s", "edge_s", "uplink_s"},
	}
	run := func(label string, opts ...vqpy.Option) (float64, error) {
		s := cfg.session()
		before := s.Clock().TotalMS()
		if _, err := s.Execute(q, v, opts...); err != nil {
			return 0, err
		}
		total := s.Clock().TotalMS() - before
		server := s.Clock().Account("device:server")
		edge := s.Clock().Account("device:edge")
		uplink := s.Clock().Account("net:uplink")
		rep.AddRow(label, metrics.Sec(total), metrics.Sec(server), metrics.Sec(edge), metrics.Sec(uplink))
		return server, nil
	}
	// Server-only: everything placed on the server (filters disabled so
	// all frames hit the detector).
	serverOnly, err := run("server_only", vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized(), vqpy.WithEdgePlacement(2))
	if err != nil {
		return nil, err
	}
	// Edge-filtered: the registered binary classifier runs on the edge.
	edgeFiltered, err := run("edge_filtered", vqpy.WithoutSpecialized(), vqpy.WithEdgePlacement(2))
	if err != nil {
		return nil, err
	}
	if serverOnly > 0 {
		rep.AddNote("server load reduced %.0f%% by edge filtering", 100*(1-edgeFiltered/serverOnly))
	}
	rep.AddNote("expected shape: edge filtering cuts server time roughly in proportion to the frame drop rate, at small edge+uplink cost")
	return rep, nil
}

// ExplainSuspectDAG (E14) reproduces the Figure 9/10 example: the plan
// for "suspect getting into a red car", showing parallel person/car
// paths, early filters, the join, and the relation projector.
func ExplainSuspectDAG(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	v := video.Pickup(cfg.Seed, 60*cfg.Scale).Generate()
	s := cfg.session()

	// Target embedding: the suspect's ReID feature (in the paper the
	// officer supplies an image; here the embedding seed plays that
	// role).
	target := suspectTargetVector(s, v)
	person := vqpy.SuspectPerson(target, 30)
	car := vqpy.Car()
	rel := core.DistanceRelation("close", person, car)

	q := core.NewQuery("SuspectIntoRedCar").
		Use("suspect", person).
		Use("car", car).
		UseRelation("close", rel, "suspect", "car").
		Where(core.And(
			core.P("suspect", "similarity").Gt(0.8),
			core.P("car", "color").Eq("red"),
			core.RP("close", "distance").Lt(80),
		)).
		FrameOutput(
			core.Sel("suspect", core.PropTrackID),
			core.Sel("car", "plate"),
		)
	best, all, err := s.Explain(q, v)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9/10 reproduction: %d candidate DAGs, selected:\n\n%s\n", len(all), best)
	rr, err := s.Execute(q, v)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "execution: %d/%d frames matched, %d events\n",
		rr.MatchedCount(), len(rr.Matched), len(rr.Events))
	return b.String(), nil
}

// suspectTargetVector extracts the planted suspect's embedding.
func suspectTargetVector(s *vqpy.Session, v *video.Video) []float64 {
	embedder := &models.ReIDEmbedder{P: models.Profile{Name: "reid", CostMS: 0}}
	for i := range v.Frames {
		for _, o := range v.Frames[i].Objects {
			if o.Suspect {
				return embedder.Embed(s.Env(), &v.Frames[i], o.Box, o.TrackID)
			}
		}
	}
	return make([]float64, 16)
}
