package bench

// The CI bench-regression gate: bench_baselines.json pins floors for
// the invocation counts and wall-clock ratios the BENCH_*.json smoke
// artifacts report, and CheckBaselines fails the workflow when a value
// regresses beyond tolerance — turning the uploaded artifacts into an
// enforced contract. Invocation counts come off the virtual-time ledger
// and are deterministic for a given seed/scale, so their tolerance only
// absorbs intentional workload drift; wall ratios absorb runner noise.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vqpy/internal/metrics"
)

// BaselineCheck is one gated metric.
type BaselineCheck struct {
	// File is the benchmark JSON artifact (relative to the baselines
	// file) holding the metric.
	File string `json:"file"`
	// Metric names a Report.Metrics scalar inside the artifact.
	Metric string `json:"metric"`
	// Max / Min bound the value (either or both). Max passes while
	// value <= Max*(1+tol); Min while value >= Min*(1-tol).
	Max *float64 `json:"max,omitempty"`
	Min *float64 `json:"min,omitempty"`
	// Tolerance overrides the file-level tolerance for this check
	// (0 is meaningful: an exact bound).
	Tolerance *float64 `json:"tolerance,omitempty"`
}

// Baselines is the bench_baselines.json schema.
type Baselines struct {
	// Tolerance is the default relative slack applied to every bound.
	Tolerance float64         `json:"tolerance"`
	Checks    []BaselineCheck `json:"checks"`
}

// BaselineFiles loads a baselines file and returns the distinct
// artifact files its checks reference, sorted. Callers (the vqbench
// -check gate) crosscheck this list against the experiments that
// actually produce artifacts, so a baseline gating a file nothing
// writes — or an artifact nothing gates — fails loudly instead of
// passing vacuously.
func BaselineFiles(path string) ([]string, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: baselines: %w", err)
	}
	var base Baselines
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("bench: baselines %s: %w", path, err)
	}
	seen := make(map[string]bool)
	var files []string
	for _, c := range base.Checks {
		if c.File != "" && !seen[c.File] {
			seen[c.File] = true
			files = append(files, c.File)
		}
	}
	sort.Strings(files)
	return files, nil
}

// findMetric locates a named metric across an artifact's reports,
// erroring on absence and on ambiguity.
func findMetric(reports []*metrics.Report, name string) (float64, error) {
	found := false
	var value float64
	for _, rep := range reports {
		if v, ok := rep.Metric(name); ok {
			if found {
				return 0, fmt.Errorf("metric %q appears in more than one report", name)
			}
			value, found = v, true
		}
	}
	if !found {
		return 0, fmt.Errorf("metric %q not found", name)
	}
	return value, nil
}

// CheckBaselines loads a baselines file, reads every referenced
// benchmark artifact and verifies all bounds. It returns a per-check
// summary (one line each) and an error describing every violation.
func CheckBaselines(path string) (string, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("bench: baselines: %w", err)
	}
	var base Baselines
	if err := json.Unmarshal(blob, &base); err != nil {
		return "", fmt.Errorf("bench: baselines %s: %w", path, err)
	}
	if len(base.Checks) == 0 {
		return "", fmt.Errorf("bench: baselines %s: no checks", path)
	}
	dir := filepath.Dir(path)

	artifacts := make(map[string][]*metrics.Report)
	var lines, violations []string
	for _, c := range base.Checks {
		if c.Max == nil && c.Min == nil {
			violations = append(violations, fmt.Sprintf("%s %s: check has neither max nor min", c.File, c.Metric))
			continue
		}
		reports, ok := artifacts[c.File]
		if !ok {
			blob, err := os.ReadFile(filepath.Join(dir, c.File))
			if err != nil {
				return "", fmt.Errorf("bench: baselines: %w", err)
			}
			if err := json.Unmarshal(blob, &reports); err != nil {
				return "", fmt.Errorf("bench: baselines artifact %s: %w", c.File, err)
			}
			artifacts[c.File] = reports
		}
		v, err := findMetric(reports, c.Metric)
		if err != nil {
			violations = append(violations, fmt.Sprintf("%s: %v", c.File, err))
			continue
		}
		tol := base.Tolerance
		if c.Tolerance != nil {
			tol = *c.Tolerance
		}
		status := "ok"
		if c.Max != nil && v > *c.Max*(1+tol) {
			status = fmt.Sprintf("FAIL (above max %.4g +%.0f%%)", *c.Max, tol*100)
			violations = append(violations, fmt.Sprintf("%s %s = %.4g exceeds max %.4g (tolerance %.0f%%)",
				c.File, c.Metric, v, *c.Max, tol*100))
		}
		if c.Min != nil && v < *c.Min*(1-tol) {
			status = fmt.Sprintf("FAIL (below min %.4g -%.0f%%)", *c.Min, tol*100)
			violations = append(violations, fmt.Sprintf("%s %s = %.4g below min %.4g (tolerance %.0f%%)",
				c.File, c.Metric, v, *c.Min, tol*100))
		}
		lines = append(lines, fmt.Sprintf("%-14s %-32s %10.4g  %s", c.File, c.Metric, v, status))
	}
	summary := strings.Join(lines, "\n")
	if len(violations) > 0 {
		return summary, fmt.Errorf("bench: %d baseline violation(s):\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
	return summary, nil
}
