// Package bench is the experiment harness: one runner per table / figure
// of the paper's evaluation (§5), each regenerating the corresponding
// rows or series with the same workloads, baselines and metrics. See
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured outcomes.
package bench

import (
	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/geom"
	"vqpy/internal/video"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Seed drives all scenario generation and model noise.
	Seed uint64
	// Scale multiplies workload durations; 1.0 approximates the
	// paper's clip lengths, smaller values keep unit tests fast.
	Scale float64
	// Burn enables proportional real CPU work so wall-clock time
	// mirrors virtual time (benchmarks set it; tests leave it off).
	Burn bool
	// Workers sets the parallel scheduler's pool size for multi-query
	// experiments (0 picks the experiment default).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 20240501
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

func (c Config) session() *vqpy.Session {
	s := vqpy.NewSession(c.Seed)
	s.SetNoBurn(!c.Burn)
	return s
}

// boolMetric encodes a correctness flag as a gateable scalar.
func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// cvipStyleCar builds the §5.1 vehicle VObj: the same pretrained models
// CVIP uses (color, type and direction classifiers), with color and type
// intrinsic (the user annotations of §4.2).
func cvipStyleCar() *core.VObjType {
	return core.NewVObj("Vehicle", video.ClassCar).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		StatelessModel("kind", "type_detect", true).
		StatelessModel("direction", "direction_model", false)
}

// cvipStyleQuery expresses a standardized color-type-direction query
// with VQPy constructs, constraint ordered cheap-to-expensive so lazy
// evaluation can skip models (the §5.1 mechanism).
func cvipStyleQuery(name string, color video.Color, kind video.VehicleKind, dir geom.Direction) *core.Query {
	car := cvipStyleCar()
	return core.NewQuery(name).
		Use("car", car).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "color").Eq(color.String()),
			core.P("car", "kind").Eq(kind.String()),
			core.P("car", "direction").Eq(dir.String()),
		)).
		FrameOutput(core.Sel("car", core.PropTrackID))
}

// fig13Queries is Table 1: the five CityFlow-NL queries in standardized
// form.
type fig13Query struct {
	id, text string
	color    video.Color
	kind     video.VehicleKind
	dir      geom.Direction
}

func fig13Queries() []fig13Query {
	return []fig13Query{
		{"Q1", "green sedan go straight", video.ColorGreen, video.KindSedan, geom.DirStraight},
		{"Q2", "green bus go straight", video.ColorGreen, video.KindBusKind, geom.DirStraight},
		{"Q3", "red sedan go straight", video.ColorRed, video.KindSedan, geom.DirStraight},
		{"Q4", "black sedan go straight", video.ColorBlack, video.KindSedan, geom.DirStraight},
		{"Q5", "black suv turn right", video.ColorBlack, video.KindSUV, geom.DirRight},
	}
}

// fig13BusQuery adapts the query for the bus class (Q2).
func cvipStyleBusQuery(name string, color video.Color, dir geom.Direction) *core.Query {
	bus := core.NewVObj("BusVehicle", video.ClassBus).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		StatelessModel("kind", "type_detect", true).
		StatelessModel("direction", "direction_model", false)
	return core.NewQuery(name).
		Use("bus", bus).
		Where(core.And(
			core.P("bus", core.PropScore).Gt(0.5),
			core.P("bus", "color").Eq(color.String()),
			core.P("bus", "direction").Eq(dir.String()),
		)).
		FrameOutput(core.Sel("bus", core.PropTrackID))
}

// Test helpers shared by the harness tests.

func cfgSessionHelper(cfg Config) *vqpy.Session { return cfg.session() }
