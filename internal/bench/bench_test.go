package bench

import (
	"strconv"
	"strings"
	"testing"

	"vqpy"

	"vqpy/internal/video"
)

// smallCfg keeps harness tests fast; the shapes must already hold at
// this scale.
func smallCfg() Config { return Config{Seed: 7, Scale: 0.25} }

// cell parses a numeric report cell (stripping % and x suffixes).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(s), "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig13aShape(t *testing.T) {
	rep, err := RunFig13a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rep.Rows))
	}
	var cvipCosts []float64
	for _, row := range rep.Rows {
		cvipS := cell(t, row[2])
		vqpyS := cell(t, row[3])
		memoS := cell(t, row[5])
		cvipCosts = append(cvipCosts, cvipS)
		if vqpyS >= cvipS {
			t.Errorf("%s: VQPy (%.1f) not faster than CVIP (%.1f)", row[0], vqpyS, cvipS)
		}
		if memoS >= vqpyS {
			t.Errorf("%s: memo (%.1f) not faster than vanilla (%.1f)", row[0], memoS, vqpyS)
		}
		if sp := cell(t, row[6]); sp < 4 {
			t.Errorf("%s: memo speedup %.1fx below 4x", row[0], sp)
		}
	}
	// CVIP flat: all five costs within 5%.
	for _, c := range cvipCosts[1:] {
		if c < cvipCosts[0]*0.95 || c > cvipCosts[0]*1.05 {
			t.Errorf("CVIP runtime not flat: %v", cvipCosts)
		}
	}
	// Rarity effect: green sedan (Q1) speedup should exceed black sedan
	// (Q4) speedup for vanilla VQPy.
	q1 := cell(t, rep.Rows[0][4])
	q4 := cell(t, rep.Rows[3][4])
	if q1 <= q4 {
		t.Logf("note: rare-color speedup %.1fx not above common-color %.1fx at this scale", q1, q4)
	}
}

func TestFig13bShape(t *testing.T) {
	rep, err := RunFig13b(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Rows) != 3 || len(rep.Curves) != 3 {
		t.Fatalf("rows/curves = %d/%d", len(rep.Rows), len(rep.Curves))
	}
	cvipMean := cell(t, rep.Rows[0][2])
	vqpyMean := cell(t, rep.Rows[1][2])
	memoMean := cell(t, rep.Rows[2][2])
	if !(memoMean < vqpyMean && vqpyMean < cvipMean) {
		t.Errorf("per-frame means not ordered: cvip=%.1f vqpy=%.1f memo=%.1f", cvipMean, vqpyMean, memoMean)
	}
	// Memoization flattens the curve: last-quarter mean close to overall
	// mean (warm memo) and far below vanilla's last quarter.
	memoLast := cell(t, rep.Rows[2][4])
	vqpyLast := cell(t, rep.Rows[1][4])
	if memoLast >= vqpyLast {
		t.Errorf("memo last-quarter %.1f not below vanilla %.1f", memoLast, vqpyLast)
	}
}

func TestFig14Shape(t *testing.T) {
	rep, err := RunFig14(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if sp := cell(t, row[4]); sp < 1.5 {
			t.Errorf("%s/%s min: speedup %.1fx below 1.5x", row[0], row[1], sp)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	rep, err := RunFig15(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	for _, row := range rep.Rows {
		if sp := cell(t, row[4]); sp < 1.1 {
			t.Errorf("%s/%s min: speedup %.1fx below 1.1x", row[0], row[1], sp)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	rep, err := RunFig16(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	for _, row := range rep.Rows {
		naive := cell(t, row[4])
		refined := cell(t, row[6])
		if naive < 3 {
			t.Errorf("%s/%s min: naive EVA speedup %.1fx below 3x", row[0], row[1], naive)
		}
		if refined >= naive {
			t.Errorf("%s/%s min: refined (%.1fx) not better than naive (%.1fx)", row[0], row[1], refined, naive)
		}
		if refined < 1.0 {
			t.Errorf("%s/%s min: VQPy slower than refined EVA (%.1fx)", row[0], row[1], refined)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rep, err := RunTable5(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	// Row order: Pre, Q1..Q5, Q6.
	if len(rep.Rows) != 7 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows[1:] {
		vc7 := cell(t, row[1])
		vc13 := cell(t, row[2])
		vq := cell(t, row[3])
		if vq >= vc7 {
			t.Errorf("%s: VQPy (%.1f) not faster than VideoChat-7B (%.1f)", row[0], vq, vc7)
		}
		if vc13 <= vc7 {
			t.Errorf("%s: 13B low-resource (%.1f) not slower than 7B (%.1f)", row[0], vc13, vc7)
		}
	}
	// VQPy-Opt Q6 cheaper than plain Q6.
	q6 := rep.Rows[6]
	if opt := cell(t, q6[4]); opt >= cell(t, q6[3]) {
		t.Errorf("Q6 opt (%.1f) not cheaper than plain (%.1f)", opt, cell(t, q6[3]))
	}
}

func TestTable6Shape(t *testing.T) {
	rep, err := RunTable6(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		vc7 := cell(t, row[2])
		vc13 := cell(t, row[3])
		vq := cell(t, row[4])
		if vq <= vc7 || vq <= vc13 {
			t.Errorf("%s: VQPy F1 %.2f not above VideoChat (%.2f, %.2f)", row[0], vq, vc7, vc13)
		}
		if vq < 0.5 {
			t.Errorf("%s: VQPy F1 %.2f implausibly low", row[0], vq)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	rep, err := RunTable7(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	// VideoChat over-counts relative to truth; VQPy near truth.
	truthQ4 := cell(t, rep.Rows[3][1])
	vc7Q4 := cell(t, rep.Rows[0][1])
	vqQ4 := cell(t, rep.Rows[2][1])
	if vc7Q4 <= truthQ4 {
		t.Errorf("VideoChat Q4 average %.2f does not over-count truth %.2f", vc7Q4, truthQ4)
	}
	if diff := vqQ4 - truthQ4; diff < -1.5 || diff > 1.5 {
		t.Errorf("VQPy Q4 average %.2f too far from truth %.2f", vqQ4, truthQ4)
	}
}

func TestMemoAblationShape(t *testing.T) {
	rep, err := RunMemoAblation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	slow := cell(t, rep.Rows[0][5])
	fast := cell(t, rep.Rows[2][5])
	if slow <= fast {
		t.Errorf("memo speedup should grow with dwell: slow=%.1fx fast=%.1fx", slow, fast)
	}
}

func TestPlannerAblationShape(t *testing.T) {
	rep, err := RunPlannerAblation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	chosen := 0
	for _, row := range rep.Rows {
		if strings.Contains(row[3], "selected") {
			chosen++
			// The chosen plan must not be the most expensive.
			if cell(t, row[1]) > cell(t, rep.Rows[0][1]) {
				t.Errorf("selected plan costs more than the reference")
			}
		}
	}
	if chosen != 1 {
		t.Errorf("chosen plans = %d", chosen)
	}
}

func TestBatchAblationShape(t *testing.T) {
	rep, err := RunBatchAblation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	base := rep.Rows[0]
	for _, row := range rep.Rows[1:] {
		if row[2] != base[2] {
			t.Errorf("batch size changed results: %v vs %v", row, base)
		}
	}
}

func TestLazyAblationShape(t *testing.T) {
	rep, err := RunLazyAblation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	eager := cell(t, rep.Rows[0][1])
	lazy := cell(t, rep.Rows[1][1])
	if lazy >= eager {
		t.Errorf("lazy (%.1f) not cheaper than eager (%.1f)", lazy, eager)
	}
}

func TestExplainSuspectDAG(t *testing.T) {
	out, err := ExplainSuspectDAG(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", out)
	for _, want := range []string{"detect", "track", "rel_project", "similarity", "color"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
}

func TestEdgeAblationShape(t *testing.T) {
	rep, err := RunEdgeAblation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	serverOnly := cell(t, rep.Rows[0][2])
	edgeFiltered := cell(t, rep.Rows[1][2])
	if edgeFiltered >= serverOnly {
		t.Errorf("edge filtering did not reduce server load: %.1f vs %.1f", edgeFiltered, serverOnly)
	}
	if cell(t, rep.Rows[1][3]) <= 0 {
		t.Error("no edge cost recorded in edge_filtered config")
	}
	if cell(t, rep.Rows[1][4]) <= 0 {
		t.Error("no uplink cost recorded")
	}
}

func TestMuxScanShape(t *testing.T) {
	rep, err := RunMuxScan(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Rows: isolated, runall-seq, runall-par, muxscan. Detector
	// invocations must collapse from isolated to the cache-sharing
	// modes, and tracker invocations must collapse only under muxscan.
	isoDet := cell(t, rep.Rows[0][3])
	seqDet := cell(t, rep.Rows[1][3])
	muxDet := cell(t, rep.Rows[3][3])
	if seqDet >= isoDet || muxDet > seqDet {
		t.Errorf("detector invocations: isolated=%v seq=%v mux=%v", isoDet, seqDet, muxDet)
	}
	seqTrack := cell(t, rep.Rows[1][4])
	muxTrack := cell(t, rep.Rows[3][4])
	if muxTrack >= seqTrack {
		t.Errorf("tracker invocations did not drop: seq=%v mux=%v", seqTrack, muxTrack)
	}
	// Total virtual work of the shared pass must not exceed the
	// sequential scheduler's.
	if muxMS, seqMS := cell(t, rep.Rows[3][5]), cell(t, rep.Rows[1][5]); muxMS > seqMS {
		t.Errorf("shared scan charged more virtual time (%v) than sequential (%v)", muxMS, seqMS)
	}
}

func TestStreamingFacade(t *testing.T) {
	// The real-time mode: feed frames one by one through the facade.
	cfg := smallCfg().withDefaults()
	s := cfgSessionHelper(cfg)
	v := video.CityFlow(cfg.Seed, 30).Generate()
	q := vqpyRedCarQuery()
	st, err := s.OpenStream(q, v, v.FPS, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for i := range v.Frames {
		verdict, err := st.Feed(&v.Frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if verdict.Matched {
			matched++
		}
	}
	res := st.Close()
	if res.MatchedCount() != matched {
		t.Errorf("stream verdicts (%d) disagree with result (%d)", matched, res.MatchedCount())
	}
	if matched == 0 {
		t.Error("stream matched nothing")
	}
}
