package bench

// Chaos experiment (E19): deterministic fault injection against the
// full serving stack, gated on graceful degradation rather than mere
// survival. Four phases run the same fleet workload (three lockstep
// cameras, a red-car and a people query fleet-wide):
//
//	A baseline  — no injector; the reference verdicts.
//	B chaos     — recoverable model errors and timeouts (absorbed by
//	              retry), a terminal failure window (trips breakers
//	              into the fallback detector tier and carry-forward),
//	              and a wedged camera (quarantined, then released).
//	              Gate: every frame served healthily carries the
//	              baseline verdict (≥99% parity), breakers tripped,
//	              frames were answered degraded, a quarantine fired.
//	C no-op     — injector installed but with an EMPTY schedule; the
//	              results must be bit-identical to the baseline, which
//	              pins the injector's no-op guarantee end to end.
//	D store     — a single-source daemon over the persistent store with
//	              write faults (tiers degrade to memory-only) and read
//	              faults (served as misses); verdicts must still be
//	              bit-identical to a fault-free store run.
//
// Every phase runs under a recover() so a panic anywhere in the stack
// fails the chaos_completed gate instead of killing the bench binary —
// "zero panics" is part of the contract.

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"vqpy"

	"vqpy/internal/metrics"
	"vqpy/internal/serve"
)

// chaosCameras / chaosSeconds shape the fleet workload; seconds scale
// with cfg.Scale like every other experiment.
const (
	chaosCameras = 3
	chaosSeconds = 12.0
)

// chaosSchedule is phase B's fault plan. The terminal window and the
// camera wedge use Rate 1 over pinned frame windows so the experiment
// exercises breakers and quarantine deterministically at every scale;
// the transient rules fire probabilistically from the schedule seed.
func chaosSchedule(seed uint64) vqpy.FaultSchedule {
	return vqpy.FaultSchedule{
		Seed: seed,
		Rules: []vqpy.FaultRule{
			// Terminal window: every model fails frames 18..21 outright,
			// past any retry budget — breakers trip, detectors fall back,
			// and while both tiers' breakers cool down the scan carries
			// tracker state forward. Pinned early enough to land inside
			// the clip at every bench scale (the 10fps clip has 30 frames
			// at the CI smoke's -scale 0.25). Listed first so it wins
			// over the transient error rule inside the window.
			{Kind: vqpy.FaultModelError, Rate: 1, FromFrame: 18, ToFrame: 22, Persist: 99},
			// Transient faults: absorbed by per-attempt retry with zero
			// verdict impact (the injection decision is attempt-independent
			// and model outputs are pure functions of the frame).
			{Kind: vqpy.FaultModelError, Rate: 0.08, Persist: 1},
			{Kind: vqpy.FaultModelTimeout, Rate: 0.04, Persist: 1, DeadlineMS: 40},
			// One camera wedges at frame 10 for six consecutive polls:
			// enough to cross the quarantine threshold, survive a few
			// probe cycles, and recover.
			{Kind: vqpy.FaultSourceStall, Rate: 1, FromFrame: 10, ToFrame: 11, Persist: 6},
		},
	}
}

// chaosStoreSchedule is phase D's fault plan: from the fifth store
// append onward every write fails (each tier degrades to memory-only as
// it first hits the fault), and a fifth of disk reads are served as
// misses. Neither may change a verdict.
func chaosStoreSchedule(seed uint64) vqpy.FaultSchedule {
	return vqpy.FaultSchedule{
		Seed: seed,
		Rules: []vqpy.FaultRule{
			{Kind: vqpy.FaultStoreWrite, Rate: 1, FromFrame: 5},
			{Kind: vqpy.FaultStoreRead, Rate: 0.2},
		},
	}
}

// chaosFleetRun is one fleet-mode pass of the chaos workload.
type chaosFleetRun struct {
	red, people map[string]*vqpy.Result
	stats       serve.Stats
	wall        time.Duration
	ticks       int
}

// runChaosFleet drives the serving daemon's fleet mode manually (Speed
// 0) until every camera drains its clip, then detaches both fleet-wide
// queries. The injector (nil for the baseline) plugs into the daemon
// exactly as vqserve -chaos would.
func runChaosFleet(cfg Config, inj *vqpy.FaultInjector) (*chaosFleetRun, error) {
	s, err := serve.NewServer(serve.Config{
		Seed: cfg.Seed, Seconds: chaosSeconds * cfg.Scale, Speed: 0,
		FleetCams: chaosCameras, Faults: inj,
	}, nil)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	redID, err := s.AttachFleet("redcar")
	if err != nil {
		return nil, err
	}
	peopleID, err := s.AttachFleet("people")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	run := &chaosFleetRun{}
	// Stalled frames re-poll and quarantined cameras probe on a cadence,
	// so a camera can need several ticks per frame; the cap only guards
	// against a wedge that never clears (which would be a bug).
	clip := 0
	for _, src := range s.Streamz().Sources {
		if src.ClipFrames > clip {
			clip = src.ClipFrames
		}
	}
	maxTicks := clip*8 + 256
	for run.ticks = 0; run.ticks < maxTicks; run.ticks++ {
		if err := s.StepAll(); err != nil {
			return nil, err
		}
		if run.ticks%8 == 7 && chaosAllDone(s) {
			break
		}
	}
	if !chaosAllDone(s) {
		return nil, fmt.Errorf("bench: chaos fleet did not drain within %d ticks", maxTicks)
	}
	run.wall = time.Since(start)
	run.stats = s.Streamz()
	if run.red, err = s.DetachFleet(redID); err != nil {
		return nil, err
	}
	if run.people, err = s.DetachFleet(peopleID); err != nil {
		return nil, err
	}
	return run, nil
}

// chaosAllDone reports whether every camera drained its clip.
func chaosAllDone(s *serve.Server) bool {
	for _, src := range s.Streamz().Sources {
		if !src.Done {
			return false
		}
	}
	return true
}

// chaosParity compares one query's per-source verdicts between the
// baseline and a chaos run, skipping the positions the chaos run
// answered under degradation (those are allowed to differ — that is
// what degradation means). It returns (matching, compared) healthy
// frames.
func chaosParity(base, chaos map[string]*vqpy.Result) (int, int) {
	match, total := 0, 0
	for name, b := range base {
		c, ok := chaos[name]
		if !ok || len(b.Matched) != len(c.Matched) {
			// A missing source or a length mismatch means frames were
			// lost; count the whole source as compared-and-failed.
			total += len(b.Matched)
			continue
		}
		degraded := make(map[int]bool, len(c.DegradedAt))
		for _, i := range c.DegradedAt {
			degraded[i] = true
		}
		for i := range b.Matched {
			if degraded[i] {
				continue
			}
			total++
			if b.Matched[i] == c.Matched[i] {
				match++
			}
		}
	}
	return match, total
}

// chaosIdentical reports bit-identity of one query's per-source
// results (the no-op gate: enabled injector, empty schedule, zero
// drift).
func chaosIdentical(a, b map[string]*vqpy.Result) bool {
	return reflect.DeepEqual(a, b)
}

// chaosDegraded sums degraded frames over both queries of a run.
func chaosDegraded(run *chaosFleetRun) int {
	n := 0
	for _, m := range []map[string]*vqpy.Result{run.red, run.people} {
		for _, res := range m {
			n += res.DegradedFrames
		}
	}
	return n
}

// runChaosStore is phase D: a single-source daemon over the persistent
// result store, optionally with store faults injected. Returns the
// standing query's final result and the store stats at drain time.
func runChaosStore(cfg Config, inj *vqpy.FaultInjector) (*vqpy.Result, *serve.StoreStat, error) {
	dir, err := os.MkdirTemp("", "vqpy-chaos-store-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	s, err := serve.NewServer(serve.Config{
		Seed: cfg.Seed, Seconds: chaosSeconds * cfg.Scale, Speed: 0,
		StoreDir: dir, Faults: inj,
	}, []string{"cityflow"})
	if err != nil {
		return nil, nil, err
	}
	defer s.Close()
	id, err := s.AttachNamed("cityflow", "redcar")
	if err != nil {
		return nil, nil, err
	}
	for !chaosAllDone(s) {
		if err := s.Step("cityflow"); err != nil {
			return nil, nil, err
		}
	}
	stats := s.Streamz()
	res, err := s.Detach(id)
	if err != nil {
		return nil, nil, err
	}
	return res, stats.Store, nil
}

// RunChaos is the E19 experiment entry point used by vqbench. A panic
// anywhere in the serving stack is recovered into a failed run, so the
// "zero panics" contract is part of the gate rather than an assumption.
func RunChaos(cfg Config) (rep *metrics.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("bench: chaos run panicked: %v", r)
		}
	}()
	cfg = cfg.withDefaults()

	base, err := runChaosFleet(cfg, nil)
	if err != nil {
		return nil, err
	}
	injB := vqpy.NewFaultInjector(chaosSchedule(cfg.Seed + 1))
	chaos, err := runChaosFleet(cfg, injB)
	if err != nil {
		return nil, err
	}
	injC := vqpy.NewFaultInjector(vqpy.FaultSchedule{Seed: cfg.Seed + 1})
	noop, err := runChaosFleet(cfg, injC)
	if err != nil {
		return nil, err
	}
	storeBase, _, err := runChaosStore(cfg, nil)
	if err != nil {
		return nil, err
	}
	injD := vqpy.NewFaultInjector(chaosStoreSchedule(cfg.Seed + 2))
	storeChaos, storeStats, err := runChaosStore(cfg, injD)
	if err != nil {
		return nil, err
	}

	rep = &metrics.Report{
		Title:  "E19: chaos — deterministic fault injection across the serving stack",
		Header: []string{"phase", "wall ms", "ticks", "degraded frames"},
	}
	rep.AddRow("baseline", fmt.Sprintf("%.1f", float64(base.wall.Microseconds())/1000), fmt.Sprint(base.ticks), "0")
	rep.AddRow("chaos", fmt.Sprintf("%.1f", float64(chaos.wall.Microseconds())/1000), fmt.Sprint(chaos.ticks), fmt.Sprint(chaosDegraded(chaos)))
	rep.AddRow("no-op injector", fmt.Sprintf("%.1f", float64(noop.wall.Microseconds())/1000), fmt.Sprint(noop.ticks), fmt.Sprint(chaosDegraded(noop)))

	matchR, totalR := chaosParity(base.red, chaos.red)
	matchP, totalP := chaosParity(base.people, chaos.people)
	parity := 0.0
	if totalR+totalP > 0 {
		parity = float64(matchR+matchP) / float64(totalR+totalP)
	}
	noopIdentical := chaosIdentical(base.red, noop.red) && chaosIdentical(base.people, noop.people)
	trips := int64(0)
	quarantines := int64(0)
	if c := injB.Counters(); c != nil {
		trips = c.Get("breaker_trips")
	}
	quarantines = chaos.stats.Counters["quarantine_events"]
	storeParity := boolMetric(reflect.DeepEqual(storeBase.Matched, storeChaos.Matched) &&
		reflect.DeepEqual(storeBase.Hits, storeChaos.Hits))
	memOnly := 0
	if storeStats != nil {
		memOnly = storeStats.Tiers.MemOnlyTiers
	}

	rep.SetMetric("chaos_completed", 1)
	rep.SetMetric("chaos_parity", parity)
	rep.SetMetric("chaos_noop_identical", boolMetric(noopIdentical))
	rep.SetMetric("chaos_breaker_trips", float64(trips))
	rep.SetMetric("chaos_degraded_frames", float64(chaosDegraded(chaos)))
	rep.SetMetric("chaos_quarantines", float64(quarantines))
	rep.SetMetric("chaos_store_mem_only", float64(memOnly))
	rep.SetMetric("chaos_store_parity", storeParity)

	rep.AddNote("parity: %d/%d healthy frames carry the baseline verdict (%.4f); %d frames answered degraded",
		matchR+matchP, totalR+totalP, parity, chaosDegraded(chaos))
	rep.AddNote("breakers tripped %d time(s); %d quarantine event(s); no-op injector bit-identical: %v",
		trips, quarantines, noopIdentical)
	rep.AddNote("store phase: %d tier(s) degraded to memory-only, verdicts identical to fault-free store run: %v",
		memOnly, storeParity == 1)
	rep.AddNote("expected shape: parity ≥ 0.99, ≥1 breaker trip, ≥1 quarantine, ≥1 degraded frame, ≥1 memory-only tier, both identity gates exact")

	if parity < 0.99 {
		return rep, fmt.Errorf("bench: chaos verdict parity %.4f below 0.99 on recoverable faults", parity)
	}
	if !noopIdentical {
		return rep, fmt.Errorf("bench: no-op injector drifted from the baseline (no-op guarantee violated)")
	}
	if trips == 0 || quarantines == 0 || chaosDegraded(chaos) == 0 {
		return rep, fmt.Errorf("bench: chaos run did not exercise degradation (trips %d, quarantines %d, degraded %d)",
			trips, quarantines, chaosDegraded(chaos))
	}
	if memOnly == 0 || storeParity != 1 {
		return rep, fmt.Errorf("bench: store phase failed (mem-only tiers %d, parity %v)", memOnly, storeParity == 1)
	}
	return rep, nil
}
