package bench

// Attach/detach churn experiment (E16): the dynamic serving layer
// measured against per-query execution under query arrival and
// departure. Eight basic queries arrive staggered over one clip; half
// of them depart at the three-quarter mark. Two modes:
//
//   - perquery: every query runs its own Stream over exactly its
//     residency window — N scans, N detector passes, N trackers, the
//     no-sharing baseline a naive serving tier would pay;
//   - shared:   one dynamic MuxStream; queries Attach and Detach
//     mid-stream, scan groups form and dissolve, and each group's
//     detect/track runs once per frame however many queries ride it.
//
// The report shows wall time plus the ledger's detector and tracker
// invocation counts; shared-group tracker invocations must stay
// strictly below the per-query count (the CI baselines gate enforces
// it). A correctness pass verifies that the full-duration queries'
// shared results are identical to a fresh shared stream of just that
// subset — the bit-identical detach contract at benchmark scale.

import (
	"fmt"
	"reflect"
	"time"

	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/metrics"
	"vqpy/internal/video"
)

// churnSpec schedules one query's residency.
type churnSpec struct {
	name  string
	build func() *vqpy.Query
	// arriveAt/departAt are fractions of the clip (departAt 1 = stays).
	arriveAt, departAt float64
}

// ChurnWorkload is the 8-query churn mix: four queries sharing the car
// scan group, plus person/ball/specialized-detector queries with groups
// of their own. Builders return fresh values so each mode plans
// independently.
func ChurnWorkload() []churnSpec {
	carQuery := func(name, color string) func() *vqpy.Query {
		return func() *vqpy.Query {
			return vqpy.NewQuery(name).
				Use("car", vqpy.Car()).
				Where(vqpy.And(
					vqpy.P("car", vqpy.PropScore).Gt(0.6),
					vqpy.P("car", "color").Eq(color),
				)).
				FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "color"))
		}
	}
	return []churnSpec{
		{"RedCar", carQuery("RedCar", "red"), 0, 1},
		{"People", func() *vqpy.Query {
			return vqpy.NewQuery("People").
				Use("p", vqpy.Person()).
				Where(vqpy.P("p", vqpy.PropScore).Gt(0.5)).
				FrameOutput(vqpy.Sel("p", vqpy.PropTrackID))
		}, 0, 1},
		{"Plates", func() *vqpy.Query {
			return vqpy.NewQuery("Plates").
				Use("car", vqpy.Car()).
				Where(vqpy.P("car", vqpy.PropScore).Gt(0.7)).
				FrameOutput(vqpy.Sel("car", "plate"))
		}, 0.1, 0.75},
		{"WhiteCars", func() *vqpy.Query {
			t := core.NewVObj("WhiteVehicle", video.ClassCar).
				Detector("yolov8m").
				StatelessModel("color", "color_detect", true)
			return vqpy.NewQuery("WhiteCars").
				Use("w", t).
				Where(vqpy.And(
					vqpy.P("w", vqpy.PropScore).Gt(0.5),
					vqpy.P("w", "color").Eq("white"),
				))
		}, 0.2, 1},
		{"BlueCars", carQuery("BlueCars", "blue"), 0.3, 0.75},
		{"Speeding", func() *vqpy.Query {
			return vqpy.SpeedQuery("Speeding", "f", vqpy.Car(), 12)
		}, 0.4, 1},
		{"Balls", func() *vqpy.Query {
			return vqpy.NewQuery("Balls").
				Use("b", core.NewVObj("CheapBall", video.ClassBall).Detector("ball_person_cheap")).
				Where(vqpy.P("b", vqpy.PropScore).Gt(0.3))
		}, 0.5, 0.75},
		{"BlackCars", carQuery("BlackCars", "black"), 0.6, 1},
	}
}

// churnWindow resolves a spec's residency to frame indices over n
// frames: [arrive, depart).
func churnWindow(spec churnSpec, n int) (int, int) {
	arrive := int(spec.arriveAt * float64(n))
	depart := n
	if spec.departAt < 1 {
		depart = int(spec.departAt * float64(n))
	}
	if depart > n {
		depart = n
	}
	return arrive, depart
}

// RunChurnShared executes the churn schedule on one dynamic MuxStream
// and returns the per-spec results (detached queries report their
// residency window), elapsed wall time and the session.
func RunChurnShared(cfg Config) ([]*vqpy.Result, time.Duration, *vqpy.Session, error) {
	v := MultiQueryVideo(cfg)
	n := len(v.Frames)
	specs := ChurnWorkload()
	s := vqpy.NewSession(cfg.Seed)
	s.SetNoBurn(!cfg.Burn)
	if cfg.Burn {
		s.SetOffloadLatency(multiQueryOffloadNSPerMS)
	}
	m, err := s.Serve(v.FPS)
	if err != nil {
		return nil, 0, nil, err
	}
	results := make([]*vqpy.Result, len(specs))
	lanes := make([]int, len(specs))
	for i := range lanes {
		lanes[i] = -1
	}
	start := time.Now()
	for f := 0; f < n; f++ {
		for i, spec := range specs {
			arrive, depart := churnWindow(spec, n)
			if f == arrive {
				if lanes[i], _, err = s.AttachQuery(m, spec.build(), v); err != nil {
					return nil, 0, nil, err
				}
			}
			if f == depart && lanes[i] >= 0 {
				if results[i], err = m.Detach(lanes[i]); err != nil {
					return nil, 0, nil, err
				}
				lanes[i] = -1
			}
		}
		if _, err := m.Feed(v.FrameAt(f)); err != nil {
			return nil, 0, nil, err
		}
	}
	for _, res := range m.Close() {
		for i := range specs {
			if results[i] == nil && res.Query == specs[i].name {
				results[i] = res
				break
			}
		}
	}
	return results, time.Since(start), s, nil
}

// RunChurnPerQuery executes the same schedule with one private Stream
// per query over its residency window — no shared cache, no shared
// scans: the no-sharing baseline.
func RunChurnPerQuery(cfg Config) ([]*vqpy.Result, time.Duration, *vqpy.Session, error) {
	v := MultiQueryVideo(cfg)
	n := len(v.Frames)
	specs := ChurnWorkload()
	s := vqpy.NewSession(cfg.Seed)
	s.SetNoBurn(!cfg.Burn)
	if cfg.Burn {
		s.SetOffloadLatency(multiQueryOffloadNSPerMS)
	}
	results := make([]*vqpy.Result, len(specs))
	start := time.Now()
	for i, spec := range specs {
		arrive, depart := churnWindow(spec, n)
		st, err := s.OpenStream(spec.build(), v, v.FPS)
		if err != nil {
			return nil, 0, nil, err
		}
		for f := arrive; f < depart; f++ {
			if _, err := st.Feed(v.FrameAt(f)); err != nil {
				return nil, 0, nil, err
			}
		}
		results[i] = st.Close()
	}
	return results, time.Since(start), s, nil
}

// RunChurn is the E16 experiment entry point used by vqbench.
func RunChurn(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	specs := ChurnWorkload()

	shared, sharedWall, sharedSession, err := RunChurnShared(cfg)
	if err != nil {
		return nil, err
	}
	perq, perqWall, perqSession, err := RunChurnPerQuery(cfg)
	if err != nil {
		return nil, err
	}

	rep := &metrics.Report{
		Title:  "E16: attach/detach churn — dynamic shared stream vs per-query streams",
		Header: []string{"mode", "wall ms", "detect inv", "tracker inv", "virtual ms"},
	}
	sharedClock, perqClock := sharedSession.Clock(), perqSession.Clock()
	sharedTrk, perqTrk := sharedClock.Invocations("tracker"), perqClock.Invocations("tracker")
	sharedDet, perqDet := detectorInvocations(sharedClock), detectorInvocations(perqClock)
	sharedMS := float64(sharedWall.Microseconds()) / 1000
	perqMS := float64(perqWall.Microseconds()) / 1000
	rep.AddRow("perquery", fmt.Sprintf("%.1f", perqMS), fmt.Sprint(perqDet),
		fmt.Sprint(perqTrk), fmt.Sprintf("%.0f", perqClock.TotalMS()))
	rep.AddRow("shared", fmt.Sprintf("%.1f", sharedMS), fmt.Sprint(sharedDet),
		fmt.Sprint(sharedTrk), fmt.Sprintf("%.0f", sharedClock.TotalMS()))

	arrivals, departures := 0, 0
	for _, spec := range specs {
		arrivals++
		if spec.departAt < 1 {
			departures++
		}
	}
	rep.SetMetric("churn_shared_tracker_inv", float64(sharedTrk))
	rep.SetMetric("churn_perquery_tracker_inv", float64(perqTrk))
	rep.SetMetric("churn_shared_detect_inv", float64(sharedDet))
	rep.SetMetric("churn_perquery_detect_inv", float64(perqDet))
	if perqTrk > 0 {
		rep.SetMetric("churn_tracker_ratio", float64(sharedTrk)/float64(perqTrk))
	}
	if perqDet > 0 {
		rep.SetMetric("churn_detect_ratio", float64(sharedDet)/float64(perqDet))
	}
	if perqMS > 0 {
		rep.SetMetric("churn_wall_ratio", sharedMS/perqMS)
	}

	// Correctness: the full-duration queries must be bit-identical to a
	// fresh shared stream of exactly that subset — the detach contract.
	v := MultiQueryVideo(cfg)
	refSession := vqpy.NewSession(cfg.Seed)
	refSession.SetNoBurn(true)
	var stayQueries []*vqpy.Query
	var stayIdx []int
	for i, spec := range specs {
		if spec.arriveAt == 0 && spec.departAt >= 1 {
			stayQueries = append(stayQueries, spec.build())
			stayIdx = append(stayIdx, i)
		}
	}
	mRef, err := refSession.OpenShared(stayQueries, v, v.FPS)
	if err != nil {
		return nil, err
	}
	for f := 0; f < len(v.Frames); f++ {
		if _, err := mRef.Feed(v.FrameAt(f)); err != nil {
			return nil, err
		}
	}
	identical := true
	for j, ref := range mRef.Close() {
		got := shared[stayIdx[j]]
		if got == nil || !reflect.DeepEqual(ref.Matched, got.Matched) ||
			!reflect.DeepEqual(ref.Hits, got.Hits) ||
			ref.Count != got.Count || !reflect.DeepEqual(ref.TrackIDs, got.TrackIDs) {
			identical = false
		}
	}
	// Detached queries still answered their residency windows.
	for i, spec := range specs {
		arrive, depart := churnWindow(spec, len(v.Frames))
		if shared[i] == nil || shared[i].FramesProcessed != depart-arrive ||
			perq[i] == nil || perq[i].FramesProcessed != depart-arrive {
			identical = false
		}
	}

	rep.AddNote("queries: %d (%d arrivals, %d departures); full-duration results identical to fresh shared stream: %v",
		len(specs), arrivals, departures, identical)
	rep.AddNote("expected shape: shared tracker/detector invocations strictly below per-query counts — "+
		"the car scan group serves %d queries with one detect/track per frame", 4)
	if !cfg.Burn {
		rep.AddNote("burn disabled: wall times reflect engine overhead only, not model latency")
	}
	if !identical {
		return rep, fmt.Errorf("bench: churn shared results diverge from fresh shared stream")
	}
	if sharedTrk >= perqTrk {
		return rep, fmt.Errorf("bench: shared tracker invocations %d not below per-query %d", sharedTrk, perqTrk)
	}
	return rep, nil
}
