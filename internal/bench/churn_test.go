package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vqpy/internal/metrics"
)

// TestChurnShape runs the E16 experiment at test scale and pins its
// contract: shared invocation counts strictly below per-query, ratios
// exported for the gate, and the internal identity crosscheck passing
// (RunChurn errors otherwise).
func TestChurnShape(t *testing.T) {
	rep, err := RunChurn(Config{Seed: 11, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	sharedTrk, ok1 := rep.Metric("churn_shared_tracker_inv")
	perqTrk, ok2 := rep.Metric("churn_perquery_tracker_inv")
	if !ok1 || !ok2 {
		t.Fatalf("missing tracker metrics: %v", rep.Metrics)
	}
	if sharedTrk >= perqTrk {
		t.Errorf("shared tracker inv %.0f not below per-query %.0f", sharedTrk, perqTrk)
	}
	if ratio, ok := rep.Metric("churn_tracker_ratio"); !ok || ratio >= 1 {
		t.Errorf("churn_tracker_ratio = %v, %v", ratio, ok)
	}
	if det, ok := rep.Metric("churn_shared_detect_inv"); !ok || det <= 0 {
		t.Errorf("churn_shared_detect_inv = %v, %v", det, ok)
	}
}

// writeBaselineFixture writes a baselines file plus one artifact into a
// temp dir and returns the baselines path.
func writeBaselineFixture(t *testing.T, dir string, baselines string, artifacts map[string][]*metrics.Report) string {
	t.Helper()
	for name, reports := range artifacts {
		blob, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "baselines.json")
	if err := os.WriteFile(path, []byte(baselines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckBaselines exercises the regression gate: passing bounds,
// violations beyond tolerance, values saved by tolerance, and missing
// metrics all behave as CI relies on.
func TestCheckBaselines(t *testing.T) {
	rep := &metrics.Report{Title: "fixture"}
	rep.SetMetric("trk", 600)
	rep.SetMetric("ratio", 0.60)
	artifacts := map[string][]*metrics.Report{"B.json": {rep}}

	ok := `{"tolerance":0.1,"checks":[
		{"file":"B.json","metric":"trk","max":600},
		{"file":"B.json","metric":"trk","min":600},
		{"file":"B.json","metric":"ratio","max":0.85,"tolerance":0}
	]}`
	path := writeBaselineFixture(t, t.TempDir(), ok, artifacts)
	summary, err := CheckBaselines(path)
	if err != nil {
		t.Fatalf("passing baselines failed: %v\n%s", err, summary)
	}
	if !strings.Contains(summary, "trk") {
		t.Errorf("summary missing metric lines:\n%s", summary)
	}

	// Within tolerance: 600 against max 570 (+10% → 627) passes; with
	// tolerance 0 it fails.
	saved := `{"tolerance":0.1,"checks":[{"file":"B.json","metric":"trk","max":570}]}`
	path = writeBaselineFixture(t, t.TempDir(), saved, artifacts)
	if _, err := CheckBaselines(path); err != nil {
		t.Errorf("tolerance did not absorb 600 vs max 570: %v", err)
	}
	strict := `{"tolerance":0,"checks":[{"file":"B.json","metric":"trk","max":570}]}`
	path = writeBaselineFixture(t, t.TempDir(), strict, artifacts)
	if _, err := CheckBaselines(path); err == nil {
		t.Error("regression beyond tolerance passed")
	}

	missing := `{"tolerance":0.1,"checks":[{"file":"B.json","metric":"nope","max":1}]}`
	path = writeBaselineFixture(t, t.TempDir(), missing, artifacts)
	if _, err := CheckBaselines(path); err == nil {
		t.Error("missing metric passed")
	}

	unbounded := `{"tolerance":0.1,"checks":[{"file":"B.json","metric":"trk"}]}`
	path = writeBaselineFixture(t, t.TempDir(), unbounded, artifacts)
	if _, err := CheckBaselines(path); err == nil {
		t.Error("check without bounds passed")
	}

	empty := `{"tolerance":0.1,"checks":[]}`
	path = writeBaselineFixture(t, t.TempDir(), empty, artifacts)
	if _, err := CheckBaselines(path); err == nil {
		t.Error("empty baselines passed")
	}

	if _, err := CheckBaselines(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing baselines file passed")
	}
}

// TestRepoBaselinesConsistent guards the checked-in bench_baselines.json
// itself: every gated metric must be one the experiments actually emit,
// so the CI gate can never pass vacuously on a renamed metric.
func TestRepoBaselinesConsistent(t *testing.T) {
	blob, err := os.ReadFile("../../bench_baselines.json")
	if err != nil {
		t.Fatal(err)
	}
	var base Baselines
	if err := json.Unmarshal(blob, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Checks) == 0 {
		t.Fatal("no checks in bench_baselines.json")
	}

	cfg := Config{Seed: 11, Scale: 0.2}
	emitted := map[string]bool{}
	for _, run := range []func(Config) (*metrics.Report, error){RunMultiQuery, RunMuxScan, RunChurn, RunRescan, RunFleet, RunChaos, RunSearch, RunFidelity, RunText} {
		rep, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for name := range rep.Metrics {
			emitted[name] = true
		}
	}
	for _, c := range base.Checks {
		if !emitted[c.Metric] {
			t.Errorf("baseline check %q gates a metric no experiment emits", c.Metric)
		}
		if c.Max == nil && c.Min == nil {
			t.Errorf("baseline check %q has no bounds", c.Metric)
		}
	}
}
