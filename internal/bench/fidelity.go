package bench

// Fidelity-serving experiment (E22): multi-fidelity archive tiers
// against the live full-fidelity scan (DESIGN.md §12). The clip is
// archived at every reduced tier of the fidelity lattice, then the
// workload query runs three ways — live (the reference answer), under
// a 0.9 accuracy floor (the planner serves from the cheapest archived
// tier meeting it), and strictly over the warm tier archive (must stay
// bit-identical to an archive-free live run). The gates are the
// accuracy-for-cost contract: the budgeted answer costs at most 1/5th
// of the live scan (fidelity_cost_ratio <= 0.2), agrees with the live
// verdicts at or above the declared floor (fidelity_accuracy >= 0.9),
// and a strict query never sees the tiers at all.

import (
	"fmt"
	"os"
	"reflect"

	"vqpy"

	"vqpy/internal/metrics"
)

// fidelityBenchQuery is the fidelity workload: confidently detected
// cars with track ids and plates — stateless residual properties, so
// the query is fidelity-replayable (same gate as index verification).
func fidelityBenchQuery() *vqpy.Query {
	return vqpy.NewQuery("FidelityCars").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.6)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate"))
}

// verdictAgreement is the fraction of frames on which two per-frame
// verdict vectors agree.
func verdictAgreement(a, b []bool) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// RunFidelity is the E22 experiment entry point used by vqbench.
func RunFidelity(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp("", "vqpy-fidelity-store-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	refDir, err := os.MkdirTemp("", "vqpy-fidelity-ref-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(refDir)

	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(cfg.Seed, 60*cfg.Scale))
	st, err := vqpy.OpenStore(dir, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer st.Close()

	// Archive every reduced tier of the lattice (the full-fidelity head
	// is what the live path already is). Each pass scans only the tier's
	// stride-aligned frames with the tier's detector and calibrates its
	// accuracy into the store's fidelity manifest.
	tiers := vqpy.FidelityLattice("")[1:]
	entries := make([]vqpy.FidelityEntry, 0, len(tiers))
	for _, fid := range tiers {
		e, err := cfg.session().ArchiveFidelity(fidelityBenchQuery(), v, fid, 0, vqpy.WithStore(st))
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}

	// Live reference: an archive-free strict run is the ground answer
	// (and the cost denominator).
	refStore, err := vqpy.OpenStore(refDir, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer refStore.Close()
	live, err := cfg.session().ExecuteFidelity(fidelityBenchQuery(), v, 0, vqpy.WithStore(refStore))
	if err != nil {
		return nil, err
	}

	// Budgeted run: a 0.9 floor lets the planner serve from the cheapest
	// satisfying tier, live-scanning nothing (full coverage).
	budgeted, err := cfg.session().ExecuteFidelity(fidelityBenchQuery(), v, 0,
		vqpy.WithStore(st), vqpy.WithMinAccuracy(0.9))
	if err != nil {
		return nil, err
	}
	chosen := budgeted.Decision.ChosenCandidate()

	// Strict run over the warm tier archive: the tiers must be invisible.
	strict, err := cfg.session().ExecuteFidelity(fidelityBenchQuery(), v, 0, vqpy.WithStore(st))
	if err != nil {
		return nil, err
	}
	strictIdentical := strict.Decision.ChosenCandidate().Live &&
		reflect.DeepEqual(strict.Matched, live.Matched) &&
		reflect.DeepEqual(strict.Hits, live.Hits)

	costRatio := 0.0
	if live.VirtualMS > 0 {
		costRatio = budgeted.VirtualMS / live.VirtualMS
	}
	accuracy := verdictAgreement(budgeted.Matched, live.Matched)

	rep := &metrics.Report{
		Title:  "E22: fidelity serving — accuracy-budgeted queries over multi-fidelity archive tiers",
		Header: []string{"path", "tier", "est acc", "replayed", "degraded", "residual", "virtual ms"},
	}
	rep.AddRow("live", "live/full", "1.000", "0", "0", fmt.Sprint(live.ResidualFrames),
		fmt.Sprintf("%.1f", live.VirtualMS))
	rep.AddRow("budget 0.9", chosen.Key, fmt.Sprintf("%.3f", chosen.Accuracy),
		fmt.Sprint(budgeted.ReplayedFrames), fmt.Sprint(budgeted.DegradedFrames),
		fmt.Sprint(budgeted.ResidualFrames), fmt.Sprintf("%.1f", budgeted.VirtualMS))
	rep.AddRow("strict", strict.Decision.ChosenCandidate().Key, "1.000", "0", "0",
		fmt.Sprint(strict.ResidualFrames), fmt.Sprintf("%.1f", strict.VirtualMS))

	rep.SetMetric("fidelity_cost_ratio", costRatio)
	rep.SetMetric("fidelity_accuracy", accuracy)
	rep.SetMetric("fidelity_strict_identical", boolMetric(strictIdentical))
	rep.SetMetric("fidelity_archived_tiers", float64(len(entries)))
	rep.SetMetric("fidelity_replayed_frames", float64(budgeted.ReplayedFrames))

	for _, e := range entries {
		rep.AddNote("tier %s: covered %d frames, calibrated accuracy %.3f", e.Key, e.Covered, e.Accuracy)
	}
	rep.AddNote("budget 0.9 chose %s: %.1fx cheaper than live, %.1f%% verdict agreement",
		chosen.Key, 1/maxFloat(costRatio, 1e-9), 100*accuracy)
	rep.AddNote("expected shape: replay costs bookkeeping, not model time — archive-served " +
		"queries beat the live scan by >=5x while staying inside the declared accuracy budget")

	if !chosen.Live && budgeted.ReplayedFrames == 0 {
		return rep, fmt.Errorf("bench: tier-served run replayed no frames")
	}
	if chosen.Live {
		return rep, fmt.Errorf("bench: 0.9 floor fell back live; calibrated tiers: %+v", entries)
	}
	if costRatio > 0.2 {
		return rep, fmt.Errorf("bench: fidelity cost ratio %.3f exceeds 0.2 (no >=5x saving)", costRatio)
	}
	if accuracy < 0.9 {
		return rep, fmt.Errorf("bench: budgeted verdicts agree with live on %.1f%% of frames, below the 0.9 floor", 100*accuracy)
	}
	if !strictIdentical {
		return rep, fmt.Errorf("bench: strict query over the warm tier archive diverged from the archive-free run")
	}
	return rep, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
