package bench

import (
	"fmt"

	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/cvip"
	"vqpy/internal/metrics"
	"vqpy/internal/video"
)

// Fig13aDurationSec is the CityFlow workload length at Scale=1 (the
// paper evaluates 3.25 h of footage; three minutes of the synthetic
// intersection preserves the rarity structure at tractable cost).
const Fig13aDurationSec = 180

// RunFig13a regenerates Figure 13(a): runtime of CVIP vs vanilla VQPy vs
// VQPy with intrinsic annotations on the five standardized queries.
func RunFig13a(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	v := video.CityFlow(cfg.Seed, Fig13aDurationSec*cfg.Scale).Generate()
	rep := &metrics.Report{
		Title:  "Figure 13(a): CVIP vs VQPy on CityFlow-NL-style queries (virtual seconds)",
		Header: []string{"query", "text", "cvip_s", "vqpy_s", "vqpy_speedup", "vqpy_memo_s", "memo_speedup"},
	}
	for _, q := range fig13Queries() {
		cvipMS, err := runFig13CVIP(cfg, v, q)
		if err != nil {
			return nil, err
		}
		vanillaMS, err := runFig13VQPy(cfg, v, q, false)
		if err != nil {
			return nil, err
		}
		memoMS, err := runFig13VQPy(cfg, v, q, true)
		if err != nil {
			return nil, err
		}
		rep.AddRow(q.id, q.text,
			metrics.Sec(cvipMS), metrics.Sec(vanillaMS), metrics.Ratio(cvipMS, vanillaMS),
			metrics.Sec(memoMS), metrics.Ratio(cvipMS, memoMS))
	}
	rep.AddNote("expected shape: CVIP flat across queries; VQPy ~3x faster (lazy evaluation, bigger for rare colors); +intrinsic ~11-14x")
	return rep, nil
}

func runFig13CVIP(cfg Config, v *video.Video, q fig13Query) (float64, error) {
	s := cfg.session()
	pipeline, err := cvip.New(s.Env(), s.Registry())
	if err != nil {
		return 0, err
	}
	res := pipeline.Run(v, cvip.Query{Color: q.color, Kind: q.kind, Dir: q.dir})
	return res.VirtualMS, nil
}

func runFig13VQPy(cfg Config, v *video.Video, q fig13Query, memo bool) (float64, error) {
	s := cfg.session()
	var query *core.Query
	if q.kind == video.KindBusKind {
		query = cvipStyleBusQuery(q.id, q.color, q.dir)
	} else {
		query = cvipStyleQuery(q.id, q.color, q.kind, q.dir)
	}
	opts := []vqpy.Option{vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized()}
	if !memo {
		opts = append(opts, vqpy.WithoutMemo())
	}
	before := s.Clock().TotalMS()
	if _, err := s.Execute(query, v, opts...); err != nil {
		return 0, err
	}
	return s.Clock().TotalMS() - before, nil
}

// RunFig13b regenerates Figure 13(b): per-frame processing time for Q1
// under the three configurations.
func RunFig13b(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	v := video.CityFlow(cfg.Seed, Fig13aDurationSec*cfg.Scale).Generate()
	q := fig13Queries()[0]
	rep := &metrics.Report{
		Title:  "Figure 13(b): per-frame time for Q1 (virtual ms per frame)",
		Header: []string{"config", "frames", "mean_ms", "p95_ms", "last_quarter_mean_ms"},
	}

	collect := func(label string, run func(s *vqpy.Session) error) error {
		s := cfg.session()
		if err := run(s); err != nil {
			return err
		}
		series := s.Clock().PerFrame()
		xs := make([]float64, len(series))
		ys := make([]float64, len(series))
		var sum float64
		for i, fc := range series {
			xs[i], ys[i] = float64(fc.Frame), fc.MS
			sum += fc.MS
		}
		mean := 0.0
		if len(series) > 0 {
			mean = sum / float64(len(series))
		}
		lastQ := series[len(series)*3/4:]
		var lqSum float64
		for _, fc := range lastQ {
			lqSum += fc.MS
		}
		lqMean := 0.0
		if len(lastQ) > 0 {
			lqMean = lqSum / float64(len(lastQ))
		}
		rep.AddRow(label, fmt.Sprint(len(series)), metrics.Ms(mean), metrics.Ms(p95(ys)), metrics.Ms(lqMean))
		rep.Curves = append(rep.Curves, metrics.Series{Label: label, X: xs, Y: ys})
		return nil
	}

	if err := collect("CVIP", func(s *vqpy.Session) error {
		p, err := cvip.New(s.Env(), s.Registry())
		if err != nil {
			return err
		}
		p.Run(v, cvip.Query{Color: q.color, Kind: q.kind, Dir: q.dir})
		return nil
	}); err != nil {
		return nil, err
	}
	if err := collect("VQPy", func(s *vqpy.Session) error {
		_, err := s.Execute(cvipStyleQuery(q.id, q.color, q.kind, q.dir), v,
			vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized(), vqpy.WithoutMemo())
		return err
	}); err != nil {
		return nil, err
	}
	if err := collect("VQPy+annotation", func(s *vqpy.Session) error {
		_, err := s.Execute(cvipStyleQuery(q.id, q.color, q.kind, q.dir), v,
			vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
		return err
	}); err != nil {
		return nil, err
	}
	rep.AddNote("expected shape: CVIP flat and high; VQPy lower, tracking object density; +annotation flattens after warm-up (memoized intrinsic labels)")
	return rep, nil
}

func p95(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	cp := append([]float64(nil), ys...)
	// insertion-ish selection is fine at these sizes
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(float64(len(cp)) * 0.95)
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}
