package bench

import (
	"fmt"

	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/metrics"
	"vqpy/internal/sqlbase"
	"vqpy/internal/video"
)

// The §5.2 comparison runs three query types over three live-cam
// datasets at two clip lengths (3 and 10 minutes).

// sqlDataset describes one §5.2 workload source.
type sqlDataset struct {
	name string
	gen  func(seed uint64, durationSec float64) video.Scenario
}

func sqlDatasets() []sqlDataset {
	return []sqlDataset{
		{"banff", video.Banff},
		{"jackson", video.Jackson},
		{"southampton", video.Southampton},
	}
}

// evaQueryKind selects which Appendix A script to run.
type evaQueryKind int

const (
	evaRedCar evaQueryKind = iota
	evaSpeeding
	evaRedSpeeding
	evaRedSpeedingRefined
)

func runEVA(cfg Config, v *video.Video, kind evaQueryKind) (float64, error) {
	s := cfg.session()
	// The §5.2 comparison measures EVA's row-at-a-time execution, so the
	// baseline engine is explicit here; the planner-backed SQL engine
	// would route these scripts through VQPy's own shared-scan path.
	eng := sqlbase.NewEVABaseline(s.Env(), s.Registry())
	sqlbase.RegisterStandardUDFs(eng)
	eng.RegisterVideo("clip.mp4", v)
	var script []string
	switch kind {
	case evaRedCar:
		script = sqlbase.RedCarScript("clip.mp4")
	case evaSpeeding:
		script = sqlbase.SpeedingCarScript("clip.mp4")
	case evaRedSpeeding:
		script = sqlbase.RedSpeedingCarScript("clip.mp4")
	case evaRedSpeedingRefined:
		script = sqlbase.RedSpeedingCarRefinedScript("clip.mp4")
	}
	before := s.Clock().TotalMS()
	if _, err := eng.ExecScript(script); err != nil {
		return 0, err
	}
	return s.Clock().TotalMS() - before, nil
}

// vqpyCarForSQL matches the §5.2 setup: EVA's detector (yolox stands in
// for its built-in YOLO), CVIP's color model as a stateless intrinsic
// property, and the handcrafted velocity function as a stateful
// property (Figures 21/23/25).
func vqpyCarForSQL() *core.VObjType {
	return core.NewVObj("Car", video.ClassCar).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		AddProperty(vqpy.VelocityProp(1))
}

func vqpyRedCarQuery() *core.Query {
	return core.NewQuery("QueryRedCar").
		Use("car", vqpyCarForSQL()).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "color").Eq("red"),
		)).
		FrameOutput(core.Sel("car", core.PropTrackID), core.Sel("car", core.PropBBox))
}

func vqpySpeedingQuery() *core.Query {
	return core.NewQuery("QuerySpeedingCar").
		Use("car", vqpyCarForSQL()).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "velocity").Gt(video.SpeedingThreshold),
		)).
		FrameOutput(core.Sel("car", core.PropTrackID), core.Sel("car", core.PropBBox))
}

func vqpyRedSpeedingQuery() *core.Query {
	return core.NewQuery("QueryRedSpeedingCar").
		Use("car", vqpyCarForSQL()).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "color").Eq("red"),
			core.P("car", "velocity").Gt(video.SpeedingThreshold),
		)).
		FrameOutput(core.Sel("car", core.PropTrackID), core.Sel("car", core.PropBBox))
}

func runVQPySQLComparison(cfg Config, v *video.Video, q *core.Query) (float64, error) {
	s := cfg.session()
	before := s.Clock().TotalMS()
	// §5.2: frame filters and specialized NNs disabled for fairness
	// (EVA has neither); object-level reuse stays on — it is the
	// object-centric data model under comparison.
	_, err := s.Execute(q, v, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
	if err != nil {
		return 0, err
	}
	return s.Clock().TotalMS() - before, nil
}

// figSQLConfig describes one of Figures 14-16.
type figSQLConfig struct {
	title    string
	vqpy     func() *core.Query
	eva      evaQueryKind
	refined  bool
	expected string
}

func runFigSQL(cfg Config, fc figSQLConfig) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	header := []string{"dataset", "clip_min", "vqpy_s", "eva_s", "speedup"}
	if fc.refined {
		header = append(header, "eva_refined_s", "refined_speedup")
	}
	rep := &metrics.Report{Title: fc.title, Header: header}
	for _, ds := range sqlDatasets() {
		for _, minutes := range []float64{3, 10} {
			sc := ds.gen(cfg.Seed, minutes*60*cfg.Scale)
			sc.SpeederFrac = 0.15 // ensure the stateful queries have work
			v := sc.Generate()
			vq, err := runVQPySQLComparison(cfg, v, fc.vqpy())
			if err != nil {
				return nil, err
			}
			ev, err := runEVA(cfg, v, fc.eva)
			if err != nil {
				return nil, err
			}
			row := []string{ds.name, fmt.Sprintf("%.0f", minutes),
				metrics.Sec(vq), metrics.Sec(ev), metrics.Ratio(ev, vq)}
			if fc.refined {
				refined, err := runEVA(cfg, v, evaRedSpeedingRefined)
				if err != nil {
					return nil, err
				}
				row = append(row, metrics.Sec(refined), metrics.Ratio(refined, vq))
			}
			rep.AddRow(row...)
		}
	}
	rep.AddNote("expected shape: %s", fc.expected)
	return rep, nil
}

// RunFig14 regenerates Figure 14: the red-car (stateless intrinsic)
// query.
func RunFig14(cfg Config) (*metrics.Report, error) {
	return runFigSQL(cfg, figSQLConfig{
		title:    "Figure 14: Red Car query, VQPy vs EVA (virtual seconds)",
		vqpy:     vqpyRedCarQuery,
		eva:      evaRedCar,
		expected: "VQPy ~4-5.5x faster (intrinsic color memoized per object; EVA reclassifies every row)",
	})
}

// RunFig15 regenerates Figure 15: the speeding-car (stateful) query.
func RunFig15(cfg Config) (*metrics.Report, error) {
	return runFigSQL(cfg, figSQLConfig{
		title:    "Figure 15: Speeding Car query, VQPy vs EVA (virtual seconds)",
		vqpy:     vqpySpeedingQuery,
		eva:      evaSpeeding,
		expected: "VQPy ~1.5x faster (EVA needs a lag self-join + per-row UDF wrapping for history)",
	})
}

// RunFig16 regenerates Figure 16: the red speeding car query, including
// the manually refined EVA variant.
func RunFig16(cfg Config) (*metrics.Report, error) {
	return runFigSQL(cfg, figSQLConfig{
		title:    "Figure 16: Red Speeding Car query, VQPy vs EVA vs EVA(refined) (virtual seconds)",
		vqpy:     vqpyRedSpeedingQuery,
		eva:      evaRedSpeeding,
		refined:  true,
		expected: "EVA 7.5-15x slower (no view pushdown, WHERE order as written); refined still 1.3-4.5x slower (no object-level reuse)",
	})
}
