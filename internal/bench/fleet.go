package bench

// Cross-camera fleet experiment (E18): batched cross-source inference
// measured against N independent daemons on the same correlated
// three-camera clip set. Both modes attach the same two-query workload
// per camera (a global-id red-car query feeding the cross-camera join,
// and a plain people query) and feed every frame:
//
//   - isolated: one fresh session + dynamic mux per camera, its own
//     identity registry, no batching — the N-silo deployment;
//   - fleet:    one session driving all cameras in lockstep through
//     the fleet engine, same-tick detector invocations coalesced into
//     batched device calls with amortized sub-linear cost.
//
// Per-source verdicts must be bit-identical between the modes at equal
// detector invocation counts — batching changes costs, never work or
// answers (the report errors otherwise, and the CI baselines gate pins
// it) — while the batched fleet's total virtual time lands strictly
// below the isolated sum. The merged fleet result must also surface at
// least one cross-camera entity (the generator plants a traveling red
// sedan), proving the global re-ID join end to end.

import (
	"fmt"
	"reflect"
	"time"

	"vqpy"

	"vqpy/internal/metrics"
)

// fleetCameras is the E18 camera count.
const fleetCameras = 3

// fleetClip generates the experiment's correlated camera clips.
func fleetClip(cfg Config) *vqpy.FleetClip {
	return vqpy.FleetIntersections(cfg.Seed, 24*cfg.Scale, fleetCameras).Generate()
}

// fleetRedCarQuery is the global-id workload query for one source.
func fleetRedCarQuery(reg *vqpy.GlobalRegistry, source string) *vqpy.Query {
	car := vqpy.GlobalVObj(vqpy.Car(), reg, source)
	return vqpy.NewQuery("FleetRedCar").
		Use("car", car).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropGlobalID))
}

// fleetPeopleQuery is the plain per-source workload query.
func fleetPeopleQuery() *vqpy.Query {
	return vqpy.NewQuery("People").
		Use("p", vqpy.Person()).
		Where(vqpy.P("p", vqpy.PropScore).Gt(0.5)).
		FrameOutput(vqpy.Sel("p", vqpy.PropTrackID))
}

// runFleetIsolated runs the workload as N independent daemons,
// returning per-source results in attach order (redcar, people), the
// summed virtual time, detector invocations and wall time.
func runFleetIsolated(cfg Config, clip *vqpy.FleetClip) (map[string][]*vqpy.Result, float64, int64, time.Duration, error) {
	out := make(map[string][]*vqpy.Result, len(clip.Videos))
	var virtual float64
	var det int64
	start := time.Now()
	for _, v := range clip.Videos {
		s := vqpy.NewSession(cfg.Seed)
		s.SetNoBurn(!cfg.Burn)
		if cfg.Burn {
			s.SetOffloadLatency(multiQueryOffloadNSPerMS)
		}
		reg := vqpy.NewGlobalRegistry(0)
		mux, err := s.Serve(v.FPS)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		for _, q := range []*vqpy.Query{fleetRedCarQuery(reg, v.Name), fleetPeopleQuery()} {
			if _, _, err := s.AttachQuery(mux, q, v); err != nil {
				return nil, 0, 0, 0, err
			}
		}
		for i := 0; i < v.NumFrames(); i++ {
			if _, err := mux.Feed(v.FrameAt(i)); err != nil {
				return nil, 0, 0, 0, err
			}
		}
		out[v.Name] = mux.Close()
		virtual += s.Clock().TotalMS()
		det += detectorInvocations(s.Clock())
	}
	return out, virtual, det, time.Since(start), nil
}

// fleetRun bundles the batched run's observables for the report.
type fleetRun struct {
	red, people map[string]*vqpy.Result
	merged      *vqpy.FleetMerged
	session     *vqpy.Session
	fleet       *vqpy.Fleet
	wall        time.Duration
}

// runFleetBatched runs the same workload through the batched fleet
// engine.
func runFleetBatched(cfg Config, clip *vqpy.FleetClip) (*fleetRun, error) {
	s := vqpy.NewSession(cfg.Seed)
	s.SetNoBurn(!cfg.Burn)
	if cfg.Burn {
		s.SetOffloadLatency(multiQueryOffloadNSPerMS)
	}
	start := time.Now()
	f, err := s.NewFleetFromClips(clip.Videos, true)
	if err != nil {
		return nil, err
	}
	redID, err := s.AttachFleetQuery(f, "FleetRedCar", func(source string) *vqpy.Query {
		return fleetRedCarQuery(f.Registry(), source)
	})
	if err != nil {
		return nil, err
	}
	peopleID, err := s.AttachFleetQuery(f, "People", func(string) *vqpy.Query { return fleetPeopleQuery() })
	if err != nil {
		return nil, err
	}
	if err := f.Run(); err != nil {
		return nil, err
	}
	run := &fleetRun{session: s, fleet: f, wall: time.Since(start)}
	if run.red, err = f.Snapshot(redID); err != nil {
		return nil, err
	}
	if run.people, err = f.Snapshot(peopleID); err != nil {
		return nil, err
	}
	if run.merged, err = f.Merged(redID); err != nil {
		return nil, err
	}
	// Finalize the lanes and release the session's interceptor hook;
	// registry and batch stats stay readable for the report.
	f.Close()
	return run, nil
}

// fleetVerdictsIdentical compares per-source verdicts between the
// isolated and batched runs: the plain query byte-identical, the
// global-id query identical up to the global id values themselves
// (assignment order is fleet-wide vs per-daemon).
func fleetVerdictsIdentical(clip *vqpy.FleetClip, isolated map[string][]*vqpy.Result, red, people map[string]*vqpy.Result) bool {
	for _, v := range clip.Videos {
		iso, okIso := isolated[v.Name]
		r, okR := red[v.Name]
		p, okP := people[v.Name]
		if !okIso || !okR || !okP || len(iso) != 2 {
			return false
		}
		if !reflect.DeepEqual(iso[1].Matched, p.Matched) || !reflect.DeepEqual(iso[1].Hits, p.Hits) {
			return false
		}
		if !reflect.DeepEqual(iso[0].Matched, r.Matched) || len(iso[0].Hits) != len(r.Hits) {
			return false
		}
		for i := range iso[0].Hits {
			a, b := iso[0].Hits[i], r.Hits[i]
			if a.FrameIdx != b.FrameIdx || len(a.Objects) != len(b.Objects) {
				return false
			}
			for j := range a.Objects {
				if a.Objects[j].TrackID != b.Objects[j].TrackID {
					return false
				}
			}
		}
	}
	return true
}

// RunFleet is the E18 experiment entry point used by vqbench.
func RunFleet(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	clip := fleetClip(cfg)

	isolated, isoVirtual, isoDet, isoWall, err := runFleetIsolated(cfg, clip)
	if err != nil {
		return nil, err
	}
	run, err := runFleetBatched(cfg, clip)
	if err != nil {
		return nil, err
	}
	fleetVirtual := run.session.Clock().TotalMS()
	fleetDet := detectorInvocations(run.session.Clock())

	rep := &metrics.Report{
		Title:  "E18: cross-camera fleet — batched cross-source inference vs N isolated daemons",
		Header: []string{"mode", "wall ms", "detect inv", "virtual ms"},
	}
	isoMS := float64(isoWall.Microseconds()) / 1000
	fleetMS := float64(run.wall.Microseconds()) / 1000
	rep.AddRow("isolated", fmt.Sprintf("%.1f", isoMS), fmt.Sprint(isoDet), fmt.Sprintf("%.0f", isoVirtual))
	rep.AddRow("fleet-batched", fmt.Sprintf("%.1f", fleetMS), fmt.Sprint(fleetDet), fmt.Sprintf("%.0f", fleetVirtual))

	identical := fleetVerdictsIdentical(clip, isolated, run.red, run.people)
	crosscam := run.merged.CrossCamera(2, 30)
	regStats := run.fleet.Registry().Stats()
	batchStats, _ := run.fleet.BatchStats()

	rep.SetMetric("fleet_identical", boolMetric(identical))
	rep.SetMetric("fleet_virtual_isolated", isoVirtual)
	rep.SetMetric("fleet_virtual_batched", fleetVirtual)
	if isoVirtual > 0 {
		rep.SetMetric("fleet_virtual_ratio", fleetVirtual/isoVirtual)
	}
	rep.SetMetric("fleet_detect_inv_isolated", float64(isoDet))
	rep.SetMetric("fleet_detect_inv_batched", float64(fleetDet))
	if isoDet > 0 {
		rep.SetMetric("fleet_detect_parity", float64(fleetDet)/float64(isoDet))
	}
	if isoMS > 0 {
		rep.SetMetric("fleet_wall_ratio", fleetMS/isoMS)
	}
	rep.SetMetric("fleet_crosscam_entities", float64(len(crosscam)))
	rep.SetMetric("fleet_batch_saved_ms", batchStats.SavedMS)

	rep.AddNote("cameras: %d; queries per camera: 2; per-source verdicts identical to isolated daemons: %v",
		fleetCameras, identical)
	rep.AddNote("global re-ID: %d entities, %d cross-camera (≥2 sources); %d matched entities on ≥2 cameras within 30s",
		regStats.Entities, regStats.CrossCamera, len(crosscam))
	rep.AddNote("batching: %d ticks, %d/%d invocations batched (max batch %d), %.0f virtual ms saved",
		batchStats.Ticks, batchStats.Batched, batchStats.Invocations, batchStats.MaxBatch, batchStats.SavedMS)
	rep.AddNote("expected shape: equal detector invocation counts, batched virtual (and wall, with burn) strictly below the isolated sum")
	if !cfg.Burn {
		rep.AddNote("burn disabled: wall times reflect engine overhead only, not model latency")
	}

	if !identical {
		return rep, fmt.Errorf("bench: fleet per-source verdicts diverge from isolated execution")
	}
	if fleetDet != isoDet {
		return rep, fmt.Errorf("bench: fleet detector invocations %d != isolated %d (batching must not change work)", fleetDet, isoDet)
	}
	if fleetVirtual >= isoVirtual {
		return rep, fmt.Errorf("bench: batched fleet virtual %.0f ms not below isolated sum %.0f ms", fleetVirtual, isoVirtual)
	}
	if len(crosscam) == 0 {
		return rep, fmt.Errorf("bench: no cross-camera entity in the merged fleet result")
	}
	return rep, nil
}
