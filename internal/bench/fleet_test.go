package bench

import "testing"

// TestFleetShape runs the E18 experiment at test scale and pins its
// contract: verdicts identical to isolated daemons, equal detector
// invocation counts, batched virtual time strictly below the isolated
// sum (RunFleet errors otherwise), a cross-camera entity present, and
// every gated metric exported for the baselines file.
func TestFleetShape(t *testing.T) {
	rep, err := RunFleet(Config{Seed: 13, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (isolated, fleet-batched)", len(rep.Rows))
	}
	for _, name := range []string{
		"fleet_identical", "fleet_virtual_isolated", "fleet_virtual_batched",
		"fleet_virtual_ratio", "fleet_detect_inv_isolated", "fleet_detect_inv_batched",
		"fleet_detect_parity", "fleet_wall_ratio", "fleet_crosscam_entities",
		"fleet_batch_saved_ms",
	} {
		if _, ok := rep.Metric(name); !ok {
			t.Errorf("metric %s missing from report", name)
		}
	}
	if v, _ := rep.Metric("fleet_identical"); v != 1 {
		t.Error("fleet verdicts not identical to isolated daemons")
	}
	if v, _ := rep.Metric("fleet_detect_parity"); v != 1 {
		t.Errorf("detector invocation parity %.3f, want exactly 1", v)
	}
	if ratio, _ := rep.Metric("fleet_virtual_ratio"); ratio >= 0.95 {
		t.Errorf("batched virtual ratio %.3f; expected batching to amortize detector cost", ratio)
	}
	if v, _ := rep.Metric("fleet_crosscam_entities"); v < 1 {
		t.Error("no cross-camera entity matched within the window")
	}
}
