package bench

// Multi-query serving experiment (E14): the §4.2 cross-query reuse
// claim measured at the wall clock. Eight queries over one CityFlow
// clip run twice — sequentially and on the parallel scheduler — with
// model latency in accelerator-offload mode so concurrent queries
// overlap their inference waits the way a real serving system does.
// The experiment reports per-mode wall time, aggregate queries/sec,
// the speedup ratio, and verifies that parallel results are identical
// to sequential ones (the scheduler's correctness contract).

import (
	"fmt"
	"reflect"
	"time"

	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/metrics"
	"vqpy/internal/video"
)

// multiQueryOffloadNSPerMS maps one virtual millisecond of model cost
// to 20µs of real accelerator-style waiting, keeping the whole
// experiment under a few wall-clock seconds while leaving enough
// signal for the speedup ratio to be stable.
const multiQueryOffloadNSPerMS = 20_000

// MultiQueryWorkload builds the 8-query serving mix: distinct detector
// and classifier footprints so queries have genuinely private work
// (the parallelizable part), plus two queries that ride entirely on
// another query's detector via the shared cache (the reuse part).
func MultiQueryWorkload() []vqpy.QueryNode {
	redCar := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "color"))

	vanType := core.NewVObj("VanVehicle", video.ClassCar).
		Detector("car_detector").
		StatelessModel("kind", "type_detect", true)
	vans := vqpy.NewQuery("Vans").
		Use("v", vanType).
		Where(vqpy.And(
			vqpy.P("v", vqpy.PropScore).Gt(0.5),
			vqpy.P("v", "kind").Eq("van"),
		))

	whiteType := core.NewVObj("WhiteVehicle", video.ClassCar).
		Detector("yolov8m").
		StatelessModel("color", "color_detect", true)
	whiteCars := vqpy.NewQuery("WhiteCars").
		Use("w", whiteType).
		Where(vqpy.And(
			vqpy.P("w", vqpy.PropScore).Gt(0.5),
			vqpy.P("w", "color").Eq("white"),
		))

	fastType := core.NewVObj("FastVehicle", video.ClassCar).Detector("yolov5s")
	speeding := vqpy.SpeedQuery("Speeding", "f", fastType, 12)

	people := vqpy.NewQuery("People").
		Use("p", vqpy.Person()).
		Where(vqpy.P("p", vqpy.PropScore).Gt(0.5)).
		FrameOutput(vqpy.Sel("p", vqpy.PropTrackID), vqpy.Sel("p", "feature"))

	plates := vqpy.NewQuery("Plates").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.7)).
		FrameOutput(vqpy.Sel("car", "plate"))

	balls := vqpy.NewQuery("Balls").
		Use("b", core.NewVObj("CheapBall", video.ClassBall).Detector("ball_person_cheap")).
		Where(vqpy.P("b", vqpy.PropScore).Gt(0.3))

	blueCars := vqpy.NewQuery("BlueCars").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("blue"),
		)).
		CountDistinct("car")

	// Heaviest first: the pool pulls jobs in order, so a
	// longest-processing-time ordering keeps the makespan near the
	// sum/workers bound instead of letting a heavy query straggle in
	// the last wave.
	return []vqpy.QueryNode{people, redCar, whiteCars, vans, speeding, balls, plates, blueCars}
}

// MultiQueryVideo generates the experiment's clip.
func MultiQueryVideo(cfg Config) *vqpy.Video {
	cfg = cfg.withDefaults()
	return vqpy.GenerateVideo(vqpy.DatasetCityFlow(cfg.Seed, 40*cfg.Scale))
}

// RunMultiQueryWith executes the workload at the given worker count in
// offload-latency mode and returns the results plus elapsed wall time.
func RunMultiQueryWith(cfg Config, workers int) ([]*vqpy.RunResult, time.Duration, error) {
	cfg = cfg.withDefaults()
	v := MultiQueryVideo(cfg)
	s := vqpy.NewSession(cfg.Seed)
	s.SetNoBurn(!cfg.Burn)
	if cfg.Burn {
		s.SetOffloadLatency(multiQueryOffloadNSPerMS)
	}
	nodes := MultiQueryWorkload()
	start := time.Now()
	results, err := s.ExecuteAll(nodes, v, workers)
	return results, time.Since(start), err
}

// RunMultiQuery is the E14 experiment entry point used by vqbench.
func RunMultiQuery(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	nQueries := len(MultiQueryWorkload())

	seq, seqWall, err := RunMultiQueryWith(cfg, 1)
	if err != nil {
		return nil, err
	}
	par, parWall, err := RunMultiQueryWith(cfg, workers)
	if err != nil {
		return nil, err
	}

	identical := len(seq) == len(par)
	for i := 0; identical && i < len(seq); i++ {
		identical = reflect.DeepEqual(seq[i].Matched, par[i].Matched) &&
			seq[i].MatchedCount() == par[i].MatchedCount()
		if sb, pb := seq[i].Basic, par[i].Basic; identical && sb != nil && pb != nil {
			identical = reflect.DeepEqual(sb.Hits, pb.Hits) &&
				sb.Count == pb.Count && reflect.DeepEqual(sb.TrackIDs, pb.TrackIDs)
		}
	}

	rep := &metrics.Report{
		Title:  "E14: multi-query serving — sequential vs parallel scheduler",
		Header: []string{"mode", "workers", "queries", "wall ms", "queries/sec", "speedup"},
	}
	seqMS := float64(seqWall.Microseconds()) / 1000
	parMS := float64(parWall.Microseconds()) / 1000
	speedup := 0.0
	if parMS > 0 {
		speedup = seqMS / parMS
	}
	rep.AddRow("sequential", "1", fmt.Sprint(nQueries), fmt.Sprintf("%.1f", seqMS),
		fmt.Sprintf("%.2f", float64(nQueries)/(seqMS/1000)), "1.0x")
	rep.AddRow("parallel", fmt.Sprint(workers), fmt.Sprint(nQueries), fmt.Sprintf("%.1f", parMS),
		fmt.Sprintf("%.2f", float64(nQueries)/(parMS/1000)), fmt.Sprintf("%.2fx", speedup))
	rep.SetMetric("multi_seq_wall_ms", seqMS)
	rep.SetMetric("multi_par_wall_ms", parMS)
	rep.SetMetric("multi_speedup", speedup)
	rep.SetMetric("multi_identical", boolMetric(identical))
	rep.AddNote("results identical across modes: %v", identical)
	rep.AddNote("expected shape: speedup approaches min(workers, private-work ratio); " +
		"reuse-only queries (Plates, BlueCars) ride RedCar's detector in both modes")
	if !identical {
		return rep, fmt.Errorf("bench: parallel results diverge from sequential")
	}
	if !cfg.Burn {
		rep.AddNote("burn disabled: wall times reflect engine overhead only, not model latency")
	}
	return rep, nil
}
