package bench

// Shared-scan multiplexing experiment (E15): the single-pass engine
// measured against the per-query strategies on the 8-query serving
// workload. Four modes over one clip:
//
//   - isolated:   each query executes alone (fresh cache per query) —
//                 N full scans, N detector passes, N trackers;
//   - runall-seq: the per-query scheduler at 1 worker with a shared
//                 cache — model invocations dedup, scans/tracks do not;
//   - runall-par: the same scheduler at cfg.Workers;
//   - muxscan:    ExecuteShared — one scan, one detect/track per
//                 (model, frame), results fanned out to every query.
//
// The report shows wall time plus the ledger's detector and tracker
// invocation counts, making the shared scan's work elimination visible
// as counts rather than inferred from timing; it also verifies that
// muxscan results are identical to the sequential scheduler's.

import (
	"fmt"
	"reflect"
	"time"

	"vqpy"

	"vqpy/internal/metrics"
	"vqpy/internal/models"
	"vqpy/internal/sim"
)

// detectorInvocations sums ledger invocation counts over accounts that
// belong to detector models.
func detectorInvocations(clock *sim.Clock) int64 {
	var total int64
	for name, n := range clock.InvocationTotals() {
		if prof, ok := models.ProfileOf(name); ok && prof.Task == models.TaskDetect {
			total += n
		}
	}
	return total
}

// RunMuxScanWith runs the workload in one mode ("isolated",
// "runall-seq", "runall-par", "muxscan") on a fresh session, returning
// the results, elapsed wall time and the session (for ledger reads).
func RunMuxScanWith(cfg Config, mode string, workers int) ([]*vqpy.RunResult, time.Duration, *vqpy.Session, error) {
	v := MultiQueryVideo(cfg)
	s := vqpy.NewSession(cfg.Seed)
	s.SetNoBurn(!cfg.Burn)
	if cfg.Burn {
		s.SetOffloadLatency(multiQueryOffloadNSPerMS)
	}
	nodes := MultiQueryWorkload()
	start := time.Now()
	var results []*vqpy.RunResult
	var err error
	switch mode {
	case "isolated":
		for _, node := range nodes {
			r, rErr := s.Execute(node, v)
			if rErr != nil {
				err = rErr
				break
			}
			results = append(results, r)
		}
	case "runall-seq":
		results, err = s.ExecuteAll(nodes, v, 1)
	case "runall-par":
		results, err = s.ExecuteAll(nodes, v, workers)
	case "muxscan":
		results, err = s.ExecuteShared(nodes, v)
	default:
		err = fmt.Errorf("bench: unknown muxscan mode %q", mode)
	}
	return results, time.Since(start), s, err
}

// sameAnswers compares the observable per-query results of two runs.
func sameAnswers(a, b []*vqpy.RunResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Matched, b[i].Matched) ||
			!reflect.DeepEqual(a[i].Events, b[i].Events) {
			return false
		}
		ab, bb := a[i].Basic, b[i].Basic
		if (ab == nil) != (bb == nil) {
			return false
		}
		if ab != nil {
			if !reflect.DeepEqual(ab.Hits, bb.Hits) || ab.Count != bb.Count ||
				!reflect.DeepEqual(ab.TrackIDs, bb.TrackIDs) {
				return false
			}
		}
	}
	return true
}

// RunMuxScan is the E15 experiment entry point used by vqbench.
func RunMuxScan(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	nQueries := len(MultiQueryWorkload())

	modes := []struct {
		name    string
		workers int
	}{
		{"isolated", 1},
		{"runall-seq", 1},
		{"runall-par", workers},
		{"muxscan", 1},
	}

	rep := &metrics.Report{
		Title:  "E15: shared-scan multiplexing — one pass for the 8-query workload",
		Header: []string{"mode", "workers", "wall ms", "detect inv", "tracker inv", "virtual ms"},
	}
	var ref []*vqpy.RunResult // runall-seq answers, the identity baseline
	var mux []*vqpy.RunResult
	wallMS := make(map[string]float64, len(modes))
	for _, m := range modes {
		results, wall, s, err := RunMuxScanWith(cfg, m.name, m.workers)
		if err != nil {
			return nil, err
		}
		switch m.name {
		case "runall-seq":
			ref = results
		case "muxscan":
			mux = results
		}
		clock := s.Clock()
		ms := float64(wall.Microseconds()) / 1000
		wallMS[m.name] = ms
		rep.AddRow(m.name, fmt.Sprint(m.workers),
			fmt.Sprintf("%.1f", ms),
			fmt.Sprint(detectorInvocations(clock)),
			fmt.Sprint(clock.Invocations("tracker")),
			fmt.Sprintf("%.0f", clock.TotalMS()))
		rep.SetMetric("muxscan_detect_inv_"+m.name, float64(detectorInvocations(clock)))
		rep.SetMetric("muxscan_tracker_inv_"+m.name, float64(clock.Invocations("tracker")))
	}
	if wallMS["runall-seq"] > 0 {
		rep.SetMetric("muxscan_wall_ratio_vs_seq", wallMS["muxscan"]/wallMS["runall-seq"])
	}

	identical := sameAnswers(ref, mux)
	rep.SetMetric("muxscan_identical", boolMetric(identical))
	rep.AddNote("queries: %d; muxscan results identical to runall-seq: %v", nQueries, identical)
	rep.AddNote("expected shape: detect invocations collapse isolated → runall (cache dedup) " +
		"and tracker invocations collapse only under muxscan (one tracker per scan group, not per query)")
	if !cfg.Burn {
		rep.AddNote("burn disabled: wall times reflect engine overhead only, not model latency")
	}
	if !identical {
		return rep, fmt.Errorf("bench: muxscan results diverge from sequential scheduler")
	}
	return rep, nil
}
