package bench

// Archival rescan experiment (E17): the tiered persistent result store
// measured over two passes of the 8-query workload on the same clip.
// Pass 1 runs against an empty store directory and archives every
// detector output, shared-scan track id and evaluated property value;
// pass 2 is a fresh session (the process-restart stand-in) over the
// warm store — its scan groups replay archived frames instead of
// running models, so its detector and tracker invocation counts must
// fall strictly below the first pass (the CI baselines gate enforces
// it), while both passes answer bit-identically to the per-query
// scheduler. This is the VStore-style scale lever: a query over
// archival video costs model work once per archive, not once per ask.

import (
	"fmt"
	"os"
	"time"

	"vqpy"

	"vqpy/internal/metrics"
)

// RunRescanPass executes the workload once through the shared-scan
// engine against the store directory in a fresh session, returning the
// results, elapsed wall time and the session (for ledger reads).
func RunRescanPass(cfg Config, dir string) ([]*vqpy.RunResult, time.Duration, *vqpy.Session, error) {
	st, err := vqpy.OpenStore(dir, cfg.Seed)
	if err != nil {
		return nil, 0, nil, err
	}
	defer st.Close()
	v := MultiQueryVideo(cfg)
	s := vqpy.NewSession(cfg.Seed)
	s.SetNoBurn(!cfg.Burn)
	if cfg.Burn {
		s.SetOffloadLatency(multiQueryOffloadNSPerMS)
	}
	start := time.Now()
	results, err := s.ExecuteShared(MultiQueryWorkload(), v, vqpy.WithStore(st))
	return results, time.Since(start), s, err
}

// RunRescan is the E17 experiment entry point used by vqbench.
func RunRescan(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp("", "vqpy-rescan-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Identity reference: the sequential per-query scheduler.
	ref, _, _, err := RunMuxScanWith(cfg, "runall-seq", 1)
	if err != nil {
		return nil, err
	}

	first, firstWall, firstSession, err := RunRescanPass(cfg, dir)
	if err != nil {
		return nil, err
	}
	second, secondWall, secondSession, err := RunRescanPass(cfg, dir)
	if err != nil {
		return nil, err
	}

	rep := &metrics.Report{
		Title:  "E17: archival rescan — cold pass vs warm store (fresh session each)",
		Header: []string{"pass", "wall ms", "detect inv", "tracker inv", "virtual ms"},
	}
	firstClock, secondClock := firstSession.Clock(), secondSession.Clock()
	firstDet, secondDet := detectorInvocations(firstClock), detectorInvocations(secondClock)
	firstTrk, secondTrk := firstClock.Invocations("tracker"), secondClock.Invocations("tracker")
	firstMS := float64(firstWall.Microseconds()) / 1000
	secondMS := float64(secondWall.Microseconds()) / 1000
	rep.AddRow("cold", fmt.Sprintf("%.1f", firstMS), fmt.Sprint(firstDet),
		fmt.Sprint(firstTrk), fmt.Sprintf("%.0f", firstClock.TotalMS()))
	rep.AddRow("warm", fmt.Sprintf("%.1f", secondMS), fmt.Sprint(secondDet),
		fmt.Sprint(secondTrk), fmt.Sprintf("%.0f", secondClock.TotalMS()))

	rep.SetMetric("rescan_detect_inv_first", float64(firstDet))
	rep.SetMetric("rescan_detect_inv_second", float64(secondDet))
	rep.SetMetric("rescan_tracker_inv_first", float64(firstTrk))
	rep.SetMetric("rescan_tracker_inv_second", float64(secondTrk))
	if firstDet > 0 {
		rep.SetMetric("rescan_detect_ratio", float64(secondDet)/float64(firstDet))
	}
	if firstTrk > 0 {
		rep.SetMetric("rescan_tracker_ratio", float64(secondTrk)/float64(firstTrk))
	}
	if firstClock.TotalMS() > 0 {
		rep.SetMetric("rescan_virtual_ratio", secondClock.TotalMS()/firstClock.TotalMS())
	}

	identical := sameAnswers(ref, first) && sameAnswers(ref, second)
	rep.SetMetric("rescan_identical", boolMetric(identical))
	rep.AddNote("queries: %d; both passes identical to the sequential scheduler: %v",
		len(MultiQueryWorkload()), identical)
	rep.AddNote("expected shape: the warm pass replays archived detections and track ids — " +
		"detector and tracker invocations drop to the canary-profiling floor")
	if !cfg.Burn {
		rep.AddNote("burn disabled: wall times reflect engine overhead only, not model latency")
	}
	if !identical {
		return rep, fmt.Errorf("bench: rescan results diverge from the sequential scheduler")
	}
	if secondDet >= firstDet {
		return rep, fmt.Errorf("bench: warm detector invocations %d not below cold %d", secondDet, firstDet)
	}
	if secondTrk >= firstTrk {
		return rep, fmt.Errorf("bench: warm tracker invocations %d not below cold %d", secondTrk, firstTrk)
	}
	return rep, nil
}
