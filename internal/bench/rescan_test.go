package bench

import "testing"

// TestRescanShape runs the E17 experiment at test scale and pins its
// contract: the warm pass's model invocation counts fall strictly below
// the cold pass (RunRescan errors otherwise) and every gated metric is
// exported for the baselines file.
func TestRescanShape(t *testing.T) {
	rep, err := RunRescan(Config{Seed: 13, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (cold, warm)", len(rep.Rows))
	}
	for _, name := range []string{
		"rescan_identical", "rescan_detect_inv_first", "rescan_detect_inv_second",
		"rescan_tracker_inv_first", "rescan_tracker_inv_second",
		"rescan_detect_ratio", "rescan_tracker_ratio", "rescan_virtual_ratio",
	} {
		if _, ok := rep.Metric(name); !ok {
			t.Errorf("metric %s missing from report", name)
		}
	}
	if v, _ := rep.Metric("rescan_identical"); v != 1 {
		t.Error("rescan passes not identical to the sequential scheduler")
	}
	if ratio, _ := rep.Metric("rescan_virtual_ratio"); ratio >= 0.5 {
		t.Errorf("warm pass virtual cost ratio %.3f; expected the archive to eliminate most model work", ratio)
	}
}
