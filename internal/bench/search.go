package bench

// Archive-search experiment (E20): the appearance index's index-then-
// verify query path measured against the full-rescan baseline on two
// archive lengths (1x and 3x). Per length the clip is ingested into a
// store, extracted into the index, and searched twice — once through
// the probe path, once through the full rescan with the identical
// resolved exemplar feature — in fresh sessions each. The gates are the
// paper's sub-linear claim: answers bit-identical on every pass, and
// the probe path's verified-frame count and virtual cost growing well
// below the 3x archive growth (the CI baseline caps both ratios at
// 1.4x and requires a pruned-frame ratio of at least 0.8 on the long
// archive), while the full rescan grows linearly.

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"vqpy"

	"vqpy/internal/metrics"
)

// searchBenchQuery is the archive-search workload: confidently
// detected cars with track ids and plates — stateless residual
// properties, so the query is index-verifiable.
func searchBenchQuery() *vqpy.Query {
	return vqpy.NewQuery("CarSearch").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.6)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate"))
}

// searchPass is one archive length's measurements.
type searchPass struct {
	frames    int
	newTracks int
	probe     *vqpy.SearchResult
	full      *vqpy.SearchResult
	identical bool
	probeWall time.Duration
	fullWall  time.Duration
}

// runSearchLength ingests, extracts and searches one archive of the
// given duration, probe path and full path both.
func runSearchLength(cfg Config, seconds float64) (*searchPass, error) {
	sdir, err := os.MkdirTemp("", "vqpy-search-store-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(sdir)
	xdir, err := os.MkdirTemp("", "vqpy-search-index-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(xdir)

	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(cfg.Seed, seconds*cfg.Scale))
	q := searchBenchQuery()

	// Ingest: one memo-free store-backed pass archives the scan records
	// the extractor and both search paths replay.
	st, err := vqpy.OpenStore(sdir, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if _, err := cfg.session().ExecuteShared([]vqpy.QueryNode{q}, v, vqpy.WithStore(st), vqpy.WithoutMemo()); err != nil {
		return nil, err
	}

	// Extract: a fresh session walks the archive into the index, one
	// embedding per track.
	x, err := vqpy.OpenIndex(xdir, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer x.Close()
	stats, err := cfg.session().IndexArchive(x, q, v, 0, vqpy.WithStore(st))
	if err != nil {
		return nil, err
	}
	if stats.To != len(v.Frames) {
		return nil, fmt.Errorf("bench: extraction covered [%d, %d) of %d frames", stats.From, stats.To, len(v.Frames))
	}
	ex, ok := x.Exemplar()
	if !ok {
		return nil, fmt.Errorf("bench: index holds no embeddable exemplar")
	}

	// Search: probe path by indexed track, full path with the identical
	// resolved feature, fresh sessions each so the clocks isolate the
	// search cost.
	probeStart := time.Now()
	probe, err := cfg.session().Search(v, vqpy.SearchSpec{Query: q, Track: ex.Track},
		vqpy.WithStore(st), vqpy.WithIndex(x))
	if err != nil {
		return nil, err
	}
	probeWall := time.Since(probeStart)
	if !probe.UsedIndex {
		return nil, fmt.Errorf("bench: probe search did not use the index")
	}
	fullStart := time.Now()
	full, err := cfg.session().Search(v, vqpy.SearchSpec{Query: q, Feature: probe.IR.Probe.FeatureRef},
		vqpy.WithStore(st))
	if err != nil {
		return nil, err
	}
	fullWall := time.Since(fullStart)

	identical := reflect.DeepEqual(full.Matched, probe.Matched) &&
		reflect.DeepEqual(full.Hits, probe.Hits) &&
		reflect.DeepEqual(full.MatchedTracks, probe.MatchedTracks) &&
		reflect.DeepEqual(full.Sims, probe.Sims)
	return &searchPass{
		frames: len(v.Frames), newTracks: stats.NewTracks,
		probe: probe, full: full, identical: identical,
		probeWall: probeWall, fullWall: fullWall,
	}, nil
}

// RunSearch is the E20 experiment entry point used by vqbench.
func RunSearch(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	base, err := runSearchLength(cfg, 40)
	if err != nil {
		return nil, err
	}
	long, err := runSearchLength(cfg, 120)
	if err != nil {
		return nil, err
	}

	rep := &metrics.Report{
		Title:  "E20: archive search — index-then-verify vs full rescan at 1x and 3x archive length",
		Header: []string{"archive", "frames", "path", "verified", "residual", "virtual ms", "wall ms"},
	}
	for _, row := range []struct {
		label string
		p     *searchPass
	}{{"1x", base}, {"3x", long}} {
		rep.AddRow(row.label, fmt.Sprint(row.p.frames), "probe",
			fmt.Sprint(row.p.probe.VerifiedFrames), fmt.Sprint(row.p.probe.ResidualFrames),
			fmt.Sprintf("%.1f", row.p.probe.VirtualMS),
			fmt.Sprintf("%.1f", float64(row.p.probeWall.Microseconds())/1000))
		rep.AddRow(row.label, fmt.Sprint(row.p.frames), "full",
			fmt.Sprint(row.p.full.VerifiedFrames), "0",
			fmt.Sprintf("%.1f", row.p.full.VirtualMS),
			fmt.Sprintf("%.1f", float64(row.p.fullWall.Microseconds())/1000))
	}

	identical := base.identical && long.identical
	rep.SetMetric("search_identical", boolMetric(identical))
	rep.SetMetric("search_frames_growth", float64(long.frames)/float64(base.frames))
	if base.probe.VerifiedFrames > 0 {
		rep.SetMetric("search_probe_verified_growth",
			float64(long.probe.VerifiedFrames)/float64(base.probe.VerifiedFrames))
	}
	if base.probe.VirtualMS > 0 {
		rep.SetMetric("search_probe_virtual_growth", long.probe.VirtualMS/base.probe.VirtualMS)
	}
	if base.full.VirtualMS > 0 {
		rep.SetMetric("search_full_virtual_growth", long.full.VirtualMS/base.full.VirtualMS)
	}
	rep.SetMetric("search_pruned_ratio",
		1-float64(long.probe.VerifiedFrames)/float64(long.frames))

	rep.AddNote("tracks indexed: %d (1x), %d (3x); probe answers identical to full rescan: %v",
		base.newTracks, long.newTracks, identical)
	rep.AddNote("expected shape: the archive grows 3x but the probe path's verified frames and " +
		"virtual cost track the exemplar's track span, not the archive — sub-linear search")
	if !cfg.Burn {
		rep.AddNote("burn disabled: wall times reflect engine overhead only, not model latency")
	}
	if !identical {
		return rep, fmt.Errorf("bench: probe search diverges from the full rescan")
	}
	if long.probe.VerifiedFrames >= long.frames {
		return rep, fmt.Errorf("bench: probe verified %d of %d frames on the long archive: no pruning",
			long.probe.VerifiedFrames, long.frames)
	}
	return rep, nil
}
