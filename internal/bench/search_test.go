package bench

import "testing"

// TestSearchShape runs the E20 experiment at test scale and pins its
// contract: probe answers identical to the full rescan (RunSearch
// errors otherwise), every gated metric exported, and the sub-linear
// shape — probe growth well below the 3x archive growth with a high
// pruned-frame ratio on the long archive.
func TestSearchShape(t *testing.T) {
	rep, err := RunSearch(Config{Seed: 13, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (probe/full at 1x and 3x)", len(rep.Rows))
	}
	for _, name := range []string{
		"search_identical", "search_frames_growth",
		"search_probe_verified_growth", "search_probe_virtual_growth",
		"search_full_virtual_growth", "search_pruned_ratio",
	} {
		if _, ok := rep.Metric(name); !ok {
			t.Errorf("metric %s missing from report", name)
		}
	}
	if v, _ := rep.Metric("search_identical"); v != 1 {
		t.Error("probe search not identical to the full rescan")
	}
	if g, _ := rep.Metric("search_frames_growth"); g < 2.5 {
		t.Errorf("archive frames growth %.2f, want ~3x", g)
	}
	if g, _ := rep.Metric("search_probe_verified_growth"); g > 1.4 {
		t.Errorf("probe verified-frame growth %.2f on a 3x archive: not sub-linear", g)
	}
	if g, _ := rep.Metric("search_probe_virtual_growth"); g > 1.4 {
		t.Errorf("probe virtual-cost growth %.2f on a 3x archive: not sub-linear", g)
	}
	if full, _ := rep.Metric("search_full_virtual_growth"); full < 2 {
		t.Errorf("full-rescan virtual growth %.2f, expected roughly linear in the archive", full)
	}
	if r, _ := rep.Metric("search_pruned_ratio"); r < 0.8 {
		t.Errorf("pruned-frame ratio %.2f on the long archive, want >= 0.8", r)
	}
}
