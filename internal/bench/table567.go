package bench

import (
	"fmt"

	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/geom"
	"vqpy/internal/metrics"
	"vqpy/internal/mllm"
	"vqpy/internal/video"
)

// The §5.3 comparison: six queries against VideoChat-7B/13B on a
// 10-minute Auburn clip (Q1-Q5) and a V-COCO still set (Q6).

// AuburnDurationSec and VCOCOImages are the §5.3 workload sizes at
// Scale=1.
const (
	AuburnDurationSec = 600
	VCOCOImages       = 1000
	clipSeconds       = 1.0 // VideoChat clip length forced by GPU memory
)

// mllmQuery describes one of the six queries: its natural-language
// statement, per-clip ground truth, and the VQPy implementation.
type mllmQuery struct {
	id        string
	statement string
	agg       bool
	// truthBool / truthCount compute per-clip ground truth.
	truthBool  func(c *video.Video) bool
	truthCount func(c *video.Video) float64
}

func auburnQueries() []mllmQuery {
	return []mllmQuery{
		{
			id: "Q1", statement: "Are there any people passing the crosswalk?",
			truthBool: func(c *video.Video) bool {
				return len(c.FramesMatching(func(o video.Object) bool {
					return o.Class == video.ClassPerson && o.OnCrosswalk && o.Walking
				})) > 0
			},
		},
		{
			id: "Q2", statement: "Are there any cars turning left at the crossing?",
			truthBool: func(c *video.Video) bool {
				return len(c.FramesMatching(func(o video.Object) bool {
					return o.IsVehicle() && o.Dir == geom.DirLeft
				})) > 0
			},
		},
		{
			id: "Q3", statement: "Are there any red cars in the video?",
			truthBool: func(c *video.Video) bool {
				return len(c.FramesMatching(func(o video.Object) bool {
					return o.Class == video.ClassCar && o.Color == video.ColorRed
				})) > 0
			},
		},
		{
			id: "Q4", statement: "Tell me the average number of cars on the crossing.",
			agg: true,
			truthCount: func(c *video.Video) float64 {
				total := 0
				for i := range c.Frames {
					for _, o := range c.Frames[i].Objects {
						if o.IsVehicle() && o.OnCrosswalk {
							total++
						}
					}
				}
				if len(c.Frames) == 0 {
					return 0
				}
				return float64(total) / float64(len(c.Frames))
			},
		},
		{
			id: "Q5", statement: "Tell me the average number of people that are walking.",
			agg: true,
			truthCount: func(c *video.Video) float64 {
				total := 0
				for i := range c.Frames {
					for _, o := range c.Frames[i].Objects {
						if o.Class == video.ClassPerson && o.Walking {
							total++
						}
					}
				}
				if len(c.Frames) == 0 {
					return 0
				}
				return float64(total) / float64(len(c.Frames))
			},
		},
	}
}

var q6Query = mllmQuery{
	id: "Q6", statement: "Is anyone hitting the ball in the image? Answer by yes or no.",
	truthBool: func(c *video.Video) bool {
		return len(c.FramesMatching(func(o video.Object) bool { return o.HittingBall })) > 0
	},
}

// onCrosswalkProp exposes the scene crosswalk test as a VObj property.
func onCrosswalkProp() *core.Property {
	return &core.Property{
		Name: "on_crosswalk", CostHintMS: 0.02,
		Compute: func(in core.PropInput) (any, error) {
			cw := in.Frame.Scene().Crosswalk
			return !in.Box.Intersect(cw).Empty(), nil
		},
	}
}

// vqpyAuburnQuery builds the VQPy implementation of one Auburn query.
func vqpyAuburnQuery(q mllmQuery) *core.Query {
	switch q.id {
	case "Q1":
		person := core.NewVObj("Person", video.ClassPerson).
			Detector("yolox").
			AddProperty(onCrosswalkProp()).
			AddProperty(vqpy.VelocityProp(1))
		return core.NewQuery("Q1").Use("p", person).
			Where(core.And(
				core.P("p", core.PropScore).Gt(0.5),
				core.P("p", "on_crosswalk").Eq(true),
				core.P("p", "velocity").Gt(0.8),
			)).
			FrameOutput(core.Sel("p", core.PropTrackID))
	case "Q2":
		car := core.NewVObj("Car", video.ClassCar).
			Detector("yolox").
			AddProperty(vqpy.DirectionProp(5))
		return core.NewQuery("Q2").Use("c", car).
			Where(core.And(
				core.P("c", core.PropScore).Gt(0.5),
				core.P("c", "direction").Eq("left"),
			)).
			FrameOutput(core.Sel("c", core.PropTrackID))
	case "Q3":
		car := core.NewVObj("Car", video.ClassCar).
			Detector("yolox").
			StatelessModel("color", "color_detect", true)
		return core.NewQuery("Q3").Use("c", car).
			Where(core.And(
				core.P("c", core.PropScore).Gt(0.5),
				core.P("c", "color").Eq("red"),
			)).
			FrameOutput(core.Sel("c", core.PropTrackID))
	case "Q4":
		car := core.NewVObj("Car", video.ClassCar).
			Detector("yolox").
			AddProperty(onCrosswalkProp())
		return core.NewQuery("Q4").Use("c", car).
			Where(core.And(
				core.P("c", core.PropScore).Gt(0.5),
				core.P("c", "on_crosswalk").Eq(true),
			)).
			FrameOutput(core.Sel("c", core.PropTrackID))
	case "Q5":
		person := core.NewVObj("Person", video.ClassPerson).
			Detector("yolox").
			AddProperty(vqpy.VelocityProp(1))
		return core.NewQuery("Q5").Use("p", person).
			Where(core.And(
				core.P("p", core.PropScore).Gt(0.5),
				core.P("p", "velocity").Gt(0.8),
			)).
			FrameOutput(core.Sel("p", core.PropTrackID))
	}
	panic("bench: unknown Auburn query " + q.id)
}

// vqpyQ6Query builds the UPT-based interaction query over V-COCO stills.
func vqpyQ6Query(opt bool) *core.Query {
	person := core.NewVObj("Person", video.ClassPerson)
	ball := core.NewVObj("Ball", video.ClassBall)
	if opt {
		// §5.3's optimization: a cheap detector to filter frames plus
		// a trained action-proposal filter before the expensive UPT.
		person.Detector("ball_person_cheap").RegisterFilter("action_proposal")
		ball.Detector("ball_person_cheap")
	} else {
		person.Detector("yolox")
		ball.Detector("yolox")
	}
	rel := vqpy.PersonBallInteraction(person, ball)
	return core.NewQuery("Q6").
		Use("p", person).Use("b", ball).
		UseRelation("person_ball", rel, "p", "b").
		Where(core.RP("person_ball", "interaction").Eq("hit")).
		FrameOutput(core.Sel("p", core.PropTrackID))
}

// clipsOf splits a video into fixed-length clips.
func clipsOf(v *video.Video, seconds float64) []*video.Video {
	n := int(seconds * float64(v.FPS))
	if n < 1 {
		n = 1
	}
	var out []*video.Video
	for i := 0; i < len(v.Frames); i += n {
		c := v.Clip(i, i+n)
		if len(c.Frames) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// mllmRun holds one model's per-query outcomes.
type mllmRun struct {
	perFrameMS map[string]float64
	preMS      float64
	confusion  map[string]*metrics.Confusion
	aggAvg     map[string]float64
	aggMax     map[string]float64
	preserved  map[string]float64 // fraction of parseable responses
}

func runVideoChat(cfg Config, profile mllm.Profile, auburn, vcoco *video.Video) *mllmRun {
	s := cfg.session()
	model := mllm.New(profile, cfg.Seed)
	out := &mllmRun{
		perFrameMS: map[string]float64{},
		confusion:  map[string]*metrics.Confusion{},
		aggAvg:     map[string]float64{},
		aggMax:     map[string]float64{},
		preserved:  map[string]float64{},
	}

	before := s.Clock().TotalMS()
	model.Precompute(s.Env(), auburn)
	out.preMS = (s.Clock().TotalMS() - before) / float64(len(auburn.Frames))

	clips := clipsOf(auburn, clipSeconds)
	for _, q := range auburnQueries() {
		before := s.Clock().TotalMS()
		conf := &metrics.Confusion{}
		var sum, maxV float64
		answered, asked := 0, 0
		for _, c := range clips {
			asked++
			if q.agg {
				truth := q.truthCount(c)
				resp := model.AnswerCount(s.Env(), c, q.statement, truth)
				if v, ok := mllm.ParseCountResponse(resp); ok {
					answered++
					sum += v
					if v > maxV {
						maxV = v
					}
				}
			} else {
				truth := q.truthBool(c)
				resp := model.AnswerBool(s.Env(), c, q.statement, truth)
				if v, ok := mllm.ParseBoolResponse(resp); ok {
					answered++
					conf.Add(v, truth)
				}
			}
		}
		out.perFrameMS[q.id] = (s.Clock().TotalMS() - before) / float64(len(auburn.Frames))
		out.confusion[q.id] = conf
		if answered > 0 {
			out.aggAvg[q.id] = sum / float64(answered)
		}
		out.aggMax[q.id] = maxV
		out.preserved[q.id] = float64(answered) / float64(asked)
	}

	// Q6: each still is its own clip.
	before = s.Clock().TotalMS()
	conf := &metrics.Confusion{}
	answered, asked := 0, 0
	for i := range vcoco.Frames {
		c := vcoco.Clip(i, i+1)
		asked++
		truth := q6Query.truthBool(c)
		resp := model.AnswerBool(s.Env(), c, q6Query.statement, truth)
		if v, ok := mllm.ParseBoolResponse(resp); ok {
			answered++
			conf.Add(v, truth)
		}
	}
	out.perFrameMS["Q6"] = (s.Clock().TotalMS() - before) / float64(len(vcoco.Frames))
	out.confusion["Q6"] = conf
	out.preserved["Q6"] = float64(answered) / float64(asked)
	return out
}

// vqpyRun holds VQPy's outcomes on the same workloads.
type vqpyRun struct {
	perFrameMS    map[string]float64
	confusion     map[string]*metrics.Confusion
	aggAvg        map[string]float64
	aggMax        map[string]float64
	optCombinedMS float64 // Q1-Q5 in a single execution, per frame
	optQ6MS       float64
	optQ6F1       float64
}

func runVQPyMLLM(cfg Config, auburn, vcoco *video.Video) (*vqpyRun, error) {
	out := &vqpyRun{
		perFrameMS: map[string]float64{},
		confusion:  map[string]*metrics.Confusion{},
		aggAvg:     map[string]float64{},
		aggMax:     map[string]float64{},
	}
	clips := clipsOf(auburn, clipSeconds)

	evalQuery := func(q mllmQuery, rr *vqpy.RunResult) {
		conf := &metrics.Confusion{}
		var sum, maxV float64
		// Per-frame matched-object counts for aggregations.
		counts := make(map[int]int)
		for _, hit := range rr.Basic.Hits {
			counts[hit.FrameIdx] = len(hit.Objects)
		}
		for _, c := range clips {
			start := c.Frames[0].Index
			end := start + len(c.Frames)
			if q.agg {
				total := 0
				for f := start; f < end; f++ {
					total += counts[f]
				}
				v := float64(total) / float64(len(c.Frames))
				sum += v
				if v > maxV {
					maxV = v
				}
			} else {
				pred := false
				for f := start; f < end; f++ {
					if f < len(rr.Matched) && rr.Matched[f] {
						pred = true
						break
					}
				}
				conf.Add(pred, q.truthBool(c))
			}
		}
		out.confusion[q.id] = conf
		if n := len(clips); n > 0 && q.agg {
			out.aggAvg[q.id] = sum / float64(n)
			out.aggMax[q.id] = maxV
		}
	}

	// Individual executions.
	for _, q := range auburnQueries() {
		s := cfg.session()
		before := s.Clock().TotalMS()
		rr, err := s.Execute(vqpyAuburnQuery(q), auburn, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
		if err != nil {
			return nil, err
		}
		out.perFrameMS[q.id] = (s.Clock().TotalMS() - before) / float64(len(auburn.Frames))
		evalQuery(q, rr)
	}

	// Q6 on stills (UPT).
	{
		s := cfg.session()
		before := s.Clock().TotalMS()
		rr, err := s.Execute(vqpyQ6Query(false), vcoco, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
		if err != nil {
			return nil, err
		}
		out.perFrameMS["Q6"] = (s.Clock().TotalMS() - before) / float64(len(vcoco.Frames))
		conf := &metrics.Confusion{}
		truth := vcoco.FramesMatching(func(o video.Object) bool { return o.HittingBall })
		for i, m := range rr.Matched {
			conf.Add(m, truth[i])
		}
		out.confusion["Q6"] = conf
	}

	// VQPy-Opt: Q1-Q5 in a single execution with query-level reuse.
	{
		s := cfg.session()
		cache := vqpy.NewSharedCache()
		before := s.Clock().TotalMS()
		for _, q := range auburnQueries() {
			if _, err := s.Execute(vqpyAuburnQuery(q), auburn,
				vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized(),
				vqpy.WithSharedCache(cache)); err != nil {
				return nil, err
			}
		}
		out.optCombinedMS = (s.Clock().TotalMS() - before) / float64(len(auburn.Frames))
	}

	// VQPy-Opt Q6: cheap detector + action-proposal filter before UPT.
	{
		s := cfg.session()
		before := s.Clock().TotalMS()
		rr, err := s.Execute(vqpyQ6Query(true), vcoco, vqpy.WithoutSpecialized())
		if err != nil {
			return nil, err
		}
		out.optQ6MS = (s.Clock().TotalMS() - before) / float64(len(vcoco.Frames))
		conf := &metrics.Confusion{}
		truth := vcoco.FramesMatching(func(o video.Object) bool { return o.HittingBall })
		for i, m := range rr.Matched {
			conf.Add(m, truth[i])
		}
		out.optQ6F1 = conf.F1()
	}
	return out, nil
}

// mllmWorkloads generates the §5.3 videos.
func mllmWorkloads(cfg Config) (auburn, vcoco *video.Video) {
	auburn = video.Auburn(cfg.Seed, AuburnDurationSec*cfg.Scale).Generate()
	images := int(VCOCOImages * cfg.Scale)
	if images < 20 {
		images = 20
	}
	vcoco = video.VCOCO(cfg.Seed+1, images).Generate()
	return auburn, vcoco
}

// RunTable5 regenerates Table 5: execution time (ms per frame) for
// VideoChat-7B/13B, VQPy, and VQPy-Opt.
func RunTable5(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	auburn, vcoco := mllmWorkloads(cfg)
	vc7 := runVideoChat(cfg, mllm.VideoChat7B(), auburn, vcoco)
	vc13 := runVideoChat(cfg, mllm.VideoChat13B(), auburn, vcoco)
	vq, err := runVQPyMLLM(cfg, auburn, vcoco)
	if err != nil {
		return nil, err
	}
	rep := &metrics.Report{
		Title:  "Table 5: execution time (ms per frame)",
		Header: []string{"no", "videochat_7b", "videochat_13b*", "vqpy", "vqpy_opt"},
	}
	rep.AddRow("Pre", metrics.Ms(vc7.preMS), metrics.Ms(vc13.preMS), "N/A", "N/A")
	for _, q := range auburnQueries() {
		opt := ""
		if q.id == "Q3" {
			opt = metrics.Ms(vq.optCombinedMS)
		}
		rep.AddRow(q.id, metrics.Ms(vc7.perFrameMS[q.id]), metrics.Ms(vc13.perFrameMS[q.id]),
			metrics.Ms(vq.perFrameMS[q.id]), opt)
	}
	rep.AddRow("Q6", metrics.Ms(vc7.perFrameMS["Q6"]), metrics.Ms(vc13.perFrameMS["Q6"]),
		metrics.Ms(vq.perFrameMS["Q6"]), metrics.Ms(vq.optQ6MS))
	combinedBaseline := 0.0
	for _, q := range auburnQueries() {
		combinedBaseline += vq.perFrameMS[q.id]
	}
	if vq.optCombinedMS > 0 {
		rep.AddNote("VQPy-Opt combines Q1-Q5 in one execution: %.1f ms/frame vs %.1f individually (%.1fx)",
			vq.optCombinedMS, combinedBaseline, combinedBaseline/vq.optCombinedMS)
	}
	if vq.optQ6MS > 0 {
		rep.AddNote("Q6 with cheap detector + action filter: %.1f vs %.1f ms/frame (%.1fx), F1 %.2f vs %.2f",
			vq.optQ6MS, vq.perFrameMS["Q6"], vq.perFrameMS["Q6"]/vq.optQ6MS,
			vq.optQ6F1, vq.confusion["Q6"].F1())
	}
	rep.AddNote("expected shape: VideoChat an order of magnitude slower than VQPy; 13B low-resource slowest; VQPy-Opt ~3.4x over individual runs")
	return rep, nil
}

// RunTable6 regenerates Table 6: F1 for the boolean queries.
func RunTable6(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	auburn, vcoco := mllmWorkloads(cfg)
	vc7 := runVideoChat(cfg, mllm.VideoChat7B(), auburn, vcoco)
	vc13 := runVideoChat(cfg, mllm.VideoChat13B(), auburn, vcoco)
	vq, err := runVQPyMLLM(cfg, auburn, vcoco)
	if err != nil {
		return nil, err
	}
	rep := &metrics.Report{
		Title:  "Table 6: F1 score for boolean queries",
		Header: []string{"no", "pr_positive", "videochat_7b", "videochat_13b*", "vqpy"},
	}
	for _, id := range []string{"Q1", "Q2", "Q3", "Q6"} {
		rep.AddRow(id,
			fmt.Sprintf("%.1f%%", vq.confusion[id].PositiveRate()*100),
			fmt.Sprintf("%.3f", vc7.confusion[id].F1()),
			fmt.Sprintf("%.3f", vc13.confusion[id].F1()),
			fmt.Sprintf("%.3f", vq.confusion[id].F1()))
	}
	rep.AddNote("expected shape: VQPy F1 far above both VideoChat variants (paper: 0.82 avg vs 0.40-0.43)")
	return rep, nil
}

// RunTable7 regenerates Table 7: aggregation query responses.
func RunTable7(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	auburn, vcoco := mllmWorkloads(cfg)
	vc7 := runVideoChat(cfg, mllm.VideoChat7B(), auburn, vcoco)
	vc13 := runVideoChat(cfg, mllm.VideoChat13B(), auburn, vcoco)
	vq, err := runVQPyMLLM(cfg, auburn, vcoco)
	if err != nil {
		return nil, err
	}
	rep := &metrics.Report{
		Title:  "Table 7: aggregation queries (average / maximum response)",
		Header: []string{"model", "q4_avg", "q4_max", "q5_avg", "q5_max", "q4_preserved", "q5_preserved"},
	}
	rep.AddRow("VideoChat-7B",
		f2(vc7.aggAvg["Q4"]), f2(vc7.aggMax["Q4"]), f2(vc7.aggAvg["Q5"]), f2(vc7.aggMax["Q5"]),
		pct(vc7.preserved["Q4"]), pct(vc7.preserved["Q5"]))
	rep.AddRow("VideoChat-13B*",
		f2(vc13.aggAvg["Q4"]), f2(vc13.aggMax["Q4"]), f2(vc13.aggAvg["Q5"]), f2(vc13.aggMax["Q5"]),
		pct(vc13.preserved["Q4"]), pct(vc13.preserved["Q5"]))
	rep.AddRow("VQPy",
		f2(vq.aggAvg["Q4"]), f2(vq.aggMax["Q4"]), f2(vq.aggAvg["Q5"]), f2(vq.aggMax["Q5"]),
		"100%", "100%")
	// Ground truth row for reference (the paper reports it in prose).
	truthAvg := func(q mllmQuery) float64 { return q.truthCount(auburn) }
	qs := auburnQueries()
	rep.AddRow("(ground truth)", f2(truthAvg(qs[3])), "-", f2(truthAvg(qs[4])), "-", "-", "-")
	rep.AddNote("expected shape: VideoChat averages exceed the true maximum with huge outliers; VQPy close to truth")
	return rep, nil
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
