package bench

// Text-query experiment (E23): the language frontend and the lazy
// open-vocabulary verifier (DESIGN.md §13). Two claims gate: the vql
// compiler is exact — every golden sentence compiles onto an IR
// bit-identical to its hand-built query (same chosen plan, same
// open-vocabulary remainder) — and the lazy cascade is cheap without
// being wrong: on a selective workload the verifier is consulted on
// under 10% of the processed frames while the verdicts stay
// bit-identical to the ask-on-every-frame baseline (which holds by
// construction: the verifier is deterministic per frame and question,
// and cascade-rejected frames are false under the conjunction whatever
// it would answer).

import (
	"fmt"
	"slices"

	"vqpy"

	"vqpy/internal/metrics"
)

// textGolden is one golden text query: the sentence, its canonical
// form, and the hand-built cascade the compiler must reproduce.
type textGolden struct {
	text      string
	canonical string
	// hand builds the closed-vocabulary cascade query by hand, under
	// the compiled name ("Text(<canonical>)").
	hand func(name string) *vqpy.Query
	// concepts / minSeconds are the expected open-vocabulary remainder
	// and duration clause.
	concepts   []string
	minSeconds float64
}

// scoreOf is the implicit confidence floor every text query carries.
func scoreOf(inst string) vqpy.Pred {
	return vqpy.P(inst, vqpy.PropScore).Gt(0.5)
}

// textGoldens is the golden suite: each sentence paired with the exact
// query a user would have written by hand against the library.
func textGoldens() []textGolden {
	return []textGolden{
		{
			text: "red car", canonical: "red car",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("car", vqpy.Car()).
					Where(vqpy.And(scoreOf("car"), vqpy.P("car", "color").Eq("red")))
			},
		},
		{
			text: "a red car that is parked near the crosswalk", canonical: "red car stopped on crosswalk",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("car", vqpy.Car()).
					Where(vqpy.And(scoreOf("car"), vqpy.P("car", "color").Eq("red")))
			},
			concepts: []string{"stopped", "on crosswalk"},
		},
		{
			text: "white suv car", canonical: "white suv car",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("car", vqpy.Car()).
					Where(vqpy.And(scoreOf("car"),
						vqpy.P("car", "color").Eq("white"), vqpy.P("car", "kind").Eq("suv")))
			},
		},
		{
			text: "cars faster than 12", canonical: "car faster than 12",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("car", vqpy.Car()).
					Where(vqpy.And(scoreOf("car"), vqpy.P("car", "velocity").Gt(12)))
			},
		},
		{
			text: "truck stopped near crosswalk", canonical: "truck stopped on crosswalk",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("truck", vqpy.Truck()).
					Where(vqpy.And(scoreOf("truck")))
			},
			concepts: []string{"stopped", "on crosswalk"},
		},
		{
			text: "people walking at night", canonical: "person walking at night",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("person", vqpy.Person()).
					Where(vqpy.And(scoreOf("person")))
			},
			concepts: []string{"walking", "at night"},
		},
		{
			text: "person carrying ball", canonical: "person with ball",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("person", vqpy.Person()).
					Where(vqpy.And(scoreOf("person")))
			},
			concepts: []string{"with ball"},
		},
		{
			text: "blue car slower than 2 for 3 seconds", canonical: "blue car slower than 2 for 3 seconds",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("car", vqpy.Car()).
					Where(vqpy.And(scoreOf("car"),
						vqpy.P("car", "color").Eq("blue"), vqpy.P("car", "velocity").Lt(2)))
			},
			minSeconds: 3,
		},
		{
			text: "the suspicious person", canonical: "person suspicious",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("person", vqpy.Person()).
					Where(vqpy.And(scoreOf("person")))
			},
			concepts: []string{"suspicious"},
		},
		{
			text: "bus stopped", canonical: "bus stopped",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("bus", vqpy.Bus()).
					Where(vqpy.And(scoreOf("bus")))
			},
			concepts: []string{"stopped"},
		},
		{
			text: "person hitting ball for 2 seconds", canonical: "person hitting ball for 2 seconds",
			hand: func(name string) *vqpy.Query {
				return vqpy.NewQuery(name).Use("person", vqpy.Person()).
					Where(vqpy.And(scoreOf("person")))
			},
			concepts:   []string{"hitting ball"},
			minSeconds: 2,
		},
	}
}

// textParityWorkload is the selective lazy-vs-eager workload: queries
// whose cheap cascade (color, kind, velocity — all closed-vocabulary)
// rules out most frames, so the lazy verifier budget stays under the
// 10% gate across seeds. Class-only cascades (e.g. bare person
// queries) are deliberately absent: their undecided share is whatever
// fraction of frames the scenario populates, not a planner property.
var textParityWorkload = []string{
	"red car faster than 12 stopped",
	"red suv car faster than 12 stopped",
	"red car faster than 15 stopped",
	"white van car stopped on crosswalk",
	"blue hatchback car stopped",
}

// RunText is the E23 experiment entry point used by vqbench.
func RunText(cfg Config) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(cfg.Seed, 60*cfg.Scale))

	rep := &metrics.Report{
		Title:  "E23: text queries — language frontend with a lazy open-vocabulary verifier",
		Header: []string{"query", "frames", "undecided", "vlm calls", "ratio", "matched", "lazy ms", "eager ms"},
	}

	// Golden identity: each sentence must choose the exact plan of its
	// hand-built query and carry the expected verifier remainder.
	goldens := textGoldens()
	identical := 0
	for _, g := range goldens {
		tq, err := vqpy.CompileText(g.text)
		if err != nil {
			return rep, fmt.Errorf("bench: golden %q failed to compile: %w", g.text, err)
		}
		wantName := "Text(" + g.canonical + ")"
		if tq.Query.Name() != wantName {
			rep.AddNote("golden %q: compiled name %q, want %q", g.text, tq.Query.Name(), wantName)
			continue
		}
		compiled, _, err := cfg.session().Explain(tq.Query, v)
		if err != nil {
			return rep, fmt.Errorf("bench: golden %q failed to plan: %w", g.text, err)
		}
		hand, _, err := cfg.session().Explain(g.hand(wantName), v)
		if err != nil {
			return rep, fmt.Errorf("bench: golden %q hand query failed to plan: %w", g.text, err)
		}
		if compiled.String() != hand.String() {
			rep.AddNote("golden %q: plan diverged from hand-built\n  compiled: %s\n  hand:     %s",
				g.text, compiled.String(), hand.String())
			continue
		}
		if !slices.Equal(tq.Concepts, g.concepts) || tq.MinSeconds != g.minSeconds {
			rep.AddNote("golden %q: remainder %v/%gs, want %v/%gs",
				g.text, tq.Concepts, tq.MinSeconds, g.concepts, g.minSeconds)
			continue
		}
		identical++
	}

	// Lazy vs eager: identical verdicts, a fraction of the verifier
	// calls. Fresh sessions per run keep the cost accounting isolated;
	// the verifier's answers depend only on (seed, frame, question), so
	// they agree across sessions by construction.
	totalFrames, totalCalls := 0, 0
	lazyMS, eagerMS := 0.0, 0.0
	parity := true
	for _, text := range textParityWorkload {
		lazy, err := cfg.session().Text(text, v)
		if err != nil {
			return rep, fmt.Errorf("bench: lazy %q: %w", text, err)
		}
		eager, err := cfg.session().Text(text, v, vqpy.WithEagerVerify())
		if err != nil {
			return rep, fmt.Errorf("bench: eager %q: %w", text, err)
		}
		if !slices.Equal(lazy.Matched, eager.Matched) {
			parity = false
			rep.AddNote("parity broken on %q: lazy and eager verdicts diverge", text)
		}
		totalFrames += lazy.Frames
		totalCalls += lazy.VLMCalls
		lazyMS += lazy.VirtualMS
		eagerMS += eager.VirtualMS
		ratio := 0.0
		if lazy.Frames > 0 {
			ratio = float64(lazy.VLMCalls) / float64(lazy.Frames)
		}
		rep.AddRow(text, fmt.Sprint(lazy.Frames), fmt.Sprint(lazy.CascadeMatched),
			fmt.Sprint(lazy.VLMCalls), fmt.Sprintf("%.3f", ratio),
			fmt.Sprint(lazy.MatchedCount()),
			fmt.Sprintf("%.1f", lazy.VirtualMS), fmt.Sprintf("%.1f", eager.VirtualMS))
	}
	ratio := 1.0
	if totalFrames > 0 {
		ratio = float64(totalCalls) / float64(totalFrames)
	}

	rep.SetMetric("text_golden_queries", float64(len(goldens)))
	rep.SetMetric("text_golden_identical", boolMetric(identical == len(goldens)))
	rep.SetMetric("text_parity", boolMetric(parity))
	rep.SetMetric("text_vlm_frame_ratio", ratio)
	rep.SetMetric("text_lazy_cost_ratio", lazyMS/maxFloat(eagerMS, 1e-9))

	rep.AddNote("%d/%d golden sentences compiled bit-identical to their hand-built plans",
		identical, len(goldens))
	rep.AddNote("lazy verifier budget: %d calls over %d frames (%.1f%%), %.2fx cheaper than eager",
		totalCalls, totalFrames, 100*ratio, eagerMS/maxFloat(lazyMS, 1e-9))
	rep.AddNote("expected shape: the cheap cascade decides >90%% of frames, so the " +
		"high-cost verifier prices like a rare final check, not a per-frame model")

	if len(goldens) < 10 {
		return rep, fmt.Errorf("bench: only %d golden queries, want >= 10", len(goldens))
	}
	if identical != len(goldens) {
		return rep, fmt.Errorf("bench: %d/%d golden sentences diverged from their hand-built plans",
			len(goldens)-identical, len(goldens))
	}
	if !parity {
		return rep, fmt.Errorf("bench: lazy and eager verdicts diverged")
	}
	if ratio > 0.1 {
		return rep, fmt.Errorf("bench: lazy verifier ran on %.1f%% of frames, above the 10%% gate", 100*ratio)
	}
	return rep, nil
}
