package config

// vqserve's typed configuration: the daemon knobs that used to be raw
// flag calls in cmd/vqserve, plus the multi-tenant QoS section. The
// same struct is what a future fleet coordinator ships to its worker
// daemons, so everything here is plain data with JSON names.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Tenant is one named QoS principal of the serving daemon. Tenants
// split each source's virtual-time admission budget in proportion to
// their Share, and rate-limit their HTTP requests through a token
// bucket of Burst tokens refilled at RatePerSec.
type Tenant struct {
	// Name identifies the tenant on the wire (the X-Tenant header or
	// the "tenant" body field).
	Name string `json:"name"`
	// Share is the tenant's weight: its slice of a source's admission
	// budget is BudgetMS * Share / sum(all shares). Must be > 0.
	Share float64 `json:"share"`
	// RatePerSec refills the tenant's HTTP token bucket; 0 disables
	// rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket capacity — how many requests may arrive
	// back-to-back before the rate applies. 0 with a non-zero
	// RatePerSec means a bucket of 1.
	Burst int `json:"burst,omitempty"`
}

// TenantList carries the tenant section. As flag/env text it encodes
// compactly as "name:share[:rate[:burst]]" entries joined by commas
// (e.g. -tenants gold:3:50:50,free:1:1:2); in the JSON config file it
// is a normal array of objects.
type TenantList []Tenant

// MarshalText renders the compact flag/env encoding.
func (tl TenantList) MarshalText() ([]byte, error) {
	parts := make([]string, len(tl))
	for i, t := range tl {
		parts[i] = fmt.Sprintf("%s:%s:%s:%d", t.Name,
			strconv.FormatFloat(t.Share, 'g', -1, 64),
			strconv.FormatFloat(t.RatePerSec, 'g', -1, 64), t.Burst)
	}
	return []byte(strings.Join(parts, ",")), nil
}

// UnmarshalText parses the compact flag/env encoding. An empty string
// clears the list (back to single-tenant mode).
func (tl *TenantList) UnmarshalText(text []byte) error {
	raw := strings.TrimSpace(string(text))
	if raw == "" {
		*tl = nil
		return nil
	}
	var out TenantList
	for _, entry := range strings.Split(raw, ",") {
		fields := strings.Split(strings.TrimSpace(entry), ":")
		if len(fields) < 2 || len(fields) > 4 {
			return fmt.Errorf("tenant %q: want name:share[:rate[:burst]]", entry)
		}
		t := Tenant{Name: strings.TrimSpace(fields[0])}
		var err error
		if t.Share, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("tenant %q: bad share: %v", entry, err)
		}
		if len(fields) > 2 {
			if t.RatePerSec, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return fmt.Errorf("tenant %q: bad rate: %v", entry, err)
			}
		}
		if len(fields) > 3 {
			if t.Burst, err = strconv.Atoi(fields[3]); err != nil {
				return fmt.Errorf("tenant %q: bad burst: %v", entry, err)
			}
		}
		out = append(out, t)
	}
	*tl = out
	return nil
}

// UnmarshalJSON accepts either the natural array-of-objects form (the
// config file) or a string in the compact text encoding — without
// this, encoding/json would route every non-string value to an error
// because the type implements encoding.TextUnmarshaler.
func (tl *TenantList) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "\"") {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		return tl.UnmarshalText([]byte(s))
	}
	var raw []Tenant
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*tl = TenantList(raw)
	return nil
}

// MarshalJSON renders the natural array form.
func (tl TenantList) MarshalJSON() ([]byte, error) {
	return json.Marshal([]Tenant(tl))
}

// Config is vqserve's full configuration. Defaults come from
// DefaultConfig; LoadServe applies the file/env/flag chain on top.
type Config struct {
	// Addr is the HTTP listen address.
	Addr string `flag:"addr" json:"addr" usage:"HTTP listen address"`
	// Sources names the scenario sources to register, comma-separated.
	Sources string `flag:"sources" json:"sources" usage:"comma-separated scenario sources to register"`
	// Seconds is the clip length per source.
	Seconds float64 `flag:"seconds" json:"seconds" usage:"clip length per source in seconds"`
	// Seed drives scenario generation and the model zoo.
	Seed uint64 `flag:"seed" json:"seed" usage:"scenario and model seed"`
	// Speed multiplies the frame ticker rate.
	Speed float64 `flag:"speed" json:"speed" usage:"frame ticker speed multiplier (x capture rate)"`
	// BudgetMS is the per-frame virtual-time admission budget per
	// source (0 admits everything). With tenants configured it is split
	// between them by share.
	BudgetMS float64 `flag:"budget-ms" json:"budget_ms" usage:"per-frame virtual-time admission budget per source (0 = admit all)"`
	// Loop wraps clips endlessly.
	Loop bool `flag:"loop" json:"loop" usage:"wrap clips endlessly (live-camera stand-in)"`
	// StoreDir enables the persistent result store.
	StoreDir string `flag:"store" json:"store" usage:"persistent result store directory (empty = no persistence)"`
	// IndexDir enables the appearance index (requires StoreDir).
	IndexDir string `flag:"index" json:"index" usage:"appearance index directory enabling archive search (requires -store)"`
	// Attach lists standing source:query pairs, comma-separated.
	Attach string `flag:"attach" json:"attach" usage:"comma-separated source:query pairs to attach before frames start flowing"`
	// FleetCams switches the daemon to fleet mode when > 0.
	FleetCams int `flag:"fleet" json:"fleet" usage:"fleet mode: drive N correlated cameras in lockstep with batched cross-source inference (replaces -sources)"`
	// Chaos enables the canned deterministic fault schedule.
	Chaos bool `flag:"chaos" json:"chaos" usage:"enable the deterministic fault injector with a canned schedule (DESIGN.md §9)"`
	// ChaosSeed seeds the fault schedule.
	ChaosSeed uint64 `flag:"chaos-seed" json:"chaos_seed" usage:"fault schedule seed (with -chaos)"`
	// Tenants is the multi-tenant QoS section; empty runs the daemon in
	// single-tenant mode (one implicit tenant, the whole budget, no
	// rate limits — the pre-tenant behaviour).
	Tenants TenantList `flag:"tenants" json:"tenants,omitempty" usage:"named QoS tenants as name:share[:rate[:burst]],... (empty = single-tenant)"`
}

// DefaultConfig is the daemon's built-in configuration — the bottom of
// the precedence chain.
func DefaultConfig() Config {
	return Config{
		Addr:      ":8791",
		Sources:   "cityflow",
		Seconds:   60,
		Seed:      42,
		Speed:     1,
		ChaosSeed: 1,
	}
}

// SourceList splits Sources into trimmed, non-empty names.
func (c Config) SourceList() []string {
	var out []string
	for _, name := range strings.Split(c.Sources, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// Validate checks the loaded configuration and returns every problem
// found, joined — not just the first — so one failed start names all
// the bad knobs.
func (c *Config) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("config: "+format, args...))
	}
	if c.Speed <= 0 {
		bad("speed must be > 0 (got %g)", c.Speed)
	}
	if c.Seconds <= 0 {
		bad("seconds must be > 0 (got %g)", c.Seconds)
	}
	if c.BudgetMS < 0 {
		bad("budget-ms must be >= 0 (got %g)", c.BudgetMS)
	}
	if c.FleetCams < 0 {
		bad("fleet must be >= 0 (got %d)", c.FleetCams)
	}
	if c.IndexDir != "" && c.StoreDir == "" {
		bad("index requires store (the index accelerates archive search, it is not a source of truth)")
	}
	if c.FleetCams <= 0 && len(c.SourceList()) == 0 {
		bad("no sources registered (set sources or fleet)")
	}
	for _, pair := range strings.Split(c.Attach, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		if _, _, ok := strings.Cut(pair, ":"); !ok {
			bad("attach %q: want source:query (or fleet:query)", pair)
		}
	}
	seen := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		switch {
		case t.Name == "":
			bad("tenant with empty name")
		case seen[t.Name]:
			bad("tenant %q declared twice", t.Name)
		}
		seen[t.Name] = true
		if t.Share <= 0 {
			bad("tenant %q: share must be > 0 (got %g)", t.Name, t.Share)
		}
		if t.RatePerSec < 0 {
			bad("tenant %q: rate_per_sec must be >= 0 (got %g)", t.Name, t.RatePerSec)
		}
		if t.Burst < 0 {
			bad("tenant %q: burst must be >= 0 (got %d)", t.Name, t.Burst)
		}
	}
	return errors.Join(errs...)
}

// LoadServe loads vqserve's configuration: DefaultConfig, then the
// standard file < env ($VQSERVE_*) < flag chain over args.
func LoadServe(args []string) (Config, *Result, error) {
	cfg := DefaultConfig()
	res, err := Load(&cfg, Options{Name: "vqserve", EnvPrefix: "VQSERVE", Args: args})
	return cfg, res, err
}
