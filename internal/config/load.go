// Package config is the typed configuration layer for the
// repository's commands (vqserve, vqbench, vqrun): one struct per
// command, its fields bound by `flag:` struct tags, loaded in a fixed
// precedence order
//
//	defaults < config file (JSON) < environment < flags
//
// with per-field provenance tracking, accumulated validation errors
// and SIGHUP-driven hot reload (Watch). The pattern follows the
// struct-first env/flag loaders (jpillora/opts, nicolasmmb/envx) from
// the related-work snippets, reimplemented on the standard library so
// the module stays dependency-free.
//
// A field declared as
//
//	BudgetMS float64 `flag:"budget-ms" json:"budget_ms" usage:"..."`
//
// becomes the -budget-ms flag, the $PREFIX_BUDGET_MS environment
// variable (the env key is the flag name uppercased, dashes to
// underscores, unless an `env:` tag overrides it) and the "budget_ms"
// config-file key. Every loader also accepts -config FILE (or
// $PREFIX_CONFIG) naming a JSON file whose keys are the `json:` tags —
// the one knob that cannot live in the file itself.
package config

import (
	"bytes"
	"encoding"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"strconv"
	"strings"
)

// Source says where a field's loaded value came from — the last layer
// of the precedence chain that set it.
type Source int

// The precedence layers, in ascending override order.
const (
	SourceDefault Source = iota
	SourceFile
	SourceEnv
	SourceFlag
)

// String names the layer ("default", "file", "env", "flag").
func (s Source) String() string {
	switch s {
	case SourceFile:
		return "file"
	case SourceEnv:
		return "env"
	case SourceFlag:
		return "flag"
	}
	return "default"
}

// Options tunes one Load call.
type Options struct {
	// Name is the command name, used in flag-parse errors and usage
	// output (e.g. "vqserve").
	Name string
	// EnvPrefix is the environment namespace without the trailing
	// underscore (e.g. "VQSERVE" binds $VQSERVE_ADDR and
	// $VQSERVE_CONFIG). Empty disables the env and file-by-env layers.
	EnvPrefix string
	// Args are the command-line arguments after the program name
	// (os.Args[1:]).
	Args []string
	// Usage overrides the `usage:` tag per flag name — for help text
	// that must be computed at run time (e.g. vqbench's experiment
	// vocabulary).
	Usage map[string]string
	// LookupEnv replaces os.LookupEnv (tests inject a fake
	// environment). Nil uses the real environment.
	LookupEnv func(string) (string, bool)
	// Output receives flag usage/error text; nil means os.Stderr.
	Output io.Writer
}

// Result reports what a Load actually did: which file it read and
// where each field's value came from.
type Result struct {
	// File is the config file that was loaded, if any.
	File string

	sources map[string]Source
}

// Source returns the provenance of the named flag's field.
func (r *Result) Source(flagName string) Source { return r.sources[flagName] }

// Explicit reports whether the named flag's field was set by any layer
// above the defaults (file, env or flag) — the replacement for
// flag.Visit-based "was it passed?" checks.
func (r *Result) Explicit(flagName string) bool { return r.sources[flagName] > SourceDefault }

// Validator is implemented by config structs that check themselves
// after loading; the returned error (usually an errors.Join of every
// problem found) fails Load.
type Validator interface {
	Validate() error
}

// binding is one struct field bound to a flag name and env key.
type binding struct {
	name  string // flag name
	env   string // env key without the prefix
	usage string
	v     reflect.Value
}

// bindings reflects over dst's struct fields with `flag:` tags.
func bindings(dst any) ([]binding, error) {
	rv := reflect.ValueOf(dst)
	if rv.Kind() != reflect.Pointer || rv.IsNil() || rv.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("config: Load wants a non-nil pointer to struct, got %T", dst)
	}
	elem := rv.Elem()
	t := elem.Type()
	var out []binding
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		name, ok := f.Tag.Lookup("flag")
		if !ok || name == "" || name == "-" || !f.IsExported() {
			continue
		}
		if name == "config" {
			return nil, fmt.Errorf("config: field %s: the flag name %q is reserved for the config-file path", f.Name, name)
		}
		env := f.Tag.Get("env")
		if env == "" {
			env = strings.ToUpper(strings.ReplaceAll(name, "-", "_"))
		}
		b := binding{name: name, env: env, usage: f.Tag.Get("usage"), v: elem.Field(i)}
		if _, err := formatValue(b.v); err != nil {
			return nil, fmt.Errorf("config: field %s (-%s): %w", f.Name, name, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// setValue parses raw into a bound field. Fields implementing
// encoding.TextUnmarshaler take priority over the built-in kinds.
func setValue(v reflect.Value, raw string) error {
	if tu, ok := v.Addr().Interface().(encoding.TextUnmarshaler); ok {
		return tu.UnmarshalText([]byte(raw))
	}
	switch v.Kind() {
	case reflect.String:
		v.SetString(raw)
	case reflect.Bool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return fmt.Errorf("parsing %q as bool: %w", raw, errors.Unwrap(err))
		}
		v.SetBool(b)
	case reflect.Int, reflect.Int64:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("parsing %q as int: %w", raw, errors.Unwrap(err))
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint64:
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("parsing %q as uint: %w", raw, errors.Unwrap(err))
		}
		v.SetUint(n)
	case reflect.Float64:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("parsing %q as float: %w", raw, errors.Unwrap(err))
		}
		v.SetFloat(f)
	default:
		return fmt.Errorf("unsupported field kind %s", v.Kind())
	}
	return nil
}

// formatValue renders a bound field back to flag syntax — the inverse
// of setValue, used for provenance snapshots and -help defaults.
func formatValue(v reflect.Value) (string, error) {
	if tm, ok := v.Addr().Interface().(encoding.TextMarshaler); ok {
		b, err := tm.MarshalText()
		return string(b), err
	}
	switch v.Kind() {
	case reflect.String:
		return v.String(), nil
	case reflect.Bool:
		return strconv.FormatBool(v.Bool()), nil
	case reflect.Int, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10), nil
	case reflect.Uint, reflect.Uint64:
		return strconv.FormatUint(v.Uint(), 10), nil
	case reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64), nil
	}
	return "", fmt.Errorf("unsupported field kind %s", v.Kind())
}

// fieldValue adapts a binding to flag.Value, recording provenance on
// every successful Set.
type fieldValue struct {
	b     *binding
	onSet func()
}

// String renders the current value (flag's -help default).
func (f fieldValue) String() string {
	if f.b == nil {
		return ""
	}
	s, _ := formatValue(f.b.v)
	return s
}

// Set parses a flag occurrence into the field.
func (f fieldValue) Set(raw string) error {
	if err := setValue(f.b.v, raw); err != nil {
		return err
	}
	f.onSet()
	return nil
}

// IsBoolFlag lets bool fields parse as bare -flag (no value).
func (f fieldValue) IsBoolFlag() bool { return f.b.v.Kind() == reflect.Bool }

// findFileArg pre-scans the raw arguments for -config/--config so the
// file layer can load BEFORE env and flags override it.
func findFileArg(args []string) string {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			return ""
		}
		name, val, eq := strings.Cut(strings.TrimLeft(a, "-"), "=")
		if !strings.HasPrefix(a, "-") || name != "config" {
			continue
		}
		if eq {
			return val
		}
		if i+1 < len(args) {
			return args[i+1]
		}
	}
	return ""
}

// Load fills dst (a pointer to a tagged struct whose defaults are
// already set) from the precedence chain defaults < file < env < flag,
// then validates it. Leftover positional arguments are an error — every
// command in this repository is flag-only. The returned Result carries
// per-field provenance even when Load also returns an error, so
// callers can report what was loaded before validation failed.
func Load(dst any, o Options) (*Result, error) {
	bs, err := bindings(dst)
	if err != nil {
		return nil, err
	}
	lookup := o.LookupEnv
	if lookup == nil {
		lookup = os.LookupEnv
	}
	res := &Result{sources: make(map[string]Source, len(bs))}

	// Layer 1: the config file, named by a pre-scanned -config flag or
	// $PREFIX_CONFIG. JSON with unknown keys rejected — a typoed key
	// silently ignored is the classic config footgun.
	file := findFileArg(o.Args)
	if file == "" && o.EnvPrefix != "" {
		if v, ok := lookup(o.EnvPrefix + "_CONFIG"); ok {
			file = v
		}
	}
	if file != "" {
		before := make(map[string]string, len(bs))
		for _, b := range bs {
			s, _ := formatValue(b.v)
			before[b.name] = s
		}
		blob, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
		dec := json.NewDecoder(bytes.NewReader(blob))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			return nil, fmt.Errorf("config: %s: %w", file, err)
		}
		res.File = file
		for _, b := range bs {
			if s, _ := formatValue(b.v); s != before[b.name] {
				res.sources[b.name] = SourceFile
			}
		}
	}

	// Layer 2: the environment. Parse errors accumulate so one run
	// reports every bad variable, not just the first.
	var errs []error
	if o.EnvPrefix != "" {
		for _, b := range bs {
			key := o.EnvPrefix + "_" + b.env
			raw, ok := lookup(key)
			if !ok {
				continue
			}
			if err := setValue(b.v, raw); err != nil {
				errs = append(errs, fmt.Errorf("config: $%s: %v", key, err))
				continue
			}
			res.sources[b.name] = SourceEnv
		}
	}

	// Layer 3: flags, highest precedence. The -config flag is
	// registered so parsing accepts it; its value was already consumed
	// by the pre-scan.
	fs := flag.NewFlagSet(o.Name, flag.ContinueOnError)
	if o.Output != nil {
		fs.SetOutput(o.Output)
	}
	fileEcho := file
	fs.StringVar(&fileEcho, "config", file, "config file (JSON; also $"+o.EnvPrefix+"_CONFIG)")
	for i := range bs {
		b := &bs[i]
		usage := b.usage
		if over, ok := o.Usage[b.name]; ok {
			usage = over
		}
		if o.EnvPrefix != "" {
			usage += " (also $" + o.EnvPrefix + "_" + b.env + ")"
		}
		name := b.name
		fs.Var(fieldValue{b: b, onSet: func() { res.sources[name] = SourceFlag }}, name, usage)
	}
	if err := fs.Parse(o.Args); err != nil {
		return res, err
	}
	if fs.NArg() > 0 {
		return res, fmt.Errorf("%s: unexpected arguments %q", o.Name, fs.Args())
	}

	// Layer 4: validation, with everything already in place.
	if v, ok := dst.(Validator); ok {
		if err := v.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return res, errors.Join(errs...)
	}
	return res, nil
}
