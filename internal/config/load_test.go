package config

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// env builds a LookupEnv over a literal map.
func env(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := m[k]
		return v, ok
	}
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPrecedence pins the whole chain on one struct: defaults lose to
// the file, the file loses to env, env loses to flags — field by
// field, with provenance recorded per layer.
func TestPrecedence(t *testing.T) {
	file := writeFile(t, "cfg.json", `{"seconds": 10, "budget_ms": 20, "loop": true}`)
	cfg := DefaultConfig()
	res, err := Load(&cfg, Options{
		Name: "vqserve", EnvPrefix: "VQSERVE",
		Args: []string{"-config", file, "-budget-ms", "40"},
		LookupEnv: env(map[string]string{
			"VQSERVE_BUDGET_MS": "30", // flag wins over this
			"VQSERVE_SPEED":     "5",  // only env sets this
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.File != file {
		t.Errorf("loaded file = %q, want %q", res.File, file)
	}
	checks := []struct {
		name string
		got  any
		want any
		src  Source
	}{
		{"addr", cfg.Addr, ":8791", SourceDefault},
		{"seconds", cfg.Seconds, 10.0, SourceFile},
		{"loop", cfg.Loop, true, SourceFile},
		{"speed", cfg.Speed, 5.0, SourceEnv},
		{"budget-ms", cfg.BudgetMS, 40.0, SourceFlag},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
		if got := res.Source(c.name); got != c.src {
			t.Errorf("Source(%s) = %v, want %v", c.name, got, c.src)
		}
	}
	if res.Explicit("addr") {
		t.Error("addr reported explicit despite being a default")
	}
	if !res.Explicit("speed") || !res.Explicit("budget-ms") {
		t.Error("env/flag fields not reported explicit")
	}
}

// TestConfigFileByEnvAlone starts the daemon config with zero flags:
// the file comes from $VQSERVE_CONFIG, the address from $VQSERVE_ADDR —
// the acceptance path the CI ops smoke drives end to end.
func TestConfigFileByEnvAlone(t *testing.T) {
	file := writeFile(t, "cfg.json", `{
		"sources": "retail",
		"tenants": [
			{"name": "gold", "share": 3, "rate_per_sec": 50, "burst": 10},
			{"name": "free", "share": 1, "rate_per_sec": 1, "burst": 2}
		]
	}`)
	cfg := DefaultConfig()
	res, err := Load(&cfg, Options{
		Name: "vqserve", EnvPrefix: "VQSERVE", Args: nil,
		LookupEnv: env(map[string]string{
			"VQSERVE_CONFIG": file,
			"VQSERVE_ADDR":   "127.0.0.1:9999",
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.File != file || cfg.Addr != "127.0.0.1:9999" || cfg.Sources != "retail" {
		t.Errorf("env-only load: file=%q addr=%q sources=%q", res.File, cfg.Addr, cfg.Sources)
	}
	if len(cfg.Tenants) != 2 || cfg.Tenants[0].Name != "gold" || cfg.Tenants[1].Burst != 2 {
		t.Errorf("tenants = %+v", cfg.Tenants)
	}
	if res.Source("tenants") != SourceFile {
		t.Errorf("tenants source = %v, want file", res.Source("tenants"))
	}
}

// TestEnvErrorsAccumulate: every bad variable is reported, not just
// the first one found.
func TestEnvErrorsAccumulate(t *testing.T) {
	cfg := DefaultConfig()
	_, err := Load(&cfg, Options{
		Name: "vqserve", EnvPrefix: "VQSERVE",
		LookupEnv: env(map[string]string{
			"VQSERVE_SECONDS": "not-a-number",
			"VQSERVE_FLEET":   "many",
		}),
	})
	if err == nil {
		t.Fatal("bad env values loaded without error")
	}
	for _, frag := range []string{"VQSERVE_SECONDS", "VQSERVE_FLEET"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %s", err, frag)
		}
	}
}

// TestValidationAccumulates: a config wrong in three ways names all
// three knobs in one error.
func TestValidationAccumulates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Speed = -1
	cfg.Sources = " , "
	cfg.Tenants = TenantList{{Name: "a", Share: 0}, {Name: "a", Share: 1}}
	_, err := Load(&cfg, Options{Name: "vqserve"})
	if err == nil {
		t.Fatal("invalid config loaded without error")
	}
	for _, frag := range []string{"speed", "no sources", "share must be > 0", "declared twice"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

// TestStrayArgsRejected: positional leftovers are a usage error, as
// they were under raw flag parsing.
func TestStrayArgsRejected(t *testing.T) {
	cfg := DefaultConfig()
	_, err := Load(&cfg, Options{Name: "vqserve", Args: []string{"-loop", "stray"}})
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("stray args error = %v", err)
	}
}

// TestUnknownFileKeyRejected: a typoed config-file key fails the load
// instead of being silently ignored.
func TestUnknownFileKeyRejected(t *testing.T) {
	file := writeFile(t, "cfg.json", `{"budget_msec": 10}`)
	cfg := DefaultConfig()
	_, err := Load(&cfg, Options{Name: "vqserve", Args: []string{"-config", file}})
	if err == nil || !strings.Contains(err.Error(), "budget_msec") {
		t.Fatalf("unknown key error = %v", err)
	}
}

// TestMissingFileRejected: a named-but-absent config file is an error,
// never an empty default run.
func TestMissingFileRejected(t *testing.T) {
	cfg := DefaultConfig()
	_, err := Load(&cfg, Options{
		Name: "vqserve", EnvPrefix: "VQSERVE",
		LookupEnv: env(map[string]string{"VQSERVE_CONFIG": "/no/such/file.json"}),
	})
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("missing file error = %v", err)
	}
}

// TestTenantListText round-trips the compact flag/env encoding and
// rejects the malformed shapes.
func TestTenantListText(t *testing.T) {
	var tl TenantList
	if err := tl.UnmarshalText([]byte("gold:3:50:10, free:1:1:2, anon:2")); err != nil {
		t.Fatal(err)
	}
	want := TenantList{
		{Name: "gold", Share: 3, RatePerSec: 50, Burst: 10},
		{Name: "free", Share: 1, RatePerSec: 1, Burst: 2},
		{Name: "anon", Share: 2},
	}
	if len(tl) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(tl), len(want))
	}
	for i := range want {
		if tl[i] != want[i] {
			t.Errorf("tenant[%d] = %+v, want %+v", i, tl[i], want[i])
		}
	}
	text, err := tl.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back TenantList
	if err := back.UnmarshalText(text); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for i := range want {
		if back[i] != want[i] {
			t.Errorf("round-tripped tenant[%d] = %+v, want %+v", i, back[i], want[i])
		}
	}
	if err := tl.UnmarshalText([]byte("justaname")); err == nil {
		t.Error("share-less tenant parsed without error")
	}
	if err := tl.UnmarshalText([]byte("x:notanumber")); err == nil {
		t.Error("non-numeric share parsed without error")
	}
	if err := tl.UnmarshalText([]byte("")); err != nil || back.UnmarshalText(nil) != nil {
		t.Error("empty tenant list did not clear cleanly")
	}
}

// TestTenantsFromEnv wires the compact encoding through the env layer.
func TestTenantsFromEnv(t *testing.T) {
	cfg := DefaultConfig()
	_, err := Load(&cfg, Options{
		Name: "vqserve", EnvPrefix: "VQSERVE",
		LookupEnv: env(map[string]string{"VQSERVE_TENANTS": "gold:3:50:10,free:1:1:2"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 2 || cfg.Tenants[0].RatePerSec != 50 {
		t.Errorf("tenants from env = %+v", cfg.Tenants)
	}
}

// TestBoolAndUsageOverride covers bare bool flags and the dynamic
// usage override hook (vqbench's computed -exp help).
func TestBoolAndUsageOverride(t *testing.T) {
	type tiny struct {
		Exp  string `flag:"exp" json:"exp"`
		Burn bool   `flag:"burn" json:"burn"`
	}
	c := tiny{Exp: "all"}
	res, err := Load(&c, Options{
		Name: "t", Args: []string{"-burn"},
		Usage:  map[string]string{"exp": "computed help"},
		Output: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Burn || res.Source("burn") != SourceFlag {
		t.Errorf("bare bool flag: burn=%v src=%v", c.Burn, res.Source("burn"))
	}
}

// TestLoadRejectsNonStruct pins the developer-error path.
func TestLoadRejectsNonStruct(t *testing.T) {
	var n int
	if _, err := Load(&n, Options{Name: "t"}); err == nil {
		t.Error("Load accepted a non-struct")
	}
	if _, err := Load(nil, Options{Name: "t"}); err == nil {
		t.Error("Load accepted nil")
	}
}

// TestDefaultConfigValidates: the shipped defaults must pass their own
// validation.
func TestDefaultConfigValidates(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

// TestFindFileArg covers the pre-scan forms.
func TestFindFileArg(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-config", "a.json"}, "a.json"},
		{[]string{"--config", "a.json"}, "a.json"},
		{[]string{"-config=a.json"}, "a.json"},
		{[]string{"-loop", "-config", "a.json"}, "a.json"},
		{[]string{"-loop"}, ""},
		{[]string{"--", "-config", "a.json"}, ""},
	}
	for _, c := range cases {
		if got := findFileArg(c.args); got != c.want {
			t.Errorf("findFileArg(%v) = %q, want %q", c.args, got, c.want)
		}
	}
}

// TestBadFlagValue: a malformed flag value surfaces as a parse error
// mentioning the flag.
func TestBadFlagValue(t *testing.T) {
	cfg := DefaultConfig()
	_, err := Load(&cfg, Options{Name: "vqserve", Args: []string{"-seconds", "soon"}, Output: io.Discard})
	if err == nil || !strings.Contains(err.Error(), "seconds") {
		t.Fatalf("bad flag value error = %v", err)
	}
}
