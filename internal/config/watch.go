package config

// SIGHUP hot reload: the classic daemon contract. Watch installs a
// handler and invokes the supplied reload function on every hangup;
// the caller re-runs its Load (same args, same environment, fresh
// file contents) and applies whatever subset of the result is
// hot-swappable. Everything stateful stays in the caller, so Watch is
// reusable by any command and trivially race-testable.

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Watch invokes onHUP (serially, from one goroutine) every time the
// process receives SIGHUP, until the returned stop function is called.
// Signals arriving while onHUP runs coalesce into one pending reload —
// the semantics of signal.Notify on a buffered channel of one.
func Watch(onHUP func()) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ch:
				onHUP()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			wg.Wait()
		})
	}
}
