package config

import (
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// hup sends SIGHUP to this test process.
func hup(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
}

// TestWatchFiresOnSIGHUP: the watcher invokes the reload callback on a
// real hangup signal and stops cleanly.
func TestWatchFiresOnSIGHUP(t *testing.T) {
	fired := make(chan struct{}, 4)
	stop := Watch(func() { fired <- struct{}{} })
	defer stop()
	hup(t)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("SIGHUP did not reach the watcher within 5s")
	}
	stop() // idempotent; a second call must not panic or deadlock
}

// TestWatchStopIgnoresLaterSignals: once stopped, hangups no longer
// invoke the callback (and no longer kill the process — the default
// SIGHUP disposition is reinstalled only for channels, and the test
// binary still has the test runner's handler, so this only asserts the
// callback silence).
func TestWatchStopIgnoresLaterSignals(t *testing.T) {
	var calls atomic.Int64
	// A second watcher keeps a SIGHUP handler installed so the signal
	// sent after the first stops cannot terminate the test process.
	holdStop := Watch(func() {})
	defer holdStop()
	stop := Watch(func() { calls.Add(1) })
	hup(t)
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first SIGHUP not observed")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	before := calls.Load()
	hup(t)
	time.Sleep(50 * time.Millisecond)
	if got := calls.Load(); got != before {
		t.Errorf("stopped watcher still fired: %d -> %d", before, got)
	}
}

// TestWatchReloadRace is the SIGHUP/-race suite: a reload that
// re-runs Load over a config file being rewritten concurrently, with
// readers consuming the last-applied snapshot through a mutex — the
// exact shape cmd/vqserve uses (Load into a fresh struct, swap under a
// lock). Run under -race in CI.
func TestWatchReloadRace(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "cfg.json")
	write := func(budget int) {
		// Atomic rename so a reload never reads a torn file.
		tmp := file + ".tmp"
		if err := os.WriteFile(tmp, []byte(`{"budget_ms": `+strconv.Itoa(budget)+`}`), 0o644); err != nil {
			t.Error(err)
			return
		}
		if err := os.Rename(tmp, file); err != nil {
			t.Error(err)
		}
	}
	write(10)

	var mu sync.Mutex
	applied := DefaultConfig()
	reload := func() {
		cfg := DefaultConfig()
		if _, err := Load(&cfg, Options{
			Name: "vqserve", EnvPrefix: "VQSERVE",
			LookupEnv: func(k string) (string, bool) {
				if k == "VQSERVE_CONFIG" {
					return file, true
				}
				return "", false
			},
		}); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		applied = cfg
		mu.Unlock()
	}
	reload()
	stop := Watch(reload)
	defer stop()

	var wg sync.WaitGroup
	done := make(chan struct{})
	// Writer: keeps changing the file and signalling.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			write(10 + i)
			hup(t)
			time.Sleep(2 * time.Millisecond)
		}
		close(done)
	}()
	// Readers: consume the applied snapshot concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				b := applied.BudgetMS
				mu.Unlock()
				if b < 10 || b > 30 {
					t.Errorf("torn budget %g", b)
					return
				}
			}
		}()
	}
	wg.Wait()
	stop()
	mu.Lock()
	defer mu.Unlock()
	if applied.BudgetMS < 10 {
		t.Errorf("final budget %g, want a reloaded value >= 10", applied.BudgetMS)
	}
}
