package core

import "fmt"

// NodeKind classifies query nodes for the composition rules of §3.
type NodeKind int

// Node kinds.
const (
	NodeBasic NodeKind = iota
	NodeSpatial
	NodeDuration
	NodeTemporal
)

var nodeKindNames = [...]string{"basic", "spatial", "duration", "temporal"}

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	if k < 0 || int(k) >= len(nodeKindNames) {
		return "invalid"
	}
	return nodeKindNames[k]
}

// QueryNode is any query usable in event composition: a basic Query or
// one of the three higher-order combinators.
type QueryNode interface {
	NodeName() string
	NodeKind() NodeKind
}

// NodeName implements QueryNode for basic queries.
func (q *Query) NodeName() string { return q.name }

// NodeKind implements QueryNode for basic queries.
func (q *Query) NodeKind() NodeKind { return NodeBasic }

// SpatialQuery checks whether objects matched by two basic queries
// satisfy a spatial relation predicate on the same frame (§3). Per
// composition Rule 1 it accepts only basic queries.
type SpatialQuery struct {
	name     string
	Left     *Query
	Right    *Query
	Relation *RelationType
	// RelPred constrains the relation's properties; references use the
	// relation name.
	RelPred Pred
}

// NewSpatialQuery composes two basic queries with a spatial relation.
// The relation's participant types must match the single instance of
// each side (the paper's examples pass one VObj per side).
func NewSpatialQuery(name string, left, right *Query, rel *RelationType, relPred Pred) (*SpatialQuery, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("core: SpatialQuery %s requires two base queries", name)
	}
	if rel == nil {
		return nil, fmt.Errorf("core: SpatialQuery %s requires a relation", name)
	}
	if rel.Kind() != RelSpatial {
		return nil, fmt.Errorf("core: SpatialQuery %s requires a spatial relation, got %s", name, rel.Kind())
	}
	return &SpatialQuery{name: name, Left: left, Right: right, Relation: rel, RelPred: relPred}, nil
}

// NodeName implements QueryNode.
func (s *SpatialQuery) NodeName() string { return s.name }

// NodeKind implements QueryNode.
func (s *SpatialQuery) NodeKind() NodeKind { return NodeSpatial }

// DurationQuery checks that a base condition holds continuously for at
// least MinSeconds (§3: loitering, unattended bags). Per composition
// Rule 2 it accepts basic queries or SpatialQueries.
type DurationQuery struct {
	name       string
	Base       QueryNode
	MinSeconds float64
}

// NewDurationQuery wraps a base query with a minimum-duration condition.
func NewDurationQuery(name string, base QueryNode, minSeconds float64) (*DurationQuery, error) {
	if base == nil {
		return nil, fmt.Errorf("core: DurationQuery %s requires a base query", name)
	}
	switch base.NodeKind() {
	case NodeBasic, NodeSpatial:
		// Rule 2.
	default:
		return nil, fmt.Errorf("core: DurationQuery %s cannot take a %s query (composition rule 2)", name, base.NodeKind())
	}
	if minSeconds <= 0 {
		return nil, fmt.Errorf("core: DurationQuery %s needs a positive duration", name)
	}
	return &DurationQuery{name: name, Base: base, MinSeconds: minSeconds}, nil
}

// NodeName implements QueryNode.
func (d *DurationQuery) NodeName() string { return d.name }

// NodeKind implements QueryNode.
func (d *DurationQuery) NodeKind() NodeKind { return NodeDuration }

// TemporalQuery checks that two events occur in sequence within a time
// window (§3, Figure 8's hit-and-run). Per composition Rule 3 it accepts
// basic queries and all three higher-order kinds, including itself.
type TemporalQuery struct {
	name          string
	First, Second QueryNode
	WindowSeconds float64
}

// NewTemporalQuery composes two events sequentially: Second must begin
// within WindowSeconds after First ends.
func NewTemporalQuery(name string, first, second QueryNode, windowSeconds float64) (*TemporalQuery, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("core: TemporalQuery %s requires two events", name)
	}
	if windowSeconds <= 0 {
		return nil, fmt.Errorf("core: TemporalQuery %s needs a positive window", name)
	}
	return &TemporalQuery{name: name, First: first, Second: second, WindowSeconds: windowSeconds}, nil
}

// NodeName implements QueryNode.
func (t *TemporalQuery) NodeName() string { return t.name }

// NodeKind implements QueryNode.
func (t *TemporalQuery) NodeKind() NodeKind { return NodeTemporal }

// BasicQueriesOf returns every basic query reachable from a node, used
// by the planner to derive the union pipeline.
func BasicQueriesOf(n QueryNode) []*Query {
	switch n := n.(type) {
	case *Query:
		return []*Query{n}
	case *SpatialQuery:
		return append(BasicQueriesOf(n.Left), BasicQueriesOf(n.Right)...)
	case *DurationQuery:
		return BasicQueriesOf(n.Base)
	case *TemporalQuery:
		return append(BasicQueriesOf(n.First), BasicQueriesOf(n.Second)...)
	}
	return nil
}
