package core

import (
	"fmt"
	"strings"
)

// Op is a comparison operator in a predicate leaf.
type Op int

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpGt
	OpGe
	OpLt
	OpLe
	OpContains // substring match on strings
)

var opNames = [...]string{"==", "!=", ">", ">=", "<", "<=", "contains"}

// String implements fmt.Stringer.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return "?"
	}
	return opNames[o]
}

// Pred is a boolean predicate over object/relation properties; predicates
// form a tree combined with And / Or / Not (§3's &, |, ¬ operators).
type Pred interface {
	// String renders the predicate for plans and debugging.
	String() string
	pred() // sealed
}

// PropRef names an instance property inside a query: the instance name
// bound by Query.Use and a property name.
type PropRef struct {
	Instance string
	Prop     string
}

// P constructs a property reference for predicate building:
// core.P("car", "color").Eq("red").
func P(instance, prop string) PropRef { return PropRef{Instance: instance, Prop: prop} }

// Cmp is a leaf predicate comparing a property to a constant.
type Cmp struct {
	Ref   PropRef
	Op    Op
	Value any
}

func (c *Cmp) pred() {}

// String implements Pred.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s.%s %s %v", c.Ref.Instance, c.Ref.Prop, c.Op, c.Value)
}

// Comparison constructors on PropRef.

// Eq builds ref == v.
func (r PropRef) Eq(v any) Pred { return &Cmp{Ref: r, Op: OpEq, Value: v} }

// Ne builds ref != v.
func (r PropRef) Ne(v any) Pred { return &Cmp{Ref: r, Op: OpNe, Value: v} }

// Gt builds ref > v.
func (r PropRef) Gt(v any) Pred { return &Cmp{Ref: r, Op: OpGt, Value: v} }

// Ge builds ref >= v.
func (r PropRef) Ge(v any) Pred { return &Cmp{Ref: r, Op: OpGe, Value: v} }

// Lt builds ref < v.
func (r PropRef) Lt(v any) Pred { return &Cmp{Ref: r, Op: OpLt, Value: v} }

// Le builds ref <= v.
func (r PropRef) Le(v any) Pred { return &Cmp{Ref: r, Op: OpLe, Value: v} }

// Contains builds a substring predicate (e.g. plate contains "45").
func (r PropRef) Contains(v string) Pred { return &Cmp{Ref: r, Op: OpContains, Value: v} }

// RelRef names a relation property: the relation instance declared on
// the query and one of its properties.
type RelRef struct {
	Relation string
	Prop     string
}

// RP constructs a relation property reference:
// core.RP("pb", "interaction").Eq("hit").
func RP(relation, prop string) RelRef { return RelRef{Relation: relation, Prop: prop} }

// RelCmp is a leaf predicate over a relation property.
type RelCmp struct {
	Ref   RelRef
	Op    Op
	Value any
}

func (c *RelCmp) pred() {}

// String implements Pred.
func (c *RelCmp) String() string {
	return fmt.Sprintf("rel:%s.%s %s %v", c.Ref.Relation, c.Ref.Prop, c.Op, c.Value)
}

// Eq builds rel.prop == v.
func (r RelRef) Eq(v any) Pred { return &RelCmp{Ref: r, Op: OpEq, Value: v} }

// Ne builds rel.prop != v.
func (r RelRef) Ne(v any) Pred { return &RelCmp{Ref: r, Op: OpNe, Value: v} }

// Gt builds rel.prop > v.
func (r RelRef) Gt(v any) Pred { return &RelCmp{Ref: r, Op: OpGt, Value: v} }

// Lt builds rel.prop < v.
func (r RelRef) Lt(v any) Pred { return &RelCmp{Ref: r, Op: OpLt, Value: v} }

// AndPred is the conjunction of its children.
type AndPred struct{ Children []Pred }

func (a *AndPred) pred() {}

// String implements Pred.
func (a *AndPred) String() string { return joinPreds(a.Children, " & ") }

// OrPred is the disjunction of its children.
type OrPred struct{ Children []Pred }

func (o *OrPred) pred() {}

// String implements Pred.
func (o *OrPred) String() string { return joinPreds(o.Children, " | ") }

// NotPred negates its child.
type NotPred struct{ Child Pred }

func (n *NotPred) pred() {}

// String implements Pred.
func (n *NotPred) String() string { return "¬(" + n.Child.String() + ")" }

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// And combines predicates conjunctively, flattening nested Ands.
func And(ps ...Pred) Pred {
	var flat []Pred
	for _, p := range ps {
		if p == nil {
			continue
		}
		if a, ok := p.(*AndPred); ok {
			flat = append(flat, a.Children...)
			continue
		}
		flat = append(flat, p)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &AndPred{Children: flat}
}

// Or combines predicates disjunctively, flattening nested Ors.
func Or(ps ...Pred) Pred {
	var flat []Pred
	for _, p := range ps {
		if p == nil {
			continue
		}
		if o, ok := p.(*OrPred); ok {
			flat = append(flat, o.Children...)
			continue
		}
		flat = append(flat, p)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &OrPred{Children: flat}
}

// Not negates a predicate, collapsing double negation.
func Not(p Pred) Pred {
	if n, ok := p.(*NotPred); ok {
		return n.Child
	}
	return &NotPred{Child: p}
}

// Binding resolves property values during predicate evaluation. Missing
// values (ok == false) make the enclosing comparison undecidable; see
// EvalPred.
type Binding interface {
	// Prop returns the value of an instance property.
	Prop(instance, prop string) (any, bool)
	// RelProp returns the value of a relation property.
	RelProp(relation, prop string) (any, bool)
}

// EvalPred evaluates p against b using three-valued logic folded to a
// (value, known) pair: comparisons over missing properties are unknown;
// And is false if any child is false, unknown if undecided; Or dually;
// Not propagates unknown. Callers typically treat unknown as false
// (the object does not provably satisfy the constraint).
func EvalPred(p Pred, b Binding) (value, known bool) {
	switch p := p.(type) {
	case *Cmp:
		v, ok := b.Prop(p.Ref.Instance, p.Ref.Prop)
		if !ok {
			return false, false
		}
		return compare(v, p.Op, p.Value), true
	case *RelCmp:
		v, ok := b.RelProp(p.Ref.Relation, p.Ref.Prop)
		if !ok {
			return false, false
		}
		return compare(v, p.Op, p.Value), true
	case *AndPred:
		allKnown := true
		for _, c := range p.Children {
			v, k := EvalPred(c, b)
			if k && !v {
				return false, true
			}
			if !k {
				allKnown = false
			}
		}
		return allKnown, allKnown
	case *OrPred:
		anyUnknown := false
		for _, c := range p.Children {
			v, k := EvalPred(c, b)
			if k && v {
				return true, true
			}
			if !k {
				anyUnknown = true
			}
		}
		return false, !anyUnknown
	case *NotPred:
		v, k := EvalPred(p.Child, b)
		return !v, k
	case nil:
		return true, true
	}
	return false, false
}

// compare applies op to a dynamic value and a constant, coercing numbers
// to float64 and stringers to strings.
func compare(v any, op Op, c any) bool {
	if op == OpContains {
		vs, ok1 := asString(v)
		cs, ok2 := asString(c)
		return ok1 && ok2 && strings.Contains(vs, cs)
	}
	if vf, ok1 := asFloat(v); ok1 {
		if cf, ok2 := asFloat(c); ok2 {
			switch op {
			case OpEq:
				return vf == cf
			case OpNe:
				return vf != cf
			case OpGt:
				return vf > cf
			case OpGe:
				return vf >= cf
			case OpLt:
				return vf < cf
			case OpLe:
				return vf <= cf
			}
			return false
		}
	}
	vs, ok1 := asString(v)
	cs, ok2 := asString(c)
	if ok1 && ok2 {
		switch op {
		case OpEq:
			return vs == cs
		case OpNe:
			return vs != cs
		case OpGt:
			return vs > cs
		case OpGe:
			return vs >= cs
		case OpLt:
			return vs < cs
		case OpLe:
			return vs <= cs
		}
		return false
	}
	if vb, ok1 := v.(bool); ok1 {
		if cb, ok2 := c.(bool); ok2 {
			switch op {
			case OpEq:
				return vb == cb
			case OpNe:
				return vb != cb
			}
		}
	}
	return false
}

func asFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case int32:
		return float64(n), true
	case uint64:
		return float64(n), true
	}
	return 0, false
}

func asString(v any) (string, bool) {
	switch s := v.(type) {
	case string:
		return s, true
	case fmt.Stringer:
		return s.String(), true
	}
	return "", false
}

// RefsOf collects every property reference in a predicate tree, used by
// the planner to derive required projectors.
func RefsOf(p Pred) (props []PropRef, rels []RelRef) {
	switch p := p.(type) {
	case *Cmp:
		props = append(props, p.Ref)
	case *RelCmp:
		rels = append(rels, p.Ref)
	case *AndPred:
		for _, c := range p.Children {
			ps, rs := RefsOf(c)
			props = append(props, ps...)
			rels = append(rels, rs...)
		}
	case *OrPred:
		for _, c := range p.Children {
			ps, rs := RefsOf(c)
			props = append(props, ps...)
			rels = append(rels, rs...)
		}
	case *NotPred:
		return RefsOf(p.Child)
	}
	return props, rels
}

// ConjunctsOf splits a top-level conjunction into its members; any other
// predicate is returned as a single conjunct. The planner uses this for
// predicate pull-up and per-property lazy filtering.
func ConjunctsOf(p Pred) []Pred {
	if p == nil {
		return nil
	}
	if a, ok := p.(*AndPred); ok {
		return a.Children
	}
	return []Pred{p}
}
