package core

import (
	"strings"
	"testing"
	"testing/quick"

	"vqpy/internal/sim"
)

// mapBinding is a simple Binding over maps for tests.
type mapBinding struct {
	props map[string]any // "inst.prop" -> value
	rels  map[string]any // "rel.prop" -> value
}

func (m mapBinding) Prop(inst, prop string) (any, bool) {
	v, ok := m.props[inst+"."+prop]
	return v, ok
}

func (m mapBinding) RelProp(rel, prop string) (any, bool) {
	v, ok := m.rels[rel+"."+prop]
	return v, ok
}

func evalKnown(t *testing.T, p Pred, b Binding) bool {
	t.Helper()
	v, k := EvalPred(p, b)
	if !k {
		t.Fatalf("predicate %s unexpectedly unknown", p)
	}
	return v
}

func TestCmpOperators(t *testing.T) {
	b := mapBinding{props: map[string]any{
		"car.speed": 5.0,
		"car.color": "red",
		"car.count": 3,
		"car.ok":    true,
		"car.plate": "ABC-745",
	}}
	cases := []struct {
		p    Pred
		want bool
	}{
		{P("car", "speed").Gt(4), true},
		{P("car", "speed").Gt(5), false},
		{P("car", "speed").Ge(5), true},
		{P("car", "speed").Lt(6), true},
		{P("car", "speed").Le(4.9), false},
		{P("car", "speed").Eq(5), true},
		{P("car", "speed").Ne(5), false},
		{P("car", "color").Eq("red"), true},
		{P("car", "color").Ne("blue"), true},
		{P("car", "count").Gt(2.5), true}, // int/float coercion
		{P("car", "ok").Eq(true), true},
		{P("car", "ok").Ne(false), true},
		{P("car", "plate").Contains("45"), true},
		{P("car", "plate").Contains("99"), false},
	}
	for _, c := range cases {
		if got := evalKnown(t, c.p, b); got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLogicalOperators(t *testing.T) {
	b := mapBinding{props: map[string]any{"x.a": 1.0, "x.b": 2.0}}
	tr := P("x", "a").Eq(1)
	fa := P("x", "b").Eq(99)
	if !evalKnown(t, And(tr, tr), b) || evalKnown(t, And(tr, fa), b) {
		t.Error("And wrong")
	}
	if !evalKnown(t, Or(fa, tr), b) || evalKnown(t, Or(fa, fa), b) {
		t.Error("Or wrong")
	}
	if evalKnown(t, Not(tr), b) || !evalKnown(t, Not(fa), b) {
		t.Error("Not wrong")
	}
	if !evalKnown(t, Not(Not(tr)), b) {
		t.Error("double negation wrong")
	}
}

func TestAndOrFlattening(t *testing.T) {
	p := And(And(P("x", "a").Eq(1), P("x", "b").Eq(2)), P("x", "c").Eq(3))
	a, ok := p.(*AndPred)
	if !ok || len(a.Children) != 3 {
		t.Errorf("And not flattened: %s", p)
	}
	q := Or(Or(P("x", "a").Eq(1)), P("x", "b").Eq(2), nil)
	o, ok := q.(*OrPred)
	if !ok || len(o.Children) != 2 {
		t.Errorf("Or not flattened: %s", q)
	}
	// Single-element And collapses to the element.
	if _, ok := And(P("x", "a").Eq(1)).(*Cmp); !ok {
		t.Error("singleton And should collapse")
	}
}

func TestUnknownPropagation(t *testing.T) {
	b := mapBinding{props: map[string]any{"x.a": 1.0}}
	missing := P("x", "zzz").Eq(1)
	tr := P("x", "a").Eq(1)
	fa := P("x", "a").Eq(2)

	if _, k := EvalPred(missing, b); k {
		t.Error("missing prop should be unknown")
	}
	// And with a false child is decidedly false even if another child is
	// unknown (short-circuit semantics).
	if v, k := EvalPred(And(missing, fa), b); !k || v {
		t.Errorf("And(unknown,false) = (%v,%v), want (false,true)", v, k)
	}
	// And with only true+unknown stays unknown.
	if _, k := EvalPred(And(missing, tr), b); k {
		t.Error("And(unknown,true) should be unknown")
	}
	// Or with a true child is decidedly true.
	if v, k := EvalPred(Or(missing, tr), b); !k || !v {
		t.Errorf("Or(unknown,true) = (%v,%v), want (true,true)", v, k)
	}
	// Or with only false+unknown stays unknown.
	if _, k := EvalPred(Or(missing, fa), b); k {
		t.Error("Or(unknown,false) should be unknown")
	}
	// Not propagates unknown.
	if _, k := EvalPred(Not(missing), b); k {
		t.Error("Not(unknown) should be unknown")
	}
	// nil predicate is vacuously true.
	if v, k := EvalPred(nil, b); !k || !v {
		t.Error("nil predicate should be true")
	}
}

func TestRelPredicates(t *testing.T) {
	b := mapBinding{rels: map[string]any{
		"pb.distance":    12.5,
		"pb.interaction": "hit",
	}}
	if !evalKnown(t, RP("pb", "distance").Lt(20), b) {
		t.Error("rel Lt wrong")
	}
	if !evalKnown(t, RP("pb", "interaction").Eq("hit"), b) {
		t.Error("rel Eq wrong")
	}
	if evalKnown(t, RP("pb", "distance").Gt(20), b) {
		t.Error("rel Gt wrong")
	}
	if !evalKnown(t, RP("pb", "distance").Ne(1), b) {
		t.Error("rel Ne wrong")
	}
	if _, k := EvalPred(RP("pb", "zzz").Eq(1), b); k {
		t.Error("missing rel prop should be unknown")
	}
}

func TestTypeMismatchComparisons(t *testing.T) {
	b := mapBinding{props: map[string]any{"x.s": "abc", "x.n": 5.0}}
	// String vs number comparisons are false, not panics.
	if evalKnown(t, P("x", "s").Gt(3), b) {
		t.Error("string > number should be false")
	}
	if evalKnown(t, P("x", "n").Eq("abc"), b) {
		t.Error("number == string should be false")
	}
	// Contains on non-strings is false.
	if evalKnown(t, P("x", "n").Contains("5"), b) {
		t.Error("contains on number should be false")
	}
}

func TestStringerComparison(t *testing.T) {
	b := mapBinding{props: map[string]any{"x.op": OpEq}} // Op implements Stringer
	if !evalKnown(t, P("x", "op").Eq("=="), b) {
		t.Error("Stringer comparison failed")
	}
}

func TestRefsOf(t *testing.T) {
	p := And(
		P("car", "color").Eq("red"),
		Or(P("car", "speed").Gt(1), Not(P("person", "score").Gt(0.5))),
		RP("pc", "distance").Lt(50),
	)
	props, rels := RefsOf(p)
	if len(props) != 3 {
		t.Errorf("props = %v", props)
	}
	if len(rels) != 1 || rels[0] != (RelRef{"pc", "distance"}) {
		t.Errorf("rels = %v", rels)
	}
}

func TestConjunctsOf(t *testing.T) {
	a := P("x", "a").Eq(1)
	b := P("x", "b").Eq(2)
	if got := ConjunctsOf(And(a, b)); len(got) != 2 {
		t.Errorf("conjuncts = %v", got)
	}
	if got := ConjunctsOf(a); len(got) != 1 {
		t.Errorf("single conjunct = %v", got)
	}
	if got := ConjunctsOf(nil); got != nil {
		t.Errorf("nil conjuncts = %v", got)
	}
	// Or is not split.
	if got := ConjunctsOf(Or(a, b)); len(got) != 1 {
		t.Errorf("or conjuncts = %v", got)
	}
}

func TestPredString(t *testing.T) {
	p := And(P("car", "color").Eq("red"), Not(P("car", "speed").Gt(1)))
	s := p.String()
	for _, want := range []string{"car.color == red", "¬", "car.speed > 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if OpContains.String() != "contains" || Op(99).String() != "?" {
		t.Error("op strings wrong")
	}
}

// randPred builds a random predicate over boolean-ish leaves with a
// mirrored evaluation in plain Go, then checks De Morgan's laws via the
// evaluator.
func TestDeMorganProperty(t *testing.T) {
	rng := sim.NewRNG(7)
	b := mapBinding{props: map[string]any{"x.a": 1.0, "x.b": 2.0, "x.c": 3.0}}
	leaves := []Pred{
		P("x", "a").Eq(1), P("x", "a").Eq(0),
		P("x", "b").Gt(1), P("x", "b").Gt(10),
		P("x", "c").Lt(10), P("x", "c").Lt(0),
	}
	f := func() bool {
		p := leaves[rng.Intn(len(leaves))]
		q := leaves[rng.Intn(len(leaves))]
		// ¬(p & q) == ¬p | ¬q
		l1, k1 := EvalPred(Not(And(p, q)), b)
		r1, k1b := EvalPred(Or(Not(p), Not(q)), b)
		if k1 != k1b || l1 != r1 {
			return false
		}
		// ¬(p | q) == ¬p & ¬q
		l2, k2 := EvalPred(Not(Or(p, q)), b)
		r2, k2b := EvalPred(And(Not(p), Not(q)), b)
		return k2 == k2b && l2 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
