// Package core implements the paper's frontend: the VObj, Relation and
// Query constructs of §3, including stateless / stateful / intrinsic
// properties, inheritance, logical predicate composition, and the three
// higher-order query combinators (DurationQuery, SpatialQuery,
// TemporalQuery) with their composition rules.
//
// The package is purely declarative: it defines query structure and
// semantics (including predicate evaluation against an abstract property
// binding) but performs no video processing itself. The planner
// (internal/plan) compiles these structures into operator DAGs and the
// engine (internal/exec) executes them.
package core

import (
	"fmt"

	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// Reserved built-in property names every VObj exposes without
// declaration, mirroring the predefined properties of vqpy.VObj (§3:
// "bbox, frame rate, vobj image, etc."). The engine computes them.
// Note that "velocity" is deliberately NOT reserved: the paper's Figure
// 23 defines velocity as a user property over bbox history, and the
// library provides a ready-made one.
const (
	PropBBox     = "bbox"      // geom.BBox
	PropCenter   = "center"    // geom.Point
	PropScore    = "score"     // float64 detector confidence
	PropTrackID  = "track_id"  // int
	PropClass    = "class"     // string
	PropFrameIdx = "frame_idx" // int
)

// builtinProps enumerates the reserved names.
var builtinProps = map[string]bool{
	PropBBox: true, PropCenter: true, PropScore: true, PropTrackID: true,
	PropClass: true, PropFrameIdx: true,
}

// IsBuiltinProp reports whether name is a reserved built-in property.
func IsBuiltinProp(name string) bool { return builtinProps[name] }

// PropInput is the evaluation context handed to a property's compute
// function.
type PropInput struct {
	// Frame and Raster describe the current frame; Raster is rendered
	// at most once per frame and shared across properties.
	Frame  *video.Frame
	Raster *video.Raster

	// Box and TrackID describe the object the property is computed on.
	Box     geom.BBox
	TrackID int

	// TruthID links to the synthetic ground-truth track so that
	// simulated models can derive their (noisy) outputs. A production
	// deployment would not carry this field; see DESIGN.md §2.
	TruthID int

	// Deps holds current values of the declared stateless
	// dependencies, keyed by property name.
	Deps map[string]any

	// History holds the last HistoryLen+1 values of the stateful
	// dependency, oldest first, current value last. Its length may be
	// shorter while the window is still filling.
	History []any

	// Env and Registry give model-backed properties access to the
	// model zoo.
	Env      *models.Env
	Registry *models.Registry

	// Profiling is set on planner canary runs: compute functions with
	// side effects outside the engine (e.g. the fleet global-id
	// resolver mutating the shared identity registry) should charge
	// their cost but skip the effect, so profiling a plan never
	// perturbs live state.
	Profiling bool
}

// ComputeFunc computes a property value. Returning ErrNotReady indicates
// the property cannot be computed yet (e.g. a stateful window that has
// not filled); the engine treats the value as absent rather than failing.
type ComputeFunc func(in PropInput) (any, error)

// ErrNotReady is returned by compute functions whose inputs are not yet
// available (typically stateful windows still filling).
var ErrNotReady = fmt.Errorf("core: property not ready")

// Property declares one property of a VObj or Relation, the analog of a
// @stateless / @stateful annotated method (§3).
type Property struct {
	// Name is the property name used in predicates and outputs.
	Name string

	// Stateful marks a property that needs cross-frame history; its
	// DependsOn must name exactly one property whose last HistoryLen+1
	// values are provided (paper: @stateful(input=..., history_len=N)).
	Stateful   bool
	HistoryLen int

	// Intrinsic marks a stateless property that is constant for the
	// lifetime of an object (paper: intrinsic=True); the backend
	// memoizes it per track (§4.2).
	Intrinsic bool

	// Model names a zoo model that computes this property (e.g.
	// "color_detect"); empty for pure-Go compute functions.
	Model string

	// DependsOn lists property names of the same VObj whose values the
	// compute function needs (stateless) or whose history it needs
	// (stateful, single entry).
	DependsOn []string

	// Compute is the custom computation; ignored when Model is set.
	Compute ComputeFunc

	// CostHintMS lets pure-Go properties advertise a virtual cost so
	// the planner can order filters; model properties use the model's
	// profile instead.
	CostHintMS float64
}

// validate checks structural invariants.
func (p *Property) validate() error {
	if p.Name == "" {
		return fmt.Errorf("core: property with empty name")
	}
	if IsBuiltinProp(p.Name) {
		return fmt.Errorf("core: property %q shadows a built-in", p.Name)
	}
	if p.Stateful {
		if len(p.DependsOn) != 1 {
			return fmt.Errorf("core: stateful property %q must depend on exactly one property", p.Name)
		}
		if p.HistoryLen < 1 {
			return fmt.Errorf("core: stateful property %q needs HistoryLen >= 1", p.Name)
		}
		if p.Intrinsic {
			return fmt.Errorf("core: stateful property %q cannot be intrinsic", p.Name)
		}
	}
	if p.Model == "" && p.Compute == nil {
		return fmt.Errorf("core: property %q has neither model nor compute function", p.Name)
	}
	return nil
}
