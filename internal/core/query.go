package core

import (
	"fmt"
	"sort"
)

// Selector names an output column: a property of a bound instance
// (frame_output / video_output in Figures 5-7).
type Selector struct {
	Instance string
	Prop     string
}

// Sel constructs a Selector.
func Sel(instance, prop string) Selector { return Selector{Instance: instance, Prop: prop} }

// String implements fmt.Stringer.
func (s Selector) String() string { return s.Instance + "." + s.Prop }

// AggKind is the aggregation applied by video_output.
type AggKind int

// Aggregations. CountDistinct counts distinct tracks of an instance over
// the whole video ("the same object that appears in different frames will
// be regarded as one single entity", §3); ListTracks returns their ids.
const (
	AggCountDistinct AggKind = iota
	AggListTracks
)

// Aggregation is the video-level output specification.
type Aggregation struct {
	Kind     AggKind
	Instance string
}

// RelBinding binds a relation type to two declared instances of a query.
type RelBinding struct {
	Rel                 *RelationType
	LeftInst, RightInst string
}

// Query is a basic video query (§3, Figures 5-7): declared VObj
// instances, optional relation bindings, a frame-level constraint and
// output, and optionally a video-level constraint and aggregated output.
//
// Query supports inheritance: a sub-query conjoins its constraints with
// all ancestors' ("a sub-Query can reuse the constraints of all its
// super-Query to construct a stricter constraint").
type Query struct {
	name   string
	parent *Query

	instances map[string]*VObjType
	relations map[string]*RelBinding

	frameConstraint Pred
	frameOutput     []Selector
	videoConstraint Pred
	videoOutput     *Aggregation
}

// NewQuery declares a new basic query.
func NewQuery(name string) *Query {
	return &Query{
		name:      name,
		instances: make(map[string]*VObjType),
		relations: make(map[string]*RelBinding),
	}
}

// Extend declares a sub-query inheriting this query's instances,
// relations and constraints.
func (q *Query) Extend(name string) *Query {
	return &Query{
		name: name, parent: q,
		instances: make(map[string]*VObjType),
		relations: make(map[string]*RelBinding),
	}
}

// Name returns the query name.
func (q *Query) Name() string { return q.name }

// Parent returns the super-query, or nil.
func (q *Query) Parent() *Query { return q.parent }

// Use binds a VObj type under an instance name, returning q for
// chaining.
func (q *Query) Use(instance string, t *VObjType) *Query {
	q.instances[instance] = t
	return q
}

// UseRelation binds a relation between two declared instances.
func (q *Query) UseRelation(name string, rel *RelationType, leftInst, rightInst string) *Query {
	q.relations[name] = &RelBinding{Rel: rel, LeftInst: leftInst, RightInst: rightInst}
	return q
}

// Where sets the frame constraint (frame_constraint in Figure 5).
func (q *Query) Where(p Pred) *Query {
	q.frameConstraint = p
	return q
}

// FrameOutput sets the per-frame output selectors.
func (q *Query) FrameOutput(sels ...Selector) *Query {
	q.frameOutput = sels
	return q
}

// VideoWhere sets the video constraint (video_constraint in Figure 7).
func (q *Query) VideoWhere(p Pred) *Query {
	q.videoConstraint = p
	return q
}

// CountDistinct sets video_output to count distinct tracks of instance.
func (q *Query) CountDistinct(instance string) *Query {
	q.videoOutput = &Aggregation{Kind: AggCountDistinct, Instance: instance}
	return q
}

// ListTracks sets video_output to list distinct track ids of instance.
func (q *Query) ListTracks(instance string) *Query {
	q.videoOutput = &Aggregation{Kind: AggListTracks, Instance: instance}
	return q
}

// Instances returns the effective instance bindings (own shadowing
// inherited), with names sorted for determinism.
func (q *Query) Instances() map[string]*VObjType {
	out := make(map[string]*VObjType)
	chain := q.chain()
	for i := len(chain) - 1; i >= 0; i-- { // ancestors first, descendants override
		for n, t := range chain[i].instances {
			out[n] = t
		}
	}
	return out
}

// InstanceNames returns the effective instance names, sorted.
func (q *Query) InstanceNames() []string {
	m := q.Instances()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Relations returns the effective relation bindings.
func (q *Query) Relations() map[string]*RelBinding {
	out := make(map[string]*RelBinding)
	chain := q.chain()
	for i := len(chain) - 1; i >= 0; i-- {
		for n, r := range chain[i].relations {
			out[n] = r
		}
	}
	return out
}

// chain returns the query and its ancestors, youngest first.
func (q *Query) chain() []*Query {
	var out []*Query
	for cur := q; cur != nil; cur = cur.parent {
		out = append(out, cur)
	}
	return out
}

// FrameConstraint returns the effective frame constraint: the
// conjunction of all constraints on the inheritance chain.
func (q *Query) FrameConstraint() Pred {
	var ps []Pred
	chain := q.chain()
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].frameConstraint != nil {
			ps = append(ps, chain[i].frameConstraint)
		}
	}
	if len(ps) == 0 {
		return nil
	}
	return And(ps...)
}

// VideoConstraint returns the effective video constraint.
func (q *Query) VideoConstraint() Pred {
	var ps []Pred
	chain := q.chain()
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].videoConstraint != nil {
			ps = append(ps, chain[i].videoConstraint)
		}
	}
	if len(ps) == 0 {
		return nil
	}
	return And(ps...)
}

// FrameOutputSelectors returns the effective frame output (own, or the
// nearest ancestor's).
func (q *Query) FrameOutputSelectors() []Selector {
	for _, cur := range q.chain() {
		if len(cur.frameOutput) > 0 {
			return cur.frameOutput
		}
	}
	return nil
}

// VideoOutput returns the effective aggregation, or nil.
func (q *Query) VideoOutput() *Aggregation {
	for _, cur := range q.chain() {
		if cur.videoOutput != nil {
			return cur.videoOutput
		}
	}
	return nil
}

// Validate checks referential integrity: every property reference in
// constraints and outputs must resolve against a bound instance or
// relation, relation participants must be declared and type-compatible,
// and every bound VObj type must itself validate.
func (q *Query) Validate() error {
	insts := q.Instances()
	if len(insts) == 0 {
		return fmt.Errorf("core: query %s binds no VObj instances", q.name)
	}
	for name, t := range insts {
		if t == nil {
			return fmt.Errorf("core: query %s instance %q has nil type", q.name, name)
		}
		if t.Name() == "Scene" {
			continue // the scene VObj needs no detector
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("core: query %s instance %q: %w", q.name, name, err)
		}
	}
	rels := q.Relations()
	for name, rb := range rels {
		lt, ok := insts[rb.LeftInst]
		if !ok {
			return fmt.Errorf("core: query %s relation %q references unknown instance %q", q.name, name, rb.LeftInst)
		}
		rt, ok := insts[rb.RightInst]
		if !ok {
			return fmt.Errorf("core: query %s relation %q references unknown instance %q", q.name, name, rb.RightInst)
		}
		if rb.Rel.Left() != nil && !lt.IsA(rb.Rel.Left()) {
			return fmt.Errorf("core: query %s relation %q left instance %q is not a %s", q.name, name, rb.LeftInst, rb.Rel.Left().Name())
		}
		if rb.Rel.Right() != nil && !rt.IsA(rb.Rel.Right()) {
			return fmt.Errorf("core: query %s relation %q right instance %q is not a %s", q.name, name, rb.RightInst, rb.Rel.Right().Name())
		}
	}
	check := func(p Pred, where string) error {
		props, relRefs := RefsOf(p)
		for _, ref := range props {
			t, ok := insts[ref.Instance]
			if !ok {
				return fmt.Errorf("core: query %s %s references unknown instance %q", q.name, where, ref.Instance)
			}
			if _, ok := t.Prop(ref.Prop); !ok {
				return fmt.Errorf("core: query %s %s references unknown property %s.%s", q.name, where, ref.Instance, ref.Prop)
			}
		}
		for _, ref := range relRefs {
			rb, ok := rels[ref.Relation]
			if !ok {
				return fmt.Errorf("core: query %s %s references unknown relation %q", q.name, where, ref.Relation)
			}
			if _, ok := rb.Rel.Prop(ref.Prop); !ok {
				return fmt.Errorf("core: query %s %s references unknown relation property %s.%s", q.name, where, ref.Relation, ref.Prop)
			}
		}
		return nil
	}
	if err := check(q.FrameConstraint(), "frame constraint"); err != nil {
		return err
	}
	if err := check(q.VideoConstraint(), "video constraint"); err != nil {
		return err
	}
	for _, sel := range q.FrameOutputSelectors() {
		t, ok := insts[sel.Instance]
		if !ok {
			return fmt.Errorf("core: query %s frame output references unknown instance %q", q.name, sel.Instance)
		}
		if _, ok := t.Prop(sel.Prop); !ok {
			return fmt.Errorf("core: query %s frame output references unknown property %s.%s", q.name, sel.Instance, sel.Prop)
		}
	}
	if agg := q.VideoOutput(); agg != nil {
		if _, ok := insts[agg.Instance]; !ok {
			return fmt.Errorf("core: query %s video output references unknown instance %q", q.name, agg.Instance)
		}
	}
	return nil
}
