package core

import (
	"strings"
	"testing"

	"vqpy/internal/video"
)

func testPerson() *VObjType {
	return NewVObj("Person", video.ClassPerson).Detector("person_detector")
}

func redSpeedingCarQuery() *Query {
	car := testVehicle().StatefulFunc("velocity", PropBBox, 1, func(in PropInput) (any, error) {
		return 2.0, nil
	})
	return NewQuery("RedSpeedingCar").
		Use("car", car).
		Where(And(
			P("car", PropScore).Gt(0.6),
			P("car", "color").Eq("red"),
			P("car", "velocity").Gt(1.0),
		)).
		FrameOutput(Sel("car", PropTrackID), Sel("car", PropBBox))
}

func TestQueryConstruction(t *testing.T) {
	q := redSpeedingCarQuery()
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if q.Name() != "RedSpeedingCar" || q.NodeKind() != NodeBasic {
		t.Error("metadata wrong")
	}
	if got := q.InstanceNames(); len(got) != 1 || got[0] != "car" {
		t.Errorf("instances = %v", got)
	}
	if got := len(q.FrameOutputSelectors()); got != 2 {
		t.Errorf("outputs = %d", got)
	}
	if q.FrameConstraint() == nil {
		t.Error("no frame constraint")
	}
}

func TestQueryInheritance(t *testing.T) {
	base := redSpeedingCarQuery()
	strict := base.Extend("VeryFast").Where(P("car", "velocity").Gt(3))
	if err := strict.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Effective constraint must conjoin parent and child.
	cons := ConjunctsOf(strict.FrameConstraint())
	if len(cons) != 4 {
		t.Errorf("effective conjuncts = %d, want 4 (3 inherited + 1 own): %v", len(cons), strict.FrameConstraint())
	}
	// Instances and outputs inherited.
	if _, ok := strict.Instances()["car"]; !ok {
		t.Error("instances not inherited")
	}
	if len(strict.FrameOutputSelectors()) != 2 {
		t.Error("outputs not inherited")
	}
	if strict.Parent() != base {
		t.Error("Parent wrong")
	}
}

func TestQueryVideoConstraint(t *testing.T) {
	car := testVehicle()
	q := NewQuery("RightTurns").
		Use("car", car).
		VideoWhere(P("car", "direction").Eq("right")).
		CountDistinct("car")
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	agg := q.VideoOutput()
	if agg == nil || agg.Kind != AggCountDistinct || agg.Instance != "car" {
		t.Errorf("aggregation = %+v", agg)
	}
	if q.VideoConstraint() == nil {
		t.Error("video constraint missing")
	}
	q2 := NewQuery("List").Use("car", car).ListTracks("car")
	if q2.VideoOutput().Kind != AggListTracks {
		t.Error("ListTracks wrong")
	}
}

func TestQueryValidationErrors(t *testing.T) {
	car := testVehicle()
	cases := []struct {
		name string
		q    *Query
		want string
	}{
		{"no instances", NewQuery("E"), "no VObj instances"},
		{"unknown instance in pred", NewQuery("E").Use("car", car).Where(P("ghost", "color").Eq("red")), "unknown instance"},
		{"unknown property in pred", NewQuery("E").Use("car", car).Where(P("car", "ghost").Eq(1)), "unknown property"},
		{"unknown instance in output", NewQuery("E").Use("car", car).FrameOutput(Sel("ghost", PropBBox)), "unknown instance"},
		{"unknown property in output", NewQuery("E").Use("car", car).FrameOutput(Sel("car", "ghost")), "unknown property"},
		{"unknown agg instance", NewQuery("E").Use("car", car).CountDistinct("ghost"), "unknown instance"},
		{"nil type", NewQuery("E").Use("car", nil), "nil type"},
	}
	for _, c := range cases {
		err := c.q.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestQueryRelationBinding(t *testing.T) {
	person := testPerson()
	car := testVehicle()
	rel := DistanceRelation("near", person, car)
	q := NewQuery("PersonNearCar").
		Use("p", person).Use("c", car).
		UseRelation("pc", rel, "p", "c").
		Where(RP("pc", "distance").Lt(100))
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Wrong instance name.
	bad := NewQuery("Bad").Use("p", person).Use("c", car).
		UseRelation("pc", rel, "ghost", "c")
	if err := bad.Validate(); err == nil {
		t.Error("unknown relation participant accepted")
	}
	// Type-incompatible participant.
	bad2 := NewQuery("Bad2").Use("p", person).Use("c", car).
		UseRelation("pc", rel, "c", "p") // swapped
	if err := bad2.Validate(); err == nil {
		t.Error("type-incompatible relation accepted")
	}
	// Unknown relation property in predicate.
	bad3 := NewQuery("Bad3").Use("p", person).Use("c", car).
		UseRelation("pc", rel, "p", "c").
		Where(RP("pc", "ghost").Lt(1))
	if err := bad3.Validate(); err == nil {
		t.Error("unknown relation property accepted")
	}
	// Predicate over undeclared relation.
	bad4 := NewQuery("Bad4").Use("p", person).Use("c", car).
		Where(RP("nope", "distance").Lt(1))
	if err := bad4.Validate(); err == nil {
		t.Error("undeclared relation accepted")
	}
}

func TestRelationTypeAccessors(t *testing.T) {
	p, c := testPerson(), testVehicle()
	r := DistanceRelation("near", p, c)
	if r.Name() != "near" || r.Kind() != RelSpatial {
		t.Error("relation metadata wrong")
	}
	if r.Left() != p || r.Right() != c {
		t.Error("participants wrong")
	}
	if _, ok := r.Prop("distance"); !ok {
		t.Error("distance property missing")
	}
	if len(r.Properties()) != 1 {
		t.Error("Properties() wrong")
	}
	if RelSpatial.String() != "spatial" || RelTemporal.String() != "temporal" {
		t.Error("kind strings wrong")
	}
}

func TestRelationPanics(t *testing.T) {
	r := NewRelation("r", RelSpatial, testPerson(), testVehicle())
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty name", func() { r.AddProperty(&RelProperty{}) })
	expectPanic("no compute", func() { r.AddProperty(&RelProperty{Name: "x"}) })
	expectPanic("bad stateful", func() {
		r.AddProperty(&RelProperty{Name: "x", Stateful: true,
			Compute: func(in RelInput) (any, error) { return 1, nil }})
	})
	expectPanic("duplicate", func() {
		r.Func("d", 0, func(in RelInput) (any, error) { return 1, nil })
		r.Func("d", 0, func(in RelInput) (any, error) { return 1, nil })
	})
}

func TestHigherOrderCompositionRules(t *testing.T) {
	person, car := testPerson(), testVehicle()
	qPerson := NewQuery("P").Use("p", person)
	qCar := NewQuery("C").Use("c", car)
	rel := DistanceRelation("near", person, car)

	spatial, err := NewSpatialQuery("Collision", qPerson, qCar, rel, RP("near", "distance").Lt(50))
	if err != nil {
		t.Fatalf("spatial: %v", err)
	}
	if spatial.NodeKind() != NodeSpatial || spatial.NodeName() != "Collision" {
		t.Error("spatial metadata wrong")
	}

	// Rule 2: DurationQuery takes basic or spatial.
	if _, err := NewDurationQuery("Loiter", qPerson, 10); err != nil {
		t.Errorf("duration(basic): %v", err)
	}
	durSpatial, err := NewDurationQuery("LongCollision", spatial, 5)
	if err != nil {
		t.Errorf("duration(spatial): %v", err)
	}
	if _, err := NewDurationQuery("Bad", durSpatial, 5); err == nil {
		t.Error("duration(duration) accepted (rule 2 violation)")
	}

	// Rule 3: TemporalQuery takes anything, including itself.
	temporal, err := NewTemporalQuery("HitAndRun", spatial, qCar, 10)
	if err != nil {
		t.Errorf("temporal(spatial,basic): %v", err)
	}
	if _, err := NewTemporalQuery("Chain", temporal, durSpatial, 20); err != nil {
		t.Errorf("temporal(temporal,duration): %v", err)
	}

	// Invalid constructions.
	if _, err := NewSpatialQuery("Bad", nil, qCar, rel, nil); err == nil {
		t.Error("nil left accepted")
	}
	if _, err := NewSpatialQuery("Bad", qPerson, qCar, nil, nil); err == nil {
		t.Error("nil relation accepted")
	}
	tempRel := NewRelation("after", RelTemporal, nil, nil)
	if _, err := NewSpatialQuery("Bad", qPerson, qCar, tempRel, nil); err == nil {
		t.Error("temporal relation in SpatialQuery accepted")
	}
	if _, err := NewDurationQuery("Bad", nil, 1); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewDurationQuery("Bad", qPerson, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewTemporalQuery("Bad", nil, qCar, 1); err == nil {
		t.Error("nil first accepted")
	}
	if _, err := NewTemporalQuery("Bad", qPerson, qCar, -1); err == nil {
		t.Error("negative window accepted")
	}
}

func TestBasicQueriesOf(t *testing.T) {
	person, car := testPerson(), testVehicle()
	qPerson := NewQuery("P").Use("p", person)
	qCar := NewQuery("C").Use("c", car)
	rel := DistanceRelation("near", person, car)
	spatial, _ := NewSpatialQuery("S", qPerson, qCar, rel, nil)
	dur, _ := NewDurationQuery("D", spatial, 5)
	temp, _ := NewTemporalQuery("T", dur, qCar, 10)

	got := BasicQueriesOf(temp)
	if len(got) != 3 {
		t.Fatalf("basic queries = %d, want 3", len(got))
	}
	if got[0] != qPerson || got[1] != qCar || got[2] != qCar {
		t.Errorf("wrong queries: %v %v %v", got[0].Name(), got[1].Name(), got[2].Name())
	}
	if NodeBasic.String() != "basic" || NodeTemporal.String() != "temporal" || NodeKind(99).String() != "invalid" {
		t.Error("node kind strings wrong")
	}
}
