package core

import (
	"fmt"

	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// RelationKind distinguishes spatial from temporal relations (§3).
type RelationKind int

// Relation kinds.
const (
	RelSpatial RelationKind = iota
	RelTemporal
)

// String implements fmt.Stringer.
func (k RelationKind) String() string {
	if k == RelSpatial {
		return "spatial"
	}
	return "temporal"
}

// RelInput is the evaluation context for a relation property: the two
// participating objects on (for spatial relations) the same frame.
type RelInput struct {
	Frame  *video.Frame
	Raster *video.Raster

	LeftBox, RightBox         geom.BBox
	LeftTrackID, RightTrackID int
	LeftTruthID, RightTruthID int

	// LeftHistory / RightHistory hold recent boxes for stateful
	// relation properties (oldest first).
	LeftHistory, RightHistory []geom.BBox

	Env      *models.Env
	Registry *models.Registry
}

// RelComputeFunc computes a relation property value.
type RelComputeFunc func(in RelInput) (any, error)

// RelProperty is a property declared on a Relation, stateless or
// stateful just like VObj properties (§3).
type RelProperty struct {
	Name       string
	Stateful   bool
	HistoryLen int

	// Model names an interaction model (e.g. "upt") that computes the
	// property; empty for pure-Go functions.
	Model string

	Compute    RelComputeFunc
	CostHintMS float64
}

// RelationType declares a relation between two VObj types (Figures 3-4).
type RelationType struct {
	name  string
	kind  RelationKind
	left  *VObjType
	right *VObjType
	props map[string]*RelProperty
}

// NewRelation declares a relation between two VObj types.
func NewRelation(name string, kind RelationKind, left, right *VObjType) *RelationType {
	return &RelationType{
		name: name, kind: kind, left: left, right: right,
		props: make(map[string]*RelProperty),
	}
}

// Name returns the relation name.
func (r *RelationType) Name() string { return r.name }

// Kind returns whether the relation is spatial or temporal.
func (r *RelationType) Kind() RelationKind { return r.kind }

// Left returns the left participant type.
func (r *RelationType) Left() *VObjType { return r.left }

// Right returns the right participant type.
func (r *RelationType) Right() *VObjType { return r.right }

// AddProperty declares a relation property; it panics on structural
// errors.
func (r *RelationType) AddProperty(p *RelProperty) *RelationType {
	if p.Name == "" {
		panic("core: relation property with empty name")
	}
	if p.Model == "" && p.Compute == nil {
		panic(fmt.Sprintf("core: relation property %q has neither model nor compute", p.Name))
	}
	if p.Stateful && p.HistoryLen < 1 {
		panic(fmt.Sprintf("core: stateful relation property %q needs HistoryLen >= 1", p.Name))
	}
	if _, dup := r.props[p.Name]; dup {
		panic(fmt.Sprintf("core: duplicate relation property %q", p.Name))
	}
	r.props[p.Name] = p
	return r
}

// Func declares a pure-Go stateless relation property (Figure 3's
// distance).
func (r *RelationType) Func(name string, costHintMS float64, fn RelComputeFunc) *RelationType {
	return r.AddProperty(&RelProperty{Name: name, Compute: fn, CostHintMS: costHintMS})
}

// ModelProp declares a model-computed relation property (Figure 4's
// interaction via "UPT").
func (r *RelationType) ModelProp(name, model string) *RelationType {
	return r.AddProperty(&RelProperty{Name: name, Model: model})
}

// Prop resolves a relation property by name.
func (r *RelationType) Prop(name string) (*RelProperty, bool) {
	p, ok := r.props[name]
	return p, ok
}

// Properties returns the declared properties in arbitrary order.
func (r *RelationType) Properties() []*RelProperty {
	out := make([]*RelProperty, 0, len(r.props))
	for _, p := range r.props {
		out = append(out, p)
	}
	return out
}

// DistanceRelation is a ready-made spatial relation exposing the
// center-to-center pixel distance of two objects (Figure 3).
func DistanceRelation(name string, left, right *VObjType) *RelationType {
	r := NewRelation(name, RelSpatial, left, right)
	r.Func("distance", 0.05, func(in RelInput) (any, error) {
		return geom.CenterDist(in.LeftBox, in.RightBox), nil
	})
	return r
}
