package core

import (
	"fmt"
	"sort"

	"vqpy/internal/video"
)

// VObjType declares a type of video object (§3, Figure 2): its detected
// class, the detector model that finds it, its properties, and optional
// registered optimizations (specialized NNs, binary classifiers, frame
// filters — Figures 11-12). VObjType supports single inheritance:
// properties, the detector, and registered optimizations of ancestors are
// visible on descendants.
type VObjType struct {
	name     string
	class    video.Class
	parent   *VObjType
	detector string
	props    map[string]*Property

	specializedNNs []string
	objectFilters  []string // binary classifiers usable as frame filters
	frameFilters   []FrameFilterReg
}

// FrameFilterReg registers a differencing-style frame filter (Figure 12)
// with the number of previous frames it compares against.
type FrameFilterReg struct {
	Model      string
	PrevFrames int
}

// NewVObj declares a new root VObj type for the given class.
func NewVObj(name string, class video.Class) *VObjType {
	return &VObjType{
		name:  name,
		class: class,
		props: make(map[string]*Property),
	}
}

// Extend declares a sub-VObj inheriting this type's class, detector,
// properties and optimizations (§3 "Inheritance").
func (v *VObjType) Extend(name string) *VObjType {
	return &VObjType{
		name:   name,
		class:  v.class,
		parent: v,
		props:  make(map[string]*Property),
	}
}

// Name returns the type name.
func (v *VObjType) Name() string { return v.name }

// Class returns the detected object class.
func (v *VObjType) Class() video.Class { return v.class }

// Parent returns the super-VObj, or nil for roots.
func (v *VObjType) Parent() *VObjType { return v.parent }

// Detector sets the detection model name (e.g. "yolox") and returns v
// for chaining.
func (v *VObjType) Detector(model string) *VObjType {
	v.detector = model
	return v
}

// DetectorName resolves the detector, walking up the inheritance chain.
func (v *VObjType) DetectorName() string {
	for t := v; t != nil; t = t.parent {
		if t.detector != "" {
			return t.detector
		}
	}
	return ""
}

// AddProperty declares a property; it panics on structural errors, which
// are programming mistakes (mirroring how the Python DSL fails at class
// definition time).
func (v *VObjType) AddProperty(p *Property) *VObjType {
	if err := p.validate(); err != nil {
		panic(err)
	}
	if _, dup := v.props[p.Name]; dup {
		panic(fmt.Sprintf("core: duplicate property %q on %s", p.Name, v.name))
	}
	v.props[p.Name] = p
	return v
}

// StatelessModel declares a model-computed stateless property, e.g.
// color via "color_detect" (Figure 2). intrinsic marks it constant per
// object for memoization (§4.2).
func (v *VObjType) StatelessModel(name, model string, intrinsic bool) *VObjType {
	return v.AddProperty(&Property{Name: name, Model: model, Intrinsic: intrinsic})
}

// StatelessFunc declares a pure-Go stateless property with dependencies.
func (v *VObjType) StatelessFunc(name string, deps []string, costHintMS float64, fn ComputeFunc) *VObjType {
	return v.AddProperty(&Property{Name: name, DependsOn: deps, Compute: fn, CostHintMS: costHintMS})
}

// StatefulFunc declares a stateful property computed from the history of
// one dependency (Figure 2's direction, Figure 23's velocity).
func (v *VObjType) StatefulFunc(name, input string, historyLen int, fn ComputeFunc) *VObjType {
	return v.AddProperty(&Property{
		Name: name, Stateful: true, DependsOn: []string{input},
		HistoryLen: historyLen, Compute: fn,
	})
}

// RegisterSpecializedNN registers a specialized detector for this VObj
// (Figure 11); the planner may choose it over the general detector.
func (v *VObjType) RegisterSpecializedNN(model string) *VObjType {
	v.specializedNNs = append(v.specializedNNs, model)
	return v
}

// RegisterFilter registers a binary classifier usable as an early frame
// filter for this VObj (Figure 11's no_red_on_road).
func (v *VObjType) RegisterFilter(model string) *VObjType {
	v.objectFilters = append(v.objectFilters, model)
	return v
}

// RegisterFrameFilter registers a differencing-based frame filter
// (Figure 12) comparing against prevFrames previous frames.
func (v *VObjType) RegisterFrameFilter(model string, prevFrames int) *VObjType {
	v.frameFilters = append(v.frameFilters, FrameFilterReg{Model: model, PrevFrames: prevFrames})
	return v
}

// Prop resolves a declared property by name, walking the inheritance
// chain. Built-in properties return (nil, true).
func (v *VObjType) Prop(name string) (*Property, bool) {
	if IsBuiltinProp(name) {
		return nil, true
	}
	for t := v; t != nil; t = t.parent {
		if p, ok := t.props[name]; ok {
			return p, true
		}
	}
	return nil, false
}

// Properties returns all declared properties visible on this type
// (own + inherited, shadowed by name), sorted by name.
func (v *VObjType) Properties() []*Property {
	seen := make(map[string]*Property)
	for t := v; t != nil; t = t.parent {
		for name, p := range t.props {
			if _, ok := seen[name]; !ok {
				seen[name] = p
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Property, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

// SpecializedNNs returns registered specialized detectors, own before
// inherited.
func (v *VObjType) SpecializedNNs() []string {
	var out []string
	for t := v; t != nil; t = t.parent {
		out = append(out, t.specializedNNs...)
	}
	return out
}

// Filters returns registered binary-classifier filters, own before
// inherited.
func (v *VObjType) Filters() []string {
	var out []string
	for t := v; t != nil; t = t.parent {
		out = append(out, t.objectFilters...)
	}
	return out
}

// FrameFilters returns registered differencing frame filters.
func (v *VObjType) FrameFilters() []FrameFilterReg {
	var out []FrameFilterReg
	for t := v; t != nil; t = t.parent {
		out = append(out, t.frameFilters...)
	}
	return out
}

// IsA reports whether v is t or a descendant of t.
func (v *VObjType) IsA(t *VObjType) bool {
	for cur := v; cur != nil; cur = cur.parent {
		if cur == t {
			return true
		}
	}
	return false
}

// Validate checks the type is executable: it must resolve a detector and
// all property dependencies must exist.
func (v *VObjType) Validate() error {
	if v.DetectorName() == "" {
		return fmt.Errorf("core: VObj %s has no detector", v.name)
	}
	for _, p := range v.Properties() {
		for _, dep := range p.DependsOn {
			if _, ok := v.Prop(dep); !ok {
				return fmt.Errorf("core: property %s.%s depends on unknown property %q", v.name, p.Name, dep)
			}
		}
	}
	// Reject dependency cycles among declared properties.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string) error
	visit = func(name string) error {
		if IsBuiltinProp(name) {
			return nil
		}
		switch color[name] {
		case gray:
			return fmt.Errorf("core: property dependency cycle through %s.%s", v.name, name)
		case black:
			return nil
		}
		color[name] = gray
		if p, ok := v.Prop(name); ok && p != nil {
			for _, dep := range p.DependsOn {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	for _, p := range v.Properties() {
		if err := visit(p.Name); err != nil {
			return err
		}
	}
	return nil
}

// Scene is the special scene VObj (§3): it represents the whole frame and
// hosts background properties (day/night, weather) and frame filters.
func Scene() *VObjType {
	v := NewVObj("Scene", video.ClassUnknown)
	v.detector = "-" // the scene needs no detector
	return v
}
