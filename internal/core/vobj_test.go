package core

import (
	"strings"
	"testing"

	"vqpy/internal/geom"
	"vqpy/internal/video"
)

func testVehicle() *VObjType {
	return NewVObj("Vehicle", video.ClassCar).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		StatefulFunc("direction", PropCenter, 5, func(in PropInput) (any, error) {
			pts := make([]geom.Point, 0, len(in.History))
			for _, h := range in.History {
				pts = append(pts, h.(geom.Point))
			}
			return geom.ClassifyDirection(pts).String(), nil
		})
}

func TestVObjBasics(t *testing.T) {
	v := testVehicle()
	if v.Name() != "Vehicle" || v.Class() != video.ClassCar {
		t.Error("metadata wrong")
	}
	if v.DetectorName() != "yolox" {
		t.Errorf("detector = %q", v.DetectorName())
	}
	if err := v.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	p, ok := v.Prop("color")
	if !ok || p == nil || !p.Intrinsic || p.Model != "color_detect" {
		t.Errorf("color property wrong: %+v", p)
	}
	d, ok := v.Prop("direction")
	if !ok || !d.Stateful || d.HistoryLen != 5 || d.DependsOn[0] != PropCenter {
		t.Errorf("direction property wrong: %+v", d)
	}
	// Built-ins resolve with nil Property.
	if bp, ok := v.Prop(PropBBox); !ok || bp != nil {
		t.Error("builtin lookup wrong")
	}
	if _, ok := v.Prop("nope"); ok {
		t.Error("unknown property resolved")
	}
}

func TestVObjInheritance(t *testing.T) {
	v := testVehicle()
	red := v.Extend("RedCar").
		RegisterSpecializedNN("red_car_specialized").
		RegisterFilter("no_red_on_road")
	if red.DetectorName() != "yolox" {
		t.Error("detector not inherited")
	}
	if _, ok := red.Prop("color"); !ok {
		t.Error("property not inherited")
	}
	if !red.IsA(v) || v.IsA(red) {
		t.Error("IsA wrong")
	}
	if red.Parent() != v {
		t.Error("Parent wrong")
	}
	if got := red.SpecializedNNs(); len(got) != 1 || got[0] != "red_car_specialized" {
		t.Errorf("specialized NNs = %v", got)
	}
	if got := red.Filters(); len(got) != 1 || got[0] != "no_red_on_road" {
		t.Errorf("filters = %v", got)
	}
	// Shadowing: child property overrides parent's.
	child := v.Extend("Custom").StatelessFunc("color", nil, 0.1, func(in PropInput) (any, error) {
		return "always-red", nil
	})
	p, _ := child.Prop("color")
	if p.Model != "" || p.Compute == nil {
		t.Error("child property did not shadow parent")
	}
	props := child.Properties()
	names := map[string]bool{}
	for _, pr := range props {
		if names[pr.Name] {
			t.Errorf("duplicate property %q in Properties()", pr.Name)
		}
		names[pr.Name] = true
	}
}

func TestVObjFrameFilters(t *testing.T) {
	scene := Scene().RegisterFrameFilter("motion_diff", 1)
	ffs := scene.FrameFilters()
	if len(ffs) != 1 || ffs[0].Model != "motion_diff" || ffs[0].PrevFrames != 1 {
		t.Errorf("frame filters = %v", ffs)
	}
}

func TestVObjValidationErrors(t *testing.T) {
	noDetector := NewVObj("X", video.ClassCar)
	if err := noDetector.Validate(); err == nil {
		t.Error("missing detector accepted")
	}
	badDep := NewVObj("Y", video.ClassCar).Detector("yolox").
		StatelessFunc("a", []string{"missing"}, 0, func(in PropInput) (any, error) { return 1, nil })
	if err := badDep.Validate(); err == nil || !strings.Contains(err.Error(), "unknown property") {
		t.Errorf("bad dep error = %v", err)
	}
	cyc := NewVObj("Z", video.ClassCar).Detector("yolox").
		StatelessFunc("a", []string{"b"}, 0, func(in PropInput) (any, error) { return 1, nil }).
		StatelessFunc("b", []string{"a"}, 0, func(in PropInput) (any, error) { return 1, nil })
	if err := cyc.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle error = %v", err)
	}
}

func TestPropertyValidationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	v := NewVObj("V", video.ClassCar).Detector("yolox")
	expectPanic("empty name", func() {
		v.AddProperty(&Property{Compute: func(in PropInput) (any, error) { return 1, nil }})
	})
	expectPanic("builtin shadow", func() {
		v.AddProperty(&Property{Name: PropBBox, Compute: func(in PropInput) (any, error) { return 1, nil }})
	})
	expectPanic("stateful without history", func() {
		v.AddProperty(&Property{Name: "s", Stateful: true, DependsOn: []string{"x"},
			Compute: func(in PropInput) (any, error) { return 1, nil }})
	})
	expectPanic("stateful intrinsic", func() {
		v.AddProperty(&Property{Name: "s", Stateful: true, Intrinsic: true, HistoryLen: 2,
			DependsOn: []string{"x"}, Compute: func(in PropInput) (any, error) { return 1, nil }})
	})
	expectPanic("no model no compute", func() {
		v.AddProperty(&Property{Name: "empty"})
	})
	expectPanic("duplicate", func() {
		v.StatelessModel("dup", "m", false)
		v.StatelessModel("dup", "m", false)
	})
}

func TestSceneVObj(t *testing.T) {
	s := Scene()
	if s.Name() != "Scene" {
		t.Error("scene name wrong")
	}
	if s.DetectorName() == "" {
		t.Error("scene should have placeholder detector")
	}
}
