// Package cvip reimplements the comparison baseline of §5.1: CVIP (Le et
// al., CVPR'23 Workshops), the AI City Challenge track winner that
// retrieves vehicles by standardized natural-language descriptions.
//
// As the paper describes, CVIP standardizes each query into a fixed
// color-type-direction format during preprocessing and then runs a
// handcrafted pipeline that processes *all* cropped vehicle images with
// *all* attribute models on every frame — no lazy evaluation, no early
// exit, no cross-frame reuse — which is why its runtime is flat (~equal)
// across queries.
package cvip

import (
	"fmt"
	"strings"

	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// Query is the standardized color-type-direction triple (Table 1), e.g.
// "green sedan go straight".
type Query struct {
	Color video.Color
	Kind  video.VehicleKind
	Dir   geom.Direction
}

// ParseQuery parses the standardized format: "<color> <kind> <direction
// words...>".
func ParseQuery(s string) (Query, error) {
	fields := strings.Fields(strings.ToLower(strings.TrimSpace(s)))
	if len(fields) < 3 {
		return Query{}, fmt.Errorf("cvip: query %q needs color, kind and direction", s)
	}
	q := Query{
		Color: video.ParseColor(fields[0]),
		Kind:  video.ParseKind(fields[1]),
		Dir:   geom.ParseDirection(strings.Join(fields[2:], " ")),
	}
	if q.Color == video.ColorNone {
		return Query{}, fmt.Errorf("cvip: unknown color %q", fields[0])
	}
	if q.Kind == video.KindNone {
		return Query{}, fmt.Errorf("cvip: unknown vehicle kind %q", fields[1])
	}
	if q.Dir == geom.DirUnknown {
		return Query{}, fmt.Errorf("cvip: unknown direction %q", strings.Join(fields[2:], " "))
	}
	return q, nil
}

// String renders the standardized form.
func (q Query) String() string {
	return fmt.Sprintf("%s %s %s", q.Color, q.Kind, q.Dir)
}

// Result reports the frames on which a matching vehicle appears.
type Result struct {
	MatchedFrames map[int]bool
	FramesSeen    int
	VirtualMS     float64
}

// Pipeline is the handcrafted CVIP pipeline: a general detector plus the
// three attribute models.
type Pipeline struct {
	env      *models.Env
	detector models.Detector
	color    models.Classifier
	kind     models.Classifier
	dir      models.Classifier
}

// New assembles the pipeline from the registry using the same pretrained
// models VQPy uses in §5.1 (for the paper's like-for-like accuracy).
func New(env *models.Env, registry *models.Registry) (*Pipeline, error) {
	det, err := registry.Detector("yolox")
	if err != nil {
		return nil, err
	}
	color, err := registry.Classifier("color_detect")
	if err != nil {
		return nil, err
	}
	kind, err := registry.Classifier("type_detect")
	if err != nil {
		return nil, err
	}
	dir, err := registry.Classifier("direction_model")
	if err != nil {
		return nil, err
	}
	return &Pipeline{env: env, detector: det, color: color, kind: kind, dir: dir}, nil
}

// Run executes the pipeline: on every frame it detects vehicles, crops
// each one, and runs color, type and direction models on every crop,
// then applies the query filter to the fully attributed crops.
func (p *Pipeline) Run(v *video.Video, q Query) *Result {
	start := p.env.Clock.TotalMS()
	res := &Result{MatchedFrames: make(map[int]bool)}
	for i := range v.Frames {
		f := &v.Frames[i]
		p.env.Clock.StartFrame(f.Index)
		res.FramesSeen++
		dets := p.detector.Detect(p.env, f)
		raster := f.Render()
		for _, d := range dets {
			if d.Class != video.ClassCar && d.Class != video.ClassBus && d.Class != video.ClassTruck {
				continue
			}
			// The defining property of the baseline: every crop goes
			// through every model, unconditionally.
			color := p.color.Classify(p.env, f, raster, d.Box, d.TruthID)
			kind := p.kind.Classify(p.env, f, raster, d.Box, d.TruthID)
			dir := p.dir.Classify(p.env, f, raster, d.Box, d.TruthID)
			if color == q.Color.String() && kind == q.Kind.String() && dir == q.Dir.String() {
				res.MatchedFrames[f.Index] = true
			}
		}
	}
	p.env.Clock.FlushFrames()
	res.VirtualMS = p.env.Clock.TotalMS() - start
	return res
}
