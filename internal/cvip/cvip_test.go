package cvip

import (
	"math"
	"testing"

	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

func testEnv() *models.Env {
	e := models.NewEnv(42)
	e.NoBurn = true
	return e
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("green sedan go straight")
	if err != nil {
		t.Fatal(err)
	}
	if q.Color != video.ColorGreen || q.Kind != video.KindSedan || q.Dir != geom.DirStraight {
		t.Errorf("parsed = %+v", q)
	}
	q2, err := ParseQuery("black suv turn right")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Dir != geom.DirRight {
		t.Errorf("direction = %v", q2.Dir)
	}
	for _, bad := range []string{"", "red", "purple sedan go straight", "red spaceship go straight", "red sedan moonwalk"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
	if q.String() != "green sedan straight" {
		t.Errorf("String = %q", q.String())
	}
}

func TestPipelineFindsMatches(t *testing.T) {
	env := testEnv()
	p, err := New(env, models.BuiltinRegistry())
	if err != nil {
		t.Fatal(err)
	}
	v := video.CityFlow(7, 120).Generate()
	q := Query{Color: video.ColorBlack, Kind: video.KindSedan, Dir: geom.DirStraight}
	res := p.Run(v, q)
	truth := v.FramesMatching(func(o video.Object) bool {
		return o.IsVehicle() && o.Color == q.Color && o.Kind == q.Kind && o.Dir == q.Dir
	})
	if len(truth) == 0 {
		t.Skip("no ground-truth matches")
	}
	if len(res.MatchedFrames) == 0 {
		t.Fatal("CVIP found nothing")
	}
	tp := 0
	for f := range res.MatchedFrames {
		if truth[f] {
			tp++
		}
	}
	rec := float64(tp) / float64(len(truth))
	if rec < 0.7 {
		t.Errorf("recall = %.2f", rec)
	}
}

func TestFlatRuntimeAcrossQueries(t *testing.T) {
	// CVIP's runtime must be (nearly) identical regardless of the
	// query, because it always runs all models on all crops.
	v := video.CityFlow(8, 60).Generate()
	var costs []float64
	for _, qs := range []string{"green sedan go straight", "black sedan go straight", "red sedan go straight"} {
		env := testEnv()
		p, err := New(env, models.BuiltinRegistry())
		if err != nil {
			t.Fatal(err)
		}
		q, err := ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		res := p.Run(v, q)
		costs = append(costs, res.VirtualMS)
	}
	for i := 1; i < len(costs); i++ {
		if math.Abs(costs[i]-costs[0]) > 1e-6 {
			t.Errorf("CVIP cost varies across queries: %v", costs)
		}
	}
}

func TestAllModelsCharged(t *testing.T) {
	env := testEnv()
	p, _ := New(env, models.BuiltinRegistry())
	v := video.CityFlow(9, 30).Generate()
	p.Run(v, Query{Color: video.ColorRed, Kind: video.KindSedan, Dir: geom.DirStraight})
	for _, account := range []string{"yolox", "color_detect", "type_detect", "direction_model"} {
		if env.Clock.Account(account) == 0 {
			t.Errorf("model %s never charged", account)
		}
	}
	// Per-crop models must be charged equally (all crops, all models).
	if env.Clock.Account("color_detect") != env.Clock.Account("type_detect") {
		t.Error("color and type charged differently (early exit leaked in)")
	}
}

func TestMissingModels(t *testing.T) {
	reg := models.NewRegistry()
	if _, err := New(testEnv(), reg); err == nil {
		t.Error("empty registry accepted")
	}
}
