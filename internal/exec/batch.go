package exec

// Batched cross-source inference: the shared device scheduler of the
// fleet engine. When N cameras are fed in lockstep, each tick invokes
// the same detector once per source — N separate invocations on a real
// deployment's device would instead be coalesced into ONE batched call
// whose cost grows sub-linearly with batch size (the fixed per-call
// overhead — kernel launch, weight residency, pre/post-processing — is
// paid once for the whole batch).
//
// The scheduler models exactly that: detector charges issued inside a
// tick window are deferred (models.Env.Interceptor) instead of booked,
// and at flush every same-model group of K invocations is re-charged at
// the amortized per-invocation cost
//
//	amortized(ms) = ms × (alpha + (1−alpha)·K) / K
//
// where alpha is the fixed-overhead fraction of a detector call. K = 1
// degenerates to the unbatched cost, and the batched total
// ms×(alpha + (1−alpha)·K) is strictly below K×ms for K > 1. Only costs
// change: detector OUTPUTS are pure functions of (seed, model, frame),
// so per-source results stay bit-identical to isolated execution — the
// fleet crosscheck tests pin this.

import (
	"sort"
	"sync"

	"vqpy/internal/models"
)

// batchAlphaDefault is the fixed-overhead fraction of one detector
// invocation amortized across a batch. 0.6 loosely matches the ratio of
// fixed launch/residency cost to per-image compute on a T4-class device
// at the zoo's model sizes.
const batchAlphaDefault = 0.6

// pendingCharge is one deferred detector invocation.
type pendingCharge struct {
	env     *models.Env
	account string
	ms      float64
}

// BatchStats summarizes a scheduler's activity for dashboards and
// benchmark reports.
type BatchStats struct {
	// Ticks counts BeginTick calls; Invocations the detector charges
	// that went through the scheduler.
	Ticks       int64
	Invocations int64
	// Batched counts invocations that shared a tick with at least one
	// other invocation of the same model.
	Batched int64
	// MaxBatch is the largest same-model batch observed in one tick.
	MaxBatch int
	// ChargedMS is the amortized virtual time actually booked; SavedMS
	// is what batching shaved off the unbatched total.
	ChargedMS float64
	SavedMS   float64
}

// BatchScheduler coalesces same-model detector invocations issued by
// several sources within one tick into one batched device call with
// amortized per-invocation cost. It implements models.ChargeInterceptor;
// install it on each source's Env and bracket every lockstep tick with
// BeginTick / FlushTick. Outside a tick it is inert and charges flow
// through the normal path, so planner profiling and offline runs are
// never batched. Safe for concurrent use.
type BatchScheduler struct {
	mu       sync.Mutex
	alpha    float64
	eligible map[string]bool
	active   bool
	pending  []pendingCharge
	stats    BatchStats
}

// NewBatchScheduler builds a scheduler amortizing the given accounts
// (normally DetectorAccounts of the session registry). alpha <= 0 or
// >= 1 uses the default fixed-overhead fraction.
func NewBatchScheduler(alpha float64, accounts []string) *BatchScheduler {
	if alpha <= 0 || alpha >= 1 {
		alpha = batchAlphaDefault
	}
	m := make(map[string]bool, len(accounts))
	for _, a := range accounts {
		m[a] = true
	}
	return &BatchScheduler{alpha: alpha, eligible: m}
}

// DetectorAccounts lists the registry's detector model names — the
// charge accounts a batch scheduler should coalesce.
func DetectorAccounts(reg *models.Registry) []string {
	var out []string
	for _, name := range reg.Names() {
		if m, ok := reg.Get(name); ok {
			if _, isDet := m.(models.Detector); isDet {
				out = append(out, name)
			}
		}
	}
	return out
}

// Intercept implements models.ChargeInterceptor: inside a tick,
// eligible charges are deferred until FlushTick; everything else passes
// through.
func (b *BatchScheduler) Intercept(env *models.Env, account string, ms float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.active || !b.eligible[account] {
		return false
	}
	b.pending = append(b.pending, pendingCharge{env: env, account: account, ms: ms})
	return true
}

// batchedCall is one flushed group's single device call: the env that
// simulates it and the batched total to simulate.
type batchedCall struct {
	env   *models.Env
	total float64
}

// BeginTick opens a tick window: detector charges from now until
// FlushTick are coalesced. An unflushed previous tick is flushed first.
func (b *BatchScheduler) BeginTick() {
	b.mu.Lock()
	calls := b.flushLocked()
	b.active = true
	b.stats.Ticks++
	b.mu.Unlock()
	simulateCalls(calls)
}

// FlushTick closes the tick window: every same-model group of deferred
// invocations is booked at its amortized batched cost, preserving one
// clock invocation per deferred charge (counts are comparable to
// unbatched runs; only the milliseconds shrink).
func (b *BatchScheduler) FlushTick() {
	b.mu.Lock()
	calls := b.flushLocked()
	b.active = false
	b.mu.Unlock()
	simulateCalls(calls)
}

// simulateCalls performs each flushed group's single real device wait.
// It runs OUTSIDE b.mu: the wait is a proportional burn or an offload
// sleep, and holding the lock through it would stall every concurrent
// Intercept and Stats call for the duration.
func simulateCalls(calls []batchedCall) {
	for _, c := range calls {
		// One real wait for the whole group: the batch IS one device
		// call, so its real-time mirror runs once at the batched total,
		// not once per member.
		c.env.SimulateWork(c.total)
	}
}

// flushLocked books the pending tick on the members' clocks and returns
// the per-group device calls for the caller to simulate after releasing
// the lock. Callers hold b.mu.
func (b *BatchScheduler) flushLocked() []batchedCall {
	if len(b.pending) == 0 {
		return nil
	}
	groups := make(map[string][]pendingCharge)
	for _, p := range b.pending {
		groups[p.account] = append(groups[p.account], p)
	}
	// Deterministic flush order keeps per-frame ledger series stable.
	accounts := make([]string, 0, len(groups))
	for a := range groups {
		accounts = append(accounts, a)
	}
	sort.Strings(accounts)
	calls := make([]batchedCall, 0, len(accounts))
	for _, a := range accounts {
		g := groups[a]
		k := float64(len(g))
		eff := (b.alpha + (1-b.alpha)*k) / k
		if len(g) > b.stats.MaxBatch {
			b.stats.MaxBatch = len(g)
		}
		total := 0.0
		for _, p := range g {
			amortized := p.ms * eff
			p.env.ChargeClockOnly(p.account, amortized)
			total += amortized
			b.stats.Invocations++
			b.stats.ChargedMS += amortized
			b.stats.SavedMS += p.ms - amortized
			if len(g) > 1 {
				b.stats.Batched++
			}
		}
		calls = append(calls, batchedCall{env: g[0].env, total: total})
	}
	b.pending = b.pending[:0]
	return calls
}

// Stats returns a snapshot of the scheduler's accounting.
func (b *BatchScheduler) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
