package exec

import (
	"math"
	"testing"

	"vqpy/internal/models"
	"vqpy/internal/video"
)

func newBatchEnv() *models.Env {
	env := models.NewEnv(1)
	env.NoBurn = true
	return env
}

// chargeDetect invokes a zoo detector on an empty frame: exactly one
// charge of the model's fixed cost against env, through the normal
// (interceptable) charging path.
func chargeDetect(t *testing.T, env *models.Env, model string, frameIdx int) {
	t.Helper()
	det, err := models.BuiltinRegistry().Detector(model)
	if err != nil {
		t.Fatal(err)
	}
	det.Detect(env, &video.Frame{Index: frameIdx, W: 64, H: 48})
}

// TestBatchSchedulerAmortizesSameTick checks the cost model: K
// same-model invocations inside one tick cost alpha + (1-alpha)·K of
// one invocation in total, counts are preserved, and a lone invocation
// pays full price.
func TestBatchSchedulerAmortizesSameTick(t *testing.T) {
	b := NewBatchScheduler(0.6, []string{"yolox"})
	envs := []*models.Env{newBatchEnv(), newBatchEnv(), newBatchEnv()}
	for _, env := range envs {
		env.Interceptor = b
	}

	b.BeginTick()
	for _, env := range envs {
		chargeDetect(t, env, "yolox", 0)
	}
	b.FlushTick()

	// eff = (0.6 + 0.4*3)/3 = 0.6 → each clock booked 28*0.6.
	want := 28 * 0.6
	for i, env := range envs {
		if got := env.Clock.TotalMS(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("env %d charged %.3f, want %.3f", i, got, want)
		}
		if env.Clock.Invocations("yolox") != 1 {
			t.Fatalf("env %d invocations = %d, want 1", i, env.Clock.Invocations("yolox"))
		}
	}

	// A solo invocation in its own tick pays the unbatched cost.
	b.BeginTick()
	chargeDetect(t, envs[0], "yolox", 1)
	b.FlushTick()
	if got := envs[0].Clock.TotalMS(); math.Abs(got-(want+28)) > 1e-9 {
		t.Fatalf("solo tick charged %.3f total, want %.3f", got, want+28)
	}

	st := b.Stats()
	if st.Ticks != 2 || st.Invocations != 4 || st.Batched != 3 || st.MaxBatch != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.SavedMS-(3*28-3*want)) > 1e-9 {
		t.Fatalf("saved %.3f ms, want %.3f", st.SavedMS, 3*28-3*want)
	}
}

// TestBatchSchedulerInertOutsideTick checks that charges outside a tick
// window — planner profiling, offline runs — pass through unbatched.
func TestBatchSchedulerInertOutsideTick(t *testing.T) {
	b := NewBatchScheduler(0.6, []string{"yolox"})
	env := newBatchEnv()
	env.Interceptor = b
	chargeDetect(t, env, "yolox", 0)
	if got := env.Clock.TotalMS(); got != 28 {
		t.Fatalf("outside tick charged %.3f, want 28", got)
	}
	if st := b.Stats(); st.Invocations != 0 {
		t.Fatalf("scheduler should be inert outside ticks, stats %+v", st)
	}
}

// TestBatchSchedulerIgnoresIneligibleAccounts checks that a detector
// absent from the eligible set flows through even inside a tick.
func TestBatchSchedulerIgnoresIneligibleAccounts(t *testing.T) {
	b := NewBatchScheduler(0.6, []string{"yolox"})
	env := newBatchEnv()
	env.Interceptor = b
	b.BeginTick()
	chargeDetect(t, env, "yolov5s", 0)
	b.FlushTick()
	if got := env.Clock.TotalMS(); got != 7 {
		t.Fatalf("ineligible account charged %.3f, want 7", got)
	}
}

// TestDetectorAccounts checks the registry scan finds the zoo's
// detectors and only them.
func TestDetectorAccounts(t *testing.T) {
	accounts := DetectorAccounts(models.BuiltinRegistry())
	seen := make(map[string]bool, len(accounts))
	for _, a := range accounts {
		seen[a] = true
	}
	for _, want := range []string{"yolox", "yolov5s", "person_detector", "red_car_specialized"} {
		if !seen[want] {
			t.Errorf("missing detector account %q", want)
		}
	}
	if seen["color_detect"] || seen["upt"] || seen["motion_diff"] {
		t.Errorf("non-detector leaked into accounts: %v", accounts)
	}
}
