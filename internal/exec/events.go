package exec

// Event is a contiguous span of matched frames, expressed in processed
// frame positions (inclusive bounds).
type Event struct {
	Start, End int
}

// Frames returns the span length in frames.
func (e Event) Frames() int { return e.End - e.Start + 1 }

// EventsOf extracts maximal runs of true values from a matched vector —
// the event view used by the higher-order query combinators.
func EventsOf(matched []bool) []Event {
	var out []Event
	start := -1
	for i, m := range matched {
		switch {
		case m && start < 0:
			start = i
		case !m && start >= 0:
			out = append(out, Event{Start: start, End: i - 1})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, Event{Start: start, End: len(matched) - 1})
	}
	return out
}

// Duration implements the DurationQuery semantics (§3): it keeps only
// frames belonging to runs of at least minFrames consecutive matched
// frames. It returns the filtered matched vector and the qualifying
// events.
func Duration(matched []bool, minFrames int) ([]bool, []Event) {
	if minFrames < 1 {
		minFrames = 1
	}
	out := make([]bool, len(matched))
	var events []Event
	for _, ev := range EventsOf(matched) {
		if ev.Frames() < minFrames {
			continue
		}
		events = append(events, ev)
		for i := ev.Start; i <= ev.End; i++ {
			out[i] = true
		}
	}
	return out, events
}

// Sequence implements the TemporalQuery semantics (§3, Figure 8): an
// occurrence is a pair of events (a from first, b from second) where b
// starts after a ends, within windowFrames. The returned matched vector
// marks the union span of each matched pair (from a.Start to b.End); the
// returned events are the maximal coalesced spans, so overlapping pair
// combinations report as one occurrence.
func Sequence(first, second []bool, windowFrames int) ([]bool, []Event) {
	n := len(first)
	if len(second) > n {
		n = len(second)
	}
	out := make([]bool, n)
	for _, a := range EventsOf(first) {
		for _, b := range EventsOf(second) {
			if b.Start <= a.End {
				continue // not strictly after
			}
			if b.Start-a.End > windowFrames {
				continue
			}
			for i := a.Start; i <= b.End && i < n; i++ {
				out[i] = true
			}
		}
	}
	return out, EventsOf(out)
}
