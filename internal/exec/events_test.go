package exec

import (
	"testing"
	"testing/quick"

	"vqpy/internal/sim"
)

func bools(s string) []bool {
	out := make([]bool, len(s))
	for i, c := range s {
		out[i] = c == '1'
	}
	return out
}

func TestEventsOf(t *testing.T) {
	cases := []struct {
		in   string
		want []Event
	}{
		{"", nil},
		{"000", nil},
		{"111", []Event{{0, 2}}},
		{"0110", []Event{{1, 2}}},
		{"101", []Event{{0, 0}, {2, 2}}},
		{"1100111", []Event{{0, 1}, {4, 6}}},
	}
	for _, c := range cases {
		got := EventsOf(bools(c.in))
		if len(got) != len(c.want) {
			t.Errorf("EventsOf(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("EventsOf(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestEventFrames(t *testing.T) {
	if (Event{3, 7}).Frames() != 5 {
		t.Error("Frames wrong")
	}
}

func TestDuration(t *testing.T) {
	in := bools("0111001111100")
	out, events := Duration(in, 4)
	want := bools("0000001111100")
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Duration mismatch at %d: %v", i, out)
		}
	}
	if len(events) != 1 || events[0] != (Event{6, 10}) {
		t.Errorf("events = %v", events)
	}
	// minFrames below 1 is clamped.
	out2, _ := Duration(bools("10"), 0)
	if !out2[0] || out2[1] {
		t.Error("clamped Duration wrong")
	}
}

func TestSequence(t *testing.T) {
	first := bools("0110000000")
	second := bools("0000011000")
	// Gap between end of first (2) and start of second (5) is 3.
	out, events := Sequence(first, second, 3)
	if len(events) != 1 || events[0] != (Event{1, 6}) {
		t.Fatalf("events = %v", events)
	}
	for i := 1; i <= 6; i++ {
		if !out[i] {
			t.Errorf("out[%d] should be true", i)
		}
	}
	if out[0] || out[7] {
		t.Error("span leaked")
	}
	// Window too small: no match.
	_, events2 := Sequence(first, second, 2)
	if len(events2) != 0 {
		t.Errorf("window-2 events = %v", events2)
	}
	// Overlapping events do not count as sequential.
	_, events3 := Sequence(bools("0110"), bools("0110"), 5)
	if len(events3) != 0 {
		t.Errorf("overlap events = %v", events3)
	}
	// Second before first does not match.
	_, events4 := Sequence(bools("0001"), bools("1000"), 5)
	if len(events4) != 0 {
		t.Errorf("reversed events = %v", events4)
	}
}

func TestSequenceLengthMismatch(t *testing.T) {
	out, events := Sequence(bools("1"), bools("0001"), 5)
	if len(out) != 4 {
		t.Fatalf("out len = %d", len(out))
	}
	if len(events) != 1 || events[0] != (Event{0, 3}) {
		t.Errorf("events = %v", events)
	}
}

// Property: Duration output is always a subset of its input, and every
// returned event is at least minFrames long.
func TestDurationSubsetProperty(t *testing.T) {
	rng := sim.NewRNG(11)
	f := func() bool {
		n := rng.Intn(50) + 1
		in := make([]bool, n)
		for i := range in {
			in[i] = rng.Bool(0.5)
		}
		minFrames := rng.Intn(6) + 1
		out, events := Duration(in, minFrames)
		for i := range out {
			if out[i] && !in[i] {
				return false
			}
		}
		for _, ev := range events {
			if ev.Frames() < minFrames {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: EventsOf partitions the true positions exactly.
func TestEventsOfPartitionProperty(t *testing.T) {
	rng := sim.NewRNG(12)
	f := func() bool {
		n := rng.Intn(60)
		in := make([]bool, n)
		trueCount := 0
		for i := range in {
			in[i] = rng.Bool(0.4)
			if in[i] {
				trueCount++
			}
		}
		events := EventsOf(in)
		covered := 0
		prevEnd := -2
		for _, ev := range events {
			if ev.Start <= prevEnd+1 && prevEnd >= 0 {
				return false // events must be separated by a gap
			}
			for i := ev.Start; i <= ev.End; i++ {
				if !in[i] {
					return false
				}
				covered++
			}
			prevEnd = ev.End
		}
		return covered == trueCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistoryWindow(t *testing.T) {
	w := newHistoryWindow(3)
	w.push(0, "a")
	w.push(1, "b")
	w.push(2, "c")
	w.push(3, "d") // evicts "a"
	got := w.last(3)
	if len(got) != 3 || got[0] != "b" || got[2] != "d" {
		t.Errorf("last(3) = %v", got)
	}
	if got := w.last(10); len(got) != 3 {
		t.Errorf("over-length last = %v", got)
	}
	// Same-frame push overwrites.
	w.push(3, "D")
	got = w.last(1)
	if got[0] != "D" {
		t.Errorf("same-frame overwrite failed: %v", got)
	}
}

func TestMemoStore(t *testing.T) {
	m := NewMemoStore()
	if _, ok := m.Get("car", "color", 1); ok {
		t.Error("empty store hit")
	}
	m.Put("car", "color", 1, "red")
	v, ok := m.Get("car", "color", 1)
	if !ok || v != "red" {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if _, ok := m.Get("car", "color", 2); ok {
		t.Error("wrong track hit")
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d, %d", hits, misses)
	}
}

func TestSharedCacheLabels(t *testing.T) {
	c := NewSharedCache()
	box := boxAt(10, 20)
	if _, ok := c.GetLabel("m", 5, box, 1); ok {
		t.Error("empty cache hit")
	}
	c.PutLabel("m", 5, box, 1, "red")
	v, ok := c.GetLabel("m", 5, box, 1)
	if !ok || v != "red" {
		t.Errorf("GetLabel = %v %v", v, ok)
	}
	if _, ok := c.GetLabel("m", 6, box, 1); ok {
		t.Error("wrong frame hit")
	}
	if _, ok := c.GetLabel("m", 5, box, 2); ok {
		t.Error("wrong object hit: labels must be per-object")
	}
	// nil cache is a no-op.
	var nilCache *SharedCache
	if _, ok := nilCache.GetLabel("m", 5, box, 1); ok {
		t.Error("nil cache hit")
	}
	nilCache.PutLabel("m", 5, box, 1, "x") // must not panic
}
