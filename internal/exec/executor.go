package exec

import (
	"fmt"
	"sort"

	"vqpy/internal/core"
	"vqpy/internal/fault"
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/store"
	"vqpy/internal/track"
	"vqpy/internal/video"
)

// Options configures an execution.
type Options struct {
	// Env supplies the virtual clock and noise seed; required.
	Env *models.Env
	// Registry supplies models; required.
	Registry *models.Registry
	// Cache enables query-level computation reuse across executions
	// (§4.2); optional. The cache is safe to share between concurrent
	// executors (see RunAll).
	Cache *SharedCache
	// MaxFrames truncates processing (canary profiling); 0 means all.
	MaxFrames int
	// SkipHits disables hit collection (profiling runs that only need
	// cost and the matched vector).
	SkipHits bool
	// Store enables the tiered persistent result store (§4.3's reuse
	// carried across processes): detector and per-crop model outputs are
	// consulted before invoking a model — a store hit costs zero virtual
	// time — and populated on miss. Requires StoreSource; optional.
	// Profiling executors must not set it, so plan selection stays
	// independent of what happens to be persisted.
	Store *store.Store
	// StoreSource names the video / camera stream store records are
	// keyed under (frame indices alone do not identify a frame).
	StoreSource string
	// Faults is the chaos layer: a deterministic injector whose schedule
	// can fail model calls (absorbed by per-model retry with backoff,
	// then per-(model, source) circuit breakers and graceful
	// degradation; see faults.go). Optional; nil — or an injector with
	// an empty schedule — leaves every execution path bit-identical to
	// a fault-free build.
	Faults *fault.Injector
}

// ObjOut is one matched object in a frame hit, carrying the values of
// the query's output selectors.
type ObjOut struct {
	Instance string
	TrackID  int
	Box      geom.BBox
	Values   map[string]any
}

// FrameHit is one frame satisfying the frame constraint, with the output
// objects (frame_output of Figure 5).
type FrameHit struct {
	FrameIdx int
	TimeSec  float64
	Objects  []ObjOut
}

// Result is the outcome of executing a plan over a video.
type Result struct {
	Query string

	// Matched[i] reports whether processed frame i (0-based position)
	// satisfied the frame constraint.
	Matched []bool
	// FPS echoes the video frame rate for duration/window conversion.
	FPS int

	Hits []FrameHit

	// Count and TrackIDs carry the video-level aggregation output when
	// the query declares one.
	Count    int
	TrackIDs []int

	FramesProcessed int
	// DegradedFrames counts frames answered under failure-domain
	// degradation (fallback detector tier, carry-forward tracker state,
	// or an unavailable model property); their verdicts were tagged
	// Degraded as they streamed out. DegradedAt lists their 0-based
	// positions in Matched, so parity checks can compare exactly the
	// frames served healthily.
	DegradedFrames int
	DegradedAt     []int
	// VirtualMS is the virtual time charged during this execution.
	VirtualMS float64
	// MemoHits/MemoMisses report intrinsic-memo effectiveness.
	MemoHits, MemoMisses int
}

// MatchedCount returns the number of matched frames.
func (r *Result) MatchedCount() int {
	n := 0
	for _, m := range r.Matched {
		if m {
			n++
		}
	}
	return n
}

// Executor runs plans.
type Executor struct {
	opts Options
}

// NewExecutor validates options and returns an executor.
func NewExecutor(opts Options) (*Executor, error) {
	if opts.Env == nil {
		return nil, fmt.Errorf("exec: Options.Env is required")
	}
	if opts.Registry == nil {
		return nil, fmt.Errorf("exec: Options.Registry is required")
	}
	return &Executor{opts: opts}, nil
}

// trackerCostMS is the virtual cost of one lightweight tracker update
// (§4.2's Kalman-filter tracker).
const trackerCostMS = 0.3

// Run executes the plan over the whole video: the offline batch mode of
// §4.1. It is a thin driver over the streaming path — frames are grouped
// into BatchSize windows and fed through the same per-frame machinery as
// OpenStream/Feed, so both modes share one implementation.
func (e *Executor) Run(p *Plan, v *video.Video) (*Result, error) {
	st, err := e.OpenStream(p, v.FPS)
	if err != nil {
		return nil, err
	}
	limit := len(v.Frames)
	if e.opts.MaxFrames > 0 && e.opts.MaxFrames < limit {
		limit = e.opts.MaxFrames
	}
	for batchStart := 0; batchStart < limit; batchStart += p.BatchSize {
		batchEnd := batchStart + p.BatchSize
		if batchEnd > limit {
			batchEnd = limit
		}
		for i := batchStart; i < batchEnd; i++ {
			if _, err := st.Feed(&v.Frames[i]); err != nil {
				return nil, err
			}
		}
	}
	return st.Close(), nil
}

// runFrame applies every plan step to one frame, short-circuiting once
// the frame is dropped. When the plan carries an uplink cost, each
// step's charges are attributed to its device account and the frame
// transfer is charged at the first edge→server crossing.
func (e *Executor) runFrame(p *Plan, fc *FrameCtx, rs *runState, filters map[string]models.BinaryFilter, specs []windowSpec) error {
	devices := p.UplinkMS > 0
	uplinkCharged := false
	sawEdge := false
	var apply func(steps []Step) error
	apply = func(steps []Step) error {
		for _, s := range steps {
			if fc.Dropped {
				return nil
			}
			var before float64
			if devices && s.Kind != StepFused {
				dev := s.Device
				if dev == "" {
					dev = DeviceServer
				}
				if dev == DeviceEdge {
					sawEdge = true
				} else if sawEdge && !uplinkCharged {
					e.opts.Env.Clock.Charge("net:uplink", p.UplinkMS)
					uplinkCharged = true
				}
				before = e.opts.Env.Clock.TotalMS()
			}
			var err error
			switch s.Kind {
			case StepFrameFilter:
				err = e.stepFrameFilter(s, fc, filters)
			case StepDetect:
				err = e.stepDetect(s, fc)
			case StepScene:
				e.stepScene(s, fc)
			case StepTrack:
				e.stepTrack(s, fc, rs, specs)
			case StepProject:
				err = e.stepProject(p, s, fc, rs, specs)
			case StepVObjFilter:
				e.stepVObjFilter(s, fc)
			case StepRequire:
				if len(fc.AliveNodes(s.RequireInstance)) == 0 {
					fc.Dropped = true
				}
			case StepRelProject:
				err = e.stepRelProject(s, fc, rs)
			case StepRelFilter:
				e.stepRelFilter(s, fc)
			case StepFused:
				err = apply(s.Fused)
			default:
				err = fmt.Errorf("exec: unknown step kind %v", s.Kind)
			}
			if err != nil {
				return err
			}
			if devices && s.Kind != StepFused {
				dev := s.Device
				if dev == "" {
					dev = DeviceServer
				}
				delta := e.opts.Env.Clock.TotalMS() - before
				if delta > 0 {
					// Attribution only: the cost itself was already
					// charged by the models; the device account is a
					// parallel view, excluded from TotalMS by charging
					// through a secondary ledger dimension.
					e.opts.Env.Clock.ChargeShadow("device:"+dev, delta)
				}
			}
		}
		return nil
	}
	return apply(p.Steps)
}

// filterInstance returns the caller-local instance of a binary filter
// model, resolving the registry on first use. Stateful filters (e.g.
// frame differencing) carry per-stream state and must not be shared:
// registry instances that declare themselves cloneable get a fresh
// instance per stream (or per scan group on the shared-scan path).
func (e *Executor) filterInstance(filters map[string]models.BinaryFilter, name string) (models.BinaryFilter, error) {
	if bf, ok := filters[name]; ok {
		return bf, nil
	}
	m, found := e.opts.Registry.Get(name)
	if !found {
		return nil, fmt.Errorf("exec: no filter model %q", name)
	}
	bf, ok := m.(models.BinaryFilter)
	if !ok {
		return nil, fmt.Errorf("exec: model %q is not a binary filter", name)
	}
	if cl, isCloner := bf.(models.Cloner); isCloner {
		fresh, okClone := cl.CloneModel().(models.BinaryFilter)
		if !okClone {
			return nil, fmt.Errorf("exec: model %q cloned to a non-filter", name)
		}
		bf = fresh
	}
	filters[name] = bf
	return bf, nil
}

func (e *Executor) stepFrameFilter(s Step, fc *FrameCtx, filters map[string]models.BinaryFilter) error {
	bf, err := e.filterInstance(filters, s.FilterModel)
	if err != nil {
		return err
	}
	if !bf.Keep(e.opts.Env, fc.Frame) {
		fc.Dropped = true
	}
	return nil
}

// detectFrame runs a detector on one frame, converting its output to
// tracker detections (Ref carries the ground-truth id for the simulated
// models' noise channel). Both the per-query StepDetect and the shared
// scan go through this one entry, normally behind the cache — which is
// also where the persistent store plugs in: a store hit returns the
// archived detections at zero model cost, and a miss persists what the
// detector produced. Detector output depends only on (seed, model,
// frame), so one store record serves every scan group and query stream.
func (e *Executor) detectFrame(model string, f *video.Frame) ([]track.Detection, error) {
	if st, src := e.opts.Store, e.opts.StoreSource; st != nil && src != "" {
		if sdets, ok := st.GetDets(src, model, f.Index); ok {
			return trackDetsOf(sdets), nil
		}
	}
	if err := e.modelGate(model, f.Index); err != nil {
		return nil, err
	}
	det, err := e.opts.Registry.Detector(model)
	if err != nil {
		return nil, err
	}
	raw := det.Detect(e.opts.Env, f)
	out := make([]track.Detection, len(raw))
	for i, d := range raw {
		out[i] = track.Detection{Box: d.Box, Class: int(d.Class), Score: d.Score, Ref: d.TruthID}
	}
	if st, src := e.opts.Store, e.opts.StoreSource; st != nil && src != "" {
		if err := st.PutDets(src, model, f.Index, storeDetsOf(out)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// storeDetsOf converts live tracker detections to their persistent form
// (the opaque Ref pinned down to the ground-truth id it carries).
func storeDetsOf(dets []track.Detection) []store.Detection {
	out := make([]store.Detection, len(dets))
	for i, d := range dets {
		truthID, _ := d.Ref.(int)
		out[i] = store.Detection{Box: d.Box, Class: d.Class, Score: d.Score, TruthID: truthID}
	}
	return out
}

// trackDetsOf converts persisted detections back to the live form,
// restoring Ref exactly as detectFrame would have produced it.
func trackDetsOf(dets []store.Detection) []track.Detection {
	out := make([]track.Detection, len(dets))
	for i, d := range dets {
		out[i] = track.Detection{Box: d.Box, Class: d.Class, Score: d.Score, Ref: d.TruthID}
	}
	return out
}

func (e *Executor) stepDetect(s Step, fc *FrameCtx) error {
	dets, degraded, err := e.detectResilient(s.DetectModel, fc.Frame)
	if err != nil {
		return err
	}
	if degraded != "" {
		// Terminal detector failure inside a lane: degrade to whatever
		// tier answered (possibly nothing) instead of killing the stream.
		fc.degrade(degraded)
	}
	for _, bind := range s.Binds {
		for i := range dets {
			d := &dets[i]
			cls := classOf(d.Class)
			if cls != bind.Class {
				continue
			}
			node := fc.NewNode(bind.Instance)
			truthID, _ := d.Ref.(int)
			node.TrackID = -1
			node.TruthID = truthID
			node.Class = cls
			node.ClassName = cls.String()
			node.Box = d.Box
			node.Score = d.Score
		}
	}
	return nil
}

// stepScene binds the special scene VObj: one node spanning the frame.
// The scene is a single conceptual object, so it carries a constant
// track id; its declared properties (day/night, weather) are computed by
// ordinary projectors over the full-frame box. Scene properties must not
// be intrinsic — they vary per frame — which VObj validation enforces
// by convention (the library declares them non-intrinsic).
func (e *Executor) stepScene(s Step, fc *FrameCtx) {
	node := fc.NewNode(s.Instance)
	node.TrackID = 0
	node.TruthID = -1
	node.Class = video.ClassUnknown
	node.ClassName = "scene"
	node.Box = geom.BBox{X2: float64(fc.Frame.W), Y2: float64(fc.Frame.H)}
	node.Score = 1
}

// stepTrack runs the tracker for one instance over this frame's nodes,
// assigning stable TrackIDs (the motion edges of the graph model), and
// seeds history windows for built-in dependencies. Each instance must be
// tracked exactly once per frame, so the planner emits one StepTrack
// directly after each StepDetect.
func (e *Executor) stepTrack(s Step, fc *FrameCtx, rs *runState, specs []windowSpec) {
	instance := s.Instance
	nodes := fc.Nodes[instance]
	tk := rs.tracker(instance)
	dets := make([]track.Detection, 0, len(nodes))
	for _, n := range nodes {
		dets = append(dets, track.Detection{Box: n.Box, Class: int(n.Class), Score: n.Score, Ref: n})
	}
	e.opts.Env.Clock.Charge("tracker", trackerCostMS)
	for _, tr := range tk.Update(dets) {
		if tr.Misses != 0 {
			continue // not matched on this frame
		}
		n, ok := tr.Ref.(*Node)
		if !ok || n == nil {
			continue
		}
		n.TrackID = tr.ID
	}
	// Seed windows with built-in values now that TrackIDs exist.
	seedBuiltinWindows(fc, rs, specs, instance)
}

// seedBuiltinWindows pushes built-in property values of an instance's
// freshly tracked nodes into the history windows that depend on them. It
// runs after track ids are assigned — by stepTrack on the per-query
// path, by the lane bind on the shared-scan path.
func seedBuiltinWindows(fc *FrameCtx, rs *runState, specs []windowSpec, instance string) {
	for _, spec := range specs {
		if spec.instance != instance || !core.IsBuiltinProp(spec.prop) {
			continue
		}
		for _, n := range fc.Nodes[instance] {
			if n.TrackID < 0 {
				continue
			}
			if v, ok := n.Prop(spec.prop); ok {
				rs.window(instance, spec.prop, n.TrackID, spec.capacity).push(fc.Frame.Index, v)
			}
		}
	}
}

func (e *Executor) stepProject(p *Plan, s Step, fc *FrameCtx, rs *runState, specs []windowSpec) error {
	if s.Prop == nil {
		return nil // built-ins are seeded at detection
	}
	prop := s.Prop
	for _, n := range fc.AliveNodes(s.Instance) {
		if n.hasExtra(prop.Name) {
			continue
		}
		// Object-level reuse (§4.2): intrinsic values are memoized per
		// track.
		if prop.Intrinsic && !p.DisableMemo && n.TrackID >= 0 {
			if v, ok := rs.memo.Get(s.Instance, prop.Name, n.TrackID); ok {
				n.SetProp(prop.Name, v)
				e.pushWindow(fc, rs, specs, s.Instance, prop.Name, n)
				continue
			}
		}
		v, ok, err := e.computeProp(s.Instance, prop, n, fc, rs)
		if err != nil {
			return err
		}
		if !ok {
			continue // not ready (stateful warm-up)
		}
		n.SetProp(prop.Name, v)
		if prop.Intrinsic && !p.DisableMemo && n.TrackID >= 0 {
			rs.memo.Put(s.Instance, prop.Name, n.TrackID, v)
		}
		e.pushWindow(fc, rs, specs, s.Instance, prop.Name, n)
	}
	return nil
}

// pushWindow records a freshly computed property into any history window
// that depends on it.
func (e *Executor) pushWindow(fc *FrameCtx, rs *runState, specs []windowSpec, instance, prop string, n *Node) {
	if n.TrackID < 0 {
		return
	}
	for _, spec := range specs {
		if spec.instance == instance && spec.prop == prop {
			if v, ok := n.Prop(prop); ok {
				rs.window(instance, prop, n.TrackID, spec.capacity).push(fc.Frame.Index, v)
			}
		}
	}
}

// computeProp evaluates one property on one node. ok is false when the
// property is not yet computable (missing deps or history).
func (e *Executor) computeProp(instance string, prop *core.Property, n *Node, fc *FrameCtx, rs *runState) (any, bool, error) {
	if prop.Model != "" {
		inj := e.opts.Faults
		if !inj.BreakerAllow(prop.Model, e.opts.StoreSource, fc.Frame.Index) {
			// Breaker open: the property is unavailable this frame rather
			// than paying for a call known to fail.
			fc.degrade("prop:" + prop.Name)
			return nil, false, nil
		}
		v, err := e.opts.Cache.DoLabel(prop.Model, fc.Frame.Index, n.Box, n.TruthID, func() (any, error) {
			// The in-process cache missed; the persistent store is the
			// next tier — a hit observes the archived value at zero model
			// cost (it equals what the model would compute, by the
			// determinism contract), a miss runs the model and persists.
			st, src := e.opts.Store, e.opts.StoreSource
			if st != nil && src != "" {
				if v, ok := st.GetLabel(src, prop.Model, fc.Frame.Index, n.Box, n.TruthID); ok {
					return v, nil
				}
			}
			if err := e.modelGate(prop.Model, fc.Frame.Index); err != nil {
				return nil, err
			}
			m, found := e.opts.Registry.Get(prop.Model)
			if !found {
				return nil, fmt.Errorf("exec: no model %q for property %s.%s", prop.Model, instance, prop.Name)
			}
			var v any
			switch mm := m.(type) {
			case models.Classifier:
				v = mm.Classify(e.opts.Env, fc.Frame, fc.Raster(), n.Box, n.TruthID)
			case models.Embedder:
				v = mm.Embed(e.opts.Env, fc.Frame, n.Box, n.TruthID)
			case models.OCRModel:
				v = mm.ReadPlate(e.opts.Env, fc.Frame, n.Box, n.TruthID)
			default:
				return nil, fmt.Errorf("exec: model %q cannot compute a VObj property", prop.Model)
			}
			if st != nil && src != "" {
				if err := st.PutLabel(src, prop.Model, fc.Frame.Index, n.Box, n.TruthID, v); err != nil {
					return nil, err
				}
			}
			return v, nil
		})
		if err != nil {
			if fault.IsFault(err) {
				// Retry budget exhausted: count the failure toward the
				// breaker and report the property not-ready — the frame is
				// answered without it, tagged Degraded.
				inj.BreakerFailure(prop.Model, e.opts.StoreSource, fc.Frame.Index)
				inj.Count("degraded:prop:" + prop.Name)
				fc.degrade("prop:" + prop.Name)
				return nil, false, nil
			}
			return nil, false, err
		}
		inj.BreakerSuccess(prop.Model, e.opts.StoreSource)
		return v, true, nil
	}

	in := core.PropInput{
		Frame: fc.Frame, Raster: fc.Raster(),
		Box: n.Box, TrackID: n.TrackID, TruthID: n.TruthID,
		Env: e.opts.Env, Registry: e.opts.Registry,
		// SkipHits marks profiling executors; externally-effectful
		// compute functions key off it (core.PropInput.Profiling).
		Profiling: e.opts.SkipHits,
	}
	if prop.Stateful {
		if n.TrackID < 0 {
			return nil, false, nil
		}
		dep := prop.DependsOn[0]
		w := rs.window(instance, dep, n.TrackID, prop.HistoryLen+1)
		in.History = w.last(prop.HistoryLen + 1)
		if len(in.History) < 2 {
			return nil, false, nil
		}
	} else if len(prop.DependsOn) > 0 {
		in.Deps = make(map[string]any, len(prop.DependsOn))
		for _, dep := range prop.DependsOn {
			v, ok := n.Prop(dep)
			if !ok {
				return nil, false, nil
			}
			in.Deps[dep] = v
		}
	}
	if prop.CostHintMS > 0 {
		e.opts.Env.Clock.Charge("prop:"+prop.Name, prop.CostHintMS)
	}
	v, err := prop.Compute(in)
	if err == core.ErrNotReady {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("exec: property %s.%s: %w", instance, prop.Name, err)
	}
	return v, true, nil
}

// stepVObjFilter lazily prunes nodes that provably fail a
// single-instance conjunct.
func (e *Executor) stepVObjFilter(s Step, fc *FrameCtx) {
	props, _ := core.RefsOf(s.FilterPred)
	if len(props) == 0 {
		return
	}
	instance := props[0].Instance
	b := &assignment{nodes: map[string]*Node{}, fc: fc}
	for _, n := range fc.AliveNodes(instance) {
		b.nodes[instance] = n
		if v, known := core.EvalPred(s.FilterPred, b); known && !v {
			n.Alive = false
		}
	}
}

func (e *Executor) stepRelProject(s Step, fc *FrameCtx, rs *runState) error {
	rb := s.RelBind
	prop := s.RelProp
	lefts := fc.AliveNodes(rb.LeftInst)
	rights := fc.AliveNodes(rb.RightInst)
	if len(lefts) == 0 || len(rights) == 0 {
		return nil
	}
	var hoiPairs []models.HOIPair
	if prop.Model != "" {
		m, found := e.opts.Registry.Get(prop.Model)
		if !found {
			return fmt.Errorf("exec: no model %q for relation property %s.%s", prop.Model, s.Relation, prop.Name)
		}
		hoi, ok := m.(models.HOIModel)
		if !ok {
			return fmt.Errorf("exec: model %q cannot compute a relation property", prop.Model)
		}
		if fc.hoi == nil {
			fc.hoi = make(map[string][]models.HOIPair)
		}
		if cached, ok := fc.hoi[prop.Model]; ok {
			hoiPairs = cached
		} else {
			hoiPairs = hoi.DetectInteractions(e.opts.Env, fc.Frame)
			fc.hoi[prop.Model] = hoiPairs
		}
	}
	for _, l := range lefts {
		for _, r := range rights {
			if l == r {
				continue
			}
			edge := fc.Edge(s.Relation, l, r)
			if edge == nil {
				edge = &RelEdge{Relation: s.Relation, Left: l, Right: r, Props: make(map[string]any), Alive: true}
				fc.Edges = append(fc.Edges, edge)
			}
			if _, done := edge.Props[prop.Name]; done {
				continue
			}
			var v any
			if prop.Model != "" {
				v = matchHOI(hoiPairs, l.Box, r.Box)
			} else {
				in := core.RelInput{
					Frame: fc.Frame, Raster: fc.Raster(),
					LeftBox: l.Box, RightBox: r.Box,
					LeftTrackID: l.TrackID, RightTrackID: r.TrackID,
					LeftTruthID: l.TruthID, RightTruthID: r.TruthID,
					Env: e.opts.Env, Registry: e.opts.Registry,
				}
				if prop.Stateful {
					in.LeftHistory = boxHistory(rs, rb.LeftInst, l.TrackID, prop.HistoryLen+1)
					in.RightHistory = boxHistory(rs, rb.RightInst, r.TrackID, prop.HistoryLen+1)
				}
				if prop.CostHintMS > 0 {
					e.opts.Env.Clock.Charge("rel:"+prop.Name, prop.CostHintMS)
				}
				out, err := prop.Compute(in)
				if err == core.ErrNotReady {
					continue
				}
				if err != nil {
					return fmt.Errorf("exec: relation property %s.%s: %w", s.Relation, prop.Name, err)
				}
				v = out
			}
			edge.Props[prop.Name] = v
		}
	}
	return nil
}

// matchHOI finds the interaction verb whose participant boxes best match
// the node pair; empty string when none matches.
func matchHOI(pairs []models.HOIPair, left, right geom.BBox) string {
	best, bestIoU := "", 0.35 // minimum overlap to accept
	for _, p := range pairs {
		iou := (geom.IoU(p.PersonBox, left) + geom.IoU(p.ObjectBox, right)) / 2
		if iou > bestIoU {
			best, bestIoU = p.Verb, iou
		}
	}
	return best
}

// boxHistory extracts recent bbox history from the instance's window.
func boxHistory(rs *runState, instance string, trackID, n int) []geom.BBox {
	if trackID < 0 {
		return nil
	}
	w := rs.window(instance, core.PropBBox, trackID, n)
	vals := w.last(n)
	out := make([]geom.BBox, 0, len(vals))
	for _, v := range vals {
		if b, ok := v.(geom.BBox); ok {
			out = append(out, b)
		}
	}
	return out
}

func (e *Executor) stepRelFilter(s Step, fc *FrameCtx) {
	_, relRefs := core.RefsOf(s.RelPred)
	if len(relRefs) == 0 {
		return
	}
	for _, edge := range fc.Edges {
		if !edge.Alive || edge.Relation != s.Relation {
			continue
		}
		b := &assignment{
			nodes:    map[string]*Node{edge.Left.Instance: edge.Left, edge.Right.Instance: edge.Right},
			fc:       fc,
			relBinds: map[string]relParticipants{s.Relation: {left: edge.Left.Instance, right: edge.Right.Instance}},
		}
		if v, known := core.EvalPred(s.RelPred, b); known && !v {
			edge.Alive = false
		}
	}
}

// finalize evaluates the full constraint over assignments of alive nodes
// and records hits and matched tracks.
func (e *Executor) finalize(fc *FrameCtx, rs *runState, insts []string, relBinds map[string]relParticipants,
	frameCons, videoCons core.Pred, sels []core.Selector, res *Result) bool {
	if fc.Dropped {
		return false
	}
	// Enumerate assignments over instances that have alive nodes.
	type instNodes struct {
		name  string
		nodes []*Node
	}
	var dims []instNodes
	for _, inst := range insts {
		alive := fc.AliveNodes(inst)
		if len(alive) > 0 {
			dims = append(dims, instNodes{inst, alive})
		}
	}
	matched := false
	matchedNodes := make(map[*Node]bool)

	var enumerate func(i int, cur map[string]*Node)
	total := 0
	const assignmentCap = 100000
	enumerate = func(i int, cur map[string]*Node) {
		if total > assignmentCap {
			return
		}
		if i == len(dims) {
			total++
			b := &assignment{nodes: cur, fc: fc, relBinds: relBinds}
			if v, known := core.EvalPred(frameCons, b); known && v {
				matched = true
				for _, n := range cur {
					matchedNodes[n] = true
					// Without a video constraint, the frame constraint
					// decides which tracks count toward aggregation.
					if videoCons == nil {
						rs.markMatched(n.Instance, n.TrackID)
					}
				}
			}
			if videoCons != nil {
				if v, known := core.EvalPred(videoCons, b); known && v {
					for _, n := range cur {
						rs.markMatched(n.Instance, n.TrackID)
					}
				}
			}
			return
		}
		for _, n := range dims[i].nodes {
			cur[dims[i].name] = n
			enumerate(i+1, cur)
		}
		delete(cur, dims[i].name)
	}
	enumerate(0, make(map[string]*Node))

	// Video-only queries (no frame constraint) vacuously match every
	// frame; collecting hits for them is pure noise.
	if matched && !e.opts.SkipHits && !(frameCons == nil && videoCons != nil) {
		hit := FrameHit{FrameIdx: fc.Frame.Index, TimeSec: fc.Frame.TimeSec}
		for n := range matchedNodes {
			out := ObjOut{Instance: n.Instance, TrackID: n.TrackID, Box: n.Box}
			for _, sel := range sels {
				if sel.Instance != n.Instance {
					continue
				}
				if v, ok := n.Prop(sel.Prop); ok {
					if out.Values == nil {
						out.Values = make(map[string]any)
					}
					out.Values[sel.Prop] = v
				}
			}
			hit.Objects = append(hit.Objects, out)
		}
		sort.Slice(hit.Objects, func(i, j int) bool {
			if hit.Objects[i].Instance != hit.Objects[j].Instance {
				return hit.Objects[i].Instance < hit.Objects[j].Instance
			}
			return hit.Objects[i].TrackID < hit.Objects[j].TrackID
		})
		res.Hits = append(res.Hits, hit)
	}
	return matched
}

// windowSpec declares a history window the executor must maintain.
type windowSpec struct {
	instance, prop string
	capacity       int
}

// windowSpecs scans the plan for stateful projections and derives the
// windows their dependencies need.
func windowSpecs(p *Plan) []windowSpec {
	var out []windowSpec
	seen := map[windowKey]bool{}
	var walk func(steps []Step)
	walk = func(steps []Step) {
		for _, s := range steps {
			switch s.Kind {
			case StepProject:
				if s.Prop != nil && s.Prop.Stateful {
					k := windowKey{s.Instance, s.Prop.DependsOn[0], 0}
					if !seen[k] {
						seen[k] = true
						out = append(out, windowSpec{s.Instance, s.Prop.DependsOn[0], s.Prop.HistoryLen + 1})
					}
				}
			case StepRelProject:
				if s.RelProp != nil && s.RelProp.Stateful {
					for _, inst := range []string{s.RelBind.LeftInst, s.RelBind.RightInst} {
						k := windowKey{inst, core.PropBBox, 0}
						if !seen[k] {
							seen[k] = true
							out = append(out, windowSpec{inst, core.PropBBox, s.RelProp.HistoryLen + 1})
						}
					}
				}
			case StepFused:
				walk(s.Fused)
			}
		}
	}
	walk(p.Steps)
	return out
}

// classOf converts a tracker class int back to a video.Class.
func classOf(c int) video.Class { return video.Class(c) }
