package exec

import (
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/track"
	"vqpy/internal/video"
)

func boxAt(x, y float64) geom.BBox { return geom.Rect(x, y, 40, 30) }

func testEnv() *models.Env {
	e := models.NewEnv(42)
	e.NoBurn = true
	return e
}

// carType builds a Car VObj with color (intrinsic) and velocity.
func carType() *core.VObjType {
	return core.NewVObj("Car", video.ClassCar).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		AddProperty(&core.Property{
			Name: "velocity", Stateful: true, DependsOn: []string{core.PropBBox},
			HistoryLen: 1, CostHintMS: 0.05,
			Compute: func(in core.PropInput) (any, error) {
				if len(in.History) < 2 {
					return nil, core.ErrNotReady
				}
				a := in.History[len(in.History)-2].(geom.BBox)
				b := in.History[len(in.History)-1].(geom.BBox)
				return geom.CenterDist(a, b), nil
			},
		})
}

// manualPlan builds a plan without the planner: detect, track, project
// color, filter, project velocity.
func manualPlan(q *core.Query, inst string, t *core.VObjType, extraSteps ...Step) *Plan {
	colorProp, _ := t.Prop("color")
	steps := []Step{
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: inst, Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: inst},
		{Kind: StepProject, Instance: inst, Prop: colorProp},
	}
	steps = append(steps, extraSteps...)
	return &Plan{Query: q, Steps: steps, BatchSize: 4, Label: "manual"}
}

func redCarQuery(t *core.VObjType) *core.Query {
	return core.NewQuery("RedCar").
		Use("car", t).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "color").Eq("red"),
		)).
		FrameOutput(core.Sel("car", core.PropTrackID), core.Sel("car", "color"))
}

func TestExecutorRedCarEndToEnd(t *testing.T) {
	v := video.CityFlow(42, 60).Generate()
	ct := carType()
	q := redCarQuery(ct)
	ex, err := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(manualPlan(q, "car", ct), v)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesProcessed != len(v.Frames) {
		t.Errorf("processed %d/%d frames", res.FramesProcessed, len(v.Frames))
	}
	if res.MatchedCount() == 0 {
		t.Fatal("no red-car frames found")
	}
	// Compare against ground truth: frame-level F1 must be high.
	truth := v.FramesMatching(func(o video.Object) bool {
		return o.Class == video.ClassCar && o.Color == video.ColorRed
	})
	tp, fp, fn := 0, 0, 0
	for i, m := range res.Matched {
		switch {
		case m && truth[i]:
			tp++
		case m && !truth[i]:
			fp++
		case !m && truth[i]:
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("no true positives")
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	f1 := 2 * prec * rec / (prec + rec)
	if f1 < 0.8 {
		t.Errorf("red-car F1 = %.3f (p=%.2f r=%.2f)", f1, prec, rec)
	}
	// Hits carry output values.
	if len(res.Hits) == 0 {
		t.Fatal("no hits collected")
	}
	hit := res.Hits[0]
	if len(hit.Objects) == 0 {
		t.Fatal("hit without objects")
	}
	if hit.Objects[0].Values["color"] != "red" {
		t.Errorf("hit color = %v", hit.Objects[0].Values)
	}
	if res.VirtualMS <= 0 {
		t.Error("no virtual time charged")
	}
}

func TestIntrinsicMemoReducesCost(t *testing.T) {
	v := video.CityFlow(43, 60).Generate()
	run := func(disableMemo bool) (*Result, float64) {
		env := testEnv()
		ct := carType()
		q := redCarQuery(ct)
		p := manualPlan(q, "car", ct)
		p.DisableMemo = disableMemo
		ex, _ := NewExecutor(Options{Env: env, Registry: models.BuiltinRegistry()})
		res, err := ex.Run(p, v)
		if err != nil {
			t.Fatal(err)
		}
		return res, env.Clock.Account("color_detect")
	}
	memoRes, memoCost := run(false)
	vanillaRes, vanillaCost := run(true)
	if memoRes.MemoHits == 0 {
		t.Error("memo never hit")
	}
	if vanillaRes.MemoHits != 0 {
		t.Error("vanilla run used memo")
	}
	if memoCost >= vanillaCost {
		t.Errorf("memo did not reduce classifier cost: %.1f vs %.1f", memoCost, vanillaCost)
	}
	// Results should be nearly identical (memo reuses first computation).
	agree := 0
	for i := range memoRes.Matched {
		if memoRes.Matched[i] == vanillaRes.Matched[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(memoRes.Matched)); frac < 0.9 {
		t.Errorf("memo changed results too much: agreement %.2f", frac)
	}
}

func TestLazyFilterSkipsExpensiveProp(t *testing.T) {
	// Plan A: color filter before plate projection (lazy).
	// Plan B: plate projected on all nodes (eager).
	v := video.CityFlow(44, 40).Generate()
	ct := core.NewVObj("Car", video.ClassCar).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		StatelessModel("plate", "plate_ocr", true)
	colorProp, _ := ct.Prop("color")
	plateProp, _ := ct.Prop("plate")
	q := core.NewQuery("RedPlate").
		Use("car", ct).
		Where(core.And(
			core.P("car", "color").Eq("red"),
			core.P("car", "plate").Ne(""),
		))
	mkPlan := func(lazy bool) *Plan {
		steps := []Step{
			{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
			{Kind: StepTrack, Instance: "car"},
			{Kind: StepProject, Instance: "car", Prop: colorProp},
		}
		if lazy {
			steps = append(steps,
				Step{Kind: StepVObjFilter, FilterPred: core.P("car", "color").Eq("red")},
				Step{Kind: StepProject, Instance: "car", Prop: plateProp},
			)
		} else {
			steps = append(steps,
				Step{Kind: StepProject, Instance: "car", Prop: plateProp},
				Step{Kind: StepVObjFilter, FilterPred: core.P("car", "color").Eq("red")},
			)
		}
		p := &Plan{Query: q, Steps: steps, BatchSize: 4, DisableMemo: true, Label: "t"}
		return p
	}
	envLazy, envEager := testEnv(), testEnv()
	exLazy, _ := NewExecutor(Options{Env: envLazy, Registry: models.BuiltinRegistry()})
	exEager, _ := NewExecutor(Options{Env: envEager, Registry: models.BuiltinRegistry()})
	resLazy, err := exLazy.Run(mkPlan(true), v)
	if err != nil {
		t.Fatal(err)
	}
	resEager, err := exEager.Run(mkPlan(false), v)
	if err != nil {
		t.Fatal(err)
	}
	lazyOCR := envLazy.Clock.Account("plate_ocr")
	eagerOCR := envEager.Clock.Account("plate_ocr")
	if lazyOCR >= eagerOCR {
		t.Errorf("lazy OCR cost %.1f not below eager %.1f", lazyOCR, eagerOCR)
	}
	// Same frames matched (filters only prune provably failing nodes).
	for i := range resLazy.Matched {
		if resLazy.Matched[i] != resEager.Matched[i] {
			t.Fatalf("lazy changed result at frame %d", i)
		}
	}
}

func TestStatefulVelocity(t *testing.T) {
	v := video.Southampton(45, 20).Generate()
	ct := carType()
	velProp, _ := ct.Prop("velocity")
	q := core.NewQuery("Speeding").
		Use("car", ct).
		Where(core.P("car", "velocity").Gt(video.SpeedingThreshold)).
		FrameOutput(core.Sel("car", core.PropTrackID))
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "car"},
		{Kind: StepProject, Instance: "car", Prop: velProp},
	}, BatchSize: 8, Label: "vel"}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	res, err := ex.Run(p, v)
	if err != nil {
		t.Fatal(err)
	}
	truth := v.FramesMatching(func(o video.Object) bool {
		return o.IsVehicle() && o.Speed > video.SpeedingThreshold
	})
	if len(truth) == 0 {
		t.Skip("no speeders in scenario")
	}
	if res.MatchedCount() == 0 {
		t.Fatal("no speeding frames found")
	}
	// Recall against truth should be reasonable (box jitter adds noise).
	tp := 0
	for i, m := range res.Matched {
		if m && truth[i] {
			tp++
		}
	}
	if rec := float64(tp) / float64(len(truth)); rec < 0.5 {
		t.Errorf("speeding recall = %.2f", rec)
	}
}

func TestVideoAggregationCountsTracks(t *testing.T) {
	v := video.CityFlow(46, 120).Generate()
	ct := carType()
	colorProp, _ := ct.Prop("color")
	q := core.NewQuery("CountRed").
		Use("car", ct).
		VideoWhere(core.P("car", "color").Eq("red")).
		CountDistinct("car")
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "car"},
		{Kind: StepProject, Instance: "car", Prop: colorProp},
	}, BatchSize: 8, Label: "count"}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	res, err := ex.Run(p, v)
	if err != nil {
		t.Fatal(err)
	}
	truthCount := v.GroundTruthCount(func(o video.Object) bool {
		return o.Class == video.ClassCar && o.Color == video.ColorRed
	})
	if truthCount == 0 {
		t.Skip("no red cars")
	}
	if res.Count == 0 {
		t.Fatal("count = 0")
	}
	// Tracker fragmentation and noise allow some deviation.
	ratio := float64(res.Count) / float64(truthCount)
	if ratio < 0.5 || ratio > 2.5 {
		t.Errorf("count = %d, truth = %d", res.Count, truthCount)
	}
}

func TestFrameFilterDropsFrames(t *testing.T) {
	v := video.CityFlow(47, 40).Generate()
	ct := carType()
	q := redCarQuery(ct)
	colorProp, _ := ct.Prop("color")
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepFrameFilter, FilterModel: "no_red_on_road"},
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "car"},
		{Kind: StepProject, Instance: "car", Prop: colorProp},
	}, BatchSize: 4, Label: "filt"}
	env := testEnv()
	ex, _ := NewExecutor(Options{Env: env, Registry: models.BuiltinRegistry()})
	res, err := ex.Run(p, v)
	if err != nil {
		t.Fatal(err)
	}
	// The filter must have reduced detector invocations below the frame
	// count.
	detCost := env.Clock.Account("yolox")
	maxCost := float64(len(v.Frames)) * 28
	if detCost >= maxCost {
		t.Errorf("frame filter saved nothing: %.0f >= %.0f", detCost, maxCost)
	}
	if res.MatchedCount() == 0 {
		t.Error("filter killed all matches")
	}
}

func TestRelationDistanceQuery(t *testing.T) {
	v := video.Auburn(48, 60).Generate()
	pt := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	ct := core.NewVObj("Car", video.ClassCar).Detector("car_detector")
	rel := core.DistanceRelation("near", pt, ct)
	distProp, _ := rel.Prop("distance")
	rb := &core.RelBinding{Rel: rel, LeftInst: "p", RightInst: "c"}
	q := core.NewQuery("PersonNearCar").
		Use("p", pt).Use("c", ct).
		UseRelation("near", rel, "p", "c").
		Where(core.RP("near", "distance").Lt(150))
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "person_detector", Binds: []InstanceBind{{Instance: "p", Class: video.ClassPerson}}},
		{Kind: StepTrack, Instance: "p"},
		{Kind: StepDetect, DetectModel: "car_detector", Binds: []InstanceBind{{Instance: "c", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "c"},
		{Kind: StepRelProject, Relation: "near", RelBind: rb, RelProp: distProp},
		{Kind: StepRelFilter, Relation: "near", RelPred: core.RP("near", "distance").Lt(150)},
	}, BatchSize: 4, Label: "rel"}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	res, err := ex.Run(p, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedCount() == 0 {
		t.Error("no person-near-car frames")
	}
	if res.MatchedCount() == len(res.Matched) {
		t.Error("every frame matched (filter vacuous)")
	}
}

func TestSharedCacheAvoidsRedetection(t *testing.T) {
	v := video.CityFlow(49, 30).Generate()
	cache := NewSharedCache()
	env := testEnv()
	run := func() {
		ct := carType()
		q := redCarQuery(ct)
		ex, _ := NewExecutor(Options{Env: env, Registry: models.BuiltinRegistry(), Cache: cache})
		if _, err := ex.Run(manualPlan(q, "car", ct), v); err != nil {
			t.Fatal(err)
		}
	}
	run()
	costAfterFirst := env.Clock.Account("yolox")
	run()
	costAfterSecond := env.Clock.Account("yolox")
	if costAfterSecond != costAfterFirst {
		t.Errorf("second run re-ran the detector: %.0f -> %.0f", costAfterFirst, costAfterSecond)
	}
	hits, _ := cache.Stats()
	if hits == 0 {
		t.Error("cache never hit")
	}
}

func TestPlanValidation(t *testing.T) {
	ct := carType()
	q := redCarQuery(ct)
	colorProp, _ := ct.Prop("color")
	velProp, _ := ct.Prop("velocity")
	cases := []struct {
		name  string
		steps []Step
	}{
		{"project before detect", []Step{
			{Kind: StepProject, Instance: "car", Prop: colorProp},
		}},
		{"stateful without track", []Step{
			{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
			{Kind: StepProject, Instance: "car", Prop: velProp},
		}},
		{"double track", []Step{
			{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
			{Kind: StepTrack, Instance: "car"},
			{Kind: StepTrack, Instance: "car"},
		}},
		{"filter unprojected", []Step{
			{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
			{Kind: StepVObjFilter, FilterPred: core.P("car", "color").Eq("red")},
		}},
		{"require undetected", []Step{
			{Kind: StepRequire, RequireInstance: "car"},
		}},
	}
	for _, c := range cases {
		p := &Plan{Query: q, Steps: c.steps, BatchSize: 4}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid plan accepted", c.name)
		}
	}
	// Valid plan passes.
	if err := manualPlan(q, "car", ct).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	// Batch size 0 rejected.
	p := manualPlan(q, "car", ct)
	p.BatchSize = 0
	if err := p.Validate(); err == nil {
		t.Error("batch size 0 accepted")
	}
}

func TestExecutorOptionValidation(t *testing.T) {
	if _, err := NewExecutor(Options{}); err == nil {
		t.Error("missing env accepted")
	}
	if _, err := NewExecutor(Options{Env: testEnv()}); err == nil {
		t.Error("missing registry accepted")
	}
}

func TestMaxFramesTruncates(t *testing.T) {
	v := video.CityFlow(50, 60).Generate()
	ct := carType()
	q := redCarQuery(ct)
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry(), MaxFrames: 25})
	res, err := ex.Run(manualPlan(q, "car", ct), v)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesProcessed != 25 {
		t.Errorf("processed %d frames, want 25", res.FramesProcessed)
	}
}

func TestStepStrings(t *testing.T) {
	ct := carType()
	colorProp, _ := ct.Prop("color")
	steps := []Step{
		{Kind: StepFrameFilter, FilterModel: "m"},
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car"}}},
		{Kind: StepTrack, Instance: "car"},
		{Kind: StepProject, Instance: "car", Prop: colorProp},
		{Kind: StepVObjFilter, FilterPred: core.P("car", "color").Eq("red")},
		{Kind: StepRequire, RequireInstance: "car"},
	}
	for _, s := range steps {
		if s.String() == "invalid" || s.String() == "" {
			t.Errorf("step %v renders %q", s.Kind, s.String())
		}
	}
	if StepKind(99).String() != "invalid" {
		t.Error("invalid kind string")
	}
	fused := Step{Kind: StepFused, Fused: steps[3:5]}
	if fused.String() == "" {
		t.Error("fused string empty")
	}
	q := redCarQuery(ct)
	p := manualPlan(q, "car", ct)
	if p.String() == "" {
		t.Error("plan string empty")
	}
}

// TestTrackDetectionConversion guards the Detection/track round trip used
// by the cache.
func TestDetectionCacheRoundTrip(t *testing.T) {
	c := NewSharedCache()
	in := []track.Detection{
		{Box: boxAt(1, 2), Class: int(video.ClassCar), Score: 0.9, Ref: 7},
		{Box: boxAt(3, 4), Class: int(video.ClassPerson), Score: 0.8, Ref: -1},
	}
	c.PutDetections("m", 3, in)
	out, ok := c.GetDetections("m", 3)
	if !ok || len(out) != 2 {
		t.Fatalf("round trip failed: %v %v", out, ok)
	}
	if out[0].Box != in[0].Box || out[0].Class != in[0].Class || out[0].Ref.(int) != 7 {
		t.Errorf("detection mangled: %+v", out[0])
	}
	if _, ok := c.GetDetections("m", 4); ok {
		t.Error("wrong frame hit")
	}
}
