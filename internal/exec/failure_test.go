package exec

import (
	"errors"
	"strings"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// TestEmptyVideoNoCrash runs a full plan over a scenario with (almost)
// no objects.
func TestEmptyVideoNoCrash(t *testing.T) {
	sc := video.Scenario{Name: "empty", Seed: 1, FPS: 10, Duration: 5, VehiclesPerSec: 0.0001}
	v := sc.Generate()
	ct := carType()
	q := redCarQuery(ct)
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	res, err := ex.Run(manualPlan(q, "car", ct), v)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedCount() != 0 {
		t.Errorf("matched %d frames on empty video", res.MatchedCount())
	}
	if res.FramesProcessed != len(v.Frames) {
		t.Error("frames not processed")
	}
}

// TestPropertyErrorPropagates ensures compute errors abort with context.
func TestPropertyErrorPropagates(t *testing.T) {
	v := video.CityFlow(2, 5).Generate()
	boom := errors.New("boom")
	ct := core.NewVObj("Car", video.ClassCar).
		Detector("yolox").
		StatelessFunc("bad", nil, 0, func(in core.PropInput) (any, error) {
			return nil, boom
		})
	badProp, _ := ct.Prop("bad")
	q := core.NewQuery("Bad").Use("car", ct).Where(core.P("car", "bad").Eq(1))
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "car"},
		{Kind: StepProject, Instance: "car", Prop: badProp},
	}, BatchSize: 4}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	_, err := ex.Run(p, v)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "car.bad") {
		t.Errorf("error lacks property context: %v", err)
	}
}

// TestErrNotReadyIsNotFatal: properties returning ErrNotReady are
// treated as absent.
func TestErrNotReadyIsNotFatal(t *testing.T) {
	v := video.CityFlow(3, 10).Generate()
	ct := core.NewVObj("Car", video.ClassCar).
		Detector("yolox").
		StatelessFunc("never", nil, 0, func(in core.PropInput) (any, error) {
			return nil, core.ErrNotReady
		})
	prop, _ := ct.Prop("never")
	q := core.NewQuery("Never").Use("car", ct).Where(core.P("car", "never").Eq(1))
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "car"},
		{Kind: StepProject, Instance: "car", Prop: prop},
	}, BatchSize: 4}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	res, err := ex.Run(p, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedCount() != 0 {
		t.Error("not-ready property satisfied a constraint")
	}
}

// TestUnknownModelErrors covers every model-resolution failure path.
func TestUnknownModelErrors(t *testing.T) {
	v := video.CityFlow(4, 3).Generate()
	ct := core.NewVObj("Car", video.ClassCar).
		Detector("ghost_detector").
		StatelessModel("color", "ghost_classifier", false)
	colorProp, _ := ct.Prop("color")
	q := core.NewQuery("Ghost").Use("car", ct).Where(core.P("car", "color").Eq("red"))

	cases := []struct {
		name  string
		steps []Step
	}{
		{"detector", []Step{
			{Kind: StepDetect, DetectModel: "ghost_detector", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		}},
		{"classifier", []Step{
			{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
			{Kind: StepProject, Instance: "car", Prop: colorProp},
		}},
		{"frame filter", []Step{
			{Kind: StepFrameFilter, FilterModel: "ghost_filter"},
		}},
	}
	for _, c := range cases {
		p := &Plan{Query: q, Steps: c.steps, BatchSize: 2}
		ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
		if _, err := ex.Run(p, v); err == nil {
			t.Errorf("%s: missing model accepted", c.name)
		}
	}
}

// TestModelKindMismatch: a detector used as a frame filter must fail
// cleanly.
func TestModelKindMismatch(t *testing.T) {
	v := video.CityFlow(5, 3).Generate()
	ct := carType()
	q := redCarQuery(ct)
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepFrameFilter, FilterModel: "yolox"}, // wrong kind
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
	}, BatchSize: 2}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	if _, err := ex.Run(p, v); err == nil || !strings.Contains(err.Error(), "not a binary filter") {
		t.Errorf("kind mismatch error = %v", err)
	}
}

// TestOrAcrossInstances exercises the non-conjunctive path: no frame
// dropping, full assignment evaluation.
func TestOrAcrossInstances(t *testing.T) {
	v := video.Auburn(6, 30).Generate()
	pt := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	ct := core.NewVObj("Car", video.ClassCar).
		Detector("car_detector").
		StatelessModel("color", "color_detect", true)
	colorProp, _ := ct.Prop("color")
	q := core.NewQuery("PersonOrRedCar").
		Use("p", pt).Use("c", ct).
		Where(core.Or(
			core.P("p", core.PropScore).Gt(0.5),
			core.P("c", "color").Eq("red"),
		))
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "person_detector", Binds: []InstanceBind{{Instance: "p", Class: video.ClassPerson}}},
		{Kind: StepTrack, Instance: "p"},
		{Kind: StepDetect, DetectModel: "car_detector", Binds: []InstanceBind{{Instance: "c", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "c"},
		{Kind: StepProject, Instance: "c", Prop: colorProp},
	}, BatchSize: 4}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	res, err := ex.Run(p, v)
	if err != nil {
		t.Fatal(err)
	}
	truth := v.FramesMatching(func(o video.Object) bool {
		return o.Class == video.ClassPerson ||
			(o.Class == video.ClassCar && o.Color == video.ColorRed)
	})
	if len(truth) > 0 && res.MatchedCount() == 0 {
		t.Error("Or query found nothing")
	}
	// Frames with only persons must match (Or with missing car side).
	personOnly := v.FramesMatching(func(o video.Object) bool { return o.Class == video.ClassPerson })
	matchedPersonOnly := 0
	for i, m := range res.Matched {
		if m && personOnly[i] {
			matchedPersonOnly++
		}
	}
	if matchedPersonOnly == 0 {
		t.Error("person-only frames never matched the Or")
	}
}

// TestStatefulRelationProperty covers the boxHistory path.
func TestStatefulRelationProperty(t *testing.T) {
	v := video.Auburn(7, 20).Generate()
	pt := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	ct := core.NewVObj("Car", video.ClassCar).Detector("car_detector")
	rel := core.NewRelation("approach", core.RelSpatial, pt, ct)
	rel.AddProperty(&core.RelProperty{
		Name: "closing_speed", Stateful: true, HistoryLen: 2, CostHintMS: 0.05,
		Compute: func(in core.RelInput) (any, error) {
			if len(in.LeftHistory) < 2 || len(in.RightHistory) < 2 {
				return nil, core.ErrNotReady
			}
			dNow := geom.CenterDist(in.LeftHistory[len(in.LeftHistory)-1], in.RightHistory[len(in.RightHistory)-1])
			dPrev := geom.CenterDist(in.LeftHistory[0], in.RightHistory[0])
			return dPrev - dNow, nil
		},
	})
	prop, _ := rel.Prop("closing_speed")
	rb := &core.RelBinding{Rel: rel, LeftInst: "p", RightInst: "c"}
	q := core.NewQuery("Approaching").
		Use("p", pt).Use("c", ct).
		UseRelation("approach", rel, "p", "c").
		Where(core.RP("approach", "closing_speed").Gt(0))
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "person_detector", Binds: []InstanceBind{{Instance: "p", Class: video.ClassPerson}}},
		{Kind: StepTrack, Instance: "p"},
		{Kind: StepDetect, DetectModel: "car_detector", Binds: []InstanceBind{{Instance: "c", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "c"},
		{Kind: StepRelProject, Relation: "approach", RelBind: rb, RelProp: prop},
	}, BatchSize: 4}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	res, err := ex.Run(p, v)
	if err != nil {
		t.Fatal(err)
	}
	_ = res // mechanics only: windows fill, no panic, edges evaluated
}

// TestRelProjectModelMismatch: a classifier used as a relation model
// must fail cleanly.
func TestRelProjectModelMismatch(t *testing.T) {
	v := video.VCOCO(8, 5).Generate()
	pt := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	bt := core.NewVObj("Ball", video.ClassBall).Detector("yolox")
	rel := core.NewRelation("pb", core.RelSpatial, pt, bt).ModelProp("interaction", "color_detect")
	prop, _ := rel.Prop("interaction")
	rb := &core.RelBinding{Rel: rel, LeftInst: "p", RightInst: "b"}
	q := core.NewQuery("Bad").
		Use("p", pt).Use("b", bt).
		UseRelation("pb", rel, "p", "b").
		Where(core.RP("pb", "interaction").Eq("hit"))
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "person_detector", Binds: []InstanceBind{{Instance: "p", Class: video.ClassPerson}}},
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "b", Class: video.ClassBall}}},
		{Kind: StepRelProject, Relation: "pb", RelBind: rb, RelProp: prop},
	}, BatchSize: 4}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	_, err := ex.Run(p, v)
	// The error fires only when both a person and a ball are detected
	// on one frame; V-COCO stills guarantee that quickly.
	if err == nil {
		t.Skip("no frame with both participants (scenario-dependent)")
	}
	if !strings.Contains(err.Error(), "cannot compute a relation property") {
		t.Errorf("mismatch error = %v", err)
	}
}

// TestHOIInteractionQuery runs the Figure 4 relation end to end.
func TestHOIInteractionQuery(t *testing.T) {
	v := video.VCOCO(9, 200).Generate()
	pt := core.NewVObj("Person", video.ClassPerson).Detector("yolox")
	bt := core.NewVObj("Ball", video.ClassBall).Detector("yolox")
	rel := core.NewRelation("pb", core.RelSpatial, pt, bt).ModelProp("interaction", "upt")
	prop, _ := rel.Prop("interaction")
	rb := &core.RelBinding{Rel: rel, LeftInst: "p", RightInst: "b"}
	q := core.NewQuery("Hitting").
		Use("p", pt).Use("b", bt).
		UseRelation("pb", rel, "p", "b").
		Where(core.RP("pb", "interaction").Eq("hit"))
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{
			{Instance: "p", Class: video.ClassPerson}, {Instance: "b", Class: video.ClassBall},
		}},
		{Kind: StepTrack, Instance: "p"},
		{Kind: StepTrack, Instance: "b"},
		{Kind: StepRelProject, Relation: "pb", RelBind: rb, RelProp: prop},
		{Kind: StepRelFilter, Relation: "pb", RelPred: core.RP("pb", "interaction").Eq("hit")},
	}, BatchSize: 4}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	res, err := ex.Run(p, v)
	if err != nil {
		t.Fatal(err)
	}
	truth := v.FramesMatching(func(o video.Object) bool { return o.HittingBall })
	if len(truth) == 0 {
		t.Skip("no interactions")
	}
	c := 0
	for i, m := range res.Matched {
		if m && truth[i] {
			c++
		}
	}
	if c == 0 {
		t.Error("no true interaction frames found")
	}
}
