package exec

// Failure-domain hardening of the execution layer: the per-model retry
// loop that absorbs transient injected faults, and the breaker-guarded
// fallback ladder detectors degrade down when faults persist.
//
// The cost model is explicit and lives on the sim.Clock: every failed
// attempt charges what the failure cost (an error is detected after a
// nominal round-trip, a timeout burns its full deadline budget) plus
// exponential backoff between attempts, under dedicated fault:*
// accounts so chaos runs show exactly where the virtual time went. The
// charges bypass the ChargeInterceptor chain on purpose — a fleet batch
// scheduler coalesces model work, and a failed call is not model work
// it could have shared.
//
// Determinism: injected fault decisions are pure functions of
// (schedule, target, frame), and model outputs are pure functions of
// (seed, model, frame, object) — so when a retry succeeds it yields the
// exact output the un-faulted run produced, which is the mechanism
// behind the chaos benchmark's verdict-parity guarantee on recoverable
// faults. With no injector every function here reduces to the plain
// call path.

import (
	"vqpy/internal/fault"
	"vqpy/internal/models"
	"vqpy/internal/track"
	"vqpy/internal/video"
)

const (
	// maxModelAttempts bounds the per-invocation retry loop (first try
	// plus retries).
	maxModelAttempts = 3
	// defaultTimeoutMS is the deadline budget burned by an injected
	// timeout whose rule does not set one.
	defaultTimeoutMS = 40
	// failDetectMS is the nominal cost of detecting an outright model
	// error (a failed round-trip, not a full inference).
	failDetectMS = 1
	// backoffBaseMS is the first retry backoff; it doubles per attempt.
	backoffBaseMS = 4
)

// DegradedUnavailable is the degradation provenance when no detector
// tier could answer: the scan carries the previous frame's tracker
// state forward.
const DegradedUnavailable = "unavailable"

// chargeFault charges failure-path virtual time directly on the clock
// (and mirrors it as CPU burn when enabled), bypassing interceptors.
func (e *Executor) chargeFault(account string, ms float64) {
	e.opts.Env.Clock.Charge(account, ms)
	e.opts.Env.SimulateWork(ms)
}

// modelGate runs the injector's fault decision for one model invocation
// at one frame, absorbing recoverable faults with charged retries. A
// nil return means the caller may invoke the model now (and, for a
// recoverable fault, the attempt ordinal that succeeded saw the exact
// same world — the output is the healthy one). A *fault.Fault return
// means the retry budget is exhausted: the caller degrades.
func (e *Executor) modelGate(model string, frame int) error {
	inj := e.opts.Faults
	if inj == nil || !inj.Enabled() {
		return nil
	}
	for attempt := 0; attempt < maxModelAttempts; attempt++ {
		flt := inj.ModelFault(model, frame, attempt)
		if flt == nil {
			return nil
		}
		switch flt.Kind {
		case fault.KindModelTimeout:
			d := flt.DeadlineMS
			if d <= 0 {
				d = defaultTimeoutMS
			}
			e.chargeFault("fault:timeout:"+model, d)
		default:
			e.chargeFault("fault:error:"+model, failDetectMS)
		}
		if attempt+1 == maxModelAttempts {
			return flt
		}
		e.chargeFault("fault:backoff:"+model, float64(backoffBaseMS*(int(1)<<attempt)))
	}
	return nil
}

// detectResilient runs a detector behind the full hardening ladder:
// breaker gate → primary (with modelGate retries inside detectFrame) →
// cheaper fallback tier → unavailable. It returns the detections and a
// degradation provenance: "" for a healthy primary answer, the serving
// model's tag for a fallback answer, DegradedUnavailable when no tier
// answered (dets nil; the caller carries state forward). Non-fault
// errors propagate untouched — the chaos layer must never hide a real
// engine bug.
func (e *Executor) detectResilient(model string, f *video.Frame) ([]track.Detection, string, error) {
	inj := e.opts.Faults
	source := e.opts.StoreSource
	run := func(name string) ([]track.Detection, error) {
		return e.opts.Cache.DoDetections(name, f.Index, func() ([]track.Detection, error) {
			return e.detectFrame(name, f)
		})
	}
	if inj.BreakerAllow(model, source, f.Index) {
		dets, err := run(model)
		if err == nil {
			inj.BreakerSuccess(model, source)
			return dets, "", nil
		}
		if !fault.IsFault(err) {
			return nil, "", err
		}
		inj.BreakerFailure(model, source, f.Index)
	}
	if fb := models.FallbackDetector(model); fb != "" && inj.BreakerAllow(fb, source, f.Index) {
		dets, err := run(fb)
		if err == nil {
			inj.BreakerSuccess(fb, source)
			inj.Count("degraded:fallback:" + model)
			return dets, "fallback:" + fb, nil
		}
		if !fault.IsFault(err) {
			return nil, "", err
		}
		inj.BreakerFailure(fb, source, f.Index)
	}
	inj.Count("degraded:unavailable:" + model)
	return nil, DegradedUnavailable, nil
}

// degrade marks the frame context as answered under degradation,
// keeping the first provenance tag (later degradations on the same
// frame are secondary).
func (fc *FrameCtx) degrade(by string) {
	fc.Degraded = true
	if fc.DegradedBy == "" {
		fc.DegradedBy = by
	}
}
