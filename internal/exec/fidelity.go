package exec

// Fidelity replay: the execution half of fidelity-aware planning
// (DESIGN.md §12). A source archived at a reduced fidelity — strided
// frames, downsampled decode, cheaper detector — holds scan records
// under a fidelity-decorated signature; this file answers a query's
// full-fidelity plan from those records, replaying each archived
// aligned frame through the plan's lane at bookkeeping cost, and feeds
// the uncovered residual window [covered, n) live at full fidelity.
// The replay is deliberately cross-fidelity: the archived detector is
// the tier's, not the plan's, which is exactly the accuracy-for-cost
// trade the planner priced against the tier's calibrated accuracy
// curve before choosing it. Soundness of frame-skipping rests on the
// same gate as index verification (IndexVerifiable): the residual
// operators must be per-frame pure.

import (
	"fmt"

	"vqpy/internal/track"
	"vqpy/internal/video"
)

// FidelityReplayMS is the per-replayed-frame bookkeeping charge
// (account "fidelity_replay"), keeping archive-served fidelity work
// visible on the ledger the ≥5× cost gate (E22) reads. Exported
// because it is the replay-side unit of the planner's fidelity cost
// model (plan.FidelityCostMS) — the two must price a replayed frame
// identically or the chosen tier would not be the cheapest one run.
const FidelityReplayMS = 0.05

// FidelityReplayStats reports how a fidelity replay answered its
// frames.
type FidelityReplayStats struct {
	// ReplayedFrames counts aligned frames served from the tier's
	// archive at bookkeeping cost.
	ReplayedFrames int
	// DegradedFrames counts aligned frames whose archived records were
	// missing or unreadable (read faults, eviction races): each was
	// answered by a live full-fidelity detector invocation instead, so
	// faults cost money, never accuracy.
	DegradedFrames int
	// ResidualFrames counts frames of [covered, n) fed live at full
	// fidelity.
	ResidualFrames int
}

// RunFidelityReplay executes plan p over [0, n) using a reduced-
// fidelity archive for the covered prefix: every stride-aligned frame
// below covered is replayed from the records archived under fidKey
// (scan records) and tierDetect (detection records), and the residual
// [covered, n) is fed live at full fidelity with the archive off
// limits both ways (the tier's records must not leak into — or be
// overwritten by — the full-fidelity pass).
//
// The returned Result's Matched/Hits are in processed order: one entry
// per aligned frame (ascending), then one per residual frame. Callers
// (plan.RunFidelity) expand this onto the full frame axis with the
// fidelity's carry-forward rule. Track ids on replayed frames are the
// tier archive's from-zero ids; residual frames track from a cold
// start — per-frame verdicts, which is all the fidelity path promises,
// do not depend on the numbering.
//
// Requirements: a bound store (Options.Store), an IndexVerifiable plan
// (shareable prefix, per-frame-pure residual), stride >= 1.
func (e *Executor) RunFidelityReplay(p *Plan, src video.FrameSource, fidKey, tierDetect string, stride, covered, n int) (*Result, FidelityReplayStats, error) {
	var stats FidelityReplayStats
	if stride < 1 {
		return nil, stats, fmt.Errorf("exec: RunFidelityReplay stride %d < 1", stride)
	}
	if !IndexVerifiable(p) {
		return nil, stats, fmt.Errorf("exec: plan %q is not fidelity-replayable (stateful residual or non-shareable scan)", p.Label)
	}
	m, err := e.OpenMux([]*Plan{p}, src.SourceFPS())
	if err != nil {
		return nil, stats, err
	}
	m.mu.Lock()
	if m.src == nil {
		m.src = src
	}
	if m.store == nil {
		m.mu.Unlock()
		return nil, stats, fmt.Errorf("exec: RunFidelityReplay requires a bound store (Options.Store)")
	}
	l := m.lanes[0]
	if l.group == nil {
		m.mu.Unlock()
		return nil, stats, fmt.Errorf("exec: RunFidelityReplay lane has no scan group")
	}
	if err := m.replayFidelityFrames(l, fidKey, tierDetect, stride, covered, &stats); err != nil {
		m.mu.Unlock()
		return nil, stats, err
	}
	// The residual feed below must not consult the archive: the
	// full-fidelity group key may hold records from other passes whose
	// from-zero ids do not match this lane's replay-local tracker, and
	// persisting this pass's cross-start ids would poison them. Wrapped
	// mode is exactly that contract (see Feed).
	m.wrapped = true
	m.mu.Unlock()
	for f := covered; f < n; f++ {
		if _, err := m.Feed(src.FrameAt(f)); err != nil {
			return nil, stats, err
		}
		stats.ResidualFrames++
	}
	return m.Close()[0], stats, nil
}

// replayFidelityFrames replays the stride-aligned frames of
// [0, covered) from the tier archive through the lane, degrading any
// unreadable frame to one live full-fidelity detector invocation.
// Callers hold m.mu.
func (m *MuxStream) replayFidelityFrames(l *muxLane, fidKey, tierDetect string, stride, covered int, stats *FidelityReplayStats) error {
	g := l.group
	clock := m.e.opts.Env.Clock
	var cdets []track.Detection
	for f := 0; f < covered; f += stride {
		fr := m.src.FrameAt(f)
		before := clock.TotalMS()
		rec, release, ok := m.store.GetScanRef(m.source, fidKey, f)
		if ok {
			err := func() error {
				defer release()
				if rec.Dropped {
					return m.laneReplayFrame(l, fr, true, nil, nil)
				}
				sdets, have := m.store.GetDets(m.source, tierDetect, f)
				if !have {
					return errFidelityMiss
				}
				cdets = cdets[:0]
				for i := range sdets {
					if classOf(sdets[i].Class) == l.sig.Class {
						cdets = append(cdets, track.Detection{
							Box: sdets[i].Box, Class: sdets[i].Class, Score: sdets[i].Score, Ref: sdets[i].TruthID,
						})
					}
				}
				ids, have := rec.IDs[int(l.sig.Class)]
				if !have || len(ids) != len(cdets) {
					return errFidelityMiss
				}
				if err := m.laneReplayFrame(l, fr, false, cdets, ids); err != nil {
					return err
				}
				m.e.opts.Env.ChargeClockOnly("fidelity_replay", FidelityReplayMS)
				stats.ReplayedFrames++
				return nil
			}()
			if err == nil {
				l.virtualMS += clock.TotalMS() - before
				continue
			}
			if err != errFidelityMiss {
				return err
			}
		}
		// Archive miss (never written, evicted, or failed by an injected
		// read fault): answer the frame live at full fidelity. The query's
		// own detector runs at full cost — a faulted tier degrades to
		// money, not accuracy — and the output binds with replay-local ids
		// (no tracker state exists to consult mid-replay).
		det, err := m.e.opts.Registry.Detector(g.detect)
		if err != nil {
			return err
		}
		live := det.Detect(m.e.opts.Env, fr)
		cdets = cdets[:0]
		for i := range live {
			if live[i].Class == l.sig.Class {
				cdets = append(cdets, track.Detection{
					Box: live[i].Box, Class: int(live[i].Class), Score: live[i].Score, Ref: live[i].TruthID,
				})
			}
		}
		ids := make([]int, len(cdets))
		for i := range ids {
			ids[i] = -1
		}
		if err := m.laneReplayFrame(l, fr, false, cdets, ids); err != nil {
			return err
		}
		stats.DegradedFrames++
		l.virtualMS += clock.TotalMS() - before
	}
	return nil
}

// errFidelityMiss is the internal signal that one replayed frame's
// archive records were unreadable; the caller degrades that frame to a
// live invocation instead of failing the replay.
var errFidelityMiss = fmt.Errorf("exec: fidelity archive miss")
