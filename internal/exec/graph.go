package exec

import (
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// Node is one VObj occurrence on one frame — a node of the §4.1 graph
// data model. Motion edges are represented implicitly by shared TrackID
// across frames; spatial-relation edges are RelEdge values.
type Node struct {
	Instance string
	TrackID  int
	TruthID  int
	Class    video.Class
	Box      geom.BBox
	Score    float64

	// Props holds computed property values (built-ins seeded at
	// creation, declared properties filled by projectors).
	Props map[string]any

	// Alive is cleared by object filters; dead nodes are skipped by
	// later operators but remain in the graph for diagnostics.
	Alive bool
}

// RelEdge is a spatial-relation edge between two nodes on a frame.
type RelEdge struct {
	Relation    string
	Left, Right *Node
	Props       map[string]any
	Alive       bool
}

// FrameCtx is the per-frame slice of the graph flowing between
// operators.
type FrameCtx struct {
	Frame   *video.Frame
	Dropped bool

	// Nodes maps instance name → occurrences on this frame.
	Nodes map[string][]*Node

	// Edges lists spatial-relation edges computed so far.
	Edges []*RelEdge

	raster *video.Raster
	hoi    map[string][]models.HOIPair // model name → cached per-frame HOI output
}

// Raster renders the frame once and caches it for the lifetime of the
// context.
func (fc *FrameCtx) Raster() *video.Raster {
	if fc.raster == nil {
		fc.raster = fc.Frame.Render()
	}
	return fc.raster
}

// AliveNodes returns the alive nodes of an instance.
func (fc *FrameCtx) AliveNodes(instance string) []*Node {
	nodes := fc.Nodes[instance]
	out := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if n.Alive {
			out = append(out, n)
		}
	}
	return out
}

// Edge returns the alive edge of the given relation connecting l and r,
// or nil.
func (fc *FrameCtx) Edge(relation string, l, r *Node) *RelEdge {
	for _, e := range fc.Edges {
		if e.Alive && e.Relation == relation && e.Left == l && e.Right == r {
			return e
		}
	}
	return nil
}

// Batch is the unit flowing through the operator pipeline: a window of
// consecutive frames (§4.1: "the executor generates frame batches ...
// and executes the pipeline on a per-batch basis").
type Batch struct {
	Frames []*FrameCtx
}

// assignment binds query instances to concrete nodes for predicate
// evaluation. It implements core.Binding: instance properties resolve
// through the assigned node, relation properties through the frame's
// spatial-relation edges.
type assignment struct {
	nodes map[string]*Node
	fc    *FrameCtx
	// relBinds maps relation name → participant instance names, needed
	// to locate the edge for a relation property lookup.
	relBinds map[string]relParticipants
}

type relParticipants struct{ left, right string }

// Prop implements core.Binding.
func (a *assignment) Prop(instance, prop string) (any, bool) {
	n, ok := a.nodes[instance]
	if !ok || n == nil {
		return nil, false
	}
	v, ok := n.Props[prop]
	return v, ok
}

// RelProp implements core.Binding.
func (a *assignment) RelProp(relation, prop string) (any, bool) {
	parts, ok := a.relBinds[relation]
	if !ok {
		return nil, false
	}
	l, r := a.nodes[parts.left], a.nodes[parts.right]
	if l == nil || r == nil {
		return nil, false
	}
	e := a.fc.Edge(relation, l, r)
	if e == nil {
		return nil, false
	}
	v, ok := e.Props[prop]
	return v, ok
}
