package exec

import (
	"vqpy/internal/core"
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// Node is one VObj occurrence on one frame — a node of the §4.1 graph
// data model. Motion edges are represented implicitly by shared TrackID
// across frames; spatial-relation edges are RelEdge values.
//
// Built-in properties (bbox, center, score, track_id, class, frame_idx)
// live directly in struct fields and are resolved by Prop without any
// map lookup; only declared (extrinsic) properties go through the lazily
// allocated extra map. The seed allocated a six-entry map[string]any per
// detection per frame, which dominated the per-frame allocation profile.
type Node struct {
	Instance string
	TrackID  int
	TruthID  int
	Class    video.Class
	Box      geom.BBox
	Score    float64

	// FrameIdx is the index of the frame this occurrence belongs to.
	FrameIdx int
	// ClassName is the string form of the node's class ("scene" for the
	// scene VObj, which has no detector class).
	ClassName string

	// extra holds declared property values (filled by projectors).
	// Built-ins never land here; see Prop.
	extra map[string]any

	// Alive is cleared by object filters; dead nodes are skipped by
	// later operators but remain in the graph for diagnostics.
	Alive bool
}

// Prop returns the value of a property on this node: built-ins from the
// struct fields, declared properties from the projector-filled table.
func (n *Node) Prop(name string) (any, bool) {
	switch name {
	case core.PropBBox:
		return n.Box, true
	case core.PropCenter:
		return n.Box.Center(), true
	case core.PropScore:
		return n.Score, true
	case core.PropTrackID:
		return n.TrackID, true
	case core.PropClass:
		return n.ClassName, true
	case core.PropFrameIdx:
		return n.FrameIdx, true
	}
	v, ok := n.extra[name]
	return v, ok
}

// SetProp records a declared property value. Built-in names must not be
// set here; they are struct fields (VObj validation already rejects
// declared properties with built-in names).
func (n *Node) SetProp(name string, v any) {
	if n.extra == nil {
		n.extra = make(map[string]any, 4)
	}
	n.extra[name] = v
}

// hasExtra reports whether a declared property has been computed.
func (n *Node) hasExtra(name string) bool {
	_, ok := n.extra[name]
	return ok
}

// RelEdge is a spatial-relation edge between two nodes on a frame.
type RelEdge struct {
	Relation    string
	Left, Right *Node
	Props       map[string]any
	Alive       bool
}

// nodeChunk is the node arena's allocation granularity.
const nodeChunk = 32

// nodeArena hands out Node values from chunked slabs so a stream reuses
// the same memory frame after frame instead of allocating every node
// fresh. Chunks are never reallocated, so handed-out pointers stay valid
// until reset. Pointers must not outlive the frame: the only cross-frame
// retainer is track.Track.Ref, and the executor dereferences Ref solely
// for tracks matched on the current frame (Misses == 0), whose Ref was
// just overwritten with a current-frame node.
type nodeArena struct {
	chunks [][]Node
	ci, ni int
}

// alloc returns a zeroed Node, retaining (and clearing) a previously
// allocated extra map to avoid reallocating it next frame.
func (a *nodeArena) alloc() *Node {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Node, nodeChunk))
	}
	n := &a.chunks[a.ci][a.ni]
	a.ni++
	if a.ni == nodeChunk {
		a.ci++
		a.ni = 0
	}
	extra := n.extra
	*n = Node{}
	if extra != nil {
		clear(extra)
		n.extra = extra
	}
	return n
}

// reset recycles all nodes. Values are cleared lazily on alloc.
func (a *nodeArena) reset() {
	a.ci, a.ni = 0, 0
}

// FrameCtx is the per-frame slice of the graph flowing between
// operators. Streams reuse one FrameCtx (and its node arena) across
// frames; see reset.
type FrameCtx struct {
	Frame   *video.Frame
	Dropped bool

	// Degraded marks the frame as answered under failure-domain
	// degradation; DegradedBy carries the first provenance tag (see
	// Verdict.DegradedBy).
	Degraded   bool
	DegradedBy string

	// Nodes maps instance name → occurrences on this frame.
	Nodes map[string][]*Node

	// Edges lists spatial-relation edges computed so far.
	Edges []*RelEdge

	raster *rasterCell
	hoi    map[string][]models.HOIPair // model name → cached per-frame HOI output
	arena  nodeArena
}

// rasterCell holds a lazily rendered raster. MuxStream points every
// lane's FrameCtx at one shared cell per frame, so a frame is rendered
// ("decoded") at most once no matter how many queries read pixels.
type rasterCell struct{ r *video.Raster }

// newFrameCtx returns an empty context for one frame.
func newFrameCtx(f *video.Frame) *FrameCtx {
	return &FrameCtx{Frame: f, Nodes: make(map[string][]*Node)}
}

// reset prepares the context for the next frame, recycling node and
// slice memory from the previous one.
func (fc *FrameCtx) reset(f *video.Frame) {
	fc.Frame = f
	fc.Dropped = false
	fc.Degraded = false
	fc.DegradedBy = ""
	for k, v := range fc.Nodes {
		fc.Nodes[k] = v[:0]
	}
	fc.Edges = fc.Edges[:0]
	fc.raster = nil
	clear(fc.hoi)
	fc.arena.reset()
}

// NewNode allocates a node from the frame's arena and registers it under
// its instance.
func (fc *FrameCtx) NewNode(instance string) *Node {
	n := fc.arena.alloc()
	n.Instance = instance
	n.FrameIdx = fc.Frame.Index
	n.Alive = true
	fc.Nodes[instance] = append(fc.Nodes[instance], n)
	return n
}

// Raster renders the frame once and caches it for the lifetime of the
// context (or of the shared cell installed by shareRaster).
func (fc *FrameCtx) Raster() *video.Raster {
	if fc.raster == nil {
		fc.raster = &rasterCell{}
	}
	if fc.raster.r == nil {
		fc.raster.r = fc.Frame.Render()
	}
	return fc.raster.r
}

// shareRaster points the context at a shared per-frame raster cell.
func (fc *FrameCtx) shareRaster(c *rasterCell) { fc.raster = c }

// AliveNodes returns the alive nodes of an instance. When every node is
// alive (the common case before any filter kills one) the instance slice
// is returned directly without allocating; callers must not mutate the
// result.
func (fc *FrameCtx) AliveNodes(instance string) []*Node {
	nodes := fc.Nodes[instance]
	alive := 0
	for _, n := range nodes {
		if n.Alive {
			alive++
		}
	}
	if alive == len(nodes) {
		return nodes
	}
	out := make([]*Node, 0, alive)
	for _, n := range nodes {
		if n.Alive {
			out = append(out, n)
		}
	}
	return out
}

// Edge returns the alive edge of the given relation connecting l and r,
// or nil.
func (fc *FrameCtx) Edge(relation string, l, r *Node) *RelEdge {
	for _, e := range fc.Edges {
		if e.Alive && e.Relation == relation && e.Left == l && e.Right == r {
			return e
		}
	}
	return nil
}

// Batch is the unit flowing through the operator pipeline: a window of
// consecutive frames (§4.1: "the executor generates frame batches ...
// and executes the pipeline on a per-batch basis").
type Batch struct {
	Frames []*FrameCtx
}

// assignment binds query instances to concrete nodes for predicate
// evaluation. It implements core.Binding: instance properties resolve
// through the assigned node, relation properties through the frame's
// spatial-relation edges.
type assignment struct {
	nodes map[string]*Node
	fc    *FrameCtx
	// relBinds maps relation name → participant instance names, needed
	// to locate the edge for a relation property lookup.
	relBinds map[string]relParticipants
}

type relParticipants struct{ left, right string }

// Prop implements core.Binding.
func (a *assignment) Prop(instance, prop string) (any, bool) {
	n, ok := a.nodes[instance]
	if !ok || n == nil {
		return nil, false
	}
	return n.Prop(prop)
}

// RelProp implements core.Binding.
func (a *assignment) RelProp(relation, prop string) (any, bool) {
	parts, ok := a.relBinds[relation]
	if !ok {
		return nil, false
	}
	l, r := a.nodes[parts.left], a.nodes[parts.right]
	if l == nil || r == nil {
		return nil, false
	}
	e := a.fc.Edge(relation, l, r)
	if e == nil {
		return nil, false
	}
	v, ok := e.Props[prop]
	return v, ok
}
