package exec

import (
	"testing"

	"vqpy/internal/video"
)

func twoNodeFrame() (*FrameCtx, *Node, *Node) {
	fc := &FrameCtx{
		Frame: &video.Frame{Index: 0, W: 100, H: 100},
		Nodes: make(map[string][]*Node),
	}
	a := &Node{Instance: "p", TrackID: 1, Box: boxAt(0, 0), Alive: true}
	a.SetProp("x", 1.0)
	b := &Node{Instance: "c", TrackID: 2, Box: boxAt(50, 50), Alive: true}
	b.SetProp("y", "red")
	fc.Nodes["p"] = []*Node{a}
	fc.Nodes["c"] = []*Node{b}
	return fc, a, b
}

func TestAliveNodesFiltersDead(t *testing.T) {
	fc, a, _ := twoNodeFrame()
	dead := &Node{Instance: "p", TrackID: 3, Alive: false}
	fc.Nodes["p"] = append(fc.Nodes["p"], dead)
	alive := fc.AliveNodes("p")
	if len(alive) != 1 || alive[0] != a {
		t.Errorf("AliveNodes = %v", alive)
	}
	if got := fc.AliveNodes("missing"); len(got) != 0 {
		t.Errorf("missing instance nodes = %v", got)
	}
}

func TestEdgeLookup(t *testing.T) {
	fc, a, b := twoNodeFrame()
	if fc.Edge("near", a, b) != nil {
		t.Error("edge found before creation")
	}
	e := &RelEdge{Relation: "near", Left: a, Right: b, Props: map[string]any{"distance": 70.0}, Alive: true}
	fc.Edges = append(fc.Edges, e)
	if fc.Edge("near", a, b) != e {
		t.Error("edge not found")
	}
	if fc.Edge("near", b, a) != nil {
		t.Error("edge direction ignored")
	}
	if fc.Edge("other", a, b) != nil {
		t.Error("relation name ignored")
	}
	e.Alive = false
	if fc.Edge("near", a, b) != nil {
		t.Error("dead edge returned")
	}
}

func TestRasterCachedPerFrame(t *testing.T) {
	fc, _, _ := twoNodeFrame()
	r1 := fc.Raster()
	r2 := fc.Raster()
	if r1 != r2 {
		t.Error("raster not cached per frame context")
	}
}

func TestAssignmentBinding(t *testing.T) {
	fc, a, b := twoNodeFrame()
	fc.Edges = append(fc.Edges, &RelEdge{
		Relation: "near", Left: a, Right: b,
		Props: map[string]any{"distance": 70.7}, Alive: true,
	})
	bind := &assignment{
		nodes:    map[string]*Node{"p": a, "c": b},
		fc:       fc,
		relBinds: map[string]relParticipants{"near": {left: "p", right: "c"}},
	}
	if v, ok := bind.Prop("p", "x"); !ok || v != 1.0 {
		t.Errorf("Prop = %v, %v", v, ok)
	}
	if _, ok := bind.Prop("p", "missing"); ok {
		t.Error("missing prop resolved")
	}
	if _, ok := bind.Prop("ghost", "x"); ok {
		t.Error("missing instance resolved")
	}
	if v, ok := bind.RelProp("near", "distance"); !ok || v != 70.7 {
		t.Errorf("RelProp = %v, %v", v, ok)
	}
	if _, ok := bind.RelProp("near", "missing"); ok {
		t.Error("missing rel prop resolved")
	}
	if _, ok := bind.RelProp("ghost", "distance"); ok {
		t.Error("missing relation resolved")
	}
	// Unassigned participant → unknown.
	bind2 := &assignment{
		nodes:    map[string]*Node{"p": a},
		fc:       fc,
		relBinds: map[string]relParticipants{"near": {left: "p", right: "c"}},
	}
	if _, ok := bind2.RelProp("near", "distance"); ok {
		t.Error("partial assignment resolved a relation prop")
	}
}
