package exec

// Index-probe verification: the execution half of the archive-search
// fast path (DESIGN.md §10). The appearance index answers a probe with
// candidate tracks and the frame spans they cover; this file replays
// exactly those candidate frames through a plan's store-backed lane —
// archived detections and track ids applied, residual operators run for
// real — and falls back to ordinary live/store-served execution for the
// residual range the index does not cover. Soundness rests on the
// residual operators being per-frame pure: IndexVerifiable admits only
// plans whose post-scan steps carry no cross-frame state, so skipping
// the non-candidate frames cannot change any verified frame's verdict.

import (
	"fmt"

	"vqpy/internal/track"
	"vqpy/internal/video"
)

// indexVerifyMS is the per-candidate-frame bookkeeping charge of the
// verification path (account "index_verify"): candidate frames are
// served from the archive at zero model cost, and this small per-frame
// term keeps the verified work visible on the ledger so the sub-linear
// gate (E20) measures something real.
const indexVerifyMS = 0.05

// IndexVerifiable reports whether a plan's verdicts can be reproduced
// by replaying an arbitrary subset of archived frames: the plan must
// have a shareable scan prefix (the archive's record shape) and its
// residual steps must be per-frame pure — no stateful property
// projections and no second tracker, both of which accumulate
// cross-frame state that candidate-skipping would perturb. Plans that
// fail this run the full-rescan path instead; results are identical
// either way, only the cost differs.
func IndexVerifiable(p *Plan) bool {
	sig := ScanPrefixOf(p)
	if !sig.Shareable {
		return false
	}
	var stateful func(steps []Step) bool
	stateful = func(steps []Step) bool {
		for _, s := range steps {
			switch s.Kind {
			case StepProject:
				if s.Prop != nil && s.Prop.Stateful {
					return true
				}
			case StepTrack:
				return true
			case StepFused:
				if stateful(s.Fused) {
					return true
				}
			}
		}
		return false
	}
	return !stateful(sig.residual)
}

// RunIndexVerify executes one plan over the frames that matter: the
// candidate frames (ascending, all below covered) are replayed from the
// archive through the plan's lane — the backfill machinery with the
// tracker work elided, since archived ids are applied verbatim — and
// the uncovered residual range [covered, n) is then fed normally
// (store-served where archived, live otherwise, with the usual
// tracker/filter catch-up so residual verdicts match a continuous run).
//
// The returned Result's Matched/Hits are in processed order: one entry
// per candidate frame, then one per residual frame. Callers expand this
// back onto the full [0, n) axis; unverified frames were proven unable
// to match by the probe's exact recall, which is the soundness rule the
// crosscheck tests pin.
//
// Requirements: the executor has a bound store (Options.Store), the
// plan is IndexVerifiable, and — for bit-identity with the full scan —
// the plan was compiled with DisableMemo (memoized-at-first-sight
// property values depend on which frame a track was first processed
// on, which differs under candidate-skipping; per-frame evaluation is
// free on archived frames anyway, the label store serves it).
func (e *Executor) RunIndexVerify(p *Plan, src video.FrameSource, candidates []int, covered, n int) (*Result, error) {
	if !IndexVerifiable(p) {
		return nil, fmt.Errorf("exec: plan %q is not index-verifiable (stateful residual or non-shareable scan)", p.Label)
	}
	m, err := e.OpenMux([]*Plan{p}, src.SourceFPS())
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.src == nil {
		m.src = src
	}
	if m.store == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("exec: RunIndexVerify requires a bound store (Options.Store)")
	}
	l := m.lanes[0]
	g := l.group
	if g == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("exec: RunIndexVerify lane has no scan group")
	}
	if err := m.verifyCandidates(l, candidates, covered); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if covered < n {
		// The residual range runs through the ordinary feed path below.
		// Seed the shared tracker's catch-up backlog with every archived
		// non-dropped covered frame — the frames a from-zero tracker
		// would have consumed — so if any residual frame misses the
		// archive and needs live tracking, replayPending restores exactly
		// the from-zero state first. The filter chain likewise catches up
		// from frame zero if it ever runs live (stateless chains skip it).
		if err := m.seedCoveredPending(g, covered); err != nil {
			m.mu.Unlock()
			return nil, err
		}
		g.filterPos = 0
	}
	m.mu.Unlock()
	for f := covered; f < n; f++ {
		if _, err := m.Feed(src.FrameAt(f)); err != nil {
			return nil, err
		}
	}
	return m.Close()[0], nil
}

// verifyCandidates replays the candidate frames through the lane with
// archived scan output applied verbatim. Callers hold m.mu.
func (m *MuxStream) verifyCandidates(l *muxLane, candidates []int, covered int) error {
	g := l.group
	clock := m.e.opts.Env.Clock
	last := -1
	var cdets []track.Detection
	for _, f := range candidates {
		if f <= last {
			return fmt.Errorf("exec: candidate frames must be strictly ascending (%d after %d)", f, last)
		}
		last = f
		if f >= covered {
			return fmt.Errorf("exec: candidate frame %d is outside index coverage [0, %d)", f, covered)
		}
		rec, release, ok := m.store.GetScanRef(m.source, g.key, f)
		if !ok {
			return fmt.Errorf("exec: store does not cover candidate frame %d of scan group %q", f, g.key)
		}
		err := func() error {
			defer release()
			if rec.Detect != g.detect {
				return fmt.Errorf("exec: archived scan of %q used detector %q but the plan chose %q", g.key, rec.Detect, g.detect)
			}
			before := clock.TotalMS()
			fr := m.src.FrameAt(f)
			if rec.Dropped {
				if err := m.laneReplayFrame(l, fr, true, nil, nil); err != nil {
					return err
				}
			} else {
				sdets, ok := m.store.GetDets(m.source, g.detect, f)
				if !ok {
					return fmt.Errorf("exec: store lacks archived detections for %s@%d", g.detect, f)
				}
				cdets = cdets[:0]
				for i := range sdets {
					if classOf(sdets[i].Class) == l.sig.Class {
						cdets = append(cdets, track.Detection{
							Box: sdets[i].Box, Class: sdets[i].Class, Score: sdets[i].Score, Ref: sdets[i].TruthID,
						})
					}
				}
				ids, have := rec.IDs[int(l.sig.Class)]
				if !have || len(ids) != len(cdets) {
					return fmt.Errorf("exec: archived frame %d of %q has no from-zero ids for class %s", f, g.key, l.sig.Class)
				}
				if err := m.laneReplayFrame(l, fr, false, cdets, ids); err != nil {
					return err
				}
			}
			m.e.opts.Env.ChargeClockOnly("index_verify", indexVerifyMS)
			l.virtualMS += clock.TotalMS() - before
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

// seedCoveredPending fills every class tracker's catch-up backlog with
// the archived non-dropped frames of [0, covered). Callers hold m.mu.
func (m *MuxStream) seedCoveredPending(g *muxGroup, covered int) error {
	for f := 0; f < covered; f++ {
		rec, release, ok := m.store.GetScanRef(m.source, g.key, f)
		if !ok {
			return fmt.Errorf("exec: store does not cover frame %d of scan group %q inside index coverage", f, g.key)
		}
		dropped := rec.Dropped
		mismatch := rec.Detect != g.detect
		release()
		if mismatch {
			return fmt.Errorf("exec: archived scan of %q at frame %d used a different detector", g.key, f)
		}
		if dropped {
			continue
		}
		for _, cls := range g.classes {
			st := g.tracks[cls]
			st.pending = append(st.pending, f)
		}
	}
	return nil
}
