package exec

// MuxStream is the physical shared-scan layer of the single-pass engine:
// one frame stream, many queries. Where RunAll runs N query streams that
// each scan the whole video (sharing only model outputs through the
// cache), a MuxStream pulls every frame from its FrameSource exactly
// once, runs each distinct scan prefix — frame-filter chain, detector,
// tracker — exactly once per frame, and fans the shared detect/track
// results out to per-query predicate/property/output operators. An
// 8-query workload thus does 1 scan + 1 detect/track per (model, frame)
// instead of 8, with per-query results identical to sequential
// execution: model outputs are pure functions of (seed, model, frame,
// object), and a shared tracker fed the same class-filtered detection
// sequence assigns the same track ids as each query's private tracker
// would.
//
// Plans are grouped by ScanSig: the ordered frame-filter chain plus the
// first detect model. Frame filters participate in the signature because
// a tracker's state depends on exactly which frames reach it — two
// queries whose filters drop different frames must not share a tracker.
// Within a group, one tracker runs per bound class. Everything after the
// first track step (projections, filters, relations, second detectors)
// stays per-lane, executed by the ordinary operator machinery over the
// lane's private runState.
//
// The query set is dynamic: Attach admits a new plan mid-stream (joining
// an existing scan group when its prefix matches, warm-starting from the
// group's shared tracker state) and Detach finalizes and removes a lane,
// tearing down its class tracker and group when it was the last user.
// Neither operation perturbs sibling lanes: a lane present for the whole
// stream produces results bit-identical to a fresh stream of the
// surviving set, because shared trackers see the same class-filtered
// detection sequence regardless of who else rides the group.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vqpy/internal/core"
	"vqpy/internal/models"
	"vqpy/internal/store"
	"vqpy/internal/track"
	"vqpy/internal/video"
)

// ScanSig describes the shareable scan prefix of a physical plan. Plans
// with equal Key() over the same source are served by one shared
// filter/detect/track operator set.
type ScanSig struct {
	// Filters is the ordered frame-filter model chain before the first
	// detector.
	Filters []string
	// Detect / Class / Instance describe the first detect+track pair.
	Detect   string
	Class    video.Class
	Instance string
	// Shareable reports whether the plan has the canonical prefix shape.
	// Non-shareable plans (scene-first, device-placed, multi-bind) run
	// whole inside their lane.
	Shareable bool

	// Suffix decorates the signature for non-default scan fidelities
	// (Plan.ScanSuffix): archives written at different fidelities of the
	// same prefix must key to disjoint scan groups, or a replay would
	// serve tier-B records to a tier-A query.
	Suffix string

	residual []Step
}

// Key identifies the shared scan group: source-side operators only, so
// two queries binding different classes of the same detector still land
// in one group (one detector run, one tracker per class).
func (s ScanSig) Key() string {
	key := strings.Join(s.Filters, ",") + "|" + s.Detect
	if s.Suffix != "" {
		key += "@" + s.Suffix
	}
	return key
}

// ScanPrefixOf extracts the shareable scan prefix of a plan: leading
// frame filters followed by the first single-bind detect+track pair.
// Plans with edge placement keep their per-query path (uplink accounting
// is defined per query stream), as do plans whose first operator is not
// part of the canonical prefix (e.g. a scene path that drops frames
// before the detector).
func ScanPrefixOf(p *Plan) ScanSig {
	var sig ScanSig
	if p.UplinkMS > 0 {
		return sig
	}
	steps := p.Steps
	i := 0
	for i < len(steps) && steps[i].Kind == StepFrameFilter {
		sig.Filters = append(sig.Filters, steps[i].FilterModel)
		i++
	}
	if i+1 < len(steps) && steps[i].Kind == StepDetect && len(steps[i].Binds) == 1 &&
		steps[i+1].Kind == StepTrack && steps[i+1].Instance == steps[i].Binds[0].Instance {
		sig.Detect = steps[i].DetectModel
		sig.Class = steps[i].Binds[0].Class
		sig.Instance = steps[i].Binds[0].Instance
		sig.Shareable = true
		sig.Suffix = p.ScanSuffix
		sig.residual = steps[i+2:]
	}
	return sig
}

// sharedTrack is one class's tracker within a scan group, plus its
// per-frame output (class-filtered detections and their track ids).
type sharedTrack struct {
	tracker *track.Tracker
	dets    []track.Detection
	ids     []int
	upBuf   []track.Detection
	// refs counts the lanes bound to this class; the tracker is torn
	// down when the last one detaches.
	refs int
	// bornAt is the stream position (frames fed) at tracker creation; 0
	// means from-zero semantics, which is what makes a store backfill's
	// historical ids consistent with the live ids this tracker assigns.
	bornAt int
	// pending lists frame indices whose scan was served from the store
	// (ids applied without running this tracker), in feed order. Before
	// the tracker next runs live it must catch up by replaying these
	// frames' class detections (re-read from the store), restoring the
	// state a continuous run would have.
	pending []int
}

// muxGroup owns the shared scan state for one ScanSig: the frame-filter
// instances (stateful filters cloned once per group, as per stream on
// the per-query path) and one tracker per bound class.
type muxGroup struct {
	id          int
	key         string
	filters     []string
	detect      string
	filterInsts map[string]models.BinaryFilter
	tracks      map[video.Class]*sharedTrack
	classes     []video.Class // deterministic iteration order
	members     int

	dropped   bool    // current frame dropped by the filter chain
	frameMS   float64 // shared scan cost of the current frame
	virtualMS float64

	// degradedBy is the current frame's degradation provenance ("" =
	// healthy): the fallback detector that answered, or
	// DegradedUnavailable when the scan carried tracker state forward.
	// degraded counts degraded frames over the group's lifetime.
	degradedBy string
	degraded   int

	// statefulFilters reports whether any filter model carries per-frame
	// state (models.Cloner). Stateless chains need no catch-up when the
	// store serves frames the filters never saw.
	statefulFilters bool
	// filterPos is the frame index the filter chain expects next: state
	// is synced through filterPos-1. -1 until the chain first runs.
	// Store-served frames leave it behind; catchUpFilters replays the
	// gap before the chain runs live again.
	filterPos int
}

// muxLane is one query's private slice of the mux: its residual plan and
// all per-query state (trackers for non-shared instances, memo, history
// windows, result accumulation).
type muxLane struct {
	id      int
	plan    *Plan
	runPlan *Plan // residual steps for shared lanes, the full plan otherwise
	sig     ScanSig
	group   *muxGroup // nil when the plan is not shareable

	rs         *runState
	filters    map[string]models.BinaryFilter
	specs      []windowSpec
	insts      []string
	relBinds   map[string]relParticipants
	frameCons  core.Pred
	videoCons  core.Pred
	outputSels []core.Selector

	res        *Result
	fc         *FrameCtx
	virtualMS  float64
	sharedMS   float64
	matched    int  // running matched-frame count (cheap stats reads)
	degraded   int  // frames answered under degradation
	attachedAt int  // stream position (frames fed before attach)
	backfilled bool // history replayed from the store at attach
	finalized  bool
}

// MuxStream multiplexes several query plans over one frame stream. Like
// Stream it processes frames on one goroutine at a time, but all methods
// are guarded by an internal mutex so queries can be attached and
// detached concurrently with Feed — the live serving mode. Feed frames
// in capture order, read the per-lane verdicts, Close for the aggregate
// results of the lanes still attached (in attach order).
type MuxStream struct {
	mu        sync.Mutex
	e         *Executor
	lanes     []*muxLane
	byID      map[int]*muxLane
	groups    []*muxGroup
	byKey     map[string]*muxGroup
	nextLane  int
	nextGroup int
	fps       int
	framesFed int
	lastFed   int  // highest frame index fed so far (-1 before the first)
	wrapped   bool // a looping source re-fed earlier indices (see Feed)
	closed    bool

	// store / source / src are set by BindStore: the persistent result
	// store scan groups consult before doing model work (and populate on
	// miss), the stream name records are keyed under, and the frame
	// source backing the stream (needed by AttachBackfill replays and by
	// stateful-filter catch-up after store-served frames).
	store  *store.Store
	source string
	src    video.FrameSource
}

// newMux prepares an empty stream sharing the executor's cache (one is
// created when the executor has none: the mux relies on it to
// deduplicate detector and classifier work that stays per-lane).
func (e *Executor) newMux(fps int) *MuxStream {
	opts := e.opts
	if opts.Cache == nil {
		opts.Cache = NewSharedCache()
	}
	m := &MuxStream{
		e:       &Executor{opts: opts},
		fps:     fps,
		byID:    make(map[int]*muxLane),
		byKey:   make(map[string]*muxGroup),
		lastFed: -1,
	}
	if opts.Store != nil && opts.StoreSource != "" {
		m.store = opts.Store
		m.source = opts.StoreSource
	}
	return m
}

// BindStore attaches a persistent result store to the stream: scan
// groups consult it before running filters, detectors or trackers (a hit
// serves the frame at zero model cost) and populate it on miss, and
// AttachBackfill can replay a joining query over already-scanned frames.
// src is the frame source backing the stream; it may be nil when frames
// are pushed from elsewhere, at the price of backfill and of stateful
// frame-filter catch-up being unavailable. Bind before the first Feed —
// records are keyed by src.SourceName().
func (m *MuxStream) BindStore(st *store.Store, src video.FrameSource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.store = st
	m.src = src
	if src != nil {
		m.source = src.SourceName()
	}
	m.e.opts.Store = st
	m.e.opts.StoreSource = m.source
}

// BindSource names the stream's frame source without attaching a store,
// so per-source failure-domain state (the circuit breakers keyed by
// (model, source)) stays separated across cameras in storeless serving.
// A no-op for a nil source; BindStore supersedes it.
func (m *MuxStream) BindSource(src video.FrameSource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src == nil || m.store != nil {
		return
	}
	m.src = src
	m.source = src.SourceName()
	m.e.opts.StoreSource = m.source
}

// OpenMux validates every plan and prepares the shared-scan state for a
// fixed initial query set. The set can still change afterwards through
// Attach and Detach.
func (e *Executor) OpenMux(plans []*Plan, fps int) (*MuxStream, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("exec: OpenMux with no plans")
	}
	m := e.newMux(fps)
	for _, p := range plans {
		if _, err := m.Attach(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// OpenDynamicMux prepares an empty shared-scan stream for live serving:
// queries arrive later through Attach. Feeding frames with no lanes
// attached is legal and does no model work.
func (e *Executor) OpenDynamicMux(fps int) *MuxStream {
	return e.newMux(fps)
}

// Attach admits one more plan onto the running stream and returns its
// lane id. A plan whose scan prefix matches an existing group joins it
// mid-stream: its lane is warm-started from the group's shared tracker
// state (it observes the track ids the group has already assigned), so
// attaching never resets or perturbs sibling lanes. A prefix with no
// group — or a new class under an existing group — spins up fresh shared
// state that starts cold at the current frame.
func (m *MuxStream) Attach(p *Plan) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, fmt.Errorf("exec: Attach on closed mux stream")
	}
	l, err := m.attachLocked(p)
	if err != nil {
		return 0, err
	}
	return l.id, nil
}

// attachLocked admits one plan, returning its lane. Callers hold m.mu.
func (m *MuxStream) attachLocked(p *Plan) (*muxLane, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Query.Validate(); err != nil {
		return nil, err
	}
	sig := ScanPrefixOf(p)
	l := &muxLane{
		id: m.nextLane, plan: p, runPlan: p, sig: sig,
		rs:      newRunState(),
		filters: make(map[string]models.BinaryFilter),
		specs:   windowSpecs(p),
		insts:   p.Query.InstanceNames(),
		relBinds: func() map[string]relParticipants {
			out := make(map[string]relParticipants)
			for name, rb := range p.Query.Relations() {
				out[name] = relParticipants{left: rb.LeftInst, right: rb.RightInst}
			}
			return out
		}(),
		frameCons:  p.Query.FrameConstraint(),
		videoCons:  p.Query.VideoConstraint(),
		outputSels: p.Query.FrameOutputSelectors(),
		res:        &Result{Query: p.Query.Name(), FPS: m.fps},
		attachedAt: m.framesFed,
	}
	m.nextLane++
	if sig.Shareable {
		key := sig.Key()
		g, ok := m.byKey[key]
		if !ok {
			g = &muxGroup{
				id: m.nextGroup, key: key, filters: sig.Filters, detect: sig.Detect,
				filterInsts: make(map[string]models.BinaryFilter),
				tracks:      make(map[video.Class]*sharedTrack),
				filterPos:   -1,
			}
			for _, fm := range sig.Filters {
				if fmod, found := m.e.opts.Registry.Get(fm); found {
					if _, stateful := fmod.(models.Cloner); stateful {
						g.statefulFilters = true
					}
				}
			}
			m.nextGroup++
			m.byKey[key] = g
			m.groups = append(m.groups, g)
		}
		st, ok := g.tracks[sig.Class]
		if !ok {
			st = &sharedTrack{tracker: track.NewTracker(track.DefaultConfig()), bornAt: m.framesFed}
			g.tracks[sig.Class] = st
			g.classes = append(g.classes, sig.Class)
		}
		st.refs++
		g.members++
		l.group = g
		residual := *p
		residual.Steps = sig.residual
		l.runPlan = &residual
	}
	m.lanes = append(m.lanes, l)
	m.byID[l.id] = l
	return l, nil
}

// Detach finalizes and removes one lane, returning its accumulated
// result. The lane's class tracker is torn down when no other lane binds
// the class, and its group when it was the last member — sibling lanes
// keep their shared state untouched, so their results stay bit-identical
// to a stream that never saw the detached query.
func (m *MuxStream) Detach(id int) (*Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("exec: Detach on closed mux stream")
	}
	l, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("exec: Detach of unknown lane %d", id)
	}
	m.detachLocked(l)
	return l.res, nil
}

// detachLocked removes one lane and tears down shared state it was the
// last user of. Callers hold m.mu.
func (m *MuxStream) detachLocked(l *muxLane) {
	delete(m.byID, l.id)
	for i, cand := range m.lanes {
		if cand == l {
			m.lanes = append(m.lanes[:i], m.lanes[i+1:]...)
			break
		}
	}
	if g := l.group; g != nil {
		g.members--
		if st := g.tracks[l.sig.Class]; st != nil {
			st.refs--
			if st.refs == 0 {
				delete(g.tracks, l.sig.Class)
				for i, c := range g.classes {
					if c == l.sig.Class {
						g.classes = append(g.classes[:i], g.classes[i+1:]...)
						break
					}
				}
			}
		}
		if g.members == 0 {
			delete(m.byKey, g.key)
			for i, cand := range m.groups {
				if cand == g {
					m.groups = append(m.groups[:i], m.groups[i+1:]...)
					break
				}
			}
		}
	}
	m.finalizeLane(l)
}

// Groups reports the shared-scan structure: for each group, its filter
// chain, detector, tracked classes and member count (explain tooling).
func (m *MuxStream) Groups() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.groups))
	for _, g := range m.groups {
		classes := make([]string, len(g.classes))
		for i, c := range g.classes {
			classes[i] = c.String()
		}
		sort.Strings(classes)
		desc := fmt.Sprintf("scan[%s] → detect(%s) → track(%s) ×%d",
			strings.Join(g.filters, ","), g.detect, strings.Join(classes, ","), g.members)
		out = append(out, desc)
	}
	return out
}

// GroupMembers returns each scan group's member-lane count, in group
// creation order. Lanes without a shareable prefix belong to no group
// and are not counted. plan.DedupScans derives the same partition at
// the logical layer; tests pin the two views together.
func (m *MuxStream) GroupMembers() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.groups))
	for i, g := range m.groups {
		out[i] = g.members
	}
	return out
}

// GroupStat is one scan group's live accounting.
type GroupStat struct {
	// ID is the group id (stable for the group's lifetime; LaneStat
	// references it).
	ID int
	// Filters / Detect describe the shared scan prefix.
	Filters []string
	Detect  string
	// Classes counts the trackers the group runs per frame; Members the
	// lanes riding the scan.
	Classes int
	Members int
	// VirtualMS is the cumulative shared scan cost (split across
	// members in per-lane accounting).
	VirtualMS float64
	// Degraded counts frames the group's scan answered under
	// degradation (fallback detector tier or carry-forward).
	Degraded int
}

// GroupStats returns the live per-group accounting, in creation order.
func (m *MuxStream) GroupStats() []GroupStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]GroupStat, len(m.groups))
	for i, g := range m.groups {
		out[i] = GroupStat{
			ID: g.id, Filters: g.filters, Detect: g.detect,
			Classes: len(g.classes), Members: g.members, VirtualMS: g.virtualMS,
			Degraded: g.degraded,
		}
	}
	return out
}

// LaneStat is one lane's live accounting, for serving dashboards and
// admission control.
type LaneStat struct {
	// ID is the lane id returned by Attach.
	ID int
	// Query names the lane's query.
	Query string
	// Frames counts frames the lane has processed (fed since attach);
	// Matched of them satisfied the frame constraint.
	Frames  int
	Matched int
	// AttachedAt is the stream position (frames already fed) at attach.
	AttachedAt int
	// Backfilled reports that the lane replayed frames [0, AttachedAt)
	// from the store at attach, so its result covers the whole stream.
	Backfilled bool
	// VirtualMS is the lane's virtual cost so far: private work plus its
	// share of the group scan.
	VirtualMS float64
	// Group is the scan group id, or -1 for a private (non-shareable)
	// lane.
	Group int
	// Degraded counts the lane's frames answered under failure-domain
	// degradation (their verdicts were tagged Degraded).
	Degraded int
}

// LaneStats returns the live per-lane accounting, in attach order.
func (m *MuxStream) LaneStats() []LaneStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LaneStat, len(m.lanes))
	for i, l := range m.lanes {
		st := LaneStat{
			ID: l.id, Query: l.plan.Query.Name(),
			Frames: l.res.FramesProcessed, Matched: l.matched, AttachedAt: l.attachedAt,
			Backfilled: l.backfilled, VirtualMS: l.virtualMS + l.sharedMS, Group: -1,
			Degraded: l.degraded,
		}
		if l.group != nil {
			st.Group = l.group.id
		}
		out[i] = st
	}
	return out
}

// Lanes returns the number of attached lanes.
func (m *MuxStream) Lanes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lanes)
}

// FramesFed returns the number of frames the stream has processed.
func (m *MuxStream) FramesFed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.framesFed
}

// scanGroup advances one group's shared operators over a frame: the
// filter chain (short-circuiting like the per-query path, so a stateful
// filter never sees frames an earlier filter dropped), then one detector
// invocation and one tracker update per bound class.
//
// With a store bound the group first tries to serve the frame from
// persisted records — dropped verdict, detections and track ids applied
// with zero model cost — and persists what it computed otherwise. Live
// operators that skipped store-served frames catch up before running
// again (catchUpFilters, replayPending), so falling in and out of store
// coverage never changes results, only costs.
func (m *MuxStream) scanGroup(g *muxGroup, f *video.Frame) error {
	g.degradedBy = ""
	if m.store != nil && !m.wrapped {
		served, err := m.scanGroupFromStore(g, f)
		if err != nil {
			return err
		}
		if served {
			return nil
		}
	}
	if err := m.catchUpFilters(g, f.Index); err != nil {
		return err
	}
	g.dropped = false
	for _, fm := range g.filters {
		bf, err := m.e.filterInstance(g.filterInsts, fm)
		if err != nil {
			return err
		}
		if !bf.Keep(m.e.opts.Env, f) {
			g.dropped = true
			break
		}
	}
	g.filterPos = f.Index + 1
	if g.dropped {
		return m.persistScan(g, f)
	}
	dets, degradedBy, err := m.e.detectResilient(g.detect, f)
	if err != nil {
		return err
	}
	g.degradedBy = degradedBy
	if degradedBy != "" {
		g.degraded++
	}
	if degradedBy == DegradedUnavailable {
		// No detector tier answered: carry each class tracker's previous
		// output forward (st.dets / st.ids are untouched from the last
		// healthy frame) — lanes report the last known objects rather
		// than a spurious empty frame. The tracker does not advance and
		// nothing is persisted: the archive holds only healthy scans.
		return nil
	}
	for _, cls := range g.classes {
		st := g.tracks[cls]
		st.dets = st.dets[:0]
		for i := range dets {
			if classOf(dets[i].Class) == cls {
				st.dets = append(st.dets, dets[i])
			}
		}
		if err := m.replayPending(g, cls, st); err != nil {
			return err
		}
		m.liveTrackUpdate(st)
	}
	if degradedBy != "" {
		// Fallback-tier output answered the frame but must not enter the
		// archive: persisted scans are the healthy primary's by contract.
		return nil
	}
	return m.persistScan(g, f)
}

// trackerUpdate charges and runs one tracker update over cdets, filling
// ids (reused, resized to len(cdets)) with the assigned track ids; upBuf
// is scratch. Shared by the live per-frame path and the store catch-up
// replays, so both feed the tracker byte-identical input.
func (m *MuxStream) trackerUpdate(tk *track.Tracker, cdets []track.Detection, ids []int, upBuf []track.Detection) ([]int, []track.Detection) {
	upBuf = upBuf[:0]
	for i := range cdets {
		upBuf = append(upBuf, track.Detection{
			Box: cdets[i].Box, Class: cdets[i].Class, Score: cdets[i].Score, Ref: i,
		})
	}
	m.e.opts.Env.Clock.Charge("tracker", trackerCostMS)
	ids = ids[:0]
	for range cdets {
		ids = append(ids, -1)
	}
	for _, tr := range tk.Update(upBuf) {
		if tr.Misses != 0 {
			continue
		}
		if idx, ok := tr.Ref.(int); ok && idx >= 0 && idx < len(ids) {
			ids[idx] = tr.ID
		}
	}
	return ids, upBuf
}

// liveTrackUpdate runs one shared tracker update over st.dets (charging
// the tracker account), filling st.ids with the assigned track ids.
func (m *MuxStream) liveTrackUpdate(st *sharedTrack) {
	st.ids, st.upBuf = m.trackerUpdate(st.tracker, st.dets, st.ids, st.upBuf)
}

// bindLane materializes the shared detect/track output as the lane's
// nodes — exactly what StepDetect+StepTrack would have produced — and
// seeds the history windows that depend on built-in properties.
func (m *MuxStream) bindLane(l *muxLane) {
	st := l.group.tracks[l.sig.Class]
	m.bindLaneDets(l, st.dets, st.ids)
}

// bindLaneDets binds an explicit detection/id pair as the lane's nodes —
// the shared tracker's output on the live path, an archived frame's
// output on the backfill path.
func (m *MuxStream) bindLaneDets(l *muxLane, dets []track.Detection, ids []int) {
	for i := range dets {
		d := &dets[i]
		node := l.fc.NewNode(l.sig.Instance)
		truthID, _ := d.Ref.(int)
		node.TrackID = ids[i]
		node.TruthID = truthID
		node.Class = classOf(d.Class)
		node.ClassName = node.Class.String()
		node.Box = d.Box
		node.Score = d.Score
	}
	seedBuiltinWindows(l.fc, l.rs, l.specs, l.sig.Instance)
}

// Feed processes one frame for every lane and returns the per-lane
// verdicts, aligned with the current attach order (Verdict.Lane carries
// the lane id, stable across attach/detach churn). Frames must arrive
// in capture order.
func (m *MuxStream) Feed(f *video.Frame) ([]Verdict, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("exec: Feed on closed mux stream")
	}
	// A looping source re-feeds earlier indices. From that point the
	// scan archive is off limits both ways: a lap-1 record's from-zero
	// ids would not match a tracker carrying state across the wrap, and
	// persisting cross-wrap ids would poison later from-zero passes.
	if f.Index <= m.lastFed {
		m.wrapped = true
	}
	m.lastFed = f.Index
	clock := m.e.opts.Env.Clock
	clock.StartFrame(f.Index)
	cell := &rasterCell{}
	for _, g := range m.groups {
		before := clock.TotalMS()
		if err := m.scanGroup(g, f); err != nil {
			return nil, err
		}
		g.frameMS = clock.TotalMS() - before
		g.virtualMS += g.frameMS
	}
	verdicts := make([]Verdict, len(m.lanes))
	for i, l := range m.lanes {
		before := clock.TotalMS()
		if l.fc == nil {
			l.fc = newFrameCtx(f)
		} else {
			l.fc.reset(f)
		}
		l.fc.shareRaster(cell)
		if l.group != nil {
			// The scan ran once for the whole group; each member carries
			// an equal share of this frame's cost, so per-query totals
			// sum to the work actually done however membership churns.
			l.sharedMS += l.group.frameMS / float64(l.group.members)
			if l.group.degradedBy != "" {
				l.fc.degrade(l.group.degradedBy)
			}
			if l.group.dropped {
				l.fc.Dropped = true
			} else {
				m.bindLane(l)
			}
		}
		hitsBefore := len(l.res.Hits)
		matched, err := m.runLaneFrame(l)
		if err != nil {
			return nil, err
		}
		v := Verdict{FrameIdx: f.Index, Lane: l.id, Matched: matched}
		if l.fc.Degraded {
			v.Degraded = true
			v.DegradedBy = l.fc.DegradedBy
		}
		if len(l.res.Hits) > hitsBefore {
			v.Hit = &l.res.Hits[len(l.res.Hits)-1]
		}
		verdicts[i] = v
		l.virtualMS += clock.TotalMS() - before
	}
	m.framesFed++
	return verdicts, nil
}

// runLaneFrame executes the lane's operators over its prepared frame
// context and folds the outcome into the lane's accumulated result —
// the per-frame step shared by Feed and the backfill replay, which is
// what makes a backfilled frame indistinguishable from a live one.
func (m *MuxStream) runLaneFrame(l *muxLane) (bool, error) {
	if err := m.e.runFrame(l.runPlan, l.fc, l.rs, l.filters, l.specs); err != nil {
		return false, err
	}
	matched := m.e.finalize(l.fc, l.rs, l.insts, l.relBinds,
		l.frameCons, l.videoCons, l.outputSels, l.res)
	l.res.Matched = append(l.res.Matched, matched)
	l.res.FramesProcessed++
	if matched {
		l.matched++
	}
	if l.fc.Degraded {
		l.degraded++
		l.res.DegradedFrames++
		l.res.DegradedAt = append(l.res.DegradedAt, len(l.res.Matched)-1)
	}
	return matched, nil
}

// finalizeLane completes a lane's aggregation: the video-level count /
// track listing, the virtual cost (private work plus the lane's
// accumulated share of its group's scans) and memo statistics.
func (m *MuxStream) finalizeLane(l *muxLane) {
	if l.finalized {
		return
	}
	l.finalized = true
	if agg := l.plan.Query.VideoOutput(); agg != nil {
		tracksOf := l.rs.matchedTracks[agg.Instance]
		ids := make([]int, 0, len(tracksOf))
		for id := range tracksOf {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		l.res.Count = len(ids)
		if agg.Kind == core.AggListTracks {
			l.res.TrackIDs = ids
		}
	}
	l.res.VirtualMS = l.virtualMS + l.sharedMS
	l.res.MemoHits, l.res.MemoMisses = l.rs.memo.Stats()
}

// Snapshot returns a copy of a live lane's accumulated result so far —
// the serving layer's read path, safe against concurrent Feeds. The
// video-level aggregation is computed fresh on each call; the lane keeps
// accumulating.
func (m *MuxStream) Snapshot(id int) (*Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("exec: Snapshot of unknown lane %d", id)
	}
	res := *l.res
	res.Matched = append([]bool(nil), l.res.Matched...)
	res.Hits = append([]FrameHit(nil), l.res.Hits...)
	if agg := l.plan.Query.VideoOutput(); agg != nil {
		tracksOf := l.rs.matchedTracks[agg.Instance]
		ids := make([]int, 0, len(tracksOf))
		for id := range tracksOf {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		res.Count = len(ids)
		if agg.Kind == core.AggListTracks {
			res.TrackIDs = ids
		}
	}
	res.VirtualMS = l.virtualMS + l.sharedMS
	res.MemoHits, res.MemoMisses = l.rs.memo.Stats()
	return &res, nil
}

// Close finalizes every attached lane's aggregation and returns their
// results in attach order. Shared scan costs were attributed frame by
// frame, each frame's scan split evenly across the members riding it
// (who paid is a scheduling artifact; the per-query totals still sum to
// the work actually done, which is the point: one scan's cost split N
// ways instead of N scans). Idempotent.
func (m *MuxStream) Close() []*Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.closed {
		m.closed = true
		m.e.opts.Env.Clock.FlushFrames()
		for _, l := range m.lanes {
			m.finalizeLane(l)
		}
	}
	out := make([]*Result, len(m.lanes))
	for i, l := range m.lanes {
		out[i] = l.res
	}
	return out
}

// RunMux executes every plan over the frame source in one shared pass:
// the offline entry point of the shared-scan engine, pulling each frame
// from the source exactly once.
func (e *Executor) RunMux(plans []*Plan, src video.FrameSource) ([]*Result, error) {
	m, err := e.OpenMux(plans, src.SourceFPS())
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.src == nil {
		// The offline driver knows the stream's source; hand it to the
		// mux so store catch-up replays can reach real frames.
		m.src = src
	}
	m.mu.Unlock()
	n := src.NumFrames()
	for i := 0; i < n; i++ {
		if _, err := m.Feed(src.FrameAt(i)); err != nil {
			return nil, err
		}
	}
	return m.Close(), nil
}
