package exec

import (
	"reflect"
	"sync"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

func dynamicMux(t *testing.T) *MuxStream {
	t.Helper()
	ex, err := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return ex.OpenDynamicMux(30)
}

// TestMuxAttachDetachLifecycle pins the group bookkeeping of the dynamic
// mux: attaching joins or creates scan groups, detaching tears down the
// class tracker when its last user leaves and the group when its last
// member leaves, and a dynamic stream accepts frames with no lanes at
// all.
func TestMuxAttachDetachLifecycle(t *testing.T) {
	v := video.CityFlow(5, 5).Generate()
	m := dynamicMux(t)

	// Feeding an empty stream is legal and does no work.
	if verdicts, err := m.Feed(&v.Frames[0]); err != nil || len(verdicts) != 0 {
		t.Fatalf("empty Feed = %v, %v", verdicts, err)
	}

	ct := carType()
	a, err := m.Attach(manualPlan(redCarQuery(ct), "car", ct))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Attach(manualPlan(redCarQuery(ct), "car", ct))
	if err != nil {
		t.Fatal(err)
	}
	filtered := manualPlan(redCarQuery(ct), "car", ct)
	filtered.Steps = append([]Step{{Kind: StepFrameFilter, FilterModel: "motion_diff"}}, filtered.Steps...)
	c, err := m.Attach(filtered)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GroupMembers(); !reflect.DeepEqual(got, []int{2, 1}) {
		t.Fatalf("group members = %v, want [2 1]", got)
	}

	// A second class under the first group: one group, two trackers.
	pt := core.NewVObj("Ped", video.ClassPerson).Detector("yolox")
	pq := core.NewQuery("Peds").Use("p", pt).Where(core.P("p", core.PropScore).Gt(0.5))
	d, err := m.Attach(&Plan{Query: pq, Steps: []Step{
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "p", Class: video.ClassPerson}}},
		{Kind: StepTrack, Instance: "p"},
	}, BatchSize: 4, Label: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GroupMembers(); !reflect.DeepEqual(got, []int{3, 1}) {
		t.Fatalf("group members = %v, want [3 1]", got)
	}
	if len(m.groups[0].classes) != 2 {
		t.Fatalf("classes = %v, want 2 entries", m.groups[0].classes)
	}

	if verdicts, err := m.Feed(&v.Frames[1]); err != nil || len(verdicts) != 4 {
		t.Fatalf("Feed = %d verdicts, %v; want 4", len(verdicts), err)
	}

	// Detaching the only person lane tears down its tracker but not the
	// group.
	if _, err := m.Detach(d); err != nil {
		t.Fatal(err)
	}
	if len(m.groups[0].classes) != 1 || m.groups[0].members != 2 {
		t.Fatalf("after class teardown: classes=%v members=%d", m.groups[0].classes, m.groups[0].members)
	}
	// Detaching the last member of the filtered group removes the group.
	if _, err := m.Detach(c); err != nil {
		t.Fatal(err)
	}
	if got := m.GroupMembers(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("group members = %v, want [2]", got)
	}

	if _, err := m.Detach(c); err == nil {
		t.Fatal("double Detach accepted")
	}
	res, err := m.Detach(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesProcessed != 1 {
		t.Errorf("detached lane processed %d frames, want 1", res.FramesProcessed)
	}

	out := m.Close()
	if len(out) != 1 || out[0].Query != "RedCar" {
		t.Fatalf("Close returned %d results", len(out))
	}
	if _, err := m.Attach(manualPlan(redCarQuery(ct), "car", ct)); err == nil {
		t.Fatal("Attach after Close accepted")
	}
	if _, err := m.Detach(b); err == nil {
		t.Fatal("Detach after Close accepted")
	}
}

// TestMuxChurnDoesNotPerturbSiblings is the exec-level detach contract:
// lanes present for the whole stream must produce results bit-identical
// to a fresh mux of only those lanes, however other queries attach and
// detach around them.
func TestMuxChurnDoesNotPerturbSiblings(t *testing.T) {
	v := video.CityFlow(42, 30).Generate()
	n := len(v.Frames)

	// Reference: survivors only, full stream, fresh mux.
	refPlans := poolPlans(t, 2)
	refEnv := testEnv()
	ex, err := NewExecutor(Options{Env: refEnv, Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ex.RunMux(refPlans, v)
	if err != nil {
		t.Fatal(err)
	}

	// Churned run: the same two survivors plus a same-group joiner, a
	// new-group joiner and a new-class joiner that all come and go.
	plans := poolPlans(t, 3)
	exd, err := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	m := exd.OpenDynamicMux(v.FPS)
	ids := make([]int, 2)
	for i := 0; i < 2; i++ {
		if ids[i], err = m.Attach(plans[i]); err != nil {
			t.Fatal(err)
		}
	}
	churner := -1
	filtered := -1
	peds := -1
	for i := 0; i < n; i++ {
		switch i {
		case n / 4: // joins the survivors' scan group mid-stream
			if churner, err = m.Attach(plans[2]); err != nil {
				t.Fatal(err)
			}
		case n / 3: // private filter chain: a second group appears
			ct := carType()
			fp := manualPlan(redCarQuery(ct), "car", ct)
			fp.Steps = append([]Step{{Kind: StepFrameFilter, FilterModel: "motion_diff"}}, fp.Steps...)
			if filtered, err = m.Attach(fp); err != nil {
				t.Fatal(err)
			}
		case n / 2: // new class under the survivors' group
			pt := core.NewVObj("Ped", video.ClassPerson).Detector("yolox")
			pq := core.NewQuery("Peds").Use("p", pt).Where(core.P("p", core.PropScore).Gt(0.4))
			pp := &Plan{Query: pq, Steps: []Step{
				{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "p", Class: video.ClassPerson}}},
				{Kind: StepTrack, Instance: "p"},
			}, BatchSize: 4, Label: "manual"}
			if peds, err = m.Attach(pp); err != nil {
				t.Fatal(err)
			}
		case 2 * n / 3:
			if _, err := m.Detach(churner); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Detach(peds); err != nil {
				t.Fatal(err)
			}
		case 3 * n / 4:
			if _, err := m.Detach(filtered); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Feed(&v.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	out := m.Close()
	if len(out) != 2 {
		t.Fatalf("Close returned %d results, want 2", len(out))
	}
	for i := range ref {
		if !reflect.DeepEqual(ref[i].Matched, out[i].Matched) {
			t.Errorf("survivor %d: matched vectors differ", i)
		}
		if !reflect.DeepEqual(ref[i].Hits, out[i].Hits) {
			t.Errorf("survivor %d: hits differ", i)
		}
		if ref[i].Count != out[i].Count || !reflect.DeepEqual(ref[i].TrackIDs, out[i].TrackIDs) {
			t.Errorf("survivor %d: aggregation differs", i)
		}
		if ref[i].MemoHits != out[i].MemoHits || ref[i].MemoMisses != out[i].MemoMisses {
			t.Errorf("survivor %d: memo stats differ", i)
		}
	}
}

// TestMuxSnapshot checks the live read path: a snapshot taken mid-stream
// must be a strict prefix of the final result and must not finalize the
// lane.
func TestMuxSnapshot(t *testing.T) {
	v := video.CityFlow(9, 15).Generate()
	ct := carType()
	m := dynamicMux(t)
	id, err := m.Attach(manualPlan(redCarQuery(ct), "car", ct))
	if err != nil {
		t.Fatal(err)
	}
	half := len(v.Frames) / 2
	for i := 0; i < half; i++ {
		if _, err := m.Feed(&v.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := m.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FramesProcessed != half {
		t.Fatalf("snapshot frames = %d, want %d", snap.FramesProcessed, half)
	}
	if _, err := m.Snapshot(99); err == nil {
		t.Fatal("Snapshot of unknown lane accepted")
	}
	for i := half; i < len(v.Frames); i++ {
		if _, err := m.Feed(&v.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	final := m.Close()[0]
	if !reflect.DeepEqual(final.Matched[:half], snap.Matched) {
		t.Error("snapshot matched vector is not a prefix of the final result")
	}
	if len(snap.Hits) > len(final.Hits) {
		t.Error("snapshot has more hits than the final result")
	}
}

// TestMuxConcurrentAttachDetachDuringFeed drives Attach/Detach from
// several goroutines while the main goroutine feeds frames — the live
// serving access pattern, exercised under -race by CI.
func TestMuxConcurrentAttachDetachDuringFeed(t *testing.T) {
	v := video.CityFlow(3, 20).Generate()
	m := dynamicMux(t)
	ct := carType()
	if _, err := m.Attach(manualPlan(redCarQuery(ct), "car", ct)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctw := carType()
				id, err := m.Attach(manualPlan(redCarQuery(ctw), "car", ctw))
				if err != nil {
					t.Errorf("Attach: %v", err)
					return
				}
				if _, err := m.Snapshot(id); err != nil {
					t.Errorf("Snapshot: %v", err)
					return
				}
				if _, err := m.Detach(id); err != nil {
					t.Errorf("Detach: %v", err)
					return
				}
			}
		}()
	}
	for round := 0; round < 4; round++ {
		for i := range v.Frames {
			if _, err := m.Feed(&v.Frames[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if got := m.Lanes(); got != 1 {
		t.Errorf("lanes after churn = %d, want 1", got)
	}
	res := m.Close()
	if len(res) != 1 || res[0].FramesProcessed != 4*len(v.Frames) {
		t.Errorf("survivor processed %d frames", res[0].FramesProcessed)
	}
}
