package exec

import (
	"reflect"
	"sync"
	"testing"

	"vqpy/internal/models"
	"vqpy/internal/video"
)

// TestMuxMatchesPerQuery is the shared-scan correctness contract: the
// MuxStream's per-query results must be identical to running every plan
// sequentially on its own stream.
func TestMuxMatchesPerQuery(t *testing.T) {
	v := video.CityFlow(42, 40).Generate()

	seqPlans := poolPlans(t, 8)
	seq, seqEnv := runAllWith(t, seqPlans, v, 1)

	muxPlans := poolPlans(t, 8)
	muxEnv := testEnv()
	ex, err := NewExecutor(Options{Env: muxEnv, Registry: models.BuiltinRegistry(), Cache: NewSharedCache()})
	if err != nil {
		t.Fatal(err)
	}
	mux, err := ex.RunMux(muxPlans, v)
	if err != nil {
		t.Fatal(err)
	}

	if len(seq) != len(mux) {
		t.Fatalf("%d vs %d results", len(seq), len(mux))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Matched, mux[i].Matched) {
			t.Errorf("query %d: matched vectors differ", i)
		}
		if !reflect.DeepEqual(seq[i].Hits, mux[i].Hits) {
			t.Errorf("query %d: hits differ", i)
		}
		if seq[i].Count != mux[i].Count || !reflect.DeepEqual(seq[i].TrackIDs, mux[i].TrackIDs) {
			t.Errorf("query %d: aggregation differs", i)
		}
		if seq[i].MemoHits != mux[i].MemoHits || seq[i].MemoMisses != mux[i].MemoMisses {
			t.Errorf("query %d: memo stats differ (%d/%d vs %d/%d)", i,
				seq[i].MemoHits, seq[i].MemoMisses, mux[i].MemoHits, mux[i].MemoMisses)
		}
	}

	// The shared scan runs detect and track once per frame for the whole
	// 8-query group; the per-query path tracks once per query per frame.
	frames := int64(len(v.Frames))
	if got := muxEnv.Clock.Invocations("yolox"); got != frames {
		t.Errorf("mux detector invocations = %d, want %d", got, frames)
	}
	if got := muxEnv.Clock.Invocations("tracker"); got != frames {
		t.Errorf("mux tracker invocations = %d, want %d", got, frames)
	}
	if got := seqEnv.Clock.Invocations("tracker"); got != 8*frames {
		t.Errorf("sequential tracker invocations = %d, want %d", got, 8*frames)
	}
}

// TestMuxScanGrouping checks the group structure the mux builds from
// plan scan prefixes: same detector → one group; a differing frame-
// filter chain → separate groups; different classes of one detector →
// one group with two trackers.
func TestMuxScanGrouping(t *testing.T) {
	ct := carType()
	plain1 := manualPlan(redCarQuery(ct), "car", ct)
	plain2 := manualPlan(redCarQuery(ct), "car", ct)

	filtered := manualPlan(redCarQuery(ct), "car", ct)
	filtered.Steps = append([]Step{{Kind: StepFrameFilter, FilterModel: "motion_diff"}}, filtered.Steps...)

	ex, err := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ex.OpenMux([]*Plan{plain1, plain2, filtered}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.groups) != 2 {
		t.Fatalf("groups = %d, want 2: %v", len(m.groups), m.Groups())
	}
	if m.groups[0].members != 2 || m.groups[1].members != 1 {
		t.Errorf("group members = %d/%d, want 2/1", m.groups[0].members, m.groups[1].members)
	}
}

// TestMuxSharedRasterAndVerdicts feeds frames incrementally and checks
// verdict alignment plus Close idempotence.
func TestMuxSharedRasterAndVerdicts(t *testing.T) {
	v := video.CityFlow(7, 10).Generate()
	ct := carType()
	plans := []*Plan{
		manualPlan(redCarQuery(ct), "car", ct),
		manualPlan(redCarQuery(ct), "car", ct),
	}
	ex, err := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ex.OpenMux(plans, v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Frames {
		verdicts, err := m.Feed(&v.Frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(verdicts) != 2 {
			t.Fatalf("frame %d: %d verdicts", i, len(verdicts))
		}
		if verdicts[0].Matched != verdicts[1].Matched {
			t.Errorf("frame %d: identical lanes disagree", i)
		}
	}
	res := m.Close()
	res2 := m.Close()
	if !reflect.DeepEqual(res, res2) {
		t.Error("Close is not idempotent")
	}
	if _, err := m.Feed(&v.Frames[0]); err == nil {
		t.Error("Feed after Close accepted")
	}
}

// TestMuxConcurrentStreams exercises the shared-scan fan-out under the
// race detector: several MuxStreams (one per simulated camera feed) run
// concurrently against one SharedCache, the deployment shape of a
// multi-stream serving tier.
func TestMuxConcurrentStreams(t *testing.T) {
	v := video.CityFlow(11, 30).Generate()
	cache := NewSharedCache()
	base := testEnv()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	results := make([][]*Result, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			env := base.Fork()
			defer base.Clock.Merge(env.Clock)
			ex, err := NewExecutor(Options{Env: env, Registry: models.BuiltinRegistry(), Cache: cache})
			if err != nil {
				errs[w] = err
				return
			}
			plans := poolPlans(t, 6)
			results[w], errs[w] = ex.RunMux(plans, v)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", w, err)
		}
	}
	for w := 1; w < 4; w++ {
		for i := range results[0] {
			if !reflect.DeepEqual(results[0][i].Matched, results[w][i].Matched) {
				t.Errorf("stream %d query %d: matched differs from stream 0", w, i)
			}
			if !reflect.DeepEqual(results[0][i].Hits, results[w][i].Hits) {
				t.Errorf("stream %d query %d: hits differ from stream 0", w, i)
			}
		}
	}
}
