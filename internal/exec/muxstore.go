package exec

// Store integration of the shared-scan engine: serving scan groups from
// the persistent result store (zero model cost on hit), keeping live
// operator state consistent when frames are served without running the
// operators (catch-up replays), and the backfill flavour of Attach that
// replays a joining query over already-scanned frames.
//
// The bit-identity argument mirrors DESIGN.md §5.3, extended one level:
// archived detections and labels are the pure-function model outputs
// themselves, and archived track ids were assigned by a tracker that
// consumed exactly the class-filtered detection sequence from frame
// zero — so applying them is indistinguishable from recomputing them,
// and a tracker (or stateful filter) that later has to run live first
// replays the frames it skipped, restoring the state a continuous run
// would have had. DESIGN.md §7 states the rules; the crosscheck tests
// (TestRescanBitIdentical*, TestBackfillAttachIdenticalToFreshOpen) pin
// them.

import (
	"fmt"

	"vqpy/internal/store"
	"vqpy/internal/track"
	"vqpy/internal/video"
)

// scanGroupFromStore tries to serve one group's frame entirely from the
// store: the archived dropped verdict, detections and per-class track
// ids, at zero model cost. It returns served=false — leaving all state
// untouched — when the store has no usable record (missing frame,
// missing detections, or a detector mismatch, the invalidation rule).
// Classes the archive does not cover are tracked live, after catching
// the tracker up, and the merged ids are persisted for the next pass.
func (m *MuxStream) scanGroupFromStore(g *muxGroup, f *video.Frame) (bool, error) {
	if m.source == "" {
		return false, nil
	}
	rec, release, ok := m.store.GetScanRef(m.source, g.key, f.Index)
	if !ok {
		return false, nil
	}
	defer release()
	if rec.Detect != g.detect {
		return false, nil
	}
	if rec.Dropped {
		g.dropped = true
		return true, nil
	}
	sdets, ok := m.store.GetDets(m.source, g.detect, f.Index)
	if !ok {
		return false, nil
	}
	dets := trackDetsOf(sdets)
	g.dropped = false
	var updated *store.ScanRecord
	for _, cls := range g.classes {
		st := g.tracks[cls]
		st.dets = st.dets[:0]
		for i := range dets {
			if classOf(dets[i].Class) == cls {
				st.dets = append(st.dets, dets[i])
			}
		}
		ids, have := rec.IDs[int(cls)]
		if have && len(ids) == len(st.dets) && st.bornAt == 0 {
			// Archived ids are from-zero by the persist rule below; they
			// may only be applied to a tracker with the same semantics —
			// a class cold-started mid-stream keeps its live numbering.
			st.ids = append(st.ids[:0], ids...)
			st.pending = append(st.pending, f.Index)
			continue
		}
		// The archive cannot serve this class (never tracked under this
		// signature, or this tracker is not from-zero): run the live
		// tracker after catching it up. From-zero ids are merged back so
		// the next pass serves this class too.
		if err := m.replayPending(g, cls, st); err != nil {
			return false, err
		}
		m.liveTrackUpdate(st)
		if st.bornAt != 0 {
			continue
		}
		if updated == nil {
			updated = &store.ScanRecord{
				Source: rec.Source, ScanKey: rec.ScanKey, Detect: rec.Detect,
				Frame: rec.Frame, IDs: make(map[int][]int, len(rec.IDs)+1),
			}
			for k, v := range rec.IDs {
				updated.IDs[k] = v
			}
		}
		updated.IDs[int(cls)] = append([]int(nil), st.ids...)
	}
	if updated != nil {
		if err := m.store.PutScan(updated); err != nil {
			return false, err
		}
	}
	return true, nil
}

// persistScan records the group's just-computed frame outcome (dropped
// verdict and per-class track ids; the raw detections were persisted by
// detectFrame). Only from-zero trackers' ids are archived: a class
// cold-started mid-stream numbers its tracks relative to its attach
// frame, which no other pass could reproduce — its frames are archived
// id-less and re-tracked (then merged) by the next from-zero pass.
// No-op without a bound store, and after a looping stream wraps (a
// cross-wrap tracker's state has no from-zero meaning either).
func (m *MuxStream) persistScan(g *muxGroup, f *video.Frame) error {
	if m.store == nil || m.source == "" || m.wrapped {
		return nil
	}
	rec := &store.ScanRecord{
		Source: m.source, ScanKey: g.key, Detect: g.detect,
		Frame: f.Index, Dropped: g.dropped,
	}
	if !g.dropped {
		rec.IDs = make(map[int][]int, len(g.classes))
		for _, cls := range g.classes {
			if st := g.tracks[cls]; st.bornAt == 0 {
				rec.IDs[int(cls)] = append([]int(nil), st.ids...)
			}
		}
	}
	return m.store.PutScan(rec)
}

// catchUpFilters replays the group's frame-filter chain over frames the
// store served (which the live filters therefore never saw), so a
// stateful filter's next live decision matches a continuous run's. The
// replay recomputes each frame's keep/drop decisions itself — they are
// deterministic, so intermediate short-circuiting matches the archived
// pass. Stateless chains skip the replay: they carry no state to sync.
func (m *MuxStream) catchUpFilters(g *muxGroup, frameIdx int) error {
	if g.filterPos < 0 || g.filterPos >= frameIdx || len(g.filters) == 0 {
		// Chain not born yet, in sync, or the stream wrapped its source
		// (a looping clip re-feeds smaller indices; no gap to replay).
		return nil
	}
	if !g.statefulFilters {
		g.filterPos = frameIdx
		return nil
	}
	if m.src == nil {
		return fmt.Errorf("exec: scan group %q: stateful frame filters skipped store-served frames and no frame source is bound for catch-up", g.key)
	}
	for fi := g.filterPos; fi < frameIdx; fi++ {
		fr := m.src.FrameAt(fi)
		for _, fm := range g.filters {
			bf, err := m.e.filterInstance(g.filterInsts, fm)
			if err != nil {
				return err
			}
			if !bf.Keep(m.e.opts.Env, fr) {
				break
			}
		}
	}
	g.filterPos = frameIdx
	return nil
}

// replayFrames catches a tracker up over archived frames: for each frame
// index, the class-filtered archived detections are fed through one
// charged tracker update — real tracker work, paid once, exactly as a
// continuous run would have paid it.
func (m *MuxStream) replayFrames(g *muxGroup, cls video.Class, tk *track.Tracker, frames []int) error {
	var cdets, upBuf []track.Detection
	var ids []int
	for _, frame := range frames {
		sdets, ok := m.store.GetDets(m.source, g.detect, frame)
		if !ok {
			return fmt.Errorf("exec: store lacks archived detections for %s@%d needed by tracker catch-up", g.detect, frame)
		}
		cdets = cdets[:0]
		for i := range sdets {
			if classOf(sdets[i].Class) == cls {
				cdets = append(cdets, track.Detection{
					Box: sdets[i].Box, Class: sdets[i].Class, Score: sdets[i].Score, Ref: sdets[i].TruthID,
				})
			}
		}
		ids, upBuf = m.trackerUpdate(tk, cdets, ids, upBuf)
	}
	return nil
}

// replayPending flushes a shared tracker's catch-up backlog (frames the
// store served while the tracker sat idle) before it runs live again.
func (m *MuxStream) replayPending(g *muxGroup, cls video.Class, st *sharedTrack) error {
	if len(st.pending) == 0 {
		return nil
	}
	if err := m.replayFrames(g, cls, st.tracker, st.pending); err != nil {
		return err
	}
	st.pending = st.pending[:0]
	return nil
}

// AttachBackfill admits a plan like Attach and then replays it over
// every frame the stream already scanned, reading the archived per-frame
// scan output from the bound store — so the lane's result is
// bit-identical to having been attached at frame zero (the crosscheck
// against a fresh OpenShared of the same set is a test invariant).
// Historical detector, filter and tracker outputs are applied, not
// recomputed; only the lane's residual operators (properties behind the
// label store, predicates, aggregation) run, in frame order, exactly as
// Feed would have run them.
//
// Requirements: a store and frame source are bound (BindStore), the
// stream has not wrapped a looping source, the store covers every
// already-scanned frame of the plan's scan group, and the group's class
// tracker — when it predates this attach — has from-zero semantics
// (bornAt 0), since a tracker cold-started mid-stream assigns ids a
// from-zero replay could not match. On any failure the attach is rolled
// back and the stream is left exactly as it was.
func (m *MuxStream) AttachBackfill(p *Plan) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, fmt.Errorf("exec: AttachBackfill on closed mux stream")
	}
	if m.store == nil || m.src == nil {
		return 0, fmt.Errorf("exec: AttachBackfill requires a bound store and frame source (MuxStream.BindStore)")
	}
	n := m.framesFed
	if m.wrapped || n > m.src.NumFrames() {
		return 0, fmt.Errorf("exec: AttachBackfill after the stream wrapped its %d-frame source (%d frames fed): history is ambiguous", m.src.NumFrames(), n)
	}
	// Fail fast, before any lane state exists, when the archive cannot
	// possibly cover the replay (backfillLane still verifies per frame).
	if sig := ScanPrefixOf(p); sig.Shareable && n > 0 && !m.store.CoversScans(m.source, sig.Key(), n) {
		return 0, fmt.Errorf("exec: store does not cover the %d already-scanned frames of scan group %q; cannot backfill", n, sig.Key())
	}
	l, err := m.attachLocked(p)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		l.backfilled = true
		return l.id, nil
	}
	if err := m.backfillLane(l, n); err != nil {
		m.detachLocked(l)
		return 0, err
	}
	return l.id, nil
}

// backfillLane replays one freshly attached lane over frames [0, n).
func (m *MuxStream) backfillLane(l *muxLane, n int) error {
	clock := m.e.opts.Env.Clock
	if l.group == nil {
		// Non-shareable plans run whole inside their lane, so the replay
		// is literally from-zero execution of the plan — with detector
		// and label lookups landing in the store.
		for f := 0; f < n; f++ {
			before := clock.TotalMS()
			if err := m.laneReplayFrame(l, m.src.FrameAt(f), false, nil, nil); err != nil {
				return err
			}
			l.virtualMS += clock.TotalMS() - before
		}
		l.backfilled = true
		return nil
	}

	g := l.group
	st := g.tracks[l.sig.Class]
	fresh := st.refs == 1 // attachLocked just incremented; 1 means it created the tracker
	if !fresh && st.bornAt != 0 {
		return fmt.Errorf("exec: cannot backfill: class %s tracker in scan group %q was cold-started at frame %d; its live ids cannot match a from-zero history",
			l.sig.Class, g.key, st.bornAt)
	}
	// A pre-existing tracker's state must not be perturbed, so id
	// reconstruction for frames the archive did not cover uses a
	// throwaway replay tracker; a tracker created by this attach is
	// caught up in place (st.pending), giving it from-zero state for
	// the live frames ahead.
	var replayTk *track.Tracker
	var replayPending []int
	if !fresh {
		replayTk = track.NewTracker(track.DefaultConfig())
	}

	var cdets, upBuf []track.Detection
	var scratchIDs []int
	for f := 0; f < n; f++ {
		rec, release, ok := m.store.GetScanRef(m.source, g.key, f)
		if !ok {
			return fmt.Errorf("exec: store does not cover frame %d of scan group %q; cannot backfill", f, g.key)
		}
		err := func() error {
			defer release()
			if rec.Detect != g.detect {
				return fmt.Errorf("exec: archived scan of %q used detector %q but the plan chose %q; cannot backfill", g.key, rec.Detect, g.detect)
			}
			before := clock.TotalMS()
			fr := m.src.FrameAt(f)
			if rec.Dropped {
				if err := m.laneReplayFrame(l, fr, true, nil, nil); err != nil {
					return err
				}
				l.virtualMS += clock.TotalMS() - before
				return nil
			}
			sdets, ok := m.store.GetDets(m.source, g.detect, f)
			if !ok {
				return fmt.Errorf("exec: store lacks archived detections for %s@%d; cannot backfill", g.detect, f)
			}
			cdets = cdets[:0]
			for i := range sdets {
				if classOf(sdets[i].Class) == l.sig.Class {
					cdets = append(cdets, track.Detection{
						Box: sdets[i].Box, Class: sdets[i].Class, Score: sdets[i].Score, Ref: sdets[i].TruthID,
					})
				}
			}
			var ids []int
			if recIDs, have := rec.IDs[int(l.sig.Class)]; have && len(recIDs) == len(cdets) {
				ids = recIDs
				if fresh {
					st.pending = append(st.pending, f)
				} else {
					replayPending = append(replayPending, f)
				}
			} else if fresh {
				// Reconstruct from-zero ids with the lane's own shared
				// tracker and persist them for the next pass.
				if err := m.replayPending(g, l.sig.Class, st); err != nil {
					return err
				}
				st.dets = append(st.dets[:0], cdets...)
				m.liveTrackUpdate(st)
				ids = st.ids
				if err := m.persistMergedIDs(rec, l.sig.Class, ids); err != nil {
					return err
				}
			} else {
				if err := m.replayFrames(g, l.sig.Class, replayTk, replayPending); err != nil {
					return err
				}
				replayPending = replayPending[:0]
				scratchIDs, upBuf = m.trackerUpdate(replayTk, cdets, scratchIDs, upBuf)
				ids = scratchIDs
				if err := m.persistMergedIDs(rec, l.sig.Class, ids); err != nil {
					return err
				}
			}
			if err := m.laneReplayFrame(l, fr, false, cdets, ids); err != nil {
				return err
			}
			l.virtualMS += clock.TotalMS() - before
			return nil
		}()
		if err != nil {
			return err
		}
	}
	if fresh {
		st.bornAt = 0
	}
	if g.members == 1 && g.filterPos == -1 {
		// The group was created by this attach: its (cold) filter chain
		// is allowed to catch up from frame zero if it ever runs live.
		g.filterPos = 0
	}
	l.backfilled = true
	return nil
}

// persistMergedIDs re-persists an archived scan record with one class's
// reconstructed ids merged in.
func (m *MuxStream) persistMergedIDs(rec *store.ScanRecord, cls video.Class, ids []int) error {
	updated := &store.ScanRecord{
		Source: rec.Source, ScanKey: rec.ScanKey, Detect: rec.Detect,
		Frame: rec.Frame, IDs: make(map[int][]int, len(rec.IDs)+1),
	}
	for k, v := range rec.IDs {
		updated.IDs[k] = v
	}
	updated.IDs[int(cls)] = append([]int(nil), ids...)
	return m.store.PutScan(updated)
}

// laneReplayFrame runs one archived frame through a lane: prepare the
// frame context, bind the archived scan output (for shareable lanes) and
// execute the lane's operators — the backfill mirror of Feed's per-lane
// section.
func (m *MuxStream) laneReplayFrame(l *muxLane, fr *video.Frame, dropped bool, dets []track.Detection, ids []int) error {
	if l.fc == nil {
		l.fc = newFrameCtx(fr)
	} else {
		l.fc.reset(fr)
	}
	switch {
	case dropped:
		l.fc.Dropped = true
	case l.group != nil:
		m.bindLaneDets(l, dets, ids)
	}
	_, err := m.runLaneFrame(l)
	return err
}
