// Package exec implements the paper's backend execution engine (§4): the
// VObj-centric graph data model, the six operator kinds implemented as
// iterators over frame batches, sliding-window state for stateful
// properties, the object-level computation reuse of §4.2 (intrinsic
// property memoization keyed by Kalman-tracker identities, plus a
// detection/classification cache for query-level reuse), and the event
// combinators behind the higher-order queries.
//
// The package defines the physical Plan representation; the planner
// (internal/plan) builds and optimizes Plans, then hands them to an
// Executor.
package exec

import (
	"fmt"
	"strings"

	"vqpy/internal/core"
	"vqpy/internal/video"
)

// StepKind enumerates the operator kinds of §4.1 (video reader and
// output projection are implicit in the executor loop).
type StepKind int

// Step kinds. Fused steps come from the operator-fusion optimization.
const (
	StepFrameFilter StepKind = iota
	StepDetect
	StepTrack
	StepProject
	StepVObjFilter
	StepRequire
	StepRelProject
	StepRelFilter
	StepFused
	// StepScene binds the special scene VObj (§3): one node per frame
	// covering the whole frame, carrying background properties.
	StepScene
)

var stepKindNames = [...]string{
	"frame_filter", "detect", "track", "project", "vobj_filter",
	"require", "rel_project", "rel_filter", "fused", "scene",
}

// String implements fmt.Stringer.
func (k StepKind) String() string {
	if k < 0 || int(k) >= len(stepKindNames) {
		return "invalid"
	}
	return stepKindNames[k]
}

// InstanceBind maps a query instance onto a detector output class.
type InstanceBind struct {
	Instance string
	Class    video.Class
}

// Device names for operator placement (§4.1: compute-intensive
// operators on a GPU server, cheap filters on the camera/edge).
const (
	DeviceServer = "server"
	DeviceEdge   = "edge"
)

// Step is one operator in a physical plan. Exactly the fields relevant
// to its Kind are set.
type Step struct {
	Kind StepKind

	// Device places the operator ("edge" or "server"; empty means
	// server). The executor attributes each step's cost to a
	// device:<name> ledger account, and charges the uplink transfer
	// when a frame crosses from edge to server operators.
	Device string

	// FrameFilter: the binary-filter model name.
	FilterModel string

	// Detect: model name and the instances it populates.
	DetectModel string
	Binds       []InstanceBind

	// Project: the property to compute for an instance. Prop is nil
	// for built-ins (which need no projection). Intrinsic properties
	// are memoized unless the plan disables it.
	Instance string
	Prop     *core.Property

	// VObjFilter: a single-instance conjunct evaluated lazily.
	FilterPred core.Pred

	// Require: frame is dropped when the instance has no alive nodes.
	RequireInstance string

	// RelProject / RelFilter.
	Relation string
	RelBind  *core.RelBinding
	RelProp  *core.RelProperty
	RelPred  core.Pred

	// Fused: the sub-steps executed as one operator.
	Fused []Step
}

// String renders a step compactly for plan explanations.
func (s Step) String() string {
	switch s.Kind {
	case StepFrameFilter:
		return fmt.Sprintf("frame_filter(%s)", s.FilterModel)
	case StepDetect:
		insts := make([]string, len(s.Binds))
		for i, b := range s.Binds {
			insts[i] = b.Instance
		}
		return fmt.Sprintf("detect(%s → %s)", s.DetectModel, strings.Join(insts, ","))
	case StepTrack:
		return fmt.Sprintf("track(%s)", s.Instance)
	case StepProject:
		name := "?"
		if s.Prop != nil {
			name = s.Prop.Name
		}
		return fmt.Sprintf("project(%s.%s)", s.Instance, name)
	case StepVObjFilter:
		return fmt.Sprintf("vobj_filter(%s)", s.FilterPred)
	case StepRequire:
		return fmt.Sprintf("require(%s)", s.RequireInstance)
	case StepRelProject:
		return fmt.Sprintf("rel_project(%s.%s)", s.Relation, s.RelProp.Name)
	case StepRelFilter:
		return fmt.Sprintf("rel_filter(%s)", s.RelPred)
	case StepFused:
		parts := make([]string, len(s.Fused))
		for i, f := range s.Fused {
			parts[i] = f.String()
		}
		return "fused[" + strings.Join(parts, "; ") + "]"
	case StepScene:
		return fmt.Sprintf("scene(%s)", s.Instance)
	}
	return "invalid"
}

// Plan is a physical execution plan for one basic (or merged spatial)
// query.
type Plan struct {
	// Query is the logical query the plan implements.
	Query *core.Query

	// Steps execute in order for every batch.
	Steps []Step

	// BatchSize is the number of frames per batch (user-defined per
	// §4.1; default 8).
	BatchSize int

	// DisableMemo turns off intrinsic memoization (the "vanilla VQPy"
	// configuration of §5.1).
	DisableMemo bool

	// UplinkMS is the per-frame transfer cost charged when a frame
	// survives the edge-placed prefix and must be shipped to the
	// server (0 disables device accounting entirely).
	UplinkMS float64

	// Label identifies the plan variant in profiling output.
	Label string

	// ScanSuffix decorates the plan's scan signature (ScanSig.Suffix)
	// for non-default scan fidelities: archive passes at a reduced
	// fidelity set it to the fidelity key so their records never collide
	// with the full-fidelity archive of the same prefix.
	ScanSuffix string

	// EstCostMS and EstF1 are filled by the planner's canary
	// profiling.
	EstCostMS float64
	EstF1     float64
	// EstPerFrameMS is EstCostMS divided by the profiled frame count:
	// the per-frame virtual cost estimate the serving layer admits
	// queries against.
	EstPerFrameMS float64
}

// String renders the whole plan, one step per line.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s (query %s, batch %d", p.Label, p.Query.Name(), p.BatchSize)
	if p.DisableMemo {
		b.WriteString(", memo off")
	}
	b.WriteString(")\n")
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "  %2d. %s\n", i, s.String())
	}
	return b.String()
}

// Validate performs structural checks: detectors before projections,
// tracking before stateful projections, projections before the filters
// that read them.
func (p *Plan) Validate() error {
	if p.Query == nil {
		return fmt.Errorf("exec: plan without query")
	}
	if p.BatchSize < 1 {
		return fmt.Errorf("exec: batch size %d", p.BatchSize)
	}
	detected := map[string]bool{}
	tracked := map[string]bool{}
	projected := map[string]bool{} // "inst.prop"
	var walk func(steps []Step) error
	walk = func(steps []Step) error {
		for _, s := range steps {
			switch s.Kind {
			case StepDetect:
				for _, b := range s.Binds {
					detected[b.Instance] = true
				}
			case StepScene:
				detected[s.Instance] = true
				tracked[s.Instance] = true // the scene is its own track
			case StepTrack:
				if !detected[s.Instance] {
					return fmt.Errorf("exec: track %s before its detector", s.Instance)
				}
				if tracked[s.Instance] {
					return fmt.Errorf("exec: instance %s tracked twice", s.Instance)
				}
				tracked[s.Instance] = true
			case StepProject:
				if !detected[s.Instance] {
					return fmt.Errorf("exec: project %s before its detector", s.Instance)
				}
				if s.Prop != nil {
					if s.Prop.Stateful && !tracked[s.Instance] {
						return fmt.Errorf("exec: stateful projection %s.%s without tracking", s.Instance, s.Prop.Name)
					}
					projected[s.Instance+"."+s.Prop.Name] = true
				}
			case StepVObjFilter:
				props, _ := core.RefsOf(s.FilterPred)
				for _, ref := range props {
					if !detected[ref.Instance] {
						return fmt.Errorf("exec: filter on undetected instance %s", ref.Instance)
					}
					if !core.IsBuiltinProp(ref.Prop) && !projected[ref.Instance+"."+ref.Prop] {
						return fmt.Errorf("exec: filter reads unprojected %s.%s", ref.Instance, ref.Prop)
					}
				}
			case StepRequire:
				if !detected[s.RequireInstance] {
					return fmt.Errorf("exec: require on undetected instance %s", s.RequireInstance)
				}
			case StepRelProject:
				if s.RelBind == nil || s.RelProp == nil {
					return fmt.Errorf("exec: rel_project missing binding")
				}
				if !detected[s.RelBind.LeftInst] || !detected[s.RelBind.RightInst] {
					return fmt.Errorf("exec: rel_project before participant detectors")
				}
			case StepFused:
				if err := walk(s.Fused); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(p.Steps)
}
