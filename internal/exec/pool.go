package exec

// This file is the worker-pool scheduler for multi-query serving. The
// paper's §4.2 cross-query computation reuse only pays off at the wall
// clock when queries actually run concurrently against the shared
// cache; RunAll is that serving loop. Each worker executes whole
// queries against a forked virtual clock (merged back afterwards) and
// one shared, single-flighted SharedCache, so N queries over the same
// video pay each (model, frame) inference exactly once while their
// per-query work overlaps.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vqpy/internal/video"
)

// RunAll executes every plan over the video on a pool of `workers`
// goroutines sharing the executor's cache (one is created for the call
// when the executor has none, so cross-query reuse always applies).
//
// Results are positionally aligned with plans and bit-identical to
// sequential execution: model outputs are pure functions of (seed,
// model, frame, object), tracker and memo state are per-query, and the
// single-flight cache guard only changes who pays a model's virtual
// cost, never its output. Per-worker virtual-clock ledgers are merged
// into the executor's session clock before returning, so the ledger
// totals are worker-count independent too.
//
// workers <= 0 uses GOMAXPROCS; workers == 1 degenerates to a
// sequential loop on the caller's goroutine.
func (e *Executor) RunAll(plans []*Plan, v *video.Video, workers int) ([]*Result, error) {
	if len(plans) == 0 {
		return nil, nil
	}
	opts := e.opts
	if opts.Cache == nil {
		opts.Cache = NewSharedCache()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plans) {
		workers = len(plans)
	}

	results := make([]*Result, len(plans))
	if workers == 1 {
		ex, err := NewExecutor(opts)
		if err != nil {
			return nil, err
		}
		for i, p := range plans {
			r, err := ex.Run(p, v)
			if err != nil {
				return nil, fmt.Errorf("exec: query %s: %w", p.Query.Name(), err)
			}
			results[i] = r
		}
		return results, nil
	}

	jobs := make(chan int)
	errs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wopts := opts
			wopts.Env = opts.Env.Fork()
			defer e.opts.Env.Clock.Merge(wopts.Env.Clock)
			ex, err := NewExecutor(wopts)
			if err != nil {
				errs[w] = err
				failed.Store(true)
				for range jobs {
					// Keep draining so the feeder never blocks on a
					// channel nobody reads.
				}
				return
			}
			for i := range jobs {
				if failed.Load() {
					continue // drain remaining jobs after a failure
				}
				r, err := ex.Run(plans[i], v)
				if err != nil {
					errs[w] = fmt.Errorf("exec: query %s: %w", plans[i].Query.Name(), err)
					failed.Store(true)
					continue
				}
				results[i] = r
			}
		}(w)
	}
	for i := range plans {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
