package exec

import (
	"fmt"
	"reflect"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// poolPlans builds several distinct red/blue/black-car plans over the
// shared manual-plan scaffolding.
func poolPlans(t *testing.T, n int) []*Plan {
	t.Helper()
	colors := []string{"red", "blue", "black", "white", "silver", "green", "red", "blue"}
	plans := make([]*Plan, 0, n)
	for i := 0; i < n; i++ {
		ct := carType()
		q := core.NewQuery(fmt.Sprintf("Q%d", i)).
			Use("car", ct).
			Where(core.And(
				core.P("car", core.PropScore).Gt(0.5),
				core.P("car", "color").Eq(colors[i%len(colors)]),
			)).
			FrameOutput(core.Sel("car", core.PropTrackID), core.Sel("car", "color"))
		plans = append(plans, manualPlan(q, "car", ct))
	}
	return plans
}

// runAllWith executes the plans with the given worker count on a fresh
// environment and shared cache.
func runAllWith(t *testing.T, plans []*Plan, v *video.Video, workers int) ([]*Result, *models.Env) {
	t.Helper()
	env := testEnv()
	ex, err := NewExecutor(Options{Env: env, Registry: models.BuiltinRegistry(), Cache: NewSharedCache()})
	if err != nil {
		t.Fatal(err)
	}
	results, err := ex.RunAll(plans, v, workers)
	if err != nil {
		t.Fatal(err)
	}
	return results, env
}

// TestRunAllParallelMatchesSequential is the core correctness claim of
// the scheduler: worker count must not change any query's observable
// result.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	v := video.CityFlow(42, 40).Generate()
	for _, workers := range []int{2, 4, 8} {
		seqPlans := poolPlans(t, 8)
		parPlans := poolPlans(t, 8)
		seq, seqEnv := runAllWith(t, seqPlans, v, 1)
		par, parEnv := runAllWith(t, parPlans, v, workers)
		if len(seq) != len(par) {
			t.Fatalf("workers=%d: %d vs %d results", workers, len(seq), len(par))
		}
		for i := range seq {
			if !reflect.DeepEqual(seq[i].Matched, par[i].Matched) {
				t.Errorf("workers=%d query %d: matched vectors differ", workers, i)
			}
			if !reflect.DeepEqual(seq[i].Hits, par[i].Hits) {
				t.Errorf("workers=%d query %d: hits differ", workers, i)
			}
			if seq[i].Count != par[i].Count || !reflect.DeepEqual(seq[i].TrackIDs, par[i].TrackIDs) {
				t.Errorf("workers=%d query %d: aggregation differs", workers, i)
			}
		}
		// Ledger totals must be worker-count independent: the same
		// model work is charged somewhere regardless of who runs it.
		seqMS, parMS := seqEnv.Clock.TotalMS(), parEnv.Clock.TotalMS()
		if diff := seqMS - parMS; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("workers=%d: ledger totals differ: %.3f vs %.3f", workers, seqMS, parMS)
		}
	}
}

// TestRunAllSharesDetectorWork asserts cross-query reuse survives the
// pool: 8 queries over one video must pay each (model, frame) detection
// once.
func TestRunAllSharesDetectorWork(t *testing.T) {
	v := video.CityFlow(42, 30).Generate()
	plans := poolPlans(t, 8)
	env := testEnv()
	cache := NewSharedCache()
	ex, err := NewExecutor(Options{Env: env, Registry: models.BuiltinRegistry(), Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.RunAll(plans, v, 4); err != nil {
		t.Fatal(err)
	}
	yolox := env.Clock.Account("yolox")
	perFrame := 28.0 // yolox CostMS; per-object surcharge is 0
	maxOnce := float64(len(v.Frames)) * perFrame * 1.01
	if yolox > maxOnce {
		t.Errorf("yolox charged %.1f ms; want at most one detection per frame (~%.1f ms)", yolox, maxOnce)
	}
}

func TestRunAllEmptyAndError(t *testing.T) {
	v := video.CityFlow(42, 10).Generate()
	env := testEnv()
	ex, err := NewExecutor(Options{Env: env, Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := ex.RunAll(nil, v, 4); err != nil || res != nil {
		t.Fatalf("empty RunAll = %v, %v", res, err)
	}
	// A plan with a missing detector must fail the whole call.
	ct := carType()
	q := core.NewQuery("Bad").Use("car", ct).Where(core.P("car", core.PropScore).Gt(0.5))
	bad := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "no_such_model", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "car"},
	}, BatchSize: 4, Label: "bad"}
	good := poolPlans(t, 3)
	if _, err := ex.RunAll(append(good, bad), v, 4); err == nil {
		t.Fatal("RunAll with a broken plan did not fail")
	}
}
