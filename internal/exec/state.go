package exec

import (
	"sync"
	"sync/atomic"

	"vqpy/internal/geom"
	"vqpy/internal/track"
)

// historyWindow is the sliding window a stateful projector maintains for
// one (instance, track, dependency) triple (§4.1: "the stateful projector
// maintains a local sliding window of historical data of all of its
// dependencies").
type historyWindow struct {
	cap    int
	values []any
	frames []int
}

func newHistoryWindow(capacity int) *historyWindow {
	return &historyWindow{cap: capacity}
}

// push appends a value observed on a frame, evicting the oldest entry
// beyond capacity. Re-pushing the same frame overwrites the last entry.
func (w *historyWindow) push(frame int, v any) {
	if n := len(w.frames); n > 0 && w.frames[n-1] == frame {
		w.values[n-1] = v
		return
	}
	w.values = append(w.values, v)
	w.frames = append(w.frames, frame)
	if len(w.values) > w.cap {
		w.values = w.values[1:]
		w.frames = w.frames[1:]
	}
}

// last returns up to n most recent values, oldest first.
func (w *historyWindow) last(n int) []any {
	if n > len(w.values) {
		n = len(w.values)
	}
	return w.values[len(w.values)-n:]
}

// fnvSeed / fnvPrime are the FNV-1a constants used to spread cache keys
// across shards.
const (
	fnvSeed  = 0xcbf29ce484222325
	fnvPrime = 0x100000001b3
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvInt(h uint64, v int) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= (u >> (8 * i)) & 0xFF
		h *= fnvPrime
	}
	return h
}

// memoShards is the shard count for MemoStore. Memo lookups happen on
// every projected intrinsic property of every node, so even per-query
// stores benefit from spreading lock traffic.
const memoShards = 8

// MemoStore is the object-level computation reuse table of §4.2: values
// of intrinsic properties keyed by (instance, property, track). Once
// computed, an intrinsic value is reused for every later frame in which
// the tracker re-identifies the object.
//
// The store is sharded by key hash and safe for concurrent use; hit and
// miss counters are kept with atomics so Stats never contends with the
// data path.
type MemoStore struct {
	shards [memoShards]memoShard
	hits   atomic.Int64
	miss   atomic.Int64
}

type memoShard struct {
	mu   sync.RWMutex
	vals map[memoKey]any
}

type memoKey struct {
	instance, prop string
	trackID        int
}

func (k memoKey) shard() int {
	h := fnvString(fnvSeed, k.instance)
	h = fnvString(h, k.prop)
	h = fnvInt(h, k.trackID)
	return int(h % memoShards)
}

// NewMemoStore returns an empty memo store.
func NewMemoStore() *MemoStore {
	m := &MemoStore{}
	for i := range m.shards {
		m.shards[i].vals = make(map[memoKey]any)
	}
	return m
}

// Get returns the memoized value for a track's intrinsic property.
func (m *MemoStore) Get(instance, prop string, trackID int) (any, bool) {
	k := memoKey{instance, prop, trackID}
	sh := &m.shards[k.shard()]
	sh.mu.RLock()
	v, ok := sh.vals[k]
	sh.mu.RUnlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.miss.Add(1)
	}
	return v, ok
}

// Put memoizes a value.
func (m *MemoStore) Put(instance, prop string, trackID int, v any) {
	k := memoKey{instance, prop, trackID}
	sh := &m.shards[k.shard()]
	sh.mu.Lock()
	sh.vals[k] = v
	sh.mu.Unlock()
}

// Stats returns (hits, misses) for reuse diagnostics.
func (m *MemoStore) Stats() (hits, misses int) {
	return int(m.hits.Load()), int(m.miss.Load())
}

// cacheShards is the shard count for SharedCache. The cache is the one
// structure every concurrent query touches on every frame, so shards are
// sized generously to keep lock hold times from serializing workers.
const cacheShards = 16

// detKey identifies one detector invocation: (model, frame). A
// comparable struct key replaces the seed's fmt.Sprintf string keys,
// removing a per-lookup allocation and the formatting cost.
type detKey struct {
	model string
	frame int
}

func (k detKey) shard() int {
	h := fnvString(fnvSeed, k.model)
	h = fnvInt(h, k.frame)
	return int(h % cacheShards)
}

// labelKey identifies one per-crop model invocation: (model, frame,
// quantized box, object identity). The truth id participates because
// the simulated classifiers derive their noise from it — without it,
// two overlapping objects whose boxes quantize identically would share
// one cached label, and which object computed it first would depend on
// scheduling, breaking RunAll's identical-to-sequential contract.
type labelKey struct {
	model          string
	frame          int
	x1, y1, x2, y2 int
	truthID        int
}

func makeLabelKey(model string, frame int, box geom.BBox, truthID int) labelKey {
	return labelKey{
		model: model, frame: frame,
		x1: int(box.X1), y1: int(box.Y1), x2: int(box.X2), y2: int(box.Y2),
		truthID: truthID,
	}
}

func (k labelKey) shard() int {
	h := fnvString(fnvSeed, k.model)
	h = fnvInt(h, k.frame)
	h = fnvInt(h, k.x1)
	h = fnvInt(h, k.y1)
	return int(h % cacheShards)
}

// flight is one in-progress computation other goroutines can wait on
// (the single-flight guard: when two queries need the same detector
// output concurrently, exactly one pays the model cost).
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// SharedCache implements query-level computation reuse (§4.2 end, §5.3
// "VQPy-Opt"): detector outputs keyed by (model, frame) and
// classification outputs keyed by (model, frame, quantized box) are
// shared across queries executed on the same video.
//
// The cache is sharded and safe for concurrent use by many query
// streams. DoDetections and DoLabel add a single-flight guard so
// concurrent misses on the same key run the model exactly once.
type SharedCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	miss   atomic.Int64
}

type cacheShard struct {
	mu          sync.Mutex
	detects     map[detKey][]track.Detection
	labels      map[labelKey]any
	detFlight   map[detKey]*flight
	labelFlight map[labelKey]*flight
}

// NewSharedCache returns an empty cross-query cache.
func NewSharedCache() *SharedCache {
	c := &SharedCache{}
	for i := range c.shards {
		c.shards[i].detects = make(map[detKey][]track.Detection)
		c.shards[i].labels = make(map[labelKey]any)
	}
	return c
}

// GetDetections returns cached detector output for a frame. The returned
// slice is shared across callers and must not be mutated.
func (c *SharedCache) GetDetections(model string, frame int) ([]track.Detection, bool) {
	if c == nil {
		return nil, false
	}
	k := detKey{model, frame}
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	dets, ok := sh.detects[k]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.miss.Add(1)
	}
	return dets, ok
}

// PutDetections caches detector output for a frame. The slice is copied,
// so callers may keep mutating their own.
func (c *SharedCache) PutDetections(model string, frame int, dets []track.Detection) {
	if c == nil {
		return
	}
	owned := make([]track.Detection, len(dets))
	copy(owned, dets)
	k := detKey{model, frame}
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	sh.detects[k] = owned
	sh.mu.Unlock()
}

// DoDetections returns the cached detector output for (model, frame) or
// computes, caches and returns it. Concurrent callers missing on the same
// key are deduplicated: one runs compute, the rest wait and share its
// output (and its error, which is not cached). A nil cache degenerates to
// calling compute directly.
func (c *SharedCache) DoDetections(model string, frame int, compute func() ([]track.Detection, error)) ([]track.Detection, error) {
	if c == nil {
		return compute()
	}
	k := detKey{model, frame}
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	if dets, ok := sh.detects[k]; ok {
		sh.mu.Unlock()
		c.hits.Add(1)
		return dets, nil
	}
	if f, ok := sh.detFlight[k]; ok {
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		c.hits.Add(1)
		return f.val.([]track.Detection), nil
	}
	f := &flight{done: make(chan struct{})}
	if sh.detFlight == nil {
		sh.detFlight = make(map[detKey]*flight)
	}
	sh.detFlight[k] = f
	sh.mu.Unlock()
	c.miss.Add(1)

	dets, err := compute()
	f.val, f.err = dets, err
	sh.mu.Lock()
	if err == nil {
		sh.detects[k] = dets
	}
	delete(sh.detFlight, k)
	sh.mu.Unlock()
	close(f.done)
	return dets, err
}

// GetLabel returns a cached classification for (model, frame, box,
// object).
func (c *SharedCache) GetLabel(model string, frame int, box geom.BBox, truthID int) (any, bool) {
	if c == nil {
		return nil, false
	}
	k := makeLabelKey(model, frame, box, truthID)
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	v, ok := sh.labels[k]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.miss.Add(1)
	}
	return v, ok
}

// PutLabel caches a classification.
func (c *SharedCache) PutLabel(model string, frame int, box geom.BBox, truthID int, v any) {
	if c == nil {
		return
	}
	k := makeLabelKey(model, frame, box, truthID)
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	sh.labels[k] = v
	sh.mu.Unlock()
}

// DoLabel returns the cached classification for (model, frame, box,
// object) or computes, caches and returns it, deduplicating concurrent
// misses like DoDetections. A nil cache degenerates to calling compute
// directly.
func (c *SharedCache) DoLabel(model string, frame int, box geom.BBox, truthID int, compute func() (any, error)) (any, error) {
	if c == nil {
		return compute()
	}
	k := makeLabelKey(model, frame, box, truthID)
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	if v, ok := sh.labels[k]; ok {
		sh.mu.Unlock()
		c.hits.Add(1)
		return v, nil
	}
	if f, ok := sh.labelFlight[k]; ok {
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		c.hits.Add(1)
		return f.val, nil
	}
	f := &flight{done: make(chan struct{})}
	if sh.labelFlight == nil {
		sh.labelFlight = make(map[labelKey]*flight)
	}
	sh.labelFlight[k] = f
	sh.mu.Unlock()
	c.miss.Add(1)

	v, err := compute()
	f.val, f.err = v, err
	sh.mu.Lock()
	if err == nil {
		sh.labels[k] = v
	}
	delete(sh.labelFlight, k)
	sh.mu.Unlock()
	close(f.done)
	return v, err
}

// Stats returns (hits, misses).
func (c *SharedCache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.miss.Load())
}

// runState is the mutable per-execution state: one tracker per instance,
// history windows, the memo store, and bookkeeping for video-level
// aggregation. Each Stream owns exactly one runState; it is never shared
// across goroutines.
type runState struct {
	trackers map[string]*track.Tracker
	windows  map[windowKey]*historyWindow
	memo     *MemoStore

	// matchedTracks notes tracks that satisfied the constraint at least
	// once, per instance (video-level aggregation input).
	matchedTracks map[string]map[int]bool
}

type windowKey struct {
	instance, prop string
	trackID        int
}

func newRunState() *runState {
	return &runState{
		trackers:      make(map[string]*track.Tracker),
		windows:       make(map[windowKey]*historyWindow),
		memo:          NewMemoStore(),
		matchedTracks: make(map[string]map[int]bool),
	}
}

func (rs *runState) tracker(instance string) *track.Tracker {
	tk, ok := rs.trackers[instance]
	if !ok {
		tk = track.NewTracker(track.DefaultConfig())
		rs.trackers[instance] = tk
	}
	return tk
}

func (rs *runState) window(instance, prop string, trackID, capacity int) *historyWindow {
	k := windowKey{instance, prop, trackID}
	w, ok := rs.windows[k]
	if !ok {
		w = newHistoryWindow(capacity)
		rs.windows[k] = w
	}
	return w
}

func (rs *runState) markMatched(instance string, trackID int) {
	m, ok := rs.matchedTracks[instance]
	if !ok {
		m = make(map[int]bool)
		rs.matchedTracks[instance] = m
	}
	m[trackID] = true
}
