package exec

import (
	"fmt"
	"sync"

	"vqpy/internal/geom"
	"vqpy/internal/track"
)

// historyWindow is the sliding window a stateful projector maintains for
// one (instance, track, dependency) triple (§4.1: "the stateful projector
// maintains a local sliding window of historical data of all of its
// dependencies").
type historyWindow struct {
	cap    int
	values []any
	frames []int
}

func newHistoryWindow(capacity int) *historyWindow {
	return &historyWindow{cap: capacity}
}

// push appends a value observed on a frame, evicting the oldest entry
// beyond capacity. Re-pushing the same frame overwrites the last entry.
func (w *historyWindow) push(frame int, v any) {
	if n := len(w.frames); n > 0 && w.frames[n-1] == frame {
		w.values[n-1] = v
		return
	}
	w.values = append(w.values, v)
	w.frames = append(w.frames, frame)
	if len(w.values) > w.cap {
		w.values = w.values[1:]
		w.frames = w.frames[1:]
	}
}

// last returns up to n most recent values, oldest first.
func (w *historyWindow) last(n int) []any {
	if n > len(w.values) {
		n = len(w.values)
	}
	return w.values[len(w.values)-n:]
}

// MemoStore is the object-level computation reuse table of §4.2: values
// of intrinsic properties keyed by (instance, property, track). Once
// computed, an intrinsic value is reused for every later frame in which
// the tracker re-identifies the object.
type MemoStore struct {
	mu   sync.Mutex
	vals map[memoKey]any
	hits int
	miss int
}

type memoKey struct {
	instance, prop string
	trackID        int
}

// NewMemoStore returns an empty memo store.
func NewMemoStore() *MemoStore {
	return &MemoStore{vals: make(map[memoKey]any)}
}

// Get returns the memoized value for a track's intrinsic property.
func (m *MemoStore) Get(instance, prop string, trackID int) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vals[memoKey{instance, prop, trackID}]
	if ok {
		m.hits++
	} else {
		m.miss++
	}
	return v, ok
}

// Put memoizes a value.
func (m *MemoStore) Put(instance, prop string, trackID int, v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vals[memoKey{instance, prop, trackID}] = v
}

// Stats returns (hits, misses) for reuse diagnostics.
func (m *MemoStore) Stats() (hits, misses int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.miss
}

// SharedCache implements query-level computation reuse (§4.2 end, §5.3
// "VQPy-Opt"): detector outputs keyed by (model, frame) and
// classification outputs keyed by (model, frame, quantized box) are
// shared across queries executed on the same video.
type SharedCache struct {
	mu      sync.Mutex
	detects map[string][]cachedDetection
	labels  map[string]any
	hits    int
	miss    int
}

type cachedDetection struct {
	node Node // template: instance unset
}

// NewSharedCache returns an empty cross-query cache.
func NewSharedCache() *SharedCache {
	return &SharedCache{
		detects: make(map[string][]cachedDetection),
		labels:  make(map[string]any),
	}
}

func detKey(model string, frame int) string {
	return fmt.Sprintf("%s@%d", model, frame)
}

func labelKey(model string, frame int, box geom.BBox) string {
	return fmt.Sprintf("%s@%d[%d,%d,%d,%d]", model, frame,
		int(box.X1), int(box.Y1), int(box.X2), int(box.Y2))
}

// GetDetections returns cached detector output for a frame.
func (c *SharedCache) GetDetections(model string, frame int) ([]track.Detection, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cached, ok := c.detects[detKey(model, frame)]
	if !ok {
		c.miss++
		return nil, false
	}
	c.hits++
	out := make([]track.Detection, len(cached))
	for i, cd := range cached {
		n := cd.node
		out[i] = track.Detection{Box: n.Box, Class: int(n.Class), Score: n.Score, Ref: n.TruthID}
	}
	return out, true
}

// PutDetections caches detector output for a frame.
func (c *SharedCache) PutDetections(model string, frame int, dets []track.Detection) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cached := make([]cachedDetection, len(dets))
	for i, d := range dets {
		truthID, _ := d.Ref.(int)
		cached[i] = cachedDetection{node: Node{
			Box: d.Box, Class: classOf(d.Class), Score: d.Score, TruthID: truthID,
		}}
	}
	c.detects[detKey(model, frame)] = cached
}

// GetLabel returns a cached classification for (model, frame, box).
func (c *SharedCache) GetLabel(model string, frame int, box geom.BBox) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.labels[labelKey(model, frame, box)]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return v, ok
}

// PutLabel caches a classification.
func (c *SharedCache) PutLabel(model string, frame int, box geom.BBox, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.labels[labelKey(model, frame, box)] = v
}

// Stats returns (hits, misses).
func (c *SharedCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}

// runState is the mutable per-execution state: one tracker per instance,
// history windows, the memo store, and bookkeeping for video-level
// aggregation.
type runState struct {
	trackers map[string]*track.Tracker
	windows  map[windowKey]*historyWindow
	memo     *MemoStore

	// matchedTracks notes tracks that satisfied the constraint at least
	// once, per instance (video-level aggregation input).
	matchedTracks map[string]map[int]bool
}

type windowKey struct {
	instance, prop string
	trackID        int
}

func newRunState() *runState {
	return &runState{
		trackers:      make(map[string]*track.Tracker),
		windows:       make(map[windowKey]*historyWindow),
		memo:          NewMemoStore(),
		matchedTracks: make(map[string]map[int]bool),
	}
}

func (rs *runState) tracker(instance string) *track.Tracker {
	tk, ok := rs.trackers[instance]
	if !ok {
		tk = track.NewTracker(track.DefaultConfig())
		rs.trackers[instance] = tk
	}
	return tk
}

func (rs *runState) window(instance, prop string, trackID, capacity int) *historyWindow {
	k := windowKey{instance, prop, trackID}
	w, ok := rs.windows[k]
	if !ok {
		w = newHistoryWindow(capacity)
		rs.windows[k] = w
	}
	return w
}

func (rs *runState) markMatched(instance string, trackID int) {
	m, ok := rs.matchedTracks[instance]
	if !ok {
		m = make(map[int]bool)
		rs.matchedTracks[instance] = m
	}
	m[trackID] = true
}
