package exec

// Concurrency suite for the sharded caches: run with -race. The shards,
// atomic stats and single-flight guards exist for RunAll's worker pool,
// so these tests hammer them from many goroutines at once.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vqpy/internal/geom"
	"vqpy/internal/track"
)

func TestSharedCacheConcurrentGetPutStats(t *testing.T) {
	c := NewSharedCache()
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				model := fmt.Sprintf("m%d", i%3)
				frame := i % 50
				box := geom.Rect(float64(i%7)*10, 0, 40, 30)
				c.PutDetections(model, frame, []track.Detection{{Box: box, Class: 1, Score: 0.9, Ref: g}})
				if dets, ok := c.GetDetections(model, frame); ok && len(dets) != 1 {
					t.Errorf("detections len = %d", len(dets))
					return
				}
				c.PutLabel(model, frame, box, g, "red")
				if v, ok := c.GetLabel(model, frame, box, g); ok && v != "red" {
					t.Errorf("label = %v", v)
					return
				}
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses == 0 {
		t.Fatal("stats recorded nothing")
	}
}

func TestMemoStoreConcurrentGetPutStats(t *testing.T) {
	m := NewMemoStore()
	const goroutines = 8
	const perG = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				inst := fmt.Sprintf("inst%d", i%2)
				prop := fmt.Sprintf("p%d", i%4)
				m.Put(inst, prop, i%20, i)
				if _, ok := m.Get(inst, prop, i%20); !ok {
					t.Error("freshly put memo value missing")
					return
				}
				m.Get(inst, prop, 9999) // guaranteed miss path
				m.Stats()
			}
		}(g)
	}
	wg.Wait()
	hits, misses := m.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats = %d hits, %d misses; want both nonzero", hits, misses)
	}
}

// TestDoDetectionsSingleFlight asserts the dedup guarantee: concurrent
// misses on one (model, frame) key run the detector exactly once, and
// every caller observes the same output slice.
func TestDoDetectionsSingleFlight(t *testing.T) {
	c := NewSharedCache()
	const goroutines = 16
	var computes atomic.Int32
	var wg sync.WaitGroup
	outs := make([][]track.Detection, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			dets, err := c.DoDetections("yolox", 7, func() ([]track.Detection, error) {
				computes.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return []track.Detection{{Box: geom.Rect(1, 2, 3, 4), Class: 2, Score: 0.8}}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			outs[g] = dets
		}(g)
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("detector ran %d times; single-flight wants 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if &outs[g][0] != &outs[0][0] {
			t.Fatalf("goroutine %d got a different slice than goroutine 0", g)
		}
	}
	if hits, _ := c.Stats(); hits != goroutines-1 {
		t.Errorf("hits = %d, want %d (every waiter counts as a hit)", hits, goroutines-1)
	}
}

func TestDoLabelSingleFlight(t *testing.T) {
	c := NewSharedCache()
	const goroutines = 12
	box := geom.Rect(10, 10, 40, 30)
	var computes atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.DoLabel("color_detect", 3, box, 17, func() (any, error) {
				computes.Add(1)
				time.Sleep(2 * time.Millisecond)
				return "red", nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if v != "red" {
				t.Errorf("label = %v", v)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("classifier ran %d times; single-flight wants 1", n)
	}
}

// TestDoDetectionsErrorNotCached checks that a failed computation is
// propagated to concurrent waiters but not stored, so a later call
// retries.
func TestDoDetectionsErrorNotCached(t *testing.T) {
	c := NewSharedCache()
	boom := errors.New("model exploded")
	if _, err := c.DoDetections("m", 1, func() ([]track.Detection, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	dets, err := c.DoDetections("m", 1, func() ([]track.Detection, error) {
		return []track.Detection{{Class: 5}}, nil
	})
	if err != nil || len(dets) != 1 {
		t.Fatalf("retry after error: dets=%v err=%v", dets, err)
	}
}

// TestNilCachePassthrough: a nil cache must degrade to direct compute
// for the Do* APIs, matching the nil-tolerant Get/Put behaviour.
func TestNilCachePassthrough(t *testing.T) {
	var c *SharedCache
	dets, err := c.DoDetections("m", 0, func() ([]track.Detection, error) {
		return []track.Detection{{Class: 1}}, nil
	})
	if err != nil || len(dets) != 1 {
		t.Fatalf("nil cache DoDetections: %v %v", dets, err)
	}
	v, err := c.DoLabel("m", 0, geom.Rect(0, 0, 1, 1), -1, func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("nil cache DoLabel: %v %v", v, err)
	}
}
