package exec

import (
	"fmt"
	"sort"

	"vqpy/internal/core"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// Stream executes a plan over frames that arrive incrementally — the
// real-time mode of §4.1 ("This design can easily support both offline
// batch and real-time streaming analytics"). Offline Run is implemented
// on top of it.
//
// A Stream is single-goroutine: Feed frames in capture order, read the
// per-frame verdict, and Close to obtain the aggregate Result.
type Stream struct {
	e *Executor
	p *Plan

	rs      *runState
	filters map[string]models.BinaryFilter
	specs   []windowSpec

	insts      []string
	relBinds   map[string]relParticipants
	frameCons  core.Pred
	videoCons  core.Pred
	outputSels []core.Selector

	res     *Result
	startMS float64
	closed  bool

	// fc is the reusable per-frame context: node arena, instance
	// slices and raster cache are recycled between frames.
	fc *FrameCtx
}

// Verdict is the streaming per-frame outcome.
type Verdict struct {
	FrameIdx int
	Matched  bool
	// Lane is the id of the query lane the verdict belongs to on the
	// shared-scan path (MuxStream.Feed); zero for a single-query Stream.
	Lane int
	// Hit carries output objects when the frame matched and hit
	// collection is enabled; nil otherwise.
	Hit *FrameHit
	// Degraded marks a verdict produced under failure-domain
	// degradation: a fallback detector tier answered, tracker state was
	// carried forward, or a model-backed property was unavailable.
	// DegradedBy carries the provenance tag ("fallback:<model>",
	// "prop:<name>", or "unavailable").
	Degraded   bool
	DegradedBy string
}

// OpenStream validates the plan and prepares streaming state. fps is
// used only to annotate the final Result (higher-order combinators need
// it); pass the capture rate or 0.
func (e *Executor) OpenStream(p *Plan, fps int) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Query.Validate(); err != nil {
		return nil, err
	}
	st := &Stream{
		e: e, p: p,
		rs:      newRunState(),
		filters: make(map[string]models.BinaryFilter),
		specs:   windowSpecs(p),
		insts:   p.Query.InstanceNames(),
		relBinds: func() map[string]relParticipants {
			out := make(map[string]relParticipants)
			for name, rb := range p.Query.Relations() {
				out[name] = relParticipants{left: rb.LeftInst, right: rb.RightInst}
			}
			return out
		}(),
		frameCons:  p.Query.FrameConstraint(),
		videoCons:  p.Query.VideoConstraint(),
		outputSels: p.Query.FrameOutputSelectors(),
		res:        &Result{Query: p.Query.Name(), FPS: fps},
		startMS:    e.opts.Env.Clock.TotalMS(),
	}
	return st, nil
}

// Feed processes one frame and returns its verdict. Frames must arrive
// in order; feeding after Close is an error.
func (st *Stream) Feed(f *video.Frame) (Verdict, error) {
	if st.closed {
		return Verdict{}, fmt.Errorf("exec: Feed on closed stream")
	}
	if st.fc == nil {
		st.fc = newFrameCtx(f)
	} else {
		st.fc.reset(f)
	}
	fc := st.fc
	st.e.opts.Env.Clock.StartFrame(f.Index)
	if err := st.e.runFrame(st.p, fc, st.rs, st.filters, st.specs); err != nil {
		return Verdict{}, err
	}
	hitsBefore := len(st.res.Hits)
	matched := st.e.finalize(fc, st.rs, st.insts, st.relBinds,
		st.frameCons, st.videoCons, st.outputSels, st.res)
	st.res.Matched = append(st.res.Matched, matched)
	st.res.FramesProcessed++
	v := Verdict{FrameIdx: f.Index, Matched: matched}
	if fc.Degraded {
		v.Degraded = true
		v.DegradedBy = fc.DegradedBy
		st.res.DegradedFrames++
		st.res.DegradedAt = append(st.res.DegradedAt, len(st.res.Matched)-1)
	}
	if len(st.res.Hits) > hitsBefore {
		v.Hit = &st.res.Hits[len(st.res.Hits)-1]
	}
	return v, nil
}

// Close finalizes aggregation and returns the accumulated result. It is
// idempotent.
func (st *Stream) Close() *Result {
	if st.closed {
		return st.res
	}
	st.closed = true
	st.e.opts.Env.Clock.FlushFrames()
	if agg := st.p.Query.VideoOutput(); agg != nil {
		tracksOf := st.rs.matchedTracks[agg.Instance]
		ids := make([]int, 0, len(tracksOf))
		for id := range tracksOf {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		st.res.Count = len(ids)
		if agg.Kind == core.AggListTracks {
			st.res.TrackIDs = ids
		}
	}
	st.res.VirtualMS = st.e.opts.Env.Clock.TotalMS() - st.startMS
	st.res.MemoHits, st.res.MemoMisses = st.rs.memo.Stats()
	return st.res
}
