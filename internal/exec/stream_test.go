package exec

import (
	"testing"

	"vqpy/internal/models"
	"vqpy/internal/video"
)

func TestStreamMatchesBatchRun(t *testing.T) {
	v := video.CityFlow(70, 30).Generate()
	ct := carType()
	q := redCarQuery(ct)

	exBatch, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	batchRes, err := exBatch.Run(manualPlan(q, "car", ct), v)
	if err != nil {
		t.Fatal(err)
	}

	ct2 := carType()
	q2 := redCarQuery(ct2)
	exStream, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	st, err := exStream.OpenStream(manualPlan(q2, "car", ct2), v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Frames {
		verdict, err := st.Feed(&v.Frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if verdict.FrameIdx != i {
			t.Fatalf("verdict frame = %d, want %d", verdict.FrameIdx, i)
		}
		if verdict.Matched != batchRes.Matched[i] {
			t.Fatalf("stream diverged from batch at frame %d", i)
		}
		if verdict.Matched && verdict.Hit == nil {
			t.Fatalf("matched frame %d without hit", i)
		}
		if !verdict.Matched && verdict.Hit != nil {
			t.Fatalf("unmatched frame %d with hit", i)
		}
	}
	streamRes := st.Close()
	if streamRes.MatchedCount() != batchRes.MatchedCount() {
		t.Errorf("matched counts differ: %d vs %d", streamRes.MatchedCount(), batchRes.MatchedCount())
	}
	if streamRes.VirtualMS != batchRes.VirtualMS {
		t.Errorf("costs differ: %.1f vs %.1f", streamRes.VirtualMS, batchRes.VirtualMS)
	}
}

func TestStreamCloseIdempotentAndFeedAfterClose(t *testing.T) {
	v := video.CityFlow(71, 5).Generate()
	ct := carType()
	q := redCarQuery(ct)
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	st, err := ex.OpenStream(manualPlan(q, "car", ct), v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Feed(&v.Frames[0]); err != nil {
		t.Fatal(err)
	}
	r1 := st.Close()
	r2 := st.Close()
	if r1 != r2 {
		t.Error("Close not idempotent")
	}
	if _, err := st.Feed(&v.Frames[1]); err == nil {
		t.Error("Feed after Close accepted")
	}
}

func TestStreamInvalidPlanRejected(t *testing.T) {
	ct := carType()
	q := redCarQuery(ct)
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	bad := &Plan{Query: q, Steps: nil, BatchSize: 0}
	if _, err := ex.OpenStream(bad, 10); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestStreamVideoAggregation(t *testing.T) {
	v := video.CityFlow(72, 60).Generate()
	ct := carType()
	colorProp, _ := ct.Prop("color")
	q := redCarQuery(ct).CountDistinct("car")
	p := &Plan{Query: q, Steps: []Step{
		{Kind: StepDetect, DetectModel: "yolox", Binds: []InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		{Kind: StepTrack, Instance: "car"},
		{Kind: StepProject, Instance: "car", Prop: colorProp},
	}, BatchSize: 4}
	ex, _ := NewExecutor(Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	st, err := ex.OpenStream(p, v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Frames {
		if _, err := st.Feed(&v.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	res := st.Close()
	if res.Count == 0 {
		t.Error("streaming aggregation counted nothing")
	}
}
