package exec

import "vqpy/internal/video"

// VerifyFunc answers an open-vocabulary question about one frame — the
// executor-side view of a models.ConceptModel call with its question
// already bound.
type VerifyFunc func(f *video.Frame) bool

// RunVerify applies the final verification stage of a text query over a
// cascade's per-frame verdicts: the query holds on a frame iff the
// cheap cascade matched it AND the verifier confirms it. Frames the
// cascade already ruled out are decided — under the conjunction they
// are false whatever the verifier would say — so the lazy mode (eager
// false) consults the verifier only on cascade-matched frames. Eager
// mode asks on every frame, the on-every-frame baseline the lazy
// cascade must agree with: the verifier is deterministic per frame and
// question, so wherever both modes ask they get the same answer, and
// the final verdicts are identical by construction. Returns the final
// verdicts and the number of verifier invocations.
func RunVerify(base []bool, frames []video.Frame, eager bool, ask VerifyFunc) ([]bool, int) {
	final := make([]bool, len(base))
	calls := 0
	for i, matched := range base {
		if i >= len(frames) {
			break
		}
		if eager {
			ans := ask(&frames[i])
			calls++
			final[i] = matched && ans
			continue
		}
		if matched {
			final[i] = ask(&frames[i])
			calls++
		}
	}
	return final, calls
}
