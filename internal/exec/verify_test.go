package exec

import (
	"testing"

	"vqpy/internal/video"
)

func TestRunVerifyLazyAsksOnlyUndecided(t *testing.T) {
	frames := make([]video.Frame, 6)
	for i := range frames {
		frames[i] = video.Frame{Index: i}
	}
	base := []bool{true, false, true, false, false, true}
	asked := []int(nil)
	ask := func(f *video.Frame) bool {
		asked = append(asked, f.Index)
		return f.Index != 2
	}

	final, calls := RunVerify(base, frames, false, ask)
	if calls != 3 || len(asked) != 3 {
		t.Fatalf("lazy run asked %d times (%v), want 3", calls, asked)
	}
	for _, idx := range asked {
		if !base[idx] {
			t.Errorf("lazy run asked about decided frame %d", idx)
		}
	}
	want := []bool{true, false, false, false, false, true}
	for i := range want {
		if final[i] != want[i] {
			t.Errorf("frame %d: verdict %v, want %v", i, final[i], want[i])
		}
	}
}

func TestRunVerifyEagerParity(t *testing.T) {
	frames := make([]video.Frame, 8)
	for i := range frames {
		frames[i] = video.Frame{Index: i}
	}
	base := []bool{true, false, true, true, false, false, true, false}
	// Any deterministic per-frame answer: parity must hold regardless.
	ask := func(f *video.Frame) bool { return f.Index%3 != 0 }

	lazy, lazyCalls := RunVerify(base, frames, false, ask)
	eager, eagerCalls := RunVerify(base, frames, true, ask)
	if eagerCalls != len(frames) {
		t.Errorf("eager calls = %d, want every frame (%d)", eagerCalls, len(frames))
	}
	if lazyCalls >= eagerCalls {
		t.Errorf("lazy calls %d not below eager %d", lazyCalls, eagerCalls)
	}
	for i := range lazy {
		if lazy[i] != eager[i] {
			t.Errorf("frame %d: lazy %v vs eager %v", i, lazy[i], eager[i])
		}
	}
}

func TestRunVerifyShortBaseAndFrames(t *testing.T) {
	frames := []video.Frame{{Index: 0}, {Index: 1}}
	// More verdicts than frames: the excess is ignored, not panicked on.
	final, calls := RunVerify([]bool{true, true, true, true}, frames, false, func(*video.Frame) bool { return true })
	if calls != 2 || len(final) != 4 {
		t.Errorf("calls = %d, len = %d; want 2 calls over 4 verdicts", calls, len(final))
	}
	if final[2] || final[3] {
		t.Error("verdicts past the frame range should stay false")
	}
}
