package fault

// Circuit breakers: the per-(model, source) failure memory that turns
// repeated terminal faults into graceful degradation. The execution
// layer asks BreakerAllow before invoking a detector; after
// BreakerThreshold consecutive terminal failures the breaker opens and
// the engine stops paying for calls that will fail, falling back to a
// cheaper detector tier or carrying tracker state forward. After
// BreakerCooldown frames an open breaker admits a single half-open
// probe; one success closes it.
//
// Breakers live on the Injector because faults are the only way a
// builtin model can fail in this reproduction — with no injector there
// is nothing to break, and the nil receiver answers Allow.

const (
	// BreakerThreshold is the consecutive terminal failures that trip a
	// breaker open.
	BreakerThreshold = 3
	// BreakerCooldown is how many frames an open breaker waits before
	// admitting a half-open probe.
	BreakerCooldown = 30
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

type breaker struct {
	model    string
	source   string
	state    breakerState
	failures int // consecutive terminal failures
	trips    int
	openedAt int // frame index at the last trip
}

// BreakerStat is one breaker's externally visible state, surfaced by
// /streamz and /healthz.
type BreakerStat struct {
	Model    string `json:"model"`
	Source   string `json:"source"`
	State    string `json:"state"`
	Failures int    `json:"failures"`
	Trips    int    `json:"trips"`
}

func breakerKey(model, source string) string { return model + "\x00" + source }

// BreakerAllow reports whether a call to model on source may proceed at
// this frame. An open breaker past its cooldown transitions to
// half-open and admits the probe.
func (in *Injector) BreakerAllow(model, source string, frame int) bool {
	if in == nil {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	b, ok := in.breakers[breakerKey(model, source)]
	if !ok {
		return true
	}
	switch b.state {
	case breakerOpen:
		if frame-b.openedAt >= BreakerCooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// BreakerFailure records a terminal (retry-exhausted) failure of model
// on source, tripping the breaker at the threshold.
func (in *Injector) BreakerFailure(model, source string, frame int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	key := breakerKey(model, source)
	b, ok := in.breakers[key]
	if !ok {
		b = &breaker{model: model, source: source}
		in.breakers[key] = b
	}
	b.failures++
	tripped := false
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.failures >= BreakerThreshold) {
		b.state = breakerOpen
		b.openedAt = frame
		b.trips++
		tripped = true
	}
	in.mu.Unlock()
	if tripped {
		in.count("breaker_trips", 1)
		in.count("breaker_trip:"+model+":"+source, 1)
	}
}

// BreakerSuccess records a healthy call, closing a half-open breaker
// and resetting the failure streak.
func (in *Injector) BreakerSuccess(model, source string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	if b, ok := in.breakers[breakerKey(model, source)]; ok {
		b.failures = 0
		b.state = breakerClosed
	}
	in.mu.Unlock()
}

// BreakerStats snapshots every breaker that has seen at least one
// failure, for /streamz.
func (in *Injector) BreakerStats() []BreakerStat {
	return in.BreakerStatsFor("")
}

// BreakerStatsFor snapshots breakers for one source ("" = all), sorted
// by (source, model) via the caller-visible map order being rebuilt
// deterministically from sorted keys.
func (in *Injector) BreakerStatsFor(source string) []BreakerStat {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]BreakerStat, 0, len(in.breakers))
	for _, b := range in.breakers {
		if source != "" && b.source != source {
			continue
		}
		out = append(out, BreakerStat{
			Model: b.model, Source: b.source,
			State: b.state.String(), Failures: b.failures, Trips: b.trips,
		})
	}
	sortBreakerStats(out)
	return out
}

// TrippedBreakers reports whether any breaker is currently open or
// half-open (the /healthz "degraded" signal).
func (in *Injector) TrippedBreakers() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, b := range in.breakers {
		if b.state != breakerClosed {
			n++
		}
	}
	return n
}

func sortBreakerStats(s []BreakerStat) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			a, b := s[j-1], s[j]
			if a.Source < b.Source || (a.Source == b.Source && a.Model <= b.Model) {
				break
			}
			s[j-1], s[j] = b, a
		}
	}
}
