// Package fault is the deterministic chaos layer for the serving stack:
// a seeded injector that fails model calls, store I/O and frame sources
// according to a reproducible schedule, plus the circuit breakers the
// execution layer consults to degrade gracefully instead of crashing.
//
// Determinism is the whole point. Every injection decision is a pure
// function of (schedule seed, rule index, fault kind, target, frame),
// hashed with the same FNV-1a construction the model zoo uses for its
// outputs — so a chaos run is exactly replayable, a retried attempt
// sees the same world as the first attempt (only the attempt ordinal
// moves), and the benchmark gate can assert verdict parity instead of
// merely "it did not crash". With no injector installed (nil) or the
// injector disabled, every hook in the engine collapses to the
// pre-fault code path: the nil *Injector is a valid receiver for every
// method and answers "no fault", which is what pins the no-op
// guarantee tested at the repo root.
package fault

import (
	"fmt"
	"sync"

	"vqpy/internal/metrics"
	"vqpy/internal/models"
)

// Kind enumerates the failure domains the injector can perturb.
type Kind int

const (
	// KindModelError fails a model invocation outright (the call costs a
	// nominal failure-detection charge and returns an error).
	KindModelError Kind = iota
	// KindModelTimeout fails a model invocation after burning its full
	// deadline budget on the virtual clock.
	KindModelTimeout
	// KindStoreWrite fails a store append (the tier degrades to
	// memory-only).
	KindStoreWrite
	// KindStoreRead fails a disk read in the store (served as a miss;
	// the engine recomputes).
	KindStoreRead
	// KindSourceStall makes a frame source return no frame this poll;
	// the same index must be polled again.
	KindSourceStall
	// KindSourceDrop makes a frame source lose a frame permanently; the
	// caller skips the index.
	KindSourceDrop
)

// String names the kind for counters and provenance tags.
func (k Kind) String() string {
	switch k {
	case KindModelError:
		return "model_error"
	case KindModelTimeout:
		return "model_timeout"
	case KindStoreWrite:
		return "store_write"
	case KindStoreRead:
		return "store_read"
	case KindSourceStall:
		return "source_stall"
	case KindSourceDrop:
		return "source_drop"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule is one line of a fault schedule: inject Kind against Target at
// Rate within a frame window. Persist controls recoverability: a fired
// rule fails the first Persist attempts at the same (target, frame) and
// then lets the retry through, so Persist=1 (the default) is a
// transient fault that per-attempt retry absorbs with zero verdict
// impact, while Persist >= the retry budget is a terminal fault that
// trips breakers and forces degradation.
type Rule struct {
	Kind   Kind
	Target string // model / source / record kind; "" matches any target

	Rate      float64 // firing probability per (target, frame); 1 = always
	FromFrame int     // first frame (inclusive) the rule is live on
	ToFrame   int     // frame bound (exclusive); 0 = unbounded

	Persist int // consecutive failing attempts per firing; <=0 means 1

	DeadlineMS float64 // KindModelTimeout: virtual ms burned before failing
}

// Schedule is a complete, seeded fault plan. The zero Schedule injects
// nothing.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// Fault is the error an injected failure surfaces as. The execution
// layer type-checks for it (via IsFault) to distinguish injected chaos,
// which it must absorb, from genuine engine errors, which it must not
// hide.
type Fault struct {
	Kind       Kind
	Target     string
	Frame      int
	DeadlineMS float64
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("fault: injected %s on %q at frame %d", f.Kind, f.Target, f.Frame)
}

// IsFault reports whether err is (or wraps nothing but) an injected
// fault.
func IsFault(err error) bool {
	_, ok := err.(*Fault)
	return ok
}

// Injector evaluates a Schedule and keeps the failure-domain state the
// hardening layers share: injection counters, per-op ordinals for the
// store (which has no frame axis), and the circuit breakers in
// breaker.go. It doubles as the models.ChargeInterceptor the session
// installs so model-call charges flow through the fault layer; see
// Wrap. All methods are safe on a nil receiver and answer "no fault".
type Injector struct {
	mu       sync.Mutex
	sched    Schedule
	enabled  bool
	inner    models.ChargeInterceptor
	counters *metrics.Counters
	storeOps map[Kind]int
	breakers map[string]*breaker
}

// New builds an enabled injector for a schedule. A schedule with no
// rules is valid and injects nothing — the configuration the no-op
// crosscheck runs under.
func New(sched Schedule) *Injector {
	return &Injector{
		sched:    sched,
		enabled:  true,
		counters: metrics.NewCounters(),
		storeOps: make(map[Kind]int),
		breakers: make(map[string]*breaker),
	}
}

// Enabled reports whether injection decisions are live.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.enabled
}

// SetEnabled toggles injection without discarding breaker or counter
// state.
func (in *Injector) SetEnabled(on bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.enabled = on
	in.mu.Unlock()
}

// Counters exposes the injector's event counters (injections by kind
// and target, breaker trips, degradations) for /streamz and benches.
func (in *Injector) Counters() *metrics.Counters {
	if in == nil {
		return nil
	}
	return in.counters
}

// Wrap chains the injector in front of an existing ChargeInterceptor
// (the fleet batch scheduler) so both see model charges. Install the
// injector as the session interceptor after calling Wrap.
func (in *Injector) Wrap(inner models.ChargeInterceptor) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.inner = inner
	in.mu.Unlock()
}

// Intercept implements models.ChargeInterceptor by delegating to the
// wrapped interceptor (if any). The injector itself never rewrites
// charges — fault costs are charged explicitly by the retry layer — but
// sitting in the charge path keeps the chain intact when a batch
// scheduler is also installed.
func (in *Injector) Intercept(env *models.Env, account string, ms float64) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	inner := in.inner
	in.mu.Unlock()
	if inner == nil {
		return false
	}
	return inner.Intercept(env, account, ms)
}

// ModelFault decides whether a model invocation fails on this attempt.
// It returns nil when the call should proceed. Attempt 0 is the first
// try; a rule with Persist=p fails attempts 0..p-1 and then yields, so
// retry reproduces the exact healthy output (model outputs are pure
// functions of the frame).
func (in *Injector) ModelFault(model string, frame, attempt int) *Fault {
	kinds := [2]Kind{KindModelError, KindModelTimeout}
	for _, k := range kinds {
		if r := in.decide(k, model, frame, attempt); r != nil {
			in.count("inject:"+k.String()+":"+model, 1)
			return &Fault{Kind: k, Target: model, Frame: frame, DeadlineMS: r.DeadlineMS}
		}
	}
	return nil
}

// StoreWriteFault decides whether a store append for one record kind
// fails. The store has no frame axis, so a per-kind op ordinal stands
// in for the frame; decisions stay deterministic because store ops are
// serialized under the store mutex.
func (in *Injector) StoreWriteFault(kind string) error {
	return in.storeFault(KindStoreWrite, kind)
}

// StoreReadFault decides whether a store disk read fails; the store
// treats it as a miss and the engine recomputes.
func (in *Injector) StoreReadFault(kind string) error {
	return in.storeFault(KindStoreRead, kind)
}

func (in *Injector) storeFault(k Kind, kind string) error {
	if in == nil || !in.Enabled() {
		return nil
	}
	in.mu.Lock()
	ord := in.storeOps[k]
	in.storeOps[k] = ord + 1
	in.mu.Unlock()
	if r := in.decide(k, kind, ord, 0); r != nil {
		in.count("inject:"+k.String()+":"+kind, 1)
		return &Fault{Kind: k, Target: kind, Frame: ord}
	}
	return nil
}

// SourceFault decides whether polling frame `frame` of a source stalls
// or drops on this attempt. It returns the firing kind, or -1 for a
// healthy poll.
func (in *Injector) SourceFault(source string, frame, attempt int) Kind {
	if r := in.decide(KindSourceStall, source, frame, attempt); r != nil {
		in.count("inject:source_stall:"+source, 1)
		return KindSourceStall
	}
	if r := in.decide(KindSourceDrop, source, frame, attempt); r != nil {
		in.count("inject:source_drop:"+source, 1)
		return KindSourceDrop
	}
	return -1
}

// decide returns the first live rule firing for (kind, target, frame,
// attempt), or nil. The firing decision is attempt-independent — only
// the Persist comparison consumes the attempt ordinal — so a retry
// replays the same world.
func (in *Injector) decide(kind Kind, target string, frame, attempt int) *Rule {
	if in == nil || !in.Enabled() {
		return nil
	}
	for i := range in.sched.Rules {
		r := &in.sched.Rules[i]
		if r.Kind != kind {
			continue
		}
		if r.Target != "" && r.Target != target {
			continue
		}
		if frame < r.FromFrame {
			continue
		}
		if r.ToFrame > 0 && frame >= r.ToFrame {
			continue
		}
		persist := r.Persist
		if persist <= 0 {
			persist = 1
		}
		if attempt >= persist {
			continue
		}
		if r.Rate < 1 {
			u := unit(hash(in.sched.Seed, uint64(kind)+0x9e3779b9, strHash(target), uint64(i), uint64(frame)))
			if u >= r.Rate {
				continue
			}
		}
		return r
	}
	return nil
}

// Count bumps one injector event counter by one; safe on nil (the
// hardening layers call it unconditionally).
func (in *Injector) Count(name string) { in.count(name, 1) }

func (in *Injector) count(name string, delta int64) {
	if in == nil || in.counters == nil {
		return
	}
	in.counters.Add(name, delta)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// hash is the same FNV-1a-over-words construction the model zoo uses,
// replicated here so the fault layer does not export hashing from
// models.
func hash(parts ...uint64) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xFF
			h *= 0x100000001b3
		}
	}
	return h
}

func strHash(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
