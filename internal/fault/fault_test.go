package fault

import (
	"testing"

	"vqpy/internal/video"
)

func testSchedule() Schedule {
	return Schedule{
		Seed: 7,
		Rules: []Rule{
			{Kind: KindModelError, Target: "yolox", Rate: 0.5},
			{Kind: KindModelTimeout, Target: "slow", Rate: 1, FromFrame: 10, ToFrame: 20, DeadlineMS: 25},
			{Kind: KindSourceStall, Target: "cam0", Rate: 1, FromFrame: 5, ToFrame: 6, Persist: 3},
			{Kind: KindStoreWrite, Target: "scans", Rate: 1, FromFrame: 2},
		},
	}
}

// TestNilInjectorIsNoFault pins the nil-receiver contract every hook in
// the engine relies on for the no-op guarantee.
func TestNilInjectorIsNoFault(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector reports enabled")
	}
	if f := in.ModelFault("yolox", 3, 0); f != nil {
		t.Errorf("nil injector injected %v", f)
	}
	if err := in.StoreWriteFault("scans"); err != nil {
		t.Errorf("nil injector store write fault: %v", err)
	}
	if err := in.StoreReadFault("dets"); err != nil {
		t.Errorf("nil injector store read fault: %v", err)
	}
	if k := in.SourceFault("cam0", 5, 0); k != Kind(-1) {
		t.Errorf("nil injector source fault kind %v", k)
	}
	if !in.BreakerAllow("m", "s", 0) {
		t.Error("nil injector breaker denies")
	}
	in.BreakerFailure("m", "s", 0) // must not panic
	in.BreakerSuccess("m", "s")
	in.Count("x")
	if got := in.BreakerStats(); got != nil {
		t.Errorf("nil injector breaker stats %v", got)
	}
}

// TestDecisionsDeterministic: the same schedule produces the same
// decisions on every replay, and disabling turns them all off without
// losing state.
func TestDecisionsDeterministic(t *testing.T) {
	a, b := New(testSchedule()), New(testSchedule())
	for frame := 0; frame < 200; frame++ {
		fa := a.ModelFault("yolox", frame, 0)
		fb := b.ModelFault("yolox", frame, 0)
		if (fa == nil) != (fb == nil) {
			t.Fatalf("frame %d: decisions diverge (%v vs %v)", frame, fa, fb)
		}
	}
	fired := 0
	for frame := 0; frame < 200; frame++ {
		if a.ModelFault("yolox", frame, 0) != nil {
			fired++
		}
	}
	if fired == 0 || fired == 200 {
		t.Fatalf("rate 0.5 rule fired %d/200 times", fired)
	}
	a.SetEnabled(false)
	for frame := 0; frame < 200; frame++ {
		if f := a.ModelFault("yolox", frame, 0); f != nil {
			t.Fatalf("disabled injector injected %v", f)
		}
	}
}

// TestFrameWindowAndDeadline: windowed rules fire only inside their
// window and carry the rule's deadline.
func TestFrameWindowAndDeadline(t *testing.T) {
	in := New(testSchedule())
	if f := in.ModelFault("slow", 9, 0); f != nil {
		t.Errorf("fired before window: %v", f)
	}
	f := in.ModelFault("slow", 10, 0)
	if f == nil || f.Kind != KindModelTimeout || f.DeadlineMS != 25 {
		t.Errorf("in-window fault = %+v", f)
	}
	if f := in.ModelFault("slow", 20, 0); f != nil {
		t.Errorf("fired at exclusive bound: %v", f)
	}
	if f := in.ModelFault("other", 10, 0); f != nil {
		t.Errorf("fired for wrong target: %v", f)
	}
}

// TestPersistControlsRecoverability: a Persist=p rule fails attempts
// 0..p-1 and then yields, which is what lets retry absorb transient
// faults.
func TestPersistControlsRecoverability(t *testing.T) {
	in := New(Schedule{Seed: 1, Rules: []Rule{
		{Kind: KindModelError, Target: "m", Rate: 1, Persist: 2},
	}})
	for attempt := 0; attempt < 2; attempt++ {
		if in.ModelFault("m", 0, attempt) == nil {
			t.Fatalf("attempt %d should fail (persist 2)", attempt)
		}
	}
	if f := in.ModelFault("m", 0, 2); f != nil {
		t.Fatalf("attempt 2 should succeed, got %v", f)
	}
}

// TestBreakerLifecycle walks closed → open → half-open → closed.
func TestBreakerLifecycle(t *testing.T) {
	in := New(Schedule{})
	for i := 0; i < BreakerThreshold; i++ {
		if !in.BreakerAllow("m", "s", i) {
			t.Fatalf("breaker denied before threshold at %d", i)
		}
		in.BreakerFailure("m", "s", i)
	}
	tripFrame := BreakerThreshold - 1
	if in.BreakerAllow("m", "s", tripFrame+1) {
		t.Fatal("breaker still allows after tripping")
	}
	if n := in.TrippedBreakers(); n != 1 {
		t.Fatalf("tripped breakers = %d", n)
	}
	// Cooldown elapses: one half-open probe is admitted.
	probe := tripFrame + BreakerCooldown
	if !in.BreakerAllow("m", "s", probe) {
		t.Fatal("breaker refused the half-open probe")
	}
	// A half-open failure re-opens immediately.
	in.BreakerFailure("m", "s", probe)
	if in.BreakerAllow("m", "s", probe+1) {
		t.Fatal("breaker allows right after a failed probe")
	}
	if !in.BreakerAllow("m", "s", probe+BreakerCooldown) {
		t.Fatal("breaker refused the second probe")
	}
	in.BreakerSuccess("m", "s")
	if !in.BreakerAllow("m", "s", probe+BreakerCooldown+1) {
		t.Fatal("breaker not closed after probe success")
	}
	if n := in.TrippedBreakers(); n != 0 {
		t.Fatalf("tripped breakers after recovery = %d", n)
	}
	stats := in.BreakerStats()
	if len(stats) != 1 || stats[0].Trips != 2 || stats[0].State != "closed" {
		t.Fatalf("breaker stats = %+v", stats)
	}
	if got := in.Counters().Get("breaker_trips"); got != 2 {
		t.Fatalf("breaker_trips counter = %d", got)
	}
}

// TestWrapSourceStallAndRecover: a stall rule with Persist=p stalls p
// polls of the frame and then serves it; FrameAt stays un-faulted
// throughout.
func TestWrapSourceStallAndRecover(t *testing.T) {
	v := video.CityFlow(7, 1).Generate()
	in := New(testSchedule())
	src := WrapSource(v, in)
	if src == video.FrameSource(v) {
		t.Fatal("WrapSource with injector returned the source unchanged")
	}
	if plain := WrapSource(v, nil); plain != video.FrameSource(v) {
		t.Fatal("WrapSource(nil) must return the source unchanged")
	}
	// The schedule's stall rule targets "cam0", not this clip's source
	// name, so every poll here is healthy.
	for i := 0; i < v.NumFrames(); i++ {
		f, status := Poll(src, i)
		if status != StatusReady || f == nil {
			t.Fatalf("frame %d: status %v", i, status)
		}
	}
	// Retarget: a source actually named by the rule stalls Persist
	// times at frame 5, then recovers.
	in2 := New(Schedule{Seed: 7, Rules: []Rule{
		{Kind: KindSourceStall, Target: v.SourceName(), Rate: 1, FromFrame: 5, ToFrame: 6, Persist: 3},
	}})
	src2 := WrapSource(v, in2)
	for attempt := 0; attempt < 3; attempt++ {
		if f, status := Poll(src2, 5); status != StatusStalled || f != nil {
			t.Fatalf("poll %d of frame 5: status %v", attempt, status)
		}
	}
	if f, status := Poll(src2, 5); status != StatusReady || f == nil {
		t.Fatalf("frame 5 after stalls: status %v", status)
	}
	if f := src2.FrameAt(5); f == nil {
		t.Fatal("FrameAt must bypass injection")
	}
}

// TestSourceDrop: a drop rule loses the frame permanently.
func TestSourceDrop(t *testing.T) {
	v := video.CityFlow(7, 1).Generate()
	in := New(Schedule{Seed: 1, Rules: []Rule{
		{Kind: KindSourceDrop, Target: v.SourceName(), Rate: 1, FromFrame: 2, ToFrame: 3},
	}})
	src := WrapSource(v, in)
	if _, status := Poll(src, 2); status != StatusDropped {
		t.Fatalf("frame 2 status %v, want dropped", status)
	}
	if _, status := Poll(src, 3); status != StatusReady {
		t.Fatalf("frame 3 status %v, want ready", status)
	}
}

// TestStoreFaultOrdinals: store decisions use a per-kind op ordinal as
// the frame axis, so a FromFrame=N write rule lets the first N appends
// through and fails the rest.
func TestStoreFaultOrdinals(t *testing.T) {
	in := New(testSchedule())
	for i := 0; i < 2; i++ {
		if err := in.StoreWriteFault("scans"); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	err := in.StoreWriteFault("scans")
	if err == nil {
		t.Fatal("write 2 should fail (FromFrame 2)")
	}
	if !IsFault(err) {
		t.Fatalf("store fault not recognized by IsFault: %v", err)
	}
	// Reads have their own ordinal stream and no read rule: all pass.
	for i := 0; i < 5; i++ {
		if err := in.StoreReadFault("scans"); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}
