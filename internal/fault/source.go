package fault

// Frame-source faults: stalls (the frame is not ready yet; poll again)
// and drops (the frame is lost; skip it). Serving loops poll through
// Poll/Poller instead of calling FrameAt directly, which keeps the
// FrameSource contract — FrameAt never fails — intact for every replay,
// backfill and archive path that must stay fault-free.

import (
	"sync"

	"vqpy/internal/video"
)

// Status is the outcome of polling a frame from a possibly-faulted
// source.
type Status int

const (
	// StatusReady: the frame arrived.
	StatusReady Status = iota
	// StatusStalled: the frame is not available this poll; retry the
	// same index later.
	StatusStalled
	// StatusDropped: the frame is permanently lost; skip the index.
	StatusDropped
)

// Poller is the fallible polling interface serving loops use. A plain
// FrameSource is polled through Poll, which adapts it.
type Poller interface {
	// PollFrame attempts to produce frame i; a nil frame carries the
	// non-ready status.
	PollFrame(i int) (*video.Frame, Status)
}

// FaultedSource wraps a FrameSource with injected stalls and drops. It
// implements both FrameSource (FrameAt passes through un-faulted, so
// metadata readers and replay paths are untouched) and Poller (the
// faulted path). Stall length is governed by the firing rule's Persist:
// each stalled poll of the same index advances the attempt ordinal.
type FaultedSource struct {
	inner video.FrameSource
	inj   *Injector

	mu       sync.Mutex
	attempts map[int]int
}

// WrapSource wraps src with injector-driven stalls and drops. With a
// nil injector the source is returned unchanged.
func WrapSource(src video.FrameSource, inj *Injector) video.FrameSource {
	if inj == nil {
		return src
	}
	return &FaultedSource{inner: src, inj: inj, attempts: make(map[int]int)}
}

// SourceName implements FrameSource.
func (s *FaultedSource) SourceName() string { return s.inner.SourceName() }

// SourceFPS implements FrameSource.
func (s *FaultedSource) SourceFPS() int { return s.inner.SourceFPS() }

// NumFrames implements FrameSource.
func (s *FaultedSource) NumFrames() int { return s.inner.NumFrames() }

// FrameAt implements FrameSource, bypassing injection: archive replay
// and backfill must observe the true clip.
func (s *FaultedSource) FrameAt(i int) *video.Frame { return s.inner.FrameAt(i) }

// PollFrame implements Poller.
func (s *FaultedSource) PollFrame(i int) (*video.Frame, Status) {
	s.mu.Lock()
	attempt := s.attempts[i]
	s.mu.Unlock()
	switch s.inj.SourceFault(s.inner.SourceName(), i, attempt) {
	case KindSourceStall:
		s.mu.Lock()
		s.attempts[i] = attempt + 1
		s.mu.Unlock()
		return nil, StatusStalled
	case KindSourceDrop:
		s.forget(i)
		return nil, StatusDropped
	}
	s.forget(i)
	return s.inner.FrameAt(i), StatusReady
}

func (s *FaultedSource) forget(i int) {
	s.mu.Lock()
	delete(s.attempts, i)
	s.mu.Unlock()
}

// Poll fetches frame i through src's Poller if it has one, else
// directly via FrameAt. A nil frame from a plain source is reported as
// a stall defensively (the FrameSource contract says it cannot happen).
func Poll(src video.FrameSource, i int) (*video.Frame, Status) {
	if p, ok := src.(Poller); ok {
		return p.PollFrame(i)
	}
	f := src.FrameAt(i)
	if f == nil {
		return nil, StatusStalled
	}
	return f, StatusReady
}
