package fleet

import (
	"fmt"
	"sort"
	"sync"

	"vqpy/internal/exec"
	"vqpy/internal/fault"
	"vqpy/internal/video"
)

// Quarantine policy: a source whose frame source stalls repeatedly is
// quarantined — the lockstep tick stops polling it every tick and
// probes it on a slow cadence instead, so one stalled camera never
// blocks or slows its siblings. A successful probe lifts the
// quarantine; a source that never recovers is eventually declared done,
// bounding Run.
const (
	// quarantineThreshold is the consecutive stalled polls that
	// quarantine a source.
	quarantineThreshold = 3
	// quarantineProbeEvery is the tick cadence quarantined sources are
	// probed at.
	quarantineProbeEvery = 4
	// stallLimit is the consecutive stalled polls after which a source
	// is declared dead (done) — the termination bound for Run.
	stallLimit = 100
)

// Ticker brackets one lockstep frame tick — the batch scheduler's
// BeginTick/FlushTick pair. The engine accepts the interface so callers
// without batching can pass nil.
type Ticker interface {
	// BeginTick opens a coalescing window.
	BeginTick()
	// FlushTick books the window's deferred work.
	FlushTick()
}

// engineSource is one camera under the engine: its dynamic MuxStream,
// its frame source, and the feed position.
type engineSource struct {
	name string
	mux  *exec.MuxStream
	src  video.FrameSource
	fed  int
	done bool

	stalls        int  // consecutive stalled polls (reset on success)
	totalStalls   int  // stalled polls over the source's lifetime
	dropped       int  // frames lost to drops (fed past, never scanned)
	quarantined   bool // on the slow probe cadence
	quarantinedAt int  // tick the quarantine started
	quarantines   int  // quarantine entries over the source's lifetime
}

// Attachment records one fleet-wide query: the per-source lanes it
// occupies.
type Attachment struct {
	// ID is the engine-wide fleet query id.
	ID int
	// Query names the query (shared across sources).
	Query string
	// Lanes maps source name to the MuxStream lane id on that source.
	Lanes map[string]int
}

// Engine drives a camera fleet in lockstep: one tick feeds the next
// frame of every source (in registration order, which makes global-id
// assignment deterministic), bracketing the tick with the batch
// scheduler so cross-source detector invocations coalesce. Fleet-wide
// queries attach one lane per source and read back merged per-global-id
// results. Safe for concurrent use; Step serializes against
// Attach/Detach/Merged, mirroring the MuxStream contract.
type Engine struct {
	mu      sync.Mutex
	reg     *Registry
	batch   Ticker
	sources []*engineSource
	byName  map[string]*engineSource
	queries map[int]*Attachment
	nextID  int
	ticks   int
}

// NewEngine creates a fleet engine over the given identity registry;
// batch may be nil to run unbatched (isolated-cost) lockstep.
func NewEngine(reg *Registry, batch Ticker) *Engine {
	return &Engine{
		reg:     reg,
		batch:   batch,
		byName:  make(map[string]*engineSource),
		queries: make(map[int]*Attachment),
	}
}

// Registry returns the engine's global identity registry.
func (e *Engine) Registry() *Registry { return e.reg }

// AddSource registers one camera: its dynamic MuxStream and the frame
// source feeding it. Sources must be added before the first Step and
// are fed in registration order.
func (e *Engine) AddSource(name string, mux *exec.MuxStream, src video.FrameSource) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if name == "" || mux == nil || src == nil {
		return fmt.Errorf("fleet: AddSource needs a name, a mux and a frame source")
	}
	if _, dup := e.byName[name]; dup {
		return fmt.Errorf("fleet: source %q registered twice", name)
	}
	if e.ticks > 0 {
		return fmt.Errorf("fleet: AddSource after the first tick would desynchronize the fleet")
	}
	s := &engineSource{name: name, mux: mux, src: src}
	e.sources = append(e.sources, s)
	e.byName[name] = s
	return nil
}

// SourceNames lists the registered sources in feed order.
func (e *Engine) SourceNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.sources))
	for i, s := range e.sources {
		out[i] = s.name
	}
	return out
}

// Attach admits one fleet-wide query: one pre-planned lane per source
// (plans keyed by source name must cover every registered source). On
// any per-source failure the already-attached lanes are rolled back, so
// a fleet query is either live everywhere or nowhere.
func (e *Engine) Attach(query string, plans map[string]*exec.Plan) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.sources) == 0 {
		return 0, fmt.Errorf("fleet: Attach with no sources registered")
	}
	lanes := make(map[string]int, len(e.sources))
	for _, s := range e.sources {
		p, ok := plans[s.name]
		if !ok {
			e.rollbackLocked(lanes)
			return 0, fmt.Errorf("fleet: no plan for source %q", s.name)
		}
		lane, err := s.mux.Attach(p)
		if err != nil {
			e.rollbackLocked(lanes)
			return 0, fmt.Errorf("fleet: attach on %s: %w", s.name, err)
		}
		lanes[s.name] = lane
	}
	id := e.nextID
	e.nextID++
	e.queries[id] = &Attachment{ID: id, Query: query, Lanes: lanes}
	return id, nil
}

// rollbackLocked detaches the lanes of a partially attached fleet
// query. Callers hold e.mu.
func (e *Engine) rollbackLocked(lanes map[string]int) {
	for name, lane := range lanes {
		// The mux was attachable moments ago; a rollback failure means
		// the stream is closed, in which case the lane is gone anyway.
		_, _ = e.byName[name].mux.Detach(lane)
	}
}

// Detach removes a fleet query from every source, returning the final
// per-source results keyed by source name.
func (e *Engine) Detach(id int) (map[string]*exec.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[id]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown fleet query %d", id)
	}
	out := make(map[string]*exec.Result, len(q.Lanes))
	var firstErr error
	for name, lane := range q.Lanes {
		res, err := e.byName[name].mux.Detach(lane)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: detach on %s: %w", name, err)
		}
		out[name] = res
	}
	delete(e.queries, id)
	return out, firstErr
}

// Queries returns the live fleet attachments, by ascending id.
func (e *Engine) Queries() []Attachment {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]int, 0, len(e.queries))
	for id := range e.queries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Attachment, 0, len(ids))
	for _, id := range ids {
		out = append(out, *e.queries[id])
	}
	return out
}

// Step advances the fleet by one lockstep tick: each source with frames
// remaining is fed its next frame, all inside one batch window so
// same-tick detector invocations coalesce. A source whose feed fails is
// marked done and the OTHERS still complete the tick — one bad camera
// must not desynchronize or freeze its siblings; the first error is
// returned alongside. It reports whether any source advanced;
// (false, nil) means every source is exhausted.
func (e *Engine) Step() (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stepLocked()
}

func (e *Engine) stepLocked() (bool, error) {
	fed := false
	if e.batch != nil {
		e.batch.BeginTick()
		defer e.batch.FlushTick()
	}
	e.ticks++
	var firstErr error
	for _, s := range e.sources {
		if s.done || s.fed >= s.src.NumFrames() {
			s.done = true
			continue
		}
		if s.quarantined && (e.ticks-s.quarantinedAt)%quarantineProbeEvery != 0 {
			// Quarantined: siblings proceed at full rate; this source is
			// probed on the slow cadence only. It still counts as pending
			// so Run keeps ticking until it recovers or is declared dead.
			fed = true
			continue
		}
		f, status := fault.Poll(s.src, s.fed)
		switch status {
		case fault.StatusStalled:
			s.stalls++
			s.totalStalls++
			if s.stalls >= stallLimit {
				// The source is not coming back; declare it dead so the
				// fleet can drain instead of probing forever.
				s.done = true
				s.quarantined = false
				continue
			}
			if !s.quarantined && s.stalls >= quarantineThreshold {
				s.quarantined = true
				s.quarantinedAt = e.ticks
				s.quarantines++
			}
			fed = true
			continue
		case fault.StatusDropped:
			// The frame is lost for good: skip the index. The mux never
			// sees it; lane Matched vectors are simply shorter.
			s.stalls = 0
			s.dropped++
			s.fed++
			fed = true
			continue
		}
		if _, err := s.mux.Feed(f); err != nil {
			s.done = true
			if firstErr == nil {
				firstErr = fmt.Errorf("fleet: feed %s: %w", s.name, err)
			}
			continue
		}
		s.stalls = 0
		s.quarantined = false
		s.fed++
		fed = true
	}
	return fed, firstErr
}

// Run drives Step until every source is exhausted. A per-source feed
// error does not stop the healthy cameras — they run to the end of
// their clips — but the first error is returned once the fleet drains.
func (e *Engine) Run() error {
	var firstErr error
	for {
		fed, err := e.Step()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if !fed {
			return firstErr
		}
	}
}

// SourceHealth is one source's failure-domain state, surfaced by
// /streamz and /healthz.
type SourceHealth struct {
	Name string `json:"name"`
	// Fed is the feed position; Done marks an exhausted or dead source.
	Fed  int  `json:"fed"`
	Done bool `json:"done"`
	// Quarantined marks a source on the slow probe cadence after
	// repeated stalls; Quarantines counts how often it got there.
	Quarantined bool `json:"quarantined"`
	Quarantines int  `json:"quarantines"`
	// Stalls counts stalled polls over the source's lifetime; Dropped
	// counts frames lost to drops.
	Stalls  int `json:"stalls"`
	Dropped int `json:"dropped"`
}

// Health reports every source's failure-domain state, in feed order.
func (e *Engine) Health() []SourceHealth {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SourceHealth, len(e.sources))
	for i, s := range e.sources {
		out[i] = SourceHealth{
			Name: s.name, Fed: s.fed, Done: s.done,
			Quarantined: s.quarantined, Quarantines: s.quarantines,
			Stalls: s.totalStalls, Dropped: s.dropped,
		}
	}
	return out
}

// FramesFed reports each source's feed position, keyed by source name.
func (e *Engine) FramesFed() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int, len(e.sources))
	for _, s := range e.sources {
		out[s.name] = s.fed
	}
	return out
}

// Snapshot returns one fleet query's live per-source results (copies,
// safe against further feeding), keyed by source name.
func (e *Engine) Snapshot(id int) (map[string]*exec.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[id]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown fleet query %d", id)
	}
	out := make(map[string]*exec.Result, len(q.Lanes))
	for name, lane := range q.Lanes {
		res, err := e.byName[name].mux.Snapshot(lane)
		if err != nil {
			return nil, fmt.Errorf("fleet: snapshot on %s: %w", name, err)
		}
		out[name] = res
	}
	return out, nil
}

// Merged returns one fleet query's cross-camera view: live per-source
// snapshots joined per global id with provenance.
func (e *Engine) Merged(id int) (*MergedResult, error) {
	e.mu.Lock()
	name := ""
	if q, ok := e.queries[id]; ok {
		name = q.Query
	}
	e.mu.Unlock()
	perSource, err := e.Snapshot(id)
	if err != nil {
		return nil, err
	}
	return Merge(name, perSource), nil
}

// Close closes every source's MuxStream, finalizing all lanes.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.sources {
		s.mux.Close()
	}
}
