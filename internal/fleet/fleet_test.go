package fleet

import (
	"reflect"
	"testing"

	"vqpy/internal/exec"
)

// feat builds a unit-ish feature along one axis with a small bleed into
// another, enough to steer cosine matching in tests.
func feat(axis int, bleed float64) []float64 {
	v := make([]float64, 8)
	v[axis] = 1
	v[(axis+1)%8] = bleed
	return v
}

// TestRegistryResolveFusesAcrossSources checks the core fusion
// behaviour: similar features on different sources share one global id,
// dissimilar ones get fresh ids, and (source, track) memoization sticks.
func TestRegistryResolveFusesAcrossSources(t *testing.T) {
	r := NewRegistry(0.7)
	a := r.Resolve("cam0", 1, feat(0, 0.05))
	if a != 1 {
		t.Fatalf("first identity = %d, want 1", a)
	}
	if b := r.Resolve("cam1", 9, feat(0, 0.08)); b != a {
		t.Fatalf("same appearance on cam1 got id %d, want %d", b, a)
	}
	if c := r.Resolve("cam0", 2, feat(3, 0.02)); c == a {
		t.Fatal("distinct appearance fused into the same identity")
	}
	// Memoized: a different (even empty) feature cannot re-assign an
	// already-resolved track.
	if again := r.Resolve("cam0", 1, feat(5, 0)); again != a {
		t.Fatalf("re-resolve changed id: %d → %d", a, again)
	}
	st := r.Stats()
	if st.Entities != 2 || st.CrossCamera != 1 || st.Resolves != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if got := r.SourcesOf(a); !reflect.DeepEqual(got, []string{"cam0", "cam1"}) {
		t.Fatalf("SourcesOf(%d) = %v", a, got)
	}
	if gid, ok := r.GlobalID("cam1", 9); !ok || gid != a {
		t.Fatalf("GlobalID lookup = %d,%v", gid, ok)
	}
}

// TestRegistryUntrackedResolvesToMinusOne checks untracked detections
// never pollute the identity space.
func TestRegistryUntrackedResolvesToMinusOne(t *testing.T) {
	r := NewRegistry(0)
	if gid := r.Resolve("cam0", -1, feat(0, 0)); gid != -1 {
		t.Fatalf("untracked resolve = %d, want -1", gid)
	}
	if gid := r.Resolve("cam0", 3, nil); gid != -1 {
		t.Fatalf("featureless resolve = %d, want -1", gid)
	}
	if st := r.Stats(); st.Entities != 0 {
		t.Fatalf("identity space polluted: %+v", st)
	}
}

// hitWith builds a one-object frame hit carrying a global id output.
func hitWith(frame int, sec float64, trackID, gid int) exec.FrameHit {
	return exec.FrameHit{
		FrameIdx: frame, TimeSec: sec,
		Objects: []exec.ObjOut{{
			Instance: "car", TrackID: trackID,
			Values: map[string]any{PropGlobalID: gid},
		}},
	}
}

// TestMergeAndCrossCamera exercises the per-global-id join and the
// windowed cross-camera predicate.
func TestMergeAndCrossCamera(t *testing.T) {
	per := map[string]*exec.Result{
		"cam0": {Query: "Fleet", Hits: []exec.FrameHit{
			hitWith(2, 0.2, 4, 1),
			hitWith(3, 0.3, 4, 1),
			hitWith(8, 0.8, 5, 2),
		}},
		"cam1": {Query: "Fleet", Hits: []exec.FrameHit{
			hitWith(60, 6.0, 11, 1), // entity 1, 5.7s after cam0
		}},
	}
	m := Merge("Fleet", per)
	if len(m.Entities) != 2 {
		t.Fatalf("entities = %d, want 2", len(m.Entities))
	}
	e1 := m.Entities[0]
	if e1.GlobalID != 1 || !reflect.DeepEqual(e1.Sources, []string{"cam0", "cam1"}) {
		t.Fatalf("entity 1 = %+v", e1)
	}
	if len(e1.Sightings) != 3 || e1.FirstSec != 0.2 || e1.LastSec != 6.0 {
		t.Fatalf("entity 1 sightings = %+v", e1)
	}
	if e1.Sightings[2].Source != "cam1" || e1.Sightings[2].TrackID != 11 {
		t.Fatalf("provenance lost: %+v", e1.Sightings[2])
	}

	// Entity 1 crosses cameras within 30s but not within 2s; entity 2
	// never leaves cam0.
	if got := m.CrossCamera(2, 30); len(got) != 1 || got[0].GlobalID != 1 {
		t.Fatalf("CrossCamera(2, 30) = %+v", got)
	}
	if got := m.CrossCamera(2, 2); len(got) != 0 {
		t.Fatalf("CrossCamera(2, 2) = %+v, want none", got)
	}
	if got := m.CrossCamera(2, 0); len(got) != 1 {
		t.Fatalf("CrossCamera unbounded = %+v", got)
	}
}

// TestMergeSkipsHitsWithoutGlobalID checks that non-fleet outputs are
// ignored rather than misattributed.
func TestMergeSkipsHitsWithoutGlobalID(t *testing.T) {
	per := map[string]*exec.Result{
		"cam0": {Hits: []exec.FrameHit{
			{FrameIdx: 1, Objects: []exec.ObjOut{{TrackID: 2}}},
			hitWith(2, 0.2, 3, -1), // untracked
		}},
	}
	if m := Merge("q", per); len(m.Entities) != 0 {
		t.Fatalf("entities = %+v, want none", m.Entities)
	}
}
