package fleet

import (
	"sort"

	"vqpy/internal/exec"
)

// Sighting is one per-source appearance of a global entity inside a
// fleet query's results — the provenance record: which camera saw it,
// when, and under which source-local track id.
type Sighting struct {
	// Source is the camera the entity was sighted on.
	Source string `json:"source"`
	// FrameIdx / TimeSec locate the sighting on that camera's stream
	// (cameras run in lockstep, so TimeSec is comparable across
	// sources).
	FrameIdx int     `json:"frame_idx"`
	TimeSec  float64 `json:"time_sec"`
	// TrackID is the source-local track id the global id was fused
	// from.
	TrackID int `json:"track_id"`
}

// Entity is one global object's merged view across every source a fleet
// query matched it on.
type Entity struct {
	// GlobalID is the registry-issued cross-camera identity.
	GlobalID int `json:"global_id"`
	// Sources lists the distinct cameras the entity matched on, sorted.
	Sources []string `json:"sources"`
	// FirstSec / LastSec span the entity's matched sightings.
	FirstSec float64 `json:"first_sec"`
	LastSec  float64 `json:"last_sec"`
	// Sightings holds every matched appearance, ordered by time then
	// source.
	Sightings []Sighting `json:"sightings"`
}

// MergedResult is a fleet query's cross-camera view: the per-source
// results joined per global id.
type MergedResult struct {
	// Query names the fleet query.
	Query string `json:"query"`
	// PerSource holds each source's raw accumulated result.
	PerSource map[string]*exec.Result `json:"-"`
	// Entities lists the matched global objects, by ascending id.
	Entities []Entity `json:"entities"`
}

// Merge joins per-source query results per global id: every frame hit's
// output objects carrying a global_id value become sightings of that
// entity, with the source recorded as provenance. Hits without a
// global_id output (or with the untracked id -1) are skipped — a fleet
// query must select PropGlobalID for its results to merge.
func Merge(query string, perSource map[string]*exec.Result) *MergedResult {
	m := &MergedResult{Query: query, PerSource: perSource}
	byGid := make(map[int]*Entity)
	sources := make([]string, 0, len(perSource))
	for name := range perSource {
		sources = append(sources, name)
	}
	sort.Strings(sources)
	for _, source := range sources {
		res := perSource[source]
		if res == nil {
			continue
		}
		for _, hit := range res.Hits {
			for _, obj := range hit.Objects {
				gid, ok := obj.Values[PropGlobalID].(int)
				if !ok || gid < 1 {
					continue
				}
				e := byGid[gid]
				if e == nil {
					e = &Entity{GlobalID: gid, FirstSec: hit.TimeSec, LastSec: hit.TimeSec}
					byGid[gid] = e
				}
				if hit.TimeSec < e.FirstSec {
					e.FirstSec = hit.TimeSec
				}
				if hit.TimeSec > e.LastSec {
					e.LastSec = hit.TimeSec
				}
				e.Sightings = append(e.Sightings, Sighting{
					Source: source, FrameIdx: hit.FrameIdx, TimeSec: hit.TimeSec,
					TrackID: obj.TrackID,
				})
			}
		}
	}
	gids := make([]int, 0, len(byGid))
	for gid := range byGid {
		gids = append(gids, gid)
	}
	sort.Ints(gids)
	for _, gid := range gids {
		e := byGid[gid]
		seen := make(map[string]bool)
		for _, s := range e.Sightings {
			seen[s.Source] = true
		}
		e.Sources = make([]string, 0, len(seen))
		for s := range seen {
			e.Sources = append(e.Sources, s)
		}
		sort.Strings(e.Sources)
		sort.Slice(e.Sightings, func(i, j int) bool {
			if e.Sightings[i].TimeSec != e.Sightings[j].TimeSec {
				return e.Sightings[i].TimeSec < e.Sightings[j].TimeSec
			}
			return e.Sightings[i].Source < e.Sightings[j].Source
		})
		m.Entities = append(m.Entities, *e)
	}
	return m
}

// CrossCamera filters the merged entities down to those sighted on at
// least minSources distinct sources within one windowSec span — the
// cross-camera predicate ("same car seen on ≥2 cameras within 30s").
// windowSec <= 0 means an unbounded window (any co-occurrence counts).
func (m *MergedResult) CrossCamera(minSources int, windowSec float64) []Entity {
	if minSources < 2 {
		minSources = 2
	}
	var out []Entity
	for _, e := range m.Entities {
		if len(e.Sources) < minSources {
			continue
		}
		if windowSec <= 0 {
			out = append(out, e)
			continue
		}
		// Sightings are time-sorted: slide a window over them keeping
		// per-source counts incrementally, so the scan is O(n) — this
		// runs under the serving layer's mutex, where a looping stream's
		// unbounded sighting history would make a quadratic rescan stall
		// the frame ticker.
		j := 0
		distinct := 0
		counts := make(map[string]int)
		matched := false
		for i := range e.Sightings {
			for j < len(e.Sightings) && e.Sightings[j].TimeSec <= e.Sightings[i].TimeSec+windowSec {
				if counts[e.Sightings[j].Source] == 0 {
					distinct++
				}
				counts[e.Sightings[j].Source]++
				j++
			}
			if distinct >= minSources {
				matched = true
				break
			}
			counts[e.Sightings[i].Source]--
			if counts[e.Sightings[i].Source] == 0 {
				distinct--
			}
		}
		if matched {
			out = append(out, e)
		}
	}
	return out
}
