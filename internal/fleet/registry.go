// Package fleet is the cross-camera layer on top of the per-source
// shared-scan engine: a global re-identification registry that fuses
// per-source track ids into global object ids via appearance matching,
// an engine that drives many MuxStreams in lockstep (batching
// cross-source detector work through exec.BatchScheduler), and merge
// helpers that join per-source query results per global id with
// per-source provenance — the substrate of fleet-wide queries like
// "same car seen on at least two cameras within 30 seconds".
//
// Soundness rules (DESIGN.md §8):
//
//   - one (source, track id) pair resolves to exactly one global id for
//     its whole lifetime — the first resolution is memoized, so a track
//     can never split across global identities;
//   - global ids are append-only: identities are created, never merged
//     or recycled, so a global id observed once stays valid;
//   - assignment is deterministic for a fixed feed order — the engine
//     feeds sources in registration order each tick, making fleet runs
//     reproducible.
package fleet

import (
	"sort"
	"sync"

	"vqpy/internal/models"
)

// PropGlobalID is the property name under which a fleet-enabled VObj
// exposes its global (cross-camera) object id; query it with
// vqpy.P(obj, vqpy.PropGlobalID). Untracked objects report id -1.
const PropGlobalID = "global_id"

// defaultThreshold is the cosine similarity above which two appearance
// features are considered the same entity. The simulated embedding
// space puts same-entity crops near ~0.95 and distinct entities near 0,
// so 0.7 separates them with margin on both sides.
const defaultThreshold = 0.7

// RegistryStats summarizes the registry for dashboards and benchmarks.
type RegistryStats struct {
	// Entities is the number of distinct global ids issued.
	Entities int
	// Resolves counts Resolve calls that performed feature matching
	// (first sight of a (source, track) pair); CrossCamera the entities
	// seen on at least two sources.
	Resolves    int
	CrossCamera int
}

// Registry is the fleet-level identity service: it fuses per-source
// track ids into global object ids by matching appearance features
// against the centroids of known identities. Safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	threshold float64
	centroids [][]float64
	counts    []int
	sources   []map[string]bool
	bySource  map[string]map[int]int
	resolves  int
}

// NewRegistry creates an identity registry; threshold <= 0 uses the
// default cosine match threshold.
func NewRegistry(threshold float64) *Registry {
	if threshold <= 0 {
		threshold = defaultThreshold
	}
	return &Registry{
		threshold: threshold,
		bySource:  make(map[string]map[int]int),
	}
}

// Resolve returns the global id for one sighting: a source-local track
// id plus its appearance feature. The first resolution of a (source,
// trackID) pair matches the feature against known identity centroids —
// best match at or above the threshold joins that identity, otherwise a
// new global id is issued — and is memoized; later resolutions return
// the same id without touching the feature (rule 1: a track never
// splits). Track ids < 0 (untracked detections) resolve to -1.
func (r *Registry) Resolve(source string, trackID int, feature []float64) int {
	if trackID < 0 || len(feature) == 0 {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if byTrack, ok := r.bySource[source]; ok {
		if gid, ok := byTrack[trackID]; ok {
			return gid
		}
	}
	r.resolves++
	best, bestSim := -1, r.threshold
	for i, c := range r.centroids {
		if s := models.Cosine(c, feature); s >= bestSim {
			best, bestSim = i, s
		}
	}
	if best < 0 {
		r.centroids = append(r.centroids, append([]float64(nil), feature...))
		r.counts = append(r.counts, 1)
		r.sources = append(r.sources, map[string]bool{source: true})
		best = len(r.centroids) - 1
	} else {
		// Fold the sighting into the identity's running-mean centroid;
		// cosine matching is scale-invariant, so no renormalization.
		c := r.centroids[best]
		n := float64(r.counts[best])
		for i := range c {
			c[i] = (c[i]*n + feature[i]) / (n + 1)
		}
		r.counts[best]++
		r.sources[best][source] = true
	}
	gid := best + 1
	if r.bySource[source] == nil {
		r.bySource[source] = make(map[int]int)
	}
	r.bySource[source][trackID] = gid
	return gid
}

// GlobalID looks up an already-resolved (source, track) pair without
// matching; ok is false when the pair has never been sighted.
func (r *Registry) GlobalID(source string, trackID int) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gid, ok := r.bySource[source][trackID]
	return gid, ok
}

// SourcesOf lists the sources a global id has been sighted on, sorted;
// nil for unknown ids.
func (r *Registry) SourcesOf(gid int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if gid < 1 || gid > len(r.sources) {
		return nil
	}
	out := make([]string, 0, len(r.sources[gid-1]))
	for s := range r.sources[gid-1] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the registry's accounting.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RegistryStats{Entities: len(r.centroids), Resolves: r.resolves}
	for _, srcs := range r.sources {
		if len(srcs) >= 2 {
			st.CrossCamera++
		}
	}
	return st
}
