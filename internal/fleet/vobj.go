package fleet

import "vqpy/internal/core"

// propFleetFeature is the appearance-embedding property WithGlobalID
// adds beneath global_id; it is an implementation detail of the pair
// but visible to explain tooling.
const propFleetFeature = "fleet_feature"

// WithGlobalID extends a VObj type with the fleet identity pair: an
// intrinsic appearance feature computed by the fleet_reid zoo model,
// and the global_id property that resolves it against the registry —
// making vqpy.P(obj, PropGlobalID) usable in predicates and outputs.
// Both are intrinsic, so the model and the registry are consulted once
// per (source, track), not once per frame. The source name keys the
// registry's per-source track spaces; build one fleet VObj per source.
//
// Planner canary runs never touch the registry: a profiling candidate
// may assign different track ids than the live scan (e.g. under a
// specialized detector), so memoizing its resolutions would poison the
// live (source, track) → global id map. Profiled global ids evaluate
// as -1 (cost is still charged); live resolution happens on the real
// stream only.
func WithGlobalID(t *core.VObjType, reg *Registry, source string) *core.VObjType {
	return t.Extend(t.Name()+"Fleet").
		StatelessModel(propFleetFeature, "fleet_reid", true).
		AddProperty(&core.Property{
			Name:       PropGlobalID,
			Intrinsic:  true,
			DependsOn:  []string{propFleetFeature},
			CostHintMS: 0.05,
			Compute: func(in core.PropInput) (any, error) {
				if in.Profiling {
					return -1, nil
				}
				f, _ := in.Deps[propFleetFeature].([]float64)
				return reg.Resolve(source, in.TrackID, f), nil
			},
		})
}
