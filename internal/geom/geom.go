// Package geom provides the 2-D geometry primitives used throughout the
// video-analytics pipeline: points, axis-aligned bounding boxes, overlap
// metrics (IoU), distances, and coarse direction classification.
//
// All coordinates are in frame pixels with the origin at the top-left
// corner, x growing rightward and y growing downward, matching the
// convention of common detection models.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point in frame coordinates.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// BBox is an axis-aligned bounding box. X1,Y1 is the top-left corner and
// X2,Y2 the bottom-right corner; a valid box has X1 <= X2 and Y1 <= Y2.
type BBox struct {
	X1, Y1, X2, Y2 float64
}

// Rect constructs a BBox from a top-left corner and a width and height.
func Rect(x, y, w, h float64) BBox { return BBox{x, y, x + w, y + h} }

// Valid reports whether b has non-negative extent on both axes.
func (b BBox) Valid() bool { return b.X2 >= b.X1 && b.Y2 >= b.Y1 }

// Empty reports whether b has zero area.
func (b BBox) Empty() bool { return b.X2 <= b.X1 || b.Y2 <= b.Y1 }

// W returns the width of b.
func (b BBox) W() float64 { return b.X2 - b.X1 }

// H returns the height of b.
func (b BBox) H() float64 { return b.Y2 - b.Y1 }

// Area returns the area of b; invalid boxes have zero area.
func (b BBox) Area() float64 {
	if b.Empty() {
		return 0
	}
	return b.W() * b.H()
}

// Center returns the centroid of b.
func (b BBox) Center() Point { return Point{(b.X1 + b.X2) / 2, (b.Y1 + b.Y2) / 2} }

// Translate returns b moved by the vector d.
func (b BBox) Translate(d Point) BBox {
	return BBox{b.X1 + d.X, b.Y1 + d.Y, b.X2 + d.X, b.Y2 + d.Y}
}

// Inflate returns b grown by m pixels on every side. A negative m shrinks
// the box; the result may be empty but is clamped to remain valid.
func (b BBox) Inflate(m float64) BBox {
	r := BBox{b.X1 - m, b.Y1 - m, b.X2 + m, b.Y2 + m}
	if r.X2 < r.X1 {
		c := (r.X1 + r.X2) / 2
		r.X1, r.X2 = c, c
	}
	if r.Y2 < r.Y1 {
		c := (r.Y1 + r.Y2) / 2
		r.Y1, r.Y2 = c, c
	}
	return r
}

// Intersect returns the overlapping region of a and b. If they do not
// overlap the result is an empty (but valid) box.
func (a BBox) Intersect(b BBox) BBox {
	r := BBox{
		math.Max(a.X1, b.X1), math.Max(a.Y1, b.Y1),
		math.Min(a.X2, b.X2), math.Min(a.Y2, b.Y2),
	}
	if r.X2 < r.X1 {
		r.X2 = r.X1
	}
	if r.Y2 < r.Y1 {
		r.Y2 = r.Y1
	}
	return r
}

// Union returns the smallest box containing both a and b.
func (a BBox) Union(b BBox) BBox {
	return BBox{
		math.Min(a.X1, b.X1), math.Min(a.Y1, b.Y1),
		math.Max(a.X2, b.X2), math.Max(a.Y2, b.Y2),
	}
}

// Contains reports whether p lies inside b (inclusive of edges).
func (b BBox) Contains(p Point) bool {
	return p.X >= b.X1 && p.X <= b.X2 && p.Y >= b.Y1 && p.Y <= b.Y2
}

// ContainsBox reports whether inner lies entirely inside b.
func (b BBox) ContainsBox(inner BBox) bool {
	return inner.X1 >= b.X1 && inner.Y1 >= b.Y1 && inner.X2 <= b.X2 && inner.Y2 <= b.Y2
}

// IoU returns the intersection-over-union overlap of a and b in [0,1].
// Two empty boxes have IoU 0.
func IoU(a, b BBox) float64 {
	inter := a.Intersect(b).Area()
	if inter == 0 {
		return 0
	}
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// CenterDist returns the distance between the centroids of a and b.
func CenterDist(a, b BBox) float64 { return a.Center().Dist(b.Center()) }

// NormCenterDist returns the centroid distance normalized by the diagonal
// of the union box, a scale-invariant proximity measure in [0, 1].
func NormCenterDist(a, b BBox) float64 {
	u := a.Union(b)
	diag := math.Hypot(u.W(), u.H())
	if diag == 0 {
		return 0
	}
	return CenterDist(a, b) / diag
}

// Clamp returns b clipped to the frame of the given width and height.
func (b BBox) Clamp(w, h float64) BBox {
	r := BBox{
		math.Max(0, math.Min(b.X1, w)), math.Max(0, math.Min(b.Y1, h)),
		math.Max(0, math.Min(b.X2, w)), math.Max(0, math.Min(b.Y2, h)),
	}
	return r
}

// String implements fmt.Stringer.
func (b BBox) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f]", b.X1, b.Y1, b.W(), b.H())
}

// Direction is a coarse motion direction class, the vocabulary used by
// CityFlow-style "turn right / go straight" queries.
type Direction int

// Direction values. Unknown is returned when displacement is too small to
// classify reliably.
const (
	DirUnknown Direction = iota
	DirStraight
	DirLeft
	DirRight
	DirStopped
)

var directionNames = [...]string{"unknown", "straight", "left", "right", "stopped"}

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d < 0 || int(d) >= len(directionNames) {
		return "invalid"
	}
	return directionNames[d]
}

// ParseDirection maps a textual direction ("go straight", "turn right",
// ...) onto a Direction. Unrecognized text yields DirUnknown.
func ParseDirection(s string) Direction {
	switch s {
	case "straight", "go straight", "forward", "keep straight":
		return DirStraight
	case "left", "turn left":
		return DirLeft
	case "right", "turn right":
		return DirRight
	case "stopped", "stop", "stationary":
		return DirStopped
	}
	return DirUnknown
}

// ClassifyDirection classifies the motion of a trajectory of centroids
// observed over consecutive frames. It compares initial and final heading:
// a small total displacement is DirStopped, a small heading change is
// DirStraight, and larger signed changes are DirLeft / DirRight (screen
// coordinates: y grows downward, so a positive cross product is a
// right turn).
//
// The trajectory needs at least three points; otherwise DirUnknown.
func ClassifyDirection(track []Point) Direction {
	if len(track) < 3 {
		return DirUnknown
	}
	first, last := track[0], track[len(track)-1]
	if first.Dist(last) < 2.0 {
		return DirStopped
	}
	mid := track[len(track)/2]
	v1 := mid.Sub(first)
	v2 := last.Sub(mid)
	if v1.Norm() < 1e-9 || v2.Norm() < 1e-9 {
		return DirStraight
	}
	cross := v1.X*v2.Y - v1.Y*v2.X
	dot := v1.Dot(v2)
	angle := math.Atan2(cross, dot) // signed heading change in radians
	const turnThreshold = math.Pi / 7
	switch {
	case angle > turnThreshold:
		return DirRight
	case angle < -turnThreshold:
		return DirLeft
	default:
		return DirStraight
	}
}

// Velocity returns the average per-step displacement magnitude of the
// trajectory (pixels per frame). Fewer than two points yields 0.
func Velocity(track []Point) float64 {
	if len(track) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(track); i++ {
		total += track[i].Dist(track[i-1])
	}
	return total / float64(len(track)-1)
}
