package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointOps(t *testing.T) {
	p, q := Point{3, 4}, Point{1, 2}
	if got := p.Add(q); got != (Point{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if !approx(p.Norm(), 5) {
		t.Errorf("Norm = %v", p.Norm())
	}
	if !approx(p.Dot(q), 11) {
		t.Errorf("Dot = %v", p.Dot(q))
	}
	if !approx(p.Dist(q), math.Hypot(2, 2)) {
		t.Errorf("Dist = %v", p.Dist(q))
	}
}

func TestRectAndAccessors(t *testing.T) {
	b := Rect(10, 20, 30, 40)
	if b.X1 != 10 || b.Y1 != 20 || b.X2 != 40 || b.Y2 != 60 {
		t.Fatalf("Rect = %v", b)
	}
	if !approx(b.W(), 30) || !approx(b.H(), 40) || !approx(b.Area(), 1200) {
		t.Errorf("W/H/Area = %v %v %v", b.W(), b.H(), b.Area())
	}
	if c := b.Center(); c != (Point{25, 40}) {
		t.Errorf("Center = %v", c)
	}
	if !b.Valid() || b.Empty() {
		t.Errorf("Valid/Empty wrong")
	}
}

func TestEmptyAndInvalid(t *testing.T) {
	zero := BBox{5, 5, 5, 5}
	if !zero.Empty() || zero.Area() != 0 {
		t.Errorf("zero-extent box should be empty with area 0")
	}
	inv := BBox{10, 10, 5, 5}
	if inv.Valid() {
		t.Errorf("inverted box should be invalid")
	}
	if inv.Area() != 0 {
		t.Errorf("invalid box area should be 0, got %v", inv.Area())
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect(0, 0, 10, 10)
	b := Rect(5, 5, 10, 10)
	i := a.Intersect(b)
	if !approx(i.Area(), 25) {
		t.Errorf("Intersect area = %v, want 25", i.Area())
	}
	u := a.Union(b)
	if u != (BBox{0, 0, 15, 15}) {
		t.Errorf("Union = %v", u)
	}
	// Disjoint boxes intersect to an empty, valid box.
	c := Rect(100, 100, 5, 5)
	d := a.Intersect(c)
	if !d.Valid() || !d.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty valid", d)
	}
}

func TestIoU(t *testing.T) {
	a := Rect(0, 0, 10, 10)
	if got := IoU(a, a); !approx(got, 1) {
		t.Errorf("self IoU = %v", got)
	}
	b := Rect(5, 0, 10, 10)
	// inter = 50, union = 150
	if got := IoU(a, b); !approx(got, 50.0/150.0) {
		t.Errorf("IoU = %v", got)
	}
	c := Rect(50, 50, 10, 10)
	if got := IoU(a, c); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	if got := IoU(BBox{}, BBox{}); got != 0 {
		t.Errorf("empty IoU = %v", got)
	}
}

func TestContains(t *testing.T) {
	b := Rect(0, 0, 10, 10)
	if !b.Contains(Point{5, 5}) || !b.Contains(Point{0, 0}) || !b.Contains(Point{10, 10}) {
		t.Errorf("Contains edges/interior failed")
	}
	if b.Contains(Point{11, 5}) {
		t.Errorf("Contains outside point")
	}
	if !b.ContainsBox(Rect(1, 1, 2, 2)) {
		t.Errorf("ContainsBox inner failed")
	}
	if b.ContainsBox(Rect(5, 5, 10, 10)) {
		t.Errorf("ContainsBox overflow accepted")
	}
}

func TestInflate(t *testing.T) {
	b := Rect(10, 10, 10, 10)
	g := b.Inflate(5)
	if g != (BBox{5, 5, 25, 25}) {
		t.Errorf("Inflate = %v", g)
	}
	// Shrinking past zero collapses to the center, remaining valid.
	s := b.Inflate(-50)
	if !s.Valid() {
		t.Errorf("over-shrunk box invalid: %v", s)
	}
	if c := s.Center(); !approx(c.X, 15) || !approx(c.Y, 15) {
		t.Errorf("collapsed center = %v", c)
	}
}

func TestClamp(t *testing.T) {
	b := BBox{-5, -5, 120, 80}
	c := b.Clamp(100, 60)
	if c != (BBox{0, 0, 100, 60}) {
		t.Errorf("Clamp = %v", c)
	}
}

func TestTranslate(t *testing.T) {
	b := Rect(0, 0, 10, 10).Translate(Point{3, 4})
	if b != (BBox{3, 4, 13, 14}) {
		t.Errorf("Translate = %v", b)
	}
}

func TestNormCenterDist(t *testing.T) {
	a := Rect(0, 0, 10, 10)
	if got := NormCenterDist(a, a); got != 0 {
		t.Errorf("self NormCenterDist = %v", got)
	}
	b := Rect(90, 0, 10, 10)
	got := NormCenterDist(a, b)
	if got <= 0 || got > 1 {
		t.Errorf("NormCenterDist out of range: %v", got)
	}
}

func TestClassifyDirection(t *testing.T) {
	straight := []Point{{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}}
	if d := ClassifyDirection(straight); d != DirStraight {
		t.Errorf("straight = %v", d)
	}
	// Right turn in screen coordinates: heading east then south.
	right := []Point{{0, 0}, {10, 0}, {20, 0}, {20, 10}, {20, 20}}
	if d := ClassifyDirection(right); d != DirRight {
		t.Errorf("right = %v", d)
	}
	left := []Point{{0, 20}, {10, 20}, {20, 20}, {20, 10}, {20, 0}}
	if d := ClassifyDirection(left); d != DirLeft {
		t.Errorf("left = %v", d)
	}
	stopped := []Point{{5, 5}, {5.1, 5}, {5, 5.1}, {5.05, 5}}
	if d := ClassifyDirection(stopped); d != DirStopped {
		t.Errorf("stopped = %v", d)
	}
	if d := ClassifyDirection([]Point{{0, 0}, {1, 1}}); d != DirUnknown {
		t.Errorf("short = %v", d)
	}
}

func TestVelocity(t *testing.T) {
	tr := []Point{{0, 0}, {3, 4}, {6, 8}}
	if v := Velocity(tr); !approx(v, 5) {
		t.Errorf("Velocity = %v, want 5", v)
	}
	if v := Velocity(nil); v != 0 {
		t.Errorf("empty Velocity = %v", v)
	}
	if v := Velocity([]Point{{1, 1}}); v != 0 {
		t.Errorf("single-point Velocity = %v", v)
	}
}

func TestDirectionString(t *testing.T) {
	cases := map[Direction]string{
		DirUnknown: "unknown", DirStraight: "straight", DirLeft: "left",
		DirRight: "right", DirStopped: "stopped", Direction(99): "invalid",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", d, got, want)
		}
	}
}

func TestParseDirection(t *testing.T) {
	cases := map[string]Direction{
		"go straight": DirStraight, "straight": DirStraight, "keep straight": DirStraight,
		"turn right": DirRight, "right": DirRight,
		"turn left": DirLeft, "left": DirLeft,
		"stopped": DirStopped, "banana": DirUnknown,
	}
	for s, want := range cases {
		if got := ParseDirection(s); got != want {
			t.Errorf("ParseDirection(%q) = %v, want %v", s, got, want)
		}
	}
}

// normBox maps arbitrary float inputs into a well-formed box so property
// tests exercise the full metric space without NaN noise.
func normBox(x1, y1, w, h float64) BBox {
	abs := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 1
		}
		return math.Mod(math.Abs(v), 1000)
	}
	return Rect(abs(x1), abs(y1), abs(w)+0.1, abs(h)+0.1)
}

func TestIoUSymmetricProperty(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		a, b := normBox(x1, y1, w1, h1), normBox(x2, y2, w2, h2)
		return approx(IoU(a, b), IoU(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIoUBoundsProperty(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		a, b := normBox(x1, y1, w1, h1), normBox(x2, y2, w2, h2)
		v := IoU(a, b)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIoUIdentityProperty(t *testing.T) {
	f := func(x1, y1, w, h float64) bool {
		a := normBox(x1, y1, w, h)
		return approx(IoU(a, a), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionContainsBothProperty(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		a, b := normBox(x1, y1, w1, h1), normBox(x2, y2, w2, h2)
		u := a.Union(b)
		return u.ContainsBox(a) && u.ContainsBox(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectionInsideBothProperty(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		a, b := normBox(x1, y1, w1, h1), normBox(x2, y2, w2, h2)
		i := a.Intersect(b)
		if i.Empty() {
			return true
		}
		return a.ContainsBox(i) && b.ContainsBox(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectionAreaProperty(t *testing.T) {
	// area(a ∩ b) <= min(area(a), area(b))
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		a, b := normBox(x1, y1, w1, h1), normBox(x2, y2, w2, h2)
		i := a.Intersect(b).Area()
		return i <= a.Area()+1e-9 && i <= b.Area()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
