package index

// On-disk framing of the index's segment log, mirroring the store's
// codec (internal/store/codec.go): every record is
//
//	[4-byte big-endian payload length][4-byte CRC32-IEEE][gob payload]
//
// so each record is independently verifiable and decodable. The opener
// distinguishes a torn tail (truncated framing — nothing beyond it can
// be trusted, the logical log ends there) from a corrupt record (framing
// intact but the payload fails its CRC or gob decode — skip just that
// record and keep going), the same recovery contract the store's tiers
// implement.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// maxSegRecordBytes bounds a single segment record. An entry is one
// 16-dim embedding plus keys — far under a kilobyte — so anything larger
// in the length header is corruption.
const maxSegRecordBytes = 1 << 20

// segHeaderBytes is the fixed framing prefix: length + CRC.
const segHeaderBytes = 8

// Segment record kinds: an indexed object entry, or a coverage
// watermark advancing one (source, signature)'s contiguous prefix.
const (
	recEntry = iota + 1
	recCoverage
)

// segRecord is the tagged union the segment log persists. Exactly one
// of Entry / Coverage is meaningful, selected by Kind.
type segRecord struct {
	Kind     int
	Entry    Entry
	Coverage coverageRec
}

// coverageRec records that frames [0, Upto) of (Source, Sig) have been
// extracted into the index.
type coverageRec struct {
	Source string
	Sig    string
	Upto   int
}

// encodeSegRecord frames one record for the log.
func encodeSegRecord(rec *segRecord) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return nil, err
	}
	blob := body.Bytes()
	out := make([]byte, segHeaderBytes+len(blob))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(blob)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(blob))
	copy(out[segHeaderBytes:], blob)
	return out, nil
}

// decodeSegRecord decodes one framed blob, verifying the CRC.
func decodeSegRecord(blob []byte, crc uint32) (*segRecord, error) {
	if crc32.ChecksumIEEE(blob) != crc {
		return nil, fmt.Errorf("index: record checksum mismatch")
	}
	var rec segRecord
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// readSegHeader reads one record header at off. io.EOF (clean end) and
// io.ErrUnexpectedEOF (truncated header) are returned unwrapped so the
// opener can distinguish them from decode failures.
func readSegHeader(r io.ReaderAt, off int64) (length uint32, crc uint32, err error) {
	var hdr [segHeaderBytes]byte
	n, err := r.ReadAt(hdr[:], off)
	if n == 0 && err == io.EOF {
		return 0, 0, io.EOF
	}
	if n < segHeaderBytes {
		return 0, 0, io.ErrUnexpectedEOF
	}
	return binary.BigEndian.Uint32(hdr[0:4]), binary.BigEndian.Uint32(hdr[4:8]), nil
}
