package index

// Durability tests mirror the store's recovery contract at the index
// level, plus the one rule the index adds: coverage is a soundness
// claim, so a mid-log corrupt record voids it (a lost entry under
// surviving coverage would make probes silently miss that track's
// frames), while a torn tail merely rolls coverage back to the last
// intact watermark — the log is append-ordered with each pass's
// coverage record written after its entries, so a lost suffix always
// loses the claim before the facts it covered.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vqpy/internal/store"
	"vqpy/internal/video"
)

func segmentsPath(dir string) string { return filepath.Join(dir, segmentsName) }

func TestCorruptRecordVoidsCoverage(t *testing.T) {
	f := newFixture(t, 99, 8, store.Options{})
	n := len(f.v.Frames)
	dir := t.TempDir()
	x := openTestIndex(t, dir, 99)
	f.extract(x, fxSource, n)
	total := len(x.Entries(fxSource, fxSig, int(video.ClassCar)))
	if total < 2 {
		t.Fatalf("fixture indexed only %d tracks", total)
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the first record: framing stays intact,
	// the CRC fails, and replay must skip exactly that record.
	blob, err := os.ReadFile(segmentsPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	blob[segHeaderBytes+2] ^= 0xFF
	if err := os.WriteFile(segmentsPath(dir), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	x2 := openTestIndex(t, dir, 99)
	if got := x2.Counters().Get("corrupt_records"); got != 1 {
		t.Errorf("corrupt_records = %d, want 1", got)
	}
	if got := len(x2.Entries(fxSource, fxSig, int(video.ClassCar))); got != total-1 {
		t.Errorf("reopen kept %d entries, want %d (all but the corrupted one)", got, total-1)
	}
	if got := x2.Covered(fxSource, fxSig); got != 0 {
		t.Errorf("Covered = %d after corruption, want 0 (coverage voided)", got)
	}
	voided := false
	for _, w := range x2.Warnings() {
		if strings.Contains(w, "voided coverage") {
			voided = true
		}
	}
	if !voided {
		t.Error("no warning about voided coverage")
	}

	// Re-extraction re-establishes coverage and re-embeds only the one
	// lost track — surviving entries are reusable memoized facts.
	s := f.extract(x2, fxSource, n)
	if s.From != 0 || s.To != n {
		t.Fatalf("re-extraction covered [%d,%d), want [0,%d)", s.From, s.To, n)
	}
	if s.NewTracks != 1 {
		t.Errorf("re-extraction embedded %d tracks, want 1 (only the lost entry)", s.NewTracks)
	}
	if got := x2.Covered(fxSource, fxSig); got != n {
		t.Errorf("Covered = %d after re-extraction, want %d", got, n)
	}
	checkSpans(t, x2, fxSource, f.truthSpans(nil))
}

func TestTornTailRollsBackToLastWatermark(t *testing.T) {
	f := newFixture(t, 100, 8, store.Options{})
	n := len(f.v.Frames)
	half := n / 2
	dir := t.TempDir()
	x := openTestIndex(t, dir, 100)
	f.extract(x, fxSource, half)
	f.extract(x, fxSource, n)
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-record: the final record is the second pass's
	// coverage watermark, so its claim is lost but every entry survives.
	st, err := os.Stat(segmentsPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segmentsPath(dir), st.Size()-5); err != nil {
		t.Fatal(err)
	}

	x2 := openTestIndex(t, dir, 100)
	if got := x2.Counters().Get("torn_tail_truncated"); got != 1 {
		t.Errorf("torn_tail_truncated = %d, want 1", got)
	}
	if got := x2.Counters().Get("corrupt_records"); got != 0 {
		t.Errorf("corrupt_records = %d, want 0 (a torn tail is not corruption)", got)
	}
	if got := x2.Covered(fxSource, fxSig); got != half {
		t.Errorf("Covered = %d after torn tail, want last intact watermark %d", got, half)
	}
	checkSpans(t, x2, fxSource, f.truthSpans(nil))

	// The truncated log accepts appends: re-extraction walks the tail
	// range again and restores full coverage durably.
	s := f.extract(x2, fxSource, n)
	if s.From != half || s.To != n {
		t.Fatalf("re-extraction covered [%d,%d), want [%d,%d)", s.From, s.To, half, n)
	}
	if err := x2.Close(); err != nil {
		t.Fatal(err)
	}
	x3 := openTestIndex(t, dir, 100)
	if got := x3.Covered(fxSource, fxSig); got != n {
		t.Errorf("Covered = %d after repair+reopen, want %d", got, n)
	}
}

func TestManifestMismatchInvalidates(t *testing.T) {
	f := newFixture(t, 101, 6, store.Options{})
	n := len(f.v.Frames)
	dir := t.TempDir()
	x := openTestIndex(t, dir, 101)
	f.extract(x, fxSource, n)
	total := len(x.Entries(fxSource, fxSig, int(video.ClassCar)))
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	// A different seed means every persisted embedding is wrong, not
	// stale: the index must start empty.
	x2 := openTestIndex(t, dir, 102)
	if got := x2.Counters().Get("invalidated"); got != 1 {
		t.Errorf("invalidated = %d, want 1", got)
	}
	if got := len(x2.Entries(fxSource, fxSig, int(video.ClassCar))); got != 0 {
		t.Errorf("invalidated index still serves %d entries", got)
	}
	if got := x2.Covered(fxSource, fxSig); got != 0 {
		t.Errorf("invalidated index still claims coverage %d", got)
	}
	if err := x2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening under the original identity invalidates again (the
	// manifest now names seed 102) and a fresh extraction rebuilds.
	x3 := openTestIndex(t, dir, 101)
	if got := x3.Counters().Get("invalidated"); got != 1 {
		t.Errorf("re-invalidated = %d, want 1", got)
	}
	s := f.extract(x3, fxSource, n)
	if s.To != n || s.NewTracks != total {
		t.Errorf("rebuild covered [%d,%d) with %d tracks, want [0,%d) with %d", s.From, s.To, s.NewTracks, n, total)
	}
	if err := x3.Close(); err != nil {
		t.Fatal(err)
	}

	// Zoo-version and embedder mismatches invalidate the same way.
	zoo := testMeta(101)
	zoo.ZooVersion++
	xz, err := Open(dir, zoo)
	if err != nil {
		t.Fatal(err)
	}
	if got := xz.Counters().Get("invalidated"); got != 1 {
		t.Errorf("zoo-version mismatch: invalidated = %d, want 1", got)
	}
	if err := xz.Close(); err != nil {
		t.Fatal(err)
	}
	emb := testMeta(101)
	emb.Embedder = "other_embedder"
	xe, err := Open(dir, emb)
	if err != nil {
		t.Fatal(err)
	}
	if got := xe.Counters().Get("invalidated"); got != 1 {
		t.Errorf("embedder mismatch: invalidated = %d, want 1", got)
	}
	xe.Close()
}
