package index

// Extraction: the offline pass that walks archived store coverage and
// turns it into index entries. Extraction is incremental — each call
// resumes from the current coverage watermark and advances it as far as
// the archive allows — and fault-aware: an injected (or genuine) store
// read failure stops the watermark at the failing frame, leaving that
// range to the query layer's full-rescan fallback. The index can be
// wrong about nothing: it only ever claims coverage for frames whose
// records it actually read.
//
// Embedding cost accounting: each distinct (source, track) pays for
// exactly one embedder invocation — at the track's first archived
// sighting — no matter how many frames the track spans, and never
// again on later passes (the entry memoizes the vector). The charge
// lands on the session clock through the ordinary models path, so
// extraction cost is visible in the ledger like any other model work.

import (
	"fmt"

	"vqpy/internal/fleet"
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/store"
	"vqpy/internal/video"
)

// ExtractConfig describes one extraction pass.
type ExtractConfig struct {
	// Store is the archive to walk; Src the frame source backing it
	// (frames are needed to embed crops). Both required.
	Store *store.Store
	Src   video.FrameSource
	// Source names the stream; empty defaults to Src.SourceName().
	Source string
	// Sig is the scan-group signature key (exec.ScanSig.Key) whose
	// archived records to walk; Detect the detector the signature chose
	// (records persisted under a different detector stop coverage — the
	// store's own invalidation rule).
	Sig    string
	Detect string
	// Class is the tracked class whose ids and detections to index.
	Class int
	// Env and Embedder compute the appearance embeddings (the zoo's
	// fleet_reid), charged on Env's clock.
	Env      *models.Env
	Embedder models.Embedder
	// Fleet, when set, resolves each embedded track to its cross-camera
	// global id (Entry.GlobalID); nil leaves global ids at -1.
	Fleet *fleet.Registry
}

// ExtractStats reports what one extraction pass did.
type ExtractStats struct {
	// From / To bound the walked range: coverage advanced from From to
	// To (To == From when the first frame already stopped the walk).
	From, To int
	// NewTracks counts tracks embedded and inserted this pass; Updated
	// counts existing entries whose span grew.
	NewTracks int
	Updated   int
	// FaultStopped reports the walk ended on a faulted store read
	// (counter "index_faulted_reads") rather than on missing records.
	FaultStopped bool
}

// storeFaultReads sums the store's injected-read-failure counters; a
// delta across one read means that read was served as a miss by the
// chaos layer, not by genuine absence.
func storeFaultReads(st *store.Store) int64 {
	c := st.Counters()
	return c.Get("scan_faulted_reads") + c.Get("det_faulted_reads")
}

// Extract walks archived frames [Covered(source, sig), upto) and folds
// every sighting of cfg.Class into the index: new tracks are embedded
// (once) and inserted, known tracks extend their frame span. The walk
// stops early — without error — at the first frame whose scan record is
// missing, was written by a different detector, lacks from-zero ids for
// the class, or whose store read faulted; coverage advances exactly to
// the stop point, so the index never claims frames it did not read.
// Touched entries and the new watermark are appended to the segment log
// before returning.
func (x *Index) Extract(cfg ExtractConfig, upto int) (ExtractStats, error) {
	if cfg.Store == nil || cfg.Src == nil || cfg.Env == nil || cfg.Embedder == nil {
		return ExtractStats{}, fmt.Errorf("index: Extract requires Store, Src, Env and Embedder")
	}
	if cfg.Source == "" {
		cfg.Source = cfg.Src.SourceName()
	}
	x.extractMu.Lock()
	defer x.extractMu.Unlock()

	from := x.Covered(cfg.Source, cfg.Sig)
	st := ExtractStats{From: from, To: from}
	if upto <= from {
		return st, nil
	}
	touched := make(map[string]bool)

	f := from
	for ; f < upto; f++ {
		faultBase := storeFaultReads(cfg.Store)
		rec, ok := cfg.Store.GetScan(cfg.Source, cfg.Sig, f)
		if !ok {
			st.FaultStopped = x.noteFaultStop(cfg.Store, faultBase, cfg.Source, f)
			break
		}
		if rec.Detect != cfg.Detect {
			break
		}
		if rec.Dropped {
			continue
		}
		dets, ok := cfg.Store.GetDets(cfg.Source, cfg.Detect, f)
		if !ok {
			st.FaultStopped = x.noteFaultStop(cfg.Store, faultBase, cfg.Source, f)
			break
		}
		ids, have := rec.IDs[cfg.Class]
		classDets := classDetsOf(dets, cfg.Class)
		if !have || len(ids) != len(classDets) {
			// The archive has no from-zero track ids for this class under
			// this signature at f (e.g. a cold mid-stream attach archived
			// the frame id-less): nothing trustworthy to index past here.
			break
		}
		for i, d := range classDets {
			if ids[i] >= 0 {
				x.sight(cfg, ids[i], f, d, touched, &st)
			}
		}
	}
	st.To = f

	x.mu.Lock()
	defer x.mu.Unlock()
	for k := range touched {
		if e := x.entries[k]; e != nil {
			x.appendLocked(&segRecord{Kind: recEntry, Entry: *e})
		}
	}
	ck := coverKey(cfg.Source, cfg.Sig)
	if f > x.covered[ck] {
		x.covered[ck] = f
		x.appendLocked(&segRecord{Kind: recCoverage,
			Coverage: coverageRec{Source: cfg.Source, Sig: cfg.Sig, Upto: f}})
	}
	return st, nil
}

// noteFaultStop distinguishes a faulted store read from a genuinely
// missing record and books the index_faulted_reads counter — the signal
// that a range was left uncovered by chaos, not by absence.
func (x *Index) noteFaultStop(s *store.Store, faultBase int64, source string, frame int) bool {
	if storeFaultReads(s) == faultBase {
		return false
	}
	x.counters.Add("index_faulted_reads", 1)
	x.mu.Lock()
	x.warnings = append(x.warnings, fmt.Sprintf(
		"index: store read fault at %s frame %d; coverage stops there (full-rescan fallback)", source, frame))
	x.mu.Unlock()
	return true
}

// sight folds one archived detection of a live track into the index:
// span extension for a known track, embed-and-insert for a new one.
func (x *Index) sight(cfg ExtractConfig, track, frame int, d store.Detection, touched map[string]bool, st *ExtractStats) {
	k := entryKey(cfg.Source, cfg.Sig, cfg.Class, track)
	x.mu.Lock()
	if e, ok := x.entries[k]; ok {
		if frame > e.Last {
			e.Last = frame
			e.Frames++
			touched[k] = true
			st.Updated++
		}
		x.mu.Unlock()
		return
	}
	x.mu.Unlock()

	// First sighting: pay the one memoized embedding, outside the index
	// lock so concurrent probes are not blocked behind model work.
	vec := cfg.Embedder.Embed(cfg.Env, cfg.Src.FrameAt(frame), d.Box, d.TruthID)
	gid := -1
	if cfg.Fleet != nil && len(vec) > 0 {
		gid = cfg.Fleet.Resolve(cfg.Source, track, vec)
	}
	e := &Entry{
		Source: cfg.Source, Sig: cfg.Sig, Class: cfg.Class,
		Track: track, GlobalID: gid,
		First: frame, Last: frame, Frames: 1, Vec: vec,
	}
	x.mu.Lock()
	if _, ok := x.entries[k]; !ok {
		x.insertEntry(e)
		touched[k] = true
		st.NewTracks++
	}
	x.mu.Unlock()
}

// classDetsOf filters archived detections to one class, preserving
// order — the same subsequence the shared tracker consumed, which is
// what rec.IDs[class] is parallel to.
func classDetsOf(dets []store.Detection, class int) []store.Detection {
	var out []store.Detection
	for _, d := range dets {
		if d.Class == class {
			out = append(out, d)
		}
	}
	return out
}

// Appearance is one track's first archived sighting within a walked
// frame range — the crop the appearance predicate embeds.
type Appearance struct {
	Track   int
	Frame   int
	Box     geom.BBox
	TruthID int
}

// StoreAppearances walks archived frames [from, to) of (source, sig)
// and returns each distinct track's first sighting, in first-frame
// order. Frames without a usable record (missing, detector mismatch,
// dropped, or no from-zero ids) contribute nothing — the same skip
// rules extraction applies, so for any range extraction fully covered
// the two walks see identical first sightings. This is the shared
// definition of "a track's appearance" used by the index (at extract
// time) and by the full-rescan search path (at query time); sharing it
// is what makes probe-then-verify bit-identical to the full scan.
func StoreAppearances(st *store.Store, source, sig, detect string, class, from, to int) []Appearance {
	var out []Appearance
	seen := make(map[int]bool)
	for f := from; f < to; f++ {
		rec, ok := st.GetScan(source, sig, f)
		if !ok || rec.Detect != detect || rec.Dropped {
			continue
		}
		dets, ok := st.GetDets(source, detect, f)
		if !ok {
			continue
		}
		ids, have := rec.IDs[class]
		classDets := classDetsOf(dets, class)
		if !have || len(ids) != len(classDets) {
			continue
		}
		for i, d := range classDets {
			id := ids[i]
			if id < 0 || seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, Appearance{Track: id, Frame: f, Box: d.Box, TruthID: d.TruthID})
		}
	}
	return out
}
