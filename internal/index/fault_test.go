package index

// Fault-injection test: an injected store read failure during
// extraction must degrade to "index that range as uncovered" — coverage
// stops exactly at the faulted frame, the index_faulted_reads counter
// distinguishes chaos from genuine absence, and once the fault heals a
// later pass resumes to full, correct coverage. The query layer's
// residual full-rescan over uncovered frames keeps answers right in
// the meantime; the index itself never claims a frame it did not read.

import (
	"errors"
	"sync/atomic"
	"testing"

	"vqpy/internal/store"
)

func TestExtractStoreReadFaultStopsCoverage(t *testing.T) {
	var failScans atomic.Bool
	var allowed atomic.Int64
	// MemRecords 1 forces every extraction read of an already-archived
	// frame onto the disk tier, where the fault hook fires (hot-tier
	// hits never consult it).
	opts := store.Options{
		MemRecords: 1,
		ReadFault: func(kind string) error {
			if kind == "scans" && failScans.Load() && allowed.Add(-1) < 0 {
				return errors.New("injected scan-read fault")
			}
			return nil
		},
	}
	f := newFixture(t, 104, 6, opts)
	n := len(f.v.Frames)
	x := openTestIndex(t, t.TempDir(), 104)

	// Allow five disk scan reads, then fault: frames 0-4 index, frame
	// 5's read fails, coverage stops there.
	allowed.Store(5)
	failScans.Store(true)
	s, err := x.Extract(f.config(fxSource, nil), n)
	if err != nil {
		t.Fatal(err)
	}
	if !s.FaultStopped {
		t.Fatal("extraction did not report FaultStopped on an injected read fault")
	}
	if s.From != 0 || s.To != 5 {
		t.Fatalf("faulted extraction covered [%d,%d), want [0,5)", s.From, s.To)
	}
	if got := x.Covered(fxSource, fxSig); got != 5 {
		t.Errorf("Covered = %d after fault, want 5", got)
	}
	if got := x.Counters().Get("index_faulted_reads"); got != 1 {
		t.Errorf("index_faulted_reads = %d, want 1", got)
	}
	if got := f.st.Counters().Get("scan_faulted_reads"); got == 0 {
		t.Error("store booked no scan_faulted_reads; fault never reached the disk tier")
	}
	if st := x.TierStats(); st.FaultedReads != 1 {
		t.Errorf("TierStats.FaultedReads = %d, want 1", st.FaultedReads)
	}

	// Heal the fault: the next pass resumes from the watermark and the
	// final index matches ground truth exactly — the faulted pass left
	// nothing wrong behind, only a shorter coverage claim.
	failScans.Store(false)
	s2, err := x.Extract(f.config(fxSource, nil), n)
	if err != nil {
		t.Fatal(err)
	}
	if s2.From != 5 || s2.To != n || s2.FaultStopped {
		t.Fatalf("healed extraction covered [%d,%d) fault=%v, want [5,%d)", s2.From, s2.To, s2.FaultStopped, n)
	}
	if got := x.Covered(fxSource, fxSig); got != n {
		t.Errorf("Covered = %d after heal, want %d", got, n)
	}
	checkSpans(t, x, fxSource, f.truthSpans(nil))

	// A fresh index extracting under a still-active fault on the very
	// first read claims nothing at all.
	failScans.Store(true)
	allowed.Store(0)
	x2 := openTestIndex(t, t.TempDir(), 104)
	s3, err := x2.Extract(f.config(fxSource, nil), n)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.FaultStopped || s3.To != 0 {
		t.Errorf("fault-at-zero extraction covered [%d,%d) fault=%v, want [0,0) faulted", s3.From, s3.To, s3.FaultStopped)
	}
	if got := x2.Covered(fxSource, fxSig); got != 0 {
		t.Errorf("Covered = %d, want 0", got)
	}
	failScans.Store(false)
}
