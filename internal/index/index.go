// Package index is the appearance-embedding index over the archival
// result store: the subsystem that turns "find this object anywhere in
// the archive" from an O(archive) rescan into an index probe plus
// verification of a handful of candidate frames (DESIGN.md §10).
//
// An offline extraction pass (Extract) walks the store's archived
// ScanRecord/DetRecord coverage for one (source, scan signature, class),
// computes one appearance embedding per distinct track — memoized per
// (source, track), charged on sim.Clock like any model work — and
// persists entries keyed by (source, global/track id, first/last frame)
// into a small centroid-partitioned flat index. Probes answer "which
// tracks could match this feature above this threshold" with exact
// recall: partitions whose centroid bound proves every member is below
// the threshold are pruned (the spherical triangle inequality), the rest
// are scanned exactly, so a probe can skip work but never a qualifying
// track. The query layer verifies only the frames those candidate
// tracks span (exec.RunIndexVerify) and falls back to full rescan for
// frames beyond the extracted coverage prefix.
//
// Durability mirrors the store: one append-only CRC-framed segment log,
// corrupt records skipped and torn tails truncated at open, and a
// manifest that invalidates the whole index when the seed, zoo version
// or embedder model do not match — embeddings are model outputs, so
// under a different identity they are wrong, not stale.
package index

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"

	"vqpy/internal/metrics"
	"vqpy/internal/models"
)

// FormatVersion identifies the on-disk layout; indexes written by other
// versions are invalidated at open.
const FormatVersion = 1

// attachCos is the minimum cosine similarity between a new entry's
// embedding and a partition centroid for the entry to join that
// partition; below it a new partition is opened with the entry's vector
// as its frozen center. Frozen centers keep partition assignment a pure
// function of insertion order, so a rebuilt index (log replay) produces
// the identical structure.
const attachCos = 0.6

// defaultThreshold is the cosine match bar Exemplar evaluates
// localization against — the same default the search layer applies.
const defaultThreshold = 0.7

// Probe cost model, charged to the clock (no real-work mirror — probes
// are metadata scans, not model inference): a fixed per-probe base plus
// a per-scanned-entry and per-scanned-partition term. Centroid bound
// checks on pruned partitions are free; the charge reflects work that
// scales with what the probe actually touched.
const (
	probeBaseMS      = 1.0
	probePartitionMS = 0.05
	probeEntryMS     = 0.02
)

// Meta is the index manifest: the identity its embeddings are only
// valid under. Embeddings are model outputs — pure functions of (seed,
// model, frame, object) — so a mismatch on any component means the
// persisted vectors differ from what the live embedder would return,
// and the index must be rebuilt, the same rule the store applies to its
// records.
type Meta struct {
	// Version is the on-disk format version.
	Version int `json:"version"`
	// Seed is the session seed the embeddings were computed under.
	Seed uint64 `json:"seed"`
	// ZooVersion is models.ZooVersion at extraction time.
	ZooVersion int `json:"zoo_version"`
	// Embedder is the embedding model name (the zoo's fleet_reid).
	Embedder string `json:"embedder"`
}

// Entry is one indexed object: a track's appearance embedding plus the
// frame span it was sighted over within the extracted coverage.
type Entry struct {
	// Source / Sig / Class locate the scan the track belongs to: the
	// video source, the scan-group signature (exec.ScanSig.Key) and the
	// tracked class.
	Source string
	Sig    string
	Class  int
	// Track is the shared tracker's from-zero track id; GlobalID the
	// fleet registry's cross-camera id (-1 when extraction ran without a
	// fleet registry or the embedder declined the crop).
	Track    int
	GlobalID int
	// First / Last bound the archived frames the track was sighted on
	// within the extracted coverage prefix; Frames counts them. Within
	// coverage the bounds are exact: extraction walks every frame.
	First, Last int
	Frames      int
	// Vec is the appearance embedding at the track's first archived
	// sighting — the memoized one-per-object embedding. Nil when the
	// embedder returned nothing (e.g. an untracked crop); such entries
	// are remembered (so the embedding is not retried every pass) but
	// never probe candidates.
	Vec []float64
}

// partition is one centroid cell of the flat index: a frozen center and
// the entries assigned to it, with the widest member angle as the
// pruning bound.
type partition struct {
	center []float64
	// maxAngle is max over members of angle(center, member.Vec) —
	// monotone under appends, which keeps the pruning bound sound as the
	// index grows.
	maxAngle float64
	members  []*Entry
}

// Index is the appearance index over one directory. Safe for concurrent
// use: probes take a read lock, extraction appends under the write
// lock, so probes interleave with incremental appends.
type Index struct {
	mu   sync.RWMutex
	dir  string
	meta Meta

	f       *os.File
	size    int64
	memOnly bool

	entries map[string]*Entry       // source ⨯ sig ⨯ class ⨯ track
	parts   map[string][]*partition // source ⨯ sig ⨯ class
	covered map[string]int          // source ⨯ sig → contiguous extracted prefix

	// extractMu serializes extraction passes so two concurrent Extract
	// calls cannot interleave their coverage walks; probes are not
	// blocked by it.
	extractMu sync.Mutex

	counters *metrics.Counters
	warnings []string
	closed   bool
}

const (
	manifestName = "manifest.json"
	segmentsName = "segments.log"
)

func entryKey(source, sig string, class, track int) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d", source, sig, class, track)
}

func partKey(source, sig string, class int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", source, sig, class)
}

func coverKey(source, sig string) string {
	return fmt.Sprintf("%s\x00%s", source, sig)
}

// Open opens (creating if needed) the index rooted at dir for the given
// identity. A directory written under a different seed, format version,
// zoo version or embedder is invalidated: its segment log is removed
// and the index starts empty (counter "invalidated"). Corrupt log
// records are skipped with a warning (counter "corrupt_records") and a
// torn tail is truncated, mirroring the store's recovery contract.
func Open(dir string, meta Meta) (*Index, error) {
	if meta.Version == 0 {
		meta.Version = FormatVersion
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	x := &Index{
		dir: dir, meta: meta,
		entries:  make(map[string]*Entry),
		parts:    make(map[string][]*partition),
		covered:  make(map[string]int),
		counters: metrics.NewCounters(),
	}

	manifestPath := filepath.Join(dir, manifestName)
	if blob, err := os.ReadFile(manifestPath); err == nil {
		var have Meta
		if json.Unmarshal(blob, &have) != nil || have != meta {
			// Wrong identity: every persisted embedding was computed by a
			// different model world and must not be served. As in the
			// store, a failed removal fails the open — rewriting the
			// manifest over surviving segments would bless them forever.
			x.counters.Add("invalidated", 1)
			x.warnings = append(x.warnings, fmt.Sprintf(
				"index: %s: manifest %+v does not match %+v; invalidating", dir, have, meta))
			if err := os.Remove(filepath.Join(dir, segmentsName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("index: invalidating %s: %w", segmentsName, err)
			}
		}
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	if err := os.WriteFile(manifestPath, append(blob, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}

	if err := x.openLog(); err != nil {
		return nil, err
	}
	return x, nil
}

// openLog opens the segment log and replays it: entries are inserted
// (and partitioned) in append order, coverage watermarks applied
// monotonically. Framing recovery matches the store's tiers: a torn or
// garbage header ends the logical log there; a record whose framing is
// intact but whose payload fails its CRC or decode is skipped alone.
func (x *Index) openLog() error {
	path := filepath.Join(x.dir, segmentsName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("index: %w", err)
	}
	x.f = f
	fileSize := st.Size()
	off := int64(0)
	for off < fileSize {
		length, crc, err := readSegHeader(f, off)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF || int64(length) > maxSegRecordBytes ||
			off+segHeaderBytes+int64(length) > fileSize {
			x.warnings = append(x.warnings, fmt.Sprintf(
				"index: truncating torn tail at offset %d (file size %d)", off, fileSize))
			x.counters.Add("torn_tail_truncated", 1)
			break
		}
		blob := make([]byte, length)
		if _, err := f.ReadAt(blob, off+segHeaderBytes); err != nil {
			x.warnings = append(x.warnings, fmt.Sprintf(
				"index: unreadable record at offset %d: %v", off, err))
			x.counters.Add("torn_tail_truncated", 1)
			break
		}
		recOff := off
		off += segHeaderBytes + int64(length)
		rec, err := decodeSegRecord(blob, crc)
		if err != nil {
			x.warnings = append(x.warnings, fmt.Sprintf(
				"index: skipping corrupt record at offset %d: %v", recOff, err))
			x.counters.Add("corrupt_records", 1)
			continue
		}
		x.applyRecord(rec)
	}
	x.size = off
	if off < fileSize {
		if err := f.Truncate(off); err != nil {
			x.warnings = append(x.warnings, fmt.Sprintf("index: truncate failed: %v", err))
		}
	}
	// A mid-log corrupt record may have been an entry whose later
	// coverage record survived — coverage claiming a track the index
	// lost would make the probe path silently miss its frames. Entries
	// are reusable memoized facts either way, but coverage is a
	// soundness claim: void it and let the next extraction pass re-walk
	// the archive (cheap — every known track's embedding is memoized)
	// to re-establish it. A torn tail needs none of this: the log is
	// append-ordered with each pass's coverage record written after its
	// entries, so a lost suffix always loses the coverage claim before
	// the entries it covered.
	if x.counters.Get("corrupt_records") > 0 && len(x.covered) > 0 {
		x.covered = make(map[string]int)
		x.warnings = append(x.warnings,
			"index: corrupt record voided coverage; re-extract to re-establish the probe path")
	}
	return nil
}

// applyRecord folds one replayed (or freshly appended) record into the
// in-memory structure. Entry records are latest-wins on the span fields
// but first-wins on partition placement: the embedding never changes
// for a given key, so re-partitioning is never needed.
func (x *Index) applyRecord(rec *segRecord) {
	switch rec.Kind {
	case recEntry:
		e := rec.Entry
		x.insertEntry(&e)
	case recCoverage:
		ck := coverKey(rec.Coverage.Source, rec.Coverage.Sig)
		if rec.Coverage.Upto > x.covered[ck] {
			x.covered[ck] = rec.Coverage.Upto
		}
	}
}

// insertEntry installs or updates one entry under x.mu (or during
// single-threaded open).
func (x *Index) insertEntry(e *Entry) {
	k := entryKey(e.Source, e.Sig, e.Class, e.Track)
	if have, ok := x.entries[k]; ok {
		have.Last = e.Last
		have.Frames = e.Frames
		have.GlobalID = e.GlobalID
		return
	}
	x.entries[k] = e
	if len(e.Vec) == 0 {
		return
	}
	pk := partKey(e.Source, e.Sig, e.Class)
	parts := x.parts[pk]
	best, bestCos := -1, attachCos
	for i, p := range parts {
		if c := models.Cosine(p.center, e.Vec); c >= bestCos {
			best, bestCos = i, c
		}
	}
	if best < 0 {
		x.parts[pk] = append(parts, &partition{
			center: append([]float64(nil), e.Vec...), members: []*Entry{e},
		})
		return
	}
	p := parts[best]
	p.members = append(p.members, e)
	if a := angleOf(models.Cosine(p.center, e.Vec)); a > p.maxAngle {
		p.maxAngle = a
	}
}

// appendLocked frames and appends one record to the segment log. A
// write failure degrades the index to memory-only (the index is a
// derived structure — re-extraction is always correct — so losing
// durability, not correctness, is the right failure mode). Callers hold
// x.mu.
func (x *Index) appendLocked(rec *segRecord) {
	if x.memOnly {
		x.counters.Add("puts_mem_only", 1)
		return
	}
	framed, err := encodeSegRecord(rec)
	if err == nil {
		_, err = x.f.WriteAt(framed, x.size)
	}
	if err != nil {
		x.memOnly = true
		x.counters.Add("degraded_mem_only", 1)
		x.warnings = append(x.warnings, fmt.Sprintf(
			"index: append failed (%v); index degraded to memory-only", err))
		return
	}
	x.size += int64(len(framed))
	x.counters.Add("records_appended", 1)
}

// Close syncs and closes the segment log. Further appends degrade to
// memory-only; probes keep working off the in-memory structure.
func (x *Index) Close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil
	}
	x.closed = true
	x.memOnly = true
	if err := x.f.Sync(); err != nil {
		x.f.Close()
		return err
	}
	return x.f.Close()
}

// Dir returns the index's root directory.
func (x *Index) Dir() string { return x.dir }

// Meta returns the identity the index's embeddings are valid under.
func (x *Index) Meta() Meta { return x.meta }

// Counters exposes the index's probe / extraction / durability counters
// (probes, probe_candidates, probe_scanned, probe_pruned,
// index_faulted_reads, corrupt_records, invalidated, ...).
func (x *Index) Counters() *metrics.Counters { return x.counters }

// Warnings returns the messages accumulated while opening or appending
// (corrupt records skipped, invalidation, durability degradation).
func (x *Index) Warnings() []string {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return append([]string(nil), x.warnings...)
}

// Covered returns the extracted contiguous frame prefix [0, n) of one
// (source, scan signature): every archived frame below it has been
// walked into the index. Frames at or past it need the full-rescan
// fallback.
func (x *Index) Covered(source, sig string) int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.covered[coverKey(source, sig)]
}

// FeatureOf returns the indexed appearance embedding of one track — the
// exemplar lookup behind "find objects like track T". The returned
// slice is shared and must not be mutated.
func (x *Index) FeatureOf(source, sig string, class, track int) ([]float64, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	e, ok := x.entries[entryKey(source, sig, class, track)]
	if !ok || len(e.Vec) == 0 {
		return nil, false
	}
	return e.Vec, true
}

// Entries returns copies of every entry of one (source, sig, class),
// sorted by (First, Track) — deterministic iteration for exemplar
// selection and tests.
func (x *Index) Entries(source, sig string, class int) []Entry {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []Entry
	for _, e := range x.entries {
		if e.Source == source && e.Sig == sig && e.Class == class {
			out = append(out, *e)
		}
	}
	sortEntries(out)
	return out
}

// Exemplar returns a deterministic indexed entry with a usable
// embedding, chosen to localize well: among embeddable entries it
// minimizes the summed frame span of the entries its appearance
// matches at the default 0.7 threshold (ties broken by first frame,
// source, signature, class, then track). The greedy IOU tracker can
// chain one track id across many entities at a busy intersection —
// such a track spans most of the archive and prunes nothing — so
// demos and benchmarks exemplify a single-transit entity instead, the
// "find this car in the archive" shape the index exists for. ok is
// false when nothing embeddable is indexed. No probe cost is charged;
// this is offline bookkeeping, not a query.
func (x *Index) Exemplar() (Entry, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var all []*Entry
	for _, e := range x.entries {
		if len(e.Vec) > 0 {
			all = append(all, e)
		}
	}
	var best *Entry
	bestSpan := 0
	for _, e := range all {
		span := 0
		for _, o := range all {
			if o.Source == e.Source && o.Sig == e.Sig && o.Class == e.Class &&
				models.Cosine(o.Vec, e.Vec) >= defaultThreshold {
				span += o.Last - o.First + 1
			}
		}
		if best == nil || span < bestSpan || (span == bestSpan && exemplarBefore(e, best)) {
			best, bestSpan = e, span
		}
	}
	if best == nil {
		return Entry{}, false
	}
	return *best, true
}

// exemplarBefore is Exemplar's tie-break order over embeddable entries.
func exemplarBefore(a, b *Entry) bool {
	if a.First != b.First {
		return a.First < b.First
	}
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	if a.Sig != b.Sig {
		return a.Sig < b.Sig
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Track < b.Track
}

// sortEntries orders entries by (First, Track) ascending.
func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j].First < es[j-1].First ||
			(es[j].First == es[j-1].First && es[j].Track < es[j-1].Track)); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// angleOf converts a cosine similarity to an angle, clamped into the
// valid domain (float noise can push a cosine epsilon past ±1).
func angleOf(cos float64) float64 {
	if cos > 1 {
		cos = 1
	}
	if cos < -1 {
		cos = -1
	}
	return math.Acos(cos)
}

// pruneEps absorbs float rounding in the triangle-inequality bound so a
// borderline partition is scanned rather than wrongly pruned.
const pruneEps = 1e-9

// Probe returns every indexed track of (source, sig, class) whose
// appearance embedding has cosine similarity >= threshold with feature,
// as entry copies sorted by (First, Track). Recall is exact: a
// partition is skipped only when the spherical triangle inequality
// proves every member is below the threshold —
//
//	angle(q, member) >= angle(q, center) − maxAngle(partition)
//
// so if angle(q, center) − maxAngle > acos(threshold), no member can
// qualify. Entries in surviving partitions are compared exactly with
// the same models.Cosine the verification path uses, so probe and
// full-scan threshold decisions are bitwise identical.
//
// The probe charges env's clock (account "index_probe") a base cost
// plus per-partition and per-entry terms for what it scanned; pruned
// partitions cost nothing, which is what makes archive search sub-linear
// when the index separates identities well.
func (x *Index) Probe(env *models.Env, source, sig string, class int, feature []float64, threshold float64) []Entry {
	x.mu.RLock()
	defer x.mu.RUnlock()
	x.counters.Add("probes", 1)
	var out []Entry
	scanned, prunedEntries, scannedParts := 0, 0, 0
	bound := angleOf(threshold)
	for _, p := range x.parts[partKey(source, sig, class)] {
		if len(feature) > 0 {
			qAngle := angleOf(models.Cosine(p.center, feature))
			if qAngle-p.maxAngle > bound+pruneEps {
				prunedEntries += len(p.members)
				continue
			}
		}
		scannedParts++
		for _, e := range p.members {
			scanned++
			if models.Cosine(e.Vec, feature) >= threshold {
				out = append(out, *e)
			}
		}
	}
	if env != nil {
		env.ChargeClockOnly("index_probe",
			probeBaseMS+probePartitionMS*float64(scannedParts)+probeEntryMS*float64(scanned))
	}
	x.counters.Add("probe_scanned", int64(scanned))
	x.counters.Add("probe_pruned", int64(prunedEntries))
	x.counters.Add("probe_candidates", int64(len(out)))
	sortEntries(out)
	return out
}

// Stats is a point-in-time summary of the index for dashboards
// (/streamz) and CLIs.
type Stats struct {
	// Entries counts indexed tracks; Partitions the centroid cells.
	Entries    int
	Partitions int
	// CoveredRanges counts (source, sig) pairs with a non-zero extracted
	// prefix.
	CoveredRanges int
	// Probes / Candidates / Scanned / Pruned accumulate probe activity:
	// probes served, candidate tracks returned, entries compared exactly
	// and entries skipped by partition pruning.
	Probes     int64
	Candidates int64
	Scanned    int64
	Pruned     int64
	// FaultedReads counts store reads that faulted during extraction
	// (each one stops coverage, leaving the range to the full-rescan
	// fallback); CorruptRecords the segment records skipped at open.
	FaultedReads   int64
	CorruptRecords int64
	// MemOnly reports the index degraded to memory-only after an append
	// failure.
	MemOnly bool
}

// TierStats summarizes the index.
func (x *Index) TierStats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	st := Stats{
		Entries:        len(x.entries),
		Probes:         x.counters.Get("probes"),
		Candidates:     x.counters.Get("probe_candidates"),
		Scanned:        x.counters.Get("probe_scanned"),
		Pruned:         x.counters.Get("probe_pruned"),
		FaultedReads:   x.counters.Get("index_faulted_reads"),
		CorruptRecords: x.counters.Get("corrupt_records"),
		MemOnly:        x.memOnly,
	}
	for _, ps := range x.parts {
		st.Partitions += len(ps)
	}
	for _, upto := range x.covered {
		if upto > 0 {
			st.CoveredRanges++
		}
	}
	return st
}
