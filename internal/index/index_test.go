package index

// Extraction and probe tests run against a hand-archived store: a
// CityFlow clip written frame-by-frame under a perfect tracker (track
// id = ground-truth id), the controlled stand-in for the shared
// executor's archive writes. Ground truth is then recomputed directly
// from the clip, so every span and embedding count the index claims is
// checked against what the archive actually contained.

import (
	"reflect"
	"sync"
	"testing"

	"vqpy/internal/fleet"
	"vqpy/internal/models"
	"vqpy/internal/store"
	"vqpy/internal/video"
)

const (
	fxSource = "cam0"
	fxSig    = "scan:test"
	fxDetect = "yolo"
)

// fixture holds one generated clip plus the store it is archived into.
type fixture struct {
	t   *testing.T
	v   *video.Video
	st  *store.Store
	env *models.Env
	emb models.Embedder
}

// newBareFixture generates the clip and opens an empty store; the test
// archives frames itself (holes, detector switches, drops).
func newBareFixture(t *testing.T, seed uint64, durSec float64, opts store.Options) *fixture {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Meta{Seed: seed}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return &fixture{
		t: t, v: video.CityFlow(seed, durSec).Generate(),
		st: st, env: models.NewEnv(seed), emb: fxEmbedder(t),
	}
}

// newFixture is newBareFixture plus a full archive of every frame.
func newFixture(t *testing.T, seed uint64, durSec float64, opts store.Options) *fixture {
	t.Helper()
	f := newBareFixture(t, seed, durSec, opts)
	for i := range f.v.Frames {
		f.archiveFrameAs(fxSource, i, fxDetect, false)
	}
	return f
}

func fxEmbedder(t *testing.T) models.Embedder {
	t.Helper()
	m, ok := models.BuiltinRegistry().Get("fleet_reid")
	if !ok {
		t.Fatal("zoo has no fleet_reid model")
	}
	e, ok := m.(models.Embedder)
	if !ok {
		t.Fatal("fleet_reid is not an Embedder")
	}
	return e
}

// archiveFrameAs writes frame i's car detections and perfect-tracker
// ids to the store under the given source and detector.
func (f *fixture) archiveFrameAs(source string, i int, detect string, dropped bool) {
	f.t.Helper()
	rec := &store.ScanRecord{Source: source, ScanKey: fxSig, Detect: detect, Frame: i, Dropped: dropped}
	if !dropped {
		var dets []store.Detection
		ids := []int{}
		for _, o := range f.v.Frames[i].Objects {
			if o.Class != video.ClassCar {
				continue
			}
			dets = append(dets, store.Detection{Box: o.Box, Class: int(o.Class), Score: 0.9, TruthID: o.TrackID})
			ids = append(ids, o.TrackID)
		}
		if err := f.st.PutDets(source, detect, i, dets); err != nil {
			f.t.Fatal(err)
		}
		rec.IDs = map[int][]int{int(video.ClassCar): ids}
	}
	if err := f.st.PutScan(rec); err != nil {
		f.t.Fatal(err)
	}
}

func (f *fixture) config(source string, fl *fleet.Registry) ExtractConfig {
	return ExtractConfig{
		Store: f.st, Src: f.v, Source: source,
		Sig: fxSig, Detect: fxDetect, Class: int(video.ClassCar),
		Env: f.env, Embedder: f.emb, Fleet: fl,
	}
}

func (f *fixture) extract(x *Index, source string, upto int) ExtractStats {
	f.t.Helper()
	stats, err := x.Extract(f.config(source, nil), upto)
	if err != nil {
		f.t.Fatal(err)
	}
	return stats
}

type span struct{ first, last, frames int }

// truthSpans recomputes per-track sighting spans from the clip's ground
// truth, over the frames include admits (nil = all).
func (f *fixture) truthSpans(include func(frame int) bool) map[int]span {
	out := map[int]span{}
	for i, fr := range f.v.Frames {
		if include != nil && !include(i) {
			continue
		}
		for _, o := range fr.Objects {
			if o.Class != video.ClassCar {
				continue
			}
			s, ok := out[o.TrackID]
			if !ok {
				s = span{first: i, last: i, frames: 1}
			} else {
				s.last = i
				s.frames++
			}
			out[o.TrackID] = s
		}
	}
	return out
}

func testMeta(seed uint64) Meta {
	return Meta{Version: FormatVersion, Seed: seed, ZooVersion: models.ZooVersion, Embedder: "fleet_reid"}
}

func openTestIndex(t *testing.T, dir string, seed uint64) *Index {
	t.Helper()
	x, err := Open(dir, testMeta(seed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { x.Close() })
	return x
}

// checkSpans compares the indexed entries of one source against ground
// truth spans.
func checkSpans(t *testing.T, x *Index, source string, want map[int]span) {
	t.Helper()
	entries := x.Entries(source, fxSig, int(video.ClassCar))
	if len(entries) != len(want) {
		t.Fatalf("indexed %d tracks, ground truth has %d", len(entries), len(want))
	}
	for _, e := range entries {
		s, ok := want[e.Track]
		if !ok {
			t.Errorf("track %d indexed but absent from ground truth", e.Track)
			continue
		}
		if e.First != s.first || e.Last != s.last || e.Frames != s.frames {
			t.Errorf("track %d span [%d,%d]/%d frames, want [%d,%d]/%d",
				e.Track, e.First, e.Last, e.Frames, s.first, s.last, s.frames)
		}
		if len(e.Vec) == 0 {
			t.Errorf("track %d has no embedding", e.Track)
		}
	}
}

func TestExtractIndexesArchivedTracks(t *testing.T) {
	f := newFixture(t, 91, 8, store.Options{})
	n := len(f.v.Frames)
	x := openTestIndex(t, t.TempDir(), 91)
	stats := f.extract(x, fxSource, n)
	if stats.From != 0 || stats.To != n {
		t.Fatalf("extraction covered [%d,%d), want [0,%d)", stats.From, stats.To, n)
	}
	want := f.truthSpans(nil)
	if stats.NewTracks != len(want) {
		t.Errorf("NewTracks = %d, want %d", stats.NewTracks, len(want))
	}
	if stats.FaultStopped {
		t.Error("clean extraction reported FaultStopped")
	}
	checkSpans(t, x, fxSource, want)
	if got := x.Covered(fxSource, fxSig); got != n {
		t.Errorf("Covered = %d, want %d", got, n)
	}
	for _, e := range x.Entries(fxSource, fxSig, int(video.ClassCar)) {
		if e.GlobalID != -1 {
			t.Errorf("track %d has global id %d without a fleet registry", e.Track, e.GlobalID)
		}
	}
}

// TestExtractEmbedsOncePerTrack pins the cost contract: one embedder
// invocation per distinct track at its first archived sighting, none on
// span extension, none on re-extraction.
func TestExtractEmbedsOncePerTrack(t *testing.T) {
	f := newFixture(t, 92, 8, store.Options{})
	n := len(f.v.Frames)
	x := openTestIndex(t, t.TempDir(), 92)
	half := n / 2

	s1 := f.extract(x, fxSource, half)
	inv1 := f.env.Clock.Invocations("fleet_reid")
	if inv1 != int64(s1.NewTracks) {
		t.Errorf("first pass: %d embedder invocations for %d new tracks", inv1, s1.NewTracks)
	}

	s2 := f.extract(x, fxSource, n)
	if s2.From != half || s2.To != n {
		t.Fatalf("incremental pass covered [%d,%d), want [%d,%d)", s2.From, s2.To, half, n)
	}
	inv2 := f.env.Clock.Invocations("fleet_reid")
	if inv2-inv1 != int64(s2.NewTracks) {
		t.Errorf("incremental pass: %d invocations for %d new tracks", inv2-inv1, s2.NewTracks)
	}
	if s1.NewTracks+s2.NewTracks != len(f.truthSpans(nil)) {
		t.Errorf("passes indexed %d tracks total, ground truth has %d",
			s1.NewTracks+s2.NewTracks, len(f.truthSpans(nil)))
	}

	// Re-extraction over covered ground is a free no-op.
	s3 := f.extract(x, fxSource, n)
	if s3.From != n || s3.To != n || s3.NewTracks != 0 || s3.Updated != 0 {
		t.Errorf("no-op pass did work: %+v", s3)
	}
	if got := f.env.Clock.Invocations("fleet_reid"); got != inv2 {
		t.Errorf("no-op pass re-embedded: invocations %d -> %d", inv2, got)
	}
}

// TestProbeExactRecallVsBruteForce sweeps thresholds and exemplars:
// every probe must return exactly the brute-force answer over all
// entries, while partition pruning skips at least some comparisons.
func TestProbeExactRecallVsBruteForce(t *testing.T) {
	f := newFixture(t, 93, 10, store.Options{})
	x := openTestIndex(t, t.TempDir(), 93)
	f.extract(x, fxSource, len(f.v.Frames))
	entries := x.Entries(fxSource, fxSig, int(video.ClassCar))
	if len(entries) < 3 {
		t.Fatalf("only %d tracks indexed; fixture too small to exercise pruning", len(entries))
	}

	probes := 0
	for _, q := range entries {
		for _, th := range []float64{0.5, 0.7, 0.95} {
			want := map[int]bool{}
			for _, e := range entries {
				if models.Cosine(e.Vec, q.Vec) >= th {
					want[e.Track] = true
				}
			}
			got := x.Probe(f.env, fxSource, fxSig, int(video.ClassCar), q.Vec, th)
			gotSet := map[int]bool{}
			for _, e := range got {
				gotSet[e.Track] = true
			}
			if !reflect.DeepEqual(want, gotSet) {
				t.Errorf("probe(track %d, th %.2f) = %v, brute force %v", q.Track, th, gotSet, want)
			}
			probes++
		}
	}
	c := x.Counters()
	if c.Get("probes") != int64(probes) {
		t.Errorf("probes counter = %d, want %d", c.Get("probes"), probes)
	}
	if c.Get("probe_pruned") == 0 {
		t.Error("no entries pruned across any probe: partitioning is not separating identities")
	}
}

// TestExtractStopsAtGapAndResumes: a hole in the archive stops coverage
// exactly at the hole; filling it lets the next pass resume.
func TestExtractStopsAtGapAndResumes(t *testing.T) {
	f := newBareFixture(t, 94, 6, store.Options{})
	n := len(f.v.Frames)
	if n < 20 {
		t.Fatalf("clip too short: %d frames", n)
	}
	for i := 0; i < 10; i++ {
		f.archiveFrameAs(fxSource, i, fxDetect, false)
	}
	for i := 12; i < 20; i++ {
		f.archiveFrameAs(fxSource, i, fxDetect, false)
	}
	x := openTestIndex(t, t.TempDir(), 94)
	s1 := f.extract(x, fxSource, 20)
	if s1.To != 10 || s1.FaultStopped {
		t.Fatalf("extraction over a hole covered [%d,%d) fault=%v, want stop at 10", s1.From, s1.To, s1.FaultStopped)
	}
	if got := x.Covered(fxSource, fxSig); got != 10 {
		t.Fatalf("Covered = %d, want 10", got)
	}
	f.archiveFrameAs(fxSource, 10, fxDetect, false)
	f.archiveFrameAs(fxSource, 11, fxDetect, false)
	s2 := f.extract(x, fxSource, 20)
	if s2.From != 10 || s2.To != 20 {
		t.Fatalf("resumed extraction covered [%d,%d), want [10,20)", s2.From, s2.To)
	}
	checkSpans(t, x, fxSource, f.truthSpans(func(i int) bool { return i < 20 }))
}

// TestExtractStopsAtDetectorMismatch: a frame archived under a
// different detector ends trustworthy coverage there (the store's own
// invalidation rule applied to the walk).
func TestExtractStopsAtDetectorMismatch(t *testing.T) {
	f := newBareFixture(t, 95, 4, store.Options{})
	n := len(f.v.Frames)
	for i := 0; i < n; i++ {
		det := fxDetect
		if i == 5 {
			det = "other-detector"
		}
		f.archiveFrameAs(fxSource, i, det, false)
	}
	x := openTestIndex(t, t.TempDir(), 95)
	s := f.extract(x, fxSource, n)
	if s.To != 5 || s.FaultStopped {
		t.Fatalf("extraction covered [%d,%d) fault=%v, want stop at detector switch (5)", s.From, s.To, s.FaultStopped)
	}
	if got := x.Covered(fxSource, fxSig); got != 5 {
		t.Errorf("Covered = %d, want 5", got)
	}
}

// TestDroppedFramesCovered: frames the scheduler dropped are covered —
// they were archived, there is nothing to verify on them — but
// contribute no sightings.
func TestDroppedFramesCovered(t *testing.T) {
	f := newBareFixture(t, 96, 6, store.Options{})
	n := len(f.v.Frames)
	dropped := func(i int) bool { return i%3 == 1 }
	for i := 0; i < n; i++ {
		f.archiveFrameAs(fxSource, i, fxDetect, dropped(i))
	}
	x := openTestIndex(t, t.TempDir(), 96)
	s := f.extract(x, fxSource, n)
	if s.To != n {
		t.Fatalf("extraction covered [%d,%d), want full %d despite drops", s.From, s.To, n)
	}
	checkSpans(t, x, fxSource, f.truthSpans(func(i int) bool { return !dropped(i) }))
}

// TestFleetGlobalIDs: the same entities archived under two sources
// resolve to the same cross-camera global id when extraction runs with
// a fleet registry.
func TestFleetGlobalIDs(t *testing.T) {
	f := newBareFixture(t, 97, 6, store.Options{})
	n := len(f.v.Frames)
	for i := 0; i < n; i++ {
		f.archiveFrameAs("camA", i, fxDetect, false)
		f.archiveFrameAs("camB", i, fxDetect, false)
	}
	x := openTestIndex(t, t.TempDir(), 97)
	fl := fleet.NewRegistry(0.7)
	for _, src := range []string{"camA", "camB"} {
		if _, err := x.Extract(f.config(src, fl), n); err != nil {
			t.Fatal(err)
		}
	}
	gidsOf := func(source string) map[int]int {
		out := map[int]int{}
		for _, e := range x.Entries(source, fxSig, int(video.ClassCar)) {
			out[e.Track] = e.GlobalID
		}
		return out
	}
	a, b := gidsOf("camA"), gidsOf("camB")
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("sources indexed %d and %d tracks; want equal and non-zero", len(a), len(b))
	}
	for track, gidA := range a {
		gidB, ok := b[track]
		if !ok {
			t.Errorf("track %d on camA only", track)
			continue
		}
		if gidA < 0 || gidA != gidB {
			t.Errorf("track %d resolved to global ids %d / %d across cameras, want one shared id >= 0",
				track, gidA, gidB)
		}
	}
}

// TestPersistenceAcrossReopen: entries, coverage and probe answers
// survive a close/reopen byte-for-byte.
func TestPersistenceAcrossReopen(t *testing.T) {
	f := newFixture(t, 98, 8, store.Options{})
	n := len(f.v.Frames)
	dir := t.TempDir()
	x := openTestIndex(t, dir, 98)
	f.extract(x, fxSource, n)
	entries := x.Entries(fxSource, fxSig, int(video.ClassCar))
	probe := x.Probe(f.env, fxSource, fxSig, int(video.ClassCar), entries[0].Vec, 0.7)
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	x2 := openTestIndex(t, dir, 98)
	c := x2.Counters()
	for _, k := range []string{"invalidated", "corrupt_records", "torn_tail_truncated"} {
		if c.Get(k) != 0 {
			t.Errorf("clean reopen booked %s = %d", k, c.Get(k))
		}
	}
	if got := x2.Covered(fxSource, fxSig); got != n {
		t.Errorf("reopened Covered = %d, want %d", got, n)
	}
	if got := x2.Entries(fxSource, fxSig, int(video.ClassCar)); !reflect.DeepEqual(entries, got) {
		t.Error("entries changed across reopen")
	}
	if got := x2.Probe(f.env, fxSource, fxSig, int(video.ClassCar), entries[0].Vec, 0.7); !reflect.DeepEqual(probe, got) {
		t.Error("probe answer changed across reopen")
	}
}

// TestConcurrentProbesDuringExtract interleaves probes with incremental
// extraction passes (run under -race in CI): probes must stay safe and
// the final structure must equal a brute-force scan.
func TestConcurrentProbesDuringExtract(t *testing.T) {
	f := newFixture(t, 103, 8, store.Options{})
	n := len(f.v.Frames)
	x := openTestIndex(t, t.TempDir(), 103)

	// Seed the index until it holds one embeddable entry to probe with.
	var feat []float64
	upto := 0
	for upto < n && feat == nil {
		upto += 5
		if upto > n {
			upto = n
		}
		f.extract(x, fxSource, upto)
		for _, e := range x.Entries(fxSource, fxSig, int(video.ClassCar)) {
			if len(e.Vec) > 0 {
				feat = e.Vec
				break
			}
		}
	}
	if feat == nil {
		t.Fatal("no embeddable entry in the whole clip")
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			x.Probe(nil, fxSource, fxSig, int(video.ClassCar), feat, 0.7)
		}
	}()
	for upto < n {
		upto += 7
		if upto > n {
			upto = n
		}
		f.extract(x, fxSource, upto)
	}
	close(done)
	wg.Wait()

	if got := x.Covered(fxSource, fxSig); got != n {
		t.Fatalf("Covered = %d, want %d", got, n)
	}
	checkSpans(t, x, fxSource, f.truthSpans(nil))
}
