// Package lint holds the repository's in-tree hygiene checkers: the
// doc-comment lint (the revive `exported` rule, reimplemented on go/ast
// so CI needs no external tool) and the markdown link checker. Both are
// enforced twice — by `go test ./internal/lint` (tier-1, so they cannot
// rot silently) and by explicit `cmd/vqlint` steps in CI.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CheckDocs reports every exported top-level identifier without a doc
// comment in the given paths. Each path is a .go file or a directory
// (whose non-test .go files are checked, non-recursively — pass
// sub-packages explicitly). The rule matches revive's `exported`:
// exported functions, methods on exported receivers, and each exported
// type / const / var spec must carry a doc comment, either its own or
// its declaration group's.
func CheckDocs(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(p, name))
		}
	}
	sort.Strings(files)

	var issues []string
	fset := token.NewFileSet()
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		issues = append(issues, checkFileDocs(fset, f)...)
	}
	return issues, nil
}

// checkFileDocs walks one parsed file's top-level declarations.
func checkFileDocs(fset *token.FileSet, f *ast.File) []string {
	var issues []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		issues = append(issues, fmt.Sprintf("%s:%d: exported %s %s is missing a doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			if d.Doc != nil && len(d.Specs) == 1 {
				continue // the group doc documents the sole spec
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil || d.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), kindOf(d.Tok), n.Name)
							break
						}
					}
				}
			}
		}
	}
	return issues
}

// kindOf names a GenDecl token for diagnostics.
func kindOf(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}

// exportedReceiver reports whether a method's receiver base type is
// exported (methods on unexported types need no doc comment).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
