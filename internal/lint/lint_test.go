package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckDocsFindsMissingComments exercises the rule on a synthetic
// file: exported identifiers without docs are reported, documented and
// unexported ones are not.
func TestCheckDocsFindsMissingComments(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

// Documented is fine.
func Documented() {}

func Undocumented() {}

func unexported() {}

type Bare struct{}

// Block docs cover a sole spec.
const Covered = 1

const (
	// Inline doc is fine.
	Inline = 1
	Naked  = 2
)

type hidden struct{}

func (hidden) Method() {}

// Exposed is documented.
type Exposed struct{}

func (Exposed) Method() {}
`
	path := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	issues, err := CheckDocs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, issue := range issues {
		got = append(got, issue[strings.Index(issue, "exported "):])
	}
	want := []string{
		"exported function Undocumented is missing a doc comment",
		"exported type Bare is missing a doc comment",
		"exported const Naked is missing a doc comment",
		"exported method Method is missing a doc comment",
	}
	if len(got) != len(want) {
		t.Fatalf("issues = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("issue %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestCheckMarkdownLinksFindsBroken exercises the link checker on a
// synthetic tree: broken relative links are reported; good relative
// links, anchors and external URLs are not.
func TestCheckMarkdownLinksFindsBroken(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "other.md"), []byte("# other"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `# doc
[good](other.md) [anchored](other.md#sec) [web](https://example.com) [self](#local)
[broken](missing.md) ![img](missing.png)
`
	if err := os.WriteFile(filepath.Join(dir, "doc.md"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	issues, err := CheckMarkdownLinks([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 2 {
		t.Fatalf("issues = %q, want 2 (missing.md, missing.png)", issues)
	}
	for _, issue := range issues {
		if !strings.Contains(issue, "missing.") {
			t.Errorf("unexpected issue %q", issue)
		}
	}
}

// repoDocPaths lists the packages whose public surface the repository
// commits to keeping documented (the godoc contract, also enforced as
// an explicit CI step through cmd/vqlint).
func repoDocPaths(t *testing.T) []string {
	t.Helper()
	root := "../.."
	return []string{
		filepath.Join(root, "vqpy.go"),
		filepath.Join(root, "library.go"),
		filepath.Join(root, "fleet.go"),
		filepath.Join(root, "text.go"),
		filepath.Join(root, "internal/plan"),
		filepath.Join(root, "internal/exec"),
		filepath.Join(root, "internal/serve"),
		filepath.Join(root, "internal/store"),
		filepath.Join(root, "internal/lint"),
		filepath.Join(root, "internal/fleet"),
		filepath.Join(root, "internal/video"),
		filepath.Join(root, "internal/track"),
		filepath.Join(root, "internal/config"),
		filepath.Join(root, "internal/metrics"),
		filepath.Join(root, "internal/models"),
		filepath.Join(root, "internal/bench"),
		filepath.Join(root, "internal/vql"),
	}
}

// TestRepoDocComments enforces the doc-comment rule over the repo's
// public API surface: the facade plus the plan / exec / serve / store /
// fleet / video / track / config / metrics / models / bench packages.
// A failure names each undocumented exported identifier.
func TestRepoDocComments(t *testing.T) {
	issues, err := CheckDocs(repoDocPaths(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, issue := range issues {
		t.Error(issue)
	}
}

// TestRepoMarkdownLinks enforces relative-link hygiene over the repo's
// documentation set.
func TestRepoMarkdownLinks(t *testing.T) {
	root := "../.."
	issues, err := CheckMarkdownLinks([]string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "DESIGN.md"),
		filepath.Join(root, "docs"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, issue := range issues {
		t.Error(issue)
	}
}
