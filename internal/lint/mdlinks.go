package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkPattern matches inline markdown links and images: [text](target)
// and ![alt](target). Reference-style definitions are rare in this
// repository and intentionally out of scope.
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// CheckMarkdownLinks reports broken relative links in the given
// markdown files (directories are expanded to their *.md files,
// non-recursively). External links (http, https, mailto) are not
// fetched — this is the offline half of link hygiene: every relative
// path must resolve against the linking file's directory, anchors
// stripped.
func CheckMarkdownLinks(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(p, "*.md"))
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, matches...)
	}
	sort.Strings(files)

	var issues []string
	for _, file := range files {
		blob, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		dir := filepath.Dir(file)
		for lineNo, line := range strings.Split(string(blob), "\n") {
			for _, match := range linkPattern.FindAllStringSubmatch(line, -1) {
				target := match[1]
				if skipLink(target) {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue // pure in-page anchor
				}
				if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
					issues = append(issues,
						fmt.Sprintf("%s:%d: broken link %q", file, lineNo+1, match[1]))
				}
			}
		}
	}
	return issues, nil
}

// skipLink reports targets the offline checker cannot or should not
// resolve: absolute URLs and mail addresses.
func skipLink(target string) bool {
	for _, scheme := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(target, scheme) {
			return true
		}
	}
	return false
}
