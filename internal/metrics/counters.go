package metrics

// Counters is a small named-counter registry for the serving layer:
// per-query and per-group event counts (attaches, detaches, admission
// rejections, frames fed) that /streamz surfaces. It is safe for
// concurrent use by HTTP handlers and the frame-ticker goroutines.

import (
	"sort"
	"sync"
)

// Counters is a concurrency-safe set of named monotonic counters.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments a counter by delta (creating it at zero first).
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns a counter's value (zero when never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Names returns all counter names, sorted (stable rendering).
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
