package metrics

import (
	"reflect"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Errorf("untouched counter = %d, want 0", got)
	}
	c.Add("a", 2)
	c.Add("a", 3)
	c.Add("b", 1)
	if got := c.Get("a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("names = %v", got)
	}
	snap := c.Snapshot()
	c.Add("a", 1)
	if snap["a"] != 5 {
		t.Errorf("snapshot mutated: %d", snap["a"])
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add("hits", 1)
				c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
}

func TestReportMetrics(t *testing.T) {
	r := &Report{Title: "t"}
	if _, ok := r.Metric("x"); ok {
		t.Error("metric present on empty report")
	}
	r.SetMetric("x", 1.5)
	if v, ok := r.Metric("x"); !ok || v != 1.5 {
		t.Errorf("x = %v, %v", v, ok)
	}
}
