// Package metrics provides the evaluation arithmetic (precision, recall,
// F1 over frame sets) and the report rendering (aligned ASCII tables,
// CSV) used by the benchmark harness to regenerate the paper's tables
// and figures.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add accumulates one prediction/truth pair.
func (c *Confusion) Add(pred, truth bool) {
	switch {
	case pred && truth:
		c.TP++
	case pred && !truth:
		c.FP++
	case !pred && truth:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP); 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN); 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// PositiveRate returns the fraction of truth-positive samples.
func (c Confusion) PositiveRate() float64 {
	n := c.TP + c.FP + c.FN + c.TN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.FN) / float64(n)
}

// CompareFrameSets builds a confusion matrix from predicted and truth
// frame sets over a universe of total frames.
func CompareFrameSets(pred, truth map[int]bool, total int) Confusion {
	var c Confusion
	for i := 0; i < total; i++ {
		c.Add(pred[i], truth[i])
	}
	return c
}

// CompareMatched builds a confusion matrix from a matched vector against
// a truth set keyed by frame position.
func CompareMatched(matched []bool, truth map[int]bool) Confusion {
	var c Confusion
	for i, m := range matched {
		c.Add(m, truth[i])
	}
	return c
}

// Series is a labeled sequence of (x, y) points, used for figure-style
// outputs (e.g. per-frame time curves).
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Report is a paper-style table: a title, a header row, data rows, and
// free-form notes (expected-shape commentary). Metrics carries the
// report's machine-readable values — named scalars the CI
// bench-regression gate checks against bench_baselines.json, so a
// regression fails the build instead of hiding in an uploaded artifact.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Curves []Series

	Metrics map[string]float64 `json:",omitempty"`
}

// AddRow appends a data row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// SetMetric records one machine-readable scalar for the regression gate.
func (r *Report) SetMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Metric returns a named scalar and whether it is present.
func (r *Report) Metric(name string) (float64, bool) {
	v, ok := r.Metrics[name]
	return v, ok
}

// AddNote appends a note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned ASCII table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, s := range r.Curves {
		fmt.Fprintf(&b, "series %s: %d points\n", s.Label, len(s.X))
	}
	return b.String()
}

// CSV renders the table rows as comma-separated values.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Ratio formats a speedup ratio the way the paper's figures annotate
// bars ("4.9x").
func Ratio(base, v float64) string {
	if v == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", base/v)
}

// Ms formats milliseconds compactly.
func Ms(v float64) string { return fmt.Sprintf("%.1f", v) }

// Sec formats a millisecond value as seconds.
func Sec(ms float64) string { return fmt.Sprintf("%.1f", ms/1000) }

// SortedKeys returns sorted keys of an int-set (stable test output).
func SortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
