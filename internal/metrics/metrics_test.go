package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"vqpy/internal/sim"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Errorf("P/R/F1 = %v %v %v", c.Precision(), c.Recall(), c.F1())
	}
	if c.PositiveRate() != 0.5 {
		t.Errorf("positive rate = %v", c.PositiveRate())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.PositiveRate() != 0 {
		t.Error("empty confusion should be all zeros")
	}
	perfect := Confusion{TP: 10}
	if perfect.F1() != 1 {
		t.Errorf("perfect F1 = %v", perfect.F1())
	}
	allWrong := Confusion{FP: 5, FN: 5}
	if allWrong.F1() != 0 {
		t.Errorf("all-wrong F1 = %v", allWrong.F1())
	}
}

func TestCompareFrameSets(t *testing.T) {
	pred := map[int]bool{0: true, 2: true}
	truth := map[int]bool{0: true, 1: true}
	c := CompareFrameSets(pred, truth, 4)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestCompareMatched(t *testing.T) {
	c := CompareMatched([]bool{true, false, true}, map[int]bool{0: true, 1: true})
	if c.TP != 1 || c.FN != 1 || c.FP != 1 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestF1BoundsProperty(t *testing.T) {
	rng := sim.NewRNG(3)
	f := func() bool {
		c := Confusion{TP: rng.Intn(100), FP: rng.Intn(100), FN: rng.Intn(100), TN: rng.Intn(100)}
		f1 := c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		// F1 is between min and max of P and R.
		p, r := c.Precision(), c.Recall()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		Title:  "Test Table",
		Header: []string{"name", "value"},
	}
	r.AddRow("alpha", "1.0")
	r.AddRow("beta-long-name", "2.0")
	r.AddNote("a note with %d args", 2)
	s := r.String()
	for _, want := range []string{"Test Table", "alpha", "beta-long-name", "note: a note with 2 args", "-----"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	// Alignment: both value cells start at the same column.
	lines := strings.Split(s, "\n")
	var col []int
	for _, l := range lines {
		if idx := strings.Index(l, "1.0"); idx >= 0 {
			col = append(col, idx)
		}
		if idx := strings.Index(l, "2.0"); idx >= 0 {
			col = append(col, idx)
		}
	}
	if len(col) == 2 && col[0] != col[1] {
		t.Errorf("columns misaligned: %v", col)
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddRow("3", "4")
	want := "a,b\n1,2\n3,4\n"
	if got := r.CSV(); got != want {
		t.Errorf("CSV = %q", got)
	}
}

func TestReportCurves(t *testing.T) {
	r := &Report{Title: "t", Header: []string{"x"}}
	r.Curves = append(r.Curves, Series{Label: "s1", X: []float64{1, 2}, Y: []float64{3, 4}})
	if !strings.Contains(r.String(), "series s1: 2 points") {
		t.Error("curves not summarized")
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(100, 25) != "4.0x" {
		t.Errorf("Ratio = %q", Ratio(100, 25))
	}
	if Ratio(100, 0) != "inf" {
		t.Errorf("Ratio/0 = %q", Ratio(100, 0))
	}
	if Ms(12.34) != "12.3" {
		t.Errorf("Ms = %q", Ms(12.34))
	}
	if Sec(2500) != "2.5" {
		t.Errorf("Sec = %q", Sec(2500))
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[int]bool{3: true, 1: true, 2: true})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("SortedKeys = %v", got)
	}
}
