package metrics

// Prometheus text exposition (format version 0.0.4): the minimal
// writer behind vqserve's GET /metrics. The serving layer assembles
// Family values (typed, labeled samples) and WriteText renders them in
// the canonical shape scrapers parse:
//
//	# HELP vqserve_frames_fed_total Frames fed per source.
//	# TYPE vqserve_frames_fed_total counter
//	vqserve_frames_fed_total{source="cityflow"} 240
//
// Names are sanitized to the Prometheus grammar, label values are
// escaped, families and samples are emitted in sorted order so scrapes
// diff cleanly, and float values render in the shortest round-trip
// form. No client library — the format is small and the module stays
// dependency-free.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type header value for the text format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Key, Value string
}

// Sample is one measurement line of a family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one named metric with its type, help text and samples.
type Family struct {
	// Name is the metric name (sanitized on write); counters should
	// carry the _total suffix by convention.
	Name string
	// Help is the one-line # HELP text.
	Help string
	// Type is "counter" or "gauge".
	Type string
	// Samples are the family's measurement lines.
	Samples []Sample
}

// Counter builds a counter family.
func Counter(name, help string, samples ...Sample) Family {
	return Family{Name: name, Help: help, Type: "counter", Samples: samples}
}

// Gauge builds a gauge family.
func Gauge(name, help string, samples ...Sample) Family {
	return Family{Name: name, Help: help, Type: "gauge", Samples: samples}
}

// V builds an unlabeled sample.
func V(v float64) Sample { return Sample{Value: v} }

// LV builds a sample with one label.
func LV(key, value string, v float64) Sample {
	return Sample{Labels: []Label{{Key: key, Value: value}}, Value: v}
}

// SanitizeName maps an arbitrary string onto the Prometheus metric-
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every illegal rune becomes
// '_' and a leading digit is prefixed with '_'.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1e308 && v*2 == v:
		return "+Inf"
	case v < -1e308 && v*2 == v:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderSample builds one exposition line.
func renderSample(name string, s Sample) string {
	if len(s.Labels) == 0 {
		return name + " " + formatFloat(s.Value)
	}
	parts := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		parts[i] = SanitizeName(l.Key) + `="` + escapeLabel(l.Value) + `"`
	}
	return name + "{" + strings.Join(parts, ",") + "} " + formatFloat(s.Value)
}

// WriteText renders the families in the text exposition format.
// Families are sorted by name and each family's samples by their
// rendered label set, so the output is deterministic scrape to scrape;
// families without samples are skipped (a family only exists when it
// has been measured).
func WriteText(w io.Writer, fams []Family) error {
	sorted := make([]Family, len(fams))
	copy(sorted, fams)
	sort.SliceStable(sorted, func(i, j int) bool {
		return SanitizeName(sorted[i].Name) < SanitizeName(sorted[j].Name)
	})
	for _, f := range sorted {
		if len(f.Samples) == 0 {
			continue
		}
		name := SanitizeName(f.Name)
		typ := f.Type
		if typ != "counter" && typ != "gauge" {
			typ = "untyped"
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, strings.ReplaceAll(f.Help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		lines := make([]string, len(f.Samples))
		for i, s := range f.Samples {
			lines[i] = renderSample(name, s)
		}
		sort.Strings(lines)
		for _, line := range lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// CounterFamilies converts a Counters snapshot into counter families
// under the given namespace. Counter names follow the serving layer's
// "base:target" convention — the base becomes the family
// <ns>_<base>_total and the target a label. The label key is "tenant"
// for tenant_* counters and labelKey (usually "target") otherwise;
// untargeted counters emit one unlabeled sample.
func CounterFamilies(ns, labelKey string, snapshot map[string]int64) []Family {
	byBase := make(map[string]*Family)
	for name, v := range snapshot {
		base, target, _ := strings.Cut(name, ":")
		fam, ok := byBase[base]
		if !ok {
			fam = &Family{
				Name: ns + "_" + SanitizeName(base) + "_total",
				Help: "Event counter " + base + ".",
				Type: "counter",
			}
			byBase[base] = fam
		}
		s := V(float64(v))
		if target != "" {
			key := labelKey
			if strings.HasPrefix(base, "tenant_") {
				key = "tenant"
			}
			s = LV(key, target, float64(v))
		}
		fam.Samples = append(fam.Samples, s)
	}
	out := make([]Family, 0, len(byBase))
	for _, fam := range byBase {
		out = append(out, *fam)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
