package metrics

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

// promLine matches one sample line of the text exposition format —
// the same grammar the CI ops smoke asserts with awk.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (\+Inf|-Inf|NaN)$`)

func TestWriteTextFormat(t *testing.T) {
	fams := []Family{
		Gauge("vqserve_tenant_share", "Tenant QoS share.",
			LV("tenant", "gold", 3), LV("tenant", "free", 1)),
		Counter("vqserve_frames_fed_total", "Frames fed per source.",
			LV("source", "cityflow", 240)),
		Gauge("vqserve_up", "Daemon liveness.", V(1)),
	}
	var b strings.Builder
	if err := WriteText(&b, fams); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Families sorted by name, HELP before TYPE before samples.
	wantOrder := []string{
		"# HELP vqserve_frames_fed_total Frames fed per source.",
		"# TYPE vqserve_frames_fed_total counter",
		`vqserve_frames_fed_total{source="cityflow"} 240`,
		"# TYPE vqserve_tenant_share gauge",
		`vqserve_tenant_share{tenant="free"} 1`,
		`vqserve_tenant_share{tenant="gold"} 3`,
		"# TYPE vqserve_up gauge",
		"vqserve_up 1",
	}
	pos := -1
	for _, frag := range wantOrder {
		i := strings.Index(out, frag)
		if i < 0 {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
		if i < pos {
			t.Errorf("fragment %q out of order", frag)
		}
		pos = i
	}
	// Every non-comment line parses.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as a prometheus sample: %q", line)
		}
	}
}

func TestWriteTextSkipsEmptyFamilies(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, []Family{Gauge("vqserve_empty", "never measured")}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty family still rendered:\n%s", b.String())
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"frames_fed":      "frames_fed",
		"frames-fed.rate": "frames_fed_rate",
		"9lives":          "_9lives",
		"ok:colon":        "ok:colon",
		"":                "_",
		"héllo":           "h_llo",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	var b strings.Builder
	err := WriteText(&b, []Family{Gauge("m", "", Sample{
		Labels: []Label{{Key: "weird-key", Value: "a\"b\\c\nd"}},
		Value:  1,
	})})
	if err != nil {
		t.Fatal(err)
	}
	want := `m{weird_key="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped sample = %q, want to contain %q", b.String(), want)
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
		3:            "3",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

func TestCounterFamilies(t *testing.T) {
	c := NewCounters()
	c.Add("frames_fed:cityflow", 240)
	c.Add("frames_fed:retail", 60)
	c.Add("queries_attached", 3)
	c.Add("queries_attached:redcar", 2)
	c.Add("tenant_requests:gold", 7)

	fams := CounterFamilies("vqserve", "target", c.Snapshot())
	var b strings.Builder
	if err := WriteText(&b, fams); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		`vqserve_frames_fed_total{target="cityflow"} 240`,
		`vqserve_frames_fed_total{target="retail"} 60`,
		"\nvqserve_queries_attached_total 3\n",
		`vqserve_queries_attached_total{target="redcar"} 2`,
		`vqserve_tenant_requests_total{tenant="gold"} 7`,
		"# TYPE vqserve_frames_fed_total counter",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("CounterFamilies output missing %q:\n%s", frag, out)
		}
	}
}
