// Package mllm simulates the multimodal-LLM baseline of §5.3: VideoChat
// (Li et al., 2023) in its 7B and 13B variants.
//
// The simulator reproduces the three properties of the baseline that the
// paper's comparison rests on, without pretending to be a transformer:
//
//  1. Cost: a per-video precompute phase (load + embedding) plus, per
//     question, per-frame embedding work and per-token decoding, with the
//     13B variant in low-resource mode (8-bit weights, embeddings
//     partially offloaded to CPU) an order of magnitude slower.
//  2. Memory: GPU memory grows with clip length; a 40 GB A100 fits only
//     ~1 second of 1080p video, which is why the benchmark splits videos
//     into one-second clips exactly as the paper had to.
//  3. Accuracy: boolean answers are near-chance (calibrated sensitivity/
//     specificity), aggregation answers over-count wildly with occasional
//     hallucinated huge values, and a fraction of responses is unparseable
//     chatter that the pattern-based analyzer must drop.
//
// Answers are generated as natural-language text and parsed back with the
// same kind of pattern analyzer the paper describes, so the full
// answer-handling path is exercised.
package mllm

import (
	"fmt"
	"strings"

	"vqpy/internal/models"
	"vqpy/internal/sim"
	"vqpy/internal/video"
)

// Profile describes one VideoChat variant.
type Profile struct {
	Name string

	// PrecomputeMSPerFrame is charged once per video (load + initial
	// embedding); EmbedMSPerFrame per question per clip frame;
	// DecodeMSPerToken per generated token; FixedPerQuestionMS per
	// question (prompt processing); StillOverheadMS additionally for
	// single-image questions, whose path re-runs the full visual
	// encoder per image (the paper's Q6 is an order of magnitude more
	// expensive per frame than the video questions).
	PrecomputeMSPerFrame float64
	EmbedMSPerFrame      float64
	DecodeMSPerToken     float64
	FixedPerQuestionMS   float64
	StillOverheadMS      float64

	// BaseMemGB and MemGBPerFrame model GPU memory demand.
	BaseMemGB     float64
	MemGBPerFrame float64

	// Boolean answer quality.
	Sensitivity float64 // P(yes | truth yes)
	Specificity float64 // P(no | truth no)

	// Aggregation answer quality.
	CountBias        float64 // multiplicative over-counting
	CountNoise       float64 // additive gaussian stddev
	HallucinateRate  float64 // P(wildly large value)
	HallucinateScale float64 // magnitude of hallucinated values

	// UnclearRate is the fraction of unparseable responses.
	UnclearRate float64

	// LowResource marks 8-bit + CPU offload operation.
	LowResource bool
}

// VideoChat7B is the smaller variant (fits in 40 GB unquantized for
// short clips).
func VideoChat7B() Profile {
	return Profile{
		Name:                 "VideoChat-7B",
		PrecomputeMSPerFrame: 38.4,
		EmbedMSPerFrame:      42,
		DecodeMSPerToken:     11,
		FixedPerQuestionMS:   190,
		StillOverheadMS:      3000,
		BaseMemGB:            14, MemGBPerFrame: 0.048,
		Sensitivity: 0.45, Specificity: 0.62,
		CountBias: 1.9, CountNoise: 2.2,
		HallucinateRate: 0.04, HallucinateScale: 300,
		UnclearRate: 0.41,
	}
}

// VideoChat13B runs in low-resource mode (8-bit weights, embedding
// partially on CPU) because the full model plus intermediates exceeds
// 40 GB, matching the paper's setup.
func VideoChat13B() Profile {
	return Profile{
		Name:                 "VideoChat-13B*",
		PrecomputeMSPerFrame: 1071,
		EmbedMSPerFrame:      560,
		DecodeMSPerToken:     45,
		FixedPerQuestionMS:   1200,
		StillOverheadMS:      5800,
		BaseMemGB:            26, MemGBPerFrame: 0.048,
		Sensitivity: 0.44, Specificity: 0.66,
		CountBias: 1.45, CountNoise: 1.6,
		HallucinateRate: 0.025, HallucinateScale: 80,
		UnclearRate: 0.32,
		LowResource: true,
	}
}

// Model is one simulated MLLM instance.
type Model struct {
	P    Profile
	seed uint64
}

// New creates a model; the seed scopes its answer randomness.
func New(p Profile, seed uint64) *Model {
	return &Model{P: p, seed: seed}
}

// account returns the ledger account for this model.
func (m *Model) account() string { return "mllm:" + m.P.Name }

// MemoryGB returns the GPU memory needed for a clip of n frames.
func (m *Model) MemoryGB(frames int) float64 {
	return m.P.BaseMemGB + m.P.MemGBPerFrame*float64(frames)
}

// MaxClipFrames returns the longest clip that fits in gpuGB.
func (m *Model) MaxClipFrames(gpuGB float64) int {
	n := int((gpuGB - m.P.BaseMemGB) / m.P.MemGBPerFrame)
	if n < 1 {
		n = 1
	}
	return n
}

// Precompute charges the per-video load + embedding phase (Table 5's
// "Pre" row).
func (m *Model) Precompute(env *models.Env, v *video.Video) {
	env.Clock.Charge(m.account()+":pre", m.P.PrecomputeMSPerFrame*float64(len(v.Frames)))
}

func (m *Model) rngFor(clipStart int, question string) *sim.RNG {
	var h uint64 = m.seed
	for _, c := range question {
		h = h*1099511628211 + uint64(c)
	}
	return sim.NewRNG(h ^ (uint64(clipStart+1) * 0x9E3779B97F4A7C15))
}

// chargeQuestion books embedding + decoding cost for one question over
// one clip; single-image clips go through the more expensive still
// path.
func (m *Model) chargeQuestion(env *models.Env, clipFrames, answerTokens int) {
	cost := m.P.EmbedMSPerFrame*float64(clipFrames) +
		m.P.DecodeMSPerToken*float64(answerTokens) +
		m.P.FixedPerQuestionMS
	if clipFrames == 1 {
		cost += m.P.StillOverheadMS
	}
	env.Clock.Charge(m.account(), cost)
}

// AnswerBool produces a natural-language yes/no answer for a clip given
// the ground truth of the question on that clip.
func (m *Model) AnswerBool(env *models.Env, clip *video.Video, question string, truth bool) string {
	rng := m.rngFor(clip.Frames[0].Index, question)
	const answerTokens = 24
	m.chargeQuestion(env, len(clip.Frames), answerTokens)
	if rng.Bool(m.P.UnclearRate) {
		return unclearResponse(rng)
	}
	var yes bool
	if truth {
		yes = rng.Bool(m.P.Sensitivity)
	} else {
		yes = !rng.Bool(m.P.Specificity)
	}
	if yes {
		return sim.Pick(rng, []string{
			"Yes, there are. I can see them in the video.",
			"Yes. The video shows this happening near the crossing.",
			"Yes, it appears so based on the frames provided.",
		})
	}
	return sim.Pick(rng, []string{
		"No, I do not see that in this video.",
		"No. Nothing like that appears in the provided clip.",
		"No, there is no indication of that in the video.",
	})
}

// AnswerCount produces a natural-language numeric answer given the
// ground-truth count for the clip.
func (m *Model) AnswerCount(env *models.Env, clip *video.Video, question string, truth float64) string {
	rng := m.rngFor(clip.Frames[0].Index, question)
	const answerTokens = 36
	m.chargeQuestion(env, len(clip.Frames), answerTokens)
	if rng.Bool(m.P.UnclearRate) {
		return unclearResponse(rng)
	}
	if rng.Bool(m.P.HallucinateRate) {
		v := rng.Range(m.P.HallucinateScale/4, m.P.HallucinateScale*1.5)
		return fmt.Sprintf("There are approximately %.0f of them throughout the video.", v)
	}
	v := truth*m.P.CountBias + rng.Norm(0, m.P.CountNoise)
	if v < 0 {
		v = 0
	}
	return sim.Pick(rng, []string{
		fmt.Sprintf("I count about %.1f on average in the video.", v),
		fmt.Sprintf("The average number appears to be %.1f.", v),
		fmt.Sprintf("Roughly %.1f, based on what I can see.", v),
	})
}

// unclearResponse emulates the irrelevant chatter the paper shows in
// Figure 18 — responses the pattern analyzer cannot resolve.
func unclearResponse(rng *sim.RNG) string {
	return sim.Pick(rng, []string{
		"The video depicts a busy street scene with various elements of urban life.",
		"As an AI assistant I can describe the scene: it shows a road with buildings.",
		"The imagery suggests daytime traffic; could you clarify the timestamp you mean?",
		"I notice the video has multiple scenes; the lighting changes over time.",
	})
}

// ParseBoolResponse is the pattern-based analyzer for yes/no answers
// (§5.3: "We used a pattern-based analyzer to resolve most of the
// responses"). ok is false for unresolvable responses, which the
// evaluation drops as the paper did.
func ParseBoolResponse(s string) (val, ok bool) {
	t := strings.ToLower(s)
	switch {
	case strings.HasPrefix(t, "yes"):
		return true, true
	case strings.HasPrefix(t, "no"):
		return false, true
	case strings.Contains(t, "yes,") || strings.Contains(t, "yes."):
		return true, true
	case strings.Contains(t, "no,") || strings.Contains(t, "no."):
		return false, true
	}
	return false, false
}

// ParseCountResponse extracts a numeric answer; ok is false when no
// number can be found.
func ParseCountResponse(s string) (float64, bool) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return !(r >= '0' && r <= '9') && r != '.'
	})
	for _, f := range fields {
		var v float64
		if _, err := fmt.Sscanf(f, "%f", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}
