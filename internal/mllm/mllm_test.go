package mllm

import (
	"strings"
	"testing"

	"vqpy/internal/models"
	"vqpy/internal/video"
)

func testEnv() *models.Env {
	e := models.NewEnv(42)
	e.NoBurn = true
	return e
}

func clips(v *video.Video, clipFrames int) []*video.Video {
	var out []*video.Video
	for i := 0; i < len(v.Frames); i += clipFrames {
		out = append(out, v.Clip(i, i+clipFrames))
	}
	return out
}

func TestMemoryModel(t *testing.T) {
	m7 := New(VideoChat7B(), 1)
	// ~540 frames of 1080p should need ≈40 GB (the paper's number).
	mem := m7.MemoryGB(540)
	if mem < 38 || mem > 43 {
		t.Errorf("7B memory for 540 frames = %.1f GB, want ≈40", mem)
	}
	maxFrames := m7.MaxClipFrames(40)
	if maxFrames < 400 || maxFrames > 600 {
		t.Errorf("7B max frames at 40GB = %d", maxFrames)
	}
	m13 := New(VideoChat13B(), 1)
	if m13.MaxClipFrames(40) >= maxFrames {
		t.Error("13B should fit fewer frames than 7B")
	}
	if m13.MaxClipFrames(1) != 1 {
		t.Error("tiny GPU should clamp to 1 frame")
	}
}

func TestCostOrdering(t *testing.T) {
	v := video.Auburn(1, 10).Generate()
	clip := v.Clip(0, 15)
	env7, env13 := testEnv(), testEnv()
	m7 := New(VideoChat7B(), 1)
	m13 := New(VideoChat13B(), 1)
	m7.AnswerBool(env7, clip, "q1", true)
	m13.AnswerBool(env13, clip, "q1", true)
	if env13.Clock.TotalMS() <= env7.Clock.TotalMS() {
		t.Errorf("13B (%.0f ms) not slower than 7B (%.0f ms)", env13.Clock.TotalMS(), env7.Clock.TotalMS())
	}
	// Per-frame cost should be in the ballpark of Table 5 (72 ms/frame
	// for 7B booleans, 563-656 for 13B low-resource).
	perFrame7 := env7.Clock.TotalMS() / float64(len(clip.Frames))
	if perFrame7 < 40 || perFrame7 > 150 {
		t.Errorf("7B per-frame = %.1f ms, want ≈72", perFrame7)
	}
	perFrame13 := env13.Clock.TotalMS() / float64(len(clip.Frames))
	if perFrame13 < 400 || perFrame13 > 1000 {
		t.Errorf("13B per-frame = %.1f ms, want ≈600", perFrame13)
	}
}

func TestPrecomputeCharged(t *testing.T) {
	v := video.Auburn(2, 10).Generate()
	env := testEnv()
	m := New(VideoChat7B(), 1)
	m.Precompute(env, v)
	if env.Clock.TotalMS() == 0 {
		t.Error("precompute free")
	}
}

func TestBooleanAnswerCalibration(t *testing.T) {
	v := video.Auburn(3, 60).Generate()
	env := testEnv()
	m := New(VideoChat7B(), 7)
	cs := clips(v, 15)
	yesOnTrue, trueN := 0, 0
	yesOnFalse, falseN := 0, 0
	dropped := 0
	for i, c := range cs {
		truth := i%2 == 0
		resp := m.AnswerBool(env, c, "are there people?", truth)
		val, ok := ParseBoolResponse(resp)
		if !ok {
			dropped++
			continue
		}
		if truth {
			trueN++
			if val {
				yesOnTrue++
			}
		} else {
			falseN++
			if val {
				yesOnFalse++
			}
		}
	}
	if dropped == 0 {
		t.Error("no unclear responses generated")
	}
	if trueN == 0 || falseN == 0 {
		t.Skip("not enough clips")
	}
	sens := float64(yesOnTrue) / float64(trueN)
	if sens > 0.8 {
		t.Errorf("sensitivity %.2f too good for a near-chance baseline", sens)
	}
}

func TestAnswersDeterministic(t *testing.T) {
	v := video.Auburn(4, 10).Generate()
	clip := v.Clip(0, 15)
	m1 := New(VideoChat7B(), 9)
	m2 := New(VideoChat7B(), 9)
	a := m1.AnswerBool(testEnv(), clip, "q", true)
	b := m2.AnswerBool(testEnv(), clip, "q", true)
	if a != b {
		t.Errorf("same-seed answers differ: %q vs %q", a, b)
	}
	c := New(VideoChat7B(), 10).AnswerBool(testEnv(), clip, "q", true)
	_ = c // different seeds may coincide; no assertion
}

func TestCountAnswersOvercount(t *testing.T) {
	v := video.Auburn(5, 120).Generate()
	env := testEnv()
	m := New(VideoChat7B(), 11)
	cs := clips(v, 15)
	sum, n := 0.0, 0
	maxV := 0.0
	truth := 2.0
	for _, c := range cs {
		resp := m.AnswerCount(env, c, "how many cars?", truth)
		if v, ok := ParseCountResponse(resp); ok {
			sum += v
			n++
			if v > maxV {
				maxV = v
			}
		}
	}
	if n == 0 {
		t.Fatal("all answers unparseable")
	}
	avg := sum / float64(n)
	if avg <= truth {
		t.Errorf("average %.2f does not over-count truth %.1f", avg, truth)
	}
	if maxV <= truth*3 {
		t.Logf("no hallucinated outlier observed (max %.1f)", maxV)
	}
}

func TestParseBoolResponse(t *testing.T) {
	cases := []struct {
		in      string
		val, ok bool
	}{
		{"Yes, there are people.", true, true},
		{"No. Nothing there.", false, true},
		{"I think yes. maybe", true, true},
		{"The video depicts a busy street.", false, false},
		{"YES", true, true},
	}
	for _, c := range cases {
		v, ok := ParseBoolResponse(c.in)
		if ok != c.ok || (ok && v != c.val) {
			t.Errorf("ParseBoolResponse(%q) = %v,%v", c.in, v, ok)
		}
	}
}

func TestParseCountResponse(t *testing.T) {
	v, ok := ParseCountResponse("I count about 6.5 on average.")
	if !ok || v != 6.5 {
		t.Errorf("parse = %v, %v", v, ok)
	}
	if _, ok := ParseCountResponse("no numbers here"); ok {
		t.Error("parsed a number from chatter")
	}
	v, ok = ParseCountResponse("There are approximately 250 of them.")
	if !ok || v != 250 {
		t.Errorf("parse = %v, %v", v, ok)
	}
}

func TestUnclearResponsesUnparseable(t *testing.T) {
	// Every canned unclear response must defeat both parsers (they
	// contain no leading yes/no and no digits).
	rngSeeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, s := range rngSeeds {
		m := New(VideoChat7B(), s)
		_ = m
	}
	responses := []string{
		"The video depicts a busy street scene with various elements of urban life.",
		"As an AI assistant I can describe the scene: it shows a road with buildings.",
		"I notice the video has multiple scenes; the lighting changes over time.",
	}
	for _, r := range responses {
		if _, ok := ParseBoolResponse(r); ok {
			t.Errorf("unclear response parsed as bool: %q", r)
		}
		if _, ok := ParseCountResponse(r); ok && !strings.ContainsAny(r, "0123456789") {
			t.Errorf("unclear response parsed as count: %q", r)
		}
	}
}
