package models

// Unit suite for the fidelity tiers of the model zoo (DESIGN.md §12):
// the built-in lattice shape, the tier detectors' registration and
// cost ordering, and the resolution visibility gate that makes a
// reduced-resolution detector blind to small objects.

import (
	"testing"

	"vqpy/internal/video"
)

func TestFidelityLatticeShape(t *testing.T) {
	lattice := FidelityLattice("yolov8m")
	if len(lattice) != 5 {
		t.Fatalf("lattice has %d entries, want 5: %+v", len(lattice), lattice)
	}
	head := lattice[0]
	if head.NormStride() != 1 || head.Res != video.ResFull || head.Detector != "yolov8m" {
		t.Fatalf("lattice head is not full fidelity: %+v", head)
	}
	seen := make(map[string]bool, len(lattice))
	prevCost := 0.0
	for i, fid := range lattice {
		if seen[fid.Key()] {
			t.Fatalf("duplicate lattice key %s", fid.Key())
		}
		seen[fid.Key()] = true
		p, ok := ProfileOf(fid.Detector)
		if !ok {
			t.Fatalf("lattice tier %s names unregistered detector %q", fid.Key(), fid.Detector)
		}
		// Per-aligned-frame model cost must not increase as the lattice
		// coarsens (the stride reduction is on top of it).
		if i > 0 && p.CostMS > prevCost {
			t.Errorf("tier %s costs %.1fms, more than the finer tier's %.1fms", fid.Key(), p.CostMS, prevCost)
		}
		prevCost = p.CostMS
		if p.Res != fid.Res {
			t.Errorf("tier %s: profile res %v != lattice res %v", fid.Key(), p.Res, fid.Res)
		}
	}
}

func TestTierDetectorVisibilityGate(t *testing.T) {
	// A person-heavy clip: persons (26x64) survive half resolution but
	// vanish at quarter; the gate must drop them before any roll of the
	// detector's recall dice.
	v := video.Retail(42, 20).Generate()
	env := testEnv()
	half := &SimDetector{P: mustProfile(t, "yolov5s@half")}
	quarter := &SimDetector{P: mustProfile(t, "yolov5s@quarter")}
	halfPersons, quarterPersons := 0, 0
	for i := range v.Frames {
		for _, d := range half.Detect(env, &v.Frames[i]) {
			if d.Class == video.ClassPerson {
				halfPersons++
			}
		}
		for _, d := range quarter.Detect(env, &v.Frames[i]) {
			if d.Class == video.ClassPerson {
				quarterPersons++
			}
		}
	}
	if halfPersons == 0 {
		t.Fatal("half-resolution tier saw no persons on a person-heavy clip")
	}
	if quarterPersons != 0 {
		t.Fatalf("quarter-resolution tier reported %d persons; the visibility gate must hide them", quarterPersons)
	}
}
