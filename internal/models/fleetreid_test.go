package models

import (
	"testing"

	"vqpy/internal/video"
)

// fleetClipFrames builds two tiny frames standing in for two cameras:
// the same entity (shared FeatureID) under different per-camera track
// ids, plus a distinct entity.
func fleetClipFrames() (*video.Frame, *video.Frame) {
	a := &video.Frame{Index: 3, W: 640, H: 480, Objects: []video.Object{
		{TrackID: 1, Class: video.ClassCar, FeatureID: 5001},
		{TrackID: 2, Class: video.ClassCar, FeatureID: 6002},
	}}
	b := &video.Frame{Index: 9, W: 640, H: 480, Objects: []video.Object{
		{TrackID: 7, Class: video.ClassCar, FeatureID: 5001},
	}}
	return a, b
}

// TestGlobalReIDEmbedderSeparation checks the property the fleet re-ID
// registry depends on: same entity across cameras → high cosine
// similarity, distinct entities → low.
func TestGlobalReIDEmbedderSeparation(t *testing.T) {
	env := NewEnv(42)
	env.NoBurn = true
	reg := BuiltinRegistry()
	m, ok := reg.Get("fleet_reid")
	if !ok {
		t.Fatal("fleet_reid not in builtin registry")
	}
	emb, ok := m.(Embedder)
	if !ok {
		t.Fatal("fleet_reid is not an embedder")
	}
	a, b := fleetClipFrames()
	same1 := emb.Embed(env, a, a.Objects[0].Box, 1)
	same2 := emb.Embed(env, b, b.Objects[0].Box, 7)
	other := emb.Embed(env, a, a.Objects[1].Box, 2)
	if s := Cosine(same1, same2); s < 0.8 {
		t.Fatalf("same entity across cameras: cosine %.3f, want >= 0.8", s)
	}
	if s := Cosine(same1, other); s > 0.6 {
		t.Fatalf("distinct entities: cosine %.3f, want <= 0.6", s)
	}
	if env.Clock.Invocations("fleet_reid") != 3 {
		t.Fatalf("embedder invocations = %d, want 3", env.Clock.Invocations("fleet_reid"))
	}
	if env.Clock.Account("fleet_reid") <= 0 {
		t.Fatal("fleet_reid charged no virtual time")
	}
}

// captureInterceptor records intercepted charges without booking them.
type captureInterceptor struct {
	on       bool
	accounts []string
	ms       []float64
}

// Intercept implements ChargeInterceptor.
func (c *captureInterceptor) Intercept(_ *Env, account string, ms float64) bool {
	if !c.on {
		return false
	}
	c.accounts = append(c.accounts, account)
	c.ms = append(c.ms, ms)
	return true
}

// TestChargeInterceptor pins the interceptor contract: an active
// interceptor owns the charge (nothing reaches the clock), an inactive
// one lets it flow, and ChargeBypass always books directly.
func TestChargeInterceptor(t *testing.T) {
	env := NewEnv(1)
	env.NoBurn = true
	ic := &captureInterceptor{}
	env.Interceptor = ic

	env.charge("yolox", 28)
	if env.Clock.TotalMS() != 28 {
		t.Fatalf("inactive interceptor: total %.1f, want 28", env.Clock.TotalMS())
	}

	ic.on = true
	env.charge("yolox", 28)
	if env.Clock.TotalMS() != 28 {
		t.Fatalf("active interceptor must own the charge, total %.1f", env.Clock.TotalMS())
	}
	if len(ic.accounts) != 1 || ic.accounts[0] != "yolox" || ic.ms[0] != 28 {
		t.Fatalf("interceptor saw %v %v", ic.accounts, ic.ms)
	}

	env.ChargeBypass("yolox", 14)
	if env.Clock.TotalMS() != 42 {
		t.Fatalf("ChargeBypass must skip the interceptor, total %.1f", env.Clock.TotalMS())
	}
	if env.Clock.Invocations("yolox") != 2 {
		t.Fatalf("yolox invocations = %d, want 2", env.Clock.Invocations("yolox"))
	}
}

// TestGlobalReIDEmbedderFalsePositiveEmbedsNil pins the phantom-identity
// guard: a crop with no ground-truth object behind it (a detector false
// positive) must embed to nil — a shared fallback vector would fuse
// unrelated false positives across cameras into one bogus cross-camera
// entity.
func TestGlobalReIDEmbedderFalsePositiveEmbedsNil(t *testing.T) {
	env := NewEnv(42)
	env.NoBurn = true
	m, _ := BuiltinRegistry().Get("fleet_reid")
	emb := m.(Embedder)
	a, _ := fleetClipFrames()
	if v := emb.Embed(env, a, a.Objects[0].Box, -1); v != nil {
		t.Fatalf("false positive embedded to %v, want nil", v)
	}
	if v := emb.Embed(env, a, a.Objects[0].Box, 999); v != nil {
		t.Fatalf("unknown truth id embedded to %v, want nil", v)
	}
	if env.Clock.Invocations("fleet_reid") != 2 {
		t.Fatal("embedder must still charge for the attempted crops")
	}
}
