// Package models provides the simulated model zoo that stands in for the
// paper's pretrained vision models (YOLOX, YOLOv5/v8, color and type
// classifiers, ReID embedders, the UPT human-object-interaction model,
// license-plate OCR, and cheap binary classifiers).
//
// Each model has a Profile with a calibrated virtual cost (charged to a
// sim.Clock and mirrored by proportional real CPU work, so wall-clock
// benchmarks preserve the paper's relative shape) and a noise model
// (misses, false positives, box jitter, misclassification) that converts
// ground truth into realistic imperfect outputs. All noise is drawn from
// generators seeded by (experiment seed, model name, frame index, object
// id), so outputs are deterministic and idempotent: calling a model twice
// on the same frame yields identical results, which mirrors how a real
// model is a pure function of its input.
package models

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"vqpy/internal/geom"
	"vqpy/internal/sim"
	"vqpy/internal/video"
)

// Task classifies what a model does; the planner uses it to slot models
// into the right operator kind.
type Task int

// Task values.
const (
	TaskDetect Task = iota
	TaskClassify
	TaskEmbed
	TaskHOI
	TaskOCR
	TaskBinary
)

var taskNames = [...]string{"detect", "classify", "embed", "hoi", "ocr", "binary"}

// String implements fmt.Stringer.
func (t Task) String() string {
	if t < 0 || int(t) >= len(taskNames) {
		return "invalid"
	}
	return taskNames[t]
}

// Profile describes a model's cost and error characteristics. Costs are
// virtual milliseconds calibrated loosely to the paper's NVIDIA T4
// testbed; see DESIGN.md §2.
type Profile struct {
	Name string
	Task Task

	// CostMS is charged once per invocation (per frame for detectors
	// and frame-level filters); CostPerObjMS is charged per input
	// object (per crop for classifiers).
	CostMS       float64
	CostPerObjMS float64

	// Classes restricts a detector to the listed classes; empty means
	// all classes.
	Classes []video.Class

	// Detection noise.
	MissRate float64 // probability a true object is not detected
	FPRate   float64 // expected false positives per frame
	JitterPx float64 // bbox corner noise stddev

	// Classification noise.
	MisclassRate float64

	// ColorFilter restricts a specialized detector to objects of one
	// color (e.g. the "my_red_car" specialized NN of Figure 11).
	ColorFilter video.Color

	// Res is the resolution tier the detector's input is decoded at
	// (DESIGN.md §12). The zero value is video.ResFull, so every
	// pre-fidelity profile is unchanged; lower tiers make objects below
	// the tier's visibility floor undetectable, which is what buys the
	// reduced-resolution cost savings their accuracy discount.
	Res video.ResTier
}

// Env carries the per-experiment context every model shares: the virtual
// clock to charge, the seed from which all noise derives, and how virtual
// cost maps onto real time (CPU burn, accelerator-style waiting, or
// nothing).
type Env struct {
	Clock *sim.Clock
	Seed  uint64
	// NoBurn disables the proportional CPU work; unit tests set it to
	// keep suites fast. Benchmarks leave it false.
	NoBurn bool
	// OffloadNSPerMS, when > 0, models inference offloaded to an
	// accelerator: instead of spinning the CPU, each charge sleeps
	// OffloadNSPerMS nanoseconds per virtual millisecond. Goroutines of
	// concurrent queries overlap these waits, so multi-query wall-clock
	// benchmarks behave like a real serving system where the CPU-side
	// executor blocks on device inference. Takes precedence over the
	// burn loop; NoBurn still disables both.
	OffloadNSPerMS float64
	// Interceptor, when set, gets the first look at every model charge.
	// A batch scheduler uses it to defer same-tick detector invocations
	// from several sources and re-charge them at an amortized batched
	// cost (exec.BatchScheduler); outside a tick the interceptor
	// declines and charges flow through unchanged.
	Interceptor ChargeInterceptor
}

// ChargeInterceptor intercepts model charges before they reach the
// clock. Intercept returns true when it has taken ownership of the
// charge (it will book it later through ChargeBypass) and false to let
// the normal charging path proceed.
type ChargeInterceptor interface {
	// Intercept observes one charge of ms virtual milliseconds against
	// account on env.
	Intercept(env *Env, account string, ms float64) bool
}

// NewEnv returns an Env with a fresh clock.
func NewEnv(seed uint64) *Env {
	return &Env{Clock: sim.NewClock(), Seed: seed}
}

// Fork returns an Env sharing this Env's seed and real-time behaviour
// but charging a fresh, empty clock. Parallel query workers each run
// against a fork so their virtual-time ledgers stay independent; callers
// merge the forked clocks back afterwards (sim.Clock.Merge). The charge
// interceptor is deliberately not inherited: batch ticks are scoped to
// the fleet engine's lockstep loop, not to parallel workers.
func (e *Env) Fork() *Env {
	return &Env{
		Clock:          sim.NewClock(),
		Seed:           e.Seed,
		NoBurn:         e.NoBurn,
		OffloadNSPerMS: e.OffloadNSPerMS,
	}
}

// charge books virtual time and performs proportional real work,
// offering the charge to the interceptor first (batched inference).
func (e *Env) charge(account string, ms float64) {
	if e.Interceptor != nil && e.Interceptor.Intercept(e, account, ms) {
		return
	}
	e.ChargeBypass(account, ms)
}

// ChargeBypass books virtual time and performs proportional real work
// without consulting the interceptor. It is the flush path of batch
// schedulers, which re-charge deferred invocations at their amortized
// cost; everything else should go through the models' own charging.
func (e *Env) ChargeBypass(account string, ms float64) {
	if e.Clock != nil {
		e.Clock.Charge(account, ms)
	}
	e.SimulateWork(ms)
}

// ChargeClockOnly books virtual time against the clock without the
// real-time mirror. A batch scheduler books each batch member's
// amortized share this way and then simulates the single coalesced
// device call once through SimulateWork — K clock entries, one real
// wait, which is exactly what a batched invocation is.
func (e *Env) ChargeClockOnly(account string, ms float64) {
	if e.Clock != nil {
		e.Clock.Charge(account, ms)
	}
}

// SimulateWork performs the real-time mirror of ms virtual milliseconds
// — proportional CPU burn, or an offload sleep when the env models
// accelerator inference — without booking anything on the clock.
func (e *Env) SimulateWork(ms float64) {
	if e.NoBurn {
		return
	}
	if e.OffloadNSPerMS > 0 {
		time.Sleep(time.Duration(ms * e.OffloadNSPerMS))
		return
	}
	sim.Burn(ms)
}

// Cloner is implemented by models that carry per-stream mutable state
// (e.g. the differencing frame filter's reference raster) and therefore
// must not be shared between concurrent query streams. The executor
// clones one fresh instance per stream instead of using the registry
// instance directly.
type Cloner interface {
	// CloneModel returns a fresh instance with the same configuration
	// and no accumulated state.
	CloneModel() any
}

// hash combines identifying integers into an RNG seed (FNV-1a over the
// words).
func hash(parts ...uint64) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xFF
			h *= 0x100000001b3
		}
	}
	return h
}

func strHash(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Detection is a detector output: a box, class label and confidence.
// TruthID links back to the generating ground-truth track; it exists so
// that evaluation code can score queries against ground truth and MUST
// NOT be used by query logic (the engine's tracker assigns its own IDs).
type Detection struct {
	Box     geom.BBox
	Class   video.Class
	Score   float64
	TruthID int
}

// Detector is the frame-level object detection interface.
type Detector interface {
	Name() string
	Detect(env *Env, f *video.Frame) []Detection
}

// Classifier predicts a categorical property for one object crop.
type Classifier interface {
	Name() string
	// Classify returns a label for the crop of f at box. raster may be
	// nil, in which case the frame is rendered on demand; callers
	// processing many crops should render once and pass it in.
	Classify(env *Env, f *video.Frame, raster *video.Raster, box geom.BBox, truthID int) string
}

// Embedder produces a feature vector for one object crop (ReID).
type Embedder interface {
	Name() string
	Embed(env *Env, f *video.Frame, box geom.BBox, truthID int) []float64
}

// HOIPair is one detected human-object interaction.
type HOIPair struct {
	PersonBox geom.BBox
	ObjectBox geom.BBox
	Verb      string
	Score     float64
	// TruthIDs of the participants, for evaluation only.
	PersonTruthID, ObjectTruthID int
}

// HOIModel detects human-object interactions on a frame (the paper's
// UPT).
type HOIModel interface {
	Name() string
	DetectInteractions(env *Env, f *video.Frame) []HOIPair
}

// BinaryFilter is a cheap frame-level yes/no model used as a frame
// filter (the paper's binary classifiers and differencing filters).
type BinaryFilter interface {
	Name() string
	// Keep reports whether the frame may be relevant and should be
	// processed further.
	Keep(env *Env, f *video.Frame) bool
}

// OCRModel reads a license plate from a crop.
type OCRModel interface {
	Name() string
	ReadPlate(env *Env, f *video.Frame, box geom.BBox, truthID int) string
}

// Registry maps model names to instances, mirroring the paper's library
// model zoo plus user registrations (Figure 11's register call).
type Registry struct {
	mu     sync.RWMutex
	models map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]any)}
}

// Register adds or replaces a model under the given name.
func (r *Registry) Register(name string, model any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[name] = model
}

// Get returns the model registered under name.
func (r *Registry) Get(name string) (any, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Detector returns the named model if it is a Detector.
func (r *Registry) Detector(name string) (Detector, error) {
	m, ok := r.Get(name)
	if !ok {
		return nil, fmt.Errorf("models: no model %q", name)
	}
	d, ok := m.(Detector)
	if !ok {
		return nil, fmt.Errorf("models: %q is not a detector", name)
	}
	return d, nil
}

// Classifier returns the named model if it is a Classifier.
func (r *Registry) Classifier(name string) (Classifier, error) {
	m, ok := r.Get(name)
	if !ok {
		return nil, fmt.Errorf("models: no model %q", name)
	}
	c, ok := m.(Classifier)
	if !ok {
		return nil, fmt.Errorf("models: %q is not a classifier", name)
	}
	return c, nil
}

// Names returns all registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.models))
	for k := range r.models {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// clampScore keeps detector confidences in (0, 1].
func clampScore(s float64) float64 {
	if s > 1 {
		return 1
	}
	if s < 0.05 {
		return 0.05
	}
	return s
}

// jitterBox perturbs box corners with gaussian noise of the given
// stddev, clamped to the frame.
func jitterBox(rng *sim.RNG, b geom.BBox, std float64, w, h int) geom.BBox {
	if std <= 0 {
		return b
	}
	j := geom.BBox{
		X1: b.X1 + rng.Norm(0, std), Y1: b.Y1 + rng.Norm(0, std),
		X2: b.X2 + rng.Norm(0, std), Y2: b.Y2 + rng.Norm(0, std),
	}
	if j.X2 < j.X1 {
		j.X1, j.X2 = j.X2, j.X1
	}
	if j.Y2 < j.Y1 {
		j.Y1, j.Y2 = j.Y2, j.Y1
	}
	return j.Clamp(float64(w), float64(h))
}

// featureVec derives a deterministic unit vector from a feature id; two
// crops of the same ground-truth person yield nearby vectors, distinct
// persons yield near-orthogonal ones.
func featureVec(featureID int, rng *sim.RNG, noise float64) []float64 {
	const dim = 16
	base := sim.NewRNG(hash(uint64(featureID), 0x5EED))
	v := make([]float64, dim)
	norm := 0.0
	for i := range v {
		v[i] = base.Norm(0, 1) + rng.Norm(0, noise)
		norm += v[i] * v[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		v[0] = 1
		return v
	}
	for i := range v {
		v[i] /= norm
	}
	return v
}

// Cosine returns the cosine similarity of two equal-length vectors.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
