package models

import (
	"math"
	"testing"

	"vqpy/internal/geom"
	"vqpy/internal/video"
)

func testEnv() *Env {
	e := NewEnv(42)
	e.NoBurn = true
	return e
}

func genVideo() *video.Video {
	return video.CityFlow(42, 30).Generate()
}

func firstBusyFrame(v *video.Video, min int) *video.Frame {
	for i := range v.Frames {
		if len(v.Frames[i].Objects) >= min {
			return &v.Frames[i]
		}
	}
	return &v.Frames[len(v.Frames)-1]
}

func TestRegistry(t *testing.T) {
	r := BuiltinRegistry()
	names := r.Names()
	if len(names) < 15 {
		t.Fatalf("builtin registry has only %d models", len(names))
	}
	if _, err := r.Detector("yolox"); err != nil {
		t.Errorf("yolox: %v", err)
	}
	if _, err := r.Detector("color_detect"); err == nil {
		t.Error("color_detect should not be a detector")
	}
	if _, err := r.Classifier("color_detect"); err != nil {
		t.Errorf("color_detect classifier: %v", err)
	}
	if _, err := r.Detector("missing_model"); err == nil {
		t.Error("missing model lookup should fail")
	}
	r.Register("custom", &SimDetector{P: Profile{Name: "custom", Task: TaskDetect}})
	if _, err := r.Detector("custom"); err != nil {
		t.Errorf("custom registration: %v", err)
	}
}

func TestDetectorDeterministicAndIdempotent(t *testing.T) {
	v := genVideo()
	f := firstBusyFrame(v, 3)
	env := testEnv()
	d := &SimDetector{P: mustProfile(t, "yolox")}
	a := d.Detect(env, f)
	b := d.Detect(env, f)
	if len(a) != len(b) {
		t.Fatalf("non-idempotent: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-idempotent detection %d", i)
		}
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ProfileOf(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	return p
}

func TestDetectorRecall(t *testing.T) {
	v := genVideo()
	env := testEnv()
	d := &SimDetector{P: mustProfile(t, "yolox")}
	gt, found := 0, 0
	for i := range v.Frames {
		f := &v.Frames[i]
		dets := d.Detect(env, f)
		byTruth := map[int]bool{}
		for _, det := range dets {
			if det.TruthID >= 0 {
				byTruth[det.TruthID] = true
			}
		}
		for _, o := range f.Objects {
			if o.Class == video.ClassUnknown {
				continue
			}
			gt++
			if byTruth[o.TrackID] {
				found++
			}
		}
	}
	if gt == 0 {
		t.Skip("no objects")
	}
	recall := float64(found) / float64(gt)
	if recall < 0.9 {
		t.Errorf("yolox recall = %.3f, want >= 0.9", recall)
	}
}

func TestDetectorClassRestriction(t *testing.T) {
	v := video.Auburn(3, 60).Generate()
	env := testEnv()
	d := &SimDetector{P: mustProfile(t, "person_detector")}
	for i := range v.Frames {
		for _, det := range d.Detect(env, &v.Frames[i]) {
			if det.Class != video.ClassPerson {
				t.Fatalf("person_detector emitted class %v", det.Class)
			}
		}
	}
}

func TestSpecializedDetectorColorGate(t *testing.T) {
	v := genVideo()
	env := testEnv()
	d := &SimDetector{P: mustProfile(t, "red_car_specialized")}
	wrongColor := 0
	total := 0
	for i := range v.Frames {
		f := &v.Frames[i]
		truthColor := map[int]video.Color{}
		for _, o := range f.Objects {
			truthColor[o.TrackID] = o.Color
		}
		for _, det := range d.Detect(env, f) {
			if det.TruthID < 0 {
				continue
			}
			total++
			if truthColor[det.TruthID] != video.ColorRed {
				wrongColor++
			}
		}
	}
	if total == 0 {
		t.Skip("no detections")
	}
	if frac := float64(wrongColor) / float64(total); frac > 0.05 {
		t.Errorf("specialized detector fired on wrong colors %.2f of the time", frac)
	}
}

func TestDetectorChargesClock(t *testing.T) {
	v := genVideo()
	env := testEnv()
	d := &SimDetector{P: mustProfile(t, "yolox")}
	d.Detect(env, &v.Frames[0])
	if env.Clock.Account("yolox") < 28 {
		t.Errorf("yolox charge = %v", env.Clock.Account("yolox"))
	}
}

func TestColorClassifierHonestCompute(t *testing.T) {
	v := genVideo()
	env := testEnv()
	c := &ColorClassifier{P: mustProfile(t, "color_detect")}
	correct, total := 0, 0
	for i := 0; i < len(v.Frames) && total < 300; i++ {
		f := &v.Frames[i]
		raster := f.Render()
		for _, o := range f.Objects {
			if !o.IsVehicle() {
				continue
			}
			got := c.Classify(env, f, raster, o.Box, o.TrackID)
			total++
			if got == o.Color.String() {
				correct++
			}
		}
	}
	if total == 0 {
		t.Skip("no vehicles")
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("color accuracy = %.3f", acc)
	}
}

func TestColorClassifierNilRaster(t *testing.T) {
	v := genVideo()
	f := firstBusyFrame(v, 1)
	env := testEnv()
	c := &ColorClassifier{P: mustProfile(t, "color_detect")}
	o := f.Objects[0]
	if got := c.Classify(env, f, nil, o.Box, o.TrackID); got == "" {
		t.Error("nil-raster Classify returned empty label")
	}
}

func TestKindAndDirectionClassifiers(t *testing.T) {
	v := genVideo()
	env := testEnv()
	kc := &KindClassifier{P: mustProfile(t, "type_detect")}
	dc := &DirectionClassifier{P: mustProfile(t, "direction_model")}
	kOK, dOK, total := 0, 0, 0
	for i := 0; i < len(v.Frames) && total < 300; i++ {
		f := &v.Frames[i]
		for _, o := range f.Objects {
			if !o.IsVehicle() {
				continue
			}
			total++
			if kc.Classify(env, f, nil, o.Box, o.TrackID) == o.Kind.String() {
				kOK++
			}
			if dc.Classify(env, f, nil, o.Box, o.TrackID) == o.Dir.String() {
				dOK++
			}
		}
	}
	if total == 0 {
		t.Skip("no vehicles")
	}
	if acc := float64(kOK) / float64(total); acc < 0.85 {
		t.Errorf("kind accuracy = %.3f", acc)
	}
	if acc := float64(dOK) / float64(total); acc < 0.85 {
		t.Errorf("direction accuracy = %.3f", acc)
	}
}

func TestReIDSeparation(t *testing.T) {
	v := video.Pickup(4, 60).Generate()
	env := testEnv()
	e := &ReIDEmbedder{P: mustProfile(t, "reid")}
	// Collect two embeddings of the same person on different frames and
	// one of a different person.
	type obs struct {
		vec []float64
		id  int
	}
	var suspect []obs
	var others []obs
	for i := range v.Frames {
		f := &v.Frames[i]
		for _, o := range f.Objects {
			if o.Class != video.ClassPerson {
				continue
			}
			vec := e.Embed(env, f, o.Box, o.TrackID)
			if o.Suspect && len(suspect) < 5 {
				suspect = append(suspect, obs{vec, o.TrackID})
			} else if !o.Suspect && len(others) < 5 {
				others = append(others, obs{vec, o.TrackID})
			}
		}
	}
	if len(suspect) < 2 || len(others) < 1 {
		t.Skip("not enough persons")
	}
	same := Cosine(suspect[0].vec, suspect[1].vec)
	diff := Cosine(suspect[0].vec, others[0].vec)
	if same < 0.8 {
		t.Errorf("same-person similarity = %.3f", same)
	}
	if diff > 0.5 {
		t.Errorf("cross-person similarity = %.3f", diff)
	}
}

func TestCosineEdgeCases(t *testing.T) {
	if Cosine(nil, nil) != 0 {
		t.Error("nil cosine != 0")
	}
	if Cosine([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("length-mismatch cosine != 0")
	}
	if Cosine([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Error("zero-vector cosine != 0")
	}
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("unit cosine = %v", got)
	}
}

func TestUPTFindsHits(t *testing.T) {
	v := video.VCOCO(5, 300).Generate()
	env := testEnv()
	m := &UPTModel{P: mustProfile(t, "upt")}
	tp, fp, fn := 0, 0, 0
	for i := range v.Frames {
		f := &v.Frames[i]
		pairs := m.DetectInteractions(env, f)
		truth := false
		for _, o := range f.Objects {
			if o.HittingBall {
				truth = true
			}
		}
		got := len(pairs) > 0
		switch {
		case got && truth:
			tp++
		case got && !truth:
			fp++
		case !got && truth:
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("UPT found no true interactions")
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	f1 := 2 * prec * rec / (prec + rec)
	if f1 < 0.6 {
		t.Errorf("UPT F1 = %.3f (p=%.2f r=%.2f)", f1, prec, rec)
	}
}

func TestPlateOCR(t *testing.T) {
	v := genVideo()
	env := testEnv()
	m := &PlateOCR{P: mustProfile(t, "plate_ocr")}
	checked, exact := 0, 0
	for i := 0; i < len(v.Frames) && checked < 100; i++ {
		f := &v.Frames[i]
		for _, o := range f.Objects {
			if !o.IsVehicle() || o.Plate == "" {
				continue
			}
			got := m.ReadPlate(env, f, o.Box, o.TrackID)
			if len(got) != len(o.Plate) {
				t.Fatalf("plate length changed: %q -> %q", o.Plate, got)
			}
			checked++
			if got == o.Plate {
				exact++
			}
		}
	}
	if checked == 0 {
		t.Skip("no plates")
	}
	if acc := float64(exact) / float64(checked); acc < 0.75 {
		t.Errorf("plate exact-match rate = %.3f", acc)
	}
	// Unknown truth id reads empty.
	if got := m.ReadPlate(env, &v.Frames[0], geom.Rect(0, 0, 10, 10), -99); got != "" {
		t.Errorf("ghost plate = %q", got)
	}
}

func TestPresenceFilter(t *testing.T) {
	v := genVideo()
	env := testEnv()
	b := &PresenceFilter{P: mustProfile(t, "no_red_on_road")}
	keptTrue, totalTrue := 0, 0
	for i := range v.Frames {
		f := &v.Frames[i]
		truth := false
		for _, o := range f.Objects {
			if o.Class == video.ClassCar && o.Color == video.ColorRed {
				truth = true
				break
			}
		}
		kept := b.Keep(env, f)
		if truth {
			totalTrue++
			if kept {
				keptTrue++
			}
		}
	}
	if totalTrue == 0 {
		t.Skip("no red cars")
	}
	if recall := float64(keptTrue) / float64(totalTrue); recall < 0.9 {
		t.Errorf("presence filter recall = %.3f", recall)
	}
}

func TestDiffFilterSkipsStaticFrames(t *testing.T) {
	// A scenario with almost no activity: most frames should be
	// filtered out after the first.
	sc := video.Scenario{Name: "empty", Seed: 6, FPS: 10, Duration: 10, VehiclesPerSec: 0.001}
	v := sc.Generate()
	env := testEnv()
	d := &DiffFilter{P: mustProfile(t, "motion_diff"), Threshold: 0.2}
	kept := 0
	for i := range v.Frames {
		if d.Keep(env, &v.Frames[i]) {
			kept++
		}
	}
	if kept > len(v.Frames)/2 {
		t.Errorf("diff filter kept %d/%d static frames", kept, len(v.Frames))
	}
	d.Reset()
	if !d.Keep(env, &v.Frames[0]) {
		t.Error("first frame after Reset should be kept")
	}
}

func TestActionProposalRecall(t *testing.T) {
	v := video.VCOCO(7, 400).Generate()
	env := testEnv()
	a := &ActionProposalFilter{P: mustProfile(t, "action_proposal")}
	keptPos, totalPos, keptAll := 0, 0, 0
	for i := range v.Frames {
		f := &v.Frames[i]
		pos := false
		for _, o := range f.Objects {
			if o.HittingBall {
				pos = true
			}
		}
		kept := a.Keep(env, f)
		if kept {
			keptAll++
		}
		if pos {
			totalPos++
			if kept {
				keptPos++
			}
		}
	}
	if totalPos == 0 {
		t.Skip("no positives")
	}
	if rec := float64(keptPos) / float64(totalPos); rec < 0.8 {
		t.Errorf("action proposal recall = %.3f", rec)
	}
	if keptAll >= len(v.Frames) {
		t.Error("action proposal filtered nothing")
	}
}

func TestCostOrdering(t *testing.T) {
	// The calibrated cost table must preserve the orderings the paper's
	// results depend on.
	get := func(name string) Profile { return mustProfile(t, name) }
	if !(get("yolov5s").CostMS < get("yolox").CostMS) {
		t.Error("cheap detector should cost less than yolox")
	}
	if !(get("red_car_specialized").CostMS < get("car_detector").CostMS) {
		t.Error("specialized NN should cost less than the general car detector")
	}
	if !(get("no_red_on_road").CostMS < get("red_car_specialized").CostMS) {
		t.Error("binary filter should cost less than any detector")
	}
	if !(get("upt").CostMS > get("yolox").CostMS) {
		t.Error("HOI model should dominate detector cost")
	}
}

func TestNewFromProfilePanicsOnUnknownTask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFromProfile(unknown task) did not panic")
		}
	}()
	NewFromProfile(Profile{Name: "x", Task: Task(99)})
}

func TestTaskString(t *testing.T) {
	if TaskDetect.String() != "detect" || TaskBinary.String() != "binary" || Task(99).String() != "invalid" {
		t.Error("task strings wrong")
	}
}
