package models

// Simulated open-vocabulary VLM verifier (DESIGN.md §13): the model the
// text-query frontend (internal/vql) appends as a final verification
// stage. Like the clip-level MLLM of internal/mllm it answers yes/no
// questions through a calibrated sensitivity/specificity channel instead
// of emitting detections, but it is frame-scoped and concept-keyed: a
// question asks whether any object of a class satisfies a conjunction of
// open-vocabulary concepts on one frame, and ground truth is evaluated
// against the scenario's per-object state (speed, crosswalk overlap,
// interaction flags) and scene context (night). Each call charges a
// large virtual cost — two orders of magnitude above a binary filter —
// which is exactly why the planner invokes it lazily, only on frames the
// cheap cascade could not already rule out.

import (
	"sort"
	"strings"

	"vqpy/internal/sim"
	"vqpy/internal/video"
)

// VLMModelName is the registry name of the builtin open-vocabulary
// verifier.
const VLMModelName = "vlm_verify"

// vlmStoppedSpeed is the ground-truth speed floor (pixels per frame)
// separating the "stopped" and "moving" concepts.
const vlmStoppedSpeed = 1.0

// ConceptModel answers open-vocabulary yes/no questions about a frame —
// the verification-stage contract the lazy cascade calls through.
type ConceptModel interface {
	// Name returns the model's registry name.
	Name() string
	// AnswerConcept reports whether the frame contains an object of the
	// class satisfying every listed concept, through the model's
	// calibrated noise channel. class ClassUnknown matches any class.
	AnswerConcept(env *Env, f *video.Frame, class video.Class, concepts []string) bool
}

// conceptTruth evaluates one concept against an object's ground truth
// and the frame's scene context.
type conceptTruth func(o *video.Object, sc *video.Scene) bool

// conceptTable is the open-vocabulary concept catalogue the simulated
// VLM understands, keyed by normalized concept phrase. internal/vql
// validates parsed concept clauses against it via KnownConcept.
var conceptTable = map[string]conceptTruth{
	"stopped":      func(o *video.Object, _ *video.Scene) bool { return o.Speed < vlmStoppedSpeed },
	"moving":       func(o *video.Object, _ *video.Scene) bool { return o.Speed >= vlmStoppedSpeed },
	"walking":      func(o *video.Object, _ *video.Scene) bool { return o.Walking },
	"on crosswalk": func(o *video.Object, _ *video.Scene) bool { return o.OnCrosswalk },
	"at night":     func(_ *video.Object, sc *video.Scene) bool { return sc != nil && sc.Night },
	"with ball":    func(o *video.Object, _ *video.Scene) bool { return o.HasBall },
	"hitting ball": func(o *video.Object, _ *video.Scene) bool { return o.HittingBall },
	"entering car": func(o *video.Object, _ *video.Scene) bool { return o.EnteringCar },
	"suspicious":   func(o *video.Object, _ *video.Scene) bool { return o.Suspect },
}

// KnownConcept reports whether the builtin VLM understands a normalized
// concept phrase.
func KnownConcept(key string) bool {
	_, ok := conceptTable[key]
	return ok
}

// ConceptKeys lists the concept phrases the builtin VLM understands,
// sorted.
func ConceptKeys() []string {
	out := make([]string, 0, len(conceptTable))
	for k := range conceptTable {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SimVLM is the simulated open-vocabulary verifier: frame-level
// ground truth through a sensitivity/specificity channel, at a per-call
// cost high enough that invoking it on every frame dominates a scan.
type SimVLM struct {
	// P carries the name and per-call virtual cost.
	P Profile
	// Sensitivity is P(yes | truth); Specificity is P(no | !truth).
	Sensitivity float64
	Specificity float64
}

// vlmProfile prices the verifier: one call costs more than ten yolox
// frames, the calibration that makes eager VLM-on-every-frame untenable
// and the lazy cascade worthwhile.
var vlmProfile = Profile{Name: VLMModelName, Task: TaskBinary, CostMS: 320}

// NewVLM returns the builtin open-vocabulary verifier.
func NewVLM() *SimVLM {
	return &SimVLM{P: vlmProfile, Sensitivity: 0.93, Specificity: 0.95}
}

// Name implements ConceptModel.
func (m *SimVLM) Name() string { return m.P.Name }

// ConceptQuestion renders the canonical question string for a
// class/concept conjunction — the rng key, so every caller asking the
// same question of the same frame gets the same answer.
func ConceptQuestion(class video.Class, concepts []string) string {
	return class.String() + ":" + strings.Join(concepts, "+")
}

// AnswerConcept implements ConceptModel. The answer is a pure function
// of (seed, model, frame index, question): the lazy cascade and the
// eager every-frame baseline see identical answers wherever both ask.
func (m *SimVLM) AnswerConcept(env *Env, f *video.Frame, class video.Class, concepts []string) bool {
	env.charge(m.P.Name, m.P.CostMS)
	truth := conceptFrameTruth(f, class, concepts)
	q := ConceptQuestion(class, concepts)
	rng := sim.NewRNG(hash(env.Seed, strHash(m.P.Name), uint64(f.Index), strHash(q)))
	if truth {
		return rng.Bool(m.Sensitivity)
	}
	return !rng.Bool(m.Specificity)
}

// conceptFrameTruth is the frame-level ground truth behind a question:
// does any object of the class satisfy every concept. Unknown concepts
// are conservatively false (the frontend validates against the table,
// so they never reach execution).
func conceptFrameTruth(f *video.Frame, class video.Class, concepts []string) bool {
	sc := f.Scene()
	for i := range f.Objects {
		o := &f.Objects[i]
		if class != video.ClassUnknown && o.Class != class {
			continue
		}
		all := true
		for _, c := range concepts {
			fn, ok := conceptTable[c]
			if !ok || !fn(o, sc) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
