package models

import (
	"testing"

	"vqpy/internal/geom"
	"vqpy/internal/video"
)

// vlmFrame builds a one-object frame for verifier tests.
func vlmFrame(idx int, o video.Object) *video.Frame {
	return &video.Frame{Index: idx, W: 640, H: 360, Objects: []video.Object{o}}
}

func TestVLMDeterministicPerFrameAndQuestion(t *testing.T) {
	env := NewEnv(7)
	env.NoBurn = true
	m := NewVLM()
	o := video.Object{Class: video.ClassCar, Box: geom.Rect(10, 10, 40, 30), Speed: 0.2}

	for idx := 0; idx < 50; idx++ {
		f := vlmFrame(idx, o)
		a := m.AnswerConcept(env, f, video.ClassCar, []string{"stopped"})
		b := m.AnswerConcept(env, f, video.ClassCar, []string{"stopped"})
		if a != b {
			t.Fatalf("frame %d: verifier answered %v then %v for the same question", idx, a, b)
		}
		// A fresh env with the same seed answers identically: the answer
		// is a function of (seed, frame, question), not call history.
		env2 := NewEnv(7)
		env2.NoBurn = true
		if c := m.AnswerConcept(env2, f, video.ClassCar, []string{"stopped"}); c != a {
			t.Fatalf("frame %d: answer changed across sessions (%v vs %v)", idx, a, c)
		}
	}
}

func TestVLMCalibratedAccuracy(t *testing.T) {
	env := NewEnv(99)
	env.NoBurn = true
	m := NewVLM()
	stopped := video.Object{Class: video.ClassCar, Box: geom.Rect(0, 0, 20, 20), Speed: 0.1}
	moving := video.Object{Class: video.ClassCar, Box: geom.Rect(0, 0, 20, 20), Speed: 8}

	const n = 2000
	tp, tn := 0, 0
	for i := 0; i < n; i++ {
		if m.AnswerConcept(env, vlmFrame(i, stopped), video.ClassCar, []string{"stopped"}) {
			tp++
		}
		if !m.AnswerConcept(env, vlmFrame(n+i, moving), video.ClassCar, []string{"stopped"}) {
			tn++
		}
	}
	sens, spec := float64(tp)/n, float64(tn)/n
	if sens < m.Sensitivity-0.03 || sens > m.Sensitivity+0.03 {
		t.Errorf("measured sensitivity %.3f, want ~%.2f", sens, m.Sensitivity)
	}
	if spec < m.Specificity-0.03 || spec > m.Specificity+0.03 {
		t.Errorf("measured specificity %.3f, want ~%.2f", spec, m.Specificity)
	}
}

func TestVLMChargesHighCost(t *testing.T) {
	env := NewEnv(3)
	env.NoBurn = true
	m := NewVLM()
	before := env.Clock.TotalMS()
	m.AnswerConcept(env, vlmFrame(0, video.Object{Class: video.ClassCar}), video.ClassCar, []string{"stopped"})
	if got := env.Clock.TotalMS() - before; got != m.P.CostMS {
		t.Errorf("one verifier call charged %.1f virtual ms, want %.1f", got, m.P.CostMS)
	}
}

func TestVLMConceptTruthSemantics(t *testing.T) {
	// The conjunction binds all concepts to ONE object of the class.
	walker := video.Object{Class: video.ClassPerson, Walking: true}
	carrier := video.Object{Class: video.ClassPerson, HasBall: true}
	both := video.Object{Class: video.ClassPerson, Walking: true, HasBall: true}

	f := &video.Frame{Index: 1, Objects: []video.Object{walker, carrier}}
	if conceptFrameTruth(f, video.ClassPerson, []string{"walking", "with ball"}) {
		t.Error("split concepts across two objects counted as true")
	}
	f = &video.Frame{Index: 1, Objects: []video.Object{both}}
	if !conceptFrameTruth(f, video.ClassPerson, []string{"walking", "with ball"}) {
		t.Error("one object satisfying the conjunction counted as false")
	}
	// Class binding: a walking person is not a walking car.
	if conceptFrameTruth(f, video.ClassCar, []string{"walking"}) {
		t.Error("concept matched outside the bound class")
	}
}

func TestVLMRegisteredInBuiltinZoo(t *testing.T) {
	r := BuiltinRegistry()
	m, ok := r.Get(VLMModelName)
	if !ok {
		t.Fatalf("%s is not in the builtin registry", VLMModelName)
	}
	if _, ok := m.(ConceptModel); !ok {
		t.Fatalf("%s is not a ConceptModel", VLMModelName)
	}
}

func TestConceptKeysKnown(t *testing.T) {
	keys := ConceptKeys()
	if len(keys) == 0 {
		t.Fatal("no concept keys")
	}
	for _, k := range keys {
		if !KnownConcept(k) {
			t.Errorf("listed concept %q is not known", k)
		}
	}
	if KnownConcept("levitating") {
		t.Error("unknown concept accepted")
	}
}
