package models

import (
	"fmt"

	"vqpy/internal/geom"
	"vqpy/internal/sim"
	"vqpy/internal/video"
)

// SimDetector is a general or specialized object detector driven by a
// Profile.
type SimDetector struct {
	P Profile
}

// Name implements Detector.
func (d *SimDetector) Name() string { return d.P.Name }

// classAllowed reports whether the detector emits the given class.
func (d *SimDetector) classAllowed(c video.Class) bool {
	if len(d.P.Classes) == 0 {
		return c != video.ClassUnknown
	}
	for _, allowed := range d.P.Classes {
		if c == allowed {
			return true
		}
	}
	return false
}

// Detect implements Detector: it charges the profile cost and converts
// ground truth to noisy detections.
func (d *SimDetector) Detect(env *Env, f *video.Frame) []Detection {
	env.charge(d.P.Name, d.P.CostMS+d.P.CostPerObjMS*float64(len(f.Objects)))
	rng := sim.NewRNG(hash(env.Seed, strHash(d.P.Name), uint64(f.Index)))
	var out []Detection
	for _, o := range f.Objects {
		// Reduced-resolution tiers cannot see objects below their
		// visibility floor. The gate sits before any rng draw but only
		// for tiered profiles (Res != ResFull), so every pre-fidelity
		// detector's output stream is bit-identical to what it was.
		if d.P.Res != video.ResFull && !video.VisibleAt(o.Box.Area(), d.P.Res) {
			continue
		}
		if !d.classAllowed(o.Class) {
			continue
		}
		if d.P.ColorFilter != video.ColorNone && o.Color != d.P.ColorFilter {
			// A specialized (e.g. red-car) NN simply does not fire on
			// other colors, except for rare confusion.
			if !rng.Bool(d.P.MisclassRate) {
				continue
			}
		}
		if rng.Bool(d.P.MissRate) {
			continue
		}
		out = append(out, Detection{
			Box:     jitterBox(rng, o.Box, d.P.JitterPx, f.W, f.H),
			Class:   o.Class,
			Score:   clampScore(rng.Norm(0.86, 0.06)),
			TruthID: o.TrackID,
		})
	}
	// Poisson-ish false positives: at most a few per frame.
	fp := d.P.FPRate
	for fp > 0 {
		if rng.Bool(minF(fp, 1)) {
			cls := video.ClassCar
			if len(d.P.Classes) > 0 {
				cls = d.P.Classes[rng.Intn(len(d.P.Classes))]
			}
			w := rng.Range(30, 120)
			h := rng.Range(25, 80)
			x := rng.Range(0, float64(f.W)-w)
			y := rng.Range(0, float64(f.H)-h)
			out = append(out, Detection{
				Box:     geom.Rect(x, y, w, h),
				Class:   cls,
				Score:   clampScore(rng.Norm(0.55, 0.1)),
				TruthID: -1,
			})
		}
		fp -= 1
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ColorClassifier predicts a vehicle's color. It genuinely computes the
// dominant palette color of the raster crop, then passes the answer
// through the misclassification channel.
type ColorClassifier struct {
	P Profile
}

// Name implements Classifier.
func (c *ColorClassifier) Name() string { return c.P.Name }

// Classify implements Classifier.
func (c *ColorClassifier) Classify(env *Env, f *video.Frame, raster *video.Raster, box geom.BBox, truthID int) string {
	env.charge(c.P.Name, c.P.CostMS)
	if raster == nil {
		raster = f.Render()
	}
	got := raster.Crop(box, f.W, f.H).DominantColor()
	rng := sim.NewRNG(hash(env.Seed, strHash(c.P.Name), uint64(f.Index), uint64(truthID)))
	if rng.Bool(c.P.MisclassRate) {
		got = sim.Pick(rng, video.AllColors)
	}
	return got.String()
}

// KindClassifier predicts a vehicle's fine-grained type from ground
// truth through the noise channel (the raster is too coarse to carry
// body-shape information, so unlike color this classifier reads labels).
type KindClassifier struct {
	P Profile
}

// Name implements Classifier.
func (c *KindClassifier) Name() string { return c.P.Name }

// Classify implements Classifier.
func (c *KindClassifier) Classify(env *Env, f *video.Frame, raster *video.Raster, box geom.BBox, truthID int) string {
	env.charge(c.P.Name, c.P.CostMS)
	truth := video.KindNone
	for _, o := range f.Objects {
		if o.TrackID == truthID {
			truth = o.Kind
			break
		}
	}
	rng := sim.NewRNG(hash(env.Seed, strHash(c.P.Name), uint64(f.Index), uint64(truthID)))
	if rng.Bool(c.P.MisclassRate) {
		kinds := []video.VehicleKind{
			video.KindSedan, video.KindSUV, video.KindHatchback,
			video.KindVan, video.KindBusKind, video.KindTruckKind,
		}
		truth = sim.Pick(rng, kinds)
	}
	return truth.String()
}

// DirectionClassifier predicts a vehicle's motion direction. The paper's
// CVIP uses a dedicated (expensive) direction model per crop; VQPy can
// either use the same model or derive direction from tracked centroids.
type DirectionClassifier struct {
	P Profile
}

// Name implements Classifier.
func (c *DirectionClassifier) Name() string { return c.P.Name }

// Classify implements Classifier.
func (c *DirectionClassifier) Classify(env *Env, f *video.Frame, raster *video.Raster, box geom.BBox, truthID int) string {
	env.charge(c.P.Name, c.P.CostMS)
	truth := geom.DirUnknown
	for _, o := range f.Objects {
		if o.TrackID == truthID {
			truth = o.Dir
			break
		}
	}
	rng := sim.NewRNG(hash(env.Seed, strHash(c.P.Name), uint64(f.Index), uint64(truthID)))
	if rng.Bool(c.P.MisclassRate) {
		dirs := []geom.Direction{geom.DirStraight, geom.DirLeft, geom.DirRight}
		truth = sim.Pick(rng, dirs)
	}
	return truth.String()
}

// ReIDEmbedder produces person feature vectors: crops of the same
// ground-truth person land near each other in embedding space.
type ReIDEmbedder struct {
	P Profile
}

// Name implements Embedder.
func (e *ReIDEmbedder) Name() string { return e.P.Name }

// Embed implements Embedder.
func (e *ReIDEmbedder) Embed(env *Env, f *video.Frame, box geom.BBox, truthID int) []float64 {
	env.charge(e.P.Name, e.P.CostMS)
	featureID := 0
	for _, o := range f.Objects {
		if o.TrackID == truthID {
			featureID = o.FeatureID
			break
		}
	}
	rng := sim.NewRNG(hash(env.Seed, strHash(e.P.Name), uint64(f.Index), uint64(truthID)))
	return featureVec(featureID, rng, 0.08)
}

// GlobalReIDEmbedder is the fleet-level re-identification model: unlike
// the person-only ReID of the single-camera pipeline it embeds any
// tracked object (the amber-alert scenarios re-identify cars), and its
// appearance noise stands in for viewpoint and lighting differences
// between cameras — two crops of the same entity on different cameras
// land near each other in embedding space, distinct entities stay
// near-orthogonal. Charged on the virtual clock like every other model.
type GlobalReIDEmbedder struct {
	P Profile
	// Noise is the per-crop appearance noise stddev; 0 uses a default
	// larger than the single-camera ReID's (cross-camera crops differ
	// more than same-camera crops).
	Noise float64
}

// Name implements Embedder.
func (e *GlobalReIDEmbedder) Name() string { return e.P.Name }

// Embed implements Embedder. A crop with no underlying ground-truth
// object (a detector false positive) embeds to nil: giving every FP
// one shared fallback vector would fuse unrelated hallucinations
// across cameras into a single phantom identity, so the registry must
// see "no feature" and refuse to resolve instead.
func (e *GlobalReIDEmbedder) Embed(env *Env, f *video.Frame, box geom.BBox, truthID int) []float64 {
	env.charge(e.P.Name, e.P.CostMS)
	featureID := 0
	found := false
	for _, o := range f.Objects {
		if o.TrackID == truthID {
			featureID = o.FeatureID
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	noise := e.Noise
	if noise <= 0 {
		noise = 0.12
	}
	rng := sim.NewRNG(hash(env.Seed, strHash(e.P.Name), uint64(f.Index), uint64(truthID)))
	return featureVec(featureID, rng, noise)
}

// UPTModel detects person-object interactions (the paper's UPT
// two-stage HOI model).
type UPTModel struct {
	P Profile
}

// Name implements HOIModel.
func (m *UPTModel) Name() string { return m.P.Name }

// DetectInteractions implements HOIModel.
func (m *UPTModel) DetectInteractions(env *Env, f *video.Frame) []HOIPair {
	env.charge(m.P.Name, m.P.CostMS)
	rng := sim.NewRNG(hash(env.Seed, strHash(m.P.Name), uint64(f.Index)))
	var out []HOIPair
	for _, o := range f.Objects {
		if o.Class != video.ClassPerson || !o.HasBall {
			continue
		}
		// Locate the companion ball by proximity.
		var ball *video.Object
		bestD := 1e18
		for i := range f.Objects {
			b := &f.Objects[i]
			if b.Class == video.ClassBall {
				if d := geom.CenterDist(o.Box, b.Box); d < bestD {
					bestD, ball = d, b
				}
			}
		}
		if ball == nil {
			continue
		}
		hitting := o.HittingBall
		if rng.Bool(m.P.MisclassRate) {
			hitting = !hitting
		}
		if !hitting {
			continue
		}
		out = append(out, HOIPair{
			PersonBox: o.Box, ObjectBox: ball.Box, Verb: "hit",
			Score:         clampScore(rng.Norm(0.8, 0.08)),
			PersonTruthID: o.TrackID, ObjectTruthID: ball.TrackID,
		})
	}
	return out
}

// PlateOCR reads license plates; each character has an independent error
// probability.
type PlateOCR struct {
	P Profile
}

// Name implements OCRModel.
func (m *PlateOCR) Name() string { return m.P.Name }

// ReadPlate implements OCRModel.
func (m *PlateOCR) ReadPlate(env *Env, f *video.Frame, box geom.BBox, truthID int) string {
	env.charge(m.P.Name, m.P.CostMS)
	truth := ""
	for _, o := range f.Objects {
		if o.TrackID == truthID {
			truth = o.Plate
			break
		}
	}
	if truth == "" {
		return ""
	}
	rng := sim.NewRNG(hash(env.Seed, strHash(m.P.Name), uint64(f.Index), uint64(truthID)))
	out := []byte(truth)
	const alphabet = "ABCDEFGHJKLMNPRSTUVWXYZ0123456789"
	for i := range out {
		if out[i] != '-' && rng.Bool(m.P.MisclassRate) {
			out[i] = alphabet[rng.Intn(len(alphabet))]
		}
	}
	return string(out)
}

// PresenceFilter is a cheap binary classifier that predicts whether any
// object matching its class (and optional color) is present on the frame
// — the paper's "no_red_on_road" style filter. Quality is controlled by
// MissRate (false drop) and FPRate (false keep).
type PresenceFilter struct {
	P Profile
}

// Name implements BinaryFilter.
func (b *PresenceFilter) Name() string { return b.P.Name }

// Keep implements BinaryFilter.
func (b *PresenceFilter) Keep(env *Env, f *video.Frame) bool {
	env.charge(b.P.Name, b.P.CostMS)
	present := false
	for _, o := range f.Objects {
		classOK := len(b.P.Classes) == 0
		for _, c := range b.P.Classes {
			if o.Class == c {
				classOK = true
				break
			}
		}
		if classOK && (b.P.ColorFilter == video.ColorNone || o.Color == b.P.ColorFilter) {
			present = true
			break
		}
	}
	rng := sim.NewRNG(hash(env.Seed, strHash(b.P.Name), uint64(f.Index)))
	if present {
		// A false drop loses a true frame.
		return !rng.Bool(b.P.MissRate)
	}
	// A false keep wastes downstream work but costs no accuracy.
	return rng.Bool(b.P.FPRate)
}

// DiffFilter is the differencing-based frame filter of Figure 12: it
// renders consecutive rasters and keeps frames whose pixel difference
// from the last kept frame exceeds a threshold.
type DiffFilter struct {
	P         Profile
	Threshold float64

	last *video.Raster
}

// Name implements BinaryFilter.
func (d *DiffFilter) Name() string { return d.P.Name }

// Keep implements BinaryFilter.
func (d *DiffFilter) Keep(env *Env, f *video.Frame) bool {
	env.charge(d.P.Name, d.P.CostMS)
	cur := f.Render()
	if d.last == nil {
		d.last = cur
		return true
	}
	if video.Diff(d.last, cur) >= d.Threshold {
		d.last = cur
		return true
	}
	return false
}

// Reset clears the filter's reference frame.
func (d *DiffFilter) Reset() { d.last = nil }

// CloneModel implements Cloner: differencing state is per-stream, so
// each query stream gets a fresh filter with the same configuration.
func (d *DiffFilter) CloneModel() any {
	return &DiffFilter{P: d.P, Threshold: d.Threshold}
}

// ActionProposalFilter is the cheap trained filter from §5.3's Q6
// optimization (following Xarchakos & Koudas): it drops frames unlikely
// to contain the target interaction, with a small false-drop rate that
// costs a little recall.
type ActionProposalFilter struct {
	P Profile
}

// Name implements BinaryFilter.
func (a *ActionProposalFilter) Name() string { return a.P.Name }

// Keep implements BinaryFilter.
func (a *ActionProposalFilter) Keep(env *Env, f *video.Frame) bool {
	env.charge(a.P.Name, a.P.CostMS)
	rng := sim.NewRNG(hash(env.Seed, strHash(a.P.Name), uint64(f.Index)))
	for _, o := range f.Objects {
		if o.Class == video.ClassPerson && o.HasBall {
			// Plausible frame: ball near a person. Keep unless the
			// proposal network misfires.
			near := o.HittingBall || rng.Bool(0.5)
			if near && !rng.Bool(a.P.MissRate) {
				return true
			}
		}
	}
	return rng.Bool(a.P.FPRate)
}

// ZooVersion identifies the behaviour of the simulated model zoo: the
// cost table, the output-distribution parameters and the deterministic
// rng keying below. Derived artifacts that persist model outputs beyond
// the record kinds the store keys by model name — today the appearance
// index, whose embeddings must match what a live embedder would return
// — record it in their manifests and invalidate on mismatch, the same
// rule the store applies to the seed.
const ZooVersion = 1

// Calibrated cost table (virtual ms, T4-scale). See DESIGN.md §2.
var builtinProfiles = []Profile{
	{Name: "yolox", Task: TaskDetect, CostMS: 28, MissRate: 0.03, FPRate: 0.05, JitterPx: 2.5},
	{Name: "yolov8m", Task: TaskDetect, CostMS: 22, MissRate: 0.04, FPRate: 0.05, JitterPx: 2.5},
	{Name: "yolov5s", Task: TaskDetect, CostMS: 7, MissRate: 0.10, FPRate: 0.10, JitterPx: 4},
	{Name: "car_detector", Task: TaskDetect, CostMS: 18, Classes: []video.Class{video.ClassCar, video.ClassBus, video.ClassTruck}, MissRate: 0.03, FPRate: 0.04, JitterPx: 2.5},
	{Name: "person_detector", Task: TaskDetect, CostMS: 18, Classes: []video.Class{video.ClassPerson}, MissRate: 0.04, FPRate: 0.04, JitterPx: 2},
	{Name: "red_car_specialized", Task: TaskDetect, CostMS: 6, Classes: []video.Class{video.ClassCar}, ColorFilter: video.ColorRed, MissRate: 0.07, FPRate: 0.02, JitterPx: 3, MisclassRate: 0.003},
	{Name: "color_detect", Task: TaskClassify, CostMS: 5, MisclassRate: 0.04},
	{Name: "type_detect", Task: TaskClassify, CostMS: 5, MisclassRate: 0.05},
	{Name: "direction_model", Task: TaskClassify, CostMS: 20, MisclassRate: 0.06},
	{Name: "reid", Task: TaskEmbed, CostMS: 9},
	{Name: "fleet_reid", Task: TaskEmbed, CostMS: 7},
	{Name: "upt", Task: TaskHOI, CostMS: 95, MisclassRate: 0.06},
	{Name: "plate_ocr", Task: TaskOCR, CostMS: 12, MisclassRate: 0.02},
	{Name: "car_texture_filter", Task: TaskBinary, CostMS: 1.2, Classes: []video.Class{video.ClassCar, video.ClassBus, video.ClassTruck}, MissRate: 0.03, FPRate: 0.15},
	{Name: "person_texture_filter", Task: TaskBinary, CostMS: 1.2, Classes: []video.Class{video.ClassPerson}, MissRate: 0.03, FPRate: 0.15},
	{Name: "no_red_on_road", Task: TaskBinary, CostMS: 1.5, Classes: []video.Class{video.ClassCar}, ColorFilter: video.ColorRed, MissRate: 0.04, FPRate: 0.2},
	{Name: "motion_diff", Task: TaskBinary, CostMS: 0.6},
	{Name: "action_proposal", Task: TaskBinary, CostMS: 2.5, MissRate: 0.06, FPRate: 0.1},
	{Name: "ball_person_cheap", Task: TaskDetect, CostMS: 5, Classes: []video.Class{video.ClassPerson, video.ClassBall}, MissRate: 0.08, FPRate: 0.05, JitterPx: 4},

	// Reduced-resolution detector tiers (DESIGN.md §12): the same
	// architectures run on half- or quarter-resolution decodes. Cost
	// scales roughly with input pixels; the error knobs rise a little
	// and, more importantly, Res imposes the tier's visibility floor
	// (small objects vanish), which is where the calibrated accuracy
	// curves of the fidelity planner come from.
	{Name: "yolov8m@half", Task: TaskDetect, CostMS: 9, MissRate: 0.05, FPRate: 0.06, JitterPx: 3, Res: video.ResHalf},
	{Name: "yolov5s@half", Task: TaskDetect, CostMS: 3, MissRate: 0.11, FPRate: 0.1, JitterPx: 4.5, Res: video.ResHalf},
	{Name: "yolov5s@quarter", Task: TaskDetect, CostMS: 1.5, MissRate: 0.13, FPRate: 0.1, JitterPx: 5, Res: video.ResQuarter},
}

// detectorFallbacks is the degradation ladder of the builtin zoo: when
// a detector's circuit breaker opens, the execution layer retargets the
// scan at its fallback tier — the cheap universal yolov5s, whose empty
// Classes profile covers every class the specialized tiers bind. The
// bottom tier has no fallback; past it the scan carries tracker state
// forward.
var detectorFallbacks = map[string]string{
	"yolox":               "yolov5s",
	"yolov8m":             "yolov5s",
	"car_detector":        "yolov5s",
	"person_detector":     "yolov5s",
	"red_car_specialized": "yolov5s",
	"ball_person_cheap":   "yolov5s",
}

// FallbackDetector returns the cheaper detector tier a broken detector
// degrades to, or "" when none exists.
func FallbackDetector(name string) string { return detectorFallbacks[name] }

// BuiltinRegistry returns a registry populated with the library model
// zoo described in §2 of the paper.
func BuiltinRegistry() *Registry {
	r := NewRegistry()
	for _, p := range builtinProfiles {
		r.Register(p.Name, NewFromProfile(p))
	}
	// The open-vocabulary verifier is registered outside the profile
	// loop: its concept-question contract (ConceptModel) is not one of
	// the task shapes NewFromProfile constructs.
	r.Register(VLMModelName, NewVLM())
	return r
}

// NewFromProfile constructs the appropriate model type for a profile.
func NewFromProfile(p Profile) any {
	switch p.Task {
	case TaskDetect:
		return &SimDetector{P: p}
	case TaskClassify:
		switch p.Name {
		case "color_detect":
			return &ColorClassifier{P: p}
		case "direction_model":
			return &DirectionClassifier{P: p}
		default:
			return &KindClassifier{P: p}
		}
	case TaskEmbed:
		if p.Name == "fleet_reid" {
			return &GlobalReIDEmbedder{P: p}
		}
		return &ReIDEmbedder{P: p}
	case TaskHOI:
		return &UPTModel{P: p}
	case TaskOCR:
		return &PlateOCR{P: p}
	case TaskBinary:
		switch p.Name {
		case "motion_diff":
			return &DiffFilter{P: p, Threshold: 0.2}
		case "action_proposal":
			return &ActionProposalFilter{P: p}
		default:
			return &PresenceFilter{P: p}
		}
	}
	panic(fmt.Sprintf("models: unknown task %v", p.Task))
}

// ProfileOf returns the builtin profile for a name.
func ProfileOf(name string) (Profile, bool) {
	for _, p := range builtinProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// FidelityLattice is the scan-config lattice a source can be archived
// at (DESIGN.md §12), cheapest last: full fidelity first, then
// progressively strided / downsampled / cheaper-detector tiers. The
// full-fidelity entry uses the query's own detector; every other tier
// names a reduced-resolution profile from the table above.
func FidelityLattice(fullDetector string) []video.Fidelity {
	return []video.Fidelity{
		{Stride: 1, Res: video.ResFull, Detector: fullDetector},
		{Stride: 2, Res: video.ResFull, Detector: "yolov8m"},
		{Stride: 2, Res: video.ResHalf, Detector: "yolov8m@half"},
		{Stride: 4, Res: video.ResHalf, Detector: "yolov5s@half"},
		{Stride: 4, Res: video.ResQuarter, Detector: "yolov5s@quarter"},
	}
}
