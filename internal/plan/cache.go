package plan

import (
	"sync"

	"vqpy/internal/exec"
)

// PlanCache stores selected plans keyed by (query, dataset), the §4.3
// "plan can be saved for future queries on similar datasets" mechanism.
type PlanCache struct {
	mu    sync.Mutex
	plans map[planKey]*exec.Plan
	hits  int
	miss  int
}

type planKey struct{ query, dataset string }

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[planKey]*exec.Plan)}
}

// Get returns the cached plan for a query/dataset pair.
func (c *PlanCache) Get(query, dataset string) (*exec.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.plans[planKey{query, dataset}]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return p, ok
}

// Put stores a plan.
func (c *PlanCache) Put(query, dataset string, p *exec.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans[planKey{query, dataset}] = p
}

// Stats returns (hits, misses).
func (c *PlanCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}
