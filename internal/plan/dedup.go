package plan

// Incremental cross-query scan dedup: the logical-layer mirror of the
// dynamic MuxStream. A ScanPartition maintains the DedupScans grouping
// under attach/detach churn, so the serving layer can answer "which scan
// group would this query join, and what would the partition look like"
// without opening (or perturbing) a stream. exec.MuxStream performs the
// same grouping physically; TestScanPartitionMatchesMuxGroups pins the
// two together through an arbitrary attach/detach sequence.

import (
	"fmt"
	"sort"

	"vqpy/internal/exec"
	"vqpy/internal/video"
)

// partMember is one attached pipeline's slot in the partition.
type partMember struct {
	group     *partGroup
	name      string
	class     video.Class
	shareable bool
}

// partGroup is the mutable state behind one ScanShare.
type partGroup struct {
	key       string
	filters   []string
	detect    string
	shareable bool
	members   []*partMember
	classRefs map[video.Class]int
	classes   []video.Class // first-bound order, pruned on teardown
}

// ScanPartition maintains the DedupScans grouping incrementally: Attach
// places one compiled pipeline into its scan group (joining an existing
// group when the prefix matches, creating one otherwise) and Detach
// removes it, tearing down the group's class entry — and the group —
// when the last user leaves. This is exactly the bookkeeping
// exec.MuxStream.Attach/Detach performs on the physical state.
type ScanPartition struct {
	index   map[string]*partGroup
	groups  []*partGroup // live groups, creation order
	members map[int]*partMember
	next    int
}

// NewScanPartition returns an empty partition.
func NewScanPartition() *ScanPartition {
	return &ScanPartition{
		index:   make(map[string]*partGroup),
		members: make(map[int]*partMember),
	}
}

// Attach places a compiled pipeline into the partition and returns its
// member id (pass it to Detach). Non-shareable pipelines get a private
// singleton group.
func (sp *ScanPartition) Attach(leaf *BasicIR) int {
	sig := exec.ScanPrefixOf(leaf.Plan)
	id := sp.next
	sp.next++
	mem := &partMember{name: leaf.Query.Name(), class: sig.Class, shareable: sig.Shareable}

	key := sig.Key()
	if !sig.Shareable {
		key = fmt.Sprintf("private#%d", id)
	}
	g, ok := sp.index[key]
	if !ok {
		g = &partGroup{
			key: key, filters: sig.Filters, shareable: sig.Shareable,
			classRefs: make(map[video.Class]int),
		}
		if sig.Shareable {
			g.detect = sig.Detect
		}
		sp.index[key] = g
		sp.groups = append(sp.groups, g)
	}
	if sig.Shareable {
		if g.classRefs[sig.Class] == 0 {
			g.classes = append(g.classes, sig.Class)
		}
		g.classRefs[sig.Class]++
	}
	mem.group = g
	g.members = append(g.members, mem)
	sp.members[id] = mem
	return id
}

// Detach removes a member from the partition, pruning its class — and
// its group, when it was the last member.
func (sp *ScanPartition) Detach(member int) error {
	mem, ok := sp.members[member]
	if !ok {
		return fmt.Errorf("plan: detach of unknown partition member %d", member)
	}
	delete(sp.members, member)
	g := mem.group
	for i, cand := range g.members {
		if cand == mem {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	if mem.shareable {
		g.classRefs[mem.class]--
		if g.classRefs[mem.class] == 0 {
			delete(g.classRefs, mem.class)
			for i, c := range g.classes {
				if c == mem.class {
					g.classes = append(g.classes[:i], g.classes[i+1:]...)
					break
				}
			}
		}
	}
	if len(g.members) == 0 {
		delete(sp.index, g.key)
		for i, cand := range sp.groups {
			if cand == g {
				sp.groups = append(sp.groups[:i], sp.groups[i+1:]...)
				break
			}
		}
	}
	return nil
}

// Shares renders the live partition as ScanShare values, groups in
// creation order, member queries in attach order, classes sorted.
func (sp *ScanPartition) Shares() []ScanShare {
	out := make([]ScanShare, 0, len(sp.groups))
	for _, g := range sp.groups {
		share := ScanShare{Filters: g.filters, Detect: g.detect}
		for _, mem := range g.members {
			share.Queries = append(share.Queries, mem.name)
		}
		share.Classes = append(share.Classes, g.classes...)
		sort.Slice(share.Classes, func(a, b int) bool { return share.Classes[a] < share.Classes[b] })
		out = append(out, share)
	}
	return out
}

// Groups returns the number of live groups.
func (sp *ScanPartition) Groups() int { return len(sp.groups) }

// GroupMembers returns each live group's member count in creation order
// — positionally comparable with exec.MuxStream.GroupMembers when the
// same attach/detach sequence was applied to both, except that the mux
// omits private lanes from its group list while the partition keeps
// them as singleton groups.
func (sp *ScanPartition) GroupMembers() []int {
	out := make([]int, len(sp.groups))
	for i, g := range sp.groups {
		out[i] = len(g.members)
	}
	return out
}

// DedupScans partitions basic pipelines by structurally identical scan
// prefixes (same frame-filter chain and detector over the same source —
// the stream the caller is about to multiplex). Pipelines whose filters
// differ stay apart, since a tracker's state depends on exactly which
// frames reach it; pipelines without a shareable prefix each get a
// singleton group.
//
// This is the batch entry point over the incremental ScanPartition: both
// it and the physical grouping inside exec.OpenMux are derived from the
// same exec.ScanPrefixOf signatures, so the partition here is exactly
// the set of shared operator groups the MuxStream will run
// (TestDedupScansMatchesMuxGroups pins the two together). Use it for
// explain output and workload analysis without opening a stream.
func DedupScans(leaves []*BasicIR) []ScanShare {
	sp := NewScanPartition()
	for _, leaf := range leaves {
		sp.Attach(leaf)
	}
	return sp.Shares()
}
