package plan

import (
	"reflect"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// TestScanPartitionIncrementalMatchesBatch checks that attaching leaves
// one by one yields exactly the batch DedupScans partition, and that
// detaching reverses the bookkeeping (class teardown, group teardown,
// singleton private groups).
func TestScanPartitionIncrementalMatchesBatch(t *testing.T) {
	pl := testPlanner(t, nil)
	personType := core.NewVObj("Person", video.ClassPerson).Detector("yolox")
	diffCar := carType().Extend("DiffCar").RegisterFrameFilter("motion_diff", 1)
	cheapCar := core.NewVObj("CheapCar", video.ClassCar).Detector("yolov5s")
	leaves := compileLeaves(t, pl,
		scoreQuery("Cars", "car", carType()),
		scoreQuery("People", "p", personType),
		scoreQuery("Diffed", "car", diffCar),
		scoreQuery("Cheap", "car", cheapCar),
		scoreQuery("MoreCars", "car", carType()),
	)

	sp := NewScanPartition()
	ids := make([]int, len(leaves))
	for i, leaf := range leaves {
		ids[i] = sp.Attach(leaf)
	}
	if got, want := sp.Shares(), DedupScans(leaves); !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental shares %v\nwant batch shares  %v", got, want)
	}

	// Detach People: its class leaves the yolox group but the group
	// stays (Cars, MoreCars remain).
	if err := sp.Detach(ids[1]); err != nil {
		t.Fatal(err)
	}
	shares := sp.Shares()
	if len(shares[0].Classes) != 1 || shares[0].Classes[0] != video.ClassCar {
		t.Errorf("after People detach: classes = %v, want [car]", shares[0].Classes)
	}
	if !reflect.DeepEqual(shares[0].Queries, []string{"Cars", "MoreCars"}) {
		t.Errorf("after People detach: queries = %v", shares[0].Queries)
	}

	// Detach Diffed: its singleton group disappears entirely.
	if err := sp.Detach(ids[2]); err != nil {
		t.Fatal(err)
	}
	if got := sp.Groups(); got != 2 {
		t.Errorf("groups after Diffed detach = %d, want 2", got)
	}

	// Re-attaching an equivalent leaf re-joins the surviving yolox group.
	again := compileLeaves(t, pl, scoreQuery("CarsAgain", "car", carType()))
	id := sp.Attach(again[0])
	if got := sp.GroupMembers(); !reflect.DeepEqual(got, []int{3, 1}) {
		t.Errorf("members after re-attach = %v, want [3 1]", got)
	}
	if err := sp.Detach(id); err != nil {
		t.Fatal(err)
	}
	if err := sp.Detach(id); err == nil {
		t.Error("double detach accepted")
	}
}

// TestScanPartitionMatchesMuxGroups drives the same attach/detach
// sequence through the logical partition and a physical dynamic mux and
// checks the two groupings never diverge — the incremental analogue of
// TestDedupScansMatchesMuxGroups.
func TestScanPartitionMatchesMuxGroups(t *testing.T) {
	pl := testPlanner(t, nil)
	personType := core.NewVObj("Person", video.ClassPerson).Detector("yolox")
	diffCar := carType().Extend("DiffCar").RegisterFrameFilter("motion_diff", 1)
	cheapCar := core.NewVObj("CheapCar", video.ClassCar).Detector("yolov5s")
	leaves := compileLeaves(t, pl,
		scoreQuery("Cars", "car", carType()),
		scoreQuery("People", "p", personType),
		scoreQuery("Diffed", "car", diffCar),
		scoreQuery("Cheap", "car", cheapCar),
		scoreQuery("MoreCars", "car", carType()),
	)

	ex, err := exec.NewExecutor(exec.Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	m := ex.OpenDynamicMux(30)
	sp := NewScanPartition()

	crosscheck := func(stage string) {
		t.Helper()
		var logical []int
		for _, s := range sp.Shares() {
			if s.Detect != "" { // shareable groups only; the mux tracks no others
				logical = append(logical, len(s.Queries))
			}
		}
		got := m.GroupMembers()
		if len(got) != len(logical) || (len(got) > 0 && !reflect.DeepEqual(got, logical)) {
			t.Errorf("%s: logical %v diverges from mux %v", stage, logical, got)
		}
	}

	laneOf := make([]int, len(leaves))
	memOf := make([]int, len(leaves))
	for i, leaf := range leaves {
		if laneOf[i], err = m.Attach(leaf.Plan); err != nil {
			t.Fatal(err)
		}
		memOf[i] = sp.Attach(leaf)
		crosscheck("attach")
	}
	for _, i := range []int{1, 4, 2, 0, 3} {
		if _, err := m.Detach(laneOf[i]); err != nil {
			t.Fatal(err)
		}
		if err := sp.Detach(memOf[i]); err != nil {
			t.Fatal(err)
		}
		crosscheck("detach")
	}
	if sp.Groups() != 0 || m.Lanes() != 0 {
		t.Errorf("partition/mux not empty after full detach: %d groups, %d lanes", sp.Groups(), m.Lanes())
	}
}
