package plan

// Fidelity-aware planning (DESIGN.md §12): a source can be archived at
// several points of the (frame stride × resolution tier × detector
// tier) lattice, each calibrated against ground truth; a query that
// declares an accuracy floor (Options.MinAccuracy) is then answered
// from the cheapest archived fidelity whose effective accuracy meets
// it, with only the uncovered residual window scanned live at full
// fidelity. Three entry points:
//
//   - ArchiveFidelity scans one tier over a prefix of the source,
//     persists its records under a fidelity-decorated scan signature,
//     calibrates its accuracy, and records the result in the store's
//     fidelity manifest.
//   - PlanFidelity builds the candidate set — the live full-fidelity
//     scan plus every readable manifest entry — prices each with one
//     shared cost model (FidelityCostMS) and selects the cheapest
//     accuracy-satisfying candidate (SelectFidelity).
//   - RunFidelity executes the decision: tier replay via
//     exec.RunFidelityReplay with carry-forward expansion onto the
//     full frame axis, or the ordinary store-backed live pass.
//
// The selection rule is deliberately conservative at the top: a
// declared target of 1.0 (and the undeclared default) means exact
// answers, which only the live path guarantees — calibrated accuracy
// is an empirical estimate over the archived window, not a proof about
// the frames a future query asks about. Fidelity serving is therefore
// opt-in per query via MinAccuracy < 1.

import (
	"fmt"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/store"
	"vqpy/internal/video"
)

// liveFidelityKey names the always-available live full-fidelity
// candidate in decisions, metrics and logs.
const liveFidelityKey = "live/full"

// FidelityCandidate is one priced way of answering a query over
// [0, Frames).
type FidelityCandidate struct {
	// Key is the fidelity key ("s4/half/yolov5s@half"), or "live/full"
	// for the live candidate.
	Key string
	// ScanKey / Detector locate the tier's archived records (empty for
	// the live candidate).
	ScanKey  string
	Detector string
	// Stride is the tier's frame stride (1 for live).
	Stride int
	// Covered is the archived prefix usable for this query, clamped to
	// the queried range (0 for live).
	Covered int
	// TierAccuracy is the tier's calibrated accuracy over its archived
	// window; Accuracy is the effective accuracy over the whole queried
	// range — the covered window at TierAccuracy, the live residual at
	// 1.0.
	TierAccuracy float64
	Accuracy     float64
	// CostMS is the modeled virtual cost of answering the query this
	// way (FidelityCostMS).
	CostMS float64
	// Live marks the full-fidelity live-scan candidate.
	Live bool
}

// FidelityDecision records one fidelity planning outcome: every
// candidate priced, which one won, and which archived tiers were
// skipped because their records failed the readability probe.
type FidelityDecision struct {
	Source string
	Query  string
	// Frames is the queried range [0, Frames).
	Frames int
	// Target is the effective accuracy floor (MinAccuracy, with the
	// undeclared-0 default resolved to 1).
	Target float64

	Candidates []FidelityCandidate
	// Chosen indexes Candidates (>= 0: the live candidate always
	// qualifies).
	Chosen int
	// SkippedUnreadable lists fidelity keys of manifest entries whose
	// archived records could not be probed (read faults, eviction) —
	// the planner degrades past them rather than choosing a tier it
	// cannot replay.
	SkippedUnreadable []string
}

// ChosenCandidate returns the winning candidate.
func (d *FidelityDecision) ChosenCandidate() FidelityCandidate {
	return d.Candidates[d.Chosen]
}

// FidelityResult is the outcome of one fidelity-served query.
type FidelityResult struct {
	Query string

	// Matched is per-frame over the full axis [0, Frames): replayed
	// tiers are expanded with the carry-forward rule (a skipped frame
	// answers as its last aligned predecessor).
	Matched []bool
	Hits    []exec.FrameHit

	// Decision is the plan that produced this result.
	Decision *FidelityDecision

	// ReplayedFrames / DegradedFrames / ResidualFrames break down how
	// frames were answered (see exec.FidelityReplayStats); a live
	// decision reports everything as residual.
	ReplayedFrames int
	DegradedFrames int
	ResidualFrames int

	// VirtualMS is the virtual time the run actually charged.
	VirtualMS float64
}

// FidelityCostMS is the shared cost model both planning and tests
// price candidates with: replaying the stride-aligned frames of the
// covered prefix at the bookkeeping rate, plus live full-fidelity
// scanning of the residual.
func FidelityCostMS(stride, covered, n int, fullPerFrameMS float64) float64 {
	fid := video.Fidelity{Stride: stride}
	residual := n - covered
	if residual < 0 {
		residual = 0
	}
	return float64(fid.AlignedFrames(covered))*exec.FidelityReplayMS +
		float64(residual)*fullPerFrameMS
}

// SelectFidelity returns the index of the cheapest candidate
// satisfying the accuracy target, breaking cost ties by key for
// determinism. A target >= 1 demands exact answers, which only a live
// candidate gives (calibration estimates, it does not prove). Returns
// -1 only for an empty candidate set.
func SelectFidelity(cands []FidelityCandidate, target float64) int {
	best := -1
	for i := range cands {
		if !fidelitySatisfies(cands[i], target) {
			continue
		}
		if best < 0 || cands[i].CostMS < cands[best].CostMS ||
			(cands[i].CostMS == cands[best].CostMS && cands[i].Key < cands[best].Key) {
			best = i
		}
	}
	return best
}

func fidelitySatisfies(c FidelityCandidate, target float64) bool {
	if c.Live {
		return true
	}
	return target < 1 && c.Accuracy >= target
}

// fidelityPlan compiles q the one canonical way every fidelity path
// must agree on: memoization off and no plan cache (like searchPlan),
// plus no frame filters and no specialized detectors — the scan prefix
// must be exactly detect→track so every tier of the lattice archives
// the same frames and differs only by its declared (stride, res,
// detector). The plan must also be fidelity-replayable: shareable
// prefix, per-frame-pure residual (the IndexVerifiable gate).
func (pl *Planner) fidelityPlan(q *core.Query, src video.FrameSource) (*exec.Plan, exec.ScanSig, error) {
	opts := pl.opts
	opts.DisableMemo = true
	opts.PlanCache = nil
	opts.DisableSpecialized = true
	opts.DisableFrameFilters = true
	inner := &Planner{opts: opts.withDefaults()}
	p, _, err := inner.PlanBasic(q, canaryOf(src))
	if err != nil {
		return nil, exec.ScanSig{}, err
	}
	sig := exec.ScanPrefixOf(p)
	if !sig.Shareable {
		return nil, exec.ScanSig{}, fmt.Errorf("plan: query %q has no shareable scan prefix to archive fidelities under", q.Name())
	}
	if !exec.IndexVerifiable(p) {
		return nil, exec.ScanSig{}, fmt.Errorf("plan: query %q is not fidelity-servable (stateful residual operators)", q.Name())
	}
	return p, sig, nil
}

// tierPlanOf derives the archive-pass plan for one fidelity: the same
// pipeline with the detect step swapped to the tier's detector and the
// scan signature decorated with the fidelity key, so tier records can
// never collide with the full-fidelity archive of the same prefix.
func tierPlanOf(p *exec.Plan, fid video.Fidelity) *exec.Plan {
	tp := *p
	tp.Steps = swapDetect(append([]exec.Step(nil), p.Steps...), fid.Detector)
	tp.ScanSuffix = fid.Key()
	tp.Label = p.Label + "@" + fid.Key()
	return &tp
}

func swapDetect(steps []exec.Step, detector string) []exec.Step {
	for i := range steps {
		switch steps[i].Kind {
		case exec.StepDetect:
			steps[i].DetectModel = detector
		case exec.StepFused:
			steps[i].Fused = swapDetect(append([]exec.Step(nil), steps[i].Fused...), detector)
		}
	}
	return steps
}

// ArchiveFidelity scans frames [0, upto) of src at fidelity fid (only
// the stride-aligned ones run), archives the tier's records under the
// fidelity-decorated scan signature, calibrates the tier's accuracy
// against the source's ground truth, and upserts the store's fidelity
// manifest. upto <= 0 archives the whole source. Re-archiving is
// idempotent: frames already archived under the tier's signature
// replay from the store at near-zero model cost. Requires
// Options.Store and a synthetic source (ground truth drives
// calibration).
func (pl *Planner) ArchiveFidelity(q *core.Query, src video.FrameSource, fid video.Fidelity, upto int) (store.FidelityEntry, error) {
	if pl.opts.Store == nil {
		return store.FidelityEntry{}, fmt.Errorf("plan: ArchiveFidelity requires Options.Store")
	}
	base, _, err := pl.fidelityPlan(q, src)
	if err != nil {
		return store.FidelityEntry{}, err
	}
	if upto <= 0 || upto > src.NumFrames() {
		upto = src.NumFrames()
	}
	tier := tierPlanOf(base, fid)
	sig := exec.ScanPrefixOf(tier)
	source := src.SourceName()

	ex, err := exec.NewExecutor(exec.Options{
		Env: pl.opts.Env, Registry: pl.opts.Registry, Cache: pl.opts.Cache,
		Store: pl.opts.Store, StoreSource: source,
	})
	if err != nil {
		return store.FidelityEntry{}, err
	}
	m, err := ex.OpenMux([]*exec.Plan{tier}, src.SourceFPS())
	if err != nil {
		return store.FidelityEntry{}, err
	}
	m.BindStore(pl.opts.Store, src)
	stride := fid.NormStride()
	for f := 0; f < upto; f += stride {
		if _, err := m.Feed(src.FrameAt(f)); err != nil {
			return store.FidelityEntry{}, err
		}
	}
	m.Close()

	acc, err := pl.calibrateFidelity(src, fid, int(sig.Class), upto)
	if err != nil {
		return store.FidelityEntry{}, err
	}
	full, err := pl.fullPerFrameMS(base, src)
	if err != nil {
		return store.FidelityEntry{}, err
	}
	entry := store.FidelityEntry{
		Source: source, Key: fid.Key(), ScanKey: sig.Key(),
		Detector: fid.Detector, Stride: stride, Res: fid.Res.String(),
		Covered: upto, Accuracy: acc, CostPerFrameMS: full,
	}
	if err := pl.opts.Store.PutFidelity(entry); err != nil {
		return entry, err
	}
	return entry, nil
}

// calibrateFidelity computes the tier's empirical accuracy over
// [0, upto): per-frame class-presence agreement between the archived
// tier detections (carried forward across skipped frames, exactly the
// replay semantics) and the source's ground truth. This is what the
// analytic curve (video.FidelityTruthAccuracy) estimates from the
// generator side; tests crosscheck the two.
func (pl *Planner) calibrateFidelity(src video.FrameSource, fid video.Fidelity, class, upto int) (float64, error) {
	v := canaryOf(src)
	if v == nil {
		return 0, fmt.Errorf("plan: fidelity calibration needs a synthetic source with ground truth")
	}
	if upto > len(v.Frames) {
		upto = len(v.Frames)
	}
	if upto <= 0 {
		return 1, nil
	}
	source := src.SourceName()
	stride := fid.NormStride()
	agree := 0
	present := false
	for i := 0; i < upto; i++ {
		if i%stride == 0 {
			present = false
			if dets, ok := pl.opts.Store.GetDets(source, fid.Detector, i); ok {
				for j := range dets {
					if dets[j].Class == class {
						present = true
						break
					}
				}
			}
		}
		truth := false
		for _, o := range v.Frames[i].Objects {
			if int(o.Class) == class {
				truth = true
				break
			}
		}
		if truth == present {
			agree++
		}
	}
	return float64(agree) / float64(upto), nil
}

// fullPerFrameMS returns the live full-fidelity per-frame virtual
// cost — the unit both the residual term of the cost model and the
// live candidate are priced in — profiling the base plan on the canary
// prefix if it has not been profiled yet.
func (pl *Planner) fullPerFrameMS(base *exec.Plan, src video.FrameSource) (float64, error) {
	if base.EstPerFrameMS > 0 {
		return base.EstPerFrameMS, nil
	}
	v := canaryOf(src)
	if v == nil {
		return 0, fmt.Errorf("plan: fidelity cost model needs a synthetic source to profile against")
	}
	if err := pl.ProfileCost(base, v); err != nil {
		return 0, err
	}
	return base.EstPerFrameMS, nil
}

// PlanFidelity builds and decides the fidelity candidate set for
// answering q over frames [0, frames) (frames <= 0 means the whole
// source): the live full-fidelity scan plus every manifest entry whose
// archived records pass a readability probe. Requires Options.Store.
func (pl *Planner) PlanFidelity(q *core.Query, src video.FrameSource, frames int) (*FidelityDecision, *exec.Plan, error) {
	if pl.opts.Store == nil {
		return nil, nil, fmt.Errorf("plan: PlanFidelity requires Options.Store")
	}
	base, sig, err := pl.fidelityPlan(q, src)
	if err != nil {
		return nil, nil, err
	}
	n := frames
	if n <= 0 {
		n = src.NumFrames()
	}
	full, err := pl.fullPerFrameMS(base, src)
	if err != nil {
		return nil, nil, err
	}
	target := pl.opts.MinAccuracy
	if target <= 0 {
		target = 1
	}
	source := src.SourceName()
	d := &FidelityDecision{Source: source, Query: q.Name(), Frames: n, Target: target}
	d.Candidates = append(d.Candidates, FidelityCandidate{
		Key: liveFidelityKey, Detector: sig.Detect, Stride: 1,
		TierAccuracy: 1, Accuracy: 1, CostMS: float64(n) * full, Live: true,
	})
	for _, e := range pl.opts.Store.Fidelities(source) {
		// Readability probe: frame 0 is aligned under every stride, so a
		// healthy tier always answers it. A miss — never written, evicted,
		// or failed by an injected read fault — disqualifies the tier for
		// this decision; the planner degrades to the next-cheapest
		// satisfying candidate instead of betting the query on a broken
		// archive.
		if _, ok := pl.opts.Store.GetScan(source, e.ScanKey, 0); !ok {
			d.SkippedUnreadable = append(d.SkippedUnreadable, e.Key)
			continue
		}
		covered := e.Covered
		if covered > n {
			covered = n
		}
		stride := video.Fidelity{Stride: e.Stride}.NormStride()
		acc := 1.0
		if n > 0 {
			acc = (float64(covered)*e.Accuracy + float64(n-covered)*1.0) / float64(n)
		}
		d.Candidates = append(d.Candidates, FidelityCandidate{
			Key: e.Key, ScanKey: e.ScanKey, Detector: e.Detector,
			Stride: stride, Covered: covered, TierAccuracy: e.Accuracy,
			Accuracy: acc, CostMS: FidelityCostMS(stride, covered, n, full),
		})
	}
	d.Chosen = SelectFidelity(d.Candidates, target)
	if d.Chosen < 0 {
		return nil, nil, fmt.Errorf("plan: no fidelity candidate for query %q", q.Name())
	}
	return d, base, nil
}

// RunFidelity plans and executes q over [0, frames) under the
// session's accuracy floor. A live decision runs the ordinary
// store-backed full pass; a tier decision replays the archive
// (degrading unreadable frames to live invocations, see
// exec.RunFidelityReplay) and expands the stride-aligned verdicts onto
// the full frame axis with the carry-forward rule.
func (pl *Planner) RunFidelity(q *core.Query, src video.FrameSource, frames int) (*FidelityResult, error) {
	d, base, err := pl.PlanFidelity(q, src, frames)
	if err != nil {
		return nil, err
	}
	n := d.Frames
	env := pl.opts.Env
	clockBefore := env.Clock.TotalMS()
	ex, err := exec.NewExecutor(exec.Options{
		Env: env, Registry: pl.opts.Registry, Cache: pl.opts.Cache,
		Store: pl.opts.Store, StoreSource: src.SourceName(),
	})
	if err != nil {
		return nil, err
	}
	out := &FidelityResult{Query: q.Name(), Decision: d}
	chosen := d.ChosenCandidate()
	if chosen.Live {
		r, err := runSearchFull(ex, base, pl.opts.Store, src, n)
		if err != nil {
			return nil, err
		}
		out.Matched, out.Hits = r.Matched, r.Hits
		out.ResidualFrames = n
	} else {
		covered := chosen.Covered
		r, stats, err := ex.RunFidelityReplay(base, src, chosen.ScanKey, chosen.Detector, chosen.Stride, covered, n)
		if err != nil {
			return nil, err
		}
		fid := video.Fidelity{Stride: chosen.Stride}
		aligned := fid.AlignedFrames(covered)
		if want := aligned + (n - covered); len(r.Matched) != want {
			return nil, fmt.Errorf("plan: fidelity replay produced %d verdicts, want %d", len(r.Matched), want)
		}
		matched := make([]bool, n)
		for i := 0; i < covered; i++ {
			matched[i] = r.Matched[i/chosen.Stride]
		}
		for f := covered; f < n; f++ {
			matched[f] = r.Matched[aligned+f-covered]
		}
		out.Matched, out.Hits = matched, r.Hits
		out.ReplayedFrames = stats.ReplayedFrames
		out.DegradedFrames = stats.DegradedFrames
		out.ResidualFrames = stats.ResidualFrames
	}
	out.VirtualMS = env.Clock.TotalMS() - clockBefore
	return out, nil
}
