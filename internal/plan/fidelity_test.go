package plan

// Unit suite for the fidelity cost model (DESIGN.md §12): the chosen
// candidate must always be cost-minimal among the accuracy-satisfying
// ones. A table pins the behaviour over the built-in lattice under
// every interesting (target, coverage) state, and a brute-force
// crosscheck over randomized candidate sets proves SelectFidelity
// equals exhaustive minimization.

import (
	"math/rand"
	"testing"

	"vqpy/internal/exec"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// latticeCandidates prices the built-in lattice for an n-frame query:
// each tier covered to `covered` frames with the given calibrated
// accuracy, plus the live candidate, using the shared cost model.
func latticeCandidates(n, covered int, accs []float64, fullMS float64) []FidelityCandidate {
	lattice := models.FidelityLattice("yolov8m")
	cands := []FidelityCandidate{{
		Key: "live/full", Stride: 1, TierAccuracy: 1, Accuracy: 1,
		CostMS: float64(n) * fullMS, Live: true,
	}}
	for i, fid := range lattice {
		c := covered
		if c > n {
			c = n
		}
		acc := (float64(c)*accs[i] + float64(n-c)) / float64(n)
		cands = append(cands, FidelityCandidate{
			Key: fid.Key(), Detector: fid.Detector, Stride: fid.NormStride(),
			Covered: c, TierAccuracy: accs[i], Accuracy: acc,
			CostMS: FidelityCostMS(fid.NormStride(), c, n, fullMS),
		})
	}
	return cands
}

func TestSelectFidelityLatticeTable(t *testing.T) {
	// Calibrated accuracies per lattice tier, full → cheapest; coarser
	// tiers are less accurate.
	accs := []float64{0.99, 0.97, 0.93, 0.88, 0.82}
	const n = 900
	const fullMS = 25.0

	cases := []struct {
		name    string
		target  float64
		covered int
		want    string // expected chosen key
	}{
		// Full coverage: the cheapest tier meeting the target wins.
		// Same-stride tiers replay the same frame count, so they price
		// identically and the deterministic key tie-break decides.
		{"loose target picks a stride-4 tier", 0.80, n, "s4/half/yolov5s@half"},
		{"mid target drops the quarter tier", 0.85, n, "s4/half/yolov5s@half"},
		{"tight target needs stride 2", 0.90, n, "s2/full/yolov8m"},
		{"tighter target keeps full-res stride2", 0.95, n, "s2/full/yolov8m"},
		{"near-exact target needs the full tier", 0.985, n, "s1/full/yolov8m"},
		// A target of 1 (and the undeclared default) is strict: only
		// live qualifies, whatever is archived.
		{"strict target forces live", 1.0, n, "live/full"},
		// No coverage: every tier's cost degenerates to the pure live
		// scan, so everything ties and the key tie-break keeps the
		// choice stable on the live candidate.
		{"no coverage degenerates to live", 0.80, 0, "live/full"},
		// Partial coverage: residual live frames pull effective accuracy
		// up and cost toward live; a stride-4 tier still wins a loose
		// target.
		{"partial coverage still serves stride 4", 0.80, n / 2, "s4/half/yolov5s@half"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cands := latticeCandidates(n, tc.covered, accs, fullMS)
			got := SelectFidelity(cands, tc.target)
			if got < 0 {
				t.Fatalf("no candidate selected")
			}
			if cands[got].Key != tc.want {
				t.Fatalf("chose %s, want %s", cands[got].Key, tc.want)
			}
			// Invariant behind every row: the winner is cost-minimal among
			// satisfying candidates.
			for _, c := range cands {
				satisfies := c.Live || (tc.target < 1 && c.Accuracy >= tc.target)
				if satisfies && c.CostMS < cands[got].CostMS {
					t.Fatalf("candidate %s (%.2f) cheaper than chosen %s (%.2f)",
						c.Key, c.CostMS, cands[got].Key, cands[got].CostMS)
				}
			}
		})
	}
}

// TestSelectFidelityBruteForce crosschecks SelectFidelity against
// exhaustive minimization over randomized scenarios: random candidate
// sets (random strides, coverage, accuracies, costs priced by the
// shared model) and random targets.
func TestSelectFidelityBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20240912))
	for scenario := 0; scenario < 80; scenario++ {
		n := 100 + rng.Intn(2000)
		fullMS := 5 + rng.Float64()*40
		cands := []FidelityCandidate{{
			Key: "live/full", Stride: 1, TierAccuracy: 1, Accuracy: 1,
			CostMS: float64(n) * fullMS, Live: true,
		}}
		tiers := 1 + rng.Intn(6)
		for i := 0; i < tiers; i++ {
			stride := 1 << rng.Intn(4)
			covered := rng.Intn(n + 1)
			acc := 0.5 + rng.Float64()*0.5
			eff := (float64(covered)*acc + float64(n-covered)) / float64(n)
			cands = append(cands, FidelityCandidate{
				Key:    video.Fidelity{Stride: stride, Res: video.ResTier(rng.Intn(3)), Detector: string(rune('a' + i))}.Key(),
				Stride: stride, Covered: covered, TierAccuracy: acc, Accuracy: eff,
				CostMS: FidelityCostMS(stride, covered, n, fullMS),
			})
		}
		target := 0.6 + rng.Float64()*0.45 // spans past 1.0 to hit the strict rule

		got := SelectFidelity(cands, target)
		want := -1
		for i, c := range cands {
			satisfies := c.Live || (target < 1 && c.Accuracy >= target)
			if !satisfies {
				continue
			}
			if want < 0 || c.CostMS < cands[want].CostMS ||
				(c.CostMS == cands[want].CostMS && c.Key < cands[want].Key) {
				want = i
			}
		}
		if got != want {
			t.Fatalf("scenario %d (target %.3f): SelectFidelity chose %d (%+v), brute force %d (%+v)",
				scenario, target, got, cands[got], want, cands[want])
		}
	}
}

// TestFidelityCostMSMatchesReplayUnit pins the cost model's replay
// unit to the executor's actual per-frame bookkeeping charge — if the
// two drift apart the chosen tier is no longer the cheapest one run.
func TestFidelityCostMSMatchesReplayUnit(t *testing.T) {
	// 10 covered frames at stride 4 → frames 0,4,8 → 3 replays; 5
	// residual frames at 2ms.
	got := FidelityCostMS(4, 10, 15, 2)
	want := 3*exec.FidelityReplayMS + 5*2.0
	if got != want {
		t.Fatalf("FidelityCostMS = %v, want %v", got, want)
	}
	if FidelityCostMS(1, 0, 10, 3) != 30 {
		t.Fatalf("zero coverage should price as pure live scan")
	}
}
