package plan

// This file is the unified logical operator IR every frontend compiles
// into — the object-oriented core.Query API (with its event
// combinators), sqlbase SELECTs over video tables, and the CLI all
// produce the same representation:
//
//	Scan(source) → FrameFilter* → Detect → Track → Prop* → Filter* → Output
//
// wrapped in a combinator tree (QueryIR) for duration/temporal events.
// A compiled workload can then be executed two ways by the physical
// layer:
//
//   - per query (executeIR): each basic pipeline scans the video itself,
//     the pre-shared-scan behaviour that RunAll parallelizes;
//   - shared scan (RunShared): exec.MuxStream groups pipelines whose
//     scan prefixes are structurally identical — same frame-filter
//     chain, same detector, same source (exec.ScanPrefixOf keys) — and
//     runs each group's scan/detect/track exactly once per frame,
//     fanning results out to every member query. DedupScans exposes the
//     same partition at the logical layer for analysis and explain.
//
// Results are identical either way; only the amount of scan work and its
// ledger attribution change.

import (
	"fmt"
	"math"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/video"
)

// IRKind discriminates QueryIR nodes.
type IRKind int

// QueryIR node kinds: a basic pipeline leaf, an event combinator, an
// index-probe leaf (archive search), or a lazy verification stage (text
// queries).
const (
	IRBasic IRKind = iota
	IRDuration
	IRTemporal
	IRIndexProbe
	IRVerify
)

// ProbeIR is the compiled form of an archive search: probe the
// appearance index for tracks of Class whose embedding matches
// FeatureRef at Threshold (keeping the TopK best after verification),
// then verify only the frames those tracks span through the wrapped
// basic pipeline. Verify is the pipeline that would answer the query by
// full scan; the probe leaf is purely an access-path choice — executing
// Verify over every frame yields bit-identical results, which the
// crosscheck machinery (Search's probe-vs-full comparison) proves.
type ProbeIR struct {
	// Class is the tracked class the index was extracted for.
	Class int
	// FeatureRef is the exemplar appearance embedding being searched.
	FeatureRef []float64
	// Threshold is the cosine-similarity match bar.
	Threshold float64
	// TopK keeps the K most similar verified tracks; 0 keeps all.
	TopK int
	// Verify is the underlying basic pipeline (compiled with
	// DisableMemo, see Search) used to confirm candidate frames.
	Verify *BasicIR
}

// VerifyIR is the compiled form of a text query's open-vocabulary
// remainder (DESIGN.md §13): the concept conjunction the cheap cascade
// cannot decide, answered by the named ConceptModel. The wrapped basic
// pipeline's verdicts are the stage's input; under the conjunction a
// frame the cascade ruled out is decided (false) without consulting the
// model, which is the undecided-frame semantics that makes lazy
// invocation exact — only cascade-matched frames are undecided.
// Execution lives in RunText / exec.RunVerify; the eager every-frame
// mode exists purely as the parity baseline.
type VerifyIR struct {
	// Model names the registered ConceptModel (models.VLMModelName by
	// default).
	Model string
	// Class is the object class the question binds; Concepts the
	// normalized concept conjunction.
	Class    video.Class
	Concepts []string
	// Basic is the cheap-cascade pipeline whose verdicts gate the
	// model (also reachable as the node's only child).
	Basic *BasicIR
}

// BasicIR is the compiled logical pipeline of one basic (or merged
// spatial) query: the validated logical query plus the physical plan the
// optimizer selected for it. The plan's step list is the linearized
// Scan→Detect→Track→Prop→Filter chain; exec.ScanPrefixOf recovers the
// shareable scan prefix from it.
type BasicIR struct {
	Query *core.Query
	Plan  *exec.Plan
}

// QueryIR is the compiled form of any frontend query node: a combinator
// tree whose leaves are basic pipelines.
type QueryIR struct {
	Name string
	Kind IRKind

	// Basic is set for IRBasic leaves.
	Basic *BasicIR

	// Probe is set for IRIndexProbe leaves.
	Probe *ProbeIR

	// Verify is set for IRVerify nodes (compiled text queries).
	Verify *VerifyIR

	// MinSeconds (IRDuration) / WindowSeconds (IRTemporal) carry the
	// combinator parameters.
	MinSeconds    float64
	WindowSeconds float64

	// Children holds the base pipeline(s) of combinator nodes.
	Children []*QueryIR
}

// Leaves appends the tree's basic pipelines to out in execution order.
func (ir *QueryIR) Leaves(out []*BasicIR) []*BasicIR {
	if ir.Kind == IRBasic {
		return append(out, ir.Basic)
	}
	for _, c := range ir.Children {
		out = c.Leaves(out)
	}
	return out
}

// CompileNode compiles a frontend query node into the IR. Basic leaves
// are planned (and, when canary is non-nil, canary-profiled) by the
// candidate machinery of PlanBasic; spatial queries are lowered to
// merged basic queries first.
func (pl *Planner) CompileNode(node core.QueryNode, canary *video.Video) (*QueryIR, error) {
	switch n := node.(type) {
	case *core.Query:
		return pl.compileBasic(n, n.Name(), canary)
	case *core.SpatialQuery:
		merged, err := MergeSpatial(n)
		if err != nil {
			return nil, err
		}
		return pl.compileBasic(merged, n.NodeName(), canary)
	case *core.DurationQuery:
		base, err := pl.CompileNode(n.Base, canary)
		if err != nil {
			return nil, err
		}
		return &QueryIR{
			Name: n.NodeName(), Kind: IRDuration,
			MinSeconds: n.MinSeconds, Children: []*QueryIR{base},
		}, nil
	case *core.TemporalQuery:
		first, err := pl.CompileNode(n.First, canary)
		if err != nil {
			return nil, err
		}
		second, err := pl.CompileNode(n.Second, canary)
		if err != nil {
			return nil, err
		}
		return &QueryIR{
			Name: n.NodeName(), Kind: IRTemporal,
			WindowSeconds: n.WindowSeconds, Children: []*QueryIR{first, second},
		}, nil
	}
	return nil, fmt.Errorf("plan: unknown query node %T", node)
}

func (pl *Planner) compileBasic(q *core.Query, name string, canary *video.Video) (*QueryIR, error) {
	p, _, err := pl.PlanBasic(q, canary)
	if err != nil {
		return nil, err
	}
	return &QueryIR{Name: name, Kind: IRBasic, Basic: &BasicIR{Query: q, Plan: p}}, nil
}

// executeIR runs a compiled node per query — every basic leaf performs
// its own scan of the video — and combines leaf results with the event
// semantics of §3. This is the physical strategy behind Run and RunAll.
func (pl *Planner) executeIR(ir *QueryIR, v *video.Video) (*RunResult, error) {
	leaves := ir.Leaves(nil)
	leafRes := make(map[*BasicIR]*exec.Result, len(leaves))
	for _, leaf := range leaves {
		ex, err := exec.NewExecutor(exec.Options{
			Env: pl.opts.Env, Registry: pl.opts.Registry, Cache: pl.opts.Cache,
			Store: pl.opts.Store, StoreSource: v.Name,
		})
		if err != nil {
			return nil, err
		}
		res, err := ex.Run(leaf.Plan, v)
		if err != nil {
			return nil, err
		}
		leafRes[leaf] = res
	}
	return assembleIR(ir, leafRes, v.FPS), nil
}

// assembleIR folds per-leaf executor results back up the combinator
// tree. It is shared by the per-query and shared-scan strategies, which
// is what makes them interchangeable: the physical layer only ever
// produces leaf results.
func assembleIR(ir *QueryIR, leafRes map[*BasicIR]*exec.Result, fps int) *RunResult {
	switch ir.Kind {
	case IRBasic:
		res := leafRes[ir.Basic]
		return &RunResult{
			Name: ir.Name, Matched: res.Matched, Events: exec.EventsOf(res.Matched),
			FPS: fps, Basic: res, Plans: []*exec.Plan{ir.Basic.Plan}, VirtualMS: res.VirtualMS,
		}
	case IRDuration:
		base := assembleIR(ir.Children[0], leafRes, fps)
		minFrames := int(math.Ceil(ir.MinSeconds * float64(fps)))
		matched, events := exec.Duration(base.Matched, minFrames)
		return &RunResult{
			Name: ir.Name, Matched: matched, Events: events, FPS: fps,
			Plans: base.Plans, VirtualMS: base.VirtualMS,
		}
	case IRTemporal:
		first := assembleIR(ir.Children[0], leafRes, fps)
		second := assembleIR(ir.Children[1], leafRes, fps)
		window := int(math.Ceil(ir.WindowSeconds * float64(fps)))
		matched, events := exec.Sequence(first.Matched, second.Matched, window)
		return &RunResult{
			Name: ir.Name, Matched: matched, Events: events, FPS: fps,
			Plans:     append(append([]*exec.Plan{}, first.Plans...), second.Plans...),
			VirtualMS: first.VirtualMS + second.VirtualMS,
		}
	}
	return nil
}

// ScanShare describes one group produced by the cross-query dedup pass:
// the scan prefix (filter chain + detector), the classes tracked under
// it, and the queries it serves. One ScanShare lowers to one shared
// filter/detect/track operator set in the MuxStream.
type ScanShare struct {
	// Filters is the ordered frame-filter chain of the shared prefix.
	Filters []string
	// Detect is the shared detector model; empty for pipelines that
	// cannot share their scan (scene-first, edge-placed).
	Detect string
	// Classes lists the object classes tracked under the shared scan,
	// sorted.
	Classes []video.Class
	// Queries names the member pipelines, in workload order.
	Queries []string
}

// canaryOf recovers a materialized video from a frame source for canary
// profiling and result-cache fingerprints. Both simulation sources can
// materialize; a live source would return nil and skip profiling.
func canaryOf(src video.FrameSource) *video.Video {
	switch s := src.(type) {
	case *video.Video:
		return s
	case *video.ScenarioSource:
		return s.Video()
	}
	return nil
}

// RunShared plans and executes every query node over one frame source in
// a single shared pass: all nodes are compiled to the IR and
// exec.MuxStream multiplexes every basic pipeline over one frame
// stream, deduplicating structurally identical scan prefixes (the
// DedupScans partition) into shared operators. Results align
// positionally with nodes and are identical to running the nodes
// sequentially (per-query virtual-time attribution shifts: shared scan
// costs are split across the queries riding them).
func (pl *Planner) RunShared(nodes []core.QueryNode, src video.FrameSource) ([]*RunResult, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	opts := pl.opts
	if opts.Cache == nil {
		opts.Cache = exec.NewSharedCache()
	}
	inner := &Planner{opts: opts}

	canary := canaryOf(src)
	results := make([]*RunResult, len(nodes))
	irs := make([]*QueryIR, len(nodes))
	var pending []int
	for i, node := range nodes {
		if opts.ResultCache != nil && canary != nil {
			if r, ok := opts.ResultCache.Get(Fingerprint(node, canary)); ok {
				results[i] = r
				continue
			}
		}
		ir, err := inner.CompileNode(node, canary)
		if err != nil {
			return nil, fmt.Errorf("plan: query %s: %w", node.NodeName(), err)
		}
		irs[i] = ir
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return results, nil
	}

	var leaves []*BasicIR
	for _, i := range pending {
		leaves = irs[i].Leaves(leaves)
	}
	plans := make([]*exec.Plan, len(leaves))
	for j, leaf := range leaves {
		plans[j] = leaf.Plan
	}
	ex, err := exec.NewExecutor(exec.Options{
		Env: opts.Env, Registry: opts.Registry, Cache: opts.Cache,
		Store: opts.Store, StoreSource: src.SourceName(),
	})
	if err != nil {
		return nil, err
	}
	execRes, err := ex.RunMux(plans, src)
	if err != nil {
		return nil, err
	}
	leafRes := make(map[*BasicIR]*exec.Result, len(leaves))
	for j, leaf := range leaves {
		leafRes[leaf] = execRes[j]
	}

	fps := src.SourceFPS()
	for _, i := range pending {
		r := assembleIR(irs[i], leafRes, fps)
		if opts.ResultCache != nil && canary != nil {
			opts.ResultCache.Put(Fingerprint(nodes[i], canary), r)
		}
		results[i] = r
	}
	return results, nil
}
