package plan

import (
	"reflect"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// compileLeaves compiles every node without a canary (deterministic
// most-general plans) and returns the flattened basic pipelines.
func compileLeaves(t *testing.T, pl *Planner, nodes ...core.QueryNode) []*BasicIR {
	t.Helper()
	var leaves []*BasicIR
	for _, n := range nodes {
		ir, err := pl.CompileNode(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		leaves = ir.Leaves(leaves)
	}
	return leaves
}

func scoreQuery(name, inst string, ct *core.VObjType) *core.Query {
	return core.NewQuery(name).
		Use(inst, ct).
		Where(core.P(inst, core.PropScore).Gt(0.5))
}

// TestDedupScans is the cross-query optimizer contract: structurally
// identical scan prefixes merge into one Detect node; differing frame
// filters or detectors keep scans apart.
func TestDedupScans(t *testing.T) {
	personType := func() *core.VObjType {
		return core.NewVObj("Person", video.ClassPerson).Detector("yolox")
	}
	diffCar := func() *core.VObjType {
		return carType().Extend("DiffCar").RegisterFrameFilter("motion_diff", 1)
	}
	cheapCar := func() *core.VObjType {
		return core.NewVObj("CheapCar", video.ClassCar).Detector("yolov5s")
	}

	cases := []struct {
		name    string
		nodes   func() []core.QueryNode
		groups  int
		members []int // queries per group, workload order
	}{
		{
			name: "same detector merges",
			nodes: func() []core.QueryNode {
				return []core.QueryNode{
					scoreQuery("A", "car", carType()),
					scoreQuery("B", "car", carType()),
				}
			},
			groups: 1, members: []int{2},
		},
		{
			name: "differing frame filters prevent merging",
			nodes: func() []core.QueryNode {
				return []core.QueryNode{
					scoreQuery("Plain", "car", carType()),
					scoreQuery("Diffed", "car", diffCar()),
				}
			},
			groups: 2, members: []int{1, 1},
		},
		{
			name: "identical frame filters merge",
			nodes: func() []core.QueryNode {
				return []core.QueryNode{
					scoreQuery("DiffA", "car", diffCar()),
					scoreQuery("DiffB", "car", diffCar()),
				}
			},
			groups: 1, members: []int{2},
		},
		{
			name: "different detectors stay apart",
			nodes: func() []core.QueryNode {
				return []core.QueryNode{
					scoreQuery("Strong", "car", carType()),
					scoreQuery("Cheap", "car", cheapCar()),
				}
			},
			groups: 2, members: []int{1, 1},
		},
		{
			name: "different classes of one detector share the scan",
			nodes: func() []core.QueryNode {
				return []core.QueryNode{
					scoreQuery("Cars", "car", carType()),
					scoreQuery("People", "p", personType()),
				}
			},
			groups: 1, members: []int{2},
		},
		{
			name: "combinator leaves participate",
			nodes: func() []core.QueryNode {
				dur, _ := core.NewDurationQuery("Long", scoreQuery("Base", "car", carType()), 2)
				return []core.QueryNode{
					scoreQuery("Plain", "car", carType()),
					dur,
				}
			},
			groups: 1, members: []int{2},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := testPlanner(t, nil)
			leaves := compileLeaves(t, pl, tc.nodes()...)
			shares := DedupScans(leaves)
			if len(shares) != tc.groups {
				t.Fatalf("groups = %d, want %d: %+v", len(shares), tc.groups, shares)
			}
			for i, want := range tc.members {
				if got := len(shares[i].Queries); got != want {
					t.Errorf("group %d members = %d (%v), want %d", i, got, shares[i].Queries, want)
				}
			}
		})
	}
}

// TestDedupScansClasses checks that one shared scan tracks each bound
// class exactly once.
func TestDedupScansClasses(t *testing.T) {
	pl := testPlanner(t, nil)
	personType := core.NewVObj("Person", video.ClassPerson).Detector("yolox")
	leaves := compileLeaves(t, pl,
		scoreQuery("Cars", "car", carType()),
		scoreQuery("People", "p", personType),
		scoreQuery("MoreCars", "car", carType()),
	)
	shares := DedupScans(leaves)
	if len(shares) != 1 {
		t.Fatalf("groups = %d, want 1", len(shares))
	}
	want := []video.Class{video.ClassPerson, video.ClassCar}
	if video.ClassCar < video.ClassPerson {
		want = []video.Class{video.ClassCar, video.ClassPerson}
	}
	if !reflect.DeepEqual(shares[0].Classes, want) {
		t.Errorf("classes = %v, want %v", shares[0].Classes, want)
	}
	if shares[0].Detect != "yolox" {
		t.Errorf("detect = %q, want yolox", shares[0].Detect)
	}
}

// TestDedupScansMatchesMuxGroups pins the logical dedup view to the
// physical grouping the MuxStream actually builds: same group count,
// same member counts, in the same workload order.
func TestDedupScansMatchesMuxGroups(t *testing.T) {
	pl := testPlanner(t, nil)
	personType := core.NewVObj("Person", video.ClassPerson).Detector("yolox")
	diffCar := carType().Extend("DiffCar").RegisterFrameFilter("motion_diff", 1)
	cheapCar := core.NewVObj("CheapCar", video.ClassCar).Detector("yolov5s")
	leaves := compileLeaves(t, pl,
		scoreQuery("Cars", "car", carType()),
		scoreQuery("People", "p", personType),
		scoreQuery("Diffed", "car", diffCar),
		scoreQuery("Cheap", "car", cheapCar),
		scoreQuery("MoreCars", "car", carType()),
	)
	shares := DedupScans(leaves)

	plans := make([]*exec.Plan, len(leaves))
	for i, leaf := range leaves {
		plans[i] = leaf.Plan
	}
	ex, err := exec.NewExecutor(exec.Options{Env: testEnv(), Registry: models.BuiltinRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ex.OpenMux(plans, 30)
	if err != nil {
		t.Fatal(err)
	}
	var logical []int
	for _, s := range shares {
		if s.Detect != "" { // shareable groups only; mux tracks no others
			logical = append(logical, len(s.Queries))
		}
	}
	if got := m.GroupMembers(); !reflect.DeepEqual(got, logical) {
		t.Errorf("logical dedup %v diverges from mux grouping %v", logical, got)
	}
}

// TestRunSharedMatchesRunAll checks the full plan-level path: compile →
// dedup → mux produces results identical to the sequential per-query
// strategy, including through event combinators.
func TestRunSharedMatchesRunAll(t *testing.T) {
	v := video.CityFlow(42, 30).Generate()

	build := func() []core.QueryNode {
		red := redCarQuery(carType())
		blue := core.NewQuery("BlueCar").
			Use("car", carType()).
			Where(core.And(
				core.P("car", core.PropScore).Gt(0.5),
				core.P("car", "color").Eq("blue"),
			)).
			CountDistinct("car")
		dur, err := core.NewDurationQuery("RedAWhile", redCarQuery(carType()), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return []core.QueryNode{red, blue, dur}
	}

	seqPl := testPlanner(t, nil)
	seq, err := seqPl.RunAll(build(), v, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharedPl := testPlanner(t, nil)
	shared, err := sharedPl.RunShared(build(), v)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(shared) {
		t.Fatalf("%d vs %d results", len(seq), len(shared))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Matched, shared[i].Matched) {
			t.Errorf("query %d (%s): matched differs", i, seq[i].Name)
		}
		if !reflect.DeepEqual(seq[i].Events, shared[i].Events) {
			t.Errorf("query %d (%s): events differ", i, seq[i].Name)
		}
		sb, hb := seq[i].Basic, shared[i].Basic
		if (sb == nil) != (hb == nil) {
			t.Fatalf("query %d: basic result presence differs", i)
		}
		if sb != nil {
			if !reflect.DeepEqual(sb.Hits, hb.Hits) {
				t.Errorf("query %d (%s): hits differ", i, seq[i].Name)
			}
			if sb.Count != hb.Count || !reflect.DeepEqual(sb.TrackIDs, hb.TrackIDs) {
				t.Errorf("query %d (%s): aggregation differs", i, seq[i].Name)
			}
		}
	}
}

// TestRunSharedScenarioSource runs the shared path against the lazily
// materializing scenario source.
func TestRunSharedScenarioSource(t *testing.T) {
	src := video.NewScenarioSource(video.CityFlow(42, 20))
	pl := testPlanner(t, nil)
	res, err := pl.RunShared([]core.QueryNode{redCarQuery(carType())}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Matched) != src.NumFrames() {
		t.Fatalf("unexpected result shape: %d results", len(res))
	}
	// Same query over the materialized video must agree.
	pl2 := testPlanner(t, nil)
	direct, err := pl2.Run(redCarQuery(carType()), src.Video())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Matched, res[0].Matched) {
		t.Error("scenario source and materialized video disagree")
	}
}
