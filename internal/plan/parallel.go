package plan

// This file lifts exec.RunAll's worker-pool scheduling to whole query
// nodes: planning (canary profiling included) and execution of each node
// happen inside one worker, so higher-order nodes (duration, temporal)
// recurse entirely within their worker while every basic component of
// every node shares one cross-query cache. This is the multi-query
// serving entry point the Session facade exposes as ExecuteAll.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/video"
)

// RunAll plans and executes every query node over the video on a pool of
// `workers` goroutines. All nodes share one SharedCache (the planner's
// configured cache, or a fresh one for this call), so common detector
// and classifier work is computed once regardless of which worker needs
// it first. Each worker charges a forked virtual clock; forks are merged
// into the session clock before returning, keeping ledger totals
// worker-count independent.
//
// Results align positionally with nodes and are identical to running the
// nodes sequentially in order (hits, counts, track IDs — virtual-time
// attribution per query may shift, since the single-flight guard decides
// who pays shared model costs).
//
// workers <= 0 uses GOMAXPROCS; workers == 1 runs sequentially on the
// caller's goroutine.
func (pl *Planner) RunAll(nodes []core.QueryNode, v *video.Video, workers int) ([]*RunResult, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	opts := pl.opts
	if opts.Cache == nil {
		opts.Cache = exec.NewSharedCache()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}

	results := make([]*RunResult, len(nodes))

	// Materialized-result reuse (§4.2) applies per node; only misses
	// are scheduled.
	var pending []int
	for i, node := range nodes {
		if opts.ResultCache != nil {
			if r, ok := opts.ResultCache.Get(Fingerprint(node, v)); ok {
				results[i] = r
				continue
			}
		}
		pending = append(pending, i)
	}

	runOne := func(inner *Planner, i int) error {
		r, err := inner.runNode(nodes[i], v)
		if err != nil {
			return fmt.Errorf("plan: query %s: %w", nodes[i].NodeName(), err)
		}
		if opts.ResultCache != nil {
			opts.ResultCache.Put(Fingerprint(nodes[i], v), r)
		}
		results[i] = r
		return nil
	}

	if workers == 1 || len(pending) <= 1 {
		inner := &Planner{opts: opts}
		for _, i := range pending {
			if err := runOne(inner, i); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	jobs := make(chan int)
	errs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wopts := opts
			wopts.Env = opts.Env.Fork()
			defer opts.Env.Clock.Merge(wopts.Env.Clock)
			inner := &Planner{opts: wopts}
			for i := range jobs {
				if failed.Load() {
					continue // drain remaining jobs after a failure
				}
				if err := runOne(inner, i); err != nil {
					errs[w] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	for _, i := range pending {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
