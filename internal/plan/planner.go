// Package plan implements the paper's query planner (§4.1, §4.3): it
// compiles a logical query into alternative physical operator DAGs
// (general detector + property filter vs. registered specialized NNs;
// with or without binary-classifier frame filters; alternative instance
// orderings), performs predicate pull-up (cheap, selective filters run
// before expensive models) and operator fusion, profiles every candidate
// on a short canary prefix of the input (cost from the virtual clock, F1
// against the most-general plan's labels), selects the cheapest plan
// meeting the accuracy target, and caches the decision for future runs.
//
// The package also provides the top-level Run entry point that executes
// arbitrary query nodes, combining basic-plan results with the event
// combinators behind DurationQuery, SpatialQuery and TemporalQuery.
package plan

import (
	"fmt"
	"math"
	"sort"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/index"
	"vqpy/internal/models"
	"vqpy/internal/store"
	"vqpy/internal/video"
)

// Options configures planning and execution.
type Options struct {
	// Env and Registry are required.
	Env      *models.Env
	Registry *models.Registry

	// BatchSize is the executor batch width (default 8).
	BatchSize int

	// AccuracyTarget is the minimum canary F1 (vs. the most general
	// plan) an optimized candidate must reach to be selected
	// (default 0.9).
	AccuracyTarget float64

	// CanaryFrames is the profiling prefix length (default 60).
	CanaryFrames int

	// DisableMemo turns off intrinsic memoization — the "vanilla VQPy"
	// configuration of §5.1.
	DisableMemo bool

	// DisableFrameFilters suppresses registered binary-classifier and
	// differencing frame filters — the EVA-fair configuration of §5.2.
	DisableFrameFilters bool

	// DisableSpecialized suppresses registered specialized NNs.
	DisableSpecialized bool

	// DisableFusion suppresses operator fusion.
	DisableFusion bool

	// DisableLazy computes every needed property before any filter —
	// an ablation approximating run-everything pipelines.
	DisableLazy bool

	// Cache enables query-level computation reuse across executions.
	Cache *exec.SharedCache

	// PlanCache reuses previously selected plans ("saved for future
	// queries on similar datasets", §4.3).
	PlanCache *PlanCache

	// EdgeUplinkMS enables §4.1 device placement: operators before the
	// first detector (frame filters, the scene path) are placed on the
	// edge device, the rest on the server, and every frame surviving
	// the edge prefix is charged this transfer cost. 0 disables
	// placement.
	EdgeUplinkMS float64

	// ResultCache materializes whole query results for reuse across
	// repeated executions on the same video (§4.2's query-level reuse,
	// final-result flavour).
	ResultCache *ResultCache

	// Store enables the tiered persistent result store (internal/store):
	// detector outputs, shared-scan track ids and evaluated property
	// values are consulted before invoking a model and persisted on
	// miss, carrying reuse across processes. Execution executors are
	// bound to it with the video's source name; profiling executors
	// never see it, so plan selection is independent of what happens to
	// be persisted.
	Store *store.Store

	// Index enables the archive-scale appearance index (internal/index):
	// Search probes it for candidate tracks and verifies only the frames
	// they span, falling back to a full rescan of any range the index
	// does not cover. Requires Store — the index is an acceleration
	// structure over archived records, never a source of truth.
	Index *index.Index

	// MinAccuracy is the accuracy floor a fidelity-served query declares
	// (DESIGN.md §12): RunFidelity answers from the cheapest archived
	// fidelity whose calibrated accuracy meets it, live-scanning only the
	// residual. 0 means no budget was declared and is treated as 1.0 —
	// strict answers, so fidelity serving is opt-in per query.
	MinAccuracy float64
}

func (o Options) withDefaults() Options {
	if o.BatchSize == 0 {
		o.BatchSize = 8
	}
	if o.AccuracyTarget == 0 {
		o.AccuracyTarget = 0.9
	}
	if o.CanaryFrames == 0 {
		o.CanaryFrames = 60
	}
	return o
}

// Planner compiles queries into physical plans.
type Planner struct {
	opts Options
}

// NewPlanner returns a planner. Env and Registry are required.
func NewPlanner(opts Options) (*Planner, error) {
	if opts.Env == nil || opts.Registry == nil {
		return nil, fmt.Errorf("plan: Env and Registry are required")
	}
	return &Planner{opts: opts.withDefaults()}, nil
}

// instancePlan captures the per-instance choices of one candidate.
type instancePlan struct {
	instance string
	vtype    *core.VObjType
	detector string
	// specializedColor is the color baked into a chosen specialized
	// detector (satisfying the matching conjunct for free).
	specializedColor video.Color
	frameFilters     []string
}

// candidate is one fully specified plan alternative.
type candidate struct {
	label     string
	order     []instancePlan
	diffFilts []core.FrameFilterReg
}

// PlanBasic compiles a basic (or merged spatial) query. When canary is
// non-nil and more than one candidate exists, candidates are profiled on
// the canary prefix and the cheapest one meeting the accuracy target is
// returned; otherwise the single default plan is returned unprofiled.
// The returned slice holds every candidate (with profiling annotations)
// for explanation tools.
func (pl *Planner) PlanBasic(q *core.Query, canary *video.Video) (*exec.Plan, []*exec.Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	if pl.opts.PlanCache != nil && canary != nil {
		if p, ok := pl.opts.PlanCache.Get(q.Name(), canary.Name); ok {
			return p, []*exec.Plan{p}, nil
		}
	}
	cands, err := pl.candidates(q)
	if err != nil {
		return nil, nil, err
	}
	plans := make([]*exec.Plan, 0, len(cands))
	for _, c := range cands {
		p, err := pl.build(q, c)
		if err != nil {
			return nil, nil, err
		}
		plans = append(plans, p)
	}
	best := plans[0]
	if canary != nil && len(plans) > 1 {
		best, err = pl.selectByProfile(plans, canary)
		if err != nil {
			return nil, nil, err
		}
	}
	if pl.opts.PlanCache != nil && canary != nil {
		pl.opts.PlanCache.Put(q.Name(), canary.Name, best)
	}
	return best, plans, nil
}

// candidates enumerates plan alternatives (§4.3's "generating and
// comparing alternative optimization paths based on the inheritance
// relationships between video objects"). The first candidate is always
// the most general plan, which doubles as the accuracy reference.
func (pl *Planner) candidates(q *core.Query) ([]candidate, error) {
	insts := q.InstanceNames()
	types := q.Instances()

	// Per-instance alternatives: the general detector, plus each
	// registered specialized NN whose color gate matches a conjunct.
	perInst := make([][]instancePlan, len(insts))
	for i, name := range insts {
		t := types[name]
		if t.Name() == "Scene" {
			perInst[i] = []instancePlan{{instance: name, vtype: t, detector: ""}}
			continue
		}
		general := instancePlan{instance: name, vtype: t, detector: t.DetectorName()}
		alts := []instancePlan{general}
		if !pl.opts.DisableSpecialized {
			for _, nn := range t.SpecializedNNs() {
				prof, ok := models.ProfileOf(nn)
				if !ok {
					if m, found := pl.opts.Registry.Get(nn); found {
						if sd, isSim := m.(*models.SimDetector); isSim {
							prof, ok = sd.P, true
						}
					}
				}
				if !ok {
					continue
				}
				alts = append(alts, instancePlan{
					instance: name, vtype: t, detector: nn,
					specializedColor: prof.ColorFilter,
				})
			}
		}
		if !pl.opts.DisableFrameFilters {
			// Each alternative also appears with the registered binary
			// filters prepended.
			if filts := t.Filters(); len(filts) > 0 {
				n := len(alts)
				for j := 0; j < n; j++ {
					withF := alts[j]
					withF.frameFilters = filts
					alts = append(alts, withF)
				}
			}
		}
		perInst[i] = alts
	}

	// Differencing frame filters registered on any instance (usually
	// the Scene VObj).
	var diffs []core.FrameFilterReg
	if !pl.opts.DisableFrameFilters {
		for _, name := range insts {
			diffs = append(diffs, types[name].FrameFilters()...)
		}
	}

	// Cartesian product of per-instance alternatives.
	var combos [][]instancePlan
	var build func(i int, cur []instancePlan)
	build = func(i int, cur []instancePlan) {
		if i == len(perInst) {
			combo := make([]instancePlan, len(cur))
			copy(combo, cur)
			combos = append(combos, combo)
			return
		}
		for _, alt := range perInst[i] {
			build(i+1, append(cur, alt))
		}
	}
	build(0, nil)

	// Instance orderings: both orders for two-instance queries (which
	// path filters frames first), natural order otherwise.
	var cands []candidate
	for ci, combo := range combos {
		orders := [][]instancePlan{combo}
		if len(combo) == 2 {
			orders = append(orders, []instancePlan{combo[1], combo[0]})
		}
		for oi, ord := range orders {
			label := fmt.Sprintf("c%d", ci)
			if oi > 0 {
				label += "r"
			}
			for _, ip := range ord {
				if ip.specializedColor != video.ColorNone {
					label += "+spec:" + ip.instance
				}
				if len(ip.frameFilters) > 0 {
					label += "+filt:" + ip.instance
				}
			}
			withDiff := candidate{label: label, order: ord}
			if len(diffs) > 0 {
				withDiff.diffFilts = diffs
				withDiff.label += "+diff"
			}
			cands = append(cands, withDiff)
			if len(diffs) > 0 {
				// Also keep the variant without the diff filter.
				cands = append(cands, candidate{label: label, order: ord})
			}
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("plan: no candidates for query %s", q.Name())
	}
	return cands, nil
}

// conjunctInfo classifies one conjunct of the frame constraint.
type conjunctInfo struct {
	pred      core.Pred
	instances map[string]bool
	relations map[string]bool
	props     []core.PropRef
	costMS    float64 // cost of the non-builtin props it needs
}

func (pl *Planner) classifyConjuncts(q *core.Query, pred core.Pred) []conjunctInfo {
	var out []conjunctInfo
	types := q.Instances()
	for _, c := range core.ConjunctsOf(pred) {
		props, rels := core.RefsOf(c)
		info := conjunctInfo{
			pred:      c,
			instances: map[string]bool{},
			relations: map[string]bool{},
			props:     props,
		}
		for _, p := range props {
			info.instances[p.Instance] = true
			if t, ok := types[p.Instance]; ok {
				info.costMS += pl.propCost(t, p.Prop, map[string]bool{})
			}
		}
		for _, r := range rels {
			info.relations[r.Relation] = true
		}
		out = append(out, info)
	}
	return out
}

// propCost estimates the virtual cost of computing a property including
// its dependency closure.
func (pl *Planner) propCost(t *core.VObjType, name string, seen map[string]bool) float64 {
	if core.IsBuiltinProp(name) || seen[name] {
		return 0
	}
	seen[name] = true
	p, ok := t.Prop(name)
	if !ok || p == nil {
		return 0
	}
	cost := p.CostHintMS
	if p.Model != "" {
		if prof, found := models.ProfileOf(p.Model); found {
			cost = prof.CostMS
		} else {
			cost = 5 // unknown custom model: assume classifier-scale
		}
	}
	for _, dep := range p.DependsOn {
		cost += pl.propCost(t, dep, seen)
	}
	return cost
}

// build assembles the physical plan for one candidate, applying
// predicate pull-up (filters as early as their inputs allow, cheapest
// property groups first — the lazy evaluation of §5.1) and operator
// fusion.
func (pl *Planner) build(q *core.Query, c candidate) (*exec.Plan, error) {
	types := q.Instances()
	conjuncts := pl.classifyConjuncts(q, q.FrameConstraint())
	videoConjuncts := pl.classifyConjuncts(q, q.VideoConstraint())
	outputSels := q.FrameOutputSelectors()
	relBindings := q.Relations()

	conjunctive := true // top-level And of single-instance/relation conjuncts
	for _, info := range conjuncts {
		if len(info.instances) > 1 && len(info.relations) == 0 {
			conjunctive = conjunctive && false
		}
	}

	var steps []exec.Step

	// Differencing frame filters first (cheapest, frame-level).
	for _, d := range c.diffFilts {
		steps = append(steps, exec.Step{Kind: exec.StepFrameFilter, FilterModel: d.Model})
	}

	// Consumed conjuncts (satisfied by a specialized detector).
	consumed := map[int]bool{}

	// Scene instances run first: their constraints are background
	// properties (day/night) that act as frame filters for every
	// later, more expensive path.
	order := make([]instancePlan, 0, len(c.order))
	for _, ip := range c.order {
		if types[ip.instance].Name() == "Scene" {
			order = append(order, ip)
		}
	}
	for _, ip := range c.order {
		if types[ip.instance].Name() != "Scene" {
			order = append(order, ip)
		}
	}

	for _, ip := range order {
		inst := ip.instance
		t := types[inst]
		isScene := t.Name() == "Scene"

		// Binary-classifier frame filters for this instance.
		for _, f := range ip.frameFilters {
			steps = append(steps, exec.Step{Kind: exec.StepFrameFilter, FilterModel: f})
		}

		if isScene {
			steps = append(steps, exec.Step{Kind: exec.StepScene, Instance: inst})
		} else {
			// Detect + track.
			steps = append(steps, exec.Step{
				Kind: exec.StepDetect, DetectModel: ip.detector,
				Binds: []exec.InstanceBind{{Instance: inst, Class: t.Class()}},
			})
			steps = append(steps, exec.Step{Kind: exec.StepTrack, Instance: inst})
		}

		// Gather this instance's conjuncts, cheapest property groups
		// first; a specialized detector's color gate satisfies the
		// matching color conjunct for free.
		var mine []int
		for i, info := range conjuncts {
			if len(info.instances) == 1 && info.instances[inst] && len(info.relations) == 0 {
				if ip.specializedColor != video.ColorNone && conjunctSatisfiedByColorGate(info.pred, inst, ip.specializedColor) {
					consumed[i] = true
					continue
				}
				mine = append(mine, i)
			}
		}
		sort.SliceStable(mine, func(a, b int) bool {
			return conjuncts[mine[a]].costMS < conjuncts[mine[b]].costMS
		})

		projected := map[string]bool{}
		project := func(prop string) {
			pl.appendProjections(&steps, t, inst, prop, projected)
		}

		if pl.opts.DisableLazy {
			// Ablation: project everything needed first, filter last.
			for _, ci := range mine {
				for _, ref := range conjuncts[ci].props {
					project(ref.Prop)
				}
			}
			for _, ci := range mine {
				steps = append(steps, exec.Step{Kind: exec.StepVObjFilter, FilterPred: conjuncts[ci].pred})
			}
		} else {
			for _, ci := range mine {
				for _, ref := range conjuncts[ci].props {
					project(ref.Prop)
				}
				steps = append(steps, exec.Step{Kind: exec.StepVObjFilter, FilterPred: conjuncts[ci].pred})
			}
		}

		// Remaining properties needed by outputs, relations and the
		// video constraint — computed only on surviving nodes.
		for _, sel := range outputSels {
			if sel.Instance == inst {
				project(sel.Prop)
			}
		}
		for _, info := range videoConjuncts {
			for _, ref := range info.props {
				if ref.Instance == inst {
					project(ref.Prop)
				}
			}
		}

		// Drop frames with no surviving nodes when the constraint is
		// conjunctive and this instance is required (the join-as-
		// frame-filter behaviour of Figure 9).
		if conjunctive && len(mine) > 0 && q.VideoConstraint() == nil {
			steps = append(steps, exec.Step{Kind: exec.StepRequire, RequireInstance: inst})
		}
	}

	// Relation projections and filters.
	relNames := make([]string, 0, len(relBindings))
	for name := range relBindings {
		relNames = append(relNames, name)
	}
	sort.Strings(relNames)
	for _, name := range relNames {
		rb := relBindings[name]
		needed := map[string]bool{}
		for _, info := range conjuncts {
			if info.relations[name] {
				_, rels := core.RefsOf(info.pred)
				for _, r := range rels {
					if r.Relation == name {
						needed[r.Prop] = true
					}
				}
			}
		}
		for _, info := range videoConjuncts {
			if info.relations[name] {
				_, rels := core.RefsOf(info.pred)
				for _, r := range rels {
					if r.Relation == name {
						needed[r.Prop] = true
					}
				}
			}
		}
		props := make([]string, 0, len(needed))
		for p := range needed {
			props = append(props, p)
		}
		sort.Strings(props)
		for _, pname := range props {
			rp, ok := rb.Rel.Prop(pname)
			if !ok {
				return nil, fmt.Errorf("plan: relation %s has no property %s", name, pname)
			}
			steps = append(steps, exec.Step{
				Kind: exec.StepRelProject, Relation: name, RelBind: rb, RelProp: rp,
			})
		}
		// Relation filters: conjuncts over this relation only.
		for i, info := range conjuncts {
			if consumed[i] || !info.relations[name] || len(info.relations) != 1 {
				continue
			}
			ok := true
			for instName := range info.instances {
				if instName != rb.LeftInst && instName != rb.RightInst {
					ok = false
				}
			}
			if ok {
				steps = append(steps, exec.Step{Kind: exec.StepRelFilter, Relation: name, RelPred: info.pred})
			}
		}
	}

	// The final constraint evaluation uses the original query; conjuncts
	// consumed by specialized detectors are rewritten out.
	effQuery := q
	if len(consumed) > 0 {
		var remaining []core.Pred
		for i, info := range conjuncts {
			if !consumed[i] {
				remaining = append(remaining, info.pred)
			}
		}
		effQuery = rewriteConstraint(q, core.And(remaining...))
	}

	p := &exec.Plan{
		Query:       effQuery,
		Steps:       steps,
		BatchSize:   pl.opts.BatchSize,
		DisableMemo: pl.opts.DisableMemo,
		UplinkMS:    pl.opts.EdgeUplinkMS,
		Label:       c.label,
	}
	if pl.opts.EdgeUplinkMS > 0 {
		placeDevices(p.Steps)
	}
	if !pl.opts.DisableFusion {
		p.Steps = Fuse(p.Steps)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan: built invalid plan for %s: %w", q.Name(), err)
	}
	return p, nil
}

// appendProjections emits StepProject entries for prop and its
// dependency closure, in dependency order, once per property.
func (pl *Planner) appendProjections(steps *[]exec.Step, t *core.VObjType, inst, prop string, projected map[string]bool) {
	if core.IsBuiltinProp(prop) || projected[prop] {
		return
	}
	p, ok := t.Prop(prop)
	if !ok || p == nil {
		return
	}
	for _, dep := range p.DependsOn {
		pl.appendProjections(steps, t, inst, dep, projected)
	}
	projected[prop] = true
	*steps = append(*steps, exec.Step{Kind: exec.StepProject, Instance: inst, Prop: p})
}

// conjunctSatisfiedByColorGate reports whether a conjunct is exactly a
// color equality that a specialized detector's color gate guarantees.
func conjunctSatisfiedByColorGate(p core.Pred, inst string, gate video.Color) bool {
	cmp, ok := p.(*core.Cmp)
	if !ok || cmp.Op != core.OpEq || cmp.Ref.Instance != inst {
		return false
	}
	s, ok := cmp.Value.(string)
	if !ok {
		return false
	}
	return video.ParseColor(s) == gate && cmp.Ref.Prop == "color"
}

// rewriteConstraint clones q's effective structure with a replaced frame
// constraint (used when a specialized detector consumes a conjunct).
func rewriteConstraint(q *core.Query, newCons core.Pred) *core.Query {
	nq := core.NewQuery(q.Name())
	for name, t := range q.Instances() {
		nq.Use(name, t)
	}
	for name, rb := range q.Relations() {
		nq.UseRelation(name, rb.Rel, rb.LeftInst, rb.RightInst)
	}
	nq.Where(newCons)
	if sels := q.FrameOutputSelectors(); len(sels) > 0 {
		nq.FrameOutput(sels...)
	}
	if vc := q.VideoConstraint(); vc != nil {
		nq.VideoWhere(vc)
	}
	if agg := q.VideoOutput(); agg != nil {
		if agg.Kind == core.AggCountDistinct {
			nq.CountDistinct(agg.Instance)
		} else {
			nq.ListTracks(agg.Instance)
		}
	}
	return nq
}

// placeDevices assigns operators to devices (§4.1): everything before
// the first detector — frame filters and the scene path — runs on the
// edge device (camera); the compute-intensive remainder on the server.
func placeDevices(steps []exec.Step) {
	onEdge := true
	for i := range steps {
		if steps[i].Kind == exec.StepDetect {
			onEdge = false
		}
		if onEdge {
			steps[i].Device = exec.DeviceEdge
		} else {
			steps[i].Device = exec.DeviceServer
		}
	}
}

// Fuse merges adjacent project/filter step runs into fused operators,
// the paper's operator-fusion optimization (reducing per-operator
// iteration overhead and intermediate data).
func Fuse(steps []exec.Step) []exec.Step {
	var out []exec.Step
	i := 0
	for i < len(steps) {
		k := steps[i].Kind
		if k != exec.StepProject && k != exec.StepVObjFilter {
			out = append(out, steps[i])
			i++
			continue
		}
		j := i
		for j < len(steps) && (steps[j].Kind == exec.StepProject || steps[j].Kind == exec.StepVObjFilter) {
			j++
		}
		if j-i == 1 {
			out = append(out, steps[i])
		} else {
			fused := make([]exec.Step, j-i)
			copy(fused, steps[i:j])
			out = append(out, exec.Step{Kind: exec.StepFused, Fused: fused})
		}
		i = j
	}
	return out
}

// selectByProfile runs every candidate on the canary prefix, computes
// cost and F1 against the first (most general) candidate, and returns
// the cheapest candidate meeting the accuracy target (§4.3).
func (pl *Planner) selectByProfile(plans []*exec.Plan, canary *video.Video) (*exec.Plan, error) {
	frames := pl.opts.CanaryFrames
	if frames > len(canary.Frames) {
		frames = len(canary.Frames)
	}
	var refMatched []bool
	best := plans[0]
	bestCost := math.Inf(1)
	for i, p := range plans {
		res, err := pl.profileOne(p, canary, frames)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			refMatched = res.Matched
			p.EstF1 = 1
		} else {
			p.EstF1 = matchedF1(refMatched, res.Matched)
		}
		if p.EstF1 >= pl.opts.AccuracyTarget && p.EstCostMS < bestCost {
			best, bestCost = p, p.EstCostMS
		}
	}
	return best, nil
}

// profileOne runs a candidate plan over the canary prefix on an
// isolated clock (so canary work does not pollute the experiment
// ledger, with the session seed so model noise is identical) and fills
// its cost estimates. Shared by candidate selection and ProfileCost.
func (pl *Planner) profileOne(p *exec.Plan, canary *video.Video, frames int) (*exec.Result, error) {
	profEnv := &models.Env{Clock: newIsolatedClock(), Seed: pl.opts.Env.Seed, NoBurn: true}
	ex, err := exec.NewExecutor(exec.Options{
		Env: profEnv, Registry: pl.opts.Registry,
		MaxFrames: frames, SkipHits: true,
	})
	if err != nil {
		return nil, err
	}
	res, err := ex.Run(p, canary)
	if err != nil {
		return nil, err
	}
	p.EstCostMS = res.VirtualMS
	if frames > 0 {
		p.EstPerFrameMS = res.VirtualMS / float64(frames)
	}
	return res, nil
}

// ProfileCost fills a plan's cost estimates (EstCostMS, EstPerFrameMS)
// by running it over the canary prefix on an isolated clock, without
// touching the session ledger. PlanBasic profiles only when several
// candidates compete; the serving layer calls this for single-candidate
// plans so admission control always has a per-frame cost signal.
func (pl *Planner) ProfileCost(p *exec.Plan, canary *video.Video) error {
	frames := pl.opts.CanaryFrames
	if frames > len(canary.Frames) {
		frames = len(canary.Frames)
	}
	if frames == 0 {
		return nil
	}
	_, err := pl.profileOne(p, canary, frames)
	return err
}

// matchedF1 computes frame-level F1 of a candidate's matched vector
// against the reference labels (§4.3's accuracy estimation). When the
// canary prefix contains no reference positives, F1 is undefined; the
// estimator falls back to specificity (1 - FP/frames) so that a single
// spurious frame on an otherwise-empty canary does not zero out an
// entire candidate.
func matchedF1(ref, got []bool) float64 {
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	tp, fp, fn := 0, 0, 0
	for i := 0; i < n; i++ {
		switch {
		case ref[i] && got[i]:
			tp++
		case !ref[i] && got[i]:
			fp++
		case ref[i] && !got[i]:
			fn++
		}
	}
	if tp+fn == 0 {
		if n == 0 {
			return 1
		}
		return 1 - float64(fp)/float64(n)
	}
	if tp == 0 {
		return 0
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec)
}
