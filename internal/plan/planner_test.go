package plan

import (
	"strings"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

func testEnv() *models.Env {
	e := models.NewEnv(42)
	e.NoBurn = true
	return e
}

func testPlanner(t *testing.T, mod func(*Options)) *Planner {
	t.Helper()
	opts := Options{Env: testEnv(), Registry: models.BuiltinRegistry()}
	if mod != nil {
		mod(&opts)
	}
	pl, err := NewPlanner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func carType() *core.VObjType {
	return core.NewVObj("Car", video.ClassCar).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		StatelessModel("plate", "plate_ocr", true)
}

func redCarType() *core.VObjType {
	return carType().Extend("RedCar").
		RegisterSpecializedNN("red_car_specialized").
		RegisterFilter("no_red_on_road")
}

func redCarQuery(t *core.VObjType) *core.Query {
	return core.NewQuery("RedCar").
		Use("car", t).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "color").Eq("red"),
		)).
		FrameOutput(core.Sel("car", core.PropTrackID))
}

func stepKinds(steps []exec.Step) []exec.StepKind {
	var out []exec.StepKind
	var walk func([]exec.Step)
	walk = func(ss []exec.Step) {
		for _, s := range ss {
			if s.Kind == exec.StepFused {
				walk(s.Fused)
				continue
			}
			out = append(out, s.Kind)
		}
	}
	walk(steps)
	return out
}

func TestPlanBasicStructure(t *testing.T) {
	pl := testPlanner(t, nil)
	p, _, err := pl.PlanBasic(redCarQuery(carType()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("plan invalid: %v\n%s", err, p)
	}
	kinds := stepKinds(p.Steps)
	// detect, track, (builtin score filter), project color, filter, require
	wantOrder := []exec.StepKind{exec.StepDetect, exec.StepTrack}
	for i, k := range wantOrder {
		if kinds[i] != k {
			t.Fatalf("step %d = %v, want %v\n%s", i, kinds[i], k, p)
		}
	}
	// The score conjunct (zero cost) must be filtered before the color
	// projection (cost 5): find positions.
	s := p.String()
	scorePos := strings.Index(s, "car.score > 0.5")
	colorPos := strings.Index(s, "project(car.color)")
	if scorePos < 0 || colorPos < 0 || scorePos > colorPos {
		t.Errorf("predicate pull-up failed:\n%s", s)
	}
}

func TestLazyOrderingCheapestFirst(t *testing.T) {
	// Query constraining both color (5ms) and plate (12ms): the color
	// group must be projected and filtered before plate.
	pl := testPlanner(t, nil)
	q := core.NewQuery("RedPlate45").
		Use("car", carType()).
		Where(core.And(
			core.P("car", "plate").Contains("45"),
			core.P("car", "color").Eq("red"),
		))
	p, _, err := pl.PlanBasic(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	colorProj := strings.Index(s, "project(car.color)")
	plateProj := strings.Index(s, "project(car.plate)")
	colorFilt := strings.Index(s, "car.color == red")
	if colorProj < 0 || plateProj < 0 || colorFilt < 0 {
		t.Fatalf("missing steps:\n%s", s)
	}
	if !(colorProj < colorFilt && colorFilt < plateProj) {
		t.Errorf("lazy ordering wrong:\n%s", s)
	}
}

func TestDisableLazyProjectsBeforeFilters(t *testing.T) {
	pl := testPlanner(t, func(o *Options) { o.DisableLazy = true })
	q := core.NewQuery("RedPlate45").
		Use("car", carType()).
		Where(core.And(
			core.P("car", "plate").Contains("45"),
			core.P("car", "color").Eq("red"),
		))
	p, _, err := pl.PlanBasic(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	plateProj := strings.Index(s, "project(car.plate)")
	colorFilt := strings.Index(s, "car.color == red")
	if plateProj < 0 || colorFilt < 0 || plateProj > colorFilt {
		t.Errorf("DisableLazy should project everything first:\n%s", s)
	}
}

func TestCandidateEnumeration(t *testing.T) {
	pl := testPlanner(t, nil)
	_, all, err := pl.PlanBasic(redCarQuery(redCarType()), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Expect at least: general, general+filter, specialized,
	// specialized+filter.
	if len(all) < 4 {
		t.Fatalf("only %d candidates", len(all))
	}
	var hasSpec, hasFilt bool
	for _, p := range all {
		s := p.String()
		if strings.Contains(s, "red_car_specialized") {
			hasSpec = true
		}
		if strings.Contains(s, "frame_filter(no_red_on_road)") {
			hasFilt = true
		}
	}
	if !hasSpec {
		t.Error("no specialized-NN candidate")
	}
	if !hasFilt {
		t.Error("no frame-filter candidate")
	}
}

func TestDisableFlagsPruneCandidates(t *testing.T) {
	pl := testPlanner(t, func(o *Options) {
		o.DisableSpecialized = true
		o.DisableFrameFilters = true
	})
	_, all, err := pl.PlanBasic(redCarQuery(redCarType()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("%d candidates with optimizations disabled, want 1", len(all))
	}
	s := all[0].String()
	if strings.Contains(s, "red_car_specialized") || strings.Contains(s, "frame_filter") {
		t.Errorf("disabled optimization leaked:\n%s", s)
	}
}

func TestProfilingSelectsCheaperPlan(t *testing.T) {
	v := video.CityFlow(42, 60).Generate()
	pl := testPlanner(t, func(o *Options) {
		o.AccuracyTarget = 0.7
		o.CanaryFrames = 40
	})
	best, all, err := pl.PlanBasic(redCarQuery(redCarType()), v)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatal("profiling needs multiple candidates")
	}
	// The reference plan is all[0]; the chosen plan must cost no more.
	if best.EstCostMS > all[0].EstCostMS {
		t.Errorf("selected plan (%.0f ms) costs more than reference (%.0f ms)", best.EstCostMS, all[0].EstCostMS)
	}
	if best.EstF1 < 0.7 {
		t.Errorf("selected plan below accuracy target: F1=%.2f", best.EstF1)
	}
	// With a red-car query, the specialized detector or filter variant
	// should win on cost.
	if !strings.Contains(best.String(), "red_car_specialized") &&
		!strings.Contains(best.String(), "frame_filter") {
		t.Logf("note: general plan selected:\n%s", best)
	}
}

func TestStrictAccuracyFallsBackToReference(t *testing.T) {
	v := video.CityFlow(43, 60).Generate()
	pl := testPlanner(t, func(o *Options) {
		o.AccuracyTarget = 1.1 // unreachable: forces the reference fallback
		o.CanaryFrames = 40
	})
	best, all, err := pl.PlanBasic(redCarQuery(redCarType()), v)
	if err != nil {
		t.Fatal(err)
	}
	if best != all[0] {
		t.Errorf("strict target should select the reference plan; got %s (F1 %.3f)", best.Label, best.EstF1)
	}
}

func TestPlanCacheReuse(t *testing.T) {
	v := video.CityFlow(44, 40).Generate()
	pc := NewPlanCache()
	pl := testPlanner(t, func(o *Options) {
		o.PlanCache = pc
		o.CanaryFrames = 20
	})
	q := redCarQuery(redCarType())
	p1, _, err := pl.PlanBasic(q, v)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := pl.PlanBasic(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("plan cache did not reuse the plan")
	}
	hits, _ := pc.Stats()
	if hits == 0 {
		t.Error("cache never hit")
	}
}

func TestFuse(t *testing.T) {
	ct := carType()
	colorProp, _ := ct.Prop("color")
	steps := []exec.Step{
		{Kind: exec.StepDetect, DetectModel: "yolox", Binds: []exec.InstanceBind{{Instance: "car", Class: video.ClassCar}}},
		{Kind: exec.StepTrack, Instance: "car"},
		{Kind: exec.StepProject, Instance: "car", Prop: colorProp},
		{Kind: exec.StepVObjFilter, FilterPred: core.P("car", "color").Eq("red")},
		{Kind: exec.StepRequire, RequireInstance: "car"},
	}
	fused := Fuse(steps)
	if len(fused) != 4 {
		t.Fatalf("fused to %d steps, want 4: %v", len(fused), fused)
	}
	if fused[2].Kind != exec.StepFused || len(fused[2].Fused) != 2 {
		t.Errorf("fusion shape wrong: %v", fused[2])
	}
	// Single project is not wrapped.
	single := Fuse(steps[:3])
	if single[2].Kind != exec.StepProject {
		t.Errorf("singleton fused: %v", single[2])
	}
}

func TestMergeSpatial(t *testing.T) {
	person := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	car := carType()
	rel := core.DistanceRelation("near", person, car)
	lq := core.NewQuery("L").Use("p", person).Where(core.P("p", core.PropScore).Gt(0.5))
	rq := core.NewQuery("R").Use("c", car).Where(core.P("c", "color").Eq("red"))
	sq, err := core.NewSpatialQuery("PNearRedCar", lq, rq, rel, core.RP("near", "distance").Lt(100))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeSpatial(sq)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged query invalid: %v", err)
	}
	if got := merged.InstanceNames(); len(got) != 2 {
		t.Errorf("instances = %v", got)
	}
	cons := core.ConjunctsOf(merged.FrameConstraint())
	if len(cons) != 3 {
		t.Errorf("merged conjuncts = %d, want 3", len(cons))
	}
	// Name collision is rejected.
	rq2 := core.NewQuery("R2").Use("p", car)
	sq2, _ := core.NewSpatialQuery("Bad", lq, rq2, rel, nil)
	if _, err := MergeSpatial(sq2); err == nil {
		t.Error("instance collision accepted")
	}
	// Multi-instance side rejected.
	multi := core.NewQuery("M").Use("a", person).Use("b", car)
	sq3, _ := core.NewSpatialQuery("Bad2", multi, rq, rel, nil)
	if _, err := MergeSpatial(sq3); err == nil {
		t.Error("multi-instance side accepted")
	}
}

func TestRunBasicEndToEnd(t *testing.T) {
	v := video.CityFlow(45, 60).Generate()
	pl := testPlanner(t, nil)
	rr, err := pl.Run(redCarQuery(carType()), v)
	if err != nil {
		t.Fatal(err)
	}
	if rr.MatchedCount() == 0 {
		t.Error("no matches")
	}
	if rr.Basic == nil || len(rr.Plans) != 1 {
		t.Error("basic result/plans missing")
	}
	if rr.VirtualMS <= 0 {
		t.Error("no cost accounted")
	}
	if len(rr.Events) == 0 {
		t.Error("no events derived")
	}
}

func TestRunDurationQuery(t *testing.T) {
	// Loitering: person present continuously for >= 20s in retail
	// scenario.
	v := video.Retail(46, 120).Generate()
	person := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	base := core.NewQuery("PersonPresent").
		Use("p", person).
		Where(core.P("p", core.PropScore).Gt(0.5))
	dur, err := core.NewDurationQuery("Loitering", base, 20)
	if err != nil {
		t.Fatal(err)
	}
	pl := testPlanner(t, nil)
	rr, err := pl.Run(dur, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range rr.Events {
		if ev.Frames() < 20*v.FPS {
			t.Errorf("event %v shorter than 20s", ev)
		}
	}
	baseRR, err := pl.Run(base, v)
	if err != nil {
		t.Fatal(err)
	}
	if rr.MatchedCount() > baseRR.MatchedCount() {
		t.Error("duration result exceeds base result")
	}
}

func TestRunTemporalQuery(t *testing.T) {
	v := video.Pickup(47, 60).Generate()
	person := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	car := carType()
	first := core.NewQuery("PersonSeen").
		Use("p", person).Where(core.P("p", core.PropScore).Gt(0.5))
	second := core.NewQuery("RedCarSeen").
		Use("c", car).Where(core.P("c", "color").Eq("red"))
	// Events must be strictly sequential; this scenario has both, so a
	// generous window should find the sequence only if persons vanish
	// before red cars appear somewhere. The test asserts execution
	// mechanics, not scenario semantics.
	temp, err := core.NewTemporalQuery("Seq", first, second, 10)
	if err != nil {
		t.Fatal(err)
	}
	pl := testPlanner(t, nil)
	rr, err := pl.Run(temp, v)
	if err != nil {
		t.Fatal(err)
	}
	if rr.FPS != v.FPS {
		t.Error("FPS not propagated")
	}
	if len(rr.Plans) < 2 {
		t.Error("temporal run should carry both sub-plans")
	}
}

func TestRunSpatialQuery(t *testing.T) {
	v := video.Auburn(48, 40).Generate()
	person := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	car := core.NewVObj("Car", video.ClassCar).Detector("car_detector")
	rel := core.DistanceRelation("near", person, car)
	lq := core.NewQuery("P").Use("p", person).Where(core.P("p", core.PropScore).Gt(0.5))
	rq := core.NewQuery("C").Use("c", car).Where(core.P("c", core.PropScore).Gt(0.5))
	sq, err := core.NewSpatialQuery("PersonNearCar", lq, rq, rel, core.RP("near", "distance").Lt(200))
	if err != nil {
		t.Fatal(err)
	}
	pl := testPlanner(t, nil)
	rr, err := pl.Run(sq, v)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Name != "PersonNearCar" {
		t.Errorf("name = %q", rr.Name)
	}
	if rr.MatchedCount() == 0 {
		t.Error("no spatial matches")
	}
}

func TestHitAndRunComposition(t *testing.T) {
	// The full Figure 8 pipeline: collision (spatial) then speeding car
	// (basic) within a window.
	v := video.Pickup(49, 60).Generate()
	person := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	car := carType().AddProperty(&core.Property{
		Name: "velocity", Stateful: true, DependsOn: []string{core.PropBBox},
		HistoryLen: 1, CostHintMS: 0.05,
		Compute: func(in core.PropInput) (any, error) {
			if len(in.History) < 2 {
				return nil, core.ErrNotReady
			}
			a := in.History[0].(geom.BBox)
			b := in.History[len(in.History)-1].(geom.BBox)
			return geom.CenterDist(a, b), nil
		},
	})
	rel := core.DistanceRelation("near", person, car)
	lq := core.NewQuery("P").Use("p", person)
	rq := core.NewQuery("C").Use("c", car)
	collision, err := core.NewSpatialQuery("CarHitPerson", lq, rq, rel, core.RP("near", "distance").Lt(120))
	if err != nil {
		t.Fatal(err)
	}
	runAway := core.NewQuery("CarRunAway").
		Use("c2", car).
		Where(core.P("c2", "velocity").Gt(5))
	hitAndRun, err := core.NewTemporalQuery("HitAndRun", collision, runAway, 20)
	if err != nil {
		t.Fatal(err)
	}
	pl := testPlanner(t, nil)
	rr, err := pl.Run(hitAndRun, v)
	if err != nil {
		t.Fatal(err)
	}
	// The pickup scenario stages exactly this pattern (person near
	// parked red car, then the car drives off), so events should fire.
	if len(rr.Events) == 0 {
		t.Log("no hit-and-run events found (scenario timing dependent)")
	}
}

func TestPlannerOptionValidation(t *testing.T) {
	if _, err := NewPlanner(Options{}); err == nil {
		t.Error("missing env/registry accepted")
	}
}

func TestMatchedF1(t *testing.T) {
	if got := matchedF1(bools("1100"), bools("1100")); got != 1 {
		t.Errorf("identical F1 = %v", got)
	}
	if got := matchedF1(bools("0000"), bools("0000")); got != 1 {
		t.Errorf("all-negative F1 = %v", got)
	}
	if got := matchedF1(bools("1111"), bools("0000")); got != 0 {
		t.Errorf("disjoint F1 = %v", got)
	}
	// tp=1 fp=1 fn=1 → precision=0.5 recall=0.5 → F1=0.5
	if got := matchedF1(bools("110"), bools("101")); got != 0.5 {
		t.Errorf("mixed F1 = %v", got)
	}
}

func bools(s string) []bool {
	out := make([]bool, len(s))
	for i, c := range s {
		out[i] = c == '1'
	}
	return out
}
