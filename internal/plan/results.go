package plan

import (
	"fmt"
	"strings"
	"sync"

	"vqpy/internal/core"
	"vqpy/internal/video"
)

// ResultCache materializes completed query results for reuse when "the
// same video is queried multiple times" (§4.2's query-level computation
// reuse, final-result flavour). Results are keyed by a structural
// fingerprint of the query node plus the video identity, so a repeated
// Execute returns instantly.
type ResultCache struct {
	mu      sync.Mutex
	results map[string]*RunResult
	hits    int
	miss    int
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{results: make(map[string]*RunResult)}
}

// Get returns a cached result.
func (c *ResultCache) Get(key string) (*RunResult, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.results[key]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return r, ok
}

// Put stores a result.
func (c *ResultCache) Put(key string, r *RunResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results[key] = r
}

// Stats returns (hits, misses).
func (c *ResultCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}

// Fingerprint derives a structural identity for a query node over a
// video: constraints, instances (with their detector models), relations,
// outputs, combinator parameters, and the video name/length. Two nodes
// with equal fingerprints compute identical results under the same
// session seed.
func Fingerprint(node core.QueryNode, v *video.Video) string {
	var b strings.Builder
	fmt.Fprintf(&b, "video=%s#%d@%d|", v.Name, len(v.Frames), v.FPS)
	writeNode(&b, node)
	return b.String()
}

func writeNode(b *strings.Builder, node core.QueryNode) {
	switch n := node.(type) {
	case *core.Query:
		fmt.Fprintf(b, "basic{%s", n.Name())
		for _, inst := range n.InstanceNames() {
			t := n.Instances()[inst]
			fmt.Fprintf(b, ";inst:%s=%s/%s/%s", inst, t.Name(), t.Class(), t.DetectorName())
		}
		rels := n.Relations()
		relNames := make([]string, 0, len(rels))
		for name := range rels {
			relNames = append(relNames, name)
		}
		// Sorted for determinism.
		for i := 0; i < len(relNames); i++ {
			for j := i + 1; j < len(relNames); j++ {
				if relNames[j] < relNames[i] {
					relNames[i], relNames[j] = relNames[j], relNames[i]
				}
			}
		}
		for _, name := range relNames {
			rb := rels[name]
			fmt.Fprintf(b, ";rel:%s=%s(%s,%s)", name, rb.Rel.Name(), rb.LeftInst, rb.RightInst)
		}
		if fc := n.FrameConstraint(); fc != nil {
			fmt.Fprintf(b, ";where:%s", fc)
		}
		if vc := n.VideoConstraint(); vc != nil {
			fmt.Fprintf(b, ";vwhere:%s", vc)
		}
		for _, sel := range n.FrameOutputSelectors() {
			fmt.Fprintf(b, ";out:%s", sel)
		}
		if agg := n.VideoOutput(); agg != nil {
			fmt.Fprintf(b, ";agg:%d/%s", agg.Kind, agg.Instance)
		}
		b.WriteString("}")
	case *core.SpatialQuery:
		fmt.Fprintf(b, "spatial{%s;rel=%s;pred=%v;", n.NodeName(), n.Relation.Name(), n.RelPred)
		writeNode(b, n.Left)
		b.WriteString(";")
		writeNode(b, n.Right)
		b.WriteString("}")
	case *core.DurationQuery:
		fmt.Fprintf(b, "duration{%s;min=%g;", n.NodeName(), n.MinSeconds)
		writeNode(b, n.Base)
		b.WriteString("}")
	case *core.TemporalQuery:
		fmt.Fprintf(b, "temporal{%s;win=%g;", n.NodeName(), n.WindowSeconds)
		writeNode(b, n.First)
		b.WriteString(";")
		writeNode(b, n.Second)
		b.WriteString("}")
	default:
		fmt.Fprintf(b, "unknown{%T}", node)
	}
}
