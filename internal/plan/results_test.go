package plan

import (
	"strings"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/video"
)

func TestResultCacheRoundTrip(t *testing.T) {
	rc := NewResultCache()
	if _, ok := rc.Get("k"); ok {
		t.Error("empty cache hit")
	}
	r := &RunResult{Name: "q"}
	rc.Put("k", r)
	got, ok := rc.Get("k")
	if !ok || got != r {
		t.Error("round trip failed")
	}
	hits, misses := rc.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d,%d", hits, misses)
	}
	// nil cache is a no-op.
	var nilCache *ResultCache
	if _, ok := nilCache.Get("k"); ok {
		t.Error("nil cache hit")
	}
	nilCache.Put("k", r) // must not panic
}

func TestFingerprintDistinguishesQueries(t *testing.T) {
	v := video.CityFlow(1, 5).Generate()
	qRed := redCarQuery(carType())
	qBlue := core.NewQuery("BlueCar").
		Use("car", carType()).
		Where(core.P("car", "color").Eq("blue"))
	if Fingerprint(qRed, v) == Fingerprint(qBlue, v) {
		t.Error("different constraints share a fingerprint")
	}
	// Same structure → same fingerprint.
	if Fingerprint(redCarQuery(carType()), v) != Fingerprint(redCarQuery(carType()), v) {
		t.Error("identical queries fingerprint differently")
	}
	// Different video → different fingerprint.
	v2 := video.CityFlow(1, 10).Generate()
	if Fingerprint(qRed, v) == Fingerprint(qRed, v2) {
		t.Error("different videos share a fingerprint")
	}
}

func TestFingerprintCoversHigherOrder(t *testing.T) {
	v := video.CityFlow(2, 5).Generate()
	person := core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	car := carType()
	rel := core.DistanceRelation("near", person, car)
	lq := core.NewQuery("L").Use("p", person)
	rq := core.NewQuery("R").Use("c", car)
	sq, _ := core.NewSpatialQuery("S", lq, rq, rel, core.RP("near", "distance").Lt(50))
	dur5, _ := core.NewDurationQuery("D", sq, 5)
	dur9, _ := core.NewDurationQuery("D", sq, 9)
	if Fingerprint(dur5, v) == Fingerprint(dur9, v) {
		t.Error("different durations share a fingerprint")
	}
	temp, _ := core.NewTemporalQuery("T", dur5, rq, 10)
	fp := Fingerprint(temp, v)
	for _, want := range []string{"temporal{", "duration{", "spatial{", "basic{"} {
		if !strings.Contains(fp, want) {
			t.Errorf("fingerprint missing %q: %s", want, fp)
		}
	}
}

func TestRunUsesResultCache(t *testing.T) {
	v := video.CityFlow(3, 30).Generate()
	rc := NewResultCache()
	pl := testPlanner(t, func(o *Options) { o.ResultCache = rc })
	q := redCarQuery(carType())
	r1, err := pl.Run(q, v)
	if err != nil {
		t.Fatal(err)
	}
	costAfterFirst := pl.opts.Env.Clock.TotalMS()
	r2, err := pl.Run(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if pl.opts.Env.Clock.TotalMS() != costAfterFirst {
		t.Error("second run recomputed despite result cache")
	}
	if r2 != r1 {
		t.Error("cached result not returned")
	}
	hits, _ := rc.Stats()
	if hits != 1 {
		t.Errorf("cache hits = %d", hits)
	}
}
