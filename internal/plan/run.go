package plan

import (
	"fmt"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/sim"
	"vqpy/internal/video"
)

// newIsolatedClock returns a clock for profiling runs whose charges are
// discarded.
func newIsolatedClock() *sim.Clock { return sim.NewClock() }

// RunResult is the outcome of executing any query node.
type RunResult struct {
	Name string

	// Matched marks, per processed frame position, whether the node's
	// condition holds.
	Matched []bool
	// Events are the qualifying spans for higher-order nodes (for
	// basic nodes, the maximal matched runs).
	Events []exec.Event

	FPS int

	// Basic holds the underlying executor result for basic/spatial
	// nodes (hits, counts, memo stats); nil for duration/temporal.
	Basic *exec.Result

	// Plans lists the physical plans chosen for every basic component,
	// for explanation.
	Plans []*exec.Plan

	// VirtualMS totals the virtual time charged by this node and its
	// children.
	VirtualMS float64
}

// MatchedCount returns the number of matched frames.
func (r *RunResult) MatchedCount() int {
	n := 0
	for _, m := range r.Matched {
		if m {
			n++
		}
	}
	return n
}

// Run plans and executes a query node over a video. Higher-order nodes
// are evaluated recursively and combined with the event semantics of §3.
func (pl *Planner) Run(node core.QueryNode, v *video.Video) (*RunResult, error) {
	// Materialized-result reuse (§4.2): identical node+video pairs
	// return the stored result.
	var fp string
	if pl.opts.ResultCache != nil {
		fp = Fingerprint(node, v)
		if r, ok := pl.opts.ResultCache.Get(fp); ok {
			return r, nil
		}
	}
	// All basic components within one Run share a cache so common
	// detector work is not repeated (the shared sub-pipelines of the
	// operator DAG, Figure 9).
	opts := pl.opts
	if opts.Cache == nil {
		opts.Cache = exec.NewSharedCache()
	}
	inner := &Planner{opts: opts}
	r, err := inner.runNode(node, v)
	if err == nil && pl.opts.ResultCache != nil {
		pl.opts.ResultCache.Put(fp, r)
	}
	return r, err
}

// runNode is the per-query physical strategy: the node is compiled to
// the operator IR (planning every basic leaf against the video as the
// profiling canary) and each leaf pipeline then scans the video itself.
// The shared-scan strategy over the same IR is RunShared.
func (pl *Planner) runNode(node core.QueryNode, v *video.Video) (*RunResult, error) {
	ir, err := pl.CompileNode(node, v)
	if err != nil {
		return nil, err
	}
	return pl.executeIR(ir, v)
}

// MergeSpatial lowers a SpatialQuery into a single basic query: the
// union of both sides' instances and constraints plus the relation
// binding and its predicate (the planner-generated frame constraint of
// §3). Each side must bind exactly one instance, and names must not
// collide.
func MergeSpatial(s *core.SpatialQuery) (*core.Query, error) {
	leftInsts := s.Left.InstanceNames()
	rightInsts := s.Right.InstanceNames()
	if len(leftInsts) != 1 || len(rightInsts) != 1 {
		return nil, fmt.Errorf("plan: SpatialQuery %s sides must bind exactly one instance each", s.NodeName())
	}
	li, ri := leftInsts[0], rightInsts[0]
	if li == ri {
		return nil, fmt.Errorf("plan: SpatialQuery %s instance name collision %q", s.NodeName(), li)
	}
	q := core.NewQuery(s.NodeName())
	q.Use(li, s.Left.Instances()[li])
	q.Use(ri, s.Right.Instances()[ri])
	q.UseRelation(s.Relation.Name(), s.Relation, li, ri)
	q.Where(core.And(s.Left.FrameConstraint(), s.Right.FrameConstraint(), s.RelPred))
	var sels []core.Selector
	sels = append(sels, s.Left.FrameOutputSelectors()...)
	sels = append(sels, s.Right.FrameOutputSelectors()...)
	if len(sels) > 0 {
		q.FrameOutput(sels...)
	}
	return q, nil
}
