package plan

// Archive-scale appearance search (DESIGN.md §10): given an exemplar
// embedding (or an indexed track to borrow one from), find the archived
// tracks whose appearance matches it and the frames where they satisfy
// a wrapped basic query. Two physical paths answer the same question:
//
//   - probe-then-verify: Options.Index answers a sub-linear probe with
//     candidate tracks and their frame spans; only those frames are
//     verified through the store-backed lane (exec.RunIndexVerify), and
//     any residual range the index does not cover runs the ordinary
//     full path.
//   - full rescan: every frame runs through the plan, then every
//     distinct track's first archived sighting is embedded and compared
//     against the exemplar.
//
// The two are bit-identical by construction, not by luck: the match
// predicate is defined as "cosine of the track's embedding at its first
// archived sighting vs. the exemplar ≥ threshold", the index stores
// exactly that embedding (index.Extract and index.StoreAppearances
// share one walk definition), the probe's partition pruning is a
// triangle-inequality bound over the same models.Cosine both paths
// call, and the wrapped plan is compiled with DisableMemo so per-frame
// verdicts cannot depend on which frames happened to be processed.
// Search's crosscheck tests (search_test.go at the repo root, E20 in
// internal/bench) prove the identity including the residual-fallback
// case.

import (
	"fmt"
	"sort"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/fleet"
	"vqpy/internal/index"
	"vqpy/internal/models"
	"vqpy/internal/store"
	"vqpy/internal/video"
)

// searchEmbedder is the zoo model both extraction and the full-rescan
// path embed appearances with; using one model name is part of the
// bit-identity contract (index.Meta pins it).
const searchEmbedder = "fleet_reid"

// defaultSearchThreshold is the cosine match bar when the spec leaves
// Threshold zero — the same separation margin the fleet re-ID layer
// uses for cross-camera identity.
const defaultSearchThreshold = 0.7

// SearchSpec parameterizes one archive search.
type SearchSpec struct {
	// Query is the basic query whose frame constraint and outputs gate
	// the search; it must declare at least one FrameOutput selector
	// (hits carry the track ids the appearance predicate joins on).
	// Video-level constraints and aggregations are ignored by search.
	Query *core.Query

	// Feature is the exemplar appearance embedding. When empty, Track
	// names an already-indexed track whose stored embedding to borrow
	// (requires Options.Index).
	Feature []float64
	Track   int

	// Threshold is the cosine-similarity match bar; 0 means the 0.7
	// default.
	Threshold float64

	// TopK keeps only the K most similar verified tracks (ranked by
	// similarity descending, track id ascending); 0 keeps all.
	TopK int

	// Frames bounds the searched range to [0, Frames); 0 means the
	// whole source.
	Frames int
}

// SearchResult is the outcome of one archive search.
type SearchResult struct {
	Query string

	// Matched[i] reports whether frame i matched the query AND carried
	// at least one kept matching track; Hits holds those frames' output
	// objects (the whole frame hit, including co-occurring objects).
	Matched []bool
	Hits    []exec.FrameHit

	// MatchedTracks lists the kept tracks in rank order (similarity
	// descending, track ascending); Sims maps each to its similarity.
	MatchedTracks []int
	Sims          map[int]float64

	// UsedIndex reports the probe path ran; Covered is the index's
	// coverage watermark at search time (clamped to the searched range).
	UsedIndex bool
	Covered   int

	// CandidateTracks counts probe-returned candidates;
	// VerifiedFrames counts frames actually executed through the plan
	// (candidates plus residual on the probe path, everything on the
	// full path); ResidualFrames counts the uncovered tail.
	CandidateTracks int
	VerifiedFrames  int
	ResidualFrames  int

	// VirtualMS is the virtual time the search charged, probe and
	// embeddings included.
	VirtualMS float64

	// IR is the compiled index-probe leaf (full path: its Verify plan
	// executed over every frame instead).
	IR *QueryIR
}

// Search answers spec over src, choosing probe-then-verify when
// Options.Index covers a prefix of the searched range and the plan's
// residual operators are per-frame pure, and the full-rescan path
// otherwise. Requires Options.Store (search is defined over the
// archive; live-only execution still works but every record consulted
// is archived as it runs, exactly like ordinary store-backed runs).
func (pl *Planner) Search(src video.FrameSource, spec SearchSpec) (*SearchResult, error) {
	if spec.Query == nil {
		return nil, fmt.Errorf("plan: Search requires a query")
	}
	if pl.opts.Store == nil {
		return nil, fmt.Errorf("plan: Search requires Options.Store")
	}
	if len(spec.Query.FrameOutputSelectors()) == 0 {
		return nil, fmt.Errorf("plan: Search query %q needs a FrameOutput (hits carry the track ids the appearance predicate joins on)", spec.Query.Name())
	}
	n := spec.Frames
	if n <= 0 {
		n = src.NumFrames()
	}
	threshold := spec.Threshold
	if threshold == 0 {
		threshold = defaultSearchThreshold
	}

	p, sig, err := pl.searchPlan(spec.Query, src)
	if err != nil {
		return nil, err
	}
	class := int(sig.Class)
	sigKey := sig.Key()
	source := src.SourceName()

	em, err := pl.searchEmbedderModel()
	if err != nil {
		return nil, err
	}
	feature, err := pl.resolveFeature(spec, source, sigKey, class)
	if err != nil {
		return nil, err
	}

	covered := 0
	useIndex := pl.opts.Index != nil && exec.IndexVerifiable(p)
	if useIndex {
		covered = pl.opts.Index.Covered(source, sigKey)
		if covered > n {
			covered = n
		}
	}
	useIndex = useIndex && covered > 0

	res := &SearchResult{
		Query: spec.Query.Name(), UsedIndex: useIndex, Covered: covered,
		ResidualFrames: n - covered,
		IR: &QueryIR{
			Name: spec.Query.Name() + "/search", Kind: IRIndexProbe,
			Probe: &ProbeIR{
				Class: class, FeatureRef: feature, Threshold: threshold,
				TopK: spec.TopK, Verify: &BasicIR{Query: spec.Query, Plan: p},
			},
		},
	}
	if !useIndex {
		res.Covered, res.ResidualFrames = 0, n
	}
	env := pl.opts.Env
	clockBefore := env.Clock.TotalMS()

	ex, err := exec.NewExecutor(exec.Options{
		Env: env, Registry: pl.opts.Registry, Cache: pl.opts.Cache,
		Store: pl.opts.Store, StoreSource: source,
	})
	if err != nil {
		return nil, err
	}

	var baseMatched []bool
	var hits []exec.FrameHit
	passing := make(map[int]float64)

	if useIndex {
		entries := pl.opts.Index.Probe(env, source, sigKey, class, feature, threshold)
		res.CandidateTracks = len(entries)
		cands := candidateFrames(entries, covered)
		r, err := ex.RunIndexVerify(p, src, cands, covered, n)
		if err != nil {
			return nil, err
		}
		if want := len(cands) + (n - covered); len(r.Matched) != want {
			return nil, fmt.Errorf("plan: index verify produced %d verdicts, want %d", len(r.Matched), want)
		}
		baseMatched = make([]bool, n)
		for i, f := range cands {
			baseMatched[f] = r.Matched[i]
		}
		for f := covered; f < n; f++ {
			baseMatched[f] = r.Matched[len(cands)+f-covered]
		}
		hits = r.Hits
		res.VerifiedFrames = len(cands) + (n - covered)

		// Passing set: probe candidates carry their stored similarity
		// decision already...
		for i := range entries {
			passing[entries[i].Track] = models.Cosine(entries[i].Vec, feature)
		}
		// ...and residual-only tracks (first archived sighting at or
		// after the watermark — any track indexed at all was decided by
		// the probe) are embedded at that first sighting, exactly what
		// the full path would do for them.
		if covered < n {
			indexed := make(map[int]bool)
			for _, e := range pl.opts.Index.Entries(source, sigKey, class) {
				indexed[e.Track] = true
			}
			for _, a := range index.StoreAppearances(pl.opts.Store, source, sigKey, sig.Detect, class, covered, n) {
				if indexed[a.Track] {
					continue
				}
				vec := em.Embed(env, src.FrameAt(a.Frame), a.Box, a.TruthID)
				if sim := models.Cosine(vec, feature); sim >= threshold {
					passing[a.Track] = sim
				}
			}
		}
	} else {
		r, err := runSearchFull(ex, p, pl.opts.Store, src, n)
		if err != nil {
			return nil, err
		}
		baseMatched = r.Matched
		hits = r.Hits
		res.VerifiedFrames = n
		for _, a := range index.StoreAppearances(pl.opts.Store, source, sigKey, sig.Detect, class, 0, n) {
			vec := em.Embed(env, src.FrameAt(a.Frame), a.Box, a.TruthID)
			if sim := models.Cosine(vec, feature); sim >= threshold {
				passing[a.Track] = sim
			}
		}
	}

	res.Matched, res.Hits, res.MatchedTracks, res.Sims = finishSearch(baseMatched, hits, passing, spec.TopK)
	res.VirtualMS = env.Clock.TotalMS() - clockBefore
	return res, nil
}

// searchPlan compiles the verification pipeline the way both search
// paths and IndexArchive must agree on: memoization off (see Search)
// and no plan cache (cached selections were profiled under different
// options). Extraction and search deriving the scan signature from the
// same compilation is what keys index entries to the records the
// verifier will actually replay.
func (pl *Planner) searchPlan(q *core.Query, src video.FrameSource) (*exec.Plan, exec.ScanSig, error) {
	// Memoized-at-first-sight property values depend on which frame a
	// track is first processed on, which candidate-skipping changes;
	// per-frame evaluation is identical on both paths (and free on
	// archived frames — the label store serves it).
	opts := pl.opts
	opts.DisableMemo = true
	opts.PlanCache = nil
	inner := &Planner{opts: opts.withDefaults()}
	p, _, err := inner.PlanBasic(q, canaryOf(src))
	if err != nil {
		return nil, exec.ScanSig{}, err
	}
	sig := exec.ScanPrefixOf(p)
	if !sig.Shareable {
		return nil, exec.ScanSig{}, fmt.Errorf("plan: query %q has no shareable scan prefix to key the archive by", q.Name())
	}
	return p, sig, nil
}

// IndexArchive runs one incremental extraction pass of the appearance
// index over the archived records of q's scan group: frames
// [x.Covered, upto) (upto <= 0 means the whole source) are walked, new
// tracks embedded once and inserted, known tracks' spans extended.
// fleetReg, when non-nil, resolves cross-camera global ids for new
// entries. Requires Options.Store — extraction reads only the archive,
// never runs the pipeline.
func (pl *Planner) IndexArchive(x *index.Index, q *core.Query, src video.FrameSource, upto int, fleetReg *fleet.Registry) (index.ExtractStats, error) {
	if x == nil {
		return index.ExtractStats{}, fmt.Errorf("plan: IndexArchive requires an index")
	}
	if pl.opts.Store == nil {
		return index.ExtractStats{}, fmt.Errorf("plan: IndexArchive requires Options.Store")
	}
	em, err := pl.searchEmbedderModel()
	if err != nil {
		return index.ExtractStats{}, err
	}
	_, sig, err := pl.searchPlan(q, src)
	if err != nil {
		return index.ExtractStats{}, err
	}
	if upto <= 0 {
		upto = src.NumFrames()
	}
	return x.Extract(index.ExtractConfig{
		Store: pl.opts.Store, Src: src, Source: src.SourceName(),
		Sig: sig.Key(), Detect: sig.Detect, Class: int(sig.Class),
		Env: pl.opts.Env, Embedder: em, Fleet: fleetReg,
	}, upto)
}

// WarmSearchArchive runs q's verification pipeline over frames
// [0, upto) with the store bound — the ingest pass that builds archive
// coverage under the search scan signature when no prior store-backed
// run produced it (a cold daemon, a clip only ever queried under a
// memoizing plan). Frames already archived replay from the store at
// near-zero model cost, so warming is idempotent; upto <= 0 warms the
// whole clip. Requires Options.Store.
func (pl *Planner) WarmSearchArchive(q *core.Query, src video.FrameSource, upto int) error {
	if pl.opts.Store == nil {
		return fmt.Errorf("plan: WarmSearchArchive requires Options.Store")
	}
	p, _, err := pl.searchPlan(q, src)
	if err != nil {
		return err
	}
	if upto <= 0 || upto > src.NumFrames() {
		upto = src.NumFrames()
	}
	ex, err := exec.NewExecutor(exec.Options{
		Env: pl.opts.Env, Registry: pl.opts.Registry, Cache: pl.opts.Cache,
		Store: pl.opts.Store, StoreSource: src.SourceName(),
	})
	if err != nil {
		return err
	}
	_, err = runSearchFull(ex, p, pl.opts.Store, src, upto)
	return err
}

// searchEmbedderModel resolves the appearance embedder from the
// registry.
func (pl *Planner) searchEmbedderModel() (models.Embedder, error) {
	m, ok := pl.opts.Registry.Get(searchEmbedder)
	if !ok {
		return nil, fmt.Errorf("plan: Search requires the %q embedder in the registry", searchEmbedder)
	}
	em, ok := m.(models.Embedder)
	if !ok {
		return nil, fmt.Errorf("plan: registry model %q is not an embedder", searchEmbedder)
	}
	return em, nil
}

// resolveFeature returns the exemplar embedding: the explicit one, or
// the indexed Track's stored vector.
func (pl *Planner) resolveFeature(spec SearchSpec, source, sigKey string, class int) ([]float64, error) {
	if len(spec.Feature) > 0 {
		return spec.Feature, nil
	}
	if pl.opts.Index == nil {
		return nil, fmt.Errorf("plan: Search by exemplar track %d requires Options.Index (or pass Feature explicitly)", spec.Track)
	}
	vec, ok := pl.opts.Index.FeatureOf(source, sigKey, class, spec.Track)
	if !ok {
		return nil, fmt.Errorf("plan: exemplar track %d is not indexed under (%s, %s)", spec.Track, source, sigKey)
	}
	return vec, nil
}

// runSearchFull executes the plan over every frame of [0, n) with the
// store bound, the full-rescan access path.
func runSearchFull(ex *exec.Executor, p *exec.Plan, st *store.Store, src video.FrameSource, n int) (*exec.Result, error) {
	m, err := ex.OpenMux([]*exec.Plan{p}, src.SourceFPS())
	if err != nil {
		return nil, err
	}
	m.BindStore(st, src)
	for f := 0; f < n; f++ {
		if _, err := m.Feed(src.FrameAt(f)); err != nil {
			return nil, err
		}
	}
	return m.Close()[0], nil
}

// candidateFrames expands probe entries into the sorted union of their
// frame spans clamped to [0, covered) — the exact frames a matching
// track can archivally appear on within coverage, since extraction
// walked every covered frame.
func candidateFrames(entries []index.Entry, covered int) []int {
	type span struct{ lo, hi int } // inclusive
	var spans []span
	for i := range entries {
		lo, hi := entries[i].First, entries[i].Last
		if hi >= covered {
			hi = covered - 1
		}
		if lo < 0 || lo > hi {
			continue
		}
		spans = append(spans, span{lo, hi})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	var out []int
	next := 0 // first frame not yet emitted
	for _, s := range spans {
		lo := s.lo
		if lo < next {
			lo = next
		}
		for f := lo; f <= s.hi; f++ {
			out = append(out, f)
		}
		if s.hi+1 > next {
			next = s.hi + 1
		}
	}
	return out
}

// finishSearch applies the appearance join and TopK cut shared by both
// access paths: verified tracks are the passing tracks that appear in
// some base-matched frame's hit, the TopK most similar survive, and a
// frame matches the search iff it base-matched and carries a surviving
// track.
func finishSearch(baseMatched []bool, hits []exec.FrameHit, passing map[int]float64, topK int) ([]bool, []exec.FrameHit, []int, map[int]float64) {
	hitAt := make(map[int]*exec.FrameHit, len(hits))
	for i := range hits {
		hitAt[hits[i].FrameIdx] = &hits[i]
	}
	verified := make(map[int]float64)
	for f, ok := range baseMatched {
		if !ok {
			continue
		}
		if h := hitAt[f]; h != nil {
			for _, o := range h.Objects {
				if sim, pass := passing[o.TrackID]; pass {
					verified[o.TrackID] = sim
				}
			}
		}
	}
	ranked := make([]int, 0, len(verified))
	for t := range verified {
		ranked = append(ranked, t)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if verified[ranked[i]] != verified[ranked[j]] {
			return verified[ranked[i]] > verified[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	if topK > 0 && len(ranked) > topK {
		ranked = ranked[:topK]
	}
	kept := make(map[int]bool, len(ranked))
	sims := make(map[int]float64, len(ranked))
	for _, t := range ranked {
		kept[t] = true
		sims[t] = verified[t]
	}

	matched := make([]bool, len(baseMatched))
	var outHits []exec.FrameHit
	for f := range baseMatched {
		if !baseMatched[f] {
			continue
		}
		h := hitAt[f]
		if h == nil {
			continue
		}
		for _, o := range h.Objects {
			if kept[o.TrackID] {
				matched[f] = true
				outHits = append(outHits, *h)
				break
			}
		}
	}
	return matched, outHits, ranked, sims
}
