package plan

// Text-query planning and execution (DESIGN.md §13): the vql frontend
// splits a text query into a closed-vocabulary core.Query the ordinary
// cascade machinery answers cheaply and an open-vocabulary concept
// conjunction only the simulated VLM can decide. CompileTextIR plans
// the cascade with the full candidate machinery of PlanBasic and wraps
// it in a VerifyIR stage; RunText executes the cascade, consults the
// verifier lazily (only on cascade-matched frames — every other frame
// is already decided under the conjunction), and folds an optional
// duration clause over the verified verdicts. The eager mode asks the
// verifier on every frame instead; the verifier is a deterministic
// function of (seed, frame, question), so lazy and eager verdicts are
// identical by construction and the eager run exists purely as the
// cost/parity baseline (vqbench -exp text).

import (
	"fmt"
	"math"

	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// TextSpec is a compiled text query handed to the planner: the cheap
// cascade part as a regular logical query plus the open-vocabulary
// remainder for the verification stage.
type TextSpec struct {
	// Query is the closed-vocabulary cascade query (vql.Compiled.Query).
	Query *core.Query
	// Class is the object class the verifier's question binds.
	Class video.Class
	// Concepts is the normalized concept conjunction; empty compiles to
	// a plain basic pipeline with no verify stage.
	Concepts []string
	// MinSeconds is the duration clause, applied after verification.
	MinSeconds float64
	// Model names the ConceptModel; "" uses models.VLMModelName.
	Model string
}

// model resolves the verifier model name.
func (s TextSpec) model() string {
	if s.Model == "" {
		return models.VLMModelName
	}
	return s.Model
}

// TextResult is the outcome of executing a text query.
type TextResult struct {
	// Name is the compiled query name ("Text(<canonical>)").
	Name string
	// Matched marks, per processed frame, whether the full query
	// (cascade AND verifier AND duration) holds.
	Matched []bool
	// Events are the maximal matched runs after the duration fold.
	Events []exec.Event
	// FPS is the source frame rate.
	FPS int
	// Frames counts the frames the cascade processed.
	Frames int
	// CascadeMatched counts the frames the cheap cascade matched — the
	// undecided frames a lazy run consults the verifier on.
	CascadeMatched int
	// VLMCalls counts verifier invocations (== Frames when eager,
	// == CascadeMatched when lazy).
	VLMCalls int
	// Hits are the cascade's frame hits restricted to finally-matched
	// frames.
	Hits []exec.FrameHit
	// VirtualMS totals the virtual time the run charged (cascade plus
	// verifier).
	VirtualMS float64
	// IR is the compiled node, for explanation.
	IR *QueryIR
}

// MatchedCount returns the number of finally-matched frames.
func (r *TextResult) MatchedCount() int {
	n := 0
	for _, m := range r.Matched {
		if m {
			n++
		}
	}
	return n
}

// CompileTextIR compiles a text query into the operator IR: the cascade
// query is planned (and canary-profiled) by PlanBasic, then wrapped in
// a VerifyIR stage when concepts remain and an IRDuration combinator
// when a duration clause was given.
func (pl *Planner) CompileTextIR(spec TextSpec, canary *video.Video) (*QueryIR, error) {
	if spec.Query == nil {
		return nil, fmt.Errorf("plan: text spec has no query")
	}
	node, err := pl.compileBasic(spec.Query, spec.Query.Name(), canary)
	if err != nil {
		return nil, err
	}
	if len(spec.Concepts) > 0 {
		node = &QueryIR{
			Name: spec.Query.Name(), Kind: IRVerify,
			Verify: &VerifyIR{
				Model: spec.model(), Class: spec.Class,
				Concepts: append([]string(nil), spec.Concepts...),
				Basic:    node.Basic,
			},
			Children: []*QueryIR{node},
		}
	}
	if spec.MinSeconds > 0 {
		node = &QueryIR{
			Name: spec.Query.Name(), Kind: IRDuration,
			MinSeconds: spec.MinSeconds, Children: []*QueryIR{node},
		}
	}
	return node, nil
}

// RunText compiles and executes a text query over a video. eager asks
// the verifier on every processed frame (the parity baseline); the
// default lazy mode asks only on cascade-matched frames.
func (pl *Planner) RunText(spec TextSpec, v *video.Video, eager bool) (*TextResult, error) {
	ir, err := pl.CompileTextIR(spec, v)
	if err != nil {
		return nil, err
	}
	leaves := ir.Leaves(nil)
	if len(leaves) != 1 {
		return nil, fmt.Errorf("plan: text query %s compiled to %d leaves, want 1", spec.Query.Name(), len(leaves))
	}
	leaf := leaves[0]

	startMS := pl.opts.Env.Clock.TotalMS()
	ex, err := exec.NewExecutor(exec.Options{
		Env: pl.opts.Env, Registry: pl.opts.Registry, Cache: pl.opts.Cache,
		Store: pl.opts.Store, StoreSource: v.Name,
	})
	if err != nil {
		return nil, err
	}
	res, err := ex.Run(leaf.Plan, v)
	if err != nil {
		return nil, err
	}

	final := res.Matched
	calls := 0
	if len(spec.Concepts) > 0 {
		m, ok := pl.opts.Registry.Get(spec.model())
		if !ok {
			return nil, fmt.Errorf("plan: verifier model %q is not registered", spec.model())
		}
		cm, ok := m.(models.ConceptModel)
		if !ok {
			return nil, fmt.Errorf("plan: model %q is not a ConceptModel", spec.model())
		}
		final, calls = exec.RunVerify(res.Matched, v.Frames, eager, func(f *video.Frame) bool {
			return cm.AnswerConcept(pl.opts.Env, f, spec.Class, spec.Concepts)
		})
	}
	events := exec.EventsOf(final)
	if spec.MinSeconds > 0 {
		minFrames := int(math.Ceil(spec.MinSeconds * float64(v.FPS)))
		final, events = exec.Duration(final, minFrames)
	}
	var hits []exec.FrameHit
	for _, h := range res.Hits {
		if h.FrameIdx < len(final) && final[h.FrameIdx] {
			hits = append(hits, h)
		}
	}
	return &TextResult{
		Name: spec.Query.Name(), Matched: final, Events: events, FPS: v.FPS,
		Frames: res.FramesProcessed, CascadeMatched: res.MatchedCount(),
		VLMCalls: calls, Hits: hits,
		VirtualMS: pl.opts.Env.Clock.TotalMS() - startMS,
		IR:        ir,
	}, nil
}
