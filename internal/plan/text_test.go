package plan

import (
	"slices"
	"strings"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/video"
)

func textTestSpec(concepts []string, minSeconds float64) TextSpec {
	q := core.NewQuery("Text(red car stopped)").
		Use("car", carType()).
		Where(core.And(
			core.P("car", core.PropScore).Gt(0.5),
			core.P("car", "color").Eq("red"),
		))
	return TextSpec{Query: q, Class: video.ClassCar, Concepts: concepts, MinSeconds: minSeconds}
}

func TestCompileTextIRShape(t *testing.T) {
	pl := testPlanner(t, nil)
	v := video.CityFlow(42, 6).Generate()

	// Concepts + duration: duration(verify(basic)).
	ir, err := pl.CompileTextIR(textTestSpec([]string{"stopped"}, 2), v)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Kind != IRDuration || len(ir.Children) != 1 {
		t.Fatalf("root = %v with %d children, want duration combinator", ir.Kind, len(ir.Children))
	}
	vn := ir.Children[0]
	if vn.Kind != IRVerify || vn.Verify == nil {
		t.Fatalf("duration child = %v, want verify stage", vn.Kind)
	}
	if vn.Verify.Model == "" || vn.Verify.Class != video.ClassCar || !slices.Equal(vn.Verify.Concepts, []string{"stopped"}) {
		t.Errorf("verify node = %+v", vn.Verify)
	}
	if len(vn.Children) != 1 || vn.Children[0].Kind != IRBasic {
		t.Fatalf("verify child is not the basic leaf")
	}
	if leaves := ir.Leaves(nil); len(leaves) != 1 || leaves[0].Plan == nil {
		t.Fatalf("verify wrapping broke Leaves: %d", len(leaves))
	}

	// No concepts: a plain basic pipeline, no verify node.
	ir, err = pl.CompileTextIR(textTestSpec(nil, 0), v)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Kind != IRBasic {
		t.Errorf("concept-free spec compiled to %v, want basic", ir.Kind)
	}

	if _, err := pl.CompileTextIR(TextSpec{}, v); err == nil {
		t.Error("empty spec compiled")
	}
}

func TestRunTextLazyVsEager(t *testing.T) {
	v := video.CityFlow(42, 8).Generate()
	spec := textTestSpec([]string{"stopped"}, 0)

	lazy, err := testPlanner(t, nil).RunText(spec, v, false)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := testPlanner(t, nil).RunText(spec, v, true)
	if err != nil {
		t.Fatal(err)
	}

	if lazy.Frames != len(v.Frames) || eager.Frames != len(v.Frames) {
		t.Fatalf("processed %d/%d frames, want %d", lazy.Frames, eager.Frames, len(v.Frames))
	}
	if lazy.VLMCalls != lazy.CascadeMatched {
		t.Errorf("lazy calls %d != undecided %d", lazy.VLMCalls, lazy.CascadeMatched)
	}
	if eager.VLMCalls != eager.Frames {
		t.Errorf("eager calls %d != frames %d", eager.VLMCalls, eager.Frames)
	}
	if !slices.Equal(lazy.Matched, eager.Matched) {
		t.Error("lazy and eager verdicts diverged")
	}
	if eager.VirtualMS <= lazy.VirtualMS {
		t.Errorf("eager cost %.1f not above lazy %.1f", eager.VirtualMS, lazy.VirtualMS)
	}
	// The final verdicts are a strict subset of the cascade's matches.
	if lazy.MatchedCount() > lazy.CascadeMatched {
		t.Errorf("verified matches %d exceed cascade matches %d", lazy.MatchedCount(), lazy.CascadeMatched)
	}
	for _, h := range lazy.Hits {
		if !lazy.Matched[h.FrameIdx] {
			t.Errorf("hit on unmatched frame %d", h.FrameIdx)
		}
	}
}

func TestRunTextDurationFold(t *testing.T) {
	v := video.CityFlow(42, 8).Generate()
	plain, err := testPlanner(t, nil).RunText(textTestSpec([]string{"stopped"}, 0), v, false)
	if err != nil {
		t.Fatal(err)
	}
	held, err := testPlanner(t, nil).RunText(textTestSpec([]string{"stopped"}, 1.5), v, false)
	if err != nil {
		t.Fatal(err)
	}
	if held.MatchedCount() > plain.MatchedCount() {
		t.Errorf("duration fold grew matches: %d > %d", held.MatchedCount(), plain.MatchedCount())
	}
	minFrames := int(1.5 * float64(v.FPS))
	for _, e := range held.Events {
		if e.Frames() < minFrames {
			t.Errorf("event %+v shorter than %d frames", e, minFrames)
		}
	}
}

func TestRunTextVerifierErrors(t *testing.T) {
	v := video.CityFlow(42, 4).Generate()
	spec := textTestSpec([]string{"stopped"}, 0)

	spec.Model = "no_such_model"
	if _, err := testPlanner(t, nil).RunText(spec, v, false); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Errorf("unregistered verifier: err = %v", err)
	}
	spec.Model = "yolox" // registered, but not a ConceptModel
	if _, err := testPlanner(t, nil).RunText(spec, v, false); err == nil || !strings.Contains(err.Error(), "ConceptModel") {
		t.Errorf("non-concept verifier: err = %v", err)
	}
}
