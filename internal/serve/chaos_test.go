package serve

// Failure-domain behavior of the daemon: graceful drain, health
// surfaces, stall quarantine and breaker-driven degradation. The
// underlying mechanics (retry, breakers, fallback tiers) are tested in
// internal/fault and at the repo root; these tests pin the daemon's
// view of them.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"vqpy"
)

// TestDrainLifecycle: Drain finalizes live queries, flips the daemon
// into a terminal draining state that refuses new work, and leaves
// Close a no-op.
func TestDrainLifecycle(t *testing.T) {
	s := testServer(t, Config{})
	id, err := s.AttachNamed("cityflow", "redcar")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}

	sum := s.Drain()
	if sum.QueriesDetached != 1 {
		t.Fatalf("drained %d queries, want 1", sum.QueriesDetached)
	}
	res, ok := sum.Results[id]
	if !ok || res == nil || res.FramesProcessed != 5 {
		t.Fatalf("drain result for query %d = %+v", id, res)
	}

	if _, err := s.AttachNamed("cityflow", "plates"); !errors.Is(err, ErrDraining) {
		t.Errorf("attach after drain = %v, want ErrDraining", err)
	}
	if err := s.StepAll(); !errors.Is(err, ErrDraining) {
		t.Errorf("step after drain = %v, want ErrDraining", err)
	}
	if s.Ready() {
		t.Error("drained daemon still reports ready")
	}
	if h := s.Health(); h.Status != "draining" || !h.Draining {
		t.Errorf("health after drain = %+v", h)
	}

	// A second drain and the deferred Close must both be no-ops.
	if again := s.Drain(); again.QueriesDetached != 0 {
		t.Errorf("second drain detached %d queries", again.QueriesDetached)
	}
	s.Close()
}

// TestHealthEndpointsAcrossDrain: /healthz answers 200 through the
// whole lifecycle (liveness), /readyz flips to 503 the moment the
// daemon drains (traffic routing).
func TestHealthEndpointsAcrossDrain(t *testing.T) {
	s := testServer(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode, body.Status
	}

	if code, status := get("/healthz"); code != http.StatusOK || status != "ok" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, status)
	}
	if code, status := get("/readyz"); code != http.StatusOK || status != "ready" {
		t.Errorf("/readyz = %d %q, want 200 ready", code, status)
	}

	s.Drain()

	if code, status := get("/healthz"); code != http.StatusOK || status != "draining" {
		t.Errorf("/healthz while draining = %d %q, want 200 draining", code, status)
	}
	if code, status := get("/readyz"); code != http.StatusServiceUnavailable || status != "draining" {
		t.Errorf("/readyz while draining = %d %q, want 503 draining", code, status)
	}
}

// TestStallQuarantineAndRecovery: a source stalling past the threshold
// is quarantined (degrading health), probed on the quarantine cadence,
// and lifted the moment a probe succeeds — with the stalled frame
// delivered, not skipped.
func TestStallQuarantineAndRecovery(t *testing.T) {
	inj := vqpy.NewFaultInjector(vqpy.FaultSchedule{
		Seed: 42,
		Rules: []vqpy.FaultRule{
			// Frame 2 stalls for 5 polls: 3 to trip quarantine, 2 more
			// absorbed by probes, then the frame arrives.
			{Kind: vqpy.FaultSourceStall, Rate: 1, FromFrame: 2, ToFrame: 3, Persist: 5},
		},
	})
	s := testServer(t, Config{Faults: inj})
	if _, err := s.AttachNamed("cityflow", "redcar"); err != nil {
		t.Fatal(err)
	}

	sawQuarantine := false
	for i := 0; i < 24; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
		if h := s.Health(); len(h.Quarantined) > 0 {
			sawQuarantine = true
			if h.Status != "degraded" {
				t.Errorf("quarantined but health = %q, want degraded", h.Status)
			}
		}
	}
	if !sawQuarantine {
		t.Fatal("stalling source was never quarantined")
	}
	if h := s.Health(); h.Status != "ok" || len(h.Quarantined) != 0 {
		t.Errorf("health after recovery = %+v, want ok", h)
	}

	st := s.Streamz()
	src := st.Sources[0]
	if src.Stalls == 0 || src.Quarantines == 0 {
		t.Errorf("source stat %+v: stall/quarantine accounting missing", src)
	}
	if src.Quarantined {
		t.Error("source still marked quarantined after recovery")
	}
	// The stalled frame was delivered late, never dropped.
	if src.Dropped != 0 {
		t.Errorf("stall recovery dropped %d frames", src.Dropped)
	}
	if st.Chaos == nil || !st.Chaos.Enabled {
		t.Errorf("streamz chaos block = %+v, want enabled", st.Chaos)
	}
	if got := st.Counters["quarantine_events"]; got == 0 {
		t.Error("quarantine_events counter not surfaced")
	}
}

// TestBreakerDegradationSurfaces: terminal model faults trip breakers;
// /healthz goes degraded with the open breakers listed, /streamz
// reports per-source degraded frames and breaker rows.
func TestBreakerDegradationSurfaces(t *testing.T) {
	inj := vqpy.NewFaultInjector(vqpy.FaultSchedule{
		Seed:  42,
		Rules: []vqpy.FaultRule{{Kind: vqpy.FaultModelError, Rate: 1, Persist: 99}},
	})
	s := testServer(t, Config{Faults: inj})
	if _, err := s.AttachNamed("cityflow", "redcar"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}

	h := s.Health()
	if h.Status != "degraded" || len(h.OpenBreakers) == 0 {
		t.Fatalf("health under terminal faults = %+v, want degraded with open breakers", h)
	}

	st := s.Streamz()
	if st.Chaos == nil || st.Chaos.TrippedBreakers == 0 {
		t.Fatalf("streamz chaos = %+v, want tripped breakers", st.Chaos)
	}
	src := st.Sources[0]
	if src.DegradedFrames == 0 {
		t.Error("no degraded frames surfaced on the source stat")
	}
	if len(src.Breakers) == 0 {
		t.Error("no breaker rows surfaced on the source stat")
	}
}

// TestFleetQuarantineIsolatesOneCamera: in lockstep fleet mode a
// permanently stalled camera is quarantined on its own while its
// siblings keep feeding — one bad camera never freezes the fleet.
func TestFleetQuarantineIsolatesOneCamera(t *testing.T) {
	inj := vqpy.NewFaultInjector(vqpy.FaultSchedule{
		Seed: 11,
		Rules: []vqpy.FaultRule{
			{Kind: vqpy.FaultSourceStall, Target: "cityflow-cam1", Rate: 1, Persist: 999},
		},
	})
	s, err := NewServer(Config{Seed: 11, Seconds: 5, Speed: 0, FleetCams: 2, Faults: inj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, err := s.AttachFleet("people"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}

	h := s.Health()
	if h.Status != "degraded" || len(h.Quarantined) != 1 || h.Quarantined[0] != "cityflow-cam1" {
		t.Fatalf("health = %+v, want degraded with cityflow-cam1 quarantined", h)
	}
	byName := make(map[string]SourceStat)
	for _, src := range s.Streamz().Sources {
		byName[src.Name] = src
	}
	if healthy := byName["cityflow-cam0"]; healthy.FramesFed != 12 || healthy.Quarantined {
		t.Errorf("healthy camera stat = %+v, want 12 frames fed and no quarantine", healthy)
	}
	if stalled := byName["cityflow-cam1"]; stalled.FramesFed != 0 || !stalled.Quarantined {
		t.Errorf("stalled camera stat = %+v, want 0 frames fed and quarantined", stalled)
	}
}

// TestStreamzChaosBlockAbsentWithoutInjector: a fault-free daemon's
// /streamz must not grow a chaos block — the surface itself obeys the
// no-op guarantee.
func TestStreamzChaosBlockAbsentWithoutInjector(t *testing.T) {
	s := testServer(t, Config{})
	if st := s.Streamz(); st.Chaos != nil {
		t.Errorf("chaos block without injector = %+v", st.Chaos)
	}
}
