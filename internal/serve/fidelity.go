package serve

// Fidelity-served queries (DESIGN.md §12): POST /queries with
// "mode":"fidelity" answers a query synchronously under a declared
// accuracy floor. The daemon first warms the reduced tiers of the
// fidelity lattice up to the source's fed-frame watermark (warming is
// idempotent: already-archived tier frames replay from the store), then
// lets the planner pick the cheapest archived fidelity whose calibrated
// accuracy meets the floor — live-scanning only the uncovered residual
// — or fall back to the live full-fidelity path when no tier qualifies
// or the floor demands exact answers.

import (
	"fmt"

	"vqpy"
)

// FidelityRequest is one accuracy-budgeted synchronous query.
type FidelityRequest struct {
	// Source / Query name the stream and the catalogue query to answer.
	Source string
	Query  string
	// Accuracy is the floor the answer must meet. 0 (undeclared) and 1
	// both demand exact answers, which only the live full-fidelity path
	// provides — fidelity serving is opt-in per request.
	Accuracy float64
}

// FidelitySummary is the wire-level fidelity-query reply.
type FidelitySummary struct {
	Source   string  `json:"source"`
	Query    string  `json:"query"`
	Accuracy float64 `json:"accuracy"`
	// Frames is the fed-frame watermark the query spanned.
	Frames int `json:"frames"`
	// Chosen is the winning candidate's tier key ("live/full" for the
	// live path); Live mirrors it as a flag. EstimatedAccuracy and
	// CostMS are the winner's priced effective accuracy and virtual
	// cost at decision time.
	Chosen            string  `json:"chosen"`
	Live              bool    `json:"live"`
	EstimatedAccuracy float64 `json:"estimated_accuracy"`
	CostMS            float64 `json:"cost_ms"`
	// ReplayedFrames / DegradedFrames / ResidualFrames break down how
	// the frames were answered: from the tier archive at bookkeeping
	// cost, degraded live after archive misses, or live past coverage.
	ReplayedFrames int `json:"replayed_frames"`
	DegradedFrames int `json:"degraded_frames"`
	ResidualFrames int `json:"residual_frames"`
	// SkippedUnreadable lists archived tiers the planner probed and
	// found unreadable (store read faults) — they were priced out, not
	// trusted.
	SkippedUnreadable []string `json:"skipped_unreadable,omitempty"`
	// Candidates is the full priced field the decision chose from.
	Candidates    []vqpy.FidelityCandidate `json:"candidates"`
	MatchedFrames int                      `json:"matched_frames"`
	Hits          int                      `json:"hits"`
	VirtualMS     float64                  `json:"virtual_ms"`
}

// FidelityQuery answers one accuracy-budgeted query over a source's
// fed frames. Requires the daemon to run with -store (the index is not
// involved); refused in fleet mode and while draining. Synchronous and
// lock-holding like Search: frame feeding pauses for its duration, and
// warmed tiers replay from the store so repeat queries are cheap.
func (s *Server) FidelityQuery(req FidelityRequest) (*FidelitySummary, error) {
	q, err := BuildQuery(req.Query)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if s.fleet != nil {
		return nil, fmt.Errorf("serve: fidelity queries are per-source; fleet mode does not support them")
	}
	if s.store == nil {
		return nil, fmt.Errorf("serve: fidelity queries require the daemon to run with -store")
	}
	src, ok := s.sources[req.Source]
	if !ok {
		return nil, fmt.Errorf("serve: unknown source %q: %w", req.Source, ErrNotFound)
	}
	fed := src.fed
	if n := len(src.video.Frames); fed > n {
		fed = n // loop mode wraps; tier archives are keyed by clip frame index
	}
	if fed == 0 {
		return nil, fmt.Errorf("serve: source %q has no fed frames to answer yet", req.Source)
	}

	// Warm the reduced tiers of the lattice up to the fed watermark (the
	// full-fidelity head tier is skipped: archiving it would cost a full
	// pass the live fallback already prices). Warming runs on the
	// source's session, so the cost lands on its clock like live work.
	for _, fid := range vqpy.FidelityLattice("")[1:] {
		if _, err := src.session.ArchiveFidelity(q, src.video, fid, fed, vqpy.WithStore(s.store)); err != nil {
			return nil, err
		}
	}
	res, err := src.session.ExecuteFidelity(q, src.video, fed,
		vqpy.WithStore(s.store), vqpy.WithMinAccuracy(req.Accuracy))
	if err != nil {
		return nil, err
	}

	chosen := res.Decision.ChosenCandidate()
	s.counters.Add("fidelity_queries", 1)
	s.counters.Add("fidelity_replayed_frames", int64(res.ReplayedFrames))
	s.counters.Add("fidelity_degraded_frames", int64(res.DegradedFrames))
	s.counters.Add("fidelity_residual_frames", int64(res.ResidualFrames))
	if chosen.Live {
		s.counters.Add("fidelity_live_decisions", 1)
	} else {
		s.counters.Add("fidelity_tier_decisions", 1)
	}
	matched := 0
	for _, m := range res.Matched {
		if m {
			matched++
		}
	}
	return &FidelitySummary{
		Source: req.Source, Query: req.Query, Accuracy: req.Accuracy,
		Frames: fed,
		Chosen: chosen.Key, Live: chosen.Live,
		EstimatedAccuracy: chosen.Accuracy, CostMS: chosen.CostMS,
		ReplayedFrames: res.ReplayedFrames, DegradedFrames: res.DegradedFrames,
		ResidualFrames:    res.ResidualFrames,
		SkippedUnreadable: res.Decision.SkippedUnreadable,
		Candidates:        res.Decision.Candidates,
		MatchedFrames:     matched, Hits: len(res.Hits),
		VirtualMS: res.VirtualMS,
	}, nil
}
