package serve

// Fidelity-query tests of the serving daemon: the synchronous
// POST /queries mode=fidelity path, the /streamz fidelity block, the
// /metrics families, and the configuration contract (-store required).

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestFidelityQueryOverHTTP drives the accuracy-budgeted path over the
// wire: feed the clip, query under a loose floor (the warm pass
// archives the reduced tiers, the planner serves from the cheapest
// satisfying one), query strictly (live), and read the fidelity block
// off /streamz and /metrics.
func TestFidelityQueryOverHTTP(t *testing.T) {
	s := testServer(t, Config{StoreDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for s.Streamz().Sources[0].FramesFed < s.Streamz().Sources[0].ClipFrames {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	fed := s.Streamz().Sources[0].FramesFed

	fidelity := func(body string) FidelitySummary {
		t.Helper()
		resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /queries (fidelity) status %d", resp.StatusCode)
		}
		var sum FidelitySummary
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		return sum
	}

	budgeted := fidelity(`{"source":"cityflow","query":"plates","mode":"fidelity","accuracy":0.8}`)
	if budgeted.Live || budgeted.Chosen == "live/full" {
		t.Fatalf("loose floor answered live (chosen %s); candidates: %+v", budgeted.Chosen, budgeted.Candidates)
	}
	if budgeted.Frames != fed {
		t.Errorf("fidelity query spanned %d frames, want the %d fed", budgeted.Frames, fed)
	}
	if budgeted.ReplayedFrames == 0 {
		t.Error("tier-served query replayed no frames from the archive")
	}
	if budgeted.EstimatedAccuracy < 0.8 {
		t.Errorf("chosen tier priced at %.3f, below the 0.8 floor", budgeted.EstimatedAccuracy)
	}
	// Live candidate plus the four warmed reduced tiers.
	if len(budgeted.Candidates) != 5 {
		t.Errorf("decision priced %d candidates, want 5: %+v", len(budgeted.Candidates), budgeted.Candidates)
	}

	// An undeclared floor is strict: live full-fidelity answer, whatever
	// is archived.
	strict := fidelity(`{"source":"cityflow","query":"plates","mode":"fidelity"}`)
	if !strict.Live || strict.Chosen != "live/full" {
		t.Fatalf("strict query served from tier %s", strict.Chosen)
	}
	if strict.ReplayedFrames != 0 || strict.DegradedFrames != 0 || strict.ResidualFrames != fed {
		t.Errorf("strict query frame breakdown %d/%d/%d, want 0/0/%d live frames",
			strict.ReplayedFrames, strict.DegradedFrames, strict.ResidualFrames, fed)
	}
	// The budgeted answer is what the floor bought: far cheaper than the
	// live pass.
	if budgeted.VirtualMS >= strict.VirtualMS {
		t.Errorf("tier-served query cost %.1fms, live cost %.1fms — no saving",
			budgeted.VirtualMS, strict.VirtualMS)
	}

	st := s.Streamz()
	if st.Fidelity == nil {
		t.Fatal("streamz has no fidelity block under -store")
	}
	if st.Fidelity.Queries != 2 || st.Fidelity.TierDecisions != 1 || st.Fidelity.LiveDecisions != 1 {
		t.Errorf("fidelity block: queries=%d tier=%d live=%d, want 2/1/1",
			st.Fidelity.Queries, st.Fidelity.TierDecisions, st.Fidelity.LiveDecisions)
	}
	if len(st.Fidelity.Tiers) != 4 {
		t.Errorf("fidelity block lists %d archived tiers, want 4: %+v", len(st.Fidelity.Tiers), st.Fidelity.Tiers)
	}
	if st.Fidelity.ReplayedFrameRatio <= 0 {
		t.Errorf("replayed_frame_ratio = %g, want > 0", st.Fidelity.ReplayedFrameRatio)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"vqserve_fidelity_tier_accuracy", "vqserve_fidelity_archived_tiers",
		"vqserve_fidelity_replayed_frame_ratio", "vqserve_fidelity_queries_total",
	} {
		if !strings.Contains(string(blob), fam) {
			t.Errorf("/metrics lacks %s", fam)
		}
	}
}

// TestFidelityRequiresStore pins the mode's error shapes.
func TestFidelityRequiresStore(t *testing.T) {
	s := testServer(t, Config{})
	if err := s.StepAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FidelityQuery(FidelityRequest{Source: "cityflow", Query: "plates", Accuracy: 0.8}); err == nil {
		t.Error("fidelity query without -store should fail")
	}

	// A store-backed daemon still refuses before any frame was fed.
	s2 := testServer(t, Config{StoreDir: t.TempDir()})
	if _, err := s2.FidelityQuery(FidelityRequest{Source: "cityflow", Query: "plates", Accuracy: 0.8}); err == nil {
		t.Error("fidelity query before any frame was fed should fail")
	}
	if _, err := s2.FidelityQuery(FidelityRequest{Source: "nope", Query: "plates"}); err == nil {
		t.Error("fidelity query against an unknown source should fail")
	}
}
